// Command qrdist drives a distributed CAQR factorization on one host: it
// starts the coordinator, spawns the workers (in-process goroutines by
// default, or separate qrworker processes via -worker), shards a random
// m×n system row-wise across them, and reports the result — rounds
// completed, rows/sec, bytes moved through the reduction tree, and the
// comms/compute overlap the pipelining achieves.
//
//	qrdist -m 2048 -n 256 -workers 2 -verify        # 2 in-process shards, check vs Factor
//	qrdist -workers 4 -rounds 8                      # multi-round pipelined run
//	qrdist -worker ./qrworker ...                    # spawn real worker processes
//
// SIGTERM/SIGINT drains: the coordinator freezes the round window, every
// worker finishes the same final round, and qrdist prints "drained
// cleanly" and exits 0 — the contract `make dist-smoke` asserts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"time"

	"tiledqr/internal/core"
	"tiledqr/internal/dist"
	"tiledqr/internal/engine"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
)

var (
	flagM       = flag.Int("m", 2048, "global rows")
	flagN       = flag.Int("n", 256, "columns")
	flagNB      = flag.Int("nb", 128, "tile size inside each shard")
	flagIB      = flag.Int("ib", 32, "inner blocking")
	flagWorkers = flag.Int("workers", 2, "worker shards")
	flagLocal   = flag.Int("local-workers", 0, "scheduler width per worker (0 = default)")
	flagRounds  = flag.Int("rounds", 1, "factor+reduce rounds")
	flagWindow  = flag.Int("window", 2, "pipelining credit window (rounds in flight)")
	flagRHS     = flag.Int("rhs", 1, "right-hand-side columns (0 = R only)")
	flagPrec    = flag.String("prec", "d", "precision: d, s, z or c")
	flagSeed    = flag.Int64("seed", 1, "matrix seed")
	flagVerify  = flag.Bool("verify", false, "compare R and x against single-process Factor")
	flagWorker  = flag.String("worker", "", "qrworker binary to spawn per shard (default: in-process goroutines)")
)

func main() {
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	var err error
	switch *flagPrec {
	case "d":
		err = run[float64](ctx)
	case "s":
		err = run[float32](ctx)
	case "z":
		err = run[complex128](ctx)
	case "c":
		err = run[complex64](ctx)
	default:
		fmt.Fprintf(os.Stderr, "qrdist: unknown precision %q (want d, s, z or c)\n", *flagPrec)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qrdist:", err)
		os.Exit(1)
	}
}

func run[T vec.Scalar](ctx context.Context) error {
	m, n, W := *flagM, *flagN, *flagWorkers
	coord, err := dist.NewCoordinator(dist.Config{
		Workers: W, NB: *flagNB, IB: *flagIB,
		Rounds: *flagRounds, Window: *flagWindow, LocalWorkers: *flagLocal,
	})
	if err != nil {
		return err
	}

	// Workers never see the signal context: a drain is coordinated through
	// the protocol so every shard stops at the same round.
	var procs []*exec.Cmd
	var workerErrs <-chan error
	if *flagWorker != "" {
		for i := 0; i < W; i++ {
			cmd := exec.Command(*flagWorker, "-connect", coord.Addr())
			cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
			if err := cmd.Start(); err != nil {
				coord.Close()
				return fmt.Errorf("spawning worker %d: %w", i, err)
			}
			procs = append(procs, cmd)
		}
	} else {
		workerErrs = dist.SpawnLocal(context.Background(), coord.Addr(), W)
	}

	a := tile.RandDense[T](m, n, *flagSeed)
	var b *tile.Dense[T]
	if *flagRHS > 0 {
		b = tile.RandDense[T](m, *flagRHS, *flagSeed+1)
	}
	t0 := time.Now()
	res, err := dist.Run[T](ctx, coord, a, b)
	if err != nil {
		return err
	}
	elapsed := time.Since(t0)

	for _, cmd := range procs {
		if werr := cmd.Wait(); werr != nil && err == nil {
			return fmt.Errorf("worker exited: %w", werr)
		}
	}
	if workerErrs != nil {
		for i := 0; i < W; i++ {
			if werr := <-workerErrs; werr != nil {
				return fmt.Errorf("worker failed: %w", werr)
			}
		}
	}

	st := res.Stats
	rowsPerSec := float64(m) * float64(res.Rounds) / elapsed.Seconds()
	fmt.Printf("qrdist: %d×%d over %d workers (%s), nb=%d ib=%d\n", m, n, W, *flagPrec, *flagNB, *flagIB)
	fmt.Printf("  rounds %d/%d, %.2fs wall, %.0f rows/sec (%.0f rows/sec/shard)\n",
		res.Rounds, *flagRounds, elapsed.Seconds(), rowsPerSec, rowsPerSec/float64(W))
	fmt.Printf("  wire: %.1f KiB sent, %.1f KiB received, overlap %.0f%% of comm hidden\n",
		float64(st.BytesSent)/1024, float64(st.BytesRecv)/1024, 100*st.OverlapFrac)
	fmt.Printf("  compute %.3fs, combine %.3fs, send %.3fs, recv-wait %.3fs across workers (%d tasks)\n",
		float64(st.ComputeNS)/1e9, float64(st.CombineNS)/1e9,
		float64(st.SendNS)/1e9, float64(st.RecvWaitNS)/1e9, st.TasksRun)

	if *flagVerify && res.Rounds > 0 {
		if err := verify(a, b, res); err != nil {
			return err
		}
		fmt.Println("  verify: R and x agree with single-process Factor")
	}
	if ctx.Err() != nil {
		fmt.Println("qrdist: drained cleanly")
	}
	return nil
}

// verify checks the distributed R (after canonicalizing the diagonal
// phase, which elimination order does not fix) and least-squares solution
// against the single-process engine at a precision-appropriate tolerance.
func verify[T vec.Scalar](a, b *tile.Dense[T], res *dist.Result[T]) error {
	f, err := engine.Factor(a, engine.Config{
		Algorithm: core.Greedy, TileSize: *flagNB, InnerBlock: *flagIB,
		Env: engine.Env{Workers: *flagLocal},
	})
	if err != nil {
		return err
	}
	n := a.Cols
	tol := 1e-12
	switch any((*T)(nil)).(type) {
	case *float32, *complex64:
		tol = 2e-4
	}
	want := f.R().View(0, 0, n, n)
	got := res.R.Clone()
	canonicalizeR(want)
	canonicalizeR(got)
	if diff, lim := tile.MaxAbsDiff(got, want), tol*tile.FrobNorm(a); diff > lim {
		return fmt.Errorf("verify: distributed R deviates from single-process Factor by %g (tolerance %g)", diff, lim)
	}
	if b != nil {
		x, err := f.SolveLS(nil, b)
		if err != nil {
			return err
		}
		if diff, lim := tile.MaxAbsDiff(res.X, x), tol*tile.FrobNorm(x); diff > lim {
			return fmt.Errorf("verify: distributed x deviates from single-process SolveLS by %g (tolerance %g)", diff, lim)
		}
	}
	return nil
}

// canonicalizeR scales each row so the diagonal is real and non-negative;
// R is unique only up to that phase.
func canonicalizeR[T vec.Scalar](r *tile.Dense[T]) {
	for i := 0; i < r.Rows && i < r.Cols; i++ {
		d := r.At(i, i)
		if abs := vec.Abs(d); abs != 0 {
			scale := vec.Conj(d) * vec.FromParts[T](1/abs, 0)
			for j := i; j < r.Cols; j++ {
				r.Set(i, j, r.At(i, j)*scale)
			}
		}
	}
}
