package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// base returns a report with every series populated.
func base() *benchSeries {
	return &benchSeries{
		Double:        map[string]float64{"GEQRT": 2.9, "TSMQR": 4.2, "GEMM": 5.6},
		DoubleComplex: map[string]float64{"GEQRT": 4.5},
		Single:        map[string]float64{"GEQRT": 3.5},
		SingleComplex: map[string]float64{"GEQRT": 2.6},
		Stream: &streamReport{
			N: 512, Batch: 512,
			DoubleRowsPerSec:        6500,
			DoubleComplexRowsPerSec: 2700,
			SingleRowsPerSec:        7100,
			SingleComplexRowsPerSec: 1260,
		},
	}
}

func TestCompareNoRegression(t *testing.T) {
	if regs, _ := compareBench(base(), base(), 25); len(regs) != 0 {
		t.Fatalf("identical reports flagged: %v", regs)
	}
	// A drop inside tolerance passes.
	within := base()
	within.Double["GEQRT"] *= 0.80 // -20% < 25% tolerance
	if regs, _ := compareBench(base(), within, 25); len(regs) != 0 {
		t.Fatalf("within-tolerance drop flagged: %v", regs)
	}
	// Improvements never trip the gate.
	better := base()
	better.Double["GEQRT"] *= 3
	better.Stream.DoubleRowsPerSec *= 2
	if regs, _ := compareBench(base(), better, 25); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

func TestCompareDetectsInjectedRegression(t *testing.T) {
	bad := base()
	bad.Double["GEQRT"] *= 0.5          // -50%
	bad.Stream.SingleRowsPerSec *= 0.6  // -40%
	bad.SingleComplex["GEQRT"] *= 0.745 // -25.5%, just beyond tolerance
	regs, _ := compareBench(base(), bad, 25)
	if len(regs) != 3 {
		t.Fatalf("want 3 regressions, got %d: %v", len(regs), regs)
	}
	joined := strings.Join(regs, "\n")
	for _, want := range []string{"double_gflops.GEQRT", "stream.single_rows_per_sec", "single_complex_gflops.GEQRT"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing regression for %s in:\n%s", want, joined)
		}
	}
}

func TestCompareSkipsMissingSeries(t *testing.T) {
	// An old baseline without single-precision or stream figures gates only
	// what it has; a new report missing a series is likewise not a (silent)
	// regression of that series.
	oldRep := base()
	oldRep.Single = nil
	oldRep.Stream = nil
	newRep := base()
	newRep.Double["GEQRT"] *= 0.5
	regs, _ := compareBench(oldRep, newRep, 25)
	if len(regs) != 1 || !strings.Contains(regs[0], "double_gflops.GEQRT") {
		t.Fatalf("want exactly the double GEQRT regression, got %v", regs)
	}
}

// TestCompareFailsOnZeroComparedSeries: when the two files share no series
// (schema drift, half-written report), the gate must fail rather than
// report a vacuous pass.
func TestCompareFailsOnZeroComparedSeries(t *testing.T) {
	if _, compared := compareBench(base(), &benchSeries{}, 25); compared != 0 {
		t.Fatalf("empty new report compared %d series, want 0", compared)
	}
	if _, compared := compareBench(base(), base(), 25); compared == 0 {
		t.Fatal("full reports compared 0 series")
	}
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	emptyPath := filepath.Join(dir, "empty.json")
	raw, _ := json.Marshal(base())
	if err := os.WriteFile(oldPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(emptyPath, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runCompare([]string{oldPath, emptyPath}, 25); code != 1 {
		t.Fatalf("zero-series compare exited %d, want 1 (gate must not disarm silently)", code)
	}
}

// TestRunCompareGate exercises the CLI wrapper end to end, including the
// trailing `-tolerance` form of the acceptance command line, against files
// on disk.
func TestRunCompareGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, b *benchSeries) string {
		raw, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldPath := write("old.json", base())
	bad := base()
	bad.Double["GEQRT"] *= 0.4
	badPath := write("new.json", bad)

	if code := runCompare([]string{oldPath, oldPath, "-tolerance", "25"}, 25); code != 0 {
		t.Fatalf("clean compare exited %d", code)
	}
	if code := runCompare([]string{oldPath, badPath, "-tolerance", "25"}, 25); code != 1 {
		t.Fatalf("regressed compare exited %d, want 1", code)
	}
	// A -60% drop passes a 75% tolerance.
	if code := runCompare([]string{oldPath, badPath, "-tolerance", "75"}, 25); code != 0 {
		t.Fatalf("within generous tolerance exited %d, want 0", code)
	}
	if code := runCompare([]string{oldPath}, 25); code != 2 {
		t.Fatalf("missing file arg exited %d, want 2", code)
	}
	if code := runCompare([]string{oldPath, filepath.Join(dir, "absent.json")}, 25); code != 2 {
		t.Fatalf("unreadable file exited %d, want 2", code)
	}
}

// TestCompareServeSeries gates the qrload "serve" throughput series: two
// load reports compare against each other, a regression trips, and kernel
// reports without a serve section still compare their own series.
func TestCompareServeSeries(t *testing.T) {
	load := func(rows, reqs float64) *benchSeries {
		return &benchSeries{Serve: &serveSeries{RowsPerSec: rows, RequestsPerSec: reqs}}
	}
	if regs, n := compareBench(load(40000, 500), load(41000, 520), 25); len(regs) != 0 || n != 2 {
		t.Fatalf("healthy serve reports: regs=%v compared=%d", regs, n)
	}
	regs, _ := compareBench(load(40000, 500), load(10000, 500), 25)
	if len(regs) != 1 || !strings.Contains(regs[0], "serve.rows_per_sec") {
		t.Fatalf("collapsed rows/sec not flagged: %v", regs)
	}
	// A kernel report vs a load report shares no series → vacuous, count 0.
	if _, n := compareBench(base(), load(40000, 500), 25); n != 0 {
		t.Fatalf("kernel vs load report compared %d series, want 0", n)
	}
	// A mixed report gates both families at once.
	mixed := base()
	mixed.Serve = &serveSeries{RowsPerSec: 40000, RequestsPerSec: 500}
	if regs, n := compareBench(mixed, mixed, 25); len(regs) != 0 || n < 8 {
		t.Fatalf("mixed report: regs=%v compared=%d", regs, n)
	}
}
