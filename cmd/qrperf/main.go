// Command qrperf regenerates the performance experiments of Section 4 of
// the paper (Tables 6–9, Figures 1–3 and 6–8).
//
// The paper ran on a 48-core Opteron with MKL kernels. This reproduction
// measures OUR sequential kernel speeds on the host, then regenerates each
// experiment three ways:
//
//	predicted — the paper's roofline model γpred = γseq·T/max(T/P, cp)
//	simulated — discrete-event list scheduling of the real task DAG on P
//	            virtual workers using the measured per-kernel durations
//	measured  — actual wall-clock execution on this host's cores
//
// Absolute GFLOP/s differ from the paper (pure Go vs MKL); the *shape* —
// which algorithm wins where, and by how much — is the reproduction target.
//
//	qrperf -experiment fig1              predicted+simulated GFLOP/s, TT algorithms
//	qrperf -experiment fig2              overheads w.r.t. Greedy (TT)
//	qrperf -experiment fig6              all kernels (adds TS algorithms)
//	qrperf -experiment fig7              overheads w.r.t. Greedy (TT+TS)
//	qrperf -experiment table6 .. table9  Greedy vs PlasmaTree / Fibonacci, double / double complex
//	qrperf -kernels-json FILE            measure every sequential kernel at the
//	                                     benchmark shape (nb=128, ib=32) plus
//	                                     scheduler dispatch cost, and write the
//	                                     GFLOP/s figures to FILE — the perf
//	                                     trajectory record tracked across PRs
//	                                     (a "baseline" object already in FILE
//	                                     is preserved verbatim)
//	qrperf -throughput [-quick]          serving-workload benchmark: a fleet of
//	                                     concurrent clients each factoring
//	                                     512×256 float64 matrices, comparing
//	                                     per-call worker pools (the legacy
//	                                     mode), the shared runtime, and the
//	                                     shared runtime with FactorInto reuse;
//	                                     also recorded by -kernels-json
//	qrperf -fleet [-quick]               windowed-stream fleet benchmark: many
//	                                     small sliding-window streams ingesting
//	                                     at steady state, where every append
//	                                     also pays the hyperbolic downdate that
//	                                     holds the window; rows/sec recorded by
//	                                     -kernels-json as the "fleet" series
//	qrperf -tune [-measure]              dump the autotuner's decision table:
//	                                     the (algorithm, kernel family, nb, ib)
//	                                     AlgorithmAuto picks per shape with its
//	                                     predicted time, and with -measure the
//	                                     measured time and prediction error
//	qrperf -compare old.json new.json [-tolerance 25]
//	                                     CI benchmark-regression gate: exits
//	                                     nonzero when any kernel GFLOP/s or
//	                                     stream rows/sec series in new.json
//	                                     regressed more than tolerance percent
//	                                     below old.json
//
// Flags -p, -nb, -ib, -workers scale the experiment (defaults are a
// laptop-sized version of the paper's p=40, nb=200, ib=32, P=48).
//
// -family pins the vec kernel family ("generic" or "simd") for every mode,
// so the experiments can be re-run per backend; without it the best family
// available on the host is used. -kernels-json additionally records a
// per-family series for the paper's two precisions by measuring the kernels
// under each family in turn.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"tiledqr"
	"tiledqr/internal/core"
	"tiledqr/internal/kernel"
	"tiledqr/internal/model"
	"tiledqr/internal/sched"
	"tiledqr/internal/sim"
	"tiledqr/internal/tile"
	"tiledqr/internal/tune"
	"tiledqr/internal/vec"
)

var (
	flagP       = flag.Int("p", 40, "tile rows (paper: 40)")
	flagNB      = flag.Int("nb", 48, "tile size (paper: 200)")
	flagIB      = flag.Int("ib", 16, "inner blocking (paper: 32)")
	flagWorkers = flag.Int("workers", 48, "virtual processor count for prediction/simulation (paper: 48)")
	flagQs      = flag.String("q", "", "comma-separated q values (default: paper's grid)")
	flagMeasure = flag.Bool("measure", false, "also run real factorizations on the host (slow)")
	flagUnits   = flag.Bool("units", false, "use Table 1 unit weights instead of measured kernel times (pure-model ranking)")
	flagFamily  = flag.String("family", "", "pin the vec kernel family (generic|simd); default: the best available on this host")
)

// unitKernelTimes returns Table 1 weights as synthetic durations (1 unit =
// 1 µs), for the idealized-model variant of each experiment.
func unitKernelTimes() kernelTimes {
	kt := kernelTimes{}
	for k := core.Kind(0); k < 6; k++ {
		kt[k] = float64(k.Weight()) * 1e-6
	}
	return kt
}

// die reports a fatal operational error on stderr and exits nonzero — the
// benchmarks never panic on failures a user can hit (I/O, bad flags, a
// factorization error): a stack trace is for bugs, not operations.
func die(err error) {
	fmt.Fprintln(os.Stderr, "qrperf:", err)
	os.Exit(1)
}

func main() {
	experiment := flag.String("experiment", "fig1", "fig1|fig2|fig6|fig7|table6|table7|table8|table9")
	kernelsJSON := flag.String("kernels-json", "", "write kernel GFLOP/s to this file and exit")
	throughput := flag.Bool("throughput", false, "run the concurrent-clients throughput benchmark and exit")
	fleet := flag.Bool("fleet", false, "run the windowed-stream fleet benchmark (many small sliding-window streams) and exit")
	quick := flag.Bool("quick", false, "with -throughput or -kernels-json: short smoke-sized run (CI)")
	tuneFlag := flag.Bool("tune", false, "dump the autotuner decision table (add -measure for predicted-vs-measured error) and exit")
	compare := flag.Bool("compare", false, "compare two -kernels-json files (old new) and exit nonzero on regressions beyond -tolerance")
	tolerance := flag.Float64("tolerance", 25, "with -compare: allowed per-series regression percent")
	flag.Parse()
	if *flagFamily != "" {
		if err := vec.SetFamily(*flagFamily); err != nil {
			die(err)
		}
	}
	if *quick {
		sampleWindow = 20 * time.Millisecond
	}
	if *compare {
		os.Exit(runCompare(flag.Args(), *tolerance))
	}
	if *tuneFlag {
		runTune(*flagMeasure)
		return
	}
	if *throughput {
		printThroughput(measureThroughput(*quick))
		return
	}
	if *fleet {
		start := time.Now()
		printFleet(measureFleet(*quick), time.Since(start))
		return
	}
	if *kernelsJSON != "" {
		if err := writeKernelsJSON(*kernelsJSON, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	switch *experiment {
	case "fig1":
		figure(false, false)
	case "fig2":
		figure(false, true)
	case "fig6":
		figure(true, false)
	case "fig7":
		figure(true, true)
	case "table6":
		tableGreedyVs("PlasmaTree", false)
	case "table7":
		tableGreedyVs("PlasmaTree", true)
	case "table8":
		tableGreedyVs("Fibonacci", false)
	case "table9":
		tableGreedyVs("Fibonacci", true)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

// kernelTimes holds measured seconds per kernel invocation at (nb, ib).
type kernelTimes map[core.Kind]float64

// measureKernels times each of the six kernels on random nb×nb tiles for
// the double or double-complex domain (the two the paper's experiments
// sweep), using the adaptive timeIt so small tile sizes still get stable
// samples.
func measureKernels(nb, ib int, complexArith bool) kernelTimes {
	if complexArith {
		return measureKernelsT[complex128](nb, ib)
	}
	return measureKernelsT[float64](nb, ib)
}

// measureKernelsT times each of the six kernels on random nb×nb tiles of
// one scalar domain, delegating to the repo's single kernel-timing harness
// (shared with the autotuner's calibration) at this command's sampling
// window.
func measureKernelsT[T vec.Scalar](nb, ib int) kernelTimes {
	return kernelTimes(tune.MeasureKernelSecs[T](nb, ib, sampleWindow))
}

// series evaluates one algorithm at one shape.
type series struct {
	pred, simu, meas float64 // GFLOP/s
	bs               int     // PlasmaTree domain size used (0 otherwise)
}

// evaluate computes predicted and simulated GFLOP/s for an elimination list.
func evaluate(list core.List, kern core.Kernels, kt kernelTimes, p, q, nb, workers int, complexArith bool) series {
	d := core.BuildDAG(list, kern)
	weights := sim.KindWeights(d, kt)
	var seq float64
	for _, w := range weights {
		seq += w
	}
	flops := model.Flops(p*nb, q*nb)
	if complexArith {
		flops = model.ComplexFlops(p*nb, q*nb)
	}
	// Critical path in seconds (ASAP with measured durations).
	cpSec := sim.ListSchedule(d, d.NumTasks(), weights, sim.PriorityBLevel)
	pred := flops / max(seq/float64(workers), cpSec) / 1e9
	simSec := sim.ListSchedule(d, workers, weights, sim.PriorityBLevel)
	return series{pred: pred, simu: flops / simSec / 1e9}
}

// bestPlasma sweeps BS and returns the best simulated series.
func bestPlasma(kern core.Kernels, kt kernelTimes, p, q, nb, workers int, complexArith bool) series {
	var best series
	for bs := 1; bs <= p; bs++ {
		s := evaluate(core.PlasmaTreeList(p, q, bs), kern, kt, p, q, nb, workers, complexArith)
		if s.simu > best.simu {
			best = s
			best.bs = bs
		}
	}
	return best
}

// measured runs a real factorization on the host.
func measured(alg tiledqr.Algorithm, kern tiledqr.Kernels, bs, p, q, nb, ib int, complexArith bool) float64 {
	opt := tiledqr.Options{Algorithm: alg, Kernels: kern, TileSize: nb, InnerBlock: ib, BS: bs}
	flops := model.Flops(p*nb, q*nb)
	start := time.Now()
	if complexArith {
		a := tiledqr.RandomZDense(p*nb, q*nb, 7)
		start = time.Now()
		if _, err := tiledqr.FactorComplex(a, opt); err != nil {
			die(err)
		}
		flops = model.ComplexFlops(p*nb, q*nb)
	} else {
		a := tiledqr.RandomDense(p*nb, q*nb, 7)
		start = time.Now()
		if _, err := tiledqr.Factor(a, opt); err != nil {
			die(err)
		}
	}
	return flops / time.Since(start).Seconds() / 1e9
}

func qGrid(dflt []int) []int {
	if *flagQs == "" {
		return dflt
	}
	var out []int
	for _, part := range splitComma(*flagQs) {
		var v int
		fmt.Sscanf(part, "%d", &v)
		if v > 0 {
			out = append(out, v)
		}
	}
	return out
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// figure prints the Figure 1/6 (and 2/7 when relative) series.
func figure(withTS, relative bool) {
	p, nb, ib, workers := *flagP, *flagNB, *flagIB, *flagWorkers
	for _, complexArith := range []bool{false, true} {
		prec := "double"
		if complexArith {
			prec = "double complex"
		}
		kt := measureKernels(nb, ib, complexArith)
		if *flagUnits {
			kt = unitKernelTimes()
		}
		fmt.Printf("\n=== %s, p=%d, nb=%d, ib=%d, P=%d ===\n", prec, p, nb, ib, workers)
		fmt.Printf("measured kernel times (µs): GEQRT %.1f  UNMQR %.1f  TSQRT %.1f  TSMQR %.1f  TTQRT %.1f  TTMQR %.1f\n",
			kt[core.KGEQRT]*1e6, kt[core.KUNMQR]*1e6, kt[core.KTSQRT]*1e6,
			kt[core.KTSMQR]*1e6, kt[core.KTTQRT]*1e6, kt[core.KTTMQR]*1e6)
		w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
		hdr := "q\tFlatTree(TT)\tPlasma(TT)\tBS\tFibonacci\tGreedy\t"
		if withTS {
			hdr = "q\tFlatTree(TS)\tPlasma(TS)\tBS\tFlatTree(TT)\tPlasma(TT)\tBS\tFibonacci\tGreedy\t"
		}
		fmt.Fprintln(w, hdr)
		for _, q := range qGrid([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40}) {
			if q > p {
				continue
			}
			greedy := evaluate(core.GreedyList(p, q), core.TT, kt, p, q, nb, workers, complexArith)
			fib := evaluate(core.FibonacciList(p, q), core.TT, kt, p, q, nb, workers, complexArith)
			flatTT := evaluate(core.FlatTreeList(p, q), core.TT, kt, p, q, nb, workers, complexArith)
			plasTT := bestPlasma(core.TT, kt, p, q, nb, workers, complexArith)
			val := func(s series) string {
				if relative {
					return fmt.Sprintf("%.3f", greedy.simu/s.simu)
				}
				return fmt.Sprintf("%.2f", s.simu)
			}
			if withTS {
				flatTS := evaluate(core.FlatTreeList(p, q), core.TS, kt, p, q, nb, workers, complexArith)
				plasTS := bestPlasma(core.TS, kt, p, q, nb, workers, complexArith)
				fmt.Fprintf(w, "%d\t%s\t%s\t%d\t%s\t%s\t%d\t%s\t%s\t\n", q,
					val(flatTS), val(plasTS), plasTS.bs, val(flatTT), val(plasTT), plasTT.bs, val(fib), val(greedy))
			} else {
				fmt.Fprintf(w, "%d\t%s\t%s\t%d\t%s\t%s\t\n", q,
					val(flatTT), val(plasTT), plasTT.bs, val(fib), val(greedy))
			}
		}
		w.Flush()
		if relative {
			fmt.Println("values are simulated-time overheads w.r.t. Greedy (Greedy = 1, > 1 means slower than Greedy)")
		} else {
			fmt.Println("values are simulated GFLOP/s on the virtual machine (predicted roofline within a few % of these)")
		}
	}
}

// tableGreedyVs prints the Table 6–9 comparisons.
func tableGreedyVs(rival string, complexArith bool) {
	p, nb, ib, workers := *flagP, *flagNB, *flagIB, *flagWorkers
	prec := "double"
	if complexArith {
		prec = "double complex"
	}
	kt := measureKernels(nb, ib, complexArith)
	if *flagUnits {
		kt = unitKernelTimes()
	}
	fmt.Printf("\nGreedy versus %s (TT) — %s, p=%d, nb=%d, P=%d (simulated)\n", rival, prec, p, nb, workers)
	w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "p\tq\tGreedy\t%s\tBS\toverhead\tgain\t\n", rival)
	for _, q := range qGrid([]int{1, 2, 4, 5, 10, 20, 40}) {
		if q > p {
			continue
		}
		greedy := evaluate(core.GreedyList(p, q), core.TT, kt, p, q, nb, workers, complexArith)
		var other series
		if rival == "PlasmaTree" {
			other = bestPlasma(core.TT, kt, p, q, nb, workers, complexArith)
		} else {
			other = evaluate(core.FibonacciList(p, q), core.TT, kt, p, q, nb, workers, complexArith)
		}
		if *flagMeasure {
			greedy.meas = measured(tiledqr.Greedy, tiledqr.TT, 0, p, q, nb, ib, complexArith)
			if rival == "PlasmaTree" {
				other.meas = measured(tiledqr.PlasmaTree, tiledqr.TT, other.bs, p, q, nb, ib, complexArith)
			} else {
				other.meas = measured(tiledqr.Fibonacci, tiledqr.TT, 0, p, q, nb, ib, complexArith)
			}
		}
		fmt.Fprintf(w, "%d\t%d\t%.3f\t%.3f\t%d\t%.4f\t%.4f\t\n",
			p, q, greedy.simu, other.simu, other.bs, other.simu/greedy.simu, 1-other.simu/greedy.simu)
		if *flagMeasure {
			fmt.Fprintf(w, "\t\t%.3f\t%.3f\t\t(measured on host, %d cores)\t\t\n", greedy.meas, other.meas, defaultHostWorkers())
		}
	}
	w.Flush()
}

func defaultHostWorkers() int { return runtime.GOMAXPROCS(0) }

// --- kernel GFLOP/s JSON emitter (make bench) -------------------------------

// benchNB/benchIB fix the -kernels-json measurement shape to the benchmark
// harness constants of bench_test.go, so figures are comparable across PRs
// and hosts regardless of the experiment-scaling flags.
const (
	benchNB = 128
	benchIB = 32
)

type kernelsReport struct {
	NB int `json:"nb"`
	IB int `json:"ib"`
	// The paper's two precisions, measured since the seed — the regression
	// baselines below compare against these two maps.
	Double        map[string]float64 `json:"double_gflops"`
	DoubleComplex map[string]float64 `json:"double_complex_gflops"`
	// The single-precision pair the generic engine opened up.
	Single        map[string]float64 `json:"single_gflops"`
	SingleComplex map[string]float64 `json:"single_complex_gflops"`
	// Per-kernel-family series in the paper's two precisions, measured by
	// flipping the vec backend: tracks the generic and SIMD trajectories
	// separately (the top-level maps above use the family active at startup,
	// i.e. the best available unless -family pinned one).
	Families           map[string]*familyReport `json:"families,omitempty"`
	SchedulerNsPerTask float64                  `json:"scheduler_dispatch_ns_per_task"`
	SchedulerWorkers   int                      `json:"scheduler_dispatch_workers"`
	Stream             *streamReport            `json:"stream,omitempty"`
	Fleet              *fleetReport             `json:"fleet,omitempty"`
	Throughput         *throughputReport        `json:"throughput,omitempty"`
	Dist               *distReport              `json:"dist,omitempty"`
	Baseline           json.RawMessage          `json:"baseline,omitempty"`
}

// familyReport is one vec kernel family's GFLOP/s series.
type familyReport struct {
	Double        map[string]float64 `json:"double_gflops"`
	DoubleComplex map[string]float64 `json:"double_complex_gflops"`
}

// streamReport records the streaming TSQR ingestion throughput at a fixed
// shape, alongside the kernel figures, so the serving-workload trajectory
// is tracked across PRs too.
type streamReport struct {
	N                       int     `json:"n"`
	Batch                   int     `json:"batch_rows"`
	DoubleRowsPerSec        float64 `json:"double_rows_per_sec"`
	DoubleComplexRowsPerSec float64 `json:"double_complex_rows_per_sec"`
	SingleRowsPerSec        float64 `json:"single_rows_per_sec"`
	SingleComplexRowsPerSec float64 `json:"single_complex_rows_per_sec"`
}

// measureStream times steady-state StreamQR ingestion (rows merged into a
// resident n×n triangle per second) in both domains at the benchmark tile
// shape.
func measureStream() *streamReport {
	const n, batch = 512, 512
	rep := &streamReport{N: n, Batch: batch}
	opt := tiledqr.Options{TileSize: benchNB, InnerBlock: benchIB}
	appendRate := func(app func() error) float64 {
		sec := timeIt(func() {
			if err := app(); err != nil {
				die(err)
			}
		})
		return float64(batch) / sec
	}
	d, err := tiledqr.NewStream(n, opt)
	if err != nil {
		die(err)
	}
	ddata := tiledqr.RandomDense(batch, n, 1)
	rep.DoubleRowsPerSec = appendRate(func() error { return d.AppendRows(ddata) })
	z, err := tiledqr.NewZStream(n, opt)
	if err != nil {
		die(err)
	}
	zdata := tiledqr.RandomZDense(batch, n, 1)
	rep.DoubleComplexRowsPerSec = appendRate(func() error { return z.AppendRows(zdata) })
	sg, err := tiledqr.NewStream32(n, opt)
	if err != nil {
		die(err)
	}
	sdata := tiledqr.RandomDense32(batch, n, 1)
	rep.SingleRowsPerSec = appendRate(func() error { return sg.AppendRows(sdata) })
	cs, err := tiledqr.NewCStream(n, opt)
	if err != nil {
		die(err)
	}
	cdata := tiledqr.RandomCDense(batch, n, 1)
	rep.SingleComplexRowsPerSec = appendRate(func() error { return cs.AppendRows(cdata) })
	return rep
}

// --- concurrent-clients throughput benchmark (qrperf -throughput) -----------

// throughputPoint is one fleet size: factorizations/sec under each
// execution mode over the same wall-clock window.
type throughputPoint struct {
	Clients        int     `json:"clients"`
	PerCallQPS     float64 `json:"per_call_qps"`
	SharedQPS      float64 `json:"shared_qps"`
	SharedReuseQPS float64 `json:"shared_reuse_qps"`
}

// throughputReport records the serving-workload experiment: a fleet of
// concurrent clients, each repeatedly factoring its own m×n float64 matrix,
// under (a) per-call worker pools — every Factor spawns and tears down its
// own GOMAXPROCS-goroutine pool, the pre-runtime default — (b) the shared
// persistent runtime, and (c) the shared runtime with the FactorInto
// zero-allocation reuse path.
type throughputReport struct {
	M          int               `json:"m"`
	N          int               `json:"n"`
	NB         int               `json:"nb"`
	IB         int               `json:"ib"`
	GoMaxProcs int               `json:"gomaxprocs"`
	WindowMS   int64             `json:"window_ms"`
	Points     []throughputPoint `json:"points"`
}

const tpM, tpN = 512, 256

// fleetQPS runs `clients` goroutines, each looping factor over its own
// matrix until the window closes, and returns completed factorizations per
// second.
func fleetQPS(clients int, window time.Duration, factor func(client int, a *tiledqr.Dense) error) float64 {
	mats := make([]*tiledqr.Dense, clients)
	for i := range mats {
		mats[i] = tiledqr.RandomDense(tpM, tpN, int64(i+1))
	}
	var done atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(window)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if err := factor(c, mats[c]); err != nil {
					die(err)
				}
				done.Add(1)
			}
		}(c)
	}
	wg.Wait()
	return float64(done.Load()) / time.Since(start).Seconds()
}

// measureThroughput sweeps the fleet sizes across the three execution
// modes at equal GOMAXPROCS.
func measureThroughput(quick bool) *throughputReport {
	clients := []int{1, 4, 16, 64}
	window := time.Second
	if quick {
		clients = []int{1, 4}
		window = 200 * time.Millisecond
	}
	rep := &throughputReport{
		M: tpM, N: tpN, NB: benchNB, IB: benchIB,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		WindowMS:   window.Milliseconds(),
	}
	perCall := tiledqr.Options{TileSize: benchNB, InnerBlock: benchIB, Workers: runtime.GOMAXPROCS(0)}
	shared := tiledqr.Options{TileSize: benchNB, InnerBlock: benchIB}
	// Warm the default runtime before timing.
	if _, err := tiledqr.Factor(tiledqr.RandomDense(tpM, tpN, 99), shared); err != nil {
		die(err)
	}
	for _, c := range clients {
		p := throughputPoint{Clients: c}
		p.PerCallQPS = fleetQPS(c, window, func(_ int, a *tiledqr.Dense) error {
			_, err := tiledqr.Factor(a, perCall)
			return err
		})
		p.SharedQPS = fleetQPS(c, window, func(_ int, a *tiledqr.Dense) error {
			_, err := tiledqr.Factor(a, shared)
			return err
		})
		reusers := make([]*tiledqr.Factorization, c)
		for i := range reusers {
			reusers[i] = &tiledqr.Factorization{}
		}
		p.SharedReuseQPS = fleetQPS(c, window, func(client int, a *tiledqr.Dense) error {
			return tiledqr.FactorInto(reusers[client], a, shared)
		})
		rep.Points = append(rep.Points, p)
	}
	return rep
}

// printThroughput renders the report as a table with per-mode speedups
// over the per-call baseline.
func printThroughput(rep *throughputReport) {
	fmt.Printf("fleet throughput: %d×%d float64, nb=%d, ib=%d, GOMAXPROCS=%d, %d ms window\n\n",
		rep.M, rep.N, rep.NB, rep.IB, rep.GoMaxProcs, rep.WindowMS)
	w := tabwriter.NewWriter(os.Stdout, 10, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "clients\tper-call q/s\tshared q/s\tspeedup\tshared+reuse q/s\tspeedup\t")
	for _, p := range rep.Points {
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.2fx\t%.2f\t%.2fx\t\n",
			p.Clients, p.PerCallQPS, p.SharedQPS, p.SharedQPS/p.PerCallQPS,
			p.SharedReuseQPS, p.SharedReuseQPS/p.PerCallQPS)
	}
	w.Flush()
	fmt.Println("\nper-call: every Factor builds and tears down its own GOMAXPROCS-worker pool (legacy default)")
	fmt.Println("shared:   all clients submit to the persistent process runtime")
	fmt.Println("reuse:    shared runtime + FactorInto arena reuse (zero steady-state allocation)")
}

// sampleWindow is the minimum measurement window of timeIt; -quick shrinks
// it so the CI bench gate finishes in seconds at the cost of a few percent
// of noise (absorbed by the gate's tolerance).
var sampleWindow = 100 * time.Millisecond

// timeIt returns seconds per call, growing the repetition count until the
// sample is long enough to trust.
func timeIt(f func()) float64 {
	f() // warm up
	for reps := 1; ; reps *= 2 {
		start := time.Now()
		for i := 0; i < reps; i++ {
			f()
		}
		if el := time.Since(start); el > sampleWindow || reps >= 1<<20 {
			return el.Seconds() / float64(reps)
		}
	}
}

// kernelGflops converts measureKernelsT timings at the benchmark shape
// into GFLOP/s (4 real flops per complex flop, as in the paper) and adds
// the GEMM reference kernel, which measureKernelsT does not time. One
// kernel table backs both the experiments and the JSON record.
func kernelGflops[T vec.Scalar]() map[string]float64 {
	const nb, ib = benchNB, benchIB
	flopScale := 1.0
	if vec.IsComplex[T]() {
		flopScale = 4
	}
	cube := float64(nb) * float64(nb) * float64(nb)
	out := make(map[string]float64, 7)
	for kind, sec := range measureKernelsT[T](nb, ib) {
		out[kind.String()] = flopScale * float64(kind.Weight()) * cube / 3 / sec / 1e9
	}
	a := tile.RandDense[T](nb, nb, 2)
	b := tile.RandDense[T](nb, nb, 3)
	c := tile.RandDense[T](nb, nb, 4)
	gemmWork := make([]T, vec.GemmPackLen[T](nb, nb, nb))
	gemmSec := timeIt(func() { kernel.GEMM(nb, nb, nb, a.Data, nb, b.Data, nb, c.Data, nb, gemmWork) })
	out["GEMM"] = flopScale * 6 * cube / 3 / gemmSec / 1e9
	return out
}

// writeKernelsJSON measures everything and writes the report, preserving
// any "baseline" object already present in the target file. quick shortens
// the throughput sweep to the smoke-sized fleet (the kernel and stream
// series shrink via sampleWindow).
func writeKernelsJSON(path string, quick bool) error {
	rep := kernelsReport{
		NB:               benchNB,
		IB:               benchIB,
		Double:           kernelGflops[float64](),
		DoubleComplex:    kernelGflops[complex128](),
		Single:           kernelGflops[float32](),
		SingleComplex:    kernelGflops[complex64](),
		SchedulerWorkers: 2,
	}
	rep.Families = map[string]*familyReport{}
	startFam := vec.ActiveFamily()
	for _, fam := range vec.Families() {
		if err := vec.SetFamily(fam); err != nil {
			continue
		}
		rep.Families[fam] = &familyReport{
			Double:        kernelGflops[float64](),
			DoubleComplex: kernelGflops[complex128](),
		}
	}
	if err := vec.SetFamily(startFam); err != nil {
		die(err)
	}
	d := core.BuildDAG(core.GreedyList(20, 10), core.TT)
	sec := timeIt(func() {
		if _, err := sched.Run(d, sched.Options{Workers: 2}, func(int32, int) {}); err != nil {
			die(err)
		}
	})
	rep.SchedulerNsPerTask = sec * 1e9 / float64(d.NumTasks())
	rep.Stream = measureStream()
	rep.Fleet = measureFleet(quick)
	rep.Throughput = measureThroughput(quick)
	rep.Dist = measureDist(quick)
	if old, err := os.ReadFile(path); err == nil {
		var prev struct {
			Baseline json.RawMessage `json:"baseline"`
		}
		if json.Unmarshal(old, &prev) == nil && len(prev.Baseline) > 0 {
			rep.Baseline = prev.Baseline
		}
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fam := vec.ActiveFamily()
	if isa := vec.SIMDName(); isa != "" && fam == vec.FamilySIMD {
		fam += " (" + isa + ")"
	}
	fmt.Printf("wrote %s (nb=%d, ib=%d, family %s)\n", path, benchNB, benchIB, fam)
	return nil
}
