package main

import (
	"context"
	"runtime"
	"time"

	"tiledqr/internal/dist"
)

// distReport records the distributed CAQR scaling series: the same
// per-shard workload run at growing worker counts, each point reporting
// shard-normalized throughput, the bytes the reduction tree moved per
// round, and how much of that communication the pipelining hid behind
// the next round's local factorization. Workers are in-process goroutines
// over TCP loopback — the protocol and serialization costs are real, the
// scheduling is shared, so on a many-core host rows/sec-per-shard should
// hold roughly flat as workers double (communication avoidance working)
// while on a starved host it degrades gracefully.
type distReport struct {
	RowsPerShard int         `json:"rows_per_shard"`
	N            int         `json:"n"`
	NB           int         `json:"nb"`
	IB           int         `json:"ib"`
	Rounds       int         `json:"rounds"`
	Points       []distPoint `json:"points"`
}

// distPoint is one worker count of the scaling sweep.
type distPoint struct {
	Workers            int     `json:"workers"`
	RowsPerSec         float64 `json:"rows_per_sec"`
	RowsPerSecPerShard float64 `json:"rows_per_sec_per_shard"`
	BytesPerRound      float64 `json:"bytes_per_round"`
	OverlapFrac        float64 `json:"overlap_frac"`
}

// measureDist sweeps the distributed runtime at 1/2/4/8 local worker
// processes (1/2 in quick mode), benchmark mode: shards are generated
// worker-side, so the wire carries only the R triangles and Qᵀb blocks of
// the steady state.
func measureDist(quick bool) *distReport {
	rep := &distReport{RowsPerShard: 768, N: 128, NB: 64, IB: 16, Rounds: 4}
	counts := []int{1, 2, 4, 8}
	if quick {
		counts = []int{1, 2}
		rep.Rounds = 2
	}
	for _, w := range counts {
		local := runtime.GOMAXPROCS(0) / w
		if local < 1 {
			local = 1
		}
		coord, err := dist.NewCoordinator(dist.Config{
			Workers: w, NB: rep.NB, IB: rep.IB,
			Rounds: rep.Rounds, LocalWorkers: local,
			GenSeed: 11, GenRows: rep.RowsPerShard, GenCols: rep.N, GenRHS: 1,
		})
		if err != nil {
			die(err)
		}
		errs := dist.SpawnLocal(context.Background(), coord.Addr(), w)
		t0 := time.Now()
		res, err := dist.Run[float64](context.Background(), coord, nil, nil)
		if err != nil {
			die(err)
		}
		for i := 0; i < w; i++ {
			if werr := <-errs; werr != nil {
				die(werr)
			}
		}
		sec := time.Since(t0).Seconds()
		rows := float64(rep.RowsPerShard) * float64(w) * float64(res.Rounds)
		rep.Points = append(rep.Points, distPoint{
			Workers:            w,
			RowsPerSec:         rows / sec,
			RowsPerSecPerShard: rows / sec / float64(w),
			BytesPerRound:      float64(res.Stats.BytesSent) / float64(res.Rounds),
			OverlapFrac:        res.Stats.OverlapFrac,
		})
	}
	return rep
}
