package main

import (
	"fmt"
	"time"

	"tiledqr"
)

// fleetReport records the sliding-window fleet benchmark: many small
// windowed streams ingesting concurrently — the online-serving shape of the
// streaming subsystem, where every append also pays a hyperbolic downdate
// to hold the window. Tracked in BENCH_kernels.json alongside the plain
// stream series so window-maintenance regressions gate CI like kernel ones.
type fleetReport struct {
	Streams            int     `json:"streams"`
	N                  int     `json:"n"`
	Batch              int     `json:"batch_rows"`
	Window             int     `json:"window_rows"`
	Forget             float64 `json:"forget"`
	RowsPerSec         float64 `json:"rows_per_sec"`
	FootprintPerStream int     `json:"footprint_per_stream"`
}

// measureFleet times steady-state ingestion across a fleet of windowed,
// forgetful float64 streams. Each stream is pre-filled past its window so
// every timed append runs the full maintenance path: decay, merge, and the
// downdate that evicts the oldest batch.
func measureFleet(quick bool) *fleetReport {
	const n, batch, window = 32, 16, 64
	streams := 64
	if quick {
		streams = 8
	}
	rep := &fleetReport{Streams: streams, N: n, Batch: batch, Window: window, Forget: 0.995}
	opt := tiledqr.Options{TileSize: 32, InnerBlock: 8, WindowRows: window, Forget: rep.Forget}
	fleet := make([]*tiledqr.Stream[float64], streams)
	data := make([]*tiledqr.Dense, streams)
	for i := range fleet {
		s, err := tiledqr.NewStreamOf[float64](n, opt)
		if err != nil {
			die(err)
		}
		fleet[i] = s
		data[i] = tiledqr.RandomDense(batch, n, int64(i+1))
		for b := 0; b <= window/batch; b++ { // past the window: appends now downdate
			if err := s.AppendRows(data[i]); err != nil {
				die(err)
			}
		}
	}
	sec := timeIt(func() {
		for i, s := range fleet {
			if err := s.AppendRows(data[i]); err != nil {
				die(err)
			}
		}
	})
	rep.RowsPerSec = float64(streams) * float64(batch) / sec
	rep.FootprintPerStream = fleet[0].Footprint()
	return rep
}

// printFleet renders the report for the interactive -fleet mode.
func printFleet(rep *fleetReport, elapsed time.Duration) {
	fmt.Printf("windowed-stream fleet: %d streams × %d cols, batch %d, window %d, forget λ=%g\n",
		rep.Streams, rep.N, rep.Batch, rep.Window, rep.Forget)
	fmt.Printf("steady-state ingestion: %.0f rows/sec across the fleet (%.1f rows/sec/stream)\n",
		rep.RowsPerSec, rep.RowsPerSec/float64(rep.Streams))
	fmt.Printf("footprint: %d float64 per stream (O(n² + window); measured in %.1fs)\n",
		rep.FootprintPerStream, elapsed.Seconds())
}
