package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// benchSeries is the subset of a -kernels-json report the regression gate
// compares: per-kernel GFLOP/s in every precision and the streaming
// ingestion rates. Throughput points are excluded — fleet QPS on shared
// hosted runners is too load-dependent to gate on.
type benchSeries struct {
	Double        map[string]float64       `json:"double_gflops"`
	DoubleComplex map[string]float64       `json:"double_complex_gflops"`
	Single        map[string]float64       `json:"single_gflops"`
	SingleComplex map[string]float64       `json:"single_complex_gflops"`
	Families      map[string]*familyReport `json:"families"`
	Stream        *streamReport            `json:"stream"`
	Fleet         *fleetReport             `json:"fleet"`
	Dist          *distReport              `json:"dist"`
	Serve         *serveSeries             `json:"serve"`
}

// serveSeries is the throughput summary a qrload -json report carries, so
// two load runs gate against each other the same way kernel reports do.
type serveSeries struct {
	RowsPerSec     float64 `json:"rows_per_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`
}

// series flattens the report into named scalar series ("higher is better").
// Series missing or non-positive on either side are skipped by the
// comparator, so old baselines without (say) single-precision figures still
// gate the series they do have.
func (b *benchSeries) series() map[string]float64 {
	out := map[string]float64{}
	add := func(prefix string, m map[string]float64) {
		for k, v := range m {
			out[prefix+"."+k] = v
		}
	}
	add("double_gflops", b.Double)
	add("double_complex_gflops", b.DoubleComplex)
	add("single_gflops", b.Single)
	add("single_complex_gflops", b.SingleComplex)
	// Per-kernel-family series. A family absent from either report (an old
	// baseline predating them, or a host without the SIMD backend) simply
	// contributes no series, so the gate skips it like any other hole.
	for fam, fr := range b.Families {
		if fr == nil {
			continue
		}
		add("families."+fam+".double_gflops", fr.Double)
		add("families."+fam+".double_complex_gflops", fr.DoubleComplex)
	}
	if s := b.Stream; s != nil {
		out["stream.double_rows_per_sec"] = s.DoubleRowsPerSec
		out["stream.double_complex_rows_per_sec"] = s.DoubleComplexRowsPerSec
		out["stream.single_rows_per_sec"] = s.SingleRowsPerSec
		out["stream.single_complex_rows_per_sec"] = s.SingleComplexRowsPerSec
	}
	// Windowed-stream fleet: one aggregate ingestion rate. The per-stream
	// footprint is a memory invariant (checked by tests), not a speed series.
	if f := b.Fleet; f != nil {
		out["fleet.rows_per_sec"] = f.RowsPerSec
	}
	// Distributed scaling sweep: gate shard-normalized throughput per worker
	// count. Bytes/round is a format property (checked by tests, not gated)
	// and overlap is too host-dependent to gate.
	if d := b.Dist; d != nil {
		for _, p := range d.Points {
			out[fmt.Sprintf("dist.w%d.rows_per_sec_per_shard", p.Workers)] = p.RowsPerSecPerShard
		}
	}
	if s := b.Serve; s != nil {
		out["serve.rows_per_sec"] = s.RowsPerSec
		out["serve.requests_per_sec"] = s.RequestsPerSec
	}
	return out
}

// compareBench returns one line per series that regressed beyond the
// tolerance (new < old·(1 − tol/100)), sorted by series name, along with
// the number of series actually compared. An empty regression list means
// the gate passes — but only if compared > 0; a zero count means the two
// files share no series (schema drift, half-written report) and the caller
// must fail rather than report a vacuous pass.
func compareBench(oldRep, newRep *benchSeries, tolPct float64) (regressions []string, compared int) {
	oldS, newS := oldRep.series(), newRep.series()
	names := make([]string, 0, len(oldS))
	for name := range oldS {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ov := oldS[name]
		nv, ok := newS[name]
		if ov <= 0 || !ok || nv <= 0 {
			continue // series absent on one side: nothing to gate
		}
		compared++
		if nv < ov*(1-tolPct/100) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.3f -> %.3f (%+.1f%%, tolerance -%.0f%%)",
					name, ov, nv, (nv/ov-1)*100, tolPct))
		}
	}
	return regressions, compared
}

// readBenchSeries loads one -kernels-json file for comparison.
func readBenchSeries(path string) (*benchSeries, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b benchSeries
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// runCompare implements `qrperf -compare old.json new.json [-tolerance N]`:
// it prints every regression beyond tolerance and returns the process exit
// code (0 = gate passes). The trailing -tolerance form is accepted so the
// flag may follow the positional file arguments.
func runCompare(args []string, tolPct float64) int {
	var files []string
	for i := 0; i < len(args); i++ {
		if (args[i] == "-tolerance" || args[i] == "--tolerance") && i+1 < len(args) {
			if _, err := fmt.Sscanf(args[i+1], "%g", &tolPct); err != nil {
				fmt.Fprintf(os.Stderr, "qrperf -compare: bad tolerance %q\n", args[i+1])
				return 2
			}
			i++
			continue
		}
		files = append(files, args[i])
	}
	if len(files) != 2 {
		fmt.Fprintln(os.Stderr, "usage: qrperf -compare old.json new.json [-tolerance pct]")
		return 2
	}
	oldRep, err := readBenchSeries(files[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	newRep, err := readBenchSeries(files[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	regressions, compared := compareBench(oldRep, newRep, tolPct)
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "bench gate FAILED: %s and %s share no comparable series — schema drift or a half-written report would otherwise disarm the gate silently\n",
			files[0], files[1])
		return 1
	}
	if len(regressions) == 0 {
		fmt.Printf("bench gate passed: %d series compared, none regressed beyond %.0f%% (%s vs %s)\n",
			compared, tolPct, files[0], files[1])
		return 0
	}
	fmt.Fprintf(os.Stderr, "bench gate FAILED: %d series regressed beyond %.0f%%:\n", len(regressions), tolPct)
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "  "+r)
	}
	return 1
}
