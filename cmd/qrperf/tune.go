package main

import (
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"tiledqr"
	"tiledqr/internal/model"
	"tiledqr/internal/tune"
	"tiledqr/internal/vec"
)

// tuneShapes is the decision-table grid of `qrperf -tune`: tall, square and
// wide shapes spanning latency-bound to area-bound regimes.
var tuneShapes = [][2]int{
	{256, 128}, {512, 128}, {512, 512}, {1024, 256},
	{2048, 256}, {256, 1024}, {2048, 2048},
}

// runTune dumps the autotuner's decision table for float64: the chosen
// (algorithm, kernel family, nb, ib) per shape with its predicted wall
// time, the model's margin over the runner-up configuration, and — with
// -measure — the measured wall time and the prediction error. The table
// uses the real host width (GOMAXPROCS), the width an actual Auto
// factorization would resolve against.
func runTune(measure bool) {
	workers := runtime.GOMAXPROCS(0)
	fam := vec.ActiveFamily()
	if isa := vec.SIMDName(); isa != "" && fam == vec.FamilySIMD {
		fam += " (" + isa + ")"
	}
	fmt.Printf("autotuner decision table — float64, width %d (GOMAXPROCS), kernel family %s\n", workers, fam)
	fmt.Printf("calibration: %s\n\n", tune.CacheLocation())
	w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
	hdr := "m\tn\talgorithm\tkernels\tnb\tib\tgrid\tpred ms\tmargin\t"
	if measure {
		hdr += "meas ms\terr\tGFLOP/s\t"
	}
	fmt.Fprintln(w, hdr)
	for _, s := range tuneShapes {
		m, n := s[0], s[1]
		ranked := tune.Rank[float64](tune.Request{M: m, N: n, Workers: workers})
		if len(ranked) == 0 {
			continue
		}
		best := ranked[0]
		margin := "-"
		if len(ranked) > 1 && best.PredictedSec > 0 {
			margin = fmt.Sprintf("%.1f%%", (ranked[1].PredictedSec/best.PredictedSec-1)*100)
		}
		fmt.Fprintf(w, "%d\t%d\t%v\t%v\t%d\t%d\t%d×%d\t%.2f\t%s\t",
			m, n, best.Algorithm, best.Kernels, best.NB, best.IB, best.P, best.Q,
			best.PredictedSec*1e3, margin)
		if measure {
			opt, err := tiledqr.Options{Algorithm: tiledqr.AlgorithmAuto}.Resolve(m, n)
			if err != nil {
				die(err)
			}
			a := tiledqr.RandomDense(m, n, 7)
			meas := time.Duration(1 << 62)
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				if _, err := tiledqr.Factor(a, opt); err != nil {
					die(err)
				}
				if el := time.Since(start); el < meas {
					meas = el
				}
			}
			err100 := (meas.Seconds()/best.PredictedSec - 1) * 100
			fmt.Fprintf(w, "%.2f\t%+.0f%%\t%.2f\t",
				meas.Seconds()*1e3, err100, model.Flops(m, n)/meas.Seconds()/1e9)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("\npred: calibrated-kernel list-schedule simulation (roofline bound for huge grids)")
	fmt.Println("margin: predicted slowdown of the runner-up configuration")
	if !measure {
		fmt.Println("re-run with -measure for measured wall times and prediction error")
	}
}
