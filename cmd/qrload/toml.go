package main

import (
	"fmt"
	"strconv"
	"strings"
)

// A deliberately small TOML reader covering what load scenarios need —
// comments, `key = value` pairs (string / integer / float / bool),
// `[table]` headers and `[[array-of-tables]]` headers — with no external
// dependency. Tables decode to map[string]any, arrays of tables to
// []map[string]any; dotted keys, inline tables and value arrays are out of
// scope and rejected with a line-numbered error.

// parseTOML parses src into a tree of nested maps.
func parseTOML(src string) (map[string]any, error) {
	root := map[string]any{}
	cur := root
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "[["): // array of tables
			name := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, "[["), "]]"))
			if name == "" || strings.ContainsAny(name, "[]. ") {
				return nil, fmt.Errorf("line %d: bad table array header %q", ln+1, line)
			}
			tbl := map[string]any{}
			switch prev := root[name].(type) {
			case nil:
				root[name] = []map[string]any{tbl}
			case []map[string]any:
				root[name] = append(prev, tbl)
			default:
				return nil, fmt.Errorf("line %d: %q is both a value and a table array", ln+1, name)
			}
			cur = tbl
		case strings.HasPrefix(line, "["): // plain table
			name := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, "["), "]"))
			if name == "" || strings.ContainsAny(name, "[]. ") {
				return nil, fmt.Errorf("line %d: bad table header %q", ln+1, line)
			}
			tbl, ok := root[name].(map[string]any)
			if !ok {
				if _, exists := root[name]; exists {
					return nil, fmt.Errorf("line %d: %q is already a value", ln+1, name)
				}
				tbl = map[string]any{}
				root[name] = tbl
			}
			cur = tbl
		default:
			key, val, ok := strings.Cut(line, "=")
			if !ok {
				return nil, fmt.Errorf("line %d: expected key = value, got %q", ln+1, line)
			}
			key = strings.TrimSpace(key)
			if key == "" || strings.ContainsAny(key, "[]. \"") {
				return nil, fmt.Errorf("line %d: bad key %q", ln+1, key)
			}
			v, err := parseValue(strings.TrimSpace(val))
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			if _, dup := cur[key]; dup {
				return nil, fmt.Errorf("line %d: duplicate key %q", ln+1, key)
			}
			cur[key] = v
		}
	}
	return root, nil
}

// stripComment removes a trailing # comment, respecting quoted strings.
func stripComment(line string) string {
	inStr := false
	for i, r := range line {
		switch r {
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

// parseValue decodes one TOML value: string, bool, integer or float.
func parseValue(s string) (any, error) {
	switch {
	case s == "":
		return nil, fmt.Errorf("empty value")
	case strings.HasPrefix(s, `"`):
		if len(s) < 2 || !strings.HasSuffix(s, `"`) {
			return nil, fmt.Errorf("unterminated string %s", s)
		}
		return strconv.Unquote(s)
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return nil, fmt.Errorf("unsupported value %q (want string, bool, integer or float)", s)
}

// tomlGet reads a typed key from a table with a default.
func tomlStr(t map[string]any, key, def string) (string, error) {
	v, ok := t[key]
	if !ok {
		return def, nil
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("%s: want a string, got %v", key, v)
	}
	return s, nil
}

func tomlInt(t map[string]any, key string, def int) (int, error) {
	v, ok := t[key]
	if !ok {
		return def, nil
	}
	i, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("%s: want an integer, got %v", key, v)
	}
	return int(i), nil
}

func tomlBool(t map[string]any, key string, def bool) (bool, error) {
	v, ok := t[key]
	if !ok {
		return def, nil
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("%s: want a bool, got %v", key, v)
	}
	return b, nil
}
