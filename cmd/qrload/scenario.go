package main

import (
	"fmt"
	"os"
	"time"
)

// Scenario is a parsed load scenario: the global pacing knobs plus an
// endpoint mix. Example:
//
//	base_url = "http://127.0.0.1:8787"
//	duration = "10s"
//	threads  = 8
//	pacing   = "5ms"   # per-thread think time between requests
//	ramp_up  = "1s"    # threads start staggered across this window
//	tenant   = "load"
//
//	[[endpoint]]
//	kind      = "solve"   # factor | solve | stream
//	weight    = 3
//	rows      = 96
//	cols      = 32
//	rhs       = 1
//	precision = "d"       # d | z | s | c
//
//	[[endpoint]]
//	kind   = "stream"
//	weight = 1
//	rows   = 64           # rows per appended batch
//	cols   = 32
type Scenario struct {
	BaseURL  string
	Duration time.Duration
	Threads  int
	Pacing   time.Duration
	RampUp   time.Duration
	Tenant   string

	Endpoints []Endpoint
}

// Endpoint is one member of the scenario's traffic mix.
type Endpoint struct {
	Kind       string // "factor", "solve" or "stream"
	Weight     int
	Rows, Cols int
	RHS        int
	Precision  string
	TileSize   int
	InnerBlock int
	// VaryMatrix randomizes the solve matrix per request. Off by default:
	// a fleet of solves against one shared design matrix is the
	// model-serving workload the server's coalescer accelerates.
	VaryMatrix bool
}

// tomlDuration reads a duration-valued key ("250ms", "2s").
func tomlDuration(t map[string]any, key string, def time.Duration) (time.Duration, error) {
	s, err := tomlStr(t, key, "")
	if err != nil {
		return 0, err
	}
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", key, err)
	}
	return d, nil
}

// loadScenario reads and validates a scenario file.
func loadScenario(path string) (*Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	root, err := parseTOML(string(raw))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sc := &Scenario{}
	if sc.BaseURL, err = tomlStr(root, "base_url", "http://127.0.0.1:8787"); err != nil {
		return nil, err
	}
	if sc.Duration, err = tomlDuration(root, "duration", 10*time.Second); err != nil {
		return nil, err
	}
	if sc.Threads, err = tomlInt(root, "threads", 4); err != nil {
		return nil, err
	}
	if sc.Pacing, err = tomlDuration(root, "pacing", 0); err != nil {
		return nil, err
	}
	if sc.RampUp, err = tomlDuration(root, "ramp_up", 0); err != nil {
		return nil, err
	}
	if sc.Tenant, err = tomlStr(root, "tenant", ""); err != nil {
		return nil, err
	}
	if sc.Duration <= 0 || sc.Threads < 1 {
		return nil, fmt.Errorf("%s: duration must be positive and threads ≥ 1", path)
	}
	eps, _ := root["endpoint"].([]map[string]any)
	if len(eps) == 0 {
		return nil, fmt.Errorf("%s: at least one [[endpoint]] is required", path)
	}
	for i, t := range eps {
		ep := Endpoint{}
		if ep.Kind, err = tomlStr(t, "kind", "solve"); err != nil {
			return nil, err
		}
		if ep.Weight, err = tomlInt(t, "weight", 1); err != nil {
			return nil, err
		}
		if ep.Rows, err = tomlInt(t, "rows", 64); err != nil {
			return nil, err
		}
		if ep.Cols, err = tomlInt(t, "cols", 32); err != nil {
			return nil, err
		}
		if ep.RHS, err = tomlInt(t, "rhs", 0); err != nil {
			return nil, err
		}
		if ep.Precision, err = tomlStr(t, "precision", "d"); err != nil {
			return nil, err
		}
		if ep.TileSize, err = tomlInt(t, "tile_size", 0); err != nil {
			return nil, err
		}
		if ep.InnerBlock, err = tomlInt(t, "inner_block", 0); err != nil {
			return nil, err
		}
		if ep.VaryMatrix, err = tomlBool(t, "vary_matrix", false); err != nil {
			return nil, err
		}
		switch ep.Kind {
		case "factor", "stream":
		case "solve":
			if ep.RHS < 1 {
				ep.RHS = 1
			}
			if ep.Rows < ep.Cols {
				return nil, fmt.Errorf("%s: endpoint %d: solve wants rows ≥ cols", path, i+1)
			}
		default:
			return nil, fmt.Errorf("%s: endpoint %d: unknown kind %q", path, i+1, ep.Kind)
		}
		if ep.Weight < 1 || ep.Rows < 1 || ep.Cols < 1 {
			return nil, fmt.Errorf("%s: endpoint %d: weight, rows and cols must be ≥ 1", path, i+1)
		}
		sc.Endpoints = append(sc.Endpoints, ep)
	}
	return sc, nil
}
