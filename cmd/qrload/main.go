// Command qrload drives load at a running qrserve and reports latency
// percentiles and sustained rows/sec — the harness that turns "serves heavy
// traffic" into a measured number. Scenarios are TOML files describing a
// duration, a thread count, pacing/ramp-up, and a weighted endpoint mix
// (one-shot factor, one-shot least-squares solve, streaming append); matrix
// data is generated on the fly from per-thread deterministic generators.
//
//	qrload -scenario testdata/scenarios/smoke.toml
//	qrload -scenario heavy.toml -url http://10.0.0.5:8787 -json load-report.json
//
// The JSON report shares the "serve" series shape with qrperf, so two runs
// gate against each other with `qrperf -compare old.json new.json`.
// qrload exits 1 when any request fails outright (429 backpressure counts
// as throttled, not failed) or when nothing succeeded.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"tiledqr/internal/serve"
)

var (
	flagScenario = flag.String("scenario", "", "scenario TOML file (required)")
	flagURL      = flag.String("url", "", "override the scenario's base_url")
	flagJSON     = flag.String("json", "", "write a JSON report here (qrperf -compare compatible)")
)

func main() {
	flag.Parse()
	if *flagScenario == "" {
		fmt.Fprintln(os.Stderr, "usage: qrload -scenario file.toml [-url http://host:port] [-json report.json]")
		os.Exit(2)
	}
	sc, err := loadScenario(*flagScenario)
	if err != nil {
		die(err)
	}
	if *flagURL != "" {
		sc.BaseURL = *flagURL
	}
	rep, err := run(sc)
	if err != nil {
		die(err)
	}
	rep.print(sc)
	if *flagJSON != "" {
		if err := rep.export(sc, *flagJSON); err != nil {
			die(err)
		}
	}
	if rep.failed > 0 || rep.ok == 0 {
		fmt.Fprintf(os.Stderr, "qrload: FAILED — %d failed requests, %d ok\n", rep.failed, rep.ok)
		os.Exit(1)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "qrload:", err)
	os.Exit(1)
}

// kindAgg accumulates one endpoint kind's results inside one worker (no
// locking: workers merge at the end).
type kindAgg struct {
	ok        int64
	failed    int64
	throttled int64
	rows      int64
	lat       []time.Duration
}

// report is the merged run outcome.
type report struct {
	elapsed   time.Duration
	ok        int64
	failed    int64
	throttled int64
	rows      int64
	lat       []time.Duration
	kinds     map[string]*kindAgg
}

// run executes the scenario and merges the per-worker results.
func run(sc *Scenario) (*report, error) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        sc.Threads * 2,
		MaxIdleConnsPerHost: sc.Threads * 2,
	}}
	// Fail fast when the server is not there rather than recording a
	// thread-count's worth of connection errors.
	if err := waitHealthy(client, sc.BaseURL, 5*time.Second); err != nil {
		return nil, err
	}
	// Shared per-endpoint design matrices (see Endpoint.VaryMatrix).
	shared := make([]*serve.Matrix, len(sc.Endpoints))
	for i, ep := range sc.Endpoints {
		shared[i] = randMatrix(rand.New(rand.NewSource(int64(1000+i))), ep.Rows, ep.Cols, isComplex(ep.Precision))
	}
	deadline := time.Now().Add(sc.RampUp + sc.Duration)
	results := make([]*report, sc.Threads)
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < sc.Threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if sc.RampUp > 0 && sc.Threads > 1 {
				time.Sleep(sc.RampUp * time.Duration(id) / time.Duration(sc.Threads))
			}
			results[id] = worker(client, sc, shared, id, deadline)
		}(t)
	}
	wg.Wait()
	merged := &report{elapsed: time.Since(start), kinds: map[string]*kindAgg{}}
	for _, r := range results {
		merged.ok += r.ok
		merged.failed += r.failed
		merged.throttled += r.throttled
		merged.rows += r.rows
		merged.lat = append(merged.lat, r.lat...)
		for k, a := range r.kinds {
			m := merged.kinds[k]
			if m == nil {
				m = &kindAgg{}
				merged.kinds[k] = m
			}
			m.ok += a.ok
			m.failed += a.failed
			m.throttled += a.throttled
			m.rows += a.rows
			m.lat = append(m.lat, a.lat...)
		}
	}
	sort.Slice(merged.lat, func(i, j int) bool { return merged.lat[i] < merged.lat[j] })
	return merged, nil
}

// waitHealthy polls /healthz until the server answers.
func waitHealthy(client *http.Client, base string, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s not healthy: %v", base, err)
			}
			return fmt.Errorf("server at %s not healthy", base)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// worker is one load thread: pick an endpoint by weight, fire, record,
// pace, until the deadline.
func worker(client *http.Client, sc *Scenario, shared []*serve.Matrix, id int, deadline time.Time) *report {
	rng := rand.New(rand.NewSource(int64(7919*id + 13)))
	rep := &report{kinds: map[string]*kindAgg{}}
	total := 0
	for _, ep := range sc.Endpoints {
		total += ep.Weight
	}
	streams := make(map[int]string) // endpoint index -> session id
	for time.Now().Before(deadline) {
		ei := pickEndpoint(rng, sc.Endpoints, total)
		ep := &sc.Endpoints[ei]
		agg := rep.kinds[ep.Kind]
		if agg == nil {
			agg = &kindAgg{}
			rep.kinds[ep.Kind] = agg
		}
		var (
			status int
			rows   int64
			err    error
		)
		t0 := time.Now()
		switch ep.Kind {
		case "factor":
			status, err = doFactor(client, sc, rng, ep)
			rows = int64(ep.Rows)
		case "solve":
			status, err = doSolve(client, sc, rng, ep, shared[ei])
			rows = int64(ep.Rows)
		case "stream":
			status, err = doStream(client, sc, rng, ep, streams, ei)
			rows = int64(ep.Rows)
		}
		lat := time.Since(t0)
		switch {
		case err != nil || status >= 500 || (status >= 400 && status != http.StatusTooManyRequests):
			agg.failed++
			rep.failed++
		case status == http.StatusTooManyRequests:
			agg.throttled++
			rep.throttled++
			time.Sleep(retryAfter())
		default:
			agg.ok++
			rep.ok++
			agg.rows += rows
			rep.rows += rows
			agg.lat = append(agg.lat, lat)
			rep.lat = append(rep.lat, lat)
		}
		if sc.Pacing > 0 {
			time.Sleep(sc.Pacing)
		}
	}
	// Finalize streams: one solve where the maths permits, then delete.
	for ei, id := range streams {
		ep := &sc.Endpoints[ei]
		if ep.RHS > 0 {
			resp, err := client.Get(sc.BaseURL + "/v1/streams/" + id + "/solve")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		req, _ := http.NewRequest(http.MethodDelete, sc.BaseURL+"/v1/streams/"+id, nil)
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	return rep
}

// retryAfter is how long a throttled worker backs off: a bounded slice of
// the server's suggested second.
func retryAfter() time.Duration { return 100 * time.Millisecond }

func pickEndpoint(rng *rand.Rand, eps []Endpoint, total int) int {
	n := rng.Intn(total)
	for i := range eps {
		n -= eps[i].Weight
		if n < 0 {
			return i
		}
	}
	return len(eps) - 1
}

func isComplex(prec string) bool { return prec == "z" || prec == "c" }

// randMatrix builds a wire matrix with standard-normal entries.
func randMatrix(rng *rand.Rand, rows, cols int, complexData bool) *serve.Matrix {
	n := rows * cols
	if complexData {
		n *= 2
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return &serve.Matrix{Rows: rows, Cols: cols, Data: data}
}

// post sends a JSON body and returns the HTTP status.
func post(client *http.Client, sc *Scenario, url string, body any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if sc.Tenant != "" {
		req.Header.Set("X-Tenant", sc.Tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func wireOptions(ep *Endpoint) *serve.WireOptions {
	if ep.TileSize == 0 && ep.InnerBlock == 0 {
		return nil
	}
	return &serve.WireOptions{TileSize: ep.TileSize, InnerBlock: ep.InnerBlock}
}

func doFactor(client *http.Client, sc *Scenario, rng *rand.Rand, ep *Endpoint) (int, error) {
	return post(client, sc, sc.BaseURL+"/v1/factor", map[string]any{
		"precision": ep.Precision,
		"matrix":    randMatrix(rng, ep.Rows, ep.Cols, isComplex(ep.Precision)),
		"options":   wireOptions(ep),
	})
}

func doSolve(client *http.Client, sc *Scenario, rng *rand.Rand, ep *Endpoint, shared *serve.Matrix) (int, error) {
	m := shared
	if ep.VaryMatrix {
		m = randMatrix(rng, ep.Rows, ep.Cols, isComplex(ep.Precision))
	}
	return post(client, sc, sc.BaseURL+"/v1/solve", map[string]any{
		"precision": ep.Precision,
		"matrix":    m,
		"rhs":       randMatrix(rng, ep.Rows, ep.RHS, isComplex(ep.Precision)),
		"options":   wireOptions(ep),
	})
}

// doStream appends one batch to the worker's session for this endpoint,
// creating the session on first use (or after an eviction 404).
func doStream(client *http.Client, sc *Scenario, rng *rand.Rand, ep *Endpoint, streams map[int]string, ei int) (int, error) {
	id, ok := streams[ei]
	if !ok {
		raw, err := json.Marshal(map[string]any{
			"precision": ep.Precision,
			"cols":      ep.Cols,
			"options":   wireOptions(ep),
		})
		if err != nil {
			return 0, err
		}
		req, err := http.NewRequest(http.MethodPost, sc.BaseURL+"/v1/streams", bytes.NewReader(raw))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		if sc.Tenant != "" {
			req.Header.Set("X-Tenant", sc.Tenant)
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		var created struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&created)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, nil
		}
		if err != nil {
			return 0, err
		}
		id = created.ID
		streams[ei] = id
	}
	body := map[string]any{"batch": randMatrix(rng, ep.Rows, ep.Cols, isComplex(ep.Precision))}
	if ep.RHS > 0 {
		body["rhs"] = randMatrix(rng, ep.Rows, ep.RHS, isComplex(ep.Precision))
	}
	status, err := post(client, sc, sc.BaseURL+"/v1/streams/"+id+"/rows", body)
	if status == http.StatusNotFound {
		// The session aged out of the table; rebuild next iteration.
		delete(streams, ei)
	}
	return status, err
}

// quantile returns the q-quantile of sorted latencies.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (r *report) print(sc *Scenario) {
	fmt.Printf("qrload: %s — %d threads, %v (+%v ramp-up), pacing %v\n",
		*flagScenario, sc.Threads, sc.Duration, sc.RampUp, sc.Pacing)
	fmt.Printf("  requests: %d ok, %d failed, %d throttled (429)\n", r.ok, r.failed, r.throttled)
	if len(r.lat) > 0 {
		fmt.Printf("  latency:  p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
			ms(quantile(r.lat, 0.50)), ms(quantile(r.lat, 0.95)),
			ms(quantile(r.lat, 0.99)), ms(r.lat[len(r.lat)-1]))
	}
	sec := r.elapsed.Seconds()
	fmt.Printf("  throughput: %.1f req/sec, %.0f rows/sec over %.2fs\n",
		float64(r.ok)/sec, float64(r.rows)/sec, sec)
	kinds := make([]string, 0, len(r.kinds))
	for k := range r.kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		a := r.kinds[k]
		sort.Slice(a.lat, func(i, j int) bool { return a.lat[i] < a.lat[j] })
		fmt.Printf("  %-8s %d ok, %d failed, %d throttled, p99 %.2fms, %.0f rows/sec\n",
			k+":", a.ok, a.failed, a.throttled, ms(quantile(a.lat, 0.99)), float64(a.rows)/sec)
	}
}

// exportEndpoint and the export* types mirror the text report as JSON. The
// top-level "serve" object is the series qrperf -compare gates on.
type exportEndpoint struct {
	// Count is the total requests sent to the endpoint (ok + failed +
	// throttled) — the denominator the percentile below is drawn from.
	// Earlier reports omitted it, so a kind whose requests all failed was
	// indistinguishable from one that was never exercised.
	Count      int64   `json:"count"`
	OK         int64   `json:"ok"`
	Failed     int64   `json:"failed"`
	Throttled  int64   `json:"throttled"`
	P99MS      float64 `json:"p99_ms"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

type exportFile struct {
	Serve struct {
		RowsPerSec     float64 `json:"rows_per_sec"`
		RequestsPerSec float64 `json:"requests_per_sec"`
	} `json:"serve"`
	Load struct {
		Scenario    string                    `json:"scenario"`
		Threads     int                       `json:"threads"`
		DurationSec float64                   `json:"duration_sec"`
		Requests    int64                     `json:"requests"`
		Failed      int64                     `json:"failed"`
		Throttled   int64                     `json:"throttled"`
		P50MS       float64                   `json:"p50_ms"`
		P95MS       float64                   `json:"p95_ms"`
		P99MS       float64                   `json:"p99_ms"`
		Endpoints   map[string]exportEndpoint `json:"endpoints"`
	} `json:"load"`
}

func (r *report) export(sc *Scenario, path string) error {
	var out exportFile
	sec := r.elapsed.Seconds()
	out.Serve.RowsPerSec = float64(r.rows) / sec
	out.Serve.RequestsPerSec = float64(r.ok) / sec
	out.Load.Scenario = *flagScenario
	out.Load.Threads = sc.Threads
	out.Load.DurationSec = sec
	out.Load.Requests = r.ok
	out.Load.Failed = r.failed
	out.Load.Throttled = r.throttled
	out.Load.P50MS = ms(quantile(r.lat, 0.50))
	out.Load.P95MS = ms(quantile(r.lat, 0.95))
	out.Load.P99MS = ms(quantile(r.lat, 0.99))
	out.Load.Endpoints = map[string]exportEndpoint{}
	for k, a := range r.kinds {
		out.Load.Endpoints[k] = exportEndpoint{
			Count: a.ok + a.failed + a.throttled,
			OK:    a.ok, Failed: a.failed, Throttled: a.throttled,
			P99MS:      ms(quantile(a.lat, 0.99)),
			RowsPerSec: float64(a.rows) / sec,
		}
	}
	raw, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
