package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestExportRoundTrip writes a report through the JSON exporter and reads
// it back, gating the per-kind breakdown: every endpoint entry must carry
// a count equal to ok+failed+throttled, so an all-failing endpoint is
// distinguishable from one the scenario never exercised.
func TestExportRoundTrip(t *testing.T) {
	r := &report{
		elapsed: 2 * time.Second,
		ok:      30, failed: 2, throttled: 4, rows: 6000,
		lat: []time.Duration{time.Millisecond, 2 * time.Millisecond, 9 * time.Millisecond},
		kinds: map[string]*kindAgg{
			"factor": {ok: 20, failed: 0, throttled: 4, rows: 5000,
				lat: []time.Duration{time.Millisecond, 9 * time.Millisecond}},
			"solve": {ok: 10, failed: 2, throttled: 0, rows: 1000,
				lat: []time.Duration{2 * time.Millisecond}},
		},
	}
	sc := &Scenario{Threads: 3}
	path := filepath.Join(t.TempDir(), "load.json")
	if err := r.export(sc, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var got exportFile
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	want := map[string]int64{"factor": 24, "solve": 12}
	for kind, n := range want {
		ep, ok := got.Load.Endpoints[kind]
		if !ok {
			t.Fatalf("endpoint %q missing from export", kind)
		}
		if ep.Count != n {
			t.Errorf("%s: count = %d, want %d", kind, ep.Count, n)
		}
		if ep.Count != ep.OK+ep.Failed+ep.Throttled {
			t.Errorf("%s: count %d != ok %d + failed %d + throttled %d",
				kind, ep.Count, ep.OK, ep.Failed, ep.Throttled)
		}
	}

	// The field must be present on the wire under its documented name, not
	// just populated in the struct — external dashboards key on "count".
	var loose struct {
		Load struct {
			Endpoints map[string]map[string]any `json:"endpoints"`
		} `json:"load"`
	}
	if err := json.Unmarshal(raw, &loose); err != nil {
		t.Fatal(err)
	}
	for kind, fields := range loose.Load.Endpoints {
		if _, ok := fields["count"]; !ok {
			t.Errorf("endpoint %q: no \"count\" key in exported JSON", kind)
		}
	}
}
