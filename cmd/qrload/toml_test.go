package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseTOML(t *testing.T) {
	root, err := parseTOML(`
# a scenario
base_url = "http://example:1"   # trailing comment
duration = "2s"
threads  = 3
paced    = true
ratio    = 0.5

[meta]
note = "with # inside a string"

[[endpoint]]
kind = "solve"
rows = 8

[[endpoint]]
kind = "factor"
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := root["base_url"]; got != "http://example:1" {
		t.Fatalf("base_url = %v", got)
	}
	if got := root["threads"]; got != int64(3) {
		t.Fatalf("threads = %v (%T)", got, got)
	}
	if got := root["paced"]; got != true {
		t.Fatalf("paced = %v", got)
	}
	if got := root["ratio"]; got != 0.5 {
		t.Fatalf("ratio = %v", got)
	}
	meta, ok := root["meta"].(map[string]any)
	if !ok || meta["note"] != "with # inside a string" {
		t.Fatalf("meta = %v", root["meta"])
	}
	eps, ok := root["endpoint"].([]map[string]any)
	if !ok || len(eps) != 2 {
		t.Fatalf("endpoint = %v", root["endpoint"])
	}
	if eps[0]["kind"] != "solve" || eps[0]["rows"] != int64(8) || eps[1]["kind"] != "factor" {
		t.Fatalf("endpoints = %v", eps)
	}
}

func TestParseTOMLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no equals", "just words\n", "key = value"},
		{"dup key", "a = 1\na = 2\n", "duplicate key"},
		{"bad value", "a = [1, 2]\n", "unsupported value"},
		{"unterminated string", `a = "oops` + "\n", "unterminated"},
		{"dotted table", "[a.b]\n", "bad table header"},
		{"value then table", "e = 1\n[[e]]\n", "both a value and a table array"},
	}
	for _, tc := range cases {
		_, err := parseTOML(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestLoadScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.toml")
	if err := os.WriteFile(path, []byte(`
duration = "1s"
threads  = 2
pacing   = "5ms"
ramp_up  = "100ms"
tenant   = "load"

[[endpoint]]
kind      = "solve"
weight    = 3
rows      = 16
cols      = 8
precision = "z"

[[endpoint]]
kind = "stream"
rows = 32
cols = 8
`), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := loadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Duration != time.Second || sc.Threads != 2 || sc.Pacing != 5*time.Millisecond ||
		sc.RampUp != 100*time.Millisecond || sc.Tenant != "load" {
		t.Fatalf("scenario globals %+v", sc)
	}
	if sc.BaseURL != "http://127.0.0.1:8787" {
		t.Fatalf("default base_url = %q", sc.BaseURL)
	}
	if len(sc.Endpoints) != 2 {
		t.Fatalf("endpoints = %+v", sc.Endpoints)
	}
	ep := sc.Endpoints[0]
	if ep.Kind != "solve" || ep.Weight != 3 || ep.Rows != 16 || ep.Cols != 8 || ep.Precision != "z" {
		t.Fatalf("endpoint 0 = %+v", ep)
	}
	if ep.RHS != 1 {
		t.Fatalf("solve endpoint RHS defaulted to %d, want 1", ep.RHS)
	}
	if sc.Endpoints[1].Weight != 1 {
		t.Fatalf("endpoint 1 weight defaulted to %d, want 1", sc.Endpoints[1].Weight)
	}
}

func TestLoadScenarioRejects(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no endpoints", `duration = "1s"` + "\n"},
		{"bad kind", "[[endpoint]]\nkind = \"warp\"\n"},
		{"underdetermined solve", "[[endpoint]]\nkind = \"solve\"\nrows = 4\ncols = 8\n"},
		{"bad duration", `duration = "fast"` + "\n[[endpoint]]\nkind = \"factor\"\n"},
		{"zero threads", "threads = 0\n[[endpoint]]\nkind = \"factor\"\n"},
	}
	for _, tc := range cases {
		path := filepath.Join(t.TempDir(), "s.toml")
		if err := os.WriteFile(path, []byte(tc.src), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadScenario(path); err == nil {
			t.Errorf("%s: scenario accepted, want error", tc.name)
		}
	}
}
