// Command qrserve puts the tiled QR runtime behind an HTTP/JSON front end —
// QR as a service. It exposes one-shot factorization and least-squares
// endpoints, session-oriented streaming TSQR (rows arrive in batches,
// solves are served from the resident triangle), and reusable FactorInto
// sessions, in all four precisions, with per-tenant admission quotas,
// queue-depth backpressure (429 + Retry-After), same-matrix solve
// coalescing, and a graceful SIGTERM drain: in-flight requests finish, new
// ones get 503, and the runtime quiesces before the process exits.
//
//	qrserve -addr :8787
//	curl -s localhost:8787/healthz
//	curl -s localhost:8787/statsz | jq .
//	curl -s -X POST localhost:8787/v1/factor -d '{"matrix":{"rows":2,"cols":2,"data":[1,2,3,4]}}'
//
// See the README's "QR as a service" section for the endpoint reference and
// cmd/qrload for the matching load harness.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tiledqr"
	"tiledqr/internal/serve"
)

var (
	flagAddr     = flag.String("addr", "127.0.0.1:8787", "listen address (host:port; port 0 picks a free port)")
	flagAddrFile = flag.String("addr-file", "", "write the resolved listen address to this file (for scripts)")
	flagWorkers  = flag.Int("workers", 0, "runtime workers (0 = TILEDQR_WORKERS or GOMAXPROCS)")

	flagQueueDepth = flag.Int("max-queue", 0, "runtime task-backlog bound for 429 backpressure (0 = 512×workers, <0 disables)")
	flagTenantAct  = flag.Int("tenant-active", 0, "per-tenant concurrent requests (0 = default 32, <0 disables quotas)")
	flagTenantQ    = flag.Int("tenant-queued", 0, "per-tenant waiting requests (0 = default 64)")

	flagCoalesce    = flag.Duration("coalesce", 0, "same-matrix solve coalescing window (0 = default 2ms, <0 disables)")
	flagSessionTTL  = flag.Duration("session-ttl", 0, "idle session eviction TTL (0 = default 5m)")
	flagMaxSessions = flag.Int("max-sessions", 0, "session table bound (0 = default 1024)")

	flagDrainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight work on SIGTERM")
	flagDrainGrace   = flag.Duration("drain-grace", 0, "keep answering 503 for this long after the drain completes before closing the listener")
)

func main() {
	flag.Parse()
	log.SetPrefix("qrserve: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rt := tiledqr.NewRuntime(*flagWorkers)
	defer rt.Close()
	srv := serve.New(serve.Config{
		Runtime:        rt,
		MaxQueueDepth:  *flagQueueDepth,
		TenantActive:   *flagTenantAct,
		TenantQueued:   *flagTenantQ,
		CoalesceWindow: *flagCoalesce,
		SessionTTL:     *flagSessionTTL,
		MaxSessions:    *flagMaxSessions,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *flagAddr)
	if err != nil {
		return err
	}
	if *flagAddrFile != "" {
		if err := os.WriteFile(*flagAddrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("listening on %s (%d workers)", ln.Addr(), rt.Workers())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case got := <-sig:
		log.Printf("%v: draining — in-flight requests finish, new ones get 503", got)
	}

	// Drain sequence: stop admitting (503), let in-flight requests finish,
	// quiesce the runtime, optionally keep 503ing through the grace window
	// (so load balancers observe the drain), then close the listener.
	srv.StartDrain()
	deadline := time.Now().Add(*flagDrainTimeout)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	if err := srv.AwaitIdle(ctx); err != nil {
		log.Printf("drain: in-flight requests still running at deadline: %v", err)
	}
	if err := rt.Drain(ctx); err != nil {
		log.Printf("drain: runtime still busy at deadline: %v", err)
	}
	if *flagDrainGrace > 0 {
		time.Sleep(*flagDrainGrace)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("drained cleanly")
	return nil
}
