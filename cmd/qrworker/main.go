// Command qrworker is one shard of a distributed CAQR run: it connects to
// a qrdist coordinator, receives its rank, shard and reduction-tree peer
// table, and runs local tiled QR rounds, feeding its R triangles up the
// TTQRT tree. It has no flags beyond the coordinator address — every
// parameter comes over the wire — and no signal handling of its own:
// shutdown is coordinated by the coordinator's drain protocol, so all
// workers stop at the same round.
//
//	qrworker -connect 127.0.0.1:7421
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"tiledqr/internal/dist"
)

var flagConnect = flag.String("connect", "", "coordinator address (required)")

func main() {
	flag.Parse()
	if *flagConnect == "" {
		fmt.Fprintln(os.Stderr, "qrworker: -connect is required")
		os.Exit(2)
	}
	if err := dist.RunWorker(context.Background(), *flagConnect); err != nil {
		fmt.Fprintln(os.Stderr, "qrworker:", err)
		os.Exit(1)
	}
}
