// Command qrtables regenerates the critical-path tables of the paper:
//
//	qrtables -table 2    coarse-grain time-steps, 15×6 (Sameh-Kuck, Fibonacci, Greedy)
//	qrtables -table 3    tiled time-steps, 15×6 (FlatTree, Fibonacci, Greedy, BinaryTree, PlasmaTree BS=5)
//	qrtables -table 4a   Greedy vs Asap vs Grasap(1) tiled time-steps, 15×3
//	qrtables -table 4b   Greedy vs Asap critical paths, p,q ∈ {16,32,64,128}
//	qrtables -table 5    theoretical critical paths, p=40, q=1..40, with PlasmaTree BS sweep
//	qrtables -table all  everything
//
// Two extension tables answer questions the paper leaves open:
//
//	qrtables -table grasap   best Grasap(k) per shape (§3.2 asks for the best k)
//	qrtables -table banded   exhaustive optimum for banded matrices vs the
//	                         22q−30 claim behind Theorem 1(3)
//
// All paper numbers are platform-independent and match exactly (two
// single-cell deviations in the Asap family are documented in
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"tiledqr/internal/core"
	"tiledqr/internal/exhaustive"
	"tiledqr/internal/sim"
)

func main() {
	table := flag.String("table", "all", "which table: 2, 3, 4a, 4b, 5, grasap, banded, all")
	flag.Parse()
	switch *table {
	case "2":
		table2()
	case "3":
		table3()
	case "4a":
		table4a()
	case "4b":
		table4b()
	case "5":
		table5()
	case "grasap":
		tableGrasap()
	case "banded":
		tableBanded()
	case "all":
		table2()
		table3()
		table4a()
		table4b()
		table5()
		tableGrasap()
		tableBanded()
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
}

// tableGrasap sweeps Grasap's k for a grid of shapes — the paper's open
// question "determine the best value of k as a function of p and q".
func tableGrasap() {
	fmt.Println("\nExtension: best Grasap(k) (sweep over k; Grasap(0)=Greedy, Grasap(q)=Asap)")
	w := tabwriter.NewWriter(os.Stdout, 6, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "p\tq\tGreedy\tAsap\tbest k\tGrasap(k)\tgain vs Greedy\t")
	for _, s := range [][2]int{{15, 2}, {15, 3}, {15, 6}, {30, 4}, {40, 6}, {40, 10}, {40, 40}, {64, 8}} {
		p, q := s[0], s[1]
		_, greedy := core.StaticListTimes(core.GreedyList(p, q))
		_, _, asap := core.AsapList(p, q)
		bestK, bestCP := 0, greedy
		for k := 0; k <= min(p, q); k++ {
			_, _, cp := core.GrasapList(p, q, k)
			if cp < bestCP {
				bestK, bestCP = k, cp
			}
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%.3f%%\t\n",
			p, q, greedy, asap, bestK, bestCP, 100*(1-float64(bestCP)/float64(greedy)))
	}
	w.Flush()
}

// tableBanded reruns the paper's Theorem 1(3) sanity-check program: the
// exhaustively optimal critical path for a q×q matrix with three non-zero
// sub-diagonals, compared against the claimed 22q−30.
func tableBanded() {
	fmt.Println("\nExtension: exhaustive optimum, q×q banded (3 sub-diagonals) vs the paper's 22q−30")
	w := tabwriter.NewWriter(os.Stdout, 6, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "q\toptimal\t22q−30\tper-column increment\t")
	prev := 0
	for q := 2; q <= 8; q++ {
		s := exhaustive.New(q, q, 3)
		cp := s.OptimalCP()
		inc := "-"
		if prev > 0 {
			inc = fmt.Sprintf("%d", cp-prev)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%s\t\n", q, cp, 22*q-30, inc)
		prev = cp
	}
	w.Flush()
	fmt.Println("agreement at q=4,5; from q=6 the optimum needs only 16 units per column (see EXPERIMENTS.md)")
}

func printStepTable(title string, p, qmin int, cols []string, value func(alg int, i, k int) int) {
	fmt.Printf("\n%s\n", title)
	w := tabwriter.NewWriter(os.Stdout, 3, 0, 1, ' ', tabwriter.AlignRight)
	for i := 2; i <= p; i++ {
		for a := range cols {
			for k := 1; k <= min(i-1, qmin); k++ {
				fmt.Fprintf(w, "%d\t", value(a, i, k))
			}
			fmt.Fprint(w, "  |\t")
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Print("columns: ")
	for i, c := range cols {
		if i > 0 {
			fmt.Print(" | ")
		}
		fmt.Print(c)
	}
	fmt.Println()
}

func table2() {
	const p, q = 15, 6
	sk, _ := core.CoarseSchedule(core.FlatTreeList(p, q))
	gr, _ := core.CoarseSchedule(core.GreedyList(p, q))
	printStepTable("Table 2: coarse-grain time-steps (15×6)", p, q,
		[]string{"Sameh-Kuck", "Fibonacci", "Greedy"},
		func(a, i, k int) int {
			switch a {
			case 0:
				return sk[i-1][k-1]
			case 1:
				return core.FibonacciCoarseStep(p, i, k)
			default:
				return gr[i-1][k-1]
			}
		})
}

func tiledZero(list core.List) [][]int {
	return sim.ASAP(core.BuildDAG(list, core.TT)).ZeroTimes()
}

func table3() {
	const p, q = 15, 6
	tables := [][][]int{
		tiledZero(core.FlatTreeList(p, q)),
		tiledZero(core.FibonacciList(p, q)),
		tiledZero(core.GreedyList(p, q)),
		tiledZero(core.BinaryTreeList(p, q)),
		tiledZero(core.PlasmaTreeList(p, q, 5)),
	}
	printStepTable("Table 3: tiled time-steps, TT kernels (15×6)", p, q,
		[]string{"FlatTree", "Fibonacci", "Greedy", "BinaryTree", "PlasmaTree(BS=5)"},
		func(a, i, k int) int { return tables[a][i-1][k-1] })
}

func table4a() {
	const p, q = 15, 3
	greedy, _ := core.StaticListTimes(core.GreedyList(p, q))
	_, asap, _ := core.AsapList(p, q)
	_, grasap, _ := core.GrasapList(p, q, 1)
	tables := [][][]int{greedy, asap, grasap}
	printStepTable("Table 4(a): Greedy vs Asap vs Grasap(1) tiled time-steps (15×3)", p, q,
		[]string{"Greedy", "Asap", "Grasap(1)"},
		func(a, i, k int) int { return tables[a][i-1][k-1] })
}

func table4b() {
	fmt.Println("\nTable 4(b): critical paths, Greedy vs Asap")
	w := tabwriter.NewWriter(os.Stdout, 6, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "p\tq\tGreedy\tAsap\t")
	for _, p := range []int{16, 32, 64, 128} {
		for _, q := range []int{16, 32, 64, 128} {
			if q > p {
				continue
			}
			g := sim.CriticalPathList(core.GreedyList(p, q), core.TT)
			_, _, a := core.AsapList(p, q)
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t\n", p, q, g, a)
		}
	}
	w.Flush()
}

func table5() {
	const p = 40
	fmt.Println("\nTable 5: theoretical critical paths, p=40 (TT kernels)")
	w := tabwriter.NewWriter(os.Stdout, 6, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "p\tq\tGreedy\tPlasmaTree\tBS\toverhead\tgain\tFibonacci\toverhead\tgain\t")
	for q := 1; q <= p; q++ {
		g := sim.CriticalPathList(core.GreedyList(p, q), core.TT)
		bs, pt := sim.BestPlasmaBS(p, q, core.TT)
		fib := sim.CriticalPathList(core.FibonacciList(p, q), core.TT)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.4f\t%.4f\t%d\t%.4f\t%.4f\t\n",
			p, q, g, pt, bs,
			float64(pt)/float64(g), 1-float64(g)/float64(pt),
			fib, float64(fib)/float64(g), 1-float64(g)/float64(fib))
	}
	w.Flush()
}
