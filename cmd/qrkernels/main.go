// Command qrkernels regenerates Figures 4 and 5 of the paper: sequential
// kernel performance (GFLOP/s) versus tile size, in cache and out of cache,
// for both precisions.
//
// The comparison of interest: a TT algorithm calls GEQRT+TTQRT where a TS
// algorithm calls one TSQRT (and UNMQR+TTMQR versus one TSMQR), so the
// figures report those pairs side by side, plus GEMM as the roofline
// reference. The paper's MKL kernels show a ratio TSQRT/(GEQRT+TTQRT) of
// about 1.32–1.34; the pure-Go kernels here show the same locality effect
// with their own constant.
//
// In-cache follows the No-Flush strategy (repeatedly time the same tiles);
// out-of-cache cycles over a working set larger than the last-level cache
// (MultCallFlushLRU), per Whaley & Castaldo [17] and Agullo et al. [1].
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"tiledqr/internal/kernel"
	"tiledqr/internal/tile"
	"tiledqr/internal/zkernel"
)

var (
	flagIB    = flag.Int("ib", 32, "inner blocking")
	flagSizes = flag.String("sizes", "100,200,300,400,500,600", "tile sizes to sweep")
	flagCache = flag.Int("cachemb", 8, "assumed last-level cache size (MB) for the out-of-cache working set")
	flagReps  = flag.Int("minreps", 3, "minimum repetitions per measurement")
)

// flops per kernel call at tile size nb, real arithmetic, from the Table 1
// weights (units of nb³/3).
func kernelFlops(weight, nb int) float64 {
	return float64(weight) * float64(nb) * float64(nb) * float64(nb) / 3
}

func main() {
	flag.Parse()
	var sizes []int
	for _, s := range splitComma(*flagSizes) {
		var v int
		fmt.Sscanf(s, "%d", &v)
		if v > 0 {
			sizes = append(sizes, v)
		}
	}
	for _, complexArith := range []bool{true, false} {
		prec, figure := "double", "Figure 5"
		if complexArith {
			prec, figure = "double complex", "Figure 4"
		}
		fmt.Printf("\n%s: sequential kernel GFLOP/s, %s precision (ib=%d)\n", figure, prec, *flagIB)
		w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(w, "nb\tcache\tGEQRT\tTTQRT\tGEQRT+TTQRT\tTSQRT\tratio\tUNMQR\tTTMQR\tUNMQR+TTMQR\tTSMQR\tratio\tGEMM\t")
		for _, nb := range sizes {
			for _, out := range []bool{false, true} {
				r := measureRow(nb, *flagIB, out, complexArith)
				loc := "in"
				if out {
					loc = "out"
				}
				fmt.Fprintf(w, "%d\t%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t\n",
					nb, loc, r.geqrt, r.ttqrt, r.pairFactor, r.tsqrt, r.tsqrt/r.pairFactor,
					r.unmqr, r.ttmqr, r.pairUpdate, r.tsmqr, r.tsmqr/r.pairUpdate, r.gemm)
			}
		}
		w.Flush()
	}
	fmt.Println("\nratio = TS kernel speed over the equivalent TT pair (the paper's MKL kernels: ≈1.32)")
}

type row struct {
	geqrt, ttqrt, tsqrt, unmqr, ttmqr, tsmqr, gemm float64
	pairFactor, pairUpdate                         float64
}

// measureRow measures every kernel at one tile size. For out-of-cache runs
// the tile pool exceeds the configured cache size so that each call starts
// from cold tiles.
func measureRow(nb, ib int, outOfCache, complexArith bool) row {
	elem := 8
	if complexArith {
		elem = 16
	}
	pool := 1
	if outOfCache {
		bytesPerSet := 4 * nb * nb * elem // the ~4 tiles a call touches
		pool = (*flagCache)*1024*1024/bytesPerSet + 2
	}
	var r row
	gflops := func(weight int, sec float64) float64 {
		f := kernelFlops(weight, nb)
		if complexArith {
			f *= 4
		}
		return f / sec / 1e9
	}
	if complexArith {
		m := newZPool(nb, pool)
		r.geqrt = gflops(4, m.time(func(i int) { m.geqrt(i) }))
		r.unmqr = gflops(6, m.time(func(i int) { m.unmqr(i) }))
		r.tsqrt = gflops(6, m.time(func(i int) { m.tsqrt(i) }))
		r.tsmqr = gflops(12, m.time(func(i int) { m.tsmqr(i) }))
		r.ttqrt = gflops(2, m.time(func(i int) { m.ttqrt(i) }))
		r.ttmqr = gflops(6, m.time(func(i int) { m.ttmqr(i) }))
		r.gemm = gflops(6, m.time(func(i int) { m.gemm(i) })) // 2nb³ flops = weight 6
	} else {
		m := newDPool(nb, pool)
		r.geqrt = gflops(4, m.time(func(i int) { m.geqrt(i) }))
		r.unmqr = gflops(6, m.time(func(i int) { m.unmqr(i) }))
		r.tsqrt = gflops(6, m.time(func(i int) { m.tsqrt(i) }))
		r.tsmqr = gflops(12, m.time(func(i int) { m.tsmqr(i) }))
		r.ttqrt = gflops(2, m.time(func(i int) { m.ttqrt(i) }))
		r.ttmqr = gflops(6, m.time(func(i int) { m.ttmqr(i) }))
		r.gemm = gflops(6, m.time(func(i int) { m.gemm(i) }))
	}
	// A TT algorithm needs GEQRT+TTQRT to do one TSQRT's job: aggregate
	// rate = combined flops / combined time.
	fG, fT2, fTS := kernelFlops(4, nb), kernelFlops(2, nb), kernelFlops(6, nb)
	r.pairFactor = (fG + fT2) / (fG/r.geqrt + fT2/r.ttqrt)
	fU, fTT, fTSM := kernelFlops(6, nb), kernelFlops(6, nb), kernelFlops(12, nb)
	r.pairUpdate = (fU + fTT) / (fU/r.unmqr + fTT/r.ttmqr)
	_ = fTS
	_ = fTSM
	return r
}

// dPool owns reusable real tile sets for the kernel measurements.
type dPool struct {
	nb, ib int
	aTri   []*tile.Dense // triangular tops (post-GEQRT)
	full   []*tile.Dense
	c1, c2 []*tile.Dense
	vTS    []*tile.Dense // TSQRT reflectors
	vTT    []*tile.Dense // TTQRT reflectors (triangular)
	tf, t2 []float64
	work   []float64
	reps   int
}

func newDPool(nb, pool int) *dPool {
	ib := *flagIB
	p := &dPool{nb: nb, ib: ib,
		tf: make([]float64, ib*nb), t2: make([]float64, ib*nb),
		work: make([]float64, kernel.WorkLen(nb, ib)),
	}
	for i := 0; i < pool; i++ {
		tri := tile.RandDense(nb, nb, int64(i))
		kernel.GEQRT(nb, nb, ib, tri.Data, tri.Stride, p.tf, nb, p.work)
		p.aTri = append(p.aTri, tri)
		p.full = append(p.full, tile.RandDense(nb, nb, int64(1000+i)))
		p.c1 = append(p.c1, tile.RandDense(nb, nb, int64(2000+i)))
		p.c2 = append(p.c2, tile.RandDense(nb, nb, int64(3000+i)))
		vts := tile.RandDense(nb, nb, int64(4000+i))
		kernel.TSQRT(nb, nb, ib, tri.Clone().Data, nb, vts.Data, nb, p.t2, nb, p.work)
		p.vTS = append(p.vTS, vts)
		vtt := tile.RandDense(nb, nb, int64(5000+i))
		kernel.GEQRT(nb, nb, ib, vtt.Data, nb, p.tf, nb, p.work)
		kernel.TTQRT(nb, nb, ib, tri.Clone().Data, nb, vtt.Data, nb, p.t2, nb, p.work)
		p.vTT = append(p.vTT, vtt)
	}
	// Aim for ~100 MFLOP per measurement.
	p.reps = 1 + int(1e8/(2*float64(nb)*float64(nb)*float64(nb)))
	if p.reps < *flagReps {
		p.reps = *flagReps
	}
	if pool > 1 && p.reps < pool {
		p.reps = pool // touch the whole pool at least once
	}
	return p
}

func (p *dPool) time(f func(i int)) float64 {
	return measureLoop(p.reps, len(p.aTri), f)
}

// measureLoop runs f in batches of reps calls until at least 200 ms have
// been sampled, returning seconds per call; this keeps the cheap kernels
// (TTQRT is 3× shorter than GEQRT) out of timer-resolution noise.
func measureLoop(reps, pool int, f func(i int)) float64 {
	total := 0
	start := time.Now()
	for {
		for r := 0; r < reps; r++ {
			f((total + r) % pool)
		}
		total += reps
		if time.Since(start) >= 200*time.Millisecond {
			return time.Since(start).Seconds() / float64(total)
		}
	}
}

func (p *dPool) geqrt(i int) {
	kernel.GEQRT(p.nb, p.nb, p.ib, p.full[i].Data, p.nb, p.tf, p.nb, p.work)
}
func (p *dPool) unmqr(i int) {
	kernel.UNMQR(true, p.nb, p.nb, p.ib, p.aTri[i].Data, p.nb, p.tf, p.nb, p.c1[i].Data, p.nb, p.nb, p.work)
}
func (p *dPool) tsqrt(i int) {
	kernel.TSQRT(p.nb, p.nb, p.ib, p.aTri[i].Data, p.nb, p.full[i].Data, p.nb, p.t2, p.nb, p.work)
}
func (p *dPool) tsmqr(i int) {
	kernel.TSMQR(true, p.nb, p.nb, p.ib, p.vTS[i].Data, p.nb, p.t2, p.nb, p.c1[i].Data, p.nb, p.c2[i].Data, p.nb, p.nb, p.work)
}
func (p *dPool) ttqrt(i int) {
	kernel.TTQRT(p.nb, p.nb, p.ib, p.aTri[i].Data, p.nb, p.vTT[i].Data, p.nb, p.t2, p.nb, p.work)
}
func (p *dPool) ttmqr(i int) {
	kernel.TTMQR(true, p.nb, p.nb, p.ib, p.vTT[i].Data, p.nb, p.t2, p.nb, p.c1[i].Data, p.nb, p.c2[i].Data, p.nb, p.nb, p.work)
}
func (p *dPool) gemm(i int) {
	kernel.GEMM(p.nb, p.nb, p.nb, p.full[i].Data, p.nb, p.c1[i].Data, p.nb, p.c2[i].Data, p.nb)
}

// zPool mirrors dPool for complex tiles.
type zPool struct {
	nb, ib int
	aTri   []*tile.ZDense
	full   []*tile.ZDense
	c1, c2 []*tile.ZDense
	vTS    []*tile.ZDense
	vTT    []*tile.ZDense
	tf, t2 []complex128
	work   []complex128
	reps   int
}

func newZPool(nb, pool int) *zPool {
	ib := *flagIB
	p := &zPool{nb: nb, ib: ib,
		tf: make([]complex128, ib*nb), t2: make([]complex128, ib*nb),
		work: make([]complex128, zkernel.WorkLen(nb, ib)),
	}
	for i := 0; i < pool; i++ {
		tri := tile.RandZDense(nb, nb, int64(i))
		zkernel.GEQRT(nb, nb, ib, tri.Data, tri.Stride, p.tf, nb, p.work)
		p.aTri = append(p.aTri, tri)
		p.full = append(p.full, tile.RandZDense(nb, nb, int64(1000+i)))
		p.c1 = append(p.c1, tile.RandZDense(nb, nb, int64(2000+i)))
		p.c2 = append(p.c2, tile.RandZDense(nb, nb, int64(3000+i)))
		vts := tile.RandZDense(nb, nb, int64(4000+i))
		zkernel.TSQRT(nb, nb, ib, tri.Clone().Data, nb, vts.Data, nb, p.t2, nb, p.work)
		p.vTS = append(p.vTS, vts)
		vtt := tile.RandZDense(nb, nb, int64(5000+i))
		zkernel.GEQRT(nb, nb, ib, vtt.Data, nb, p.tf, nb, p.work)
		zkernel.TTQRT(nb, nb, ib, tri.Clone().Data, nb, vtt.Data, nb, p.t2, nb, p.work)
		p.vTT = append(p.vTT, vtt)
	}
	p.reps = 1 + int(1e8/(8*float64(nb)*float64(nb)*float64(nb)))
	if p.reps < *flagReps {
		p.reps = *flagReps
	}
	if pool > 1 && p.reps < pool {
		p.reps = pool
	}
	return p
}

func (p *zPool) time(f func(i int)) float64 {
	return measureLoop(p.reps, len(p.aTri), f)
}

func (p *zPool) geqrt(i int) {
	zkernel.GEQRT(p.nb, p.nb, p.ib, p.full[i].Data, p.nb, p.tf, p.nb, p.work)
}
func (p *zPool) unmqr(i int) {
	zkernel.UNMQR(true, p.nb, p.nb, p.ib, p.aTri[i].Data, p.nb, p.tf, p.nb, p.c1[i].Data, p.nb, p.nb, p.work)
}
func (p *zPool) tsqrt(i int) {
	zkernel.TSQRT(p.nb, p.nb, p.ib, p.aTri[i].Data, p.nb, p.full[i].Data, p.nb, p.t2, p.nb, p.work)
}
func (p *zPool) tsmqr(i int) {
	zkernel.TSMQR(true, p.nb, p.nb, p.ib, p.vTS[i].Data, p.nb, p.t2, p.nb, p.c1[i].Data, p.nb, p.c2[i].Data, p.nb, p.nb, p.work)
}
func (p *zPool) ttqrt(i int) {
	zkernel.TTQRT(p.nb, p.nb, p.ib, p.aTri[i].Data, p.nb, p.vTT[i].Data, p.nb, p.t2, p.nb, p.work)
}
func (p *zPool) ttmqr(i int) {
	zkernel.TTMQR(true, p.nb, p.nb, p.ib, p.vTT[i].Data, p.nb, p.t2, p.nb, p.c1[i].Data, p.nb, p.c2[i].Data, p.nb, p.nb, p.work)
}
func (p *zPool) gemm(i int) {
	zkernel.GEMM(p.nb, p.nb, p.nb, p.full[i].Data, p.nb, p.c1[i].Data, p.nb, p.c2[i].Data, p.nb)
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
