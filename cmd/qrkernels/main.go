// Command qrkernels regenerates Figures 4 and 5 of the paper: sequential
// kernel performance (GFLOP/s) versus tile size, in cache and out of cache,
// per precision.
//
// The comparison of interest: a TT algorithm calls GEQRT+TTQRT where a TS
// algorithm calls one TSQRT (and UNMQR+TTMQR versus one TSMQR), so the
// figures report those pairs side by side, plus GEMM as the roofline
// reference. The paper's MKL kernels show a ratio TSQRT/(GEQRT+TTQRT) of
// about 1.32–1.34; the pure-Go kernels here show the same locality effect
// with their own constant.
//
// In-cache follows the No-Flush strategy (repeatedly time the same tiles);
// out-of-cache cycles over a working set larger than the last-level cache
// (MultCallFlushLRU), per Whaley & Castaldo [17] and Agullo et al. [1].
//
// The paper's figures use double (d) and double complex (z); -prec also
// accepts the single-precision pair (s, c) the generic kernels open up.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"
	"unsafe"

	"tiledqr/internal/kernel"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
)

var (
	flagIB     = flag.Int("ib", 32, "inner blocking")
	flagSizes  = flag.String("sizes", "100,200,300,400,500,600", "tile sizes to sweep")
	flagCache  = flag.Int("cachemb", 8, "assumed last-level cache size (MB) for the out-of-cache working set")
	flagReps   = flag.Int("minreps", 3, "minimum repetitions per measurement")
	flagPrec   = flag.String("prec", "z,d", "comma-separated precisions to sweep: d, z, s, c")
	flagFamily = flag.String("family", "", "pin the vec kernel family (generic|simd); default: the best available on this host")
)

// flops per kernel call at tile size nb, real arithmetic, from the Table 1
// weights (units of nb³/3).
func kernelFlops(weight, nb int) float64 {
	return float64(weight) * float64(nb) * float64(nb) * float64(nb) / 3
}

func main() {
	flag.Parse()
	if *flagFamily != "" {
		if err := vec.SetFamily(*flagFamily); err != nil {
			fmt.Fprintln(os.Stderr, "qrkernels:", err)
			os.Exit(2)
		}
	}
	fam := vec.ActiveFamily()
	if isa := vec.SIMDName(); isa != "" && fam == vec.FamilySIMD {
		fam += " (" + isa + ")"
	}
	fmt.Printf("kernel family: %s\n", fam)
	var sizes []int
	for _, s := range splitComma(*flagSizes) {
		var v int
		fmt.Sscanf(s, "%d", &v)
		if v > 0 {
			sizes = append(sizes, v)
		}
	}
	for _, prec := range splitComma(*flagPrec) {
		switch prec {
		case "d":
			sweep[float64]("Figure 5", "double", sizes)
		case "z":
			sweep[complex128]("Figure 4", "double complex", sizes)
		case "s":
			sweep[float32]("(single)", "single", sizes)
		case "c":
			sweep[complex64]("(single complex)", "single complex", sizes)
		default:
			fmt.Fprintf(os.Stderr, "unknown precision %q (want d, z, s or c)\n", prec)
			os.Exit(2)
		}
	}
	fmt.Println("\nratio = TS kernel speed over the equivalent TT pair (the paper's MKL kernels: ≈1.32)")
}

func sweep[T vec.Scalar](figure, prec string, sizes []int) {
	fmt.Printf("\n%s: sequential kernel GFLOP/s, %s precision (ib=%d)\n", figure, prec, *flagIB)
	w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "nb\tcache\tGEQRT\tTTQRT\tGEQRT+TTQRT\tTSQRT\tratio\tUNMQR\tTTMQR\tUNMQR+TTMQR\tTSMQR\tratio\tGEMM\t")
	for _, nb := range sizes {
		for _, out := range []bool{false, true} {
			r := measureRow[T](nb, *flagIB, out)
			loc := "in"
			if out {
				loc = "out"
			}
			fmt.Fprintf(w, "%d\t%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t\n",
				nb, loc, r.geqrt, r.ttqrt, r.pairFactor, r.tsqrt, r.tsqrt/r.pairFactor,
				r.unmqr, r.ttmqr, r.pairUpdate, r.tsmqr, r.tsmqr/r.pairUpdate, r.gemm)
		}
	}
	w.Flush()
}

type row struct {
	geqrt, ttqrt, tsqrt, unmqr, ttmqr, tsmqr, gemm float64
	pairFactor, pairUpdate                         float64
}

// measureRow measures every kernel at one tile size. For out-of-cache runs
// the tile pool exceeds the configured cache size so that each call starts
// from cold tiles.
func measureRow[T vec.Scalar](nb, ib int, outOfCache bool) row {
	var z T
	elem := int(unsafe.Sizeof(z))
	np := 1
	if outOfCache {
		bytesPerSet := 4 * nb * nb * elem // the ~4 tiles a call touches
		np = (*flagCache)*1024*1024/bytesPerSet + 2
	}
	flopScale := 1.0
	if vec.IsComplex[T]() {
		flopScale = 4
	}
	var r row
	gflops := func(weight int, sec float64) float64 {
		return flopScale * kernelFlops(weight, nb) / sec / 1e9
	}
	m := newPool[T](nb, np)
	r.geqrt = gflops(4, m.time(func(i int) { m.geqrt(i) }))
	r.unmqr = gflops(6, m.time(func(i int) { m.unmqr(i) }))
	r.tsqrt = gflops(6, m.time(func(i int) { m.tsqrt(i) }))
	r.tsmqr = gflops(12, m.time(func(i int) { m.tsmqr(i) }))
	r.ttqrt = gflops(2, m.time(func(i int) { m.ttqrt(i) }))
	r.ttmqr = gflops(6, m.time(func(i int) { m.ttmqr(i) }))
	r.gemm = gflops(6, m.time(func(i int) { m.gemm(i) })) // 2nb³ flops = weight 6
	// A TT algorithm needs GEQRT+TTQRT to do one TSQRT's job: aggregate
	// rate = combined flops / combined time.
	fG, fT2 := kernelFlops(4, nb), kernelFlops(2, nb)
	r.pairFactor = (fG + fT2) / (fG/r.geqrt + fT2/r.ttqrt)
	fU, fTT := kernelFlops(6, nb), kernelFlops(6, nb)
	r.pairUpdate = (fU + fTT) / (fU/r.unmqr + fTT/r.ttmqr)
	return r
}

// pool owns reusable tile sets for the kernel measurements of one scalar
// domain — one generic pool instead of the former float64/complex128
// mirror pair.
type pool[T vec.Scalar] struct {
	nb, ib int
	aTri   []*tile.Dense[T] // triangular tops (post-GEQRT)
	full   []*tile.Dense[T]
	c1, c2 []*tile.Dense[T]
	vTS    []*tile.Dense[T] // TSQRT reflectors
	vTT    []*tile.Dense[T] // TTQRT reflectors (triangular)
	tf, t2 []T
	work   []T
	reps   int
}

func newPool[T vec.Scalar](nb, np int) *pool[T] {
	ib := *flagIB
	p := &pool[T]{nb: nb, ib: ib,
		tf: make([]T, ib*nb), t2: make([]T, ib*nb),
		work: make([]T, kernel.WorkLen(nb, ib)),
	}
	for i := 0; i < np; i++ {
		tri := tile.RandDense[T](nb, nb, int64(i))
		kernel.GEQRT(nb, nb, ib, tri.Data, tri.Stride, p.tf, nb, p.work)
		p.aTri = append(p.aTri, tri)
		p.full = append(p.full, tile.RandDense[T](nb, nb, int64(1000+i)))
		p.c1 = append(p.c1, tile.RandDense[T](nb, nb, int64(2000+i)))
		p.c2 = append(p.c2, tile.RandDense[T](nb, nb, int64(3000+i)))
		vts := tile.RandDense[T](nb, nb, int64(4000+i))
		kernel.TSQRT(nb, nb, ib, tri.Clone().Data, nb, vts.Data, nb, p.t2, nb, p.work)
		p.vTS = append(p.vTS, vts)
		vtt := tile.RandDense[T](nb, nb, int64(5000+i))
		kernel.GEQRT(nb, nb, ib, vtt.Data, nb, p.tf, nb, p.work)
		kernel.TTQRT(nb, nb, ib, tri.Clone().Data, nb, vtt.Data, nb, p.t2, nb, p.work)
		p.vTT = append(p.vTT, vtt)
	}
	// Aim for ~100 MFLOP per measurement (complex kernels carry 4× the
	// flops per element, so they reach it in fewer reps anyway).
	flopsPerCall := 2 * float64(nb) * float64(nb) * float64(nb)
	if vec.IsComplex[T]() {
		flopsPerCall *= 4
	}
	p.reps = 1 + int(1e8/flopsPerCall)
	if p.reps < *flagReps {
		p.reps = *flagReps
	}
	if np > 1 && p.reps < np {
		p.reps = np // touch the whole pool at least once
	}
	return p
}

func (p *pool[T]) time(f func(i int)) float64 {
	return measureLoop(p.reps, len(p.aTri), f)
}

// measureLoop runs f in batches of reps calls until at least 200 ms have
// been sampled, returning seconds per call; this keeps the cheap kernels
// (TTQRT is 3× shorter than GEQRT) out of timer-resolution noise.
func measureLoop(reps, np int, f func(i int)) float64 {
	total := 0
	start := time.Now()
	for {
		for r := 0; r < reps; r++ {
			f((total + r) % np)
		}
		total += reps
		if time.Since(start) >= 200*time.Millisecond {
			return time.Since(start).Seconds() / float64(total)
		}
	}
}

func (p *pool[T]) geqrt(i int) {
	kernel.GEQRT(p.nb, p.nb, p.ib, p.full[i].Data, p.nb, p.tf, p.nb, p.work)
}
func (p *pool[T]) unmqr(i int) {
	kernel.UNMQR(true, p.nb, p.nb, p.ib, p.aTri[i].Data, p.nb, p.tf, p.nb, p.c1[i].Data, p.nb, p.nb, p.work)
}
func (p *pool[T]) tsqrt(i int) {
	kernel.TSQRT(p.nb, p.nb, p.ib, p.aTri[i].Data, p.nb, p.full[i].Data, p.nb, p.t2, p.nb, p.work)
}
func (p *pool[T]) tsmqr(i int) {
	kernel.TSMQR(true, p.nb, p.nb, p.ib, p.vTS[i].Data, p.nb, p.t2, p.nb, p.c1[i].Data, p.nb, p.c2[i].Data, p.nb, p.nb, p.work)
}
func (p *pool[T]) ttqrt(i int) {
	kernel.TTQRT(p.nb, p.nb, p.ib, p.aTri[i].Data, p.nb, p.vTT[i].Data, p.nb, p.t2, p.nb, p.work)
}
func (p *pool[T]) ttmqr(i int) {
	kernel.TTMQR(true, p.nb, p.nb, p.ib, p.vTT[i].Data, p.nb, p.t2, p.nb, p.c1[i].Data, p.nb, p.c2[i].Data, p.nb, p.nb, p.work)
}
func (p *pool[T]) gemm(i int) {
	kernel.GEMM(p.nb, p.nb, p.nb, p.full[i].Data, p.nb, p.c1[i].Data, p.nb, p.c2[i].Data, p.nb, p.work)
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
