// Command qrfactor factors a random m×n matrix with a chosen algorithm and
// reports timing and numerical quality — a command-line smoke test for the
// whole stack.
//
//	qrfactor -m 2000 -n 500 -alg Greedy -nb 100 -workers 4 -verify
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"tiledqr"
	"tiledqr/internal/model"
)

func main() {
	m := flag.Int("m", 1200, "rows")
	n := flag.Int("n", 400, "columns")
	nb := flag.Int("nb", 100, "tile size")
	ib := flag.Int("ib", 0, "inner blocking (0 = library default, capped at nb)")
	algName := flag.String("alg", "Greedy", "FlatTree|BinaryTree|Fibonacci|Greedy|Asap|Grasap|PlasmaTree|Auto")
	bs := flag.Int("bs", 0, "PlasmaTree domain size (0 = pick best by critical path)")
	grasapK := flag.Int("grasapk", 1, "Grasap trailing Asap columns")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	kern := flag.String("kernels", "TT", "TT|TS")
	complexArith := flag.Bool("complex", false, "double complex instead of double")
	verify := flag.Bool("verify", false, "reconstruct Q and check residuals (O(m³), slow for large m)")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart of the execution")
	seed := flag.Int64("seed", 1, "matrix seed")
	flag.Parse()

	algs := map[string]tiledqr.Algorithm{
		"FlatTree": tiledqr.FlatTree, "BinaryTree": tiledqr.BinaryTree,
		"Fibonacci": tiledqr.Fibonacci, "Greedy": tiledqr.Greedy,
		"Asap": tiledqr.Asap, "Grasap": tiledqr.Grasap, "PlasmaTree": tiledqr.PlasmaTree,
		"Auto": tiledqr.AlgorithmAuto,
	}
	alg, ok := algs[*algName]
	if !ok {
		log.Fatalf("unknown algorithm %q", *algName)
	}
	kernels := tiledqr.TT
	if *kern == "TS" {
		kernels = tiledqr.TS
	}
	opt := tiledqr.Options{
		Algorithm: alg, Kernels: kernels, TileSize: *nb, InnerBlock: *ib,
		Workers: *workers, BS: *bs, GrasapK: *grasapK, Trace: *gantt,
	}
	if alg == tiledqr.AlgorithmAuto {
		// Under Auto the -nb/-ib defaults mean "choose for me" unless the
		// flags were given explicitly; resolve once and run the decision.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["nb"] {
			opt.TileSize = 0
		}
		resolved, err := opt.Resolve(*m, *n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Auto resolved to %v %v kernels, nb=%d, ib=%d\n",
			resolved.Algorithm, resolved.Kernels, resolved.TileSize, resolved.InnerBlock)
		opt = resolved
		alg, *nb = resolved.Algorithm, resolved.TileSize
		*algName, *kern = resolved.Algorithm.String(), resolved.Kernels.String()
	}
	p := (*m + *nb - 1) / *nb
	q := (*n + *nb - 1) / *nb
	if alg == tiledqr.PlasmaTree && *bs == 0 {
		best, _ := tiledqr.BestPlasmaBS(p, q, kernels)
		opt.BS = best
		fmt.Printf("PlasmaTree: using BS=%d (best critical path)\n", best)
	}

	cp, err := tiledqr.CriticalPath(alg, p, q, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s(%s): %d×%d, %d×%d tiles of %d, critical path %d units\n",
		*algName, *kern, *m, *n, p, q, *nb, cp)

	flops := model.Flops(*m, *n)
	if *complexArith {
		flops = model.ComplexFlops(*m, *n)
		a := tiledqr.RandomZDense(*m, *n, *seed)
		start := time.Now()
		f, err := tiledqr.FactorComplex(a, opt)
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		fmt.Printf("factored in %v (%.3f GFLOP/s, %d tasks)\n", el, flops/el.Seconds()/1e9, f.TaskCount())
		if *verify {
			q := f.ThinQ()
			fmt.Printf("‖A−QR‖/‖A‖ = %.2e   ‖QᴴQ−I‖ = %.2e\n",
				tiledqr.ZQRResidual(a, q, f.R()), tiledqr.ZOrthoResidual(q))
		}
		return
	}
	a := tiledqr.RandomDense(*m, *n, *seed)
	start := time.Now()
	f, err := tiledqr.Factor(a, opt)
	if err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)
	fmt.Printf("factored in %v (%.3f GFLOP/s, %d tasks)\n", el, flops/el.Seconds()/1e9, f.TaskCount())
	if *verify {
		qf := f.ThinQ()
		fmt.Printf("‖A−QR‖/‖A‖ = %.2e   ‖QᵀQ−I‖ = %.2e\n",
			tiledqr.QRResidual(a, qf, f.R()), tiledqr.OrthoResidual(qf))
	}
	if *gantt {
		fmt.Print(f.GanttChart(100))
		u := f.Utilization()
		fmt.Printf("parallel efficiency: %.0f%%\n", 100*u.Overall)
	}
}
