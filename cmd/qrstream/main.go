// Command qrstream measures the streaming TSQR subsystem: it ingests row
// batches into a StreamQR and reports sustained throughput in rows/sec —
// the serving-style metric of an online least-squares workload, where
// millions of small updates replace one big factorization.
//
//	qrstream -n 256 -batch 256 -batches 64          # throughput run
//	qrstream -n 256 -batch 256 -batches 64 -rhs 1   # with online least squares
//	qrstream -complex ...                           # double complex domain
//	qrstream -verify ...                            # also check against one-shot Factor
//
// With -verify the ingested rows are retained and re-factored in one shot;
// the reported deviation is the max elementwise difference of the two R
// factors after per-row sign alignment (should sit at rounding level).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"tiledqr"
)

var (
	flagN       = flag.Int("n", 256, "columns of the streamed system")
	flagBatch   = flag.Int("batch", 256, "rows per appended batch")
	flagBatches = flag.Int("batches", 64, "number of batches to ingest")
	flagNB      = flag.Int("nb", 0, "tile size (0 = library default)")
	flagIB      = flag.Int("ib", 0, "inner blocking (0 = library default)")
	flagWorkers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	flagRHS     = flag.Int("rhs", 0, "right-hand-side columns to track (0 = R only)")
	flagComplex = flag.Bool("complex", false, "stream complex128 rows")
	flagVerify  = flag.Bool("verify", false, "re-factor all rows one-shot and compare R")
	flagTS      = flag.Bool("ts", false, "use TS kernels for the intra-batch reduction")
)

func main() {
	flag.Parse()
	opt := tiledqr.Options{TileSize: *flagNB, InnerBlock: *flagIB, Workers: *flagWorkers}
	if *flagTS {
		opt.Kernels = tiledqr.TS
	}
	if *flagN < 1 || *flagBatch < 1 || *flagBatches < 1 {
		fmt.Fprintln(os.Stderr, "qrstream: -n, -batch and -batches must be positive")
		os.Exit(2)
	}
	var err error
	if *flagComplex {
		err = runComplex(opt)
	} else {
		err = runReal(opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qrstream:", err)
		os.Exit(1)
	}
}

func report(domain string, rows int64, elapsed time.Duration, residual float64, haveRHS bool) {
	rps := float64(rows) / elapsed.Seconds()
	fmt.Printf("%s: ingested %d rows × %d cols in %d batches of %d — %.0f rows/sec (%.2f ms/batch)\n",
		domain, rows, *flagN, *flagBatches, *flagBatch, rps,
		elapsed.Seconds()*1e3/float64(*flagBatches))
	if haveRHS {
		fmt.Printf("running least-squares residual ‖b − A·X‖_F = %.6e\n", residual)
	}
}

func runReal(opt tiledqr.Options) error {
	n, batch, batches := *flagN, *flagBatch, *flagBatches
	s, err := tiledqr.NewStream(n, opt)
	if err != nil {
		return err
	}
	// Pre-generate the batches so the timed loop measures the merge alone.
	data := make([]*tiledqr.Dense, batches)
	rhs := make([]*tiledqr.Dense, batches)
	for i := range data {
		data[i] = tiledqr.RandomDense(batch, n, int64(i+1))
		if *flagRHS > 0 {
			rhs[i] = tiledqr.RandomDense(batch, *flagRHS, int64(1000+i))
		}
	}
	start := time.Now()
	for i := range data {
		if *flagRHS > 0 {
			err = s.AppendRHS(data[i], rhs[i])
		} else {
			err = s.AppendRows(data[i])
		}
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	resid, err := s.ResidualNorm()
	if err != nil {
		return err
	}
	report("double", s.Rows(), elapsed, resid, *flagRHS > 0)
	if *flagRHS > 0 && s.Rows() >= int64(n) {
		if _, err := s.SolveLS(); err != nil {
			return err
		}
		fmt.Printf("SolveLS over %d retained Qᵀb rows: ok\n", n)
	}
	fmt.Printf("retained footprint: %d float64 (%.1f MiB) — independent of rows ingested\n",
		s.Footprint(), float64(s.Footprint())*8/(1<<20))
	if *flagVerify {
		all := tiledqr.NewDense(batch*batches, n)
		for i, d := range data {
			for r := 0; r < batch; r++ {
				for c := 0; c < n; c++ {
					all.Set(i*batch+r, c, d.At(r, c))
				}
			}
		}
		f, err := tiledqr.Factor(all, opt)
		if err != nil {
			return err
		}
		rStream, err := s.R()
		if err != nil {
			return err
		}
		rRef := f.R()
		var worst float64
		for i := 0; i < n; i++ {
			sign := 1.0
			if rStream.At(i, i)*rRef.At(i, i) < 0 {
				sign = -1
			}
			for j := i; j < n; j++ {
				worst = math.Max(worst, math.Abs(sign*rStream.At(i, j)-rRef.At(i, j)))
			}
		}
		fmt.Printf("verify: max |R_stream − R_oneshot| = %.3e (sign-aligned)\n", worst)
		if worst > 1e-10 {
			return fmt.Errorf("verification failed: deviation %.3e", worst)
		}
	}
	return nil
}

func runComplex(opt tiledqr.Options) error {
	n, batch, batches := *flagN, *flagBatch, *flagBatches
	s, err := tiledqr.NewZStream(n, opt)
	if err != nil {
		return err
	}
	data := make([]*tiledqr.ZDense, batches)
	rhs := make([]*tiledqr.ZDense, batches)
	for i := range data {
		data[i] = tiledqr.RandomZDense(batch, n, int64(i+1))
		if *flagRHS > 0 {
			rhs[i] = tiledqr.RandomZDense(batch, *flagRHS, int64(1000+i))
		}
	}
	start := time.Now()
	for i := range data {
		if *flagRHS > 0 {
			err = s.AppendRHS(data[i], rhs[i])
		} else {
			err = s.AppendRows(data[i])
		}
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	resid, err := s.ResidualNorm()
	if err != nil {
		return err
	}
	report("double complex", s.Rows(), elapsed, resid, *flagRHS > 0)
	if *flagRHS > 0 && s.Rows() >= int64(n) {
		if _, err := s.SolveLS(); err != nil {
			return err
		}
		fmt.Printf("SolveLS over %d retained Qᴴb rows: ok\n", n)
	}
	fmt.Printf("retained footprint: %d complex128 (%.1f MiB) — independent of rows ingested\n",
		s.Footprint(), float64(s.Footprint())*16/(1<<20))
	if *flagVerify {
		all := tiledqr.NewZDense(batch*batches, n)
		for i, d := range data {
			for r := 0; r < batch; r++ {
				for c := 0; c < n; c++ {
					all.Set(i*batch+r, c, d.At(r, c))
				}
			}
		}
		f, err := tiledqr.FactorComplex(all, opt)
		if err != nil {
			return err
		}
		// The reflector construction keeps R's diagonal real, so the per-row
		// ambiguity is a ±1 sign exactly as in the real domain.
		rStream, err := s.R()
		if err != nil {
			return err
		}
		rRef := f.R()
		var worst float64
		for i := 0; i < n; i++ {
			sign := complex(1, 0)
			if real(rStream.At(i, i))*real(rRef.At(i, i)) < 0 {
				sign = -1
			}
			for j := i; j < n; j++ {
				d := sign*rStream.At(i, j) - rRef.At(i, j)
				worst = math.Max(worst, math.Hypot(real(d), imag(d)))
			}
		}
		fmt.Printf("verify: max |R_stream − R_oneshot| = %.3e (sign-aligned)\n", worst)
		if worst > 1e-10 {
			return fmt.Errorf("verification failed: deviation %.3e", worst)
		}
	}
	return nil
}
