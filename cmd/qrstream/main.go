// Command qrstream measures the streaming TSQR subsystem: it ingests row
// batches into a tiledqr.Stream and reports sustained throughput in
// rows/sec — the serving-style metric of an online least-squares workload,
// where millions of small updates replace one big factorization.
//
//	qrstream -n 256 -batch 256 -batches 64          # throughput run
//	qrstream -n 256 -batch 256 -batches 64 -rhs 1   # with online least squares
//	qrstream -complex ...                           # double complex domain
//	qrstream -window 4096 ...                       # sliding window of recent rows
//	qrstream -forget 0.99 ...                       # exponential forgetting
//	qrstream -verify ...                            # also check against one-shot Factor
//
// With -verify the ingested rows are retained and re-factored in one shot
// — windowed runs re-factor only the retained window, forgetful runs weight
// each batch by its decay λ^(k/2) — and the reported deviation is the max
// elementwise difference of the two R factors after per-row sign alignment
// (should sit at rounding level).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"tiledqr"
)

var (
	flagN       = flag.Int("n", 256, "columns of the streamed system")
	flagBatch   = flag.Int("batch", 256, "rows per appended batch")
	flagBatches = flag.Int("batches", 64, "number of batches to ingest")
	flagNB      = flag.Int("nb", 0, "tile size (0 = library default)")
	flagIB      = flag.Int("ib", 0, "inner blocking (0 = library default)")
	flagWorkers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	flagRHS     = flag.Int("rhs", 0, "right-hand-side columns to track (0 = R only)")
	flagComplex = flag.Bool("complex", false, "stream complex128 rows")
	flagVerify  = flag.Bool("verify", false, "re-factor the represented rows one-shot and compare R")
	flagTS      = flag.Bool("ts", false, "use TS kernels for the intra-batch reduction")
	flagWindow  = flag.Int("window", 0, "sliding window: keep only the most recent rows (0 = keep everything, irrevocably)")
	flagForget  = flag.Float64("forget", 0, "exponential forgetting factor λ in (0,1] applied per append (0 = off)")
)

func main() {
	flag.Parse()
	if *flagN < 1 || *flagBatch < 1 || *flagBatches < 1 {
		fmt.Fprintln(os.Stderr, "qrstream: -n, -batch and -batches must be positive")
		os.Exit(2)
	}
	var err error
	if *flagComplex {
		err = run[complex128]("double complex", 16, tiledqr.FactorComplex)
	} else {
		err = run[float64]("double", 8, tiledqr.Factor)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qrstream:", err)
		os.Exit(1)
	}
}

func report(domain string, rows int64, elapsed time.Duration, residual float64, haveRHS bool) {
	rps := float64(*flagBatch) * float64(*flagBatches) / elapsed.Seconds()
	fmt.Printf("%s: ingested %d rows × %d cols in %d batches of %d — %.0f rows/sec (%.2f ms/batch)\n",
		domain, int64(*flagBatch)*int64(*flagBatches), *flagN, *flagBatches, *flagBatch, rps,
		elapsed.Seconds()*1e3/float64(*flagBatches))
	if *flagWindow > 0 {
		fmt.Printf("sliding window: stream represents the most recent %d rows\n", rows)
	}
	if haveRHS {
		fmt.Printf("running least-squares residual ‖b − A·X‖_F = %.6e\n", residual)
	}
}

// run ingests, times, reports and verifies in one generic body — the
// streaming API is precision-blind, so qrstream is too. factorization is
// the domain's one-shot entry point for -verify.
func run[T tiledqr.Scalar, F interface {
	R() *tiledqr.Mat[T]
}](domain string, elemBytes int, factor func(*tiledqr.Mat[T], tiledqr.Options) (F, error)) error {
	n, batch, batches := *flagN, *flagBatch, *flagBatches
	opt := tiledqr.Options{
		TileSize: *flagNB, InnerBlock: *flagIB, Workers: *flagWorkers,
		WindowRows: *flagWindow, Forget: *flagForget,
	}
	if *flagTS {
		opt.Kernels = tiledqr.TS
	}
	s, err := tiledqr.NewStreamOf[T](n, opt)
	if err != nil {
		return err
	}
	// Pre-generate the batches so the timed loop measures the merge alone.
	data := make([]*tiledqr.Mat[T], batches)
	rhs := make([]*tiledqr.Mat[T], batches)
	for i := range data {
		data[i] = tiledqr.RandomMat[T](batch, n, int64(i+1))
		if *flagRHS > 0 {
			rhs[i] = tiledqr.RandomMat[T](batch, *flagRHS, int64(1000+i))
		}
	}
	start := time.Now()
	for i := range data {
		if *flagRHS > 0 {
			err = s.AppendRHS(data[i], rhs[i])
		} else {
			err = s.AppendRows(data[i])
		}
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	resid, err := s.ResidualNorm()
	if err != nil {
		return err
	}
	report(domain, s.Rows(), elapsed, resid, *flagRHS > 0)
	if *flagRHS > 0 && s.Rows() >= int64(n) {
		if _, err := s.SolveLS(); err != nil {
			return err
		}
		fmt.Printf("SolveLS over %d retained Qᵀb rows: ok\n", n)
	}
	bound := "independent of rows ingested"
	if *flagWindow > 0 {
		bound = "steady state, O(n² + window)"
	}
	fmt.Printf("retained footprint: %d scalars (%.1f MiB) — %s\n",
		s.Footprint(), float64(s.Footprint())*float64(elemBytes)/(1<<20), bound)
	if *flagVerify {
		return verify(s, data, factor, opt)
	}
	return nil
}

// verify re-factors the rows the stream currently represents — the most
// recent -window rows (all of them without a window), each batch weighted
// by its accumulated forgetting decay — and compares R factors after
// per-row sign alignment (the reflector construction keeps the diagonal
// real in the complex domains too, so the row ambiguity is ±1).
func verify[T tiledqr.Scalar, F interface {
	R() *tiledqr.Mat[T]
}](s *tiledqr.Stream[T], data []*tiledqr.Mat[T], factor func(*tiledqr.Mat[T], tiledqr.Options) (F, error), opt tiledqr.Options) error {
	n, batch, batches := *flagN, *flagBatch, *flagBatches
	total := batch * batches
	kept := total
	if *flagWindow > 0 && *flagWindow < total {
		kept = *flagWindow
	}
	first := total - kept
	all := tiledqr.NewMat[T](kept, n)
	for r := first; r < total; r++ {
		bi := r / batch
		w := 1.0
		if *flagForget > 0 && *flagForget < 1 {
			w = math.Pow(*flagForget, float64(batches-1-bi)/2)
		}
		for c := 0; c < n; c++ {
			all.Set(r-first, c, scale[T](w)*data[bi].At(r%batch, c))
		}
	}
	refOpt := opt
	refOpt.WindowRows, refOpt.Forget = 0, 0
	f, err := factor(all, refOpt)
	if err != nil {
		return err
	}
	rStream, err := s.R()
	if err != nil {
		return err
	}
	rRef := f.R()
	var worst float64
	for i := 0; i < n; i++ {
		sign := scale[T](1)
		if realPart(rStream.At(i, i))*realPart(rRef.At(i, i)) < 0 {
			sign = scale[T](-1)
		}
		for j := i; j < n; j++ {
			worst = math.Max(worst, absOf(sign*rStream.At(i, j)-rRef.At(i, j)))
		}
	}
	fmt.Printf("verify: max |R_stream − R_oneshot| = %.3e (sign-aligned, %d represented rows)\n", worst, kept)
	// Windowed and forgetful runs accumulate rounding across the downdate
	// and decay passes, so their bound is an order looser than pure accretion.
	tol := 1e-10
	if *flagWindow > 0 || *flagForget > 0 {
		tol = 1e-9
	}
	if worst > tol {
		return fmt.Errorf("verification failed: deviation %.3e", worst)
	}
	return nil
}

func scale[T tiledqr.Scalar](w float64) T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(float32(w)).(T)
	case float64:
		return any(w).(T)
	case complex64:
		return any(complex64(complex(w, 0))).(T)
	default:
		return any(complex(w, 0)).(T)
	}
}

func realPart[T tiledqr.Scalar](v T) float64 {
	switch x := any(v).(type) {
	case float32:
		return float64(x)
	case float64:
		return x
	case complex64:
		return float64(real(x))
	default:
		return real(any(v).(complex128))
	}
}

func absOf[T tiledqr.Scalar](v T) float64 {
	switch x := any(v).(type) {
	case float32:
		return math.Abs(float64(x))
	case float64:
		return math.Abs(x)
	case complex64:
		return math.Hypot(float64(real(x)), float64(imag(x)))
	default:
		x128 := any(v).(complex128)
		return math.Hypot(real(x128), imag(x128))
	}
}
