package tiledqr

import (
	"context"

	"tiledqr/internal/stream"
	"tiledqr/internal/tile"
)

// ZStreamQR is the complex128 instantiation of the streaming TSQR core: an
// incremental tiled QR over row batches that retains only the n×n upper
// triangular factor (and optionally the top n rows of Qᴴb) in O(n² + batch)
// memory. See StreamQR for the algorithm, option and failure semantics.
type ZStreamQR struct {
	c *stream.Core[complex128]
}

// NewZStream creates a complex streaming factorization for rows with n
// columns.
func NewZStream(n int, opt Options) (*ZStreamQR, error) {
	c, err := newStreamCore[complex128](n, opt)
	if err != nil {
		return nil, err
	}
	return &ZStreamQR{c: c}, nil
}

// AppendRows merges a batch of rows (r×n, any r ≥ 1) into the resident
// triangle. The batch is not modified.
func (s *ZStreamQR) AppendRows(batch *ZDense) error {
	return streamAppend(nil, s.c, (*tile.Dense[complex128])(batch), nil, false)
}

// AppendRowsCtx is AppendRows under a cancellation context (see
// StreamQR.AppendRowsCtx).
func (s *ZStreamQR) AppendRowsCtx(ctx context.Context, batch *ZDense) error {
	return streamAppend(ctx, s.c, (*tile.Dense[complex128])(batch), nil, false)
}

// AppendRHS merges a batch of rows together with the matching right-hand
// side rows, maintaining the top n rows of Qᴴb for SolveLS. Right-hand
// sides must be supplied from the first batch onwards.
func (s *ZStreamQR) AppendRHS(batch, rhs *ZDense) error {
	return streamAppend(nil, s.c, (*tile.Dense[complex128])(batch), (*tile.Dense[complex128])(rhs), true)
}

// AppendRHSCtx is AppendRHS under a cancellation context (see
// StreamQR.AppendRowsCtx).
func (s *ZStreamQR) AppendRHSCtx(ctx context.Context, batch, rhs *ZDense) error {
	return streamAppend(ctx, s.c, (*tile.Dense[complex128])(batch), (*tile.Dense[complex128])(rhs), true)
}

// Err returns the stream's sticky failure (see StreamQR.Err).
func (s *ZStreamQR) Err() error { return s.c.Err() }

// R returns the n×n upper triangular factor of all rows ingested so far.
// After a failed append, R returns the append's original error.
func (s *ZStreamQR) R() (*ZDense, error) {
	if err := s.c.Err(); err != nil {
		return nil, err
	}
	n := s.c.N()
	r := NewZDense(n, n)
	s.c.CopyR(r.Data, r.Stride)
	return r, nil
}

// QTB returns the retained top n rows of Qᴴb (n×nrhs), or nil when the
// stream tracks no right-hand side. After a failed append, QTB returns the
// append's original error.
func (s *ZStreamQR) QTB() (*ZDense, error) {
	if err := s.c.Err(); err != nil {
		return nil, err
	}
	if s.c.NRHS() == 0 {
		return nil, nil
	}
	q := NewZDense(s.c.N(), s.c.NRHS())
	s.c.CopyQTB(q.Data, q.Stride)
	return q, nil
}

// SolveLS returns the n×nrhs least-squares solution min‖A·x − b‖₂ over
// every row ingested so far. Requires right-hand-side tracking and at
// least n ingested rows.
func (s *ZStreamQR) SolveLS() (*ZDense, error) {
	x := NewZDense(s.c.N(), max(s.c.NRHS(), 1))
	if err := s.c.SolveLS(x.Data, x.Stride); err != nil {
		return nil, err
	}
	return x, nil
}

// Rows returns the total number of rows ingested.
func (s *ZStreamQR) Rows() int64 { return s.c.Rows() }

// N returns the column count of the streamed system.
func (s *ZStreamQR) N() int { return s.c.N() }

// ResidualNorm returns the running least-squares residual ‖b − A·X‖_F over
// all tracked right-hand-side columns (0 when no RHS is tracked). After a
// failed append, ResidualNorm returns the append's original error.
func (s *ZStreamQR) ResidualNorm() (float64, error) {
	if err := s.c.Err(); err != nil {
		return 0, err
	}
	return s.c.ResidualNorm(), nil
}

// Footprint returns the number of complex128 values retained across
// appends — the O(n² + batch) bound made observable.
func (s *ZStreamQR) Footprint() int { return s.c.Footprint() }
