package tiledqr

// ZStreamQR is the complex128 stream instantiation — an alias of
// Stream[complex128]. It retains the n×n upper triangular factor (and
// optionally the top n rows of Qᴴb). See Stream for the algorithm,
// windowing, option and failure semantics.
//
// Deprecated: use Stream[complex128] (or keep using this alias; they are
// the same type). New stream capabilities land on the generic Stream.
type ZStreamQR = Stream[complex128]

// NewZStream creates a complex streaming factorization for rows with n
// columns.
func NewZStream(n int, opt Options) (*ZStreamQR, error) {
	return NewStreamOf[complex128](n, opt)
}
