package tiledqr

import (
	"fmt"

	"tiledqr/internal/stream"
	"tiledqr/internal/vec"
	"tiledqr/internal/work"
	"tiledqr/internal/zkernel"
)

// ZStreamQR is the complex128 counterpart of StreamQR: an incremental tiled
// QR over row batches that retains only the n×n upper triangular factor
// (and optionally the top n rows of Qᴴb) in O(n² + batch) memory. See
// StreamQR for the algorithm and option semantics; both domains share the
// reduction core in internal/stream.
type ZStreamQR struct {
	c *stream.Core[complex128]
}

// NewZStream creates a complex streaming factorization for rows with n
// columns.
func NewZStream(n int, opt Options) (*ZStreamQR, error) {
	opt = opt.withDefaults()
	c, err := stream.NewCore(n, opt.TileSize, opt.InnerBlock,
		work.WorkersOrDefault(opt.Workers), opt.Kernels.core(), stream.Funcs[complex128]{
			GEQRT:   zkernel.GEQRT,
			UNMQR:   zkernel.UNMQR,
			TPQRT:   zkernel.TPQRT,
			TPMQRT:  zkernel.TPMQRT,
			WorkLen: zkernel.WorkLen,
			Dot:     vec.ZDotu,
		})
	if err != nil {
		return nil, err
	}
	return &ZStreamQR{c: c}, nil
}

// AppendRows merges a batch of rows (r×n, any r ≥ 1) into the resident
// triangle. The batch is not modified.
func (s *ZStreamQR) AppendRows(batch *ZDense) error {
	if err := checkZBatch(batch, s.c.N()); err != nil {
		return err
	}
	return s.c.Append(batch.Rows, batch.Data, batch.Stride, nil, 0, 0)
}

// AppendRHS merges a batch of rows together with the matching right-hand
// side rows, maintaining the top n rows of Qᴴb for SolveLS. Right-hand
// sides must be supplied from the first batch onwards.
func (s *ZStreamQR) AppendRHS(batch, rhs *ZDense) error {
	if err := checkZBatch(batch, s.c.N()); err != nil {
		return err
	}
	if rhs == nil {
		return fmt.Errorf("tiledqr: stream: AppendRHS needs a non-nil right-hand side (use AppendRows)")
	}
	if rhs.Rows != batch.Rows {
		return fmt.Errorf("tiledqr: stream: right-hand side has %d rows, batch has %d", rhs.Rows, batch.Rows)
	}
	return s.c.Append(batch.Rows, batch.Data, batch.Stride, rhs.Data, rhs.Stride, rhs.Cols)
}

func checkZBatch(batch *ZDense, n int) error {
	if batch == nil || batch.Rows < 1 {
		return fmt.Errorf("tiledqr: stream: batch must have at least one row")
	}
	if batch.Cols != n {
		return fmt.Errorf("tiledqr: stream: batch has %d columns, stream has %d", batch.Cols, n)
	}
	return nil
}

// R returns the n×n upper triangular factor of all rows ingested so far.
func (s *ZStreamQR) R() *ZDense {
	n := s.c.N()
	r := NewZDense(n, n)
	s.c.CopyR(r.Data, r.Stride)
	return r
}

// QTB returns the retained top n rows of Qᴴb (n×nrhs), or nil when the
// stream tracks no right-hand side.
func (s *ZStreamQR) QTB() *ZDense {
	if s.c.NRHS() == 0 {
		return nil
	}
	q := NewZDense(s.c.N(), s.c.NRHS())
	s.c.CopyQTB(q.Data, q.Stride)
	return q
}

// SolveLS returns the n×nrhs least-squares solution min‖A·x − b‖₂ over
// every row ingested so far. Requires right-hand-side tracking and at
// least n ingested rows.
func (s *ZStreamQR) SolveLS() (*ZDense, error) {
	x := NewZDense(s.c.N(), max(s.c.NRHS(), 1))
	if err := s.c.SolveLS(x.Data, x.Stride); err != nil {
		return nil, err
	}
	return x, nil
}

// Rows returns the total number of rows ingested.
func (s *ZStreamQR) Rows() int64 { return s.c.Rows() }

// N returns the column count of the streamed system.
func (s *ZStreamQR) N() int { return s.c.N() }

// ResidualNorm returns the running least-squares residual ‖b − A·X‖_F over
// all tracked right-hand-side columns (0 when no RHS is tracked).
func (s *ZStreamQR) ResidualNorm() float64 { return s.c.ResidualNorm() }

// Footprint returns the number of complex128 values retained across
// appends — the O(n² + batch) bound made observable.
func (s *ZStreamQR) Footprint() int { return s.c.Footprint() }
