package tiledqr

import (
	"testing"

	"tiledqr/internal/model"
)

// The autotuner trusts CriticalPath/EliminationList as its schedule model,
// so these tests pin them against the paper: literal critical-path values
// on representative p×q grids for every parameter-free algorithm (the
// quantities behind Tables 1–5), cross-checked where Theorem 1 and
// Propositions 1–2 give closed forms. Any drift in the list generators or
// the DAG weights — which would silently skew every Auto decision — fails
// here first.

// goldenGrids are the pinned p×q tile grids: the unit and degenerate
// cases, the paper's 15×2 Asap-beats-Greedy example, pow2 grids where
// Proposition 1 is exact, and the square/tall shapes of Tables 3–5.
var goldenGrids = [][2]int{
	{1, 1}, {2, 2}, {4, 1}, {4, 4}, {8, 4}, {8, 8}, {15, 2}, {15, 15},
	{16, 8}, {30, 4}, {32, 8}, {40, 10}, {40, 40},
}

// goldenCP[t][alg] lists the critical path per goldenGrids entry, in units
// of nb³/3 flops, for kernel family t (0 = TT, 1 = TS). Values verified
// against the paper's closed forms where they exist (see the formula
// cross-checks below); the rest pin today's generators.
var goldenCP = map[Kernels]map[Algorithm][]int{
	TT: {
		Greedy:     {4, 20, 8, 58, 78, 140, 42, 288, 172, 98, 186, 236, 826},
		FlatTree:   {4, 20, 10, 64, 90, 152, 100, 306, 202, 222, 298, 378, 856},
		BinaryTree: {4, 20, 8, 64, 94, 176, 46, 414, 250, 134, 294, 422, 1456},
		Fibonacci:  {4, 20, 8, 58, 86, 158, 48, 318, 180, 110, 198, 248, 892},
		Asap:       {4, 20, 8, 58, 78, 140, 40, 294, 184, 156, 274, 354, 832},
	},
	TS: {
		Greedy:     {4, 26, 12, 76, 96, 182, 48, 372, 214, 116, 228, 290, 1060},
		FlatTree:   {4, 26, 22, 86, 136, 206, 184, 416, 304, 400, 496, 628, 1166},
		BinaryTree: {4, 26, 12, 80, 108, 206, 58, 470, 272, 144, 312, 450, 1568},
		Fibonacci:  {4, 26, 12, 76, 102, 194, 54, 396, 216, 128, 234, 296, 1108},
		Asap:       {4, 26, 12, 76, 96, 182, 48, 378, 226, 192, 336, 432, 1066},
	},
}

func TestGoldenCriticalPaths(t *testing.T) {
	for kern, byAlg := range goldenCP {
		for alg, want := range byAlg {
			for gi, g := range goldenGrids {
				p, q := g[0], g[1]
				cp, err := CriticalPath(alg, p, q, Options{Kernels: kern})
				if err != nil {
					t.Fatalf("CriticalPath(%v, %d, %d, %v): %v", alg, p, q, kern, err)
				}
				if cp != want[gi] {
					t.Errorf("CriticalPath(%v, %d×%d, %v) = %d, want %d (paper-pinned)",
						alg, p, q, kern, cp, want[gi])
				}
			}
		}
	}
}

// TestGoldenFormulaCrossChecks ties the pinned values to the paper's closed
// forms: Theorem 1's FlatTree formula, Proposition 2's TS FlatTree formula,
// Proposition 1's BinaryTree formula on pow2 grids, the Greedy/Fibonacci
// upper bounds, and the 22q−30 lower bound (stated for p > q).
func TestGoldenFormulaCrossChecks(t *testing.T) {
	for _, g := range goldenGrids {
		p, q := g[0], g[1]
		if p < q {
			continue
		}
		ft, _ := CriticalPath(FlatTree, p, q, Options{})
		if want := model.FlatTreeCP(p, q); ft != want {
			t.Errorf("FlatTree TT %d×%d: %d != Theorem 1's %d", p, q, ft, want)
		}
		ftTS, _ := CriticalPath(FlatTree, p, q, Options{Kernels: TS})
		if want := model.TSFlatTreeCP(p, q); ftTS != want {
			t.Errorf("FlatTree TS %d×%d: %d != Proposition 2's %d", p, q, ftTS, want)
		}
		if p&(p-1) == 0 && q&(q-1) == 0 && q < p {
			bt, _ := CriticalPath(BinaryTree, p, q, Options{})
			if want := model.BinaryTreeCPPow2(p, q); bt != want {
				t.Errorf("BinaryTree %d×%d: %d != Proposition 1's %d", p, q, bt, want)
			}
		}
		greedy, _ := CriticalPath(Greedy, p, q, Options{})
		if ub := model.GreedyCPUpper(p, q); greedy > ub {
			t.Errorf("Greedy %d×%d: %d exceeds Theorem 1 upper bound %d", p, q, greedy, ub)
		}
		fib, _ := CriticalPath(Fibonacci, p, q, Options{})
		if ub := model.FibonacciCPUpper(p, q); fib > ub {
			t.Errorf("Fibonacci %d×%d: %d exceeds Theorem 1 upper bound %d", p, q, fib, ub)
		}
		if p > q {
			lb := model.LowerBoundCP(q)
			for _, alg := range Algorithms {
				cp, _ := CriticalPath(alg, p, q, Options{})
				if cp < lb {
					t.Errorf("%v %d×%d: critical path %d beats the %d lower bound", alg, p, q, cp, lb)
				}
			}
		}
	}
	// The paper's §3.2 example: Asap strictly beats Greedy on 15×2.
	asap, _ := CriticalPath(Asap, 15, 2, Options{})
	greedy, _ := CriticalPath(Greedy, 15, 2, Options{})
	if asap >= greedy {
		t.Errorf("Asap (%d) should beat Greedy (%d) on 15×2 (§3.2)", asap, greedy)
	}
}

// TestGoldenEliminationLists pins the full 4×2 elimination list of every
// parameter-free algorithm — the smallest grid where the trees diverge.
func TestGoldenEliminationLists(t *testing.T) {
	want := map[Algorithm][]Elim{
		Greedy:     {{3, 1, 1}, {4, 2, 1}, {2, 1, 1}, {4, 3, 2}, {3, 2, 2}},
		FlatTree:   {{2, 1, 1}, {3, 1, 1}, {4, 1, 1}, {3, 2, 2}, {4, 2, 2}},
		BinaryTree: {{2, 1, 1}, {4, 3, 1}, {3, 1, 1}, {3, 2, 2}, {4, 2, 2}},
		Fibonacci:  {{3, 1, 1}, {4, 2, 1}, {2, 1, 1}, {4, 3, 2}, {3, 2, 2}},
		Asap:       {{3, 1, 1}, {4, 2, 1}, {2, 1, 1}, {4, 3, 2}, {3, 2, 2}},
	}
	for alg, w := range want {
		got, err := EliminationList(alg, 4, 2, Options{})
		if err != nil {
			t.Fatalf("EliminationList(%v): %v", alg, err)
		}
		if len(got) != len(w) {
			t.Fatalf("%v 4×2: %d eliminations, want %d", alg, len(got), len(w))
		}
		for i := range w {
			if got[i] != w[i] {
				t.Errorf("%v 4×2 elim %d: %v, want %v", alg, i, got[i], w[i])
			}
		}
	}
}
