package tiledqr

import (
	"context"

	"tiledqr/internal/engine"
	"tiledqr/internal/sched"
	"tiledqr/internal/tile"
)

// CFactorization is the complex64 (single complex, BLAS "C") instantiation
// of the generic engine: the memory-traffic savings of Factor32 combined
// with the 4× computation-to-communication ratio of complex arithmetic that
// Section 4 of the paper highlights. Expect residuals around 1e-6·‖A‖.
type CFactorization struct {
	e *engine.Factorization[complex64]
}

// CFactor computes the tiled QR factorization A = Q·R of an m×n complex64
// matrix. A is not modified.
func CFactor(a *CDense, opt Options) (*CFactorization, error) {
	return CFactorCtx(nil, a, opt)
}

// CFactorCtx is CFactor under a cancellation context (see FactorCtx).
func CFactorCtx(ctx context.Context, a *CDense, opt Options) (*CFactorization, error) {
	e, err := factorEngine(ctx, (*tile.Dense[complex64])(a), opt)
	if err != nil {
		return nil, err
	}
	return &CFactorization{e: e}, nil
}

// CFactorInto factors a into f, reusing f's storage when shape and
// structural options match the previous factorization (see FactorInto).
// f may be a zero &CFactorization{}.
func CFactorInto(f *CFactorization, a *CDense, opt Options) error {
	return CFactorIntoCtx(nil, f, a, opt)
}

// CFactorIntoCtx is CFactorInto under a cancellation context (see
// FactorIntoCtx).
func CFactorIntoCtx(ctx context.Context, f *CFactorization, a *CDense, opt Options) error {
	if f.e == nil {
		f.e = new(engine.Factorization[complex64])
	}
	return factorEngineInto(ctx, f.e, (*tile.Dense[complex64])(a), opt)
}

// Refactor re-runs the factorization over new matrix data with the same
// options, reusing every internal buffer when a has the previous shape.
// Steady-state Refactor allocates O(1).
func (f *CFactorization) Refactor(a *CDense) error {
	if f.e == nil {
		return errRefactorEmpty
	}
	return f.e.Refactor((*tile.Dense[complex64])(a))
}

// RefactorCtx is Refactor under a cancellation context (see FactorCtx).
func (f *CFactorization) RefactorCtx(ctx context.Context, a *CDense) error {
	if f.e == nil {
		return errRefactorEmpty
	}
	return f.e.RefactorCtx(ctx, (*tile.Dense[complex64])(a))
}

// Err returns the cause of the last failed or cancelled factorization
// attempt, nil while the factorization is valid.
func (f *CFactorization) Err() error {
	if f.e == nil {
		return errRefactorEmpty
	}
	return f.e.Err()
}

// R returns the min(m,n)×n upper triangular (trapezoidal) factor.
func (f *CFactorization) R() *CDense { return (*CDense)(f.e.R()) }

// ApplyQH overwrites b (m×nrhs) with Qᴴ·b.
func (f *CFactorization) ApplyQH(b *CDense) error {
	return f.e.Apply(nil, (*tile.Dense[complex64])(b), true)
}

// ApplyQHCtx is ApplyQH under a cancellation context; on cancellation b is
// partially transformed and must be discarded.
func (f *CFactorization) ApplyQHCtx(ctx context.Context, b *CDense) error {
	return f.e.Apply(ctx, (*tile.Dense[complex64])(b), true)
}

// ApplyQ overwrites b (m×nrhs) with Q·b.
func (f *CFactorization) ApplyQ(b *CDense) error {
	return f.e.Apply(nil, (*tile.Dense[complex64])(b), false)
}

// ApplyQCtx is ApplyQ under a cancellation context; on cancellation b is
// partially transformed and must be discarded.
func (f *CFactorization) ApplyQCtx(ctx context.Context, b *CDense) error {
	return f.e.Apply(ctx, (*tile.Dense[complex64])(b), false)
}

// Q returns the full m×m unitary factor.
func (f *CFactorization) Q() *CDense { return (*CDense)(f.e.Q()) }

// ThinQ returns the first min(m,n) columns of Q.
func (f *CFactorization) ThinQ() *CDense { return (*CDense)(f.e.ThinQ()) }

// SolveLS solves min‖A·x − b‖₂ (m ≥ n) for each column of b.
func (f *CFactorization) SolveLS(b *CDense) (*CDense, error) {
	return f.SolveLSCtx(nil, b)
}

// SolveLSCtx is SolveLS under a cancellation context (see FactorCtx).
func (f *CFactorization) SolveLSCtx(ctx context.Context, b *CDense) (*CDense, error) {
	x, err := f.e.SolveLS(ctx, (*tile.Dense[complex64])(b))
	if err != nil {
		return nil, err
	}
	return (*CDense)(x), nil
}

// Trace returns the execution trace (nil unless Options.Trace was set).
func (f *CFactorization) Trace() *sched.Trace { return f.e.Trace() }

// GanttChart renders an ASCII Gantt chart of the traced execution.
// Requires Options.Trace.
func (f *CFactorization) GanttChart(width int) string { return f.e.GanttChart(width) }

// Utilization returns per-worker busy fractions and overall parallel
// efficiency of the traced execution. Requires Options.Trace.
func (f *CFactorization) Utilization() sched.Utilization { return f.e.Utilization() }

// TaskCount returns the number of kernel tasks the factorization executed.
func (f *CFactorization) TaskCount() int { return f.e.TaskCount() }

// Grid returns the tile grid dimensions (p×q) and tile size.
func (f *CFactorization) Grid() (p, q, nb int) { return f.e.Grid() }
