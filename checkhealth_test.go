package tiledqr

import (
	"math"
	"strings"
	"testing"
)

// TestCheckHealthRejectsNonFiniteInput: with Options.CheckHealth, a matrix
// carrying a NaN or Inf is rejected before any kernel runs, in all four
// precisions; without it the happy path stays check-free (no error — the
// non-finite values simply propagate, as in LAPACK).
func TestCheckHealthRejectsNonFiniteInput(t *testing.T) {
	opt := Options{TileSize: 8, InnerBlock: 4, CheckHealth: true}
	wantSub := "non-finite"

	a := RandomDense(24, 16, 1)
	a.Set(9, 3, math.NaN())
	if _, err := Factor(a, opt); err == nil || !strings.Contains(err.Error(), wantSub) {
		t.Errorf("float64 NaN input: err = %v", err)
	}
	if _, err := Factor(a, Options{TileSize: 8, InnerBlock: 4}); err != nil {
		t.Errorf("without CheckHealth the NaN input must not error, got %v", err)
	}
	a.Set(9, 3, math.Inf(1))
	if _, err := Factor(a, opt); err == nil || !strings.Contains(err.Error(), wantSub) {
		t.Errorf("float64 Inf input: err = %v", err)
	}

	a32 := RandomDense32(24, 16, 1)
	a32.Set(0, 0, float32(math.NaN()))
	if _, err := Factor32(a32, opt); err == nil || !strings.Contains(err.Error(), wantSub) {
		t.Errorf("float32 NaN input: err = %v", err)
	}

	ac := RandomCDense(24, 16, 1)
	ac.Set(5, 5, complex(1, float32(math.Inf(-1))))
	if _, err := CFactor(ac, opt); err == nil || !strings.Contains(err.Error(), wantSub) {
		t.Errorf("complex64 Inf imaginary part: err = %v", err)
	}

	az := RandomZDense(24, 16, 1)
	az.Set(23, 15, complex(math.NaN(), 0))
	if _, err := FactorComplex(az, opt); err == nil || !strings.Contains(err.Error(), wantSub) {
		t.Errorf("complex128 NaN real part: err = %v", err)
	}
}

// TestCheckHealthHugeFiniteOK: overflow-safety of the finiteness scan —
// values whose |x|² overflows float64 are still finite and must pass.
func TestCheckHealthHugeFiniteOK(t *testing.T) {
	az := RandomZDense(16, 8, 1)
	az.Set(3, 3, complex(1.5e300, -2.5e300)) // |x|² overflows, |x| does not
	if _, err := FactorComplex(az, Options{TileSize: 8, InnerBlock: 4, CheckHealth: true}); err != nil {
		t.Errorf("huge-but-finite entry rejected: %v", err)
	}
}

// TestCheckHealthPreservesValidState: a rejected input must leave a
// previously valid factorization untouched and serving — validation runs
// before any retained storage is overwritten.
func TestCheckHealthPreservesValidState(t *testing.T) {
	opt := Options{TileSize: 8, InnerBlock: 4, CheckHealth: true}
	good := RandomDense(24, 16, 1)
	f := &Factorization{}
	if err := FactorInto(f, good, opt); err != nil {
		t.Fatal(err)
	}
	want := f.R().Data

	bad := RandomDense(24, 16, 2)
	bad.Set(1, 1, math.NaN())
	if err := FactorInto(f, bad, opt); err == nil {
		t.Fatal("NaN input accepted")
	}
	if err := f.Err(); err != nil {
		t.Errorf("Err() = %v after a rejected input, want nil (state untouched)", err)
	}
	if !equalData(f.R().Data, want) {
		t.Error("rejected input corrupted the previous factorization")
	}
}

// TestCheckHealthStreamInput: stream appends validate the batch and the
// right-hand side before touching retained state — a rejected append
// leaves the stream healthy and a later good append works.
func TestCheckHealthStreamInput(t *testing.T) {
	n := 16
	opt := Options{TileSize: 8, InnerBlock: 4, CheckHealth: true}
	s, err := NewStream(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRHS(RandomDense(8, n, 1), RandomDense(8, 1, 2)); err != nil {
		t.Fatal(err)
	}
	r1, err := s.R()
	if err != nil {
		t.Fatal(err)
	}

	bad := RandomDense(8, n, 3)
	bad.Set(4, 4, math.NaN())
	if err := s.AppendRHS(bad, RandomDense(8, 1, 4)); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN batch: err = %v", err)
	}
	badRHS := RandomDense(8, 1, 5)
	badRHS.Set(0, 0, math.Inf(1))
	if err := s.AppendRHS(RandomDense(8, n, 6), badRHS); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("Inf right-hand side: err = %v", err)
	}

	if err := s.Err(); err != nil {
		t.Fatalf("Err() = %v after rejected appends, want a healthy stream", err)
	}
	r2, err := s.R()
	if err != nil {
		t.Fatal(err)
	}
	if !equalData(r1.Data, r2.Data) {
		t.Error("rejected appends mutated the resident triangle")
	}
	if err := s.AppendRHS(RandomDense(8, n, 7), RandomDense(8, 1, 8)); err != nil {
		t.Errorf("good append after rejected ones: %v", err)
	}
}
