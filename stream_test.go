package tiledqr

import (
	"math"
	"math/rand"
	"testing"
)

// batchSchedule returns the row counts of each batch for one of the three
// ingestion patterns the streaming subsystem must be insensitive to.
func batchSchedule(m int, pattern string, rng *rand.Rand) []int {
	var sizes []int
	switch pattern {
	case "single":
		for r := 0; r < m; r++ {
			sizes = append(sizes, 1)
		}
	case "fixed":
		for r := 0; r < m; r += 37 {
			sizes = append(sizes, min(37, m-r))
		}
	case "random":
		for r := 0; r < m; {
			s := 1 + rng.Intn(80)
			s = min(s, m-r)
			sizes = append(sizes, s)
			r += s
		}
	default:
		panic("unknown pattern")
	}
	return sizes
}

// rowsOf copies rows [r0, r0+k) of a into a fresh matrix.
func rowsOf(a *Dense, r0, k int) *Dense {
	out := NewDense(k, a.Cols)
	for i := 0; i < k; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Set(i, j, a.At(r0+i, j))
		}
	}
	return out
}

func zRowsOf(a *ZDense, r0, k int) *ZDense {
	out := NewZDense(k, a.Cols)
	for i := 0; i < k; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Set(i, j, a.At(r0+i, j))
		}
	}
	return out
}

// maxUpperDiffSigned compares two upper triangular factors up to the per-row
// sign ambiguity of a QR factorization.
func maxUpperDiffSigned(got, want *Dense, n int) float64 {
	var worst float64
	for i := 0; i < n; i++ {
		sign := 1.0
		if got.At(i, i)*want.At(i, i) < 0 {
			sign = -1
		}
		for j := i; j < n; j++ {
			worst = math.Max(worst, math.Abs(sign*got.At(i, j)-want.At(i, j)))
		}
	}
	return worst
}

// TestStreamMatchesFactor feeds the same rows to StreamQR in single-row,
// fixed-size, and random-size batches and checks that R (up to row signs)
// and the least-squares solution agree with the one-shot factorization to
// 1e-12, across every parameter-free algorithm, both kernel families, and
// non-tile-divisible shapes.
func TestStreamMatchesFactor(t *testing.T) {
	// Shapes stay comfortably overdetermined: the LS comparison between two
	// valid factorizations amplifies by κ(A), and a square Gaussian matrix
	// can push κ·ε past the 1e-12 agreement bound this test asserts.
	shapes := []struct{ m, n, nb, ib int }{
		{137, 45, 16, 8}, // ragged in both directions
		{300, 64, 32, 8}, // column-divisible, tall
		{130, 97, 32, 8}, // ragged p×q with ragged diagonal tiles
	}
	const nrhs = 2
	for _, sh := range shapes {
		a := RandomDense(sh.m, sh.n, int64(sh.m*sh.n))
		b := RandomDense(sh.m, nrhs, int64(sh.m+sh.n))
		for _, alg := range Algorithms {
			opt := Options{Algorithm: alg, TileSize: sh.nb, InnerBlock: sh.ib, Workers: 4}
			f, err := Factor(a, opt)
			if err != nil {
				t.Fatal(err)
			}
			rRef := f.R()
			xRef, err := f.SolveLS(b)
			if err != nil {
				t.Fatal(err)
			}
			for _, pattern := range []string{"single", "fixed", "random"} {
				for _, kern := range []Kernels{TT, TS} {
					sopt := opt
					sopt.Kernels = kern
					s, err := NewStream(sh.n, sopt)
					if err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(int64(sh.m)))
					r0, batches := 0, 0
					for _, k := range batchSchedule(sh.m, pattern, rng) {
						if err := s.AppendRHS(rowsOf(a, r0, k), rowsOf(b, r0, k)); err != nil {
							t.Fatal(err)
						}
						r0 += k
						batches++
					}
					if pattern == "fixed" && batches < 3 {
						t.Fatalf("fixed pattern produced only %d batches", batches)
					}
					if s.Rows() != int64(sh.m) {
						t.Fatalf("ingested %d rows, want %d", s.Rows(), sh.m)
					}
					sR, err := s.R()
					if err != nil {
						t.Fatal(err)
					}
					if d := maxUpperDiffSigned(sR, rRef, sh.n); d > 1e-12 {
						t.Errorf("%v/%v %dx%d %s: stream R differs from Factor R by %.3e", alg, kern, sh.m, sh.n, pattern, d)
					}
					x, err := s.SolveLS()
					if err != nil {
						t.Fatal(err)
					}
					var worst float64
					for i := 0; i < sh.n; i++ {
						for j := 0; j < nrhs; j++ {
							worst = math.Max(worst, math.Abs(x.At(i, j)-xRef.At(i, j)))
						}
					}
					if worst > 1e-12 {
						t.Errorf("%v/%v %dx%d %s: stream LS solution differs by %.3e", alg, kern, sh.m, sh.n, pattern, worst)
					}
				}
			}
		}
	}
}

// TestZStreamMatchesFactor is the complex-domain agreement test. The
// reflector construction keeps R's diagonal real, so the row ambiguity is a
// ±1 sign exactly as in the real domain.
func TestZStreamMatchesFactor(t *testing.T) {
	const m, n, nb, ib, nrhs = 151, 43, 16, 8, 2
	a := RandomZDense(m, n, 5)
	b := RandomZDense(m, nrhs, 6)
	opt := Options{TileSize: nb, InnerBlock: ib, Workers: 4}
	f, err := FactorComplex(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	rRef := f.R()
	xRef, err := f.SolveLS(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, pattern := range []string{"single", "fixed", "random"} {
		s, err := NewZStream(n, opt)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		r0 := 0
		for _, k := range batchSchedule(m, pattern, rng) {
			if err := s.AppendRHS(zRowsOf(a, r0, k), zRowsOf(b, r0, k)); err != nil {
				t.Fatal(err)
			}
			r0 += k
		}
		rs, err := s.R()
		if err != nil {
			t.Fatal(err)
		}
		var worstR float64
		for i := 0; i < n; i++ {
			sign := complex(1, 0)
			if real(rs.At(i, i))*real(rRef.At(i, i)) < 0 {
				sign = -1
			}
			for j := i; j < n; j++ {
				d := sign*rs.At(i, j) - rRef.At(i, j)
				worstR = math.Max(worstR, math.Hypot(real(d), imag(d)))
			}
		}
		if worstR > 1e-12 {
			t.Errorf("%s: complex stream R differs by %.3e", pattern, worstR)
		}
		x, err := s.SolveLS()
		if err != nil {
			t.Fatal(err)
		}
		var worstX float64
		for i := 0; i < n; i++ {
			for j := 0; j < nrhs; j++ {
				d := x.At(i, j) - xRef.At(i, j)
				worstX = math.Max(worstX, math.Hypot(real(d), imag(d)))
			}
		}
		if worstX > 1e-12 {
			t.Errorf("%s: complex stream LS solution differs by %.3e", pattern, worstX)
		}
	}
}

// TestStreamMemoryBound asserts the O(n² + batch) bound: the retained
// footprint after 10 batches equals the footprint after 60 — no structure
// grows with the number of rows ingested.
func TestStreamMemoryBound(t *testing.T) {
	const n, nb, batchRows = 64, 32, 48
	opt := Options{TileSize: nb, InnerBlock: 8, Workers: 2}
	s, err := NewStream(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	ingest := func(batches int) {
		for i := 0; i < batches; i++ {
			a := RandomDense(batchRows, n, int64(100+i))
			b := RandomDense(batchRows, 1, int64(200+i))
			if err := s.AppendRHS(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(10)
	if _, err := s.SolveLS(); err != nil { // materialize the solve scratch too
		t.Fatal(err)
	}
	after10 := s.Footprint()
	ingest(50)
	if _, err := s.SolveLS(); err != nil {
		t.Fatal(err)
	}
	after60 := s.Footprint()
	if after10 != after60 {
		t.Fatalf("footprint grew with ingested rows: %d elements after 10 batches, %d after 60", after10, after60)
	}
	if s.Rows() != 60*batchRows {
		t.Fatalf("rows = %d, want %d", s.Rows(), 60*batchRows)
	}
}

// TestStreamResidualNorm checks the running residual against the directly
// computed ‖b − A·x‖ of the ingested system.
func TestStreamResidualNorm(t *testing.T) {
	const m, n, nb = 200, 24, 16
	a := RandomDense(m, n, 77)
	b := RandomDense(m, 1, 78)
	s, err := NewStream(n, Options{TileSize: nb, InnerBlock: 8})
	if err != nil {
		t.Fatal(err)
	}
	for r0 := 0; r0 < m; r0 += 25 {
		if err := s.AppendRHS(rowsOf(a, r0, 25), rowsOf(b, r0, 25)); err != nil {
			t.Fatal(err)
		}
	}
	x, err := s.SolveLS()
	if err != nil {
		t.Fatal(err)
	}
	res := Mul(a, x)
	for i := 0; i < m; i++ {
		res.Set(i, 0, b.At(i, 0)-res.At(i, 0))
	}
	want := FrobeniusNorm(res)
	got, err := s.ResidualNorm()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-10*math.Max(1, want) {
		t.Fatalf("running residual %.12e, direct residual %.12e", got, want)
	}
}

// TestStreamErrors exercises the API misuse guards of the streaming path.
func TestStreamErrors(t *testing.T) {
	opt := Options{TileSize: 16, InnerBlock: 8}
	if _, err := NewStream(0, opt); err == nil {
		t.Error("NewStream(0) should fail")
	}
	s, err := NewStream(8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRows(nil); err == nil {
		t.Error("AppendRows(nil) should fail")
	}
	if err := s.AppendRows(NewDense(3, 5)); err == nil {
		t.Error("column-count mismatch should fail")
	}
	if err := s.AppendRHS(RandomDense(3, 8, 1), nil); err == nil {
		t.Error("AppendRHS with nil rhs should fail")
	}
	if err := s.AppendRHS(RandomDense(3, 8, 1), NewDense(2, 1)); err == nil {
		t.Error("rhs row mismatch should fail")
	}
	if _, err := s.SolveLS(); err == nil {
		t.Error("SolveLS without RHS tracking should fail")
	}
	if q, err := s.QTB(); err != nil || q != nil {
		t.Errorf("QTB should be (nil, nil) without RHS tracking, got (%v, %v)", q, err)
	}
	// Rows-only stream cannot start RHS tracking later.
	if err := s.AppendRows(RandomDense(4, 8, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRHS(RandomDense(4, 8, 3), NewDense(4, 1)); err == nil {
		t.Error("late RHS tracking should fail")
	}
	// RHS stream rejects RHS-free appends and width changes.
	sr, err := NewStream(8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.AppendRHS(RandomDense(4, 8, 2), NewDense(4, 2)); err != nil {
		t.Fatal(err)
	}
	if err := sr.AppendRows(RandomDense(4, 8, 4)); err == nil {
		t.Error("AppendRows on an RHS-tracking stream should fail")
	}
	if err := sr.AppendRHS(RandomDense(4, 8, 5), NewDense(4, 3)); err == nil {
		t.Error("changing the RHS width should fail")
	}
	// SolveLS before n rows are ingested.
	if _, err := sr.SolveLS(); err == nil {
		t.Error("SolveLS with fewer than n rows should fail")
	}
	// Complex guards share the core; spot-check the two wrapper-level ones.
	zs, err := NewZStream(4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := zs.AppendRows(nil); err == nil {
		t.Error("complex AppendRows(nil) should fail")
	}
	if err := zs.AppendRHS(RandomZDense(2, 4, 1), nil); err == nil {
		t.Error("complex AppendRHS(nil rhs) should fail")
	}
}

// TestApplyNilB verifies the one-shot factorizations return errors instead
// of panicking when handed a nil right-hand side.
func TestApplyNilB(t *testing.T) {
	f, err := Factor(RandomDense(40, 20, 1), Options{TileSize: 16, InnerBlock: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ApplyQ(nil); err == nil {
		t.Error("ApplyQ(nil) should fail")
	}
	if err := f.ApplyQT(nil); err == nil {
		t.Error("ApplyQT(nil) should fail")
	}
	if _, err := f.SolveLS(nil); err == nil {
		t.Error("SolveLS(nil) should fail")
	}
	zf, err := FactorComplex(RandomZDense(40, 20, 1), Options{TileSize: 16, InnerBlock: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := zf.ApplyQ(nil); err == nil {
		t.Error("complex ApplyQ(nil) should fail")
	}
	if err := zf.ApplyQH(nil); err == nil {
		t.Error("ApplyQH(nil) should fail")
	}
	if _, err := zf.SolveLS(nil); err == nil {
		t.Error("complex SolveLS(nil) should fail")
	}
}

// TestStreamRowsOnly checks the R-only path (no right-hand side): the
// triangle still matches the one-shot factorization.
func TestStreamRowsOnly(t *testing.T) {
	const m, n, nb = 120, 40, 16
	a := RandomDense(m, n, 11)
	f, err := Factor(a, Options{TileSize: nb, InnerBlock: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(n, Options{TileSize: nb, InnerBlock: 8})
	if err != nil {
		t.Fatal(err)
	}
	for r0 := 0; r0 < m; r0 += 30 {
		if err := s.AppendRows(rowsOf(a, r0, 30)); err != nil {
			t.Fatal(err)
		}
	}
	sR, err := s.R()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxUpperDiffSigned(sR, f.R(), n); d > 1e-12 {
		t.Fatalf("rows-only stream R differs by %.3e", d)
	}
	if resid, err := s.ResidualNorm(); err != nil || resid != 0 {
		t.Fatalf("rows-only stream should report zero residual, got (%v, %v)", resid, err)
	}
}
