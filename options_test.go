package tiledqr

import (
	"strings"
	"testing"
)

// TestInnerBlockValidation: an explicit InnerBlock wider than the tile must
// be rejected with a descriptive error on every entry point, instead of
// GEQRT silently misbehaving.
func TestInnerBlockValidation(t *testing.T) {
	bad := Options{TileSize: 8, InnerBlock: 32}
	if _, err := Factor(RandomDense(16, 16, 1), bad); err == nil {
		t.Error("Factor accepted InnerBlock > TileSize")
	} else if !strings.Contains(err.Error(), "InnerBlock") || !strings.Contains(err.Error(), "TileSize") {
		t.Errorf("Factor error not descriptive: %v", err)
	}
	if _, err := FactorComplex(RandomZDense(16, 16, 1), bad); err == nil {
		t.Error("FactorComplex accepted InnerBlock > TileSize")
	}
	if _, err := Factor32(RandomDense32(16, 16, 1), bad); err == nil {
		t.Error("Factor32 accepted InnerBlock > TileSize")
	}
	if _, err := CFactor(RandomCDense(16, 16, 1), bad); err == nil {
		t.Error("CFactor accepted InnerBlock > TileSize")
	}
	if _, err := NewStream(16, bad); err == nil {
		t.Error("NewStream accepted InnerBlock > TileSize")
	}
	if _, err := NewZStream(16, bad); err == nil {
		t.Error("NewZStream accepted InnerBlock > TileSize")
	}
	if _, err := NewStream32(16, bad); err == nil {
		t.Error("NewStream32 accepted InnerBlock > TileSize")
	}
	if _, err := NewCStream(16, bad); err == nil {
		t.Error("NewCStream accepted InnerBlock > TileSize")
	}
}

// TestDefaultInnerBlockCapped: when InnerBlock is defaulted, small tiles
// must get a clamped inner block rather than an error.
func TestDefaultInnerBlockCapped(t *testing.T) {
	if _, err := Factor(RandomDense(16, 16, 1), Options{TileSize: 4}); err != nil {
		t.Errorf("defaulted InnerBlock with small TileSize errored: %v", err)
	}
	o := Options{TileSize: 4}.withDefaults()
	if o.InnerBlock != 4 {
		t.Errorf("defaulted InnerBlock = %d, want 4 (capped at TileSize)", o.InnerBlock)
	}
}
