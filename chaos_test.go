package tiledqr

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tiledqr/internal/core"
	"tiledqr/internal/fault"
)

// The chaos suite proves the runtime's failure-containment properties: an
// injected fault (error, panic, stall, NaN poison) in one job's kernels
// fails that job with a descriptive error while every concurrent job on
// the same shared runtime completes bit-identical to per-call execution,
// and no goroutines leak. The fault injector is process-global, so these
// tests never run in parallel with each other (no t.Parallel) and always
// disarm it before returning.

// checkNoGoroutineLeak fails the test if the goroutine count has not
// returned to the baseline within a grace period — the hand-rolled leak
// detector (counters are asynchronous; workers take a moment to exit).
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// bystander is one concurrent job of a non-victim precision plus the
// result it must reproduce bit-identically while faults rain on the
// victim.
type bystander struct {
	name string
	run  func(rt *Runtime) error
}

// makeBystanders precomputes per-call reference results (before the
// injector is armed!) for a float32, complex64 and complex128 job, and
// returns closures that re-run each on the shared runtime and compare
// bit-for-bit.
func makeBystanders(t *testing.T, check bool) []bystander {
	t.Helper()
	opt := func(rt *Runtime) Options {
		return Options{TileSize: 8, InnerBlock: 4, Runtime: rt, CheckHealth: check}
	}
	ref := func() Options { return Options{TileSize: 8, InnerBlock: 4, Workers: 2, CheckHealth: check} }

	a32 := RandomDense32(40, 24, 7)
	f32, err := Factor32(a32, ref())
	if err != nil {
		t.Fatal(err)
	}
	want32 := f32.R().Data

	ac := RandomCDense(40, 24, 8)
	fc, err := CFactor(ac, ref())
	if err != nil {
		t.Fatal(err)
	}
	wantC := fc.R().Data

	az := RandomZDense(40, 24, 9)
	fz, err := FactorComplex(az, ref())
	if err != nil {
		t.Fatal(err)
	}
	wantZ := fz.R().Data

	return []bystander{
		{"float32", func(rt *Runtime) error {
			f, err := Factor32(a32, opt(rt))
			if err != nil {
				return err
			}
			if !equalData(f.R().Data, want32) {
				return errors.New("float32 bystander R differs from per-call R")
			}
			return nil
		}},
		{"complex64", func(rt *Runtime) error {
			f, err := CFactor(ac, opt(rt))
			if err != nil {
				return err
			}
			if !equalData(f.R().Data, wantC) {
				return errors.New("complex64 bystander R differs from per-call R")
			}
			return nil
		}},
		{"complex128", func(rt *Runtime) error {
			f, err := FactorComplex(az, opt(rt))
			if err != nil {
				return err
			}
			if !equalData(f.R().Data, wantZ) {
				return errors.New("complex128 bystander R differs from per-call R")
			}
			return nil
		}},
	}
}

// TestChaosFaultIsolation: for each fault mode, a float64 victim job on a
// shared runtime suffers exactly one injected fault and fails with a
// descriptive error, while concurrent jobs in the other three precisions
// (which the precision filter never matches) complete bit-identical to
// per-call execution — run under -race this is the containment proof.
func TestChaosFaultIsolation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     fault.Config
		check   bool // victim runs with CheckHealth
		wantSub string
	}{
		{"error", fault.Config{Mode: fault.ModeError, Kind: fault.AnyKind, Prec: "d", Index: 0}, false, "fault injection"},
		{"panic", fault.Config{Mode: fault.ModePanic, Kind: fault.AnyKind, Prec: "d", Index: 0}, false, "panicked"},
		{"nan-poison", fault.Config{Mode: fault.ModeNaN, Kind: core.KGEQRT, Prec: "d", Index: 0}, true, "numerical breakdown"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			bys := makeBystanders(t, tc.check)
			a := RandomDense(64, 48, 1)

			rt := NewRuntime(4)
			fault.Set(tc.cfg)
			defer fault.Reset()

			var wg sync.WaitGroup
			errs := make(chan error, 2*len(bys))
			for _, b := range bys {
				wg.Add(1)
				go func(b bystander) {
					defer wg.Done()
					for rep := 0; rep < 2; rep++ {
						if err := b.run(rt); err != nil {
							errs <- fmt.Errorf("%s: %w", b.name, err)
							return
						}
					}
				}(b)
			}
			_, verr := Factor(a, Options{TileSize: 8, InnerBlock: 4, Runtime: rt, CheckHealth: tc.check})
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if verr == nil {
				t.Fatalf("victim factorization survived a %s injection", tc.name)
			}
			if !strings.Contains(verr.Error(), tc.wantSub) {
				t.Errorf("victim error %q does not mention %q", verr, tc.wantSub)
			}
			if n := fault.Injected(); n != 1 {
				t.Errorf("injected %d fault(s), want exactly 1", n)
			}
			fault.Reset()

			// The victim's failure must not have poisoned the runtime: a
			// fresh float64 job on the same pool still works.
			f, err := Factor(a, Options{TileSize: 8, InnerBlock: 4, Runtime: rt})
			if err != nil {
				t.Fatalf("runtime unusable after injected %s: %v", tc.name, err)
			}
			if !equalData(f.R().Data, refR(a, Options{TileSize: 8, InnerBlock: 4}).Data) {
				t.Error("post-fault R differs from per-call R")
			}
			rt.Close()
			checkNoGoroutineLeak(t, before)
		})
	}
}

// TestChaosStallDeadline: slow-tenant simulation — every float64 kernel
// stalls, the caller bounds the factorization with a deadline, and the
// call returns context.DeadlineExceeded promptly instead of serving a
// stalled job forever.
func TestChaosStallDeadline(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Close()
	fault.Set(fault.Config{Mode: fault.ModeStall, Kind: fault.AnyKind, Prec: "d", Index: -1,
		Stall: 10 * time.Millisecond})
	defer fault.Reset()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	a := RandomDense(64, 48, 2)
	start := time.Now()
	_, err := FactorCtx(ctx, a, Options{TileSize: 8, InnerBlock: 4, Runtime: rt})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// In-flight tasks finish (one stall each) and the submitter unblocks:
	// nowhere near draining the whole stalled DAG.
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("deadline-bounded factorization took %v", el)
	}
}

// TestCancelPromptness: cancelling a large in-flight factorization
// returns ctx.Err() within 100ms of the cancel (in-flight kernel tasks
// are microseconds), and a concurrent job sharing the runtime still
// completes bit-identical.
func TestCancelPromptness(t *testing.T) {
	rt := NewRuntime(4)
	defer rt.Close()

	az := RandomZDense(40, 24, 3)
	refOpt := Options{TileSize: 8, InnerBlock: 4, Workers: 2}
	fref, err := FactorComplex(az, refOpt)
	if err != nil {
		t.Fatal(err)
	}
	wantZ := fref.R().Data

	// Large enough that the run is mid-flight when the cancel lands.
	a := RandomDense(512, 384, 4)
	ctx, cancel := context.WithCancel(context.Background())
	var cancelAt time.Time
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancelAt = time.Now()
		cancel()
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	var zerr error
	var zr *ZDense
	go func() {
		defer wg.Done()
		f, err := FactorComplex(az, Options{TileSize: 8, InnerBlock: 4, Runtime: rt})
		if err != nil {
			zerr = err
			return
		}
		zr = f.R()
	}()
	_, err = FactorCtx(ctx, a, Options{TileSize: 8, InnerBlock: 4, Runtime: rt})
	returned := time.Now()
	wg.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (machine too fast? grow the matrix)", err)
	}
	if dt, limit := returned.Sub(cancelAt), 100*time.Millisecond*raceFactor; dt > limit {
		t.Errorf("FactorCtx returned %v after cancel, want ≤ %v", dt, limit)
	}
	if zerr != nil {
		t.Errorf("concurrent job failed during cancellation: %v", zerr)
	} else if !equalData(zr.Data, wantZ) {
		t.Error("concurrent job R differs from per-call R during cancellation")
	}

	// A context dead before the call: ctx.Err() without a single task run.
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := FactorCtx(dead, a, Options{TileSize: 8, InnerBlock: 4, Runtime: rt}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestCancelLeavesFactorizationSticky: a cancelled FactorIntoCtx leaves
// the factorization invalid with the cancellation as its sticky error,
// and a later Refactor rebuilds and clears it.
func TestCancelLeavesFactorizationSticky(t *testing.T) {
	a := RandomDense(64, 48, 5)
	f := &Factorization{}
	// Stalled kernels make the deadline land mid-run deterministically.
	fault.Set(fault.Config{Mode: fault.ModeStall, Kind: fault.AnyKind, Prec: "d", Index: -1,
		Stall: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	err := FactorIntoCtx(ctx, f, a, Options{TileSize: 8, InnerBlock: 4})
	fault.Reset()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("FactorIntoCtx = %v, want context.DeadlineExceeded", err)
	}
	if ferr := f.Err(); !errors.Is(ferr, context.DeadlineExceeded) {
		t.Errorf("Err() = %v, want the sticky context.DeadlineExceeded", ferr)
	}
	if _, err := f.SolveLS(RandomDense(64, 1, 6)); err == nil {
		t.Error("SolveLS served a cancelled factorization")
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("SolveLS error %v does not wrap the cancellation cause", err)
	}
	// Recovery: a successful Refactor clears the sticky state.
	if err := f.Refactor(a); err != nil {
		t.Fatal(err)
	}
	if err := f.Err(); err != nil {
		t.Errorf("Err() = %v after successful Refactor, want nil", err)
	}
	if !equalData(f.R().Data, refR(a, Options{TileSize: 8, InnerBlock: 4}).Data) {
		t.Error("recovered R differs from per-call R")
	}
}

// TestRuntimeLifecycle: submit on a closed runtime errors with
// ErrRuntimeClosed (never hangs), double Close is safe, Drain rejects
// new work with ErrRuntimeDraining, and an expired Drain deadline
// returns ctx.Err() while the in-flight job keeps running to completion.
func TestRuntimeLifecycle(t *testing.T) {
	a := RandomDense(40, 24, 1)
	opt := func(rt *Runtime) Options { return Options{TileSize: 8, InnerBlock: 4, Runtime: rt} }

	t.Run("closed-submit", func(t *testing.T) {
		rt := NewRuntime(2)
		rt.Close()
		rt.Close() // double Close: defined, idempotent
		done := make(chan error, 1)
		go func() {
			_, err := Factor(a, opt(rt))
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, ErrRuntimeClosed) {
				t.Errorf("err = %v, want ErrRuntimeClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("submit on a closed runtime hung")
		}
	})

	t.Run("drain-idle", func(t *testing.T) {
		rt := NewRuntime(2)
		defer rt.Close()
		if err := rt.Drain(context.Background()); err != nil {
			t.Fatalf("Drain on an idle runtime: %v", err)
		}
		if _, err := Factor(a, opt(rt)); !errors.Is(err, ErrRuntimeDraining) {
			t.Errorf("submit after Drain: err = %v, want ErrRuntimeDraining", err)
		}
	})

	t.Run("drain-deadline", func(t *testing.T) {
		rt := NewRuntime(2)
		fault.Set(fault.Config{Mode: fault.ModeStall, Kind: fault.AnyKind, Prec: "d", Index: -1,
			Stall: 5 * time.Millisecond})
		defer fault.Reset()
		started := make(chan struct{})
		finished := make(chan error, 1)
		go func() {
			close(started)
			_, err := Factor(RandomDense(64, 48, 2), opt(rt))
			finished <- err
		}()
		<-started
		time.Sleep(10 * time.Millisecond) // let the job get in flight
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		if err := rt.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("Drain = %v, want context.DeadlineExceeded", err)
		}
		// The stalled job was not killed by the expired Drain: it finishes,
		// and an unbounded Drain then reports idle.
		fault.Reset()
		if err := <-finished; err != nil {
			t.Errorf("in-flight job failed after expired Drain: %v", err)
		}
		if err := rt.Drain(context.Background()); err != nil {
			t.Errorf("second Drain after the job finished: %v", err)
		}
		rt.Close()
	})
}

// streamProbe drives one precision's stream wrapper through the sticky-
// error contract without the test quadruplicating itself.
type streamProbe struct {
	prec       string // fault-injector precision filter
	appendGood func() error
	err        func() error
	accessors  func() map[string]error // op name → returned error
}

// TestStickyStreamErrors: after an append fails mid-merge, the stream is
// poisoned — Err, R, QTB, SolveLS, ResidualNorm and further appends all
// return (never panic with) the original cause, in all four precisions.
func TestStickyStreamErrors(t *testing.T) {
	opt := Options{TileSize: 8, InnerBlock: 4, Workers: 1}
	n := 24

	probes := map[string]streamProbe{}

	{
		s, err := NewStream(n, opt)
		if err != nil {
			t.Fatal(err)
		}
		probes["float64"] = streamProbe{
			prec:       "d",
			appendGood: func() error { return s.AppendRHS(RandomDense(16, n, 1), RandomDense(16, 1, 2)) },
			err:        s.Err,
			accessors: func() map[string]error {
				m := map[string]error{}
				_, m["R"] = s.R()
				_, m["QTB"] = s.QTB()
				_, m["SolveLS"] = s.SolveLS()
				_, m["ResidualNorm"] = s.ResidualNorm()
				m["AppendRows"] = s.AppendRows(RandomDense(16, n, 3))
				return m
			},
		}
	}
	{
		s, err := NewStream32(n, opt)
		if err != nil {
			t.Fatal(err)
		}
		probes["float32"] = streamProbe{
			prec:       "s",
			appendGood: func() error { return s.AppendRHS(RandomDense32(16, n, 1), RandomDense32(16, 1, 2)) },
			err:        s.Err,
			accessors: func() map[string]error {
				m := map[string]error{}
				_, m["R"] = s.R()
				_, m["QTB"] = s.QTB()
				_, m["SolveLS"] = s.SolveLS()
				_, m["ResidualNorm"] = s.ResidualNorm()
				m["AppendRows"] = s.AppendRows(RandomDense32(16, n, 3))
				return m
			},
		}
	}
	{
		s, err := NewCStream(n, opt)
		if err != nil {
			t.Fatal(err)
		}
		probes["complex64"] = streamProbe{
			prec:       "c",
			appendGood: func() error { return s.AppendRHS(RandomCDense(16, n, 1), RandomCDense(16, 1, 2)) },
			err:        s.Err,
			accessors: func() map[string]error {
				m := map[string]error{}
				_, m["R"] = s.R()
				_, m["QTB"] = s.QTB()
				_, m["SolveLS"] = s.SolveLS()
				_, m["ResidualNorm"] = s.ResidualNorm()
				m["AppendRows"] = s.AppendRows(RandomCDense(16, n, 3))
				return m
			},
		}
	}
	{
		s, err := NewZStream(n, opt)
		if err != nil {
			t.Fatal(err)
		}
		probes["complex128"] = streamProbe{
			prec:       "z",
			appendGood: func() error { return s.AppendRHS(RandomZDense(16, n, 1), RandomZDense(16, 1, 2)) },
			err:        s.Err,
			accessors: func() map[string]error {
				m := map[string]error{}
				_, m["R"] = s.R()
				_, m["QTB"] = s.QTB()
				_, m["SolveLS"] = s.SolveLS()
				_, m["ResidualNorm"] = s.ResidualNorm()
				m["AppendRows"] = s.AppendRows(RandomZDense(16, n, 3))
				return m
			},
		}
	}

	for name, p := range probes {
		t.Run(name, func(t *testing.T) {
			if err := p.appendGood(); err != nil {
				t.Fatal(err)
			}
			fault.Set(fault.Config{Mode: fault.ModeError, Kind: fault.AnyKind, Prec: p.prec, Index: 0})
			appendErr := p.appendGood()
			fault.Reset()
			if appendErr == nil {
				t.Fatal("append survived an injected kernel error")
			}
			if !strings.Contains(appendErr.Error(), "fault injection") {
				t.Fatalf("append error %q does not carry the original cause", appendErr)
			}
			if serr := p.err(); serr == nil {
				t.Error("Err() = nil after a failed append")
			} else if serr.Error() != appendErr.Error() {
				t.Errorf("Err() = %q, want the append's error %q", serr, appendErr)
			}
			for op, err := range p.accessors() {
				if err == nil {
					t.Errorf("%s served results from a poisoned stream", op)
					continue
				}
				if !strings.Contains(err.Error(), "fault injection") {
					t.Errorf("%s error %q lost the original cause", op, err)
				}
				if !strings.Contains(err.Error(), "further appends are unsupported") {
					t.Errorf("%s error %q does not state the appends-unsupported contract", op, err)
				}
			}
		})
	}
}

// TestStreamCancelPoisons: a context cancellation that lands mid-merge
// poisons the stream with the cancellation as its cause.
func TestStreamCancelPoisons(t *testing.T) {
	s, err := NewStream(48, Options{TileSize: 8, InnerBlock: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Stall every float64 kernel so the deadline reliably lands inside the
	// merge DAG rather than before or after it.
	fault.Set(fault.Config{Mode: fault.ModeStall, Kind: fault.AnyKind, Prec: "d", Index: -1,
		Stall: 5 * time.Millisecond})
	defer fault.Reset()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	aerr := s.AppendRowsCtx(ctx, RandomDense(512, 48, 1))
	fault.Reset()
	if !errors.Is(aerr, context.DeadlineExceeded) {
		t.Fatalf("AppendRowsCtx = %v, want context.DeadlineExceeded", aerr)
	}
	if serr := s.Err(); !errors.Is(serr, context.DeadlineExceeded) {
		t.Errorf("Err() = %v, want the sticky cancellation", serr)
	}
	if _, err := s.R(); err == nil {
		t.Error("R served a cancelled stream")
	}
}
