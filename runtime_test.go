package tiledqr

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// refR computes the reference R with the legacy per-call pool — the
// baseline the shared runtime must reproduce bit-identically (same DAG,
// same dataflow, so every float is determined regardless of schedule).
func refR(a *Dense, opt Options) *Dense {
	opt.Runtime = nil
	opt.Workers = 2
	f, err := Factor(a, opt)
	if err != nil {
		panic(err)
	}
	return f.R()
}

// TestSharedRuntimeConcurrentStress factors many different matrices in
// mixed precisions and both kernel families concurrently on one shared
// runtime, asserting each result is bit-identical to per-call execution.
// Run under -race this is the end-to-end check of the multi-DAG runtime.
func TestSharedRuntimeConcurrentStress(t *testing.T) {
	rt := NewRuntime(4)
	defer rt.Close()
	kernels := []Kernels{TT, TS}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			kern := kernels[g%2]
			opt := Options{Algorithm: Greedy, Kernels: kern, TileSize: 8, InnerBlock: 4, Runtime: rt}
			m, n := 40+g, 24+(g%3)*8
			for rep := 0; rep < 3; rep++ {
				seed := int64(g*10 + rep)
				switch g % 4 {
				case 0: // float64 + least squares
					a := RandomDense(m, n, seed)
					f, err := Factor(a, opt)
					if err != nil {
						errs <- err
						return
					}
					want := refR(a, opt)
					if !equalData(f.R().Data, want.Data) {
						errs <- fmt.Errorf("g%d rep%d: shared-runtime R differs from per-call R", g, rep)
						return
					}
					b := RandomDense(m, 2, seed+1)
					if _, err := f.SolveLS(b); err != nil {
						errs <- err
						return
					}
				case 1: // complex128
					a := RandomZDense(m, n, seed)
					f, err := FactorComplex(a, opt)
					if err != nil {
						errs <- err
						return
					}
					optRef := opt
					optRef.Runtime, optRef.Workers = nil, 2
					fr, err := FactorComplex(a, optRef)
					if err != nil {
						errs <- err
						return
					}
					if !equalData(f.R().Data, fr.R().Data) {
						errs <- fmt.Errorf("g%d rep%d: complex128 shared R differs", g, rep)
						return
					}
				case 2: // float32
					a := RandomDense32(m, n, seed)
					f, err := Factor32(a, opt)
					if err != nil {
						errs <- err
						return
					}
					optRef := opt
					optRef.Runtime, optRef.Workers = nil, 2
					fr, err := Factor32(a, optRef)
					if err != nil {
						errs <- err
						return
					}
					if !equalData(f.R().Data, fr.R().Data) {
						errs <- fmt.Errorf("g%d rep%d: float32 shared R differs", g, rep)
						return
					}
				case 3: // complex64 via the streaming path on the shared runtime
					a := RandomCDense(m, n, seed)
					s, err := NewCStream(n, Options{TileSize: 8, InnerBlock: 4, Runtime: rt})
					if err != nil {
						errs <- err
						return
					}
					if err := s.AppendRows(a); err != nil {
						errs <- err
						return
					}
					sr, err := NewCStream(n, Options{TileSize: 8, InnerBlock: 4, Workers: 2})
					if err != nil {
						errs <- err
						return
					}
					if err := sr.AppendRows(a); err != nil {
						errs <- err
						return
					}
					sR, err := s.R()
					if err != nil {
						errs <- err
						return
					}
					srR, err := sr.R()
					if err != nil {
						errs <- err
						return
					}
					if !equalData(sR.Data, srR.Data) {
						errs <- fmt.Errorf("g%d rep%d: complex64 stream shared R differs", g, rep)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func equalData[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRuntimeCloseNoGoroutineLeak: every worker started by a Runtime must
// be gone after Close.
func TestRuntimeCloseNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		rt := NewRuntime(4)
		a := RandomDense(40, 24, int64(i))
		if _, err := Factor(a, Options{TileSize: 8, InnerBlock: 4, Runtime: rt}); err != nil {
			t.Fatal(err)
		}
		rt.Close()
	}
	// The counters are asynchronous; give exiting goroutines a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRefactorAllocsO1: the steady-state Refactor serving path must do a
// constant handful of allocations — none proportional to the tile grid or
// task count. (A fresh Factor of this shape allocates the tile matrix, T
// factors, DAG, plan, and workspaces: dozens of allocations.)
func TestRefactorAllocsO1(t *testing.T) {
	a1 := RandomDense(64, 48, 1)
	a2 := RandomDense(64, 48, 2)
	f := &Factorization{}
	opt := Options{TileSize: 8, InnerBlock: 4}
	if err := FactorInto(f, a1, opt); err != nil {
		t.Fatal(err)
	}
	// Warm up: grow worker workspaces, deque capacity, spare lists.
	for i := 0; i < 3; i++ {
		if err := f.Refactor(a2); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := f.Refactor(a2); err != nil {
			t.Fatal(err)
		}
	})
	// O(1): the job bookkeeping (job struct, done channel, trace, exec
	// closure) — with 48 tiles in the grid, per-tile allocation would blow
	// far past this bound.
	if allocs > 16 {
		t.Errorf("Refactor did %.1f allocs/run, want O(1) ≤ 16", allocs)
	}
	if !equalData(f.R().Data, refR(a2, opt).Data) {
		t.Error("steady-state Refactor R differs from per-call R")
	}
}

// TestFactorIntoRebuildsOnNewShape: FactorInto must transparently rebuild
// for a new shape or options and keep producing correct factors.
func TestFactorIntoRebuildsOnNewShape(t *testing.T) {
	f := &Factorization{}
	shapes := [][2]int{{40, 24}, {24, 24}, {56, 8}, {40, 24}}
	for i, sh := range shapes {
		a := RandomDense(sh[0], sh[1], int64(i))
		if err := FactorInto(f, a, Options{TileSize: 8, InnerBlock: 4}); err != nil {
			t.Fatal(err)
		}
		want := refR(a, Options{TileSize: 8, InnerBlock: 4})
		if !equalData(f.R().Data, want.Data) {
			t.Errorf("shape %v: FactorInto R differs from per-call R", sh)
		}
	}
	// Changing a structural option must also rebuild.
	a := RandomDense(40, 24, 9)
	if err := FactorInto(f, a, Options{TileSize: 8, InnerBlock: 4, Kernels: TS}); err != nil {
		t.Fatal(err)
	}
	want := refR(a, Options{TileSize: 8, InnerBlock: 4, Kernels: TS})
	if !equalData(f.R().Data, want.Data) {
		t.Error("TS rebuild: FactorInto R differs from per-call R")
	}
}

// TestRefactorEmptyFactorization: Refactor on a never-factored value must
// return an error, not panic, in every precision.
func TestRefactorEmptyFactorization(t *testing.T) {
	if err := (&Factorization{}).Refactor(RandomDense(8, 4, 1)); err == nil {
		t.Error("float64: no error")
	}
	if err := (&Factorization32{}).Refactor(RandomDense32(8, 4, 1)); err == nil {
		t.Error("float32: no error")
	}
	if err := (&CFactorization{}).Refactor(RandomCDense(8, 4, 1)); err == nil {
		t.Error("complex64: no error")
	}
	if err := (&ZFactorization{}).Refactor(RandomZDense(8, 4, 1)); err == nil {
		t.Error("complex128: no error")
	}
}

// TestRefactorKeepsTrace: Refactor runs with the same options as the
// original factorization, including Trace.
func TestRefactorKeepsTrace(t *testing.T) {
	f := &Factorization{}
	if err := FactorInto(f, RandomDense(40, 24, 1), Options{TileSize: 8, InnerBlock: 4, Trace: true}); err != nil {
		t.Fatal(err)
	}
	if err := f.Refactor(RandomDense(40, 24, 2)); err != nil {
		t.Fatal(err)
	}
	tr := f.Trace()
	if tr == nil || len(tr.Spans) != f.TaskCount() {
		t.Errorf("trace lost across Refactor (spans = %v)", tr)
	}
}

// TestNegativeWorkersUsesSharedRuntime: Workers < 0 must behave like the
// default (shared runtime), not build a private pool.
func TestNegativeWorkersUsesSharedRuntime(t *testing.T) {
	a := RandomDense(40, 24, 5)
	f, err := Factor(a, Options{TileSize: 8, InnerBlock: 4, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !equalData(f.R().Data, refR(a, Options{TileSize: 8, InnerBlock: 4}).Data) {
		t.Error("Workers: -1 R differs from default execution")
	}
}

// TestWithRuntimeOption: the WithRuntime chain helper must route execution
// to the given runtime and leave the original options untouched.
func TestWithRuntimeOption(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Close()
	if rt.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", rt.Workers())
	}
	base := Options{TileSize: 8, InnerBlock: 4}
	opt := base.WithRuntime(rt)
	if base.Runtime != nil {
		t.Error("WithRuntime mutated the receiver")
	}
	a := RandomDense(40, 24, 3)
	f, err := Factor(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !equalData(f.R().Data, refR(a, base).Data) {
		t.Error("WithRuntime R differs from per-call R")
	}
}

// TestDefaultRuntimeShared: zero-valued options execute on the process
// runtime; DefaultRuntime is a stable handle sized to GOMAXPROCS.
func TestDefaultRuntimeShared(t *testing.T) {
	if DefaultRuntime() != DefaultRuntime() {
		t.Error("DefaultRuntime not a singleton")
	}
	if got, want := DefaultRuntime().Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default runtime has %d workers, want GOMAXPROCS = %d", got, want)
	}
	a := RandomDense(40, 24, 4)
	f, err := Factor(a, Options{TileSize: 8, InnerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !equalData(f.R().Data, refR(a, Options{TileSize: 8, InnerBlock: 4}).Data) {
		t.Error("default-runtime R differs from per-call R")
	}
}
