# Build/test/benchmark entry points for the tiledqr reproduction.

GO ?= go

.PHONY: all build test race vet fmt-check lint bench bench-smoke throughput clean

all: lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: fmt-check vet

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench measures every sequential kernel in all four precisions (double,
# double complex, single, single complex, at the benchmark shape
# nb=128/ib=32), scheduler dispatch cost, streaming TSQR ingestion
# throughput (rows/sec), and the concurrent-fleet factorization throughput
# (per-call pools vs shared runtime vs FactorInto reuse, at 1..64 clients),
# and records the trajectory in BENCH_kernels.json. The file's "baseline"
# object (seed figures) is preserved across regenerations, so the
# float64/complex128 maps stay comparable to the pre-generic numbers.
bench:
	$(GO) run ./cmd/qrperf -kernels-json BENCH_kernels.json

# throughput prints the serving-workload table (factorizations/sec for a
# fleet of concurrent clients, shared runtime vs per-call pools).
throughput:
	$(GO) run ./cmd/qrperf -throughput

# bench-smoke is the CI-sized benchmark run: one iteration of the kernel and
# streaming figures, a tiny qrstream ingestion with verification, and a
# short fleet-throughput sweep, to prove the harnesses still work.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Figure4|StreamAppendDouble$$' -benchtime 1x ./...
	$(GO) run ./cmd/qrstream -n 96 -nb 32 -batch 64 -batches 6 -rhs 1 -verify
	$(GO) run ./cmd/qrperf -throughput -quick

clean:
	$(GO) clean ./...
