# Build/test/benchmark entry points for the tiledqr reproduction.

GO ?= go

.PHONY: all build test race vet fmt-check lint bench bench-smoke clean

all: lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: fmt-check vet

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench measures every sequential kernel in all four precisions (double,
# double complex, single, single complex, at the benchmark shape
# nb=128/ib=32), scheduler dispatch cost, and streaming TSQR ingestion
# throughput (rows/sec), and records the trajectory in BENCH_kernels.json.
# The file's "baseline" object (seed figures) is preserved across
# regenerations, so the float64/complex128 maps stay comparable to the
# pre-generic numbers.
bench:
	$(GO) run ./cmd/qrperf -kernels-json BENCH_kernels.json

# bench-smoke is the CI-sized benchmark run: one iteration of the kernel and
# streaming figures plus a tiny qrstream ingestion with verification, to
# prove both harnesses still work.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Figure4|StreamAppendDouble$$' -benchtime 1x ./...
	$(GO) run ./cmd/qrstream -n 96 -nb 32 -batch 64 -batches 6 -rhs 1 -verify

clean:
	$(GO) clean ./...
