# Build/test/benchmark entry points for the tiledqr reproduction.

GO ?= go

.PHONY: all build test race vet bench bench-smoke clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench measures every sequential kernel (double and double complex, at the
# benchmark shape nb=128/ib=32) plus scheduler dispatch cost and records the
# GFLOP/s trajectory in BENCH_kernels.json. The file's "baseline" object
# (seed figures) is preserved across regenerations.
bench:
	$(GO) run ./cmd/qrperf -kernels-json BENCH_kernels.json

# bench-smoke is the CI-sized benchmark run: one iteration of the kernel
# figures only, to prove the harness still works.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Figure4' -benchtime 1x ./...

clean:
	$(GO) clean ./...
