# Build/test/benchmark entry points for the tiledqr reproduction.

GO ?= go

.PHONY: all build test test-noasm race vet fmt-check lint bench bench-smoke bench-gate tune throughput chaos fault-smoke fuzz-smoke serve-smoke dist-smoke clean

all: lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: fmt-check vet

test:
	$(GO) test ./...

# test-noasm proves the pure-Go fallback family: once with the assembly
# compiled out entirely and once with the binary intact but the vector
# backend disabled at startup.
test-noasm:
	$(GO) build -tags noasm ./...
	$(GO) test -tags noasm ./...
	TILEDQR_SIMD=off $(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-tolerance suite under the race detector, twice:
# deterministic fault injection (error/panic/stall/NaN-poison) with
# bit-identical bystander jobs, context cancellation promptness, sticky
# factorization/stream failure states, CheckHealth validation, and the
# runtime lifecycle (closed-submit, double Close, deadline-bounded Drain)
# with hand-rolled goroutine-leak checks.
chaos:
	$(GO) test -race -count=2 -run 'TestChaos|TestCancel|TestRuntimeLifecycle|TestSticky|TestStream|TestCheckHealth' .
	$(GO) test -race -count=2 ./internal/fault/ ./internal/sched/

# fault-smoke proves the CLI failure path end to end: with a fault armed
# through TILEDQR_FAULT, qrstream must exit 1 carrying the injected error
# on stderr — and must not dump a panic stack trace.
fault-smoke:
	@out=$$(TILEDQR_FAULT="mode=error;index=0" $(GO) run ./cmd/qrstream -n 96 -nb 32 -batch 64 -batches 2 2>&1); code=$$?; \
	echo "$$out"; \
	if [ $$code -ne 1 ]; then echo "fault-smoke: want exit code 1, got $$code"; exit 1; fi; \
	echo "$$out" | grep -q "fault injection" || { echo "fault-smoke: injected error missing from output"; exit 1; }; \
	if echo "$$out" | grep -q "^goroutine "; then echo "fault-smoke: panic stack trace in output"; exit 1; fi; \
	echo "fault-smoke: ok (exit 1, clean error, no panic)"

# fuzz-smoke briefly runs the fuzz targets (hostile options, adversarial
# matrices with NaN/Inf/degenerate shapes) — the no-panic contract of the
# public API. Seed corpora live under testdata/fuzz/.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzOptionsValidate -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz FuzzFactor -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz FuzzVecSIMD -fuzztime $(FUZZTIME) ./internal/vec/
	$(GO) test -run '^$$' -fuzz FuzzTileFrame -fuzztime $(FUZZTIME) ./internal/dist/

# bench measures every sequential kernel in all four precisions (double,
# double complex, single, single complex, at the benchmark shape
# nb=128/ib=32), scheduler dispatch cost, streaming TSQR ingestion
# throughput (rows/sec), and the concurrent-fleet factorization throughput
# (per-call pools vs shared runtime vs FactorInto reuse, at 1..64 clients),
# and records the trajectory in BENCH_kernels.json. The file's "baseline"
# object (seed figures) is preserved across regenerations, so the
# float64/complex128 maps stay comparable to the pre-generic numbers.
bench:
	$(GO) run ./cmd/qrperf -kernels-json BENCH_kernels.json

# bench-gate is the benchmark-regression gate CI runs on every PR: quickly
# re-measure the kernel GFLOP/s and streaming rows/sec series and fail if
# any of them regressed more than TOLERANCE percent below the committed
# BENCH_kernels.json baseline. The default tolerance is sized for same-host
# runs; CI passes a more generous one for hosted-runner drift. A single
# failing pass is re-measured once before the gate fails for real: a
# noisy-neighbor blip on a shared runner trips one sample, a genuine
# regression trips both. The tripped series (with old/new figures) are
# printed by -compare on each failing pass.
TOLERANCE ?= 25
bench-gate:
	@run_gate() { \
		$(GO) run ./cmd/qrperf -kernels-json bench-gate.json -quick && \
		$(GO) run ./cmd/qrperf -compare BENCH_kernels.json bench-gate.json -tolerance $(TOLERANCE); \
	}; \
	if run_gate; then exit 0; fi; \
	echo "bench-gate: first pass tripped (series above); re-measuring once to rule out host noise"; \
	run_gate || { echo "bench-gate: regression confirmed on the retry"; exit 1; }

# tune prints the autotuner's decision table: what AlgorithmAuto picks per
# shape on this host, with predicted and (-measure) measured times.
tune:
	$(GO) run ./cmd/qrperf -tune -measure

# throughput prints the serving-workload table (factorizations/sec for a
# fleet of concurrent clients, shared runtime vs per-call pools).
throughput:
	$(GO) run ./cmd/qrperf -throughput

# bench-smoke is the CI-sized benchmark run: one iteration of the kernel and
# streaming figures, a tiny qrstream ingestion with verification (plain and
# sliding-window/forgetting modes), and short fleet sweeps (factorization
# throughput and windowed-stream ingestion), to prove the harnesses still
# work.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Figure4|StreamAppendDouble$$' -benchtime 1x ./...
	$(GO) run ./cmd/qrstream -n 96 -nb 32 -batch 64 -batches 6 -rhs 1 -verify
	$(GO) run ./cmd/qrstream -n 96 -nb 32 -batch 64 -batches 8 -rhs 1 -window 192 -forget 0.99 -verify
	$(GO) run ./cmd/qrperf -throughput -quick
	$(GO) run ./cmd/qrperf -fleet -quick

# serve-smoke proves the QR-as-a-service stack end to end: build qrserve and
# qrload, run the ~2s smoke scenario against a live server (zero failed
# requests, nonzero rows/sec, reported p50/p95/p99), then SIGTERM and assert
# a graceful drain — in-flight requests finish, new ones get 503, and the
# server logs "drained cleanly" before exiting 0.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

# dist-smoke proves the distributed CAQR stack end to end: build qrdist and
# qrworker, factor 2048×256 across a coordinator and 2 real worker
# processes with -verify (R and x must match single-process Factor), then
# SIGTERM a long multi-round run and assert the coordinated drain — every
# worker finishes the same round and qrdist exits 0 after "drained cleanly".
dist-smoke:
	GO="$(GO)" sh scripts/dist_smoke.sh

clean:
	$(GO) clean ./...
