# Build/test/benchmark entry points for the tiledqr reproduction.

GO ?= go

.PHONY: all build test race vet bench bench-smoke clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench measures every sequential kernel (double and double complex, at the
# benchmark shape nb=128/ib=32), scheduler dispatch cost, and streaming TSQR
# ingestion throughput (rows/sec), and records the trajectory in
# BENCH_kernels.json. The file's "baseline" object (seed figures) is
# preserved across regenerations.
bench:
	$(GO) run ./cmd/qrperf -kernels-json BENCH_kernels.json

# bench-smoke is the CI-sized benchmark run: one iteration of the kernel and
# streaming figures plus a tiny qrstream ingestion with verification, to
# prove both harnesses still work.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Figure4|StreamAppendDouble$$' -benchtime 1x ./...
	$(GO) run ./cmd/qrstream -n 96 -nb 32 -batch 64 -batches 6 -rhs 1 -verify

clean:
	$(GO) clean ./...
