# Build/test/benchmark entry points for the tiledqr reproduction.

GO ?= go

.PHONY: all build test race vet fmt-check lint bench bench-smoke bench-gate tune throughput clean

all: lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: fmt-check vet

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench measures every sequential kernel in all four precisions (double,
# double complex, single, single complex, at the benchmark shape
# nb=128/ib=32), scheduler dispatch cost, streaming TSQR ingestion
# throughput (rows/sec), and the concurrent-fleet factorization throughput
# (per-call pools vs shared runtime vs FactorInto reuse, at 1..64 clients),
# and records the trajectory in BENCH_kernels.json. The file's "baseline"
# object (seed figures) is preserved across regenerations, so the
# float64/complex128 maps stay comparable to the pre-generic numbers.
bench:
	$(GO) run ./cmd/qrperf -kernels-json BENCH_kernels.json

# bench-gate is the benchmark-regression gate CI runs on every PR: quickly
# re-measure the kernel GFLOP/s and streaming rows/sec series and fail if
# any of them regressed more than TOLERANCE percent below the committed
# BENCH_kernels.json baseline. The default tolerance is sized for same-host
# runs; CI passes a more generous one for hosted-runner drift.
TOLERANCE ?= 25
bench-gate:
	$(GO) run ./cmd/qrperf -kernels-json bench-gate.json -quick
	$(GO) run ./cmd/qrperf -compare BENCH_kernels.json bench-gate.json -tolerance $(TOLERANCE)

# tune prints the autotuner's decision table: what AlgorithmAuto picks per
# shape on this host, with predicted and (-measure) measured times.
tune:
	$(GO) run ./cmd/qrperf -tune -measure

# throughput prints the serving-workload table (factorizations/sec for a
# fleet of concurrent clients, shared runtime vs per-call pools).
throughput:
	$(GO) run ./cmd/qrperf -throughput

# bench-smoke is the CI-sized benchmark run: one iteration of the kernel and
# streaming figures, a tiny qrstream ingestion with verification, and a
# short fleet-throughput sweep, to prove the harnesses still work.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Figure4|StreamAppendDouble$$' -benchtime 1x ./...
	$(GO) run ./cmd/qrstream -n 96 -nb 32 -batch 64 -batches 6 -rhs 1 -verify
	$(GO) run ./cmd/qrperf -throughput -quick

clean:
	$(GO) clean ./...
