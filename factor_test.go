package tiledqr

import (
	"math"
	"testing"
)

const tol = 1e-11

// checkFactorization verifies A = Q·R and QᵀQ = I for one configuration.
func checkFactorization(t *testing.T, m, n int, opt Options) {
	t.Helper()
	a := RandomDense(m, n, int64(m*1000+n))
	f, err := Factor(a, opt)
	if err != nil {
		t.Fatalf("%v/%v %dx%d nb=%d: %v", opt.Algorithm, opt.Kernels, m, n, opt.TileSize, err)
	}
	q := f.Q()
	r := f.R()
	// Pad R to m×n for the residual (Q is m×m).
	rFull := NewDense(m, n)
	for i := 0; i < r.Rows; i++ {
		for j := 0; j < n; j++ {
			rFull.Set(i, j, r.At(i, j))
		}
	}
	if res := QRResidual(a, q, rFull); res > tol {
		t.Errorf("%v/%v %dx%d nb=%d ib=%d: residual %g", opt.Algorithm, opt.Kernels, m, n, opt.TileSize, opt.InnerBlock, res)
	}
	if ortho := OrthoResidual(q); ortho > tol {
		t.Errorf("%v/%v %dx%d nb=%d ib=%d: orthogonality %g", opt.Algorithm, opt.Kernels, m, n, opt.TileSize, opt.InnerBlock, ortho)
	}
	// R must be upper triangular.
	for i := 0; i < r.Rows; i++ {
		for j := 0; j < min(i, r.Cols); j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R(%d,%d) = %g below the diagonal", i, j, r.At(i, j))
			}
		}
	}
}

func TestFactorAllAlgorithms(t *testing.T) {
	for _, alg := range Algorithms {
		for _, kern := range []Kernels{TT, TS} {
			opt := Options{Algorithm: alg, Kernels: kern, TileSize: 8, InnerBlock: 3, Workers: 2}
			checkFactorization(t, 40, 24, opt)
		}
	}
}

func TestFactorPlasmaTreeAndGrasap(t *testing.T) {
	for _, bs := range []int{1, 2, 3, 5} {
		opt := Options{Algorithm: PlasmaTree, BS: bs, TileSize: 8, InnerBlock: 4, Workers: 3}
		checkFactorization(t, 40, 16, opt)
	}
	for _, k := range []int{1, 2} {
		opt := Options{Algorithm: Grasap, GrasapK: k, TileSize: 8, InnerBlock: 4}
		checkFactorization(t, 40, 16, opt)
	}
}

// TestFactorShapes covers ragged edges, single tiles, wide matrices, and
// single rows/columns of tiles.
func TestFactorShapes(t *testing.T) {
	shapes := [][2]int{
		{40, 24}, // exact multiples
		{37, 21}, // ragged both
		{41, 8},  // ragged rows only
		{8, 8},   // single tile
		{5, 5},   // smaller than one tile
		{50, 7},  // single tile column, ragged
		{7, 50},  // wide: m < n
		{24, 40}, // wide, exact tiles
		{100, 3}, // very tall and skinny
		{9, 16},  // wide with ragged rows
		{16, 1},  // single column
		{1, 16},  // single row
		{1, 1},   // scalar
	}
	for _, s := range shapes {
		opt := Options{Algorithm: Greedy, TileSize: 8, InnerBlock: 3, Workers: 2}
		checkFactorization(t, s[0], s[1], opt)
	}
}

func TestFactorWorkerCounts(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		opt := Options{Algorithm: Fibonacci, TileSize: 8, InnerBlock: 8, Workers: workers}
		checkFactorization(t, 48, 32, opt)
	}
}

func TestFactorTileSizes(t *testing.T) {
	for _, nb := range []int{1, 2, 5, 8, 13, 64} {
		opt := Options{Algorithm: Greedy, TileSize: nb, InnerBlock: min(4, nb)}
		checkFactorization(t, 40, 25, opt)
	}
}

// TestFactorDeterministicAcrossWorkers: the computed R must be identical
// regardless of worker count or algorithm execution order (the same
// arithmetic happens in a fixed dependency order).
func TestFactorDeterministicAcrossWorkers(t *testing.T) {
	a := RandomDense(48, 24, 3)
	opt := Options{Algorithm: Greedy, TileSize: 8, InnerBlock: 4, Workers: 1}
	f1, err := Factor(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	f4, err := Factor(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	r1, r4 := f1.R(), f4.R()
	for i := 0; i < r1.Rows; i++ {
		for j := 0; j < r1.Cols; j++ {
			if r1.At(i, j) != r4.At(i, j) {
				t.Fatalf("R(%d,%d) differs between 1 and 4 workers: %g vs %g", i, j, r1.At(i, j), r4.At(i, j))
			}
		}
	}
}

// TestRMatchesReferenceUpToSigns: |R| must match a direct Householder QR of
// the whole matrix regardless of the elimination tree.
func TestRMatchesReferenceUpToSigns(t *testing.T) {
	a := RandomDense(32, 16, 9)
	ref, err := Factor(a, Options{Algorithm: FlatTree, TileSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	rRef := ref.R()
	for _, alg := range Algorithms {
		f, err := Factor(a, Options{Algorithm: alg, TileSize: 8, InnerBlock: 2})
		if err != nil {
			t.Fatal(err)
		}
		r := f.R()
		for i := 0; i < r.Rows; i++ {
			for j := 0; j < r.Cols; j++ {
				if d := math.Abs(math.Abs(r.At(i, j)) - math.Abs(rRef.At(i, j))); d > tol {
					t.Errorf("%v: |R(%d,%d)| differs from reference by %g", alg, i, j, d)
				}
			}
		}
	}
}

func TestApplyQRoundTrip(t *testing.T) {
	a := RandomDense(40, 24, 11)
	f, err := Factor(a, Options{TileSize: 8, InnerBlock: 3})
	if err != nil {
		t.Fatal(err)
	}
	b0 := RandomDense(40, 5, 12)
	b := b0.Clone()
	if err := f.ApplyQT(b); err != nil {
		t.Fatal(err)
	}
	if err := f.ApplyQ(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			if math.Abs(b.At(i, j)-b0.At(i, j)) > tol {
				t.Fatalf("Q·Qᵀ·b differs from b at (%d,%d)", i, j)
			}
		}
	}
	if err := f.ApplyQT(NewDense(7, 1)); err == nil {
		t.Error("ApplyQT accepted a wrongly sized b")
	}
}

// TestApplyQTComputesR: Qᵀ·A must reproduce [R; 0].
func TestApplyQTComputesR(t *testing.T) {
	a := RandomDense(33, 17, 13)
	f, err := Factor(a, Options{Algorithm: BinaryTree, TileSize: 8, InnerBlock: 8})
	if err != nil {
		t.Fatal(err)
	}
	qta := a.Clone()
	if err := f.ApplyQT(qta); err != nil {
		t.Fatal(err)
	}
	r := f.R()
	for i := 0; i < 33; i++ {
		for j := 0; j < 17; j++ {
			want := 0.0
			if i < r.Rows && j >= i {
				want = r.At(i, j)
			}
			if math.Abs(qta.At(i, j)-want) > tol {
				t.Fatalf("QᵀA(%d,%d) = %g, want %g", i, j, qta.At(i, j), want)
			}
		}
	}
}

func TestThinQ(t *testing.T) {
	a := RandomDense(40, 12, 17)
	f, err := Factor(a, Options{TileSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	qt := f.ThinQ()
	if qt.Rows != 40 || qt.Cols != 12 {
		t.Fatalf("ThinQ dims %dx%d, want 40x12", qt.Rows, qt.Cols)
	}
	if o := OrthoResidual(qt); o > tol {
		t.Errorf("ThinQ orthogonality %g", o)
	}
	if res := QRResidual(a, qt, f.R()); res > tol {
		t.Errorf("thin QR residual %g", res)
	}
}

func TestSolveLS(t *testing.T) {
	// Plant an exact solution on a consistent system.
	m, n := 60, 10
	a := RandomDense(m, n, 21)
	xTrue := RandomDense(n, 2, 22)
	b := Mul(a, xTrue)
	f, err := Factor(a, Options{TileSize: 8, InnerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveLS(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(x.At(i, j)-xTrue.At(i, j)) > 1e-9 {
				t.Fatalf("x(%d,%d) = %g, want %g", i, j, x.At(i, j), xTrue.At(i, j))
			}
		}
	}
	// Inconsistent system: the residual must be orthogonal to range(A).
	b2 := RandomDense(m, 1, 23)
	x2, err := f.SolveLS(b2)
	if err != nil {
		t.Fatal(err)
	}
	res := Mul(a, x2)
	for i := 0; i < m; i++ {
		res.Set(i, 0, b2.At(i, 0)-res.At(i, 0))
	}
	atr := Mul(Transpose(a), res)
	if norm := FrobeniusNorm(atr); norm > 1e-9 {
		t.Errorf("‖Aᵀ(b−Ax)‖ = %g, normal equations violated", norm)
	}
}

func TestFactorErrors(t *testing.T) {
	if _, err := Factor(nil, Options{}); err == nil {
		t.Error("Factor(nil) succeeded")
	}
	if _, err := Factor(NewDense(4, 4), Options{Algorithm: PlasmaTree}); err == nil {
		t.Error("PlasmaTree without BS succeeded")
	}
	f, err := Factor(NewDense(6, 3), Options{TileSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SolveLS(NewDense(5, 1)); err == nil {
		t.Error("SolveLS accepted wrong-sized b")
	}
	// Rank-deficient matrix must be reported by SolveLS.
	if _, err := f.SolveLS(NewDense(6, 1)); err == nil {
		t.Error("SolveLS accepted a singular R (zero matrix)")
	}
}

func TestTraceValidates(t *testing.T) {
	a := RandomDense(40, 24, 31)
	f, err := Factor(a, Options{TileSize: 8, Workers: 4, Trace: true, InnerBlock: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := f.Trace()
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	if len(tr.Spans) != f.TaskCount() {
		t.Fatalf("trace has %d spans, want %d", len(tr.Spans), f.TaskCount())
	}
	if err := tr.Validate(f.e.DAG()); err != nil {
		t.Errorf("trace violates dependencies: %v", err)
	}
}

func TestGridAccessor(t *testing.T) {
	f, err := Factor(RandomDense(40, 24, 1), Options{TileSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	p, q, nb := f.Grid()
	if p != 5 || q != 3 || nb != 8 {
		t.Errorf("Grid() = %d,%d,%d; want 5,3,8", p, q, nb)
	}
	if f.TaskCount() <= 0 {
		t.Error("TaskCount not positive")
	}
}

func TestFactorHadriTree(t *testing.T) {
	for _, bs := range []int{2, 4} {
		for _, kern := range []Kernels{TT, TS} {
			opt := Options{Algorithm: HadriTree, BS: bs, Kernels: kern, TileSize: 8, InnerBlock: 4, Workers: 2}
			checkFactorization(t, 40, 16, opt)
		}
	}
	if _, err := Factor(NewDense(16, 8), Options{Algorithm: HadriTree, TileSize: 8}); err == nil {
		t.Error("HadriTree without BS accepted")
	}
}
