// Benchmarks regenerating every table and figure of the paper. Each
// Benchmark maps to one experiment (see DESIGN.md §4); GFLOP/s figures are
// emitted as custom metrics so `go test -bench . -benchmem` doubles as the
// experiment harness. Absolute numbers are host-dependent; the paper's
// platform-independent numbers (Tables 2–5) are asserted exactly in the
// test suites instead.
package tiledqr

import (
	"fmt"
	"testing"

	"tiledqr/internal/core"
	"tiledqr/internal/kernel"
	"tiledqr/internal/model"
	"tiledqr/internal/sched"
	"tiledqr/internal/sim"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
)

// --- Table 2: coarse-grain schedules ---------------------------------------

func BenchmarkTable2CoarseSchedules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.CoarseSchedule(core.FlatTreeList(15, 6))
		core.CoarseSchedule(core.GreedyList(15, 6))
		for k := 1; k <= 6; k++ {
			for r := k + 1; r <= 15; r++ {
				core.FibonacciCoarseStep(15, r, k)
			}
		}
	}
}

// --- Table 3: tiled ASAP simulation ------------------------------------------

func BenchmarkTable3TiledSimulation(b *testing.B) {
	lists := []core.List{
		core.FlatTreeList(15, 6), core.FibonacciList(15, 6), core.GreedyList(15, 6),
		core.BinaryTreeList(15, 6), core.PlasmaTreeList(15, 6, 5),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range lists {
			sim.ASAP(core.BuildDAG(l, core.TT)).ZeroTimes()
		}
	}
}

// --- Table 4: Greedy vs Asap ---------------------------------------------------

func BenchmarkTable4aAsapGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.AsapList(15, 3)
		core.GrasapList(15, 3, 1)
	}
}

func BenchmarkTable4bLargestCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim.CriticalPathList(core.GreedyList(128, 128), core.TT)
		core.AsapList(128, 128)
	}
}

// --- Table 5: the p=40 critical-path sweep -------------------------------------

func BenchmarkTable5GreedyFibonacciSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for q := 1; q <= 40; q++ {
			sim.CriticalPathList(core.GreedyList(40, q), core.TT)
			sim.CriticalPathList(core.FibonacciList(40, q), core.TT)
		}
	}
}

func BenchmarkTable5PlasmaBSSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim.BestPlasmaBS(40, 6, core.TT)
	}
}

// --- Figures 1–3 and 6–8: performance model ------------------------------------

func BenchmarkFigure1RooflinePrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, q := range []int{1, 2, 5, 10, 20, 40} {
			cp := sim.CriticalPathList(core.GreedyList(40, q), core.TT)
			model.Predict(3.8, model.TotalUnits(40, q), cp, 48)
		}
	}
}

func BenchmarkFigure6ListScheduling48Workers(b *testing.B) {
	d := core.BuildDAG(core.GreedyList(40, 10), core.TT)
	w := sim.UnitWeights(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ListSchedule(d, 48, w, sim.PriorityBLevel)
	}
}

// --- Figures 4–5: sequential kernel speeds ---------------------------------------

// benchFigureKernels reports GFLOP/s for the six tile kernels plus GEMM at
// the benchmark shape, for one scalar domain of the generic kernels
// (4 real flops per complex flop, as in the paper).
func benchFigureKernels[T vec.Scalar](b *testing.B, prefix string) {
	const nb, ib = 128, 32
	flopScale := 1.0
	if vec.IsComplex[T]() {
		flopScale = 4
	}
	tri := tile.RandDense[T](nb, nb, 1)
	tf := make([]T, ib*nb)
	t2 := make([]T, ib*nb)
	work := make([]T, kernel.WorkLen(nb, ib))
	kernel.GEQRT(nb, nb, ib, tri.Data, tri.Stride, tf, nb, work)
	full := tile.RandDense[T](nb, nb, 2)
	c1 := tile.RandDense[T](nb, nb, 3)
	c2 := tile.RandDense[T](nb, nb, 4)
	vtt := tile.RandDense[T](nb, nb, 5)
	kernel.GEQRT(nb, nb, ib, vtt.Data, nb, tf, nb, work)
	kernel.TTQRT(nb, nb, ib, tri.Clone().Data, nb, vtt.Data, nb, t2, nb, work)
	cases := []struct {
		name   string
		weight int
		f      func()
	}{
		{"GEQRT", 4, func() { kernel.GEQRT(nb, nb, ib, full.Clone().Data, nb, tf, nb, work) }},
		{"UNMQR", 6, func() { kernel.UNMQR(true, nb, nb, ib, tri.Data, nb, tf, nb, c1.Data, nb, nb, work) }},
		{"TSQRT", 6, func() { kernel.TSQRT(nb, nb, ib, tri.Clone().Data, nb, full.Clone().Data, nb, t2, nb, work) }},
		{"TSMQR", 12, func() { kernel.TSMQR(true, nb, nb, ib, full.Data, nb, t2, nb, c1.Data, nb, c2.Data, nb, nb, work) }},
		{"TTQRT", 2, func() { kernel.TTQRT(nb, nb, ib, tri.Clone().Data, nb, vtt.Clone().Data, nb, t2, nb, work) }},
		{"TTMQR", 6, func() { kernel.TTMQR(true, nb, nb, ib, vtt.Data, nb, t2, nb, c1.Data, nb, c2.Data, nb, nb, work) }},
		{"GEMM", 6, func() { kernel.GEMM(nb, nb, nb, full.Data, nb, c1.Data, nb, c2.Data, nb, work) }},
	}
	for _, c := range cases {
		b.Run(prefix+c.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.f()
			}
			flops := flopScale * float64(c.weight) * float64(nb*nb*nb) / 3
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

func BenchmarkFigure5KernelsDouble(b *testing.B) { benchFigureKernels[float64](b, "") }

func BenchmarkFigure4KernelsDoubleComplex(b *testing.B) { benchFigureKernels[complex128](b, "Z") }

func BenchmarkFigure5KernelsSingle(b *testing.B) { benchFigureKernels[float32](b, "S") }

func BenchmarkFigure4KernelsSingleComplex(b *testing.B) { benchFigureKernels[complex64](b, "C") }

// --- Tables 6–9 / experimental runs: end-to-end factorization --------------------

// benchFactor runs a real factorization and reports GFLOP/s, the
// "experimental" measurement of Section 4 at host scale.
func benchFactor(b *testing.B, alg Algorithm, kern Kernels, p, q int, complexArith bool) {
	const nb, ib = 40, 16
	m, n := p*nb, q*nb
	opt := Options{Algorithm: alg, Kernels: kern, TileSize: nb, InnerBlock: ib}
	flops := model.Flops(m, n)
	if complexArith {
		flops = model.ComplexFlops(m, n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if complexArith {
			b.StopTimer()
			a := RandomZDense(m, n, int64(i))
			b.StartTimer()
			if _, err := FactorComplex(a, opt); err != nil {
				b.Fatal(err)
			}
		} else {
			b.StopTimer()
			a := RandomDense(m, n, int64(i))
			b.StartTimer()
			if _, err := Factor(a, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkTable6GreedyVsPlasmaDouble(b *testing.B) {
	for _, q := range []int{1, 4, 10} {
		b.Run(fmt.Sprintf("Greedy/q=%d", q), func(b *testing.B) { benchFactor(b, Greedy, TT, 12, q, false) })
		b.Run(fmt.Sprintf("PlasmaTreeTT/q=%d", q), func(b *testing.B) {
			bs, _ := BestPlasmaBS(12, q, TT)
			const nb, ib = 40, 16
			opt := Options{Algorithm: PlasmaTree, BS: bs, TileSize: nb, InnerBlock: ib}
			flops := model.Flops(12*nb, q*nb)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				a := RandomDense(12*nb, q*nb, int64(i))
				b.StartTimer()
				if _, err := Factor(a, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

func BenchmarkTable7GreedyDoubleComplex(b *testing.B) {
	for _, q := range []int{1, 4} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) { benchFactor(b, Greedy, TT, 8, q, true) })
	}
}

func BenchmarkTable8GreedyVsFibonacciDouble(b *testing.B) {
	b.Run("Greedy", func(b *testing.B) { benchFactor(b, Greedy, TT, 12, 4, false) })
	b.Run("Fibonacci", func(b *testing.B) { benchFactor(b, Fibonacci, TT, 12, 4, false) })
}

func BenchmarkTable9FibonacciDoubleComplex(b *testing.B) {
	b.Run("Fibonacci", func(b *testing.B) { benchFactor(b, Fibonacci, TT, 8, 4, true) })
}

func BenchmarkFigure6FlatTreeTSDouble(b *testing.B) {
	b.Run("FlatTreeTS", func(b *testing.B) { benchFactor(b, FlatTree, TS, 12, 4, false) })
	b.Run("FlatTreeTT", func(b *testing.B) { benchFactor(b, FlatTree, TT, 12, 4, false) })
}

// --- streaming TSQR ---------------------------------------------------------------

// benchStreamAppend measures streaming ingestion throughput in rows/sec:
// batches of `batch` rows merged into a resident n×n triangle, with an
// optional tracked right-hand side.
func benchStreamAppend(b *testing.B, n, nb, batch, nrhs int, complexArith bool) {
	b.Helper()
	opt := Options{TileSize: nb, InnerBlock: 32}
	if complexArith {
		s, err := NewZStream(n, opt)
		if err != nil {
			b.Fatal(err)
		}
		data := RandomZDense(batch, n, 1)
		rhs := RandomZDense(batch, max(nrhs, 1), 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if nrhs > 0 {
				err = s.AppendRHS(data, rhs)
			} else {
				err = s.AppendRows(data)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "rows/s")
		return
	}
	s, err := NewStream(n, opt)
	if err != nil {
		b.Fatal(err)
	}
	data := RandomDense(batch, n, 1)
	rhs := RandomDense(batch, max(nrhs, 1), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if nrhs > 0 {
			err = s.AppendRHS(data, rhs)
		} else {
			err = s.AppendRows(data)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkStreamAppendDouble(b *testing.B) {
	for _, c := range []struct{ n, batch int }{{128, 128}, {256, 256}, {512, 512}} {
		b.Run(fmt.Sprintf("n=%d/batch=%d", c.n, c.batch), func(b *testing.B) {
			benchStreamAppend(b, c.n, 128, c.batch, 0, false)
		})
	}
}

func BenchmarkStreamAppendRHSDouble(b *testing.B) {
	b.Run("n=256/batch=256/rhs=1", func(b *testing.B) {
		benchStreamAppend(b, 256, 128, 256, 1, false)
	})
}

func BenchmarkStreamAppendDoubleComplex(b *testing.B) {
	b.Run("n=256/batch=256", func(b *testing.B) {
		benchStreamAppend(b, 256, 128, 256, 0, true)
	})
}

func BenchmarkStreamSolveLS(b *testing.B) {
	const n, batch = 256, 256
	s, err := NewStream(n, Options{TileSize: 128, InnerBlock: 32})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.AppendRHS(RandomDense(batch, n, int64(i)), RandomDense(batch, 1, int64(10+i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SolveLS(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- infrastructure benches -------------------------------------------------------

func BenchmarkDAGBuild40x40(b *testing.B) {
	l := core.GreedyList(40, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildDAG(l, core.TT)
	}
}

func BenchmarkSchedulerOverhead(b *testing.B) {
	// Empty-kernel execution isolates runtime dispatch cost per task.
	d := core.BuildDAG(core.GreedyList(20, 10), core.TT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(d, sched.Options{Workers: 2}, func(int32, int) {}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.NumTasks()), "tasks/run")
}
