package tiledqr

import (
	"context"
	"errors"
	"fmt"

	"tiledqr/internal/stream"
	"tiledqr/internal/tile"
	"tiledqr/internal/tune"
	"tiledqr/internal/vec"
)

// newStreamCore applies defaults and validation and builds the generic
// streaming reduction core — the single code path behind NewStreamOf and
// the per-precision constructors. Merge DAGs execute under the same
// placement policy as Factor: the shared default runtime unless
// Options.Runtime or Options.Workers says otherwise.
func newStreamCore[T vec.Scalar](n int, opt Options) (*stream.Core[T], error) {
	if err := opt.validateStream(); err != nil {
		return nil, err
	}
	// AlgorithmAuto picks the tile shape for streams too: the per-column
	// merge tree is structurally fixed (binary), so the tuner only chooses
	// nb/ib — by estimated merge throughput at the stream's width — while
	// Options.Kernels keeps selecting the merge kernel family.
	if opt.Algorithm == AlgorithmAuto && n >= 1 {
		// Pinned sizes obey the same constraints as explicit ones (matching
		// resolveAuto): an inner block wider than a pinned tile is an
		// error, not a silent clamp.
		if opt.TileSize > 0 {
			if err := opt.validateSizes(); err != nil {
				return nil, err
			}
		}
		dec, err := tune.ResolveStream[T](n, opt.autoWidth(),
			opt.TileSize, opt.InnerBlock, opt.Kernels.core())
		if err != nil {
			return nil, err
		}
		opt.Algorithm = Greedy // streams ignore the tree; record a concrete value
		opt.TileSize, opt.InnerBlock = dec.NB, dec.IB
	}
	opt = opt.withDefaults()
	if err := opt.validateSizes(); err != nil {
		return nil, err
	}
	return stream.NewCore[T](n, stream.Config{
		NB:      opt.TileSize,
		IB:      opt.InnerBlock,
		Kernels: opt.Kernels.core(),
		Env:     opt.execEnv(),
		Check:   opt.CheckHealth,
		Window:  opt.WindowRows,
		Forget:  opt.Forget,
	})
}

// errEmptyBatch and errNilRHS are the shape errors shared by every
// stream instantiation.
var (
	errEmptyBatch = errors.New("tiledqr: stream: batch must have at least one row")
	errNilRHS     = errors.New("tiledqr: stream: AppendRHS needs a non-nil right-hand side (use AppendRows)")
)

// streamAppend validates and funnels one batch (with or without a
// right-hand side) into the generic reduction core — the single body
// behind AppendRows/AppendRHS and their Ctx variants.
func streamAppend[T vec.Scalar](ctx context.Context, c *stream.Core[T], batch, rhs *tile.Dense[T], withRHS bool) error {
	if err := c.Err(); err != nil {
		return err
	}
	if batch == nil || batch.Rows < 1 {
		return errEmptyBatch
	}
	if batch.Cols != c.N() {
		return fmt.Errorf("tiledqr: stream: batch has %d columns, stream has %d", batch.Cols, c.N())
	}
	if !withRHS {
		return c.Append(ctx, batch.Rows, batch.Data, batch.Stride, nil, 0, 0)
	}
	if rhs == nil {
		return errNilRHS
	}
	if rhs.Rows != batch.Rows {
		return fmt.Errorf("tiledqr: stream: right-hand side has %d rows, batch has %d", rhs.Rows, batch.Rows)
	}
	return c.Append(ctx, batch.Rows, batch.Data, batch.Stride, rhs.Data, rhs.Stride, rhs.Cols)
}

// Stream is an incremental (streaming) tiled QR factorization over any
// supported scalar domain: rows arrive in batches and only the n×n upper
// triangular factor R — plus, optionally, the top n rows of Qᵀb for online
// least squares — is retained. Without retention, memory stays O(n² +
// batch) no matter how many rows are ingested, so a Stream can absorb
// millions of observations that would never fit as one matrix.
//
// Each batch is tiled, panel-factored with GEQRT, and merged into the
// resident triangle with the paper's triangle-on-triangle kernels — the
// merge primitive of communication-avoiding TSQR (Demmel, Grigori,
// Hoemmen, Langou) — along a task DAG executed by the work-stealing runtime
// with critical-path priorities, so batches spanning several tile rows
// reduce in parallel.
//
// Streams can also unlearn. With Options.WindowRows set, appended rows are
// retained (compactly, outside the triangle) and can be removed again:
// DowndateRows revokes the oldest k rows, a positive window evicts
// automatically so the stream always represents the most recent WindowRows
// rows in O(n² + window) memory, and Options.Forget decays old rows'
// weight geometrically per append. Downdating runs hyperbolic rotations
// against the resident triangle and falls back to re-triangularizing the
// retained batches through the ordinary merge path when that is unstable.
//
// Options.TileSize, InnerBlock, Workers, Kernels, WindowRows and Forget
// are honored; Algorithm and BS are ignored (the per-column reduction tree
// of a streaming merge is a binary tree, the optimal shape for
// single-column reductions). A Stream is not safe for concurrent use.
//
// The named types StreamQR (float64), ZStreamQR (complex128), StreamQR32
// (float32) and CStreamQR (complex64) are aliases of the four
// instantiations, kept for compatibility; new code can use Stream[T] and
// NewStreamOf directly.
type Stream[T Scalar] struct {
	c *stream.Core[T]
}

// NewStreamOf creates a streaming factorization for rows with n columns in
// the scalar domain T. The triangle starts at zero: a Stream with no
// ingested rows represents the QR factorization of an empty (0×n) matrix.
func NewStreamOf[T Scalar](n int, opt Options) (*Stream[T], error) {
	c, err := newStreamCore[T](n, opt)
	if err != nil {
		return nil, err
	}
	return &Stream[T]{c: c}, nil
}

// AppendRows merges a batch of rows (r×n, any r ≥ 1) into the resident
// triangle. The batch is not modified. Returns an error if the stream
// tracks right-hand sides (use AppendRHS so Qᵀb stays consistent).
func (s *Stream[T]) AppendRows(batch *Mat[T]) error {
	return streamAppend(nil, s.c, (*tile.Dense[T])(batch), nil, false)
}

// AppendRowsCtx is AppendRows under a cancellation context: a merge
// cancelled mid-DAG leaves the resident triangle partially transformed, so
// the stream fails permanently (see Err). A nil ctx behaves like AppendRows.
func (s *Stream[T]) AppendRowsCtx(ctx context.Context, batch *Mat[T]) error {
	return streamAppend(ctx, s.c, (*tile.Dense[T])(batch), nil, false)
}

// AppendRHS merges a batch of rows together with the matching right-hand
// side rows (r×nrhs), maintaining the top n rows of Qᵀb for SolveLS.
// Right-hand sides must be supplied from the first batch onwards and keep
// the same column count; neither argument is modified.
func (s *Stream[T]) AppendRHS(batch, rhs *Mat[T]) error {
	return streamAppend(nil, s.c, (*tile.Dense[T])(batch), (*tile.Dense[T])(rhs), true)
}

// AppendRHSCtx is AppendRHS under a cancellation context (see
// AppendRowsCtx).
func (s *Stream[T]) AppendRHSCtx(ctx context.Context, batch, rhs *Mat[T]) error {
	return streamAppend(ctx, s.c, (*tile.Dense[T])(batch), (*tile.Dense[T])(rhs), true)
}

// DowndateRows removes the oldest k rows from the represented system — the
// inverse of appending them. It requires retention: construct the stream
// with Options.WindowRows set to a positive window or RetainAll. The
// resident triangle (and Qᵀb) are downdated with hyperbolic rotations;
// when a rotation would be unstable the stream re-triangularizes the
// retained rows through the ordinary merge path instead, so a successful
// DowndateRows always leaves the stream exactly representing the remaining
// rows. Validation failures leave the stream untouched.
func (s *Stream[T]) DowndateRows(k int) error {
	return s.c.Downdate(nil, k)
}

// DowndateRowsCtx is DowndateRows under a cancellation context. The
// context only matters on the re-triangularization fallback, where a
// cancellation mid-merge poisons the stream (see Err); the hyperbolic fast
// path is not cancellable.
func (s *Stream[T]) DowndateRowsCtx(ctx context.Context, k int) error {
	return s.c.Downdate(ctx, k)
}

// Forget applies one exponential-forgetting step immediately: the
// represented system is scaled so every past row's weight decays by
// √lambda (its contribution to RᵀR by lambda), with lambda ∈ (0, 1].
// This is the manual form of Options.Forget, which applies the same decay
// before every append; lambda = 1 is a no-op.
func (s *Stream[T]) Forget(lambda float64) error {
	return s.c.Forget(lambda)
}

// Err returns the stream's sticky failure: nil while the stream is healthy,
// and the original cause once an append failed, panicked, or was cancelled
// mid-merge. A failed stream's retained state is partially transformed, so
// every accessor and later append returns this error; further appends are
// unsupported — replace the stream.
func (s *Stream[T]) Err() error { return s.c.Err() }

// R returns the n×n upper triangular factor of the rows currently
// represented (ingested minus downdated, with forgetting weights applied).
// It equals (up to row signs) the R of a one-shot Factor over the same
// weighted rows. After a failure, R returns the original error.
func (s *Stream[T]) R() (*Mat[T], error) {
	if err := s.c.Err(); err != nil {
		return nil, err
	}
	n := s.c.N()
	r := NewMat[T](n, n)
	s.c.CopyR(r.Data, r.Stride)
	return r, nil
}

// QTB returns the retained top n rows of Qᵀb (n×nrhs), or nil when the
// stream tracks no right-hand side. After a failure, QTB returns the
// original error.
func (s *Stream[T]) QTB() (*Mat[T], error) {
	if err := s.c.Err(); err != nil {
		return nil, err
	}
	if s.c.NRHS() == 0 {
		return nil, nil
	}
	q := NewMat[T](s.c.N(), s.c.NRHS())
	s.c.CopyQTB(q.Data, q.Stride)
	return q, nil
}

// SolveLS returns the n×nrhs least-squares solution min‖A·x − b‖₂ over the
// rows currently represented, without ever having materialized A or b.
// Requires right-hand-side tracking and at least n represented rows.
func (s *Stream[T]) SolveLS() (*Mat[T], error) {
	x := NewMat[T](s.c.N(), max(s.c.NRHS(), 1))
	if err := s.c.SolveLS(x.Data, x.Stride); err != nil {
		return nil, err
	}
	return x, nil
}

// Rows returns the number of rows the stream currently represents: every
// row ingested minus every row downdated away.
func (s *Stream[T]) Rows() int64 { return s.c.Rows() }

// N returns the column count of the streamed system.
func (s *Stream[T]) N() int { return s.c.N() }

// ResidualNorm returns the running least-squares residual of the
// represented system: ‖b − A·X‖_F over all tracked right-hand-side columns
// (0 when no RHS is tracked). The components of Qᵀb rotated beyond the
// retained top block accumulate here instead of being stored. After a
// failure, ResidualNorm returns the original error.
func (s *Stream[T]) ResidualNorm() (float64, error) {
	if err := s.c.Err(); err != nil {
		return 0, err
	}
	return s.c.ResidualNorm(), nil
}

// Footprint returns the number of scalars retained across appends — the
// O(n² + window) bound made observable for tests and capacity planning.
// Per-append staging is pooled across all streams of a domain and is not
// counted; with retention, the compact row history is.
func (s *Stream[T]) Footprint() int { return s.c.Footprint() }

// StreamQR is the float64 stream instantiation — an alias of
// Stream[float64], kept for compatibility with the original per-precision
// API.
//
// Deprecated: use Stream[float64] (or keep using this alias; they are the
// same type). New stream capabilities land on the generic Stream.
type StreamQR = Stream[float64]

// NewStream creates a float64 streaming factorization for rows with n
// columns. The triangle starts at zero: a stream with no ingested rows
// represents the QR factorization of an empty (0×n) matrix.
func NewStream(n int, opt Options) (*StreamQR, error) {
	return NewStreamOf[float64](n, opt)
}
