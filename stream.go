package tiledqr

import (
	"context"
	"errors"
	"fmt"

	"tiledqr/internal/stream"
	"tiledqr/internal/tile"
	"tiledqr/internal/tune"
	"tiledqr/internal/vec"
)

// newStreamCore applies defaults and validation and builds the generic
// streaming reduction core — the single code path behind NewStream,
// NewStream32, NewCStream and NewZStream. Merge DAGs execute under the
// same placement policy as Factor: the shared default runtime unless
// Options.Runtime or Options.Workers says otherwise.
func newStreamCore[T vec.Scalar](n int, opt Options) (*stream.Core[T], error) {
	// AlgorithmAuto picks the tile shape for streams too: the per-column
	// merge tree is structurally fixed (binary), so the tuner only chooses
	// nb/ib — by estimated merge throughput at the stream's width — while
	// Options.Kernels keeps selecting the merge kernel family.
	if opt.Algorithm == AlgorithmAuto && n >= 1 {
		// Pinned sizes obey the same constraints as explicit ones (matching
		// resolveAuto): an inner block wider than a pinned tile is an
		// error, not a silent clamp.
		if opt.TileSize > 0 {
			if err := opt.validateSizes(); err != nil {
				return nil, err
			}
		}
		dec, err := tune.ResolveStream[T](n, opt.autoWidth(),
			opt.TileSize, opt.InnerBlock, opt.Kernels.core())
		if err != nil {
			return nil, err
		}
		opt.Algorithm = Greedy // streams ignore the tree; record a concrete value
		opt.TileSize, opt.InnerBlock = dec.NB, dec.IB
	}
	opt = opt.withDefaults()
	if err := opt.validateSizes(); err != nil {
		return nil, err
	}
	return stream.NewCore[T](n, opt.TileSize, opt.InnerBlock,
		opt.Kernels.core(), opt.execEnv(), opt.CheckHealth)
}

// errEmptyBatch and errNilRHS are the shape errors shared by every
// precision's stream wrapper.
var (
	errEmptyBatch = errors.New("tiledqr: stream: batch must have at least one row")
	errNilRHS     = errors.New("tiledqr: stream: AppendRHS needs a non-nil right-hand side (use AppendRows)")
)

// streamAppend validates and funnels one batch (with or without a
// right-hand side) into the generic reduction core — the single body
// behind every precision's AppendRows/AppendRHS and their Ctx variants.
func streamAppend[T vec.Scalar](ctx context.Context, c *stream.Core[T], batch, rhs *tile.Dense[T], withRHS bool) error {
	if err := c.Err(); err != nil {
		return err
	}
	if batch == nil || batch.Rows < 1 {
		return errEmptyBatch
	}
	if batch.Cols != c.N() {
		return fmt.Errorf("tiledqr: stream: batch has %d columns, stream has %d", batch.Cols, c.N())
	}
	if !withRHS {
		return c.Append(ctx, batch.Rows, batch.Data, batch.Stride, nil, 0, 0)
	}
	if rhs == nil {
		return errNilRHS
	}
	if rhs.Rows != batch.Rows {
		return fmt.Errorf("tiledqr: stream: right-hand side has %d rows, batch has %d", rhs.Rows, batch.Rows)
	}
	return c.Append(ctx, batch.Rows, batch.Data, batch.Stride, rhs.Data, rhs.Stride, rhs.Cols)
}

// StreamQR is an incremental (streaming) tiled QR factorization: rows
// arrive in batches and only the n×n upper triangular factor R — plus,
// optionally, the top n rows of Qᵀb for online least squares — is retained.
// Memory stays O(n² + batch) no matter how many rows are ingested, so a
// StreamQR can absorb millions of observations that would never fit as one
// matrix.
//
// Each batch is tiled, panel-factored with GEQRT, and merged into the
// resident triangle with the paper's triangle-on-triangle kernels — the
// merge primitive of communication-avoiding TSQR (Demmel, Grigori,
// Hoemmen, Langou) — along a task DAG executed by the work-stealing runtime
// with critical-path priorities, so batches spanning several tile rows
// reduce in parallel.
//
// Options.TileSize, InnerBlock, Workers and Kernels are honored;
// Algorithm and BS are ignored (the per-column reduction tree of a
// streaming merge is a binary tree, the optimal shape for single-column
// reductions). StreamQR is not safe for concurrent use. Its precision
// siblings ZStreamQR (complex128), StreamQR32 (float32) and CStreamQR
// (complex64) instantiate the same generic core.
type StreamQR struct {
	c *stream.Core[float64]
}

// NewStream creates a streaming factorization for rows with n columns.
// The triangle starts at zero: a StreamQR with no ingested rows represents
// the QR factorization of an empty (0×n) matrix.
func NewStream(n int, opt Options) (*StreamQR, error) {
	c, err := newStreamCore[float64](n, opt)
	if err != nil {
		return nil, err
	}
	return &StreamQR{c: c}, nil
}

// AppendRows merges a batch of rows (r×n, any r ≥ 1) into the resident
// triangle. The batch is not modified. Returns an error if the stream
// tracks right-hand sides (use AppendRHS so Qᵀb stays consistent).
func (s *StreamQR) AppendRows(batch *Dense) error {
	return streamAppend(nil, s.c, (*tile.Dense[float64])(batch), nil, false)
}

// AppendRowsCtx is AppendRows under a cancellation context: a merge
// cancelled mid-DAG leaves the resident triangle partially transformed, so
// the stream fails permanently (see Err). A nil ctx behaves like AppendRows.
func (s *StreamQR) AppendRowsCtx(ctx context.Context, batch *Dense) error {
	return streamAppend(ctx, s.c, (*tile.Dense[float64])(batch), nil, false)
}

// AppendRHS merges a batch of rows together with the matching right-hand
// side rows (r×nrhs), maintaining the top n rows of Qᵀb for SolveLS.
// Right-hand sides must be supplied from the first batch onwards and keep
// the same column count; neither argument is modified.
func (s *StreamQR) AppendRHS(batch, rhs *Dense) error {
	return streamAppend(nil, s.c, (*tile.Dense[float64])(batch), (*tile.Dense[float64])(rhs), true)
}

// AppendRHSCtx is AppendRHS under a cancellation context (see
// AppendRowsCtx).
func (s *StreamQR) AppendRHSCtx(ctx context.Context, batch, rhs *Dense) error {
	return streamAppend(ctx, s.c, (*tile.Dense[float64])(batch), (*tile.Dense[float64])(rhs), true)
}

// Err returns the stream's sticky failure: nil while the stream is healthy,
// and the original cause once an append failed, panicked, or was cancelled
// mid-merge. A failed stream's retained state is partially transformed, so
// every accessor and later append returns this error; further appends are
// unsupported — replace the stream.
func (s *StreamQR) Err() error { return s.c.Err() }

// R returns the n×n upper triangular factor of all rows ingested so far.
// It equals (up to row signs) the R of a one-shot Factor over the same
// rows. After a failed append, R returns the append's original error.
func (s *StreamQR) R() (*Dense, error) {
	if err := s.c.Err(); err != nil {
		return nil, err
	}
	n := s.c.N()
	r := NewDense(n, n)
	s.c.CopyR(r.Data, r.Stride)
	return r, nil
}

// QTB returns the retained top n rows of Qᵀb (n×nrhs), or nil when the
// stream tracks no right-hand side. After a failed append, QTB returns the
// append's original error.
func (s *StreamQR) QTB() (*Dense, error) {
	if err := s.c.Err(); err != nil {
		return nil, err
	}
	if s.c.NRHS() == 0 {
		return nil, nil
	}
	q := NewDense(s.c.N(), s.c.NRHS())
	s.c.CopyQTB(q.Data, q.Stride)
	return q, nil
}

// SolveLS returns the n×nrhs least-squares solution min‖A·x − b‖₂ over
// every row ingested so far, without ever having materialized A or b.
// Requires right-hand-side tracking and at least n ingested rows.
func (s *StreamQR) SolveLS() (*Dense, error) {
	x := NewDense(s.c.N(), max(s.c.NRHS(), 1))
	if err := s.c.SolveLS(x.Data, x.Stride); err != nil {
		return nil, err
	}
	return x, nil
}

// Rows returns the total number of rows ingested.
func (s *StreamQR) Rows() int64 { return s.c.Rows() }

// N returns the column count of the streamed system.
func (s *StreamQR) N() int { return s.c.N() }

// ResidualNorm returns the running least-squares residual of the ingested
// system: ‖b − A·X‖_F over all tracked right-hand-side columns (0 when no
// RHS is tracked). The components of Qᵀb rotated beyond the retained top
// block accumulate here instead of being stored. After a failed append,
// ResidualNorm returns the append's original error.
func (s *StreamQR) ResidualNorm() (float64, error) {
	if err := s.c.Err(); err != nil {
		return 0, err
	}
	return s.c.ResidualNorm(), nil
}

// Footprint returns the number of float64 values retained across appends —
// the O(n² + batch) bound made observable for tests and capacity planning.
func (s *StreamQR) Footprint() int { return s.c.Footprint() }
