// Package tiledqr implements tiled QR factorization of dense matrices on
// multicore machines, reproducing "Tiled QR factorization algorithms"
// (Bouwmeester, Jacquelin, Langou, Robert, 2011).
//
// An m×n matrix (any m, n ≥ 1) is partitioned into nb×nb tiles and factored
// as A = Q·R by a sequence of tile-level Householder transformations whose
// order — the elimination tree — determines the available parallelism:
//
//   - FlatTree (Sameh-Kuck): best for square matrices, PLASMA's default
//   - BinaryTree: best for a single column of tiles
//   - Fibonacci and Greedy: the paper's contribution, asymptotically
//     optimal whenever p = λq; best for tall matrices (p ≥ 2q)
//   - PlasmaTree(BS): flat trees on row domains merged by a binary tree
//   - Asap and Grasap(k): dynamic variants of Greedy (§3.2)
//
// Eliminations are implemented with either TT (triangle-on-top-of-triangle)
// kernels, which maximize parallelism, or TS (triangle-on-top-of-square)
// kernels, which maximize locality.
//
// Beyond factorization (Factor, FactorComplex), the package exposes the
// paper's analysis machinery: elimination lists, critical paths via a
// discrete-event simulator, bounded-worker makespans, and the roofline
// performance predictor used in Section 4 of the paper.
//
// # Quick start
//
//	a := tiledqr.RandomDense(1200, 300, 1)
//	f, err := tiledqr.Factor(a, tiledqr.Options{Algorithm: tiledqr.Greedy, TileSize: 100})
//	if err != nil { ... }
//	r := f.R()        // 300×300 upper triangular
//	q := f.ThinQ()    // 1200×300 with orthonormal columns
//
// See the examples directory for least-squares solving, orthonormal basis
// construction, streaming ingestion, and schedule analysis.
//
// # Streaming (incremental) factorization
//
// StreamQR and ZStreamQR factor a matrix whose rows arrive over time —
// the incremental mode of communication-avoiding TSQR, built from the same
// triangle-on-triangle kernels the paper's algorithms use. Each appended
// batch is tiled, panel-factored with GEQRT, binary-tree-reduced within
// each column, and merged into a resident n×n triangle with TTQRT/TTMQR,
// scheduled by the same work-stealing runtime and critical-path priorities
// as a one-shot factorization:
//
//	s, _ := tiledqr.NewStream(nFeatures, tiledqr.Options{})
//	for batch, rhs := range observations {   // r×n rows + r×nrhs targets
//		s.AppendRHS(batch, rhs)
//	}
//	x, _ := s.SolveLS()  // LS fit over every row ever ingested
//
// Use Factor when the matrix fits in memory and is factored once: it sees
// the whole matrix, so wide trailing updates amortize better and Q can be
// applied afterwards. Use a stream when rows keep arriving, the history is
// too large to hold, or rolling least-squares estimates are needed: memory
// stays O(n² + batch) — the triangle, Qᵀb, and per-worker scratch; nothing
// scales with rows ingested (Footprint makes the bound observable, and a
// test asserts it). Appending r rows costs 2·r·n² flops regardless of how
// many rows came before; Q is never materialized, but the running
// least-squares residual is available as ResidualNorm. Ingestion
// throughput is benchmarked by BenchmarkStream* and cmd/qrstream, and
// recorded in BENCH_kernels.json by make bench.
//
// # Performance
//
// Both arithmetic domains run on one tuned core, internal/vec: unrolled,
// bounds-check-free Dot/Axpy/Scal/AddScaled primitives plus an
// overflow-safe single-Sqrt Nrm2 (the reflector norms take one Sqrt per
// column instead of one Hypot per element). Kernel inner loops are
// row-contiguous sweeps, and the block-reflector appliers tile their
// workspace so the updated block streams through cache once per pass.
//
// The parallel runtime (internal/sched) executes the task DAG with
// per-worker deques plus work stealing. Ready tasks are ordered by
// critical-path priority — the longest weighted path to a DAG sink, using
// the paper's Table 1 kernel weights — so factor kernels on the critical
// path run ahead of trailing updates, the ASAP discipline of §2. A
// completing worker keeps its released successors (the tiles it just wrote
// are still in cache); idle workers steal low-priority leaves from
// victims. Workers = 1 selects a deterministic sequential path. Each
// worker owns a preallocated kernel workspace and Q-application scratch is
// pooled, so steady-state factorization does no per-task allocation.
//
// To benchmark: `go test -bench 'Figure4|Figure5' .` reports per-kernel
// GFLOP/s (the paper's Figures 4–5), `go test -bench Table .` the
// end-to-end experiments, and `make bench` records the kernel figures in
// BENCH_kernels.json alongside the seed baseline, tracking the performance
// trajectory across revisions.
package tiledqr
