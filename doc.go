// Package tiledqr implements tiled QR factorization of dense matrices on
// multicore machines, reproducing "Tiled QR factorization algorithms"
// (Bouwmeester, Jacquelin, Langou, Robert, 2011).
//
// An m×n matrix (any m, n ≥ 1) is partitioned into nb×nb tiles and factored
// as A = Q·R by a sequence of tile-level Householder transformations whose
// order — the elimination tree — determines the available parallelism:
//
//   - FlatTree (Sameh-Kuck): best for square matrices, PLASMA's default
//   - BinaryTree: best for a single column of tiles
//   - Fibonacci and Greedy: the paper's contribution, asymptotically
//     optimal whenever p = λq; best for tall matrices (p ≥ 2q)
//   - PlasmaTree(BS): flat trees on row domains merged by a binary tree
//   - Asap and Grasap(k): dynamic variants of Greedy (§3.2)
//
// Eliminations are implemented with either TT (triangle-on-top-of-triangle)
// kernels, which maximize parallelism, or TS (triangle-on-top-of-square)
// kernels, which maximize locality.
//
// Beyond factorization (Factor, FactorComplex), the package exposes the
// paper's analysis machinery: elimination lists, critical paths via a
// discrete-event simulator, bounded-worker makespans, and the roofline
// performance predictor used in Section 4 of the paper.
//
// # Quick start
//
//	a := tiledqr.RandomDense(1200, 300, 1)
//	f, err := tiledqr.Factor(a, tiledqr.Options{Algorithm: tiledqr.Greedy, TileSize: 100})
//	if err != nil { ... }
//	r := f.R()        // 300×300 upper triangular
//	q := f.ThinQ()    // 1200×300 with orthonormal columns
//
// See the examples directory for least-squares solving, orthonormal basis
// construction, and schedule analysis.
package tiledqr
