// Package tiledqr implements tiled QR factorization of dense matrices on
// multicore machines, reproducing "Tiled QR factorization algorithms"
// (Bouwmeester, Jacquelin, Langou, Robert, 2011).
//
// An m×n matrix (any m, n ≥ 1) is partitioned into nb×nb tiles and factored
// as A = Q·R by a sequence of tile-level Householder transformations whose
// order — the elimination tree — determines the available parallelism:
//
//   - FlatTree (Sameh-Kuck): best for square matrices, PLASMA's default
//   - BinaryTree: best for a single column of tiles
//   - Fibonacci and Greedy: the paper's contribution, asymptotically
//     optimal whenever p = λq; best for tall matrices (p ≥ 2q)
//   - PlasmaTree(BS): flat trees on row domains merged by a binary tree
//   - Asap and Grasap(k): dynamic variants of Greedy (§3.2)
//
// Eliminations are implemented with either TT (triangle-on-top-of-triangle)
// kernels, which maximize parallelism, or TS (triangle-on-top-of-square)
// kernels, which maximize locality.
//
// Beyond factorization (Factor, FactorComplex), the package exposes the
// paper's analysis machinery: elimination lists, critical paths via a
// discrete-event simulator, bounded-worker makespans, and the roofline
// performance predictor used in Section 4 of the paper.
//
// # Quick start
//
//	a := tiledqr.RandomDense(1200, 300, 1)
//	f, err := tiledqr.Factor(a, tiledqr.Options{Algorithm: tiledqr.Greedy, TileSize: 100})
//	if err != nil { ... }
//	r := f.R()        // 300×300 upper triangular
//	q := f.ThinQ()    // 1200×300 with orthonormal columns
//
// See the examples directory for least-squares solving, orthonormal basis
// construction, and schedule analysis.
//
// # Performance
//
// Both arithmetic domains run on one tuned core, internal/vec: unrolled,
// bounds-check-free Dot/Axpy/Scal/AddScaled primitives plus an
// overflow-safe single-Sqrt Nrm2 (the reflector norms take one Sqrt per
// column instead of one Hypot per element). Kernel inner loops are
// row-contiguous sweeps, and the block-reflector appliers tile their
// workspace so the updated block streams through cache once per pass.
//
// The parallel runtime (internal/sched) executes the task DAG with
// per-worker deques plus work stealing. Ready tasks are ordered by
// critical-path priority — the longest weighted path to a DAG sink, using
// the paper's Table 1 kernel weights — so factor kernels on the critical
// path run ahead of trailing updates, the ASAP discipline of §2. A
// completing worker keeps its released successors (the tiles it just wrote
// are still in cache); idle workers steal low-priority leaves from
// victims. Workers = 1 selects a deterministic sequential path. Each
// worker owns a preallocated kernel workspace and Q-application scratch is
// pooled, so steady-state factorization does no per-task allocation.
//
// To benchmark: `go test -bench 'Figure4|Figure5' .` reports per-kernel
// GFLOP/s (the paper's Figures 4–5), `go test -bench Table .` the
// end-to-end experiments, and `make bench` records the kernel figures in
// BENCH_kernels.json alongside the seed baseline, tracking the performance
// trajectory across revisions.
package tiledqr
