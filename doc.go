// Package tiledqr implements tiled QR factorization of dense matrices on
// multicore machines, reproducing "Tiled QR factorization algorithms"
// (Bouwmeester, Jacquelin, Langou, Robert, 2011).
//
// An m×n matrix (any m, n ≥ 1) is partitioned into nb×nb tiles and factored
// as A = Q·R by a sequence of tile-level Householder transformations whose
// order — the elimination tree — determines the available parallelism:
//
//   - FlatTree (Sameh-Kuck): best for square matrices, PLASMA's default
//   - BinaryTree: best for a single column of tiles
//   - Fibonacci and Greedy: the paper's contribution, asymptotically
//     optimal whenever p = λq; best for tall matrices (p ≥ 2q)
//   - PlasmaTree(BS): flat trees on row domains merged by a binary tree
//   - Asap and Grasap(k): dynamic variants of Greedy (§3.2)
//
// Eliminations are implemented with either TT (triangle-on-top-of-triangle)
// kernels, which maximize parallelism, or TS (triangle-on-top-of-square)
// kernels, which maximize locality.
//
// Beyond factorization, the package exposes the paper's analysis machinery:
// elimination lists, critical paths via a discrete-event simulator,
// bounded-worker makespans, and the roofline performance predictor used in
// Section 4 of the paper.
//
// # Quick start
//
//	a := tiledqr.RandomDense(1200, 300, 1)
//	f, err := tiledqr.Factor(a, tiledqr.Options{Algorithm: tiledqr.Greedy, TileSize: 100})
//	if err != nil { ... }
//	r := f.R()        // 300×300 upper triangular
//	q := f.ThinQ()    // 1200×300 with orthonormal columns
//
// See the examples directory for least-squares solving, orthonormal basis
// construction, streaming ingestion, and schedule analysis.
//
// # Architecture: one generic engine, four precisions
//
// Every numeric layer is a single generic implementation parameterized by
// the scalar constraint (float32 | float64 | complex64 | complex128); the
// public API instantiates it four times behind thin typed wrappers. From
// the bottom up:
//
//	internal/vec    — the Scalar constraint, the real/complex hooks
//	                  (Conj, Abs, RealPart, FromParts), and the tuned
//	                  vector primitives (unrolled Dot/Dotc/Axpy/Axpy2/
//	                  Scal/AddScaled, overflow-safe single-Sqrt Nrm2)
//	internal/kernel — the paper's six tile kernels (GEQRT, TSQRT, TTQRT,
//	                  UNMQR, TSMQR, TTMQR, as the pentagonal TPQRT/TPMQRT
//	                  generals) plus GEMM, one generic implementation with
//	                  conjugation fused through the vec hooks
//	internal/tile   — generic dense matrices, PLASMA tile layout, norms
//	internal/engine — the one Factorization[T]: DAG execution loop (task →
//	                  kernel dispatch with error reporting), ApplyQ/ApplyQT
//	                  replay, SolveLS, workspace pooling, tracing
//	public API      — Factor (float64), Factor32 (float32), FactorComplex
//	                  (complex128), CFactor (complex64), and one generic
//	                  Stream[T] for all four (NewStreamOf[T]; the historic
//	                  StreamQR / StreamQR32 / ZStreamQR / CStreamQR names
//	                  remain as deprecated aliases of its instantiations)
//
// The real/complex difference never forks the code: conjugation is the
// identity in the real domains and every hook compiles to straight-line
// code per instantiation, so the float64 kernels are as fast as the
// hand-written ones they replaced (see BENCH_kernels.json for the
// trajectory). The streaming subsystem's reduction core shares the same
// dispatch loop through the engine's Source interface.
//
// # Choosing a precision
//
// float64 (Factor) is the default: ~1e-15 relative residuals, the paper's
// "double" domain. complex128 (FactorComplex) is the paper's "double
// complex" domain, whose 4× computation-to-communication ratio favours the
// TT algorithms most. The single-precision pair halves memory traffic and
// resident footprint — tiles stay cache-resident at twice the tile size —
// at ~1e-6 relative accuracy: use Factor32/CFactor when throughput or
// footprint matters more than the last digits (preconditioning, sketching,
// streaming aggregation of noisy data, ML feature pipelines), and stay with
// the double domains for ill-conditioned least squares or when residuals
// near machine epsilon are the point. All four precisions pass the same
// agreement suite: the complex path reproduces the real path's R on
// real-valued data, and the 32-bit paths agree with their 64-bit siblings
// to single precision, across every parameter-free algorithm and both
// kernel families.
//
// # Autotuning
//
// The paper's central finding is that no single configuration wins
// everywhere: the best elimination tree, kernel family and tile size all
// depend on the matrix shape and the core count. AlgorithmAuto turns that
// finding into the default decision procedure:
//
//	f, err := tiledqr.Factor(a, tiledqr.Options{Algorithm: tiledqr.AlgorithmAuto})
//
// On first use per precision, the library measures the host's sequential
// kernel throughput (GEQRT/UNMQR/TSQRT/TSMQR/TTQRT/TTMQR) at a few
// candidate tile sizes — a few hundred milliseconds of micro-benchmarks —
// and persists the calibration to a versioned cache at
// <user cache dir>/tiledqr/calibration.json (override the location with the
// TILEDQR_CALIBRATION environment variable, or set it to "off" to keep the
// calibration in process memory only). A corrupt or schema-incompatible
// cache file is silently re-measured, and concurrent first uses calibrate
// exactly once. Each Auto factorization then list-schedules the candidate
// task DAGs with the calibrated kernel durations at the execution width it
// will actually run at (falling back to the paper's closed-form roofline
// bounds for grids too large to simulate) and picks the predicted-fastest
// (algorithm, TT-vs-TS, nb, ib) tuple.
//
// Under AlgorithmAuto, TileSize = 0 and InnerBlock = 0 mean "choose for
// me"; setting either nonzero pins that dimension while the rest is still
// tuned, and the Kernels field is chosen by the tuner (streams keep
// honoring it). Options.Resolve exposes the decision: it returns the
// concrete options an Auto factorization of that shape would use, which
// reproduce the Auto result bit for bit. Decisions are deterministic per
// (shape, width, precision) within a process, so FactorInto/Refactor
// serving fleets keep hitting the engine's plan/arena reuse path. `qrperf
// -tune` prints the full decision table with predicted-vs-measured error,
// and `make bench-gate` (run in CI) guards the calibration's foundation:
// it fails when any measured kernel or streaming series regresses beyond
// tolerance against the committed BENCH_kernels.json baseline.
//
// # Streaming (incremental) factorization
//
// Stream[T] factors a matrix whose rows arrive over time — the incremental
// mode of communication-avoiding TSQR, built from the same
// triangle-on-triangle kernels the paper's algorithms use. Each appended
// batch is tiled, panel-factored with GEQRT, binary-tree-reduced within
// each column, and merged into a resident n×n triangle with TTQRT/TTMQR,
// scheduled by the same work-stealing runtime and critical-path priorities
// as a one-shot factorization:
//
//	s, _ := tiledqr.NewStreamOf[float64](nFeatures, tiledqr.Options{})
//	for batch, rhs := range observations {   // r×n rows + r×nrhs targets
//		s.AppendRHS(batch, rhs)
//	}
//	x, _ := s.SolveLS()  // LS fit over every row ever ingested
//
// One generic type serves all four precisions; NewStreamOf[complex128],
// NewStreamOf[float32] and NewStreamOf[complex64] are the same code. The
// historic per-precision names — StreamQR, ZStreamQR, StreamQR32,
// CStreamQR and their NewStream/NewZStream/NewStream32/NewCStream
// constructors — remain as deprecated aliases of the corresponding
// Stream[T] instantiations: existing code keeps compiling and behaves
// identically, but new stream capabilities land on the generic type.
//
// Use Factor when the matrix fits in memory and is factored once: it sees
// the whole matrix, so wide trailing updates amortize better and Q can be
// applied afterwards. Use a stream when rows keep arriving, the history is
// too large to hold, or rolling least-squares estimates are needed: memory
// stays O(n² + batch) — the triangle, Qᵀb, and per-worker scratch; nothing
// scales with rows ingested (Footprint makes the bound observable, and a
// test asserts it). Appending r rows costs 2·r·n² flops regardless of how
// many rows came before; Q is never materialized, but the running
// least-squares residual is available as ResidualNorm.
//
// # Sliding windows, downdating and forgetting
//
// By default a stream's triangle aggregates every row ever ingested,
// irrevocably. Two Options fields change that for rolling estimation:
//
// Options.WindowRows = w keeps the stream equivalent to a QR of only the
// most recent w rows: each append merges the batch and then *downdates*
// the rows that just fell out of the window. Downdating removes a row by
// the hyperbolic (J-orthogonal) analogue of a Givens rotation applied up
// the triangle's diagonal — O(n²) per row, no refactorization — with the
// same rotations folded through Qᵀb so SolveLS and ResidualNorm track the
// window too. Hyperbolic rotations are the numerically delicate part of
// any downdating scheme: when cancellation would make one unstable
// (‖z‖ approaching the diagonal entry), the stream detects the breakdown
// and transparently re-triangularizes the retained rows from its window
// buffer through the same merge DAG instead — slower, always stable,
// bit-identical semantics. Retained rows live in a ring of recent batches,
// so memory is O(n² + w), observable via Footprint and asserted flat by
// the test suite after hundreds of batches.
//
// Options.WindowRows = RetainAll keeps the full row history without
// automatic eviction, enabling explicit revocation: DowndateRows(k)
// removes the k oldest retained rows on demand (corrections, late
// deletions, GDPR-style erasure). With the default WindowRows = 0 no
// history is kept and DowndateRows reports a descriptive error.
//
// Options.Forget = λ (0 < λ ≤ 1) applies exponential forgetting: each
// append first scales the resident triangle, Qᵀb and the running residual
// by √λ, so a row appended k batches ago contributes with weight λᵏ — the
// classic RLS forgetting factor, giving smoothly decaying influence
// instead of (or in addition to) the window's hard cutoff. Stream.Forget
// applies one decay step manually for externally-clocked schedules.
//
// Ingestion throughput is benchmarked by BenchmarkStream*, cmd/qrstream
// (which exposes -window and -forget and reports the steady-state
// footprint) and the windowed-fleet series of qrperf -fleet, all recorded
// in BENCH_kernels.json by make bench.
//
// # Runtime and throughput
//
// Execution happens on a persistent Runtime: one resident pool of worker
// goroutines that accepts the task DAGs of any number of concurrent
// factorizations, the way PLASMA's dynamic scheduler owns the cores for
// the life of the process. By default (Options.Runtime nil, Workers 0)
// every Factor/FactorComplex/Factor32/CFactor call and every stream merge
// shares the process-wide DefaultRuntime of GOMAXPROCS workers, so N
// concurrent callers never oversubscribe the machine with N pools.
// Admission across factorizations is weighted-fair — each job accumulates
// virtual time as its tasks execute and workers serve the furthest-behind
// job first (with a stickiness quantum for cache locality) — so one huge
// factorization cannot starve a fleet of small ones, while a lone job
// still gets every worker. Within a job, critical-path priorities order
// the tasks exactly as in a dedicated pool, and results are bit-identical
// to per-call execution. A kernel error or panic cancels that job's
// outstanding tasks promptly without touching other jobs.
//
// For a serving workload — many same-shaped problems at high QPS — pair
// the shared runtime with the reuse path:
//
//	rt := tiledqr.NewRuntime(0)            // or just use the default
//	defer rt.Close()
//	opt := tiledqr.Options{TileSize: 128}.WithRuntime(rt)
//	f := &tiledqr.Factorization{}
//	for a := range problems {
//		if err := tiledqr.FactorInto(f, a, opt); err != nil { ... }
//		use(f.R())
//	}
//
// FactorInto (and its shape-pinned shorthand Refactor) reuses the tile
// arena — one contiguous allocation holding every tile payload and T
// factor — plus the task DAG and its execution plan whenever shape and
// structural options match, so steady-state refactorization performs O(1)
// allocations; kernel workspaces live with the runtime's workers (one
// grow-only buffer per precision each) and are shared by every job.
// Setting Options.Workers > 0 instead opts out of sharing: that call gets
// a private pool built and torn down around it (Workers == 1 is the
// deterministic sequential path). `make throughput` (qrperf -throughput)
// measures the fleet scenario — factorizations/sec at 1..64 concurrent
// clients, per-call pools vs shared runtime vs FactorInto reuse — and
// `make bench` records it in BENCH_kernels.json.
//
// # Serving
//
// cmd/qrserve packages the fleet pattern above as a network service: an
// HTTP/JSON front end on one shared Runtime, with one-shot factor and
// least-squares endpoints, session-oriented streaming TSQR and reusable
// FactorInto sessions, all four precisions on the wire (complex data
// travels as interleaved re/im pairs). The server layers serving concerns
// over the runtime's weighted-fair admission: per-tenant concurrency
// quotas, 429 + Retry-After backpressure when the runtime's task backlog
// exceeds a bound, and coalescing of concurrent solves that share a
// design matrix into one factorization plus a single multi-column
// SolveLS. On SIGTERM it drains gracefully — in-flight requests finish,
// new ones get 503, and Runtime.Drain quiesces the pool before exit.
// Runtime.Stats exposes the pool's worker count, ready-task backlog and
// in-flight job count for exactly this kind of supervision, and the
// TILEDQR_WORKERS environment variable overrides the default pool width
// wherever a worker count is left at zero. cmd/qrload replays TOML load
// scenarios against a server and reports p50/p95/p99 latency and rows/sec
// (JSON-exportable, gated by qrperf -compare); `make serve-smoke` runs
// the whole stack end to end. See the README's "QR as a service" section
// for the endpoint reference.
//
// # Distributed factorization
//
// cmd/qrdist scales the factorization past one process with the
// communication-avoiding algorithm (CAQR): the matrix is sharded row-wise
// across worker processes (cmd/qrworker, or in-process goroutines),
// each worker runs ordinary local tiled QR on its shard — FactorInto
// underneath, so tile arenas and plans are reused across rounds — and the
// per-shard n×n R triangles are combined pairwise up a binomial TTQRT
// reduction tree until rank 0 holds the global R (and Qᵀb, folded through
// the same tree with TTMQR), from which the coordinator solves the
// least-squares system. Only packed triangles travel: for tall shards the
// communication volume is O(n²) per worker per round against O(rows·n²)
// of local compute, which is the communication-avoiding trade. Frames are
// length-prefixed binary over plain TCP in all four precisions, buffers
// are pooled on both the send and receive paths (zero steady-state
// allocations per round), and a worker whose tree role is done starts the
// next round's local factorization while its R is still in flight — the
// reported overlap fraction measures how much communication that hid.
// Multi-round jobs pipeline under a credit window; SIGTERM freezes the
// window so every worker stops at the same round and the driver exits 0.
// The distributed R matches single-process Factor up to the usual
// row-phase ambiguity, and `make dist-smoke` asserts that agreement
// against two real worker processes end to end. Shards shorter than n are
// rejected with a pointer back to single-node Factor. See the README's
// "Distributed CAQR" section for the topology diagram and sharding
// guidance.
//
// # Failure semantics
//
// Every public entry point has a Ctx variant (FactorCtx, FactorIntoCtx,
// RefactorCtx, SolveLSCtx, ApplyQCtx/ApplyQTCtx, AppendRowsCtx,
// AppendRHSCtx) threading a context.Context through the DAG execution. On
// cancellation, in-flight kernel tasks run to completion (they are
// microseconds), queued tasks are dropped un-executed, and the call
// returns ctx.Err() promptly; concurrent factorizations sharing the
// runtime are unaffected and bit-identical. Contexts apply to one call
// and are never retained. A nil context means "never cancelled" — the
// non-Ctx names are exactly that.
//
// Failure is sticky but never silent. A Factorization whose last attempt
// failed — kernel error, panic (contained by the scheduler and converted
// to an error), cancellation, or health-check breakdown — refuses to
// serve results: Err reports the original cause, error-returning
// accessors (ApplyQ/ApplyQT/SolveLS) wrap it, and value-returning
// accessors (R, Q, ThinQ) panic with it rather than return half-factored
// tiles. The state is recoverable: the next successful
// Factor/FactorInto/Refactor rebuilds storage from scratch and clears it.
// A stream is different: a batch merge mutates the resident triangle in
// place, so an append that fails past validation poisons the stream
// permanently — Err, R, QTB, SolveLS, ResidualNorm and every later
// append return the original cause, and further appends are unsupported
// (replace the stream). Input validation failures (shape mismatches, and
// non-finite entries under CheckHealth) are detected before any retained
// state is touched and leave factorization and stream fully intact.
//
// Options.CheckHealth opts into numerical health checking: inputs
// containing NaN or Inf are rejected up front, and every kernel task
// fails fast when it writes a non-finite value into a tile — a NaN
// reflector or an overflow to Inf stops the DAG at the task that produced
// it instead of poisoning everything downstream. The scan is O(nb²) per
// O(nb³) task, a few percent; with CheckHealth off the happy path pays
// nothing.
//
// Runtime lifecycle is hardened for serving: Close is idempotent, waits
// for in-flight jobs, and later submissions fail with ErrRuntimeClosed —
// they never hang. Drain(ctx) is the graceful variant: admission stops
// (ErrRuntimeDraining) and it waits, bounded by ctx, for in-flight work.
//
// The failure paths are exercised by a chaos suite driven by a
// deterministic fault injector (internal/fault): injected kernel errors,
// panics, stalls and NaN poison, filtered by kernel kind, precision and
// match index. Operators can arm it via the TILEDQR_FAULT environment
// variable (e.g. "mode=panic;kind=GEQRT;prec=d;index=3") to rehearse
// failure handling in staging; when disarmed it costs one atomic load per
// task. `make chaos` runs the suite under the race detector and CI gates
// on it, alongside fuzz targets (`make fuzz-smoke`) that keep hostile
// options and adversarial matrices erroring descriptively instead of
// panicking.
//
// # Performance
//
// All four arithmetic domains run on one tuned core, internal/vec:
// unrolled, bounds-check-free Dot/Axpy/Scal/AddScaled primitives plus an
// overflow-safe single-Sqrt Nrm2 (the reflector norms take one Sqrt per
// column instead of one Hypot per element; sums of squares accumulate in
// float64 even for the 32-bit domains). Kernel inner loops are
// row-contiguous sweeps, and the block-reflector appliers tile their
// workspace to a fixed byte budget per domain so the updated block streams
// through cache once per pass.
//
// The hot primitives additionally exist as a hand-vectorized kernel family
// — AVX2/FMA assembly on amd64, NEON on arm64 — selected by CPU detection
// at startup, with the generic loops as the always-present fallback
// (build tag noasm compiles the assembly out; TILEDQR_SIMD=off disables it
// at startup). The trailing-matrix updates route their full-height rows
// through a register-blocked packed micro-GEMM in the same family, which
// is where the bulk of the factorization's flops live; on an AVX2 host the
// double-precision factor kernels run 2–3× and the update kernels 3–4×
// faster than the generic loops. The two families agree to rounding level
// (the vector code fuses multiply-adds, so results are not bit-identical
// across families — they are bit-identical for a fixed family), an
// agreement the test suite enforces per primitive and end to end across
// Factor, SolveLS and the streams in all four precisions. The autotuner
// calibrates each family separately and records which one scored each
// decision.
//
// The parallel runtime (internal/sched) executes the task DAG with
// per-worker deques plus work stealing. Ready tasks are ordered by
// critical-path priority — the longest weighted path to a DAG sink, using
// the paper's Table 1 kernel weights — so factor kernels on the critical
// path run ahead of trailing updates, the ASAP discipline of §2. A
// completing worker keeps its released successors (the tiles it just wrote
// are still in cache); idle workers steal low-priority leaves from
// victims. Workers = 1 selects a deterministic sequential path. Each
// worker owns a preallocated kernel workspace and Q-application scratch is
// pooled, so steady-state factorization does no per-task allocation.
//
// To benchmark: `go test -bench 'Figure4|Figure5' .` reports per-kernel
// GFLOP/s (the paper's Figures 4–5) in all four precisions, `go test
// -bench Table .` the end-to-end experiments, and `make bench` records the
// kernel figures for every precision in BENCH_kernels.json alongside the
// seed baseline, tracking the performance trajectory across revisions.
package tiledqr
