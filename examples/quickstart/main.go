// Quickstart: factor a tall random matrix with the Greedy tiled QR
// algorithm, extract Q and R, and verify the factorization quality.
package main

import (
	"fmt"
	"log"

	"tiledqr"
)

func main() {
	const m, n = 600, 200

	// A tall-and-skinny matrix is where the paper's Greedy algorithm
	// shines: many tile rows per tile column mean deep reduction trees.
	a := tiledqr.RandomDense(m, n, 42)

	f, err := tiledqr.Factor(a, tiledqr.Options{
		Algorithm:  tiledqr.Greedy,
		Kernels:    tiledqr.TT,
		TileSize:   50, // p = 12 tile rows, q = 4 tile columns
		InnerBlock: 16,
	})
	if err != nil {
		log.Fatal(err)
	}

	p, q, nb := f.Grid()
	fmt.Printf("factored %d×%d as a %d×%d grid of %d×%d tiles (%d kernel tasks)\n",
		m, n, p, q, nb, nb, f.TaskCount())

	r := f.R()         // 200×200 upper triangular
	qthin := f.ThinQ() // 600×200, orthonormal columns

	fmt.Printf("‖A − QR‖/‖A‖  = %.2e\n", tiledqr.QRResidual(a, qthin, r))
	fmt.Printf("‖QᵀQ − I‖     = %.2e\n", tiledqr.OrthoResidual(qthin))

	// The algorithm's theoretical parallelism for this shape: critical path
	// in units of nb³/3 flops, versus the sequential total.
	cp, err := tiledqr.CriticalPath(tiledqr.Greedy, p, q, tiledqr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical path %d units; FlatTree would need ", cp)
	cpFlat, _ := tiledqr.CriticalPath(tiledqr.FlatTree, p, q, tiledqr.Options{})
	fmt.Printf("%d units (%.1f× longer)\n", cpFlat, float64(cpFlat)/float64(cp))
}
