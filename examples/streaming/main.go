// Online least squares over a row stream: the serving-style workload the
// streaming TSQR subsystem exists for.
//
// A sensor produces readings forever; we fit y ≈ x·w by least squares
// WITHOUT ever storing the observation history. A StreamQR ingests batches
// of (features, target) rows and retains only the n×n triangle R and the
// top n rows of Qᵀb — O(n²) state — yet SolveLS at any moment returns
// exactly the least-squares fit over every row seen so far, identical to
// factoring the full history in one shot.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"tiledqr"
)

func main() {
	const (
		features  = 12
		batchRows = 500
		batches   = 40
	)

	// Ground-truth weights the stream will recover.
	truth := make([]float64, features)
	rng := rand.New(rand.NewSource(3))
	for i := range truth {
		truth[i] = math.Sin(float64(i)) * 2
	}

	s, err := tiledqr.NewStream(features, tiledqr.Options{TileSize: 64})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streaming %d batches of %d noisy observations, %d features\n\n", batches, batchRows, features)
	fmt.Println("  batch      rows     max |w − truth|    ‖residual‖/√rows   retained state")
	for bi := 1; bi <= batches; bi++ {
		x := tiledqr.NewDense(batchRows, features)
		y := tiledqr.NewDense(batchRows, 1)
		for r := 0; r < batchRows; r++ {
			dot := 0.0
			for c := 0; c < features; c++ {
				v := rng.NormFloat64()
				x.Set(r, c, v)
				dot += truth[c] * v
			}
			y.Set(r, 0, dot+0.05*rng.NormFloat64()) // noisy target
		}
		if err := s.AppendRHS(x, y); err != nil {
			log.Fatal(err)
		}
		// Solve at a few checkpoints: the estimate sharpens as rows arrive,
		// while the retained state stays constant-size.
		if bi == 1 || bi == 5 || bi%10 == 0 {
			w, err := s.SolveLS()
			if err != nil {
				log.Fatal(err)
			}
			var worst float64
			for c := 0; c < features; c++ {
				worst = math.Max(worst, math.Abs(w.At(c, 0)-truth[c]))
			}
			rows := float64(s.Rows())
			resid, err := s.ResidualNorm()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %5d  %8d        %.3e          %.4f         %d floats\n",
				bi, s.Rows(), worst, resid/math.Sqrt(rows), s.Footprint())
		}
	}

	fmt.Println("\nthe estimate converges like 1/√rows while memory stays flat:")
	fmt.Printf("  %d rows ingested, %d floats retained (a %d×%d triangle + Qᵀb + workspaces)\n",
		s.Rows(), s.Footprint(), features, features)
	fmt.Println("  the same rows factored one-shot would need", batches*batchRows*features, "floats for A alone")
}
