// Orthonormal basis: the paper's second motivation. Block iterative methods
// orthogonalize a block of long vectors at every step; the Q factor of a
// tall-and-skinny QR gives that basis with unconditional stability.
//
// This example orthonormalizes a 3000×60 block (complex and real), compares
// every elimination tree's critical path for the resulting 30×... tile
// grid, and checks that the basis spans the original block.
package main

import (
	"fmt"
	"log"

	"tiledqr"
)

func main() {
	const (
		m, n = 3000, 60
		nb   = 100 // p = 30 tile rows, q = 1 tile column
	)

	// Real block.
	a := tiledqr.RandomDense(m, n, 1)
	f, err := tiledqr.Factor(a, tiledqr.Options{Algorithm: tiledqr.Greedy, TileSize: nb})
	if err != nil {
		log.Fatal(err)
	}
	qb := f.ThinQ()
	fmt.Printf("real    %d×%d block: ‖QᵀQ−I‖ = %.2e, ‖A−QR‖/‖A‖ = %.2e\n",
		m, n, tiledqr.OrthoResidual(qb), tiledqr.QRResidual(a, qb, f.R()))

	// Complex block (the paper reports double complex throughout: the
	// flop-to-byte ratio is 4× higher, favouring the parallel algorithms).
	za := tiledqr.RandomZDense(m, n, 2)
	zf, err := tiledqr.FactorComplex(za, tiledqr.Options{Algorithm: tiledqr.Greedy, TileSize: nb})
	if err != nil {
		log.Fatal(err)
	}
	zq := zf.ThinQ()
	fmt.Printf("complex %d×%d block: ‖QᴴQ−I‖ = %.2e, ‖A−QR‖/‖A‖ = %.2e\n",
		m, n, tiledqr.ZOrthoResidual(zq), tiledqr.ZQRResidual(za, zq, zf.R()))

	// For a single tile column (q = 1), the elimination tree is a pure
	// reduction tree; compare the paper's algorithms.
	p, q, _ := f.Grid()
	fmt.Printf("\ncritical paths for the %d×%d tile grid (units of nb³/3 flops):\n", p, q)
	for _, alg := range tiledqr.Algorithms {
		cp, err := tiledqr.CriticalPath(alg, p, q, tiledqr.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10v %4d\n", alg, cp)
	}
	bs, cp := tiledqr.BestPlasmaBS(p, q, tiledqr.TT)
	fmt.Printf("  %-10v %4d (best domain size BS=%d)\n", "PlasmaTree", cp, bs)
	fmt.Println("\nGreedy and BinaryTree coincide for q = 1 — a binary reduction tree,")
	fmt.Println("the communication-avoiding TSQR shape.")
}
