// Command autotune demonstrates model-guided autotuning: AlgorithmAuto
// lets the library pick the elimination tree, kernel family, tile size and
// inner blocking per matrix shape, using a per-host kernel calibration
// (measured once, cached under the user cache directory) combined with the
// paper's bounded-processor schedule model.
package main

import (
	"fmt"
	"time"

	"tiledqr"
)

func main() {
	fmt.Println("Model-guided autotuning: tiledqr.AlgorithmAuto")
	fmt.Println()

	shapes := [][2]int{{512, 96}, {256, 256}, {96, 512}, {1024, 128}}
	auto := tiledqr.Options{Algorithm: tiledqr.AlgorithmAuto}

	for _, s := range shapes {
		m, n := s[0], s[1]
		// Resolve shows the decision without running anything: the options
		// a Factor call would actually use.
		resolved, err := auto.Resolve(m, n)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%4d×%-4d → %-10v %v kernels, nb=%d, ib=%d\n",
			m, n, resolved.Algorithm, resolved.Kernels, resolved.TileSize, resolved.InnerBlock)

		// Factoring with Auto and with the resolved options is the same
		// computation, bit for bit.
		a := tiledqr.RandomDense(m, n, 42)
		start := time.Now()
		f, err := tiledqr.Factor(a, auto)
		if err != nil {
			panic(err)
		}
		fmt.Printf("           factored in %v (%d kernel tasks)\n", time.Since(start).Round(time.Microsecond), f.TaskCount())
	}

	fmt.Println()
	fmt.Println("Streams pick their tile shape the same way:")
	st, err := tiledqr.NewStream(300, auto)
	if err != nil {
		panic(err)
	}
	for batch := 0; batch < 4; batch++ {
		if err := st.AppendRows(tiledqr.RandomDense(128, 300, int64(batch))); err != nil {
			panic(err)
		}
	}
	fmt.Printf("streamed %d rows into a %d-column resident triangle (footprint %d floats)\n",
		st.Rows(), st.N(), st.Footprint())

	fmt.Println()
	fmt.Println("Pin any dimension of the decision by setting it nonzero, e.g. TileSize=128:")
	pinned, err := tiledqr.Options{Algorithm: tiledqr.AlgorithmAuto, TileSize: 128}.Resolve(512, 256)
	if err != nil {
		panic(err)
	}
	fmt.Printf("512×256 with nb pinned to 128 → %v %v kernels, ib=%d\n",
		pinned.Algorithm, pinned.Kernels, pinned.InnerBlock)
}
