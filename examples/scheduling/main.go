// Scheduling analysis: use the library's simulator the way Section 3 of the
// paper does — print the per-tile zeroing time-steps (the format of Table 3)
// for a chosen grid, compare critical paths across algorithms, and sweep
// worker counts through the bounded-processor list scheduler to see where
// the critical path stops mattering. Finally, demonstrate the persistent
// shared runtime: a fleet of concurrent factorizations submitted to one
// worker pool instead of each spawning its own.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"text/tabwriter"
	"time"

	"tiledqr"
)

func main() {
	p := flag.Int("p", 15, "tile rows")
	q := flag.Int("q", 6, "tile columns")
	alg := flag.String("alg", "Greedy", "algorithm: FlatTree|BinaryTree|Fibonacci|Greedy|Asap")
	flag.Parse()

	var algorithm tiledqr.Algorithm
	switch *alg {
	case "FlatTree":
		algorithm = tiledqr.FlatTree
	case "BinaryTree":
		algorithm = tiledqr.BinaryTree
	case "Fibonacci":
		algorithm = tiledqr.Fibonacci
	case "Greedy":
		algorithm = tiledqr.Greedy
	case "Asap":
		algorithm = tiledqr.Asap
	default:
		log.Fatalf("unknown algorithm %q", *alg)
	}

	// Per-tile zeroing time-steps, Table 3 style.
	zero, err := tiledqr.ZeroTimes(algorithm, *p, *q, tiledqr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v time-steps at which tile (i,k) is zeroed (p=%d, q=%d, TT kernels):\n\n", algorithm, *p, *q)
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 1, ' ', tabwriter.AlignRight)
	fmt.Fprint(w, "row\t")
	for k := 1; k <= min(*q, *p); k++ {
		fmt.Fprintf(w, "k=%d\t", k)
	}
	fmt.Fprintln(w)
	for i := 2; i <= *p; i++ {
		fmt.Fprintf(w, "%d\t", i)
		for k := 1; k <= min(i-1, min(*q, *p)); k++ {
			fmt.Fprintf(w, "%d\t", zero[i-1][k-1])
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	// Critical paths across algorithms.
	fmt.Printf("\ncritical paths (units of nb³/3 flops):\n")
	for _, a := range tiledqr.Algorithms {
		cp, err := tiledqr.CriticalPath(a, *p, *q, tiledqr.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10v %5d\n", a, cp)
	}
	bs, cp := tiledqr.BestPlasmaBS(*p, *q, tiledqr.TT)
	fmt.Printf("  %-10v %5d (BS=%d, exhaustive sweep)\n", "PlasmaTree", cp, bs)

	// Worker sweep: simulated makespan under list scheduling. The knee is
	// where the area bound T/P crosses the critical path.
	fmt.Printf("\nsimulated makespan by worker count (%v):\n", algorithm)
	fmt.Printf("  %8s %10s %10s\n", "workers", "makespan", "efficiency")
	seq, err := tiledqr.SimulateWorkers(algorithm, *p, *q, 1, tiledqr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8, 16, 32, 48, 64} {
		ms, err := tiledqr.SimulateWorkers(algorithm, *p, *q, workers, tiledqr.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %8d %10.0f %9.0f%%\n", workers, ms, 100*seq/(float64(workers)*ms))
	}

	sharedRuntimeDemo(algorithm)
}

// sharedRuntimeDemo factors a fleet of matrices concurrently on one
// persistent runtime — the serving pattern: clients share the pool (with
// weighted-fair admission across their task DAGs) instead of each Factor
// call spawning its own workers.
func sharedRuntimeDemo(algorithm tiledqr.Algorithm) {
	const fleet = 8
	rt := tiledqr.NewRuntime(0) // 0 = GOMAXPROCS resident workers
	defer rt.Close()
	opt := tiledqr.Options{Algorithm: algorithm, TileSize: 64, InnerBlock: 16, Runtime: rt}

	fmt.Printf("\nshared runtime: %d concurrent factorizations on one %d-worker pool (%v):\n",
		fleet, rt.Workers(), algorithm)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < fleet; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			a := tiledqr.RandomDense(512, 256, int64(c+1))
			f, err := tiledqr.Factor(a, opt)
			if err != nil {
				log.Fatal(err)
			}
			_ = f.R()
		}(c)
	}
	wg.Wait()
	fmt.Printf("  fleet done in %v (per-call pools would have spawned %d×%d workers)\n",
		time.Since(start).Round(time.Millisecond), fleet, rt.Workers())

	// Steady-state serving: reuse one factorization's storage across
	// repeated same-shape problems — zero allocations per Refactor.
	f := &tiledqr.Factorization{}
	if err := tiledqr.FactorInto(f, tiledqr.RandomDense(512, 256, 1), opt); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	const reps = 5
	for i := 0; i < reps; i++ {
		if err := f.Refactor(tiledqr.RandomDense(512, 256, int64(i+2))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("  steady-state Refactor: %v per factorization, O(1) allocations\n",
		(time.Since(start) / reps).Round(time.Microsecond))
}
