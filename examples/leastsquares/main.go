// Least squares: the paper's headline motivation for tall-and-skinny QR.
//
// We fit a degree-7 polynomial to 4000 noisy samples by solving
// min‖V·c − y‖₂ where V is the 4000×8 Vandermonde matrix — exactly the
// m ≫ n regime (p ≫ q in tiles) where Greedy's short critical path beats
// PLASMA's flat tree.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"tiledqr"
)

func main() {
	const (
		samples = 4000
		degree  = 7
		nb      = 100
	)

	// True coefficients of the polynomial we pretend not to know.
	truth := []float64{0.8, -1.5, 0.3, 2.0, -0.7, 0.05, -0.4, 0.12}

	rng := rand.New(rand.NewSource(7))
	v := tiledqr.NewDense(samples, degree+1)
	y := tiledqr.NewDense(samples, 1)
	for i := 0; i < samples; i++ {
		x := -1 + 2*float64(i)/float64(samples-1)
		pow := 1.0
		yi := 0.0
		for j := 0; j <= degree; j++ {
			v.Set(i, j, pow)
			yi += truth[j] * pow
			pow *= x
		}
		y.Set(i, 0, yi+0.001*rng.NormFloat64()) // small measurement noise
	}

	f, err := tiledqr.Factor(v, tiledqr.Options{
		Algorithm: tiledqr.Greedy,
		TileSize:  nb,
	})
	if err != nil {
		log.Fatal(err)
	}
	c, err := f.SolveLS(y)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("coefficient  estimate      truth        error")
	var worst float64
	for j := 0; j <= degree; j++ {
		e := math.Abs(c.At(j, 0) - truth[j])
		worst = math.Max(worst, e)
		fmt.Printf("   x^%d      %+.6f    %+.6f    %.2e\n", j, c.At(j, 0), truth[j], e)
	}
	fmt.Printf("\nmax coefficient error: %.2e\n", worst)

	// Residual diagnostics: for a least-squares solution the residual is
	// orthogonal to the column span of V.
	res := tiledqr.Mul(v, c)
	for i := 0; i < samples; i++ {
		res.Set(i, 0, y.At(i, 0)-res.At(i, 0))
	}
	fmt.Printf("‖y − V·c‖            = %.3e (noise floor)\n", tiledqr.FrobeniusNorm(res))
	fmt.Printf("‖Vᵀ(y − V·c)‖        = %.3e (normal equations)\n",
		tiledqr.FrobeniusNorm(tiledqr.Mul(tiledqr.Transpose(v), res)))

	p, q, _ := f.Grid()
	fmt.Printf("\ntile grid %d×%d — this is the p ≫ q regime of the paper's Section 4\n", p, q)
}
