package sched

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tiledqr/internal/core"
)

// Utilization summarizes a trace: per-worker busy fraction and the overall
// parallel efficiency (busy time / (workers × elapsed)).
type Utilization struct {
	PerWorker []float64
	Overall   float64
	Elapsed   time.Duration
}

// Utilization computes worker occupancy from the recorded spans.
func (tr *Trace) Utilization() Utilization {
	u := Utilization{PerWorker: make([]float64, tr.Workers), Elapsed: tr.Elapsed}
	if tr.Elapsed <= 0 || len(tr.Spans) == 0 {
		return u
	}
	busy := make([]time.Duration, tr.Workers)
	var total time.Duration
	for _, s := range tr.Spans {
		d := s.End - s.Start
		busy[s.Worker] += d
		total += d
	}
	for w := range u.PerWorker {
		u.PerWorker[w] = float64(busy[w]) / float64(tr.Elapsed)
	}
	u.Overall = float64(total) / float64(tr.Workers) / float64(tr.Elapsed)
	return u
}

// KindBreakdown returns the cumulative time spent per kernel kind.
func (tr *Trace) KindBreakdown(d *core.DAG) map[core.Kind]time.Duration {
	out := map[core.Kind]time.Duration{}
	for _, s := range tr.Spans {
		out[d.Tasks[s.Task].Kind] += s.End - s.Start
	}
	return out
}

// Gantt renders an ASCII Gantt chart of the trace, one row per worker,
// width columns wide. Each cell shows the kernel kind occupying most of
// that time slice (G=GEQRT, U=UNMQR, S=TSQRT, M=TSMQR, T=TTQRT, R=TTMQR,
// '.' = idle).
func (tr *Trace) Gantt(d *core.DAG, width int) string {
	if len(tr.Spans) == 0 || tr.Elapsed <= 0 {
		return "(no trace)\n"
	}
	if width < 10 {
		width = 10
	}
	letters := map[core.Kind]byte{
		core.KGEQRT: 'G', core.KUNMQR: 'U', core.KTSQRT: 'S',
		core.KTSMQR: 'M', core.KTTQRT: 'T', core.KTTMQR: 'R',
	}
	rows := make([][]byte, tr.Workers)
	occupancy := make([][]time.Duration, tr.Workers)
	for w := range rows {
		rows[w] = []byte(strings.Repeat(".", width))
		occupancy[w] = make([]time.Duration, width)
	}
	slice := tr.Elapsed / time.Duration(width)
	if slice <= 0 {
		slice = 1
	}
	spans := append([]Span(nil), tr.Spans...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, s := range spans {
		first := int(s.Start / slice)
		last := int((s.End - 1) / slice)
		if s.End <= s.Start {
			last = first
		}
		for c := first; c <= last && c < width; c++ {
			cellStart := time.Duration(c) * slice
			cellEnd := cellStart + slice
			overlap := minDur(s.End, cellEnd) - maxDur(s.Start, cellStart)
			if overlap > occupancy[s.Worker][c] {
				occupancy[s.Worker][c] = overlap
				rows[s.Worker][c] = letters[d.Tasks[s.Task].Kind]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Gantt (%v total, %v per column)\n", tr.Elapsed.Round(time.Microsecond), slice.Round(time.Microsecond))
	for w, row := range rows {
		fmt.Fprintf(&b, "w%-2d |%s|\n", w, row)
	}
	b.WriteString("G=GEQRT U=UNMQR S=TSQRT M=TSMQR T=TTQRT R=TTMQR .=idle\n")
	return b.String()
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
