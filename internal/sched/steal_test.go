package sched

import (
	"sync/atomic"
	"testing"

	"tiledqr/internal/core"
)

// TestStealingStress runs many small DAGs of every shape class through the
// work-stealing runtime and asserts, for each, that every task ran exactly
// once, that live dependency order was respected, and that the recorded
// trace validates. Run under -race this doubles as the scheduler's memory
// model check.
func TestStealingStress(t *testing.T) {
	shapes := [][2]int{
		{1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 2}, {5, 1}, {1, 5},
		{4, 4}, {6, 3}, {8, 2}, {10, 5}, {7, 7}, {12, 4},
	}
	algs := []func(p, q int) core.List{
		core.GreedyList, core.FlatTreeList, core.BinaryTreeList, core.FibonacciList,
	}
	for _, workers := range []int{2, 3, 4, 8} {
		for _, shape := range shapes {
			p, q := shape[0], shape[1]
			if q > p {
				continue
			}
			for ai, alg := range algs {
				d := core.BuildDAG(alg(p, q), core.TT)
				counts := make([]int32, d.NumTasks())
				ended := make([]atomic.Bool, d.NumTasks())
				var violations atomic.Int32
				tr, err := Run(d, Options{Workers: workers, Trace: true}, func(task int32, w int) {
					if w < 0 || w >= workers {
						panic("worker id out of range")
					}
					for _, pr := range d.Preds(int(task)) {
						if !ended[pr].Load() {
							violations.Add(1)
						}
					}
					atomic.AddInt32(&counts[task], 1)
					ended[task].Store(true)
				})
				if err != nil {
					t.Fatalf("alg %d %dx%d workers=%d: %v", ai, p, q, workers, err)
				}
				for task, c := range counts {
					if c != 1 {
						t.Fatalf("alg %d %dx%d workers=%d: task %d ran %d times", ai, p, q, workers, task, c)
					}
				}
				if v := violations.Load(); v != 0 {
					t.Fatalf("alg %d %dx%d workers=%d: %d dependency violations", ai, p, q, workers, v)
				}
				if err := tr.Validate(d); err != nil {
					t.Fatalf("alg %d %dx%d workers=%d: %v", ai, p, q, workers, err)
				}
			}
		}
	}
}

// TestSequentialDeterminism: Workers=1 must execute the identical task
// sequence on every run (the topological order), so single-threaded
// factorizations are bitwise reproducible.
func TestSequentialDeterminism(t *testing.T) {
	d := core.BuildDAG(core.GreedyList(12, 6), core.TT)
	var first []int32
	for run := 0; run < 5; run++ {
		var order []int32
		if _, err := Run(d, Options{Workers: 1}, func(task int32, _ int) {
			order = append(order, task)
		}); err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = order
			continue
		}
		if len(order) != len(first) {
			t.Fatalf("run %d executed %d tasks, first run %d", run, len(order), len(first))
		}
		for i := range order {
			if order[i] != first[i] {
				t.Fatalf("run %d diverged at step %d: task %d vs %d", run, i, order[i], first[i])
			}
		}
	}
}

// TestPriorities checks the b-level invariants: every task's priority
// exceeds each successor's by exactly its own weight along some maximal
// path, sinks carry their own weight, and the maximum equals the DAG's
// critical path in Table 1 units.
func TestPriorities(t *testing.T) {
	d := core.BuildDAG(core.GreedyList(8, 4), core.TT)
	prio := Priorities(d)
	succOff, succs := d.Succs()
	var maxPrio int64
	for task := 0; task < d.NumTasks(); task++ {
		w := int64(d.Tasks[task].Kind.Weight())
		ss := succs[succOff[task]:succOff[task+1]]
		if len(ss) == 0 {
			if prio[task] != w {
				t.Fatalf("sink %v: priority %d, want own weight %d", d.Tasks[task], prio[task], w)
			}
		} else {
			var best int64
			for _, s := range ss {
				if prio[s] > best {
					best = prio[s]
				}
			}
			if prio[task] != best+w {
				t.Fatalf("task %v: priority %d, want %d", d.Tasks[task], prio[task], best+w)
			}
		}
		if prio[task] > maxPrio {
			maxPrio = prio[task]
		}
	}
	if maxPrio <= 0 {
		t.Fatal("no positive critical path")
	}
	// Factor kernels dominate their own update kernels: a GEQRT's priority
	// must exceed every UNMQR it feeds.
	for task, tk := range d.Tasks {
		if tk.Kind != core.KUNMQR {
			continue
		}
		for _, p := range d.Preds(task) {
			if d.Tasks[p].Kind == core.KGEQRT && prio[p] <= prio[task] {
				t.Fatalf("GEQRT %v priority %d not above its UNMQR %v (%d)",
					d.Tasks[p], prio[p], tk, prio[task])
			}
		}
	}
}

// TestRunManySmallDAGsSequentially exercises scheduler startup/shutdown
// cost paths repeatedly (the steady-state pattern of a service factoring
// many small matrices).
func TestRunManySmallDAGsSequentially(t *testing.T) {
	d := core.BuildDAG(core.GreedyList(4, 2), core.TT)
	for i := 0; i < 200; i++ {
		ran := int32(0)
		if _, err := Run(d, Options{Workers: 3}, func(int32, int) {
			atomic.AddInt32(&ran, 1)
		}); err != nil {
			t.Fatal(err)
		}
		if int(ran) != d.NumTasks() {
			t.Fatalf("iteration %d: ran %d of %d tasks", i, ran, d.NumTasks())
		}
	}
}
