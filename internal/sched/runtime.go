// The persistent runtime: one resident pool of workers executing the task
// DAGs of any number of concurrently submitted factorizations, the way
// PLASMA's dynamic scheduler owns the machine's cores for the lifetime of
// the process rather than spawning threads per factorization.
//
// Scheduling discipline (three levels):
//
//   - Within a job (one submitted DAG), ready tasks are ordered by
//     critical-path priority exactly as before: the weighted longest path
//     to a sink using the paper's Table 1 kernel weights, so factor
//     kernels on the critical path run ahead of trailing updates.
//   - Across jobs, admission is weighted-fair: every job accumulates
//     virtual time (the Table 1 weight of its executed tasks), and a
//     worker choosing between jobs serves the one with the least virtual
//     time. A huge factorization therefore cannot starve a fleet of small
//     ones — the small jobs' virtual clocks stay behind and they win the
//     next selection — while a lone job still gets every worker.
//   - For cache locality, a worker sticks with its current job for a
//     quantum of executed weight before reconsidering, so fair sharing
//     interleaves at the granularity of several tiles, not single tasks.
//
// Completion, dependency counters, and tracing are all per-job. A task
// error (kernel dispatch failure or panic) cancels the job: queued tasks
// of that job are dropped instead of executed, no new successors are
// released, and the submitter is unblocked as soon as the job's in-flight
// tasks drain — it never waits for the rest of the DAG. Cancelling the
// job's context (Options.Ctx) takes the same path with ctx.Err() as the
// job error, so an abandoned factorization stops consuming workers as
// soon as its in-flight tasks finish, while every other job keeps running
// untouched.
package sched

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tiledqr/internal/core"
)

// NumLocalSlots is the number of opaque scratch slots in a Local.
const NumLocalSlots = 8

// ErrClosed and ErrDraining are returned by Exec when the runtime no
// longer admits jobs; submitting never hangs or panics, whatever state the
// runtime is in.
var (
	ErrClosed   = fmt.Errorf("sched: submit on a closed runtime")
	ErrDraining = fmt.Errorf("sched: submit on a draining runtime")
)

// Local is the per-worker scratch box handed to Exec callbacks. Exactly one
// task uses a given Local at a time (pool workers own one each; inline runs
// borrow one from a pool), so callers may cache grow-only buffers in Slots
// without synchronization — the engine keeps one kernel workspace per
// arithmetic domain there, reused across every job the worker executes.
type Local struct {
	ID    int // pool worker index in [0, Workers); 0 on inline runs
	Slots [NumLocalSlots]any
}

// Exec executes one task using the per-worker scratch loc. A non-nil error
// cancels the task's job promptly (outstanding tasks are dropped).
type Exec func(t int32, loc *Local) error

// weight returns the Table 1 weight of a kind, tolerating corrupted kinds
// (a malformed DAG must surface as a dispatch error, not a panic here).
func weight(k core.Kind) int64 {
	if k > core.KTTMQR {
		return 1
	}
	return int64(k.Weight())
}

// Plan is a DAG prepared for (repeated) execution: successor adjacency,
// critical-path priorities, initial dependency counts, and the sorted
// source tasks, computed once so steady-state re-execution allocates
// nothing here. The working dependency counters live in the Plan too, so a
// Plan must not be executed concurrently with itself (executing the same
// factorization's DAG concurrently would race on the tiles anyway).
type Plan struct {
	d       *core.DAG
	succOff []int32
	succs   []int32
	prio    []int64
	indeg0  []int32 // initial in-degrees
	indeg   []int32 // working counters, reset from indeg0 at submit
	sources []int32 // zero-indegree tasks, by descending priority
}

// NewPlan prepares a DAG for execution on a Runtime.
func NewPlan(d *core.DAG) *Plan {
	n := d.NumTasks()
	p := &Plan{d: d, prio: Priorities(d), indeg0: make([]int32, n), indeg: make([]int32, n)}
	p.succOff, p.succs = d.Succs()
	for t := 0; t < n; t++ {
		p.indeg0[t] = int32(len(d.Preds(t)))
		if p.indeg0[t] == 0 {
			p.sources = append(p.sources, int32(t))
		}
	}
	sort.Slice(p.sources, func(a, b int) bool { return p.prio[p.sources[a]] > p.prio[p.sources[b]] })
	return p
}

// DAG returns the plan's task DAG.
func (p *Plan) DAG() *core.DAG { return p.d }

// job is one submitted DAG execution in flight on a runtime.
type job struct {
	plan *Plan
	exec Exec
	seq  uint64       // admission order, tie-break for fair selection
	vt   atomic.Int64 // executed weight: the fair-share virtual time

	remaining atomic.Int64 // tasks not yet retired (executed or dropped)
	executing atomic.Int32 // tasks currently inside exec
	canceled  atomic.Bool
	failOnce  sync.Once
	errMu     sync.Mutex
	errv      error
	doneOnce  sync.Once
	done      chan struct{}

	trace   bool
	statsOn bool
	busyNS  atomic.Int64 // summed task time, when statsOn or trace
	ran     atomic.Int64 // tasks actually executed (not dropped)
	start   time.Time
	spansMu sync.Mutex
	spans   []Span
}

func (j *job) complete() { j.doneOnce.Do(func() { close(j.done) }) }

// fail records the job's first error and cancels it. The job completes when
// its in-flight tasks drain; queued tasks are dropped un-executed.
func (j *job) fail(err error) {
	j.failOnce.Do(func() {
		j.errMu.Lock()
		j.errv = err
		j.errMu.Unlock()
		j.canceled.Store(true)
	})
}

func (j *job) loadErr() error {
	j.errMu.Lock()
	defer j.errMu.Unlock()
	return j.errv
}

// jobQ is the ready-task heap of one job within one worker's deque: a
// hand-rolled max-heap on the plan's critical-path priorities.
type jobQ struct {
	j     *job
	tasks []int32
}

// deque is one worker's pool of ready tasks, segregated by job so that
// cross-job fairness (pick a job) and within-job priority (pick its most
// critical task) stay independent. The job list is scanned linearly: the
// number of in-flight jobs with ready work on one worker is small.
type deque struct {
	mu    sync.Mutex
	jobs  []jobQ
	spare [][]int32 // recycled task-slice capacity from drained jobs
}

// push adds a ready task of job j.
func (q *deque) push(j *job, t int32) {
	q.mu.Lock()
	qi := -1
	for i := range q.jobs {
		if q.jobs[i].j == j {
			qi = i
			break
		}
	}
	if qi < 0 {
		var buf []int32
		if n := len(q.spare); n > 0 {
			buf = q.spare[n-1][:0]
			q.spare = q.spare[:n-1]
		}
		q.jobs = append(q.jobs, jobQ{j: j, tasks: buf})
		qi = len(q.jobs) - 1
	}
	jq := &q.jobs[qi]
	prio := j.plan.prio
	jq.tasks = append(jq.tasks, t)
	tasks := jq.tasks
	i := len(tasks) - 1
	for i > 0 {
		p := (i - 1) / 2
		if prio[tasks[p]] >= prio[tasks[i]] {
			break
		}
		tasks[p], tasks[i] = tasks[i], tasks[p]
		i = p
	}
	q.mu.Unlock()
}

// popHeap removes the root of q.jobs[qi]'s heap, retiring the jobQ when it
// drains. Callers hold q.mu.
func (q *deque) popHeap(qi int) int32 {
	jq := &q.jobs[qi]
	tasks, prio := jq.tasks, jq.j.plan.prio
	top := tasks[0]
	n := len(tasks) - 1
	tasks[0] = tasks[n]
	jq.tasks = tasks[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && prio[tasks[r]] > prio[tasks[c]] {
			c = r
		}
		if prio[tasks[i]] >= prio[tasks[c]] {
			break
		}
		tasks[i], tasks[c] = tasks[c], tasks[i]
		i = c
	}
	if n == 0 {
		q.retire(qi)
	}
	return top
}

// retire removes a drained jobQ, recycling its task-slice capacity.
// Callers hold q.mu.
func (q *deque) retire(qi int) {
	buf := q.jobs[qi].tasks[:0]
	last := len(q.jobs) - 1
	q.jobs[qi] = q.jobs[last]
	q.jobs[last] = jobQ{}
	q.jobs = q.jobs[:last]
	if len(q.spare) < 8 {
		q.spare = append(q.spare, buf)
	}
}

// popJob removes the highest-priority ready task of job j, if present —
// the stickiness fast path that keeps a worker on its current job.
func (q *deque) popJob(j *job) (int32, bool) {
	q.mu.Lock()
	for i := range q.jobs {
		if q.jobs[i].j == j {
			t := q.popHeap(i)
			q.mu.Unlock()
			return t, true
		}
	}
	q.mu.Unlock()
	return 0, false
}

// fairest returns the index of the job with the least virtual time
// (admission order breaks ties), or -1. Callers hold q.mu.
func (q *deque) fairest() int {
	best := -1
	var bestVT int64
	var bestSeq uint64
	for i := range q.jobs {
		vt := q.jobs[i].j.vt.Load()
		if best < 0 || vt < bestVT || (vt == bestVT && q.jobs[i].j.seq < bestSeq) {
			best, bestVT, bestSeq = i, vt, q.jobs[i].j.seq
		}
	}
	return best
}

// popFair removes the most critical task of the fairest job.
func (q *deque) popFair() (*job, int32, bool) {
	q.mu.Lock()
	qi := q.fairest()
	if qi < 0 {
		q.mu.Unlock()
		return nil, 0, false
	}
	j := q.jobs[qi].j
	t := q.popHeap(qi)
	q.mu.Unlock()
	return j, t, true
}

// stealFair removes a trailing heap leaf (locally low priority) of the
// fairest job — O(1) and guaranteed not to be the victim's most critical
// task of that job.
func (q *deque) stealFair() (*job, int32, bool) {
	q.mu.Lock()
	qi := q.fairest()
	if qi < 0 {
		q.mu.Unlock()
		return nil, 0, false
	}
	jq := &q.jobs[qi]
	j := jq.j
	n := len(jq.tasks) - 1
	t := jq.tasks[n]
	jq.tasks = jq.tasks[:n]
	if n == 0 {
		q.retire(qi)
	}
	q.mu.Unlock()
	return j, t, true
}

// fairQuantum is how much executed weight (Table 1 units; one unit is
// nb³/3 flops) a worker spends on one job before reconsidering fairness.
// Coarse enough to amortize cache refills across several tile kernels,
// fine enough that a fleet of small jobs interleaves with a huge one.
const fairQuantum = 64

// Runtime is a persistent pool of worker goroutines executing the task
// DAGs of concurrently submitted jobs. Create one per process (see
// Default) or per isolation domain; Close releases the workers.
type Runtime struct {
	workers  int
	deques   []deque
	locals   []Local
	notify   chan struct{} // wake tokens for parked workers, cap == workers
	parked   atomic.Int32
	shutdown chan struct{}

	mu       sync.Mutex
	closed   bool
	draining bool
	inflight int             // jobs submitted and not yet completed
	idlers   []chan struct{} // waiters (Close/Drain) signaled when inflight hits 0
	active   []*job          // jobs in flight, for the admission vt floor
	wg       sync.WaitGroup  // worker goroutines
	seq      atomic.Uint64
	isDef    bool
}

// DefaultWorkers returns the worker count a runtime sized with workers ≤ 0
// gets: the TILEDQR_WORKERS environment variable when it parses as a
// positive integer, else GOMAXPROCS. The env override lets container
// deployments cap the library's parallelism without a code change (a
// cgroup CPU quota does not lower GOMAXPROCS on its own); malformed or
// non-positive values are ignored rather than honored surprisingly.
func DefaultWorkers() int {
	if s := os.Getenv("TILEDQR_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// NewRuntime starts a runtime with the given number of workers (≤ 0 means
// DefaultWorkers: TILEDQR_WORKERS if set, else GOMAXPROCS). The workers are
// goroutines that park when idle; Close stops them.
func NewRuntime(workers int) *Runtime {
	if workers < 1 {
		workers = DefaultWorkers()
	}
	rt := &Runtime{
		workers:  workers,
		deques:   make([]deque, workers),
		locals:   make([]Local, workers),
		notify:   make(chan struct{}, workers),
		shutdown: make(chan struct{}),
	}
	for i := range rt.locals {
		rt.locals[i].ID = i
	}
	rt.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go rt.worker(i)
	}
	return rt
}

var (
	defaultOnce sync.Once
	defaultRT   *Runtime
)

// Default returns the process-wide shared runtime (DefaultWorkers workers,
// honoring TILEDQR_WORKERS), started on first use. Closing it is a no-op:
// it lives for the process.
func Default() *Runtime {
	defaultOnce.Do(func() {
		defaultRT = NewRuntime(0)
		defaultRT.isDef = true
	})
	return defaultRT
}

// Workers returns the size of the worker pool.
func (rt *Runtime) Workers() int { return rt.workers }

// Stats is a point-in-time snapshot of a runtime's load, the observability
// feed for a serving front end's /statsz endpoint and for admission
// decisions (queue-depth backpressure).
type Stats struct {
	Workers     int  // size of the worker pool
	QueuedTasks int  // ready tasks waiting in worker deques, across all jobs
	InFlight    int  // jobs submitted and not yet completed
	Draining    bool // Drain was called: new submissions are rejected
	Closed      bool // Close was called
}

// Stats snapshots the runtime's current load. The queued-task count is a
// consistent-enough sum taken deque by deque (each under its own lock);
// tasks in the middle of a steal may be counted zero or one times, which is
// fine for load reporting and backpressure thresholds.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	st := Stats{
		Workers:  rt.workers,
		InFlight: rt.inflight,
		Draining: rt.draining,
		Closed:   rt.closed,
	}
	rt.mu.Unlock()
	for i := range rt.deques {
		q := &rt.deques[i]
		q.mu.Lock()
		for j := range q.jobs {
			st.QueuedTasks += len(q.jobs[j].tasks)
		}
		q.mu.Unlock()
	}
	return st
}

// Close waits for in-flight jobs to complete, then stops every worker and
// waits for them to exit. Further Exec calls return an error. Close is
// idempotent: concurrent and repeated calls all block until the workers
// are gone and then return. Closing the Default runtime is a no-op.
func (rt *Runtime) Close() {
	if rt.isDef {
		return
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		rt.wg.Wait()
		return
	}
	rt.closed = true
	rt.mu.Unlock()
	rt.awaitIdle(nil)
	close(rt.shutdown)
	rt.wg.Wait()
}

// Drain gracefully winds the runtime down: admission stops (further Exec
// calls return an error) and Drain blocks until every in-flight job has
// completed or ctx expires, returning ctx.Err() in the latter case — the
// deadline-bounded shutdown a serving front end needs. Jobs still running
// at the deadline keep running (cancel them through their own contexts);
// a subsequent Close reaps the workers. On the Default runtime Drain only
// waits for the runtime to go idle — the process-wide pool never refuses
// admission.
func (rt *Runtime) Drain(ctx context.Context) error {
	if !rt.isDef {
		rt.mu.Lock()
		rt.draining = true
		rt.mu.Unlock()
	}
	return rt.awaitIdle(ctx)
}

// awaitIdle blocks until no job is in flight, or until ctx (when non-nil)
// is done. Waiters register a channel closed by the job that takes
// inflight to zero, so an expired wait leaves nothing behind but an
// already-registered channel — no polling, no helper goroutine to leak.
func (rt *Runtime) awaitIdle(ctx context.Context) error {
	rt.mu.Lock()
	if rt.inflight == 0 {
		rt.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	rt.idlers = append(rt.idlers, ch)
	rt.mu.Unlock()
	if ctx == nil {
		<-ch
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jobDone retires one in-flight job, waking Close/Drain waiters when the
// runtime goes idle.
func (rt *Runtime) jobDone() {
	rt.mu.Lock()
	rt.inflight--
	if rt.inflight == 0 {
		for _, ch := range rt.idlers {
			close(ch)
		}
		rt.idlers = nil
	}
	rt.mu.Unlock()
}

// wakeOne mints a wake token if any worker is parked. The channel holds at
// most one token per worker, so a dropped send means every parked worker
// already has a token to consume — and every consumed token is followed by
// a full rescan, so no pushed task is ever lost.
func (rt *Runtime) wakeOne() {
	if rt.parked.Load() > 0 {
		select {
		case rt.notify <- struct{}{}:
		default:
		}
	}
}

// Exec runs every task of the plan's DAG on the pool, honoring
// dependencies, and blocks until the job completes, is canceled by a task
// error, or is canceled by Options.Ctx. Safe for concurrent use from any
// number of goroutines; each call is an independent job under the fair
// cross-job discipline. The returned Trace has Spans only when opt.Trace
// is set.
//
// On cancellation (task error, panic, or context) the job's in-flight
// tasks run to completion, its queued tasks are dropped un-executed, and
// Exec returns as soon as the in-flight tasks drain — dropped tasks never
// touch the Plan's dependency counters, so the Plan may be re-submitted
// immediately even while its dropped tasks are still being swept out of
// the worker deques.
func (rt *Runtime) Exec(p *Plan, opt Options, exec Exec) (*Trace, error) {
	rt.mu.Lock()
	switch {
	case rt.closed:
		rt.mu.Unlock()
		return nil, ErrClosed
	case rt.draining:
		rt.mu.Unlock()
		return nil, ErrDraining
	}
	rt.inflight++
	rt.mu.Unlock()
	defer rt.jobDone()

	var cancelCh <-chan struct{}
	if opt.Ctx != nil {
		// A context that is already dead never submits: the caller gets
		// ctx.Err() without a single task executing.
		if err := opt.Ctx.Err(); err != nil {
			return nil, err
		}
		cancelCh = opt.Ctx.Done()
	}
	n := p.d.NumTasks()
	if n == 0 {
		return &Trace{Workers: rt.workers}, nil
	}
	j := &job{
		plan:    p,
		exec:    exec,
		seq:     rt.seq.Add(1),
		trace:   opt.Trace,
		statsOn: opt.Stats != nil,
		start:   time.Now(),
		done:    make(chan struct{}),
	}
	j.remaining.Store(int64(n))
	if opt.Trace {
		j.spans = make([]Span, 0, n)
	}
	// Admit at the pool's minimum active virtual time (the CFS floor): a
	// new job gets ahead of everything that has already consumed more
	// work, but a sustained stream of fresh small jobs cannot pin a
	// long-running job at the back of the queue forever.
	rt.mu.Lock()
	var floor int64
	for i, a := range rt.active {
		if vt := a.vt.Load(); i == 0 || vt < floor {
			floor = vt
		}
	}
	j.vt.Store(floor)
	rt.active = append(rt.active, j)
	rt.mu.Unlock()
	defer func() {
		rt.mu.Lock()
		for i, a := range rt.active {
			if a == j {
				last := len(rt.active) - 1
				rt.active[i] = rt.active[last]
				rt.active[last] = nil
				rt.active = rt.active[:last]
				break
			}
		}
		rt.mu.Unlock()
	}()
	copy(p.indeg, p.indeg0)
	// Seed the sources (already sorted by descending priority) round-robin
	// across the deques, rotating the starting worker per job so
	// concurrent small jobs spread over the pool.
	base := int(j.seq % uint64(rt.workers))
	for k, t := range p.sources {
		rt.deques[(base+k)%rt.workers].push(j, t)
	}
	for k := 0; k < rt.workers && k < len(p.sources); k++ {
		rt.wakeOne()
	}
	if cancelCh == nil {
		<-j.done
	} else {
		select {
		case <-j.done:
		case <-cancelCh:
			j.fail(opt.Ctx.Err())
			// With no task inside exec the workers may take a while to
			// sweep the dropped tasks; complete the job now so the
			// submitter unblocks immediately. Any worker that raced past
			// the cancel flag completes it again harmlessly (doneOnce),
			// and has already made the job visible in `executing`.
			if j.executing.Load() == 0 {
				j.complete()
			}
			<-j.done
		}
	}
	tr := &Trace{Workers: rt.workers, Elapsed: time.Since(j.start)}
	if opt.Trace {
		j.spansMu.Lock()
		tr.Spans = j.spans
		j.spansMu.Unlock()
	}
	if opt.Stats != nil {
		*opt.Stats = JobStats{
			Tasks: j.ran.Load(),
			Busy:  time.Duration(j.busyNS.Load()),
			Wall:  tr.Elapsed,
		}
	}
	return tr, j.loadErr()
}

// scan tries the worker's own deque (fair order), then steals a leaf from
// every victim in turn.
func (rt *Runtime) scan(id int) (*job, int32, bool) {
	j, t, ok := rt.deques[id].popFair()
	for v := 1; !ok && v < rt.workers; v++ {
		j, t, ok = rt.deques[(id+v)%rt.workers].stealFair()
	}
	return j, t, ok
}

func (rt *Runtime) worker(id int) {
	defer rt.wg.Done()
	loc := &rt.locals[id]
	self := &rt.deques[id]
	var cur *job
	var budget int64
	for {
		var j *job
		var t int32
		ok := false
		// Stickiness: stay on the current job while its quantum lasts and
		// it has ready tasks here (the tiles it just wrote are hot).
		if cur != nil && budget > 0 {
			if t, ok = self.popJob(cur); ok {
				j = cur
			}
		}
		if !ok {
			if j, t, ok = rt.scan(id); ok {
				cur, budget = j, fairQuantum
			}
		}
		if !ok {
			// Park protocol: declare parked, rescan (lossless handshake
			// with push — the rescan locks the same deque mutexes), then
			// wait for a wake token.
			rt.parked.Add(1)
			if j, t, ok = rt.scan(id); ok {
				rt.parked.Add(-1)
				cur, budget = j, fairQuantum
			} else {
				cur = nil // don't pin a completed job while parked
				select {
				case <-rt.notify:
					rt.parked.Add(-1)
					continue
				case <-rt.shutdown:
					rt.parked.Add(-1)
					return
				}
			}
		}
		budget -= weight(j.plan.d.Tasks[t].Kind)
		rt.runOne(j, t, loc, self)
	}
}

// runOne executes (or, for a canceled job, drops) one task and does the
// job bookkeeping: successor release, fairness clock, completion.
func (rt *Runtime) runOne(j *job, t int32, loc *Local, self *deque) {
	// The executing counter is raised before the cancel check and held
	// until after the successor release below, so that a concurrent
	// fail() cannot observe executing == 0 (and unblock the submitter)
	// while this worker is about to run the task — or is still
	// decrementing the plan's shared dependency counters. Once Exec
	// returns, no task of the job is inside exec and the Plan is quiescent
	// (safe to re-submit).
	j.executing.Add(1)
	if j.canceled.Load() {
		if j.executing.Add(-1) == 0 && j.canceled.Load() {
			j.complete()
		}
		j.remaining.Add(-1)
		return
	}
	if err := j.runTask(t, loc); err != nil {
		j.fail(err)
	}
	if !j.canceled.Load() {
		p := j.plan
		for _, s := range p.succs[p.succOff[t]:p.succOff[t+1]] {
			if atomic.AddInt32(&p.indeg[s], -1) == 0 {
				self.push(j, s)
				rt.wakeOne()
			}
		}
		j.vt.Add(weight(p.d.Tasks[t].Kind))
	}
	if j.executing.Add(-1) == 0 && j.canceled.Load() {
		j.complete()
	}
	if j.remaining.Add(-1) == 0 {
		j.complete()
	}
}

// runTask executes one task, converting panics into errors and recording a
// span when tracing.
func (j *job) runTask(t int32, loc *Local) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: task %v panicked: %v", j.plan.d.Tasks[t], r)
		}
	}()
	var t0 time.Duration
	if j.trace || j.statsOn {
		t0 = time.Since(j.start)
	}
	err = j.exec(t, loc)
	if j.trace || j.statsOn {
		t1 := time.Since(j.start)
		j.busyNS.Add(int64(t1 - t0))
		j.ran.Add(1)
		if j.trace {
			j.spansMu.Lock()
			j.spans = append(j.spans, Span{Task: t, Worker: loc.ID, Start: t0, End: t1})
			j.spansMu.Unlock()
		}
	}
	return err
}

// inlineLocals lends Local boxes to inline (caller-goroutine) runs.
var inlineLocals = sync.Pool{New: func() any { return &Local{} }}

// RunInline executes every task of the DAG sequentially in topological
// (ID) order on the calling goroutine: the deterministic Workers == 1 path,
// also used for DAGs too small to be worth a cross-goroutine hop. Stops at
// the first task error or panic, and — when ctx is non-nil — at the first
// task boundary after ctx is done, returning ctx.Err(). A nil (or
// never-canceled background) ctx costs nothing per task.
func RunInline(ctx context.Context, d *core.DAG, trace bool, exec Exec) (*Trace, error) {
	loc := inlineLocals.Get().(*Local)
	defer inlineLocals.Put(loc)
	var cancelCh <-chan struct{}
	if ctx != nil {
		cancelCh = ctx.Done()
	}
	start := time.Now()
	tr := &Trace{Workers: 1}
	if trace {
		tr.Spans = make([]Span, 0, d.NumTasks())
	}
	for t := 0; t < d.NumTasks(); t++ {
		if cancelCh != nil {
			select {
			case <-cancelCh:
				tr.Elapsed = time.Since(start)
				return tr, ctx.Err()
			default:
			}
		}
		var t0 time.Duration
		if trace {
			t0 = time.Since(start)
		}
		if err := runInlineTask(d, int32(t), loc, exec); err != nil {
			tr.Elapsed = time.Since(start)
			return tr, err
		}
		if trace {
			tr.Spans = append(tr.Spans, Span{Task: int32(t), Worker: 0, Start: t0, End: time.Since(start)})
		}
	}
	tr.Elapsed = time.Since(start)
	return tr, nil
}

// runInlineTask runs one task inline, converting panics into errors.
func runInlineTask(d *core.DAG, t int32, loc *Local, exec Exec) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: task %v panicked: %v", d.Tasks[t], r)
		}
	}()
	return exec(t, loc)
}
