package sched

import (
	"runtime"
	"testing"
)

func TestStatsIdleAndClosed(t *testing.T) {
	rt := NewRuntime(3)
	st := rt.Stats()
	if st.Workers != 3 {
		t.Fatalf("Workers = %d, want 3", st.Workers)
	}
	if st.QueuedTasks != 0 || st.InFlight != 0 {
		t.Fatalf("idle runtime reports queued=%d inflight=%d", st.QueuedTasks, st.InFlight)
	}
	if st.Draining || st.Closed {
		t.Fatalf("idle runtime reports draining=%v closed=%v", st.Draining, st.Closed)
	}
	rt.Close()
	if st = rt.Stats(); !st.Closed {
		t.Fatal("closed runtime reports Closed = false")
	}
}

func TestDefaultWorkersEnv(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		val  string
		want int
	}{
		{"3", 3},
		{"1", 1},
		{"", procs},      // unset/empty falls back
		{"bogus", procs}, // non-numeric ignored
		{"0", procs},     // non-positive ignored
		{"-2", procs},    // non-positive ignored
		{"2.5", procs},   // non-integer ignored
	}
	for _, tc := range cases {
		t.Setenv("TILEDQR_WORKERS", tc.val)
		if got := DefaultWorkers(); got != tc.want {
			t.Errorf("TILEDQR_WORKERS=%q: DefaultWorkers() = %d, want %d", tc.val, got, tc.want)
		}
	}
	// NewRuntime(0) sizes from the override too.
	t.Setenv("TILEDQR_WORKERS", "2")
	rt := NewRuntime(0)
	defer rt.Close()
	if rt.Workers() != 2 {
		t.Fatalf("NewRuntime(0).Workers() = %d with TILEDQR_WORKERS=2", rt.Workers())
	}
	// An explicit worker count always wins over the environment.
	rt4 := NewRuntime(4)
	defer rt4.Close()
	if rt4.Workers() != 4 {
		t.Fatalf("NewRuntime(4).Workers() = %d with TILEDQR_WORKERS=2", rt4.Workers())
	}
}
