package sched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"tiledqr/internal/core"
)

func testDAG() *core.DAG {
	return core.BuildDAG(core.GreedyList(10, 5), core.TT)
}

func TestRunExecutesEveryTaskOnce(t *testing.T) {
	d := testDAG()
	for _, workers := range []int{1, 2, 4, 8} {
		counts := make([]int32, d.NumTasks())
		_, err := Run(d, Options{Workers: workers}, func(task int32, w int) {
			atomic.AddInt32(&counts[task], 1)
			if w < 0 || w >= workers {
				panic(fmt.Sprintf("worker id %d out of range", w))
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: task %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestRunRespectsDependencies(t *testing.T) {
	d := testDAG()
	for _, workers := range []int{2, 4} {
		done := make([]atomic.Bool, d.NumTasks())
		var violations atomic.Int32
		_, err := Run(d, Options{Workers: workers}, func(task int32, _ int) {
			for _, p := range d.Preds(int(task)) {
				if !done[p].Load() {
					violations.Add(1)
				}
			}
			done[task].Store(true)
		})
		if err != nil {
			t.Fatal(err)
		}
		if v := violations.Load(); v != 0 {
			t.Fatalf("workers=%d: %d dependency violations", workers, v)
		}
	}
}

func TestRunTraceValidates(t *testing.T) {
	d := testDAG()
	tr, err := Run(d, Options{Workers: 4, Trace: true}, func(int32, int) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(d); err != nil {
		t.Fatal(err)
	}
	if tr.Workers != 4 {
		t.Errorf("trace workers = %d, want 4", tr.Workers)
	}
}

func TestRunPanicBecomesError(t *testing.T) {
	d := testDAG()
	for _, workers := range []int{1, 3} {
		_, err := Run(d, Options{Workers: workers}, func(task int32, _ int) {
			if task == 5 {
				panic(errors.New("boom"))
			}
		})
		if err == nil {
			t.Fatalf("workers=%d: panic not surfaced", workers)
		}
	}
}

func TestRunEmptyDAG(t *testing.T) {
	d := core.BuildDAG(core.List{P: 1, Q: 1}, core.TT)
	// A 1×1 grid has one GEQRT task; an empty list on a 1×1 grid still
	// triangularizes the diagonal.
	ran := 0
	if _, err := Run(d, Options{Workers: 2}, func(int32, int) { ran++ }); err != nil {
		t.Fatal(err)
	}
	if ran != d.NumTasks() {
		t.Fatalf("ran %d of %d tasks", ran, d.NumTasks())
	}
}

func TestSequentialIsTopological(t *testing.T) {
	d := testDAG()
	last := int32(-1)
	_, err := Run(d, Options{Workers: 1}, func(task int32, _ int) {
		if task <= last {
			t.Fatalf("sequential mode executed %d after %d", task, last)
		}
		last = task
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceValidateDetectsViolation(t *testing.T) {
	d := testDAG()
	tr, err := Run(d, Options{Workers: 2, Trace: true}, func(int32, int) {})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the trace: make a dependent task start before its
	// predecessor's end.
	for i := range tr.Spans {
		if len(d.Preds(int(tr.Spans[i].Task))) > 0 {
			tr.Spans[i].Start = -1
			break
		}
	}
	if err := tr.Validate(d); err == nil {
		t.Error("Validate accepted a corrupted trace")
	}
}

func TestUtilizationAndGantt(t *testing.T) {
	d := testDAG()
	busyWork := func(int32, int) {
		s := 0.0
		for i := 0; i < 20000; i++ {
			s += float64(i)
		}
		_ = s
	}
	tr, err := Run(d, Options{Workers: 2, Trace: true}, busyWork)
	if err != nil {
		t.Fatal(err)
	}
	u := tr.Utilization()
	if len(u.PerWorker) != 2 {
		t.Fatalf("got %d workers in utilization", len(u.PerWorker))
	}
	if u.Overall <= 0 || u.Overall > 1.0+1e-9 {
		t.Errorf("overall utilization %f out of (0,1]", u.Overall)
	}
	g := tr.Gantt(d, 40)
	if len(g) == 0 || g == "(no trace)\n" {
		t.Error("empty Gantt for a traced run")
	}
	bd := tr.KindBreakdown(d)
	if len(bd) == 0 {
		t.Error("empty kind breakdown")
	}
	var total int
	for _, s := range tr.Spans {
		_ = s
		total++
	}
	if total != d.NumTasks() {
		t.Errorf("trace covers %d of %d tasks", total, d.NumTasks())
	}
}

func TestGanttNoTrace(t *testing.T) {
	tr := &Trace{Workers: 2}
	if g := tr.Gantt(testDAG(), 40); g != "(no trace)\n" {
		t.Errorf("untraced Gantt = %q", g)
	}
}
