package sched

import (
	"testing"
	"time"

	"tiledqr/internal/core"
)

// BenchmarkRunDispatch measures pure runtime dispatch cost per task (empty
// kernels) at several worker counts.
func BenchmarkRunDispatch(b *testing.B) {
	d := core.BuildDAG(core.GreedyList(20, 10), core.TT)
	for _, workers := range []int{2, 4} {
		b.Run(map[int]string{2: "workers=2", 4: "workers=4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(d, Options{Workers: workers}, func(int32, int) {}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(d.NumTasks()), "ns/task")
		})
	}
}

// BenchmarkRunWeightedDAG emulates a factorization: each task spins for a
// duration proportional to its Table 1 weight, so the measured makespan
// reflects how well the scheduler overlaps the critical path — the paper's
// §2 scheduling experiment in miniature.
func BenchmarkRunWeightedDAG(b *testing.B) {
	d := core.BuildDAG(core.GreedyList(16, 8), core.TT)
	const unit = 2 * time.Microsecond
	busy := func(task int32, _ int) {
		deadline := time.Now().Add(time.Duration(d.Tasks[task].Kind.Weight()) * unit)
		for time.Now().Before(deadline) {
		}
	}
	for i := 0; i < b.N; i++ {
		if _, err := Run(d, Options{}, busy); err != nil {
			b.Fatal(err)
		}
	}
}
