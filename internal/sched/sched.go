// Package sched is the dynamic runtime that executes tiled QR task DAGs on
// a pool of workers, playing the role of PLASMA's dynamic scheduler in the
// paper's experiments: tasks become ready when their dependency counters
// reach zero and are executed so that factor and update stages overlap
// exactly as the dependency analysis of §2 allows.
//
// The pool is persistent (see Runtime in runtime.go): one set of worker
// goroutines executes the DAGs of any number of concurrent factorizations,
// with critical-path priorities inside each DAG and weighted-fair admission
// across DAGs. Run in this file is the one-shot convenience (and the
// per-call baseline the throughput benchmarks compare against): it builds
// a fresh pool, executes one DAG, and tears the pool down.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"tiledqr/internal/core"
)

// Span records the execution of one task for tracing and Gantt analysis.
type Span struct {
	Task   int32
	Worker int
	Start  time.Duration // since the job was submitted
	End    time.Duration
}

// Trace is the per-job execution record returned when tracing is on.
type Trace struct {
	Workers int
	Spans   []Span
	Elapsed time.Duration
}

// Options configures a DAG execution.
type Options struct {
	// Workers is the number of executor goroutines for the one-shot Run;
	// 0 means GOMAXPROCS. Runtime.Exec ignores it (the pool is fixed).
	Workers int
	// Trace enables per-task span recording.
	Trace bool
	// Ctx, when non-nil, cancels the job: in-flight tasks finish, queued
	// tasks are dropped, and the submitter gets ctx.Err(). nil means the
	// job runs to completion or first task error.
	Ctx context.Context
	// Stats, when non-nil, is filled on completion with the job's execution
	// accounting: tasks run, summed kernel time across workers, and wall
	// clock. Far cheaper than Trace (two clock reads per task, no span
	// storage) — the compute side of comms-vs-compute overlap accounting in
	// the distributed layer.
	Stats *JobStats
}

// JobStats is the per-job execution summary requested through
// Options.Stats: how much worker time the job's tasks consumed versus its
// submit-to-completion wall clock. Busy > Wall means the DAG ran with real
// parallelism; Busy/Wall is the job's effective worker count.
type JobStats struct {
	Tasks int64         // tasks executed (dropped tasks of a canceled job excluded)
	Busy  time.Duration // summed task execution time across all workers
	Wall  time.Duration // submission to completion
}

// Add accumulates another job's stats — callers tracking a whole session of
// executions (one per round in the distributed layer) fold each job in.
func (s *JobStats) Add(o JobStats) {
	s.Tasks += o.Tasks
	s.Busy += o.Busy
	s.Wall += o.Wall
}

// Priorities returns the critical-path priority of every task: its Table 1
// kernel weight plus the weighted longest path to any sink (the b-level of
// list scheduling). Task IDs are topologically ordered, so one backward
// sweep suffices.
func Priorities(d *core.DAG) []int64 {
	n := d.NumTasks()
	prio := make([]int64, n)
	succOff, succs := d.Succs()
	for t := n - 1; t >= 0; t-- {
		var best int64
		for _, s := range succs[succOff[t]:succOff[t+1]] {
			if prio[s] > best {
				best = prio[s]
			}
		}
		prio[t] = best + weight(d.Tasks[t].Kind)
	}
	return prio
}

// Run executes every task of the DAG on a pool created for this one call
// and torn down afterwards — the legacy per-call mode, kept as the
// explicit-Workers path and as the baseline the shared Runtime is
// benchmarked against. exec is called as exec(task, worker) with worker in
// [0, Workers); workers own disjoint scratch space indexed by that id.
// Workers == 1 selects the deterministic sequential path on the calling
// goroutine. Run returns a Trace (nil Spans unless Options.Trace) and the
// first panic raised by exec, if any, wrapped as an error.
func Run(d *core.DAG, opt Options, exec func(task int32, worker int)) (*Trace, error) {
	wrapped := func(t int32, loc *Local) error {
		exec(t, loc.ID)
		return nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if d.NumTasks() == 0 {
		return &Trace{Workers: workers}, nil
	}
	if workers == 1 {
		return RunInline(opt.Ctx, d, opt.Trace, wrapped)
	}
	rt := NewRuntime(workers)
	defer rt.Close()
	return rt.Exec(NewPlan(d), Options{Trace: opt.Trace, Ctx: opt.Ctx, Stats: opt.Stats}, wrapped)
}

// Validate checks that a trace respects every DAG dependency (each task
// starts after all its predecessors ended). Used by the runtime tests.
func (tr *Trace) Validate(d *core.DAG) error {
	if tr == nil || tr.Spans == nil {
		return fmt.Errorf("sched: trace has no spans")
	}
	end := make(map[int32]time.Duration, len(tr.Spans))
	startT := make(map[int32]time.Duration, len(tr.Spans))
	for _, s := range tr.Spans {
		end[s.Task] = s.End
		startT[s.Task] = s.Start
	}
	if len(end) != d.NumTasks() {
		return fmt.Errorf("sched: trace covers %d of %d tasks", len(end), d.NumTasks())
	}
	for t := 0; t < d.NumTasks(); t++ {
		for _, p := range d.Preds(t) {
			if startT[int32(t)] < end[p] {
				return fmt.Errorf("sched: task %v started before predecessor %v finished", d.Tasks[t], d.Tasks[p])
			}
		}
	}
	return nil
}
