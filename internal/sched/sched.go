// Package sched is the dynamic runtime that executes tiled QR task DAGs on
// a pool of workers, playing the role of PLASMA's dynamic scheduler in the
// paper's experiments: tasks become ready when their dependency counters
// reach zero and are executed so that factor and update stages overlap
// exactly as the dependency analysis of §2 allows.
//
// Scheduling discipline: each worker owns a priority deque of ready tasks.
// Completing a task pushes its newly released successors onto the finishing
// worker's own deque (LIFO locality — the tiles it just wrote are still in
// its cache); the deque orders tasks by critical-path priority (the
// weighted longest path to a sink, Table 1 kernel weights), so TT/TS factor
// kernels on the critical path run ahead of trailing updates — the ASAP
// discipline the paper's §2 analysis assumes. An idle worker first drains
// its own deque and then steals from a victim; steals take a low-priority
// leaf of the victim's heap, leaving the victim its critical-path work.
package sched

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tiledqr/internal/core"
)

// Span records the execution of one task for tracing and Gantt analysis.
type Span struct {
	Task   int32
	Worker int
	Start  time.Duration // since Run began
	End    time.Duration
}

// Trace is the per-run execution record returned by Run when tracing is on.
type Trace struct {
	Workers int
	Spans   []Span
	Elapsed time.Duration
}

// Options configures a DAG execution.
type Options struct {
	// Workers is the number of executor goroutines; 0 means GOMAXPROCS.
	Workers int
	// Trace enables per-task span recording.
	Trace bool
}

// Priorities returns the critical-path priority of every task: its Table 1
// kernel weight plus the weighted longest path to any sink (the b-level of
// list scheduling). Task IDs are topologically ordered, so one backward
// sweep suffices.
func Priorities(d *core.DAG) []int64 {
	n := d.NumTasks()
	prio := make([]int64, n)
	succOff, succs := d.Succs()
	for t := n - 1; t >= 0; t-- {
		var best int64
		for _, s := range succs[succOff[t]:succOff[t+1]] {
			if prio[s] > best {
				best = prio[s]
			}
		}
		prio[t] = best + int64(d.Tasks[t].Kind.Weight())
	}
	return prio
}

// deque is one worker's pool of ready tasks: a hand-rolled max-heap keyed
// by critical-path priority (direct array code — no container/heap
// interface boxing on the per-task hot path). The owner pops the maximum;
// thieves remove a trailing leaf — O(1), no sift, and guaranteed not to be
// the victim's most critical task.
type deque struct {
	mu    sync.Mutex
	tasks []int32
	prio  []int64 // shared priority table, indexed by task ID
}

func (q *deque) push(t int32) {
	q.mu.Lock()
	q.tasks = append(q.tasks, t)
	tasks, prio := q.tasks, q.prio
	i := len(tasks) - 1
	for i > 0 {
		p := (i - 1) / 2
		if prio[tasks[p]] >= prio[tasks[i]] {
			break
		}
		tasks[p], tasks[i] = tasks[i], tasks[p]
		i = p
	}
	q.mu.Unlock()
}

// pop removes the highest-priority ready task.
func (q *deque) pop() (int32, bool) {
	q.mu.Lock()
	n := len(q.tasks)
	if n == 0 {
		q.mu.Unlock()
		return 0, false
	}
	tasks, prio := q.tasks, q.prio
	top := tasks[0]
	n--
	tasks[0] = tasks[n]
	q.tasks = tasks[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && prio[tasks[r]] > prio[tasks[c]] {
			c = r
		}
		if prio[tasks[i]] >= prio[tasks[c]] {
			break
		}
		tasks[i], tasks[c] = tasks[c], tasks[i]
		i = c
	}
	q.mu.Unlock()
	return top, true
}

// stealFrom removes a trailing heap leaf (locally low priority).
func (q *deque) stealFrom() (int32, bool) {
	q.mu.Lock()
	n := len(q.tasks)
	if n == 0 {
		q.mu.Unlock()
		return 0, false
	}
	t := q.tasks[n-1]
	q.tasks = q.tasks[:n-1]
	q.mu.Unlock()
	return t, true
}

// Run executes every task of the DAG, honoring dependencies. exec is called
// as exec(task, worker) with worker in [0, Workers); workers own disjoint
// scratch space indexed by that id. Run returns a Trace (nil Spans unless
// Options.Trace) and the first panic raised by exec, if any, wrapped as an
// error.
func Run(d *core.DAG, opt Options, exec func(task int32, worker int)) (*Trace, error) {
	n := d.NumTasks()
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n == 0 {
		return &Trace{Workers: workers}, nil
	}
	if workers == 1 {
		return runSequential(d, opt, exec)
	}

	succOff, succs := d.Succs()
	prio := Priorities(d)
	indeg := make([]int32, n)
	initial := make([]int32, 0, workers*2)
	for t := 0; t < n; t++ {
		indeg[t] = int32(len(d.Preds(t)))
		if indeg[t] == 0 {
			initial = append(initial, int32(t))
		}
	}

	// Seed the deques before any worker starts: sources sorted by
	// descending critical-path priority, dealt round-robin so every worker
	// opens with the most critical work available to it.
	deques := make([]deque, workers)
	for i := range deques {
		deques[i].prio = prio
		deques[i].tasks = make([]int32, 0, n/workers+4)
	}
	sort.Slice(initial, func(a, b int) bool { return prio[initial[a]] > prio[initial[b]] })
	for k, t := range initial {
		deques[k%workers].push(t)
	}

	var (
		remaining atomic.Int64
		failed    atomic.Value
		wg        sync.WaitGroup
		spansMu   sync.Mutex
		spans     []Span
	)
	remaining.Store(int64(n))
	// notify wakes parked workers; done is closed when the last task
	// retires. Tokens are minted only while someone is parked (the parked
	// counter), so the channel is silent in steady state. The
	// increment-then-rescan handshake below makes the gate lossless: if a
	// pusher reads parked = 0, the parking worker's rescan — which locks
	// the same deque mutexes — is ordered after the push and finds the
	// task. A consumed token whose task was taken by someone else is
	// harmless: the taker's completions mint more.
	var parked atomic.Int32
	notify := make(chan struct{}, n)
	done := make(chan struct{})
	start := time.Now()
	if opt.Trace {
		spans = make([]Span, 0, n)
	}

	// scan tries the worker's own deque, then every victim.
	scan := func(id int) (int32, bool) {
		t, ok := deques[id].pop()
		for v := 1; !ok && v < workers; v++ {
			t, ok = deques[(id+v)%workers].stealFrom()
		}
		return t, ok
	}

	worker := func(id int) {
		defer wg.Done()
		self := &deques[id]
		for {
			t, ok := scan(id)
			if !ok {
				parked.Add(1)
				if t, ok = scan(id); ok {
					parked.Add(-1)
				} else {
					select {
					case <-notify:
						parked.Add(-1)
						continue
					case <-done:
						parked.Add(-1)
						return
					}
				}
			}
			// After a failure, keep retiring tasks (and releasing their
			// successors) so the run terminates, but execute nothing more.
			if failed.Load() == nil {
				if err := runTask(d, t, id, exec, opt.Trace, start, &spansMu, &spans); err != nil {
					failed.Store(err)
				}
			}
			for _, s := range succs[succOff[t]:succOff[t+1]] {
				if atomic.AddInt32(&indeg[s], -1) == 0 {
					self.push(s)
					if parked.Load() > 0 {
						notify <- struct{}{}
					}
				}
			}
			if remaining.Add(-1) == 0 {
				close(done)
				return
			}
		}
	}
	wg.Add(workers)
	for id := 0; id < workers; id++ {
		go worker(id)
	}
	wg.Wait()

	var err error
	if e := failed.Load(); e != nil {
		err = e.(error)
	}
	if !opt.Trace {
		return &Trace{Workers: workers, Elapsed: time.Since(start)}, err
	}
	return &Trace{Workers: workers, Spans: spans, Elapsed: time.Since(start)}, err
}

// runTask executes one task, converting panics into errors and recording a
// span when tracing.
func runTask(d *core.DAG, t int32, worker int, exec func(int32, int),
	trace bool, start time.Time, mu *sync.Mutex, spans *[]Span) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: task %v panicked: %v", d.Tasks[t], r)
		}
	}()
	var t0 time.Duration
	if trace {
		t0 = time.Since(start)
	}
	exec(t, worker)
	if trace {
		t1 := time.Since(start)
		mu.Lock()
		*spans = append(*spans, Span{Task: t, Worker: worker, Start: t0, End: t1})
		mu.Unlock()
	}
	return nil
}

// runSequential executes tasks in topological (ID) order on one worker.
// Deterministic and allocation-light; used for Workers == 1 and as the
// reference path in tests.
func runSequential(d *core.DAG, opt Options, exec func(int32, int)) (tr *Trace, err error) {
	start := time.Now()
	tr = &Trace{Workers: 1}
	if opt.Trace {
		tr.Spans = make([]Span, 0, d.NumTasks())
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: task panicked: %v", r)
		}
		tr.Elapsed = time.Since(start)
	}()
	for t := 0; t < d.NumTasks(); t++ {
		var t0 time.Duration
		if opt.Trace {
			t0 = time.Since(start)
		}
		exec(int32(t), 0)
		if opt.Trace {
			tr.Spans = append(tr.Spans, Span{Task: int32(t), Worker: 0, Start: t0, End: time.Since(start)})
		}
	}
	return tr, nil
}

// Validate checks that a trace respects every DAG dependency (each task
// starts after all its predecessors ended). Used by the runtime tests.
func (tr *Trace) Validate(d *core.DAG) error {
	if tr == nil || tr.Spans == nil {
		return fmt.Errorf("sched: trace has no spans")
	}
	end := make(map[int32]time.Duration, len(tr.Spans))
	startT := make(map[int32]time.Duration, len(tr.Spans))
	for _, s := range tr.Spans {
		end[s.Task] = s.End
		startT[s.Task] = s.Start
	}
	if len(end) != d.NumTasks() {
		return fmt.Errorf("sched: trace covers %d of %d tasks", len(end), d.NumTasks())
	}
	for t := 0; t < d.NumTasks(); t++ {
		for _, p := range d.Preds(t) {
			if startT[int32(t)] < end[p] {
				return fmt.Errorf("sched: task %v started before predecessor %v finished", d.Tasks[t], d.Tasks[p])
			}
		}
	}
	return nil
}
