// Package sched is the dynamic runtime that executes tiled QR task DAGs on
// a pool of workers, playing the role of PLASMA's dynamic scheduler in the
// paper's experiments: tasks become ready when their dependency counters
// reach zero and are executed by whichever worker is free, so factor and
// update stages overlap exactly as the dependency analysis of §2 allows.
package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tiledqr/internal/core"
)

// Span records the execution of one task for tracing and Gantt analysis.
type Span struct {
	Task   int32
	Worker int
	Start  time.Duration // since Run began
	End    time.Duration
}

// Trace is the per-run execution record returned by Run when tracing is on.
type Trace struct {
	Workers int
	Spans   []Span
	Elapsed time.Duration
}

// Options configures a DAG execution.
type Options struct {
	// Workers is the number of executor goroutines; 0 means GOMAXPROCS.
	Workers int
	// Trace enables per-task span recording.
	Trace bool
}

// Run executes every task of the DAG, honoring dependencies. exec is called
// as exec(task, worker) with worker in [0, Workers); workers own disjoint
// scratch space indexed by that id. Run returns a Trace (nil unless
// Options.Trace) and the first panic raised by exec, if any, wrapped as an
// error.
func Run(d *core.DAG, opt Options, exec func(task int32, worker int)) (*Trace, error) {
	n := d.NumTasks()
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n == 0 {
		return &Trace{Workers: workers}, nil
	}
	if workers == 1 {
		return runSequential(d, opt, exec)
	}

	succOff, succs := d.Succs()
	indeg := make([]int32, n)
	initial := make([]int32, 0, workers*2)
	for t := 0; t < n; t++ {
		indeg[t] = int32(len(d.Preds(t)))
		if indeg[t] == 0 {
			initial = append(initial, int32(t))
		}
	}

	ready := make(chan int32, n)
	for _, t := range initial {
		ready <- t
	}

	var (
		remaining = int64(n)
		failed    atomic.Value
		wg        sync.WaitGroup
		spansMu   sync.Mutex
		spans     []Span
	)
	start := time.Now()
	if opt.Trace {
		spans = make([]Span, 0, n)
	}

	worker := func(id int) {
		defer wg.Done()
		for t := range ready {
			// After a failure, keep draining (and releasing successors) so
			// the run terminates, but execute nothing further.
			if failed.Load() == nil {
				if err := runTask(d, t, id, exec, opt.Trace, start, &spansMu, &spans); err != nil {
					failed.Store(err)
				}
			}
			for _, s := range succs[succOff[t]:succOff[t+1]] {
				if atomic.AddInt32(&indeg[s], -1) == 0 {
					ready <- s
				}
			}
			if atomic.AddInt64(&remaining, -1) == 0 {
				close(ready)
			}
		}
	}
	wg.Add(workers)
	for id := 0; id < workers; id++ {
		go worker(id)
	}
	wg.Wait()

	var err error
	if e := failed.Load(); e != nil {
		err = e.(error)
	}
	if !opt.Trace {
		return &Trace{Workers: workers, Elapsed: time.Since(start)}, err
	}
	return &Trace{Workers: workers, Spans: spans, Elapsed: time.Since(start)}, err
}

// runTask executes one task, converting panics into errors and recording a
// span when tracing.
func runTask(d *core.DAG, t int32, worker int, exec func(int32, int),
	trace bool, start time.Time, mu *sync.Mutex, spans *[]Span) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: task %v panicked: %v", d.Tasks[t], r)
		}
	}()
	var t0 time.Duration
	if trace {
		t0 = time.Since(start)
	}
	exec(t, worker)
	if trace {
		t1 := time.Since(start)
		mu.Lock()
		*spans = append(*spans, Span{Task: t, Worker: worker, Start: t0, End: t1})
		mu.Unlock()
	}
	return nil
}

// runSequential executes tasks in topological (ID) order on one worker.
// Deterministic and allocation-light; used for Workers == 1 and as the
// reference path in tests.
func runSequential(d *core.DAG, opt Options, exec func(int32, int)) (tr *Trace, err error) {
	start := time.Now()
	tr = &Trace{Workers: 1}
	if opt.Trace {
		tr.Spans = make([]Span, 0, d.NumTasks())
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: task panicked: %v", r)
		}
		tr.Elapsed = time.Since(start)
	}()
	for t := 0; t < d.NumTasks(); t++ {
		var t0 time.Duration
		if opt.Trace {
			t0 = time.Since(start)
		}
		exec(int32(t), 0)
		if opt.Trace {
			tr.Spans = append(tr.Spans, Span{Task: int32(t), Worker: 0, Start: t0, End: time.Since(start)})
		}
	}
	return tr, nil
}

// Validate checks that a trace respects every DAG dependency (each task
// starts after all its predecessors ended). Used by the runtime tests.
func (tr *Trace) Validate(d *core.DAG) error {
	if tr == nil || tr.Spans == nil {
		return fmt.Errorf("sched: trace has no spans")
	}
	end := make(map[int32]time.Duration, len(tr.Spans))
	startT := make(map[int32]time.Duration, len(tr.Spans))
	for _, s := range tr.Spans {
		end[s.Task] = s.End
		startT[s.Task] = s.Start
	}
	if len(end) != d.NumTasks() {
		return fmt.Errorf("sched: trace covers %d of %d tasks", len(end), d.NumTasks())
	}
	for t := 0; t < d.NumTasks(); t++ {
		for _, p := range d.Preds(t) {
			if startT[int32(t)] < end[p] {
				return fmt.Errorf("sched: task %v started before predecessor %v finished", d.Tasks[t], d.Tasks[p])
			}
		}
	}
	return nil
}
