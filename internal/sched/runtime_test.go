package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tiledqr/internal/core"
)

// TestRuntimeConcurrentJobs submits many DAGs from many goroutines to one
// shared pool and asserts, per job, exactly-once execution and dependency
// order. Run under -race this is the multi-DAG memory-model check.
func TestRuntimeConcurrentJobs(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		rt := NewRuntime(workers)
		var wg sync.WaitGroup
		errs := make(chan error, 32)
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				shapes := [][2]int{{4, 2}, {6, 3}, {1, 1}, {8, 4}}
				sh := shapes[g%len(shapes)]
				d := core.BuildDAG(core.GreedyList(sh[0], sh[1]), core.TT)
				for rep := 0; rep < 5; rep++ {
					counts := make([]int32, d.NumTasks())
					ended := make([]atomic.Bool, d.NumTasks())
					var violations atomic.Int32
					_, err := rt.Exec(NewPlan(d), Options{}, func(task int32, loc *Local) error {
						if loc.ID < 0 || loc.ID >= workers {
							return fmt.Errorf("worker id %d out of range", loc.ID)
						}
						for _, p := range d.Preds(int(task)) {
							if !ended[p].Load() {
								violations.Add(1)
							}
						}
						atomic.AddInt32(&counts[task], 1)
						ended[task].Store(true)
						return nil
					})
					if err != nil {
						errs <- err
						return
					}
					for task, c := range counts {
						if c != 1 {
							errs <- fmt.Errorf("goroutine %d rep %d: task %d ran %d times", g, rep, task, c)
							return
						}
					}
					if v := violations.Load(); v != 0 {
						errs <- fmt.Errorf("goroutine %d rep %d: %d dependency violations", g, rep, v)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Errorf("workers=%d: %v", workers, err)
		}
		rt.Close()
	}
}

// TestRuntimeFairness: a fleet of small jobs submitted alongside one huge
// job must all complete before the huge one — the weighted-fair admission
// must not let the big DAG monopolize the pool.
func TestRuntimeFairness(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Close()

	// The huge job runs long enough (~100 ms of spinning) that the fleet's
	// submission latency is negligible next to it; each small job is one
	// fairness quantum of work, so every small must clear the pool long
	// before the huge job drains.
	huge := core.BuildDAG(core.GreedyList(24, 8), core.TT) // ≈ 430 tasks
	small := core.BuildDAG(core.GreedyList(3, 2), core.TT) // ≈ 10 tasks, weight ≈ 56
	spin := func(d time.Duration) {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
		}
	}
	var started atomic.Int64
	var hugeDone, smallLate atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := rt.Exec(NewPlan(huge), Options{}, func(int32, *Local) error {
			started.Add(1)
			spin(250 * time.Microsecond)
			return nil
		})
		if err != nil {
			t.Error(err)
		}
		hugeDone.Store(1)
	}()
	// Let the huge job get going before the fleet arrives.
	for started.Load() < 8 {
		time.Sleep(time.Millisecond)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := rt.Exec(NewPlan(small), Options{}, func(int32, *Local) error {
				spin(250 * time.Microsecond)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
			if hugeDone.Load() == 1 {
				smallLate.Add(1)
			}
		}()
	}
	wg.Wait()
	if late := smallLate.Load(); late != 0 {
		t.Errorf("%d small job(s) finished after the huge job — starved by unfair admission", late)
	}
}

// TestRuntimeCancelPrompt: an exec error must unblock the submitter
// without draining the DAG, and with no task left inside exec.
func TestRuntimeCancelPrompt(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Close()
	d := core.BuildDAG(core.GreedyList(20, 10), core.TT)
	var executed atomic.Int64
	var returned atomic.Bool
	_, err := rt.Exec(NewPlan(d), Options{}, func(task int32, _ *Local) error {
		if returned.Load() {
			t.Error("task executed after Exec returned")
		}
		if task == 1 {
			return errors.New("boom")
		}
		executed.Add(1)
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	returned.Store(true)
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := executed.Load(); int(n) >= d.NumTasks()-1 {
		t.Errorf("drained %d of %d tasks before reporting the error", n, d.NumTasks())
	}
	// The runtime must still be healthy for the next job.
	ran := atomic.Int64{}
	if _, err := rt.Exec(NewPlan(d), Options{}, func(int32, *Local) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if int(ran.Load()) != d.NumTasks() {
		t.Errorf("post-cancel job ran %d of %d tasks", ran.Load(), d.NumTasks())
	}
}

// TestRuntimeCloseRejectsAndIsIdempotent: Exec after Close fails; double
// Close is safe; Close of the Default runtime is a no-op.
func TestRuntimeCloseRejectsAndIsIdempotent(t *testing.T) {
	rt := NewRuntime(2)
	rt.Close()
	rt.Close()
	d := core.BuildDAG(core.GreedyList(2, 1), core.TT)
	if _, err := rt.Exec(NewPlan(d), Options{}, func(int32, *Local) error { return nil }); err == nil {
		t.Error("Exec on a closed runtime succeeded")
	}
	def := Default()
	def.Close()
	if _, err := def.Exec(NewPlan(d), Options{}, func(int32, *Local) error { return nil }); err != nil {
		t.Errorf("Default runtime unusable after Close: %v", err)
	}
}

// TestRuntimeTraceValidates: per-job traces on a shared pool must cover
// every task and respect dependencies, concurrently.
func TestRuntimeTraceValidates(t *testing.T) {
	rt := NewRuntime(3)
	defer rt.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := core.BuildDAG(core.GreedyList(10, 5), core.TT)
			tr, err := rt.Exec(NewPlan(d), Options{Trace: true}, func(int32, *Local) error { return nil })
			if err != nil {
				t.Error(err)
				return
			}
			if err := tr.Validate(d); err != nil {
				t.Error(err)
			}
			if tr.Workers != 3 {
				t.Errorf("trace workers = %d, want 3", tr.Workers)
			}
		}()
	}
	wg.Wait()
}

// TestPlanReuse: re-executing one Plan must reset dependency counters
// correctly (the steady-state Refactor path).
func TestPlanReuse(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Close()
	d := core.BuildDAG(core.GreedyList(8, 4), core.TT)
	p := NewPlan(d)
	for rep := 0; rep < 10; rep++ {
		var ran atomic.Int64
		if _, err := rt.Exec(p, Options{}, func(int32, *Local) error { ran.Add(1); return nil }); err != nil {
			t.Fatal(err)
		}
		if int(ran.Load()) != d.NumTasks() {
			t.Fatalf("rep %d: ran %d of %d tasks", rep, ran.Load(), d.NumTasks())
		}
	}
}

// TestRunInlineStopsOnError: the inline path must stop at the first error.
func TestRunInlineStopsOnError(t *testing.T) {
	d := core.BuildDAG(core.GreedyList(6, 3), core.TT)
	ran := 0
	_, err := RunInline(nil, d, false, func(task int32, _ *Local) error {
		if task == 4 {
			return errors.New("boom")
		}
		ran++
		return nil
	})
	if err == nil {
		t.Fatal("inline error not reported")
	}
	if ran != 4 {
		t.Errorf("inline ran %d tasks after the error (want stop at 4)", ran)
	}
}
