package kernel

import "math"

// larfgCol generates an elementary Householder reflector H = I − τ·v·vᵀ with
// v[r0] = 1 acting on the column vector [a(r0,c); a(r0+1:m,c)] so that
// H·x = [β; 0]. On return a(r0,c) = β and a(r0+1:m,c) holds v[r0+1:].
func larfgCol(a []float64, lda, r0, c, m int) (tau float64) {
	alpha := a[r0*lda+c]
	var xnorm float64
	for i := r0 + 1; i < m; i++ {
		xnorm = math.Hypot(xnorm, a[i*lda+c])
	}
	if xnorm == 0 {
		return 0
	}
	beta := -math.Copysign(math.Hypot(alpha, xnorm), alpha)
	tau = (beta - alpha) / beta
	scale := 1 / (alpha - beta)
	for i := r0 + 1; i < m; i++ {
		a[i*lda+c] *= scale
	}
	a[r0*lda+c] = beta
	return tau
}

// geqrt2 factors the panel A[j0:m, j0:j0+kb] in place by Householder
// reflections and stores the panel's kb×kb triangular factor in columns
// j0:j0+kb of t (which has row stride ldt and at least kb rows). tmp must
// have length ≥ kb.
func geqrt2(m int, a []float64, lda, j0, kb int, t []float64, ldt int, tmp []float64) {
	for jj := 0; jj < kb; jj++ {
		j := j0 + jj
		tau := larfgCol(a, lda, j, j, m)
		// Apply H_j to the remaining panel columns.
		for c := j + 1; c < j0+kb; c++ {
			w := a[j*lda+c]
			for i := j + 1; i < m; i++ {
				w += a[i*lda+j] * a[i*lda+c]
			}
			w *= tau
			a[j*lda+c] -= w
			for i := j + 1; i < m; i++ {
				a[i*lda+c] -= a[i*lda+j] * w
			}
		}
		// T(0:jj, jj) = −τ · T(0:jj, 0:jj) · (V(:, 0:jj)ᵀ · v_j).
		for c := 0; c < jj; c++ {
			col := j0 + c
			s := a[j*lda+col] // row j of v_c times v_j[j] = 1
			for i := j + 1; i < m; i++ {
				s += a[i*lda+col] * a[i*lda+j]
			}
			tmp[c] = s
		}
		for r := 0; r < jj; r++ {
			var s float64
			for c := r; c < jj; c++ {
				s += t[r*ldt+j0+c] * tmp[c]
			}
			t[r*ldt+j] = -tau * s
		}
		t[jj*ldt+j] = tau
	}
}

// applyPanel applies the block reflector of a GEQRT panel to C.
// The panel's reflectors are the unit-lower-trapezoidal columns
// v[r0:m, vc0:vc0+kb] of the array v; the block triangular factor is in
// columns tc0:tc0+kb of t. If trans is true it applies (I − V·T·Vᵀ)ᵀ,
// otherwise I − V·T·Vᵀ. Only rows r0:m of C[, cc0:cc0+nc] are touched.
// w must have length ≥ kb·nc.
func applyPanel(trans bool, m int, v []float64, ldv, r0, vc0, kb int,
	t []float64, ldt, tc0 int, c []float64, ldc, cc0, nc int, w []float64) {
	// W = Vᵀ · C
	for x := 0; x < kb; x++ {
		col := vc0 + x
		diag := r0 + x
		wx := w[x*nc : x*nc+nc]
		copy(wx, c[diag*ldc+cc0:diag*ldc+cc0+nc])
		for i := diag + 1; i < m; i++ {
			vix := v[i*ldv+col]
			if vix == 0 {
				continue
			}
			ci := c[i*ldc+cc0 : i*ldc+cc0+nc]
			for y, cv := range ci {
				wx[y] += vix * cv
			}
		}
	}
	triMulW(trans, kb, t, ldt, tc0, w, nc)
	// C −= V · W
	for x := 0; x < kb; x++ {
		col := vc0 + x
		diag := r0 + x
		wx := w[x*nc : x*nc+nc]
		cd := c[diag*ldc+cc0 : diag*ldc+cc0+nc]
		for y, wv := range wx {
			cd[y] -= wv
		}
		for i := diag + 1; i < m; i++ {
			vix := v[i*ldv+col]
			if vix == 0 {
				continue
			}
			ci := c[i*ldc+cc0 : i*ldc+cc0+nc]
			for y, wv := range wx {
				ci[y] -= vix * wv
			}
		}
	}
}

// triMulW overwrites the kb×nc workspace W with Tᵀ·W (trans) or T·W, where T
// is the upper triangular block in columns tc0:tc0+kb of t.
func triMulW(trans bool, kb int, t []float64, ldt, tc0 int, w []float64, nc int) {
	if trans {
		// New W[x] depends on old W[0..x]; sweep x downward.
		for x := kb - 1; x >= 0; x-- {
			wx := w[x*nc : x*nc+nc]
			txx := t[x*ldt+tc0+x]
			for y := range wx {
				wx[y] *= txx
			}
			for r := 0; r < x; r++ {
				trx := t[r*ldt+tc0+x]
				if trx == 0 {
					continue
				}
				wr := w[r*nc : r*nc+nc]
				for y := range wx {
					wx[y] += trx * wr[y]
				}
			}
		}
	} else {
		// New W[x] depends on old W[x..kb-1]; sweep x upward.
		for x := 0; x < kb; x++ {
			wx := w[x*nc : x*nc+nc]
			txx := t[x*ldt+tc0+x]
			for y := range wx {
				wx[y] *= txx
			}
			for r := x + 1; r < kb; r++ {
				txr := t[x*ldt+tc0+r]
				if txr == 0 {
					continue
				}
				wr := w[r*nc : r*nc+nc]
				for y := range wx {
					wx[y] += txr * wr[y]
				}
			}
		}
	}
}

// GEQRT computes the blocked QR factorization of the m×n tile a (row stride
// lda): A = Q·R with Q = H₁···H_k, k = min(m,n). On return the upper
// triangle/trapezoid of a holds R, the strictly lower part holds the
// Householder vectors V, and t (ib rows, row stride ldt ≥ n) holds the
// ib×ib triangular T factors of each column panel. work may be nil or a
// scratch slice of length ≥ ib·(n+1).
func GEQRT(m, n, ib int, a []float64, lda int, t []float64, ldt int, work []float64) {
	k := min(m, n)
	if k == 0 {
		return
	}
	ib = clampIB(ib, k)
	work = ensureWork(work, ib*(n+1))
	tmp, w := work[:ib], work[ib:]
	for k0 := 0; k0 < k; k0 += ib {
		kb := min(ib, k-k0)
		geqrt2(m, a, lda, k0, kb, t, ldt, tmp)
		if k0+kb < n {
			applyPanel(true, m, a, lda, k0, k0, kb, t, ldt, k0, a, lda, k0+kb, n-k0-kb, w)
		}
	}
}

// UNMQR applies the orthogonal factor of a GEQRT factorization to the m×nc
// tile c: C := Qᵀ·C if trans, else C := Q·C. v and t are the outputs of
// GEQRT on an m×· tile with k reflectors and inner block size ib. work may
// be nil or a scratch slice of length ≥ ib·nc.
func UNMQR(trans bool, m, k, ib int, v []float64, ldv int, t []float64, ldt int,
	c []float64, ldc, nc int, work []float64) {
	if k == 0 || nc == 0 {
		return
	}
	ib = clampIB(ib, k)
	work = ensureWork(work, ib*nc)
	if trans {
		for k0 := 0; k0 < k; k0 += ib {
			kb := min(ib, k-k0)
			applyPanel(true, m, v, ldv, k0, k0, kb, t, ldt, k0, c, ldc, 0, nc, work)
		}
	} else {
		start := ((k - 1) / ib) * ib
		for k0 := start; k0 >= 0; k0 -= ib {
			kb := min(ib, k-k0)
			applyPanel(false, m, v, ldv, k0, k0, kb, t, ldt, k0, c, ldc, 0, nc, work)
		}
	}
}

// clampIB normalizes the inner blocking factor to 1 ≤ ib ≤ k.
func clampIB(ib, k int) int {
	if ib <= 0 || ib > k {
		return k
	}
	return ib
}

// ensureWork returns work if it is large enough, otherwise a fresh slice.
func ensureWork(work []float64, n int) []float64 {
	if len(work) < n {
		return make([]float64, n)
	}
	return work
}
