package kernel

import (
	"math"
	"unsafe"

	"tiledqr/internal/vec"
)

// larfgCol generates an elementary Householder reflector H = I − τ·v·vᴴ with
// v[r0] = 1 acting on the column vector [a(r0,c); a(r0+1:m,c)] so that
// Hᴴ·x = [β; 0] with β real. On return a(r0,c) = β; the tail a(r0+1:m,c)
// still holds the RAW column — the caller multiplies it by the returned
// scale (fused into its next row sweep) to obtain v[r0+1:]. scale is 1 when
// τ = 0. For the real domains the conjugation degenerates and this is
// exactly LAPACK's dlarfg; for the complex domains τ is complex and β is
// forced real, as in zlarfg.
//
// The tail norm uses the safe single-pass Nrm2 — one Sqrt per reflector
// instead of one Hypot (or Hypot+Abs) per element — and the final α/xnorm
// combination keeps one Hypot for its overflow safety. The β/τ arithmetic
// runs in float64 for every domain, so the single-precision types only
// round once at the end.
func larfgCol[T vec.Scalar](a []T, lda, r0, c, m int) (tau, scale T) {
	alpha := a[r0*lda+c]
	n := m - r0 - 1
	var xnorm float64
	if n > 0 {
		xnorm = vec.Nrm2Inc(a[(r0+1)*lda+c:], n, lda)
	}
	if xnorm == 0 && vec.ImagPart(alpha) == 0 {
		return 0, 1
	}
	beta := -math.Copysign(math.Hypot(vec.Abs(alpha), xnorm), vec.RealPart(alpha))
	tau = vec.FromParts[T]((beta-vec.RealPart(alpha))/beta, -vec.ImagPart(alpha)/beta)
	betaT := vec.FromParts[T](beta, 0)
	a[r0*lda+c] = betaT
	return tau, 1 / (alpha - betaT)
}

// geqrt2 factors the panel A[j0:m, j0:j0+kb] in place by Householder
// reflections and stores the panel's kb×kb triangular factor in columns
// j0:j0+kb of t (which has row stride ldt and at least kb rows). comb must
// have length ≥ kb.
//
// Each reflector makes two row-contiguous sweeps over the panel instead of
// the column-strided loops of the unblocked reference: the first sweep
// accumulates every dot product the reflector needs into comb (positions
// below jj feed the T column, positions above jj feed the trailing update),
// the second applies the update. Row slices keep the accesses sequential in
// memory, which column walks at stride lda are not. comb[c] accumulates
// Σ_{i>j} conj(v_i)·a(i, j0+c): the Vᴴ·A dot the update columns need
// directly, and the conjugate of the T-column dot for c < jj.
func geqrt2[T vec.Scalar](m int, a []T, lda, j0, kb int, t []T, ldt int, comb []T) {
	cc := vec.IsComplex[T]()
	for jj := 0; jj < kb; jj++ {
		j := j0 + jj
		tau, scale := larfgCol(a, lda, j, j, m)
		ctau := vec.Conj(tau)
		cb := comb[:kb]
		clear(cb)
		// Sweep 1: scale the raw reflector column in passing (larfgCol
		// defers it) and accumulate the conjugated dots. comb[jj] gathers
		// Σ|v|² and is never read.
		for i := j + 1; i < m; i++ {
			row := a[i*lda+j0 : i*lda+j0+kb]
			vi := row[jj] * scale
			row[jj] = vi
			vec.Axpy(conjIf(cc, vi), row, cb)
		}
		// Apply Hᴴ to the remaining panel columns: finish the update scalars
		// w = conj(τ)·(row j + comb) in place, apply them to row j, then
		// sweep 2 applies them to the rows below.
		if jj+1 < kb {
			w := cb[jj+1:]
			arow := a[j*lda+j+1 : j*lda+j0+kb]
			for y, av := range arow {
				wv := ctau * (av + w[y])
				arow[y] = av - wv
				w[y] = wv
			}
			for i := j + 1; i < m; i++ {
				vec.Axpy(-a[i*lda+j], w, a[i*lda+j+1:i*lda+j0+kb])
			}
		}
		// T(0:jj, jj) = −τ·T(0:jj, 0:jj)·(V(:, 0:jj)ᴴ·v_j). The conjugated
		// dot tails are already in comb; add the row-j terms (v_c's row j
		// times v_j[j] = 1) and conjugate (identity in the real domains).
		for c := 0; c < jj; c++ {
			cb[c] = conjIf(cc, a[j*lda+j0+c]+cb[c])
		}
		for r := 0; r < jj; r++ {
			t[r*ldt+j] = -tau * vec.Dot(t[r*ldt+j0+r:r*ldt+j0+jj], cb[r:jj])
		}
		t[jj*ldt+j] = tau
	}
}

// applyPanel applies the block reflector of a GEQRT panel to C.
// The panel's reflectors are the unit-lower-trapezoidal columns
// v[r0:m, vc0:vc0+kb] of the array v; the block triangular factor is in
// columns tc0:tc0+kb of t. If trans is true it applies (I − V·Tᴴ·Vᴴ)
// (i.e. Qᴴ; Qᵀ in the real domains), otherwise I − V·T·Vᴴ. Only rows r0:m
// of C[, cc0:cc0+nc] are touched. w must have length ≥ kb·nc; pack is
// micro-GEMM scratch and may be empty (the packed bulk path then stays
// off).
//
// Rows r0+kb:m sit below the unit-lower-triangular head of the panel, so
// every reflector column has a full V entry there: over that region both
// sweeps are plain matrix products, handed to the packed micro-GEMM when
// it will take them. The triangular head keeps the scalar sweeps — the
// diagonal copy/Sub and the ragged column starts don't map onto GEMM.
func applyPanel[T vec.Scalar](trans bool, m int, v []T, ldv, r0, vc0, kb int,
	t []T, ldt, tc0 int, c []T, ldc, cc0, nc int, w, pack []T) {
	xBlock := xBlockOf[T]()
	cc := vec.IsComplex[T]()
	mb := r0 + kb // first bulk row
	bulk := m - mb
	gemmBulk := bulk > 0 && vec.GemmOK[T](kb, nc, bulk, len(pack)) &&
		vec.GemmOK[T](bulk, nc, kb, len(pack))
	mEnd := m
	if gemmBulk {
		mEnd = mb
	}
	// W = Vᴴ · C, swept in blocks of xBlock reflector columns: each block's
	// W rows stay cache-resident while C's rows stream through, so the C
	// tile is read ⌈kb/xBlock⌉ times instead of kb times. The head rows
	// also seed every W row (the copy at the reflector diagonal), so this
	// sweep must precede the bulk product, which accumulates.
	for xb := 0; xb < kb; xb += xBlock {
		xe := min(xb+xBlock, kb)
		for i := r0 + xb; i < mEnd; i++ {
			ci := c[i*ldc+cc0 : i*ldc+cc0+nc]
			d := i - r0 // reflector columns x < d accumulate row i
			nx := min(d, xe)
			if d < xe {
				copy(w[d*nc:d*nc+nc], ci) // diagonal row of reflector d: v = 1
			}
			vrow := v[i*ldv+vc0 : i*ldv+vc0+nx]
			for x := xb; x < nx; x++ {
				vec.Axpy(conjIf(cc, vrow[x]), ci, w[x*nc:x*nc+nc])
			}
		}
	}
	if gemmBulk {
		// W += V₂ᵀ·C₂ over the full rows in one packed product (real
		// domains only, so the conjugation is the identity).
		vec.GemmTN(kb, nc, bulk, T(1), v[mb*ldv+vc0:], ldv,
			c[mb*ldc+cc0:], ldc, w[:kb*nc], nc, pack)
	}
	triMulW(trans, kb, t, ldt, tc0, w, nc)
	// C −= V · W, same blocking, consuming W rows in pairs per C row.
	for xb := 0; xb < kb; xb += xBlock {
		xe := min(xb+xBlock, kb)
		for i := r0 + xb; i < mEnd; i++ {
			ci := c[i*ldc+cc0 : i*ldc+cc0+nc]
			d := i - r0
			nx := min(d, xe)
			if d < xe {
				vec.Sub(w[d*nc:d*nc+nc], ci)
			}
			vrow := v[i*ldv+vc0 : i*ldv+vc0+nx]
			x := xb
			for ; x+1 < nx; x += 2 {
				vec.Axpy2(-vrow[x], w[x*nc:x*nc+nc], -vrow[x+1], w[(x+1)*nc:(x+1)*nc+nc], ci)
			}
			if x < nx {
				vec.Axpy(-vrow[x], w[x*nc:x*nc+nc], ci)
			}
		}
	}
	if gemmBulk {
		// C₂ −= V₂·W. The packed path copies V out before writing C, so
		// V and C aliasing the same tile (GEQRT's trailing update) is safe.
		vec.GemmNN(bulk, nc, kb, T(-1), v[mb*ldv+vc0:], ldv,
			w[:kb*nc], nc, c[mb*ldc+cc0:], ldc, pack)
	}
}

// conjIf returns Conj(v) when cc is set and v unchanged otherwise. cc is
// vec.IsComplex[T]() computed once per kernel call: in gcshape-generic code
// a bare vec.Conj compiles to a dictionary type switch, which costs real
// time when paid per reflector column inside the hot sweeps; hoisting the
// domain test to one branch keeps the real instantiations free of it.
func conjIf[T vec.Scalar](cc bool, v T) T {
	if cc {
		return vec.Conj(v)
	}
	return v
}

// xBlockOf is the reflector-column blocking of the panel appliers: xBlock
// rows of the W workspace stay L1-resident alongside the streaming C row.
// The budget is held in bytes (128·sizeof(T) per W row at nb columns), so
// every domain blocks to the same cache footprint: 16 columns for float64,
// 8 for complex128, 32/16 for the single-precision pair.
func xBlockOf[T vec.Scalar]() int {
	var z T
	return 128 / int(unsafe.Sizeof(z))
}

// triMulW overwrites the kb×nc workspace W with Tᴴ·W (trans) or T·W, where T
// is the upper triangular block in columns tc0:tc0+kb of t. The diagonal
// scale is fused with the first off-diagonal accumulation via AddScaled.
func triMulW[T vec.Scalar](trans bool, kb int, t []T, ldt, tc0 int, w []T, nc int) {
	if trans {
		cc := vec.IsComplex[T]()
		// New W[x] depends on old W[0..x]; sweep x downward.
		for x := kb - 1; x >= 0; x-- {
			wx := w[x*nc : x*nc+nc]
			txx := conjIf(cc, t[x*ldt+tc0+x])
			if x == 0 {
				vec.Scal(txx, wx)
				continue
			}
			vec.AddScaled(txx, conjIf(cc, t[tc0+x]), w[:nc], wx)
			for r := 1; r < x; r++ {
				vec.Axpy(conjIf(cc, t[r*ldt+tc0+x]), w[r*nc:r*nc+nc], wx)
			}
		}
	} else {
		// New W[x] depends on old W[x..kb-1]; sweep x upward.
		for x := 0; x < kb; x++ {
			wx := w[x*nc : x*nc+nc]
			txx := t[x*ldt+tc0+x]
			if x == kb-1 {
				vec.Scal(txx, wx)
				continue
			}
			vec.AddScaled(txx, t[x*ldt+tc0+x+1], w[(x+1)*nc:(x+1)*nc+nc], wx)
			for r := x + 2; r < kb; r++ {
				vec.Axpy(t[x*ldt+tc0+r], w[r*nc:r*nc+nc], wx)
			}
		}
	}
}

// GEQRT computes the blocked QR factorization of the m×n tile a (row stride
// lda): A = Q·R with Q = H₁···H_k, k = min(m,n). On return the upper
// triangle/trapezoid of a holds R, the strictly lower part holds the
// Householder vectors V, and t (ib rows, row stride ldt ≥ n) holds the
// ib×ib triangular T factors of each column panel. work may be nil or a
// scratch slice of length ≥ WorkLen(n, ib).
func GEQRT[T vec.Scalar](m, n, ib int, a []T, lda int, t []T, ldt int, work []T) {
	k := min(m, n)
	if k == 0 {
		return
	}
	ib = clampIB(ib, k)
	work = ensureWork(work, WorkLen(n, ib))
	comb, w, pack := work[:ib], work[ib:ib+ib*n], work[ib+ib*n:]
	for k0 := 0; k0 < k; k0 += ib {
		kb := min(ib, k-k0)
		geqrt2(m, a, lda, k0, kb, t, ldt, comb)
		if k0+kb < n {
			applyPanel(true, m, a, lda, k0, k0, kb, t, ldt, k0, a, lda, k0+kb, n-k0-kb, w, pack)
		}
	}
}

// UNMQR applies the orthogonal (unitary) factor of a GEQRT factorization to
// the m×nc tile c: C := Qᴴ·C if trans, else C := Q·C. v and t are the
// outputs of GEQRT on an m×· tile with k reflectors and inner block size
// ib. work may be nil or a scratch slice of length ≥ ib·nc; length ≥
// ApplyWorkLen(m, ib, nc) additionally enables the packed bulk path.
func UNMQR[T vec.Scalar](trans bool, m, k, ib int, v []T, ldv int, t []T, ldt int,
	c []T, ldc, nc int, work []T) {
	if k == 0 || nc == 0 {
		return
	}
	ib = clampIB(ib, k)
	work = ensureWork(work, ib*nc)
	w, pack := work[:ib*nc], work[ib*nc:]
	if trans {
		for k0 := 0; k0 < k; k0 += ib {
			kb := min(ib, k-k0)
			applyPanel(true, m, v, ldv, k0, k0, kb, t, ldt, k0, c, ldc, 0, nc, w, pack)
		}
	} else {
		start := ((k - 1) / ib) * ib
		for k0 := start; k0 >= 0; k0 -= ib {
			kb := min(ib, k-k0)
			applyPanel(false, m, v, ldv, k0, k0, kb, t, ldt, k0, c, ldc, 0, nc, w, pack)
		}
	}
}

// WorkLen returns the scratch length the tile kernels need for square-ish
// tiles of at most n rows and columns at inner block size ib: one
// ib-vector of fused dot accumulators, the ib×n block-reflector workspace,
// and packed micro-GEMM scratch covering every product the factor and
// update kernels form on such tiles (including the full n×n×n GEMM task).
// Kernels handed less scratch than this still run — a short pack region
// only disables the packed bulk path.
func WorkLen(n, ib int) int {
	return ib*(n+1) + vec.GemmPackBound(n, n, n)
}

// ApplyWorkLen returns the scratch length the Q-application kernels
// (UNMQR, TPMQRT and their wrappers) need to take the packed bulk path
// when applying a factorization with inner block ib to a C tile of at most
// m rows and nc columns. Any length ≥ ib·nc is accepted; the extra
// headroom here feeds the micro-GEMM pack buffers.
func ApplyWorkLen(m, ib, nc int) int {
	return ib*nc + max(vec.GemmPackBound(ib, nc, m), vec.GemmPackBound(m, nc, ib))
}

// clampIB normalizes the inner blocking factor to 1 ≤ ib ≤ k.
func clampIB(ib, k int) int {
	if ib <= 0 || ib > k {
		return k
	}
	return ib
}

// ensureWork returns work if it is large enough, otherwise a fresh slice.
func ensureWork[T vec.Scalar](work []T, n int) []T {
	if len(work) < n {
		return make([]T, n)
	}
	return work
}
