// Package kernel implements the sequential tile kernels of the tiled QR
// factorization (Table 1 of Bouwmeester, Jacquelin, Langou, Robert,
// "Tiled QR factorization algorithms", 2011), generic over all four
// arithmetic domains (float32, float64, complex64, complex128):
//
//	GEQRT  — factor a square/rectangular tile into Q·R           (weight 4)
//	TSQRT  — zero a square tile using the triangle on top of it  (weight 6)
//	TTQRT  — zero a triangular tile with a triangle on top       (weight 2)
//	UNMQR  — apply a GEQRT transformation to a trailing tile     (weight 6)
//	TSMQR  — apply a TSQRT transformation to a trailing pair     (weight 12)
//	TTMQR  — apply a TTQRT transformation to a trailing pair     (weight 6)
//
// Weights are in units of nb³/3 floating-point operations (4 real flops per
// complex flop in the complex domains).
//
// As in LAPACK, TSQRT and TTQRT are the l=0 and l=n instances of the
// pentagonal factorization TPQRT, and TSMQR/TTMQR are instances of TPMQRT;
// this package implements the general pentagonal kernels, so ragged edge
// tiles (shorter last tile row / narrower last tile column) are supported.
//
// All kernels follow LAPACK's compact-WY representation with inner blocking
// parameter ib: reflectors are processed in panels of ib columns and each
// panel's triangular factor T is stored in an ib×n array. Matrices are
// row-major with an explicit leading dimension (row stride).
//
// Householder conventions match LAPACK: H = I − τ·v·vᴴ with v[0] = 1 and a
// real β, the factorization applies Hᴴ from the left, Q = H₁·H₂···H_k. In
// the real domains the conjugations degenerate to the familiar
// H = I − τ·v·vᵀ; one generic implementation serves both because every
// real/complex difference is funneled through the vec.Conj /
// vec.FromParts hooks, which compile to straight-line code per
// instantiation. The paper evaluates double complex alongside double
// because the computation-to-communication ratio is four times higher in
// complex arithmetic (Section 4); the single-precision instantiations halve
// the memory traffic instead.
package kernel
