package kernel

// GEMM computes C += A·B for row-major blocks: A is m×kk, B is kk×n, C is
// m×n. It is the reference kernel of Figures 4 and 5 of the paper: the
// update kernels' speeds are compared against plain matrix multiplication
// at the same tile size.
func GEMM(m, n, kk int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		ci := c[i*ldc : i*ldc+n]
		for l := 0; l < kk; l++ {
			ail := a[i*lda+l]
			if ail == 0 {
				continue
			}
			bl := b[l*ldb : l*ldb+n]
			for j, bv := range bl {
				ci[j] += ail * bv
			}
		}
	}
}
