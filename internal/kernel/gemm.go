package kernel

import "tiledqr/internal/vec"

// GEMM computes C += A·B for row-major blocks: A is m×kk, B is kk×n, C is
// m×n. It is the reference kernel of Figures 4 and 5 of the paper: the
// update kernels' speeds are compared against plain matrix multiplication
// at the same tile size. work may be nil or micro-GEMM pack scratch
// (length ≥ vec.GemmPackLen for the shape routes the product through the
// packed SIMD path; WorkLen(n, ib) covers any n×n×n product). Without it —
// or for the complex domains — the inner dimension is consumed two rows of
// B at a time (vec.Axpy2), halving the load/store traffic on each row of C.
func GEMM[T vec.Scalar](m, n, kk int, a []T, lda int, b []T, ldb int, c []T, ldc int, work []T) {
	if vec.GemmNN(m, n, kk, T(1), a, lda, b, ldb, c, ldc, work) {
		return
	}
	for i := 0; i < m; i++ {
		ci := c[i*ldc : i*ldc+n]
		ai := a[i*lda : i*lda+kk]
		l := 0
		for ; l+1 < kk; l += 2 {
			vec.Axpy2(ai[l], b[l*ldb:l*ldb+n], ai[l+1], b[(l+1)*ldb:(l+1)*ldb+n], ci)
		}
		if l < kk {
			vec.Axpy(ai[l], b[l*ldb:l*ldb+n], ci)
		}
	}
}
