package kernel

import (
	"math"

	"tiledqr/internal/vec"
)

// pentRows returns the number of rows of the pentagonal block B that
// participate in reflector j (0-based), for an m×n B with trapezoid height l:
// column j of B has m−l+min(l, j+1) structurally nonzero leading rows.
// l = 0 gives the TS ("square") case, l = min(m,n) the TT ("triangle") case.
func pentRows(m, l, j int) int {
	return m - l + min(l, j+1)
}

// larfgPent generates the reflector for TPQRT column j: the vector is
// [a(j,j); b(0:p, j)] where p = pentRows(m, l, j). On return a(j,j) = β
// (real); b(0:p, j) still holds the raw column — the caller multiplies it by
// the returned scale (fused into its next row sweep) to obtain v₂. The tail
// norm is the safe single-pass Nrm2 (one Sqrt per reflector instead of one
// Hypot per element), and the β/τ arithmetic runs in float64 for every
// domain as in larfgCol.
func larfgPent[T vec.Scalar](a []T, lda int, b []T, ldb, j, p int) (tau, scale T) {
	alpha := a[j*lda+j]
	var xnorm float64
	if p > 0 {
		xnorm = vec.Nrm2Inc(b[j:], p, ldb)
	}
	if xnorm == 0 && vec.ImagPart(alpha) == 0 {
		return 0, 1
	}
	beta := -math.Copysign(math.Hypot(vec.Abs(alpha), xnorm), vec.RealPart(alpha))
	tau = vec.FromParts[T]((beta-vec.RealPart(alpha))/beta, -vec.ImagPart(alpha)/beta)
	betaT := vec.FromParts[T](beta, 0)
	a[j*lda+j] = betaT
	return tau, 1 / (alpha - betaT)
}

// tpqrt2 factors one panel (columns j0:j0+kb) of the stacked matrix
// [A; B] where A is n×n upper triangular and B is m×n pentagonal with
// trapezoid height l. comb must have length ≥ kb.
//
// As in geqrt2, each reflector is applied with row-contiguous sweeps over B.
// The only pentagonal subtlety is in the T-column dot products: column
// j0+c of B has pentRows(m, l, j0+c) structural rows, so row i contributes
// to comb[c] only when that height exceeds i — a per-row start offset,
// since pentRows is nondecreasing in the column index. The update columns
// (c > jj) always take all p rows, and start never exceeds jj, so one Axpy
// per row covers both. comb[c] accumulates Σ conj(v_i)·b(i, j0+c): the
// Vᴴ·B dot for update columns, the conjugate of the T-column dot for c < jj.
func tpqrt2[T vec.Scalar](m, n, l int, a []T, lda int, b []T, ldb, j0, kb int,
	t []T, ldt int, comb []T) {
	cc := vec.IsComplex[T]()
	for jj := 0; jj < kb; jj++ {
		j := j0 + jj
		p := pentRows(m, l, j)
		tau, scale := larfgPent(a, lda, b, ldb, j, p)
		ctau := vec.Conj(tau)
		cb := comb[:kb]
		clear(cb)
		// Sweep 1: scale the raw reflector column in passing and accumulate
		// the conjugated dots over each column's structural rows. The top
		// parts of the reflectors are distinct identity columns, so A
		// contributes nothing here.
		for i := 0; i < p; i++ {
			start := 0
			if d := i - (m - l) - j0; d > 0 {
				start = d
			}
			row := b[i*ldb+j0 : i*ldb+j0+kb]
			vi := row[jj] * scale
			row[jj] = vi
			vec.Axpy(conjIf(cc, vi), row[start:], cb[start:])
		}
		// Apply Hᴴ to the remaining panel columns: update scalars
		// w = conj(τ)·(A row j + comb), applied to A's row j and then to all
		// p rows of B.
		if jj+1 < kb {
			w := cb[jj+1:]
			arow := a[j*lda+j+1 : j*lda+j0+kb]
			for y, av := range arow {
				wv := ctau * (av + w[y])
				arow[y] = av - wv
				w[y] = wv
			}
			for i := 0; i < p; i++ {
				vec.Axpy(-b[i*ldb+j], w, b[i*ldb+j+1:i*ldb+j0+kb])
			}
		}
		// T(0:jj, jj) = −τ·T(0:jj, 0:jj)·(V₂(:, 0:jj)ᴴ·v₂ⱼ); the conjugated
		// dots are already in comb (no top-part terms), so conjugate back
		// (identity in the real domains).
		for c := 0; c < jj; c++ {
			cb[c] = conjIf(cc, cb[c])
		}
		for r := 0; r < jj; r++ {
			t[r*ldt+j] = -tau * vec.Dot(t[r*ldt+j0+r:r*ldt+j0+jj], cb[r:jj])
		}
		t[jj*ldt+j] = tau
	}
}

// applyPentPanel applies the block reflector of a TPQRT panel (columns
// vc0:vc0+kb of the pentagonal array v, with T in columns vc0:vc0+kb of t)
// to the stacked pair [C1; C2]. The identity part of reflector column vc0+x
// acts on row vc0+x of C1; the pentagonal part acts on C2. If trans it
// applies (I − V·Tᴴ·Vᴴ), else I − V·T·Vᴴ. w must have length ≥ kb·nc;
// pack is micro-GEMM scratch and may be empty (the packed bulk path then
// stays off).
//
// Rows 0:mFull of C2, where mFull = pentRows(m, l, vc0), lie inside the
// pentagonal part of every reflector column (pentRows is nondecreasing in
// the column index, so its minimum over the panel is at vc0): both sweeps
// over that region are plain matrix products, handed to the packed
// micro-GEMM when it will take them. With l = 0 (the TSMQR shape, the
// hottest update kernel) that region is all of C2.
func applyPentPanel[T vec.Scalar](trans bool, m, l int, v []T, ldv, vc0, kb int,
	t []T, ldt int,
	c1 []T, ldc1, c1c0 int,
	c2 []T, ldc2, c2c0, nc int, w, pack []T) {
	xBlock := xBlockOf[T]()
	cc := vec.IsComplex[T]()
	mFull := pentRows(m, l, vc0)
	gemmBulk := vec.GemmOK[T](kb, nc, mFull, len(pack)) &&
		vec.GemmOK[T](mFull, nc, kb, len(pack))
	iStart := 0
	if gemmBulk {
		iStart = mFull
	}
	// W = C1[vc0+x] + V₂ᴴ · C2. The C1 rows seed W (the identity tops of
	// the reflectors); then one sweep over C2's structural rows accumulates
	// the pentagonal parts — row i of C2 is read once and feeds the
	// reflector columns whose pentagonal height exceeds i (a suffix
	// x ≥ xmin, since pentRows is nondecreasing in the column index).
	for x := 0; x < kb; x++ {
		top := (vc0 + x) * ldc1
		copy(w[x*nc:x*nc+nc], c1[top+c1c0:top+c1c0+nc])
	}
	for xb := 0; xb < kb; xb += xBlock {
		xe := min(xb+xBlock, kb)
		pmaxB := pentRows(m, l, vc0+xe-1)
		for i := iStart; i < pmaxB; i++ {
			ci := c2[i*ldc2+c2c0 : i*ldc2+c2c0+nc]
			xs := xb
			if d := i - (m - l) - vc0; d > xs {
				xs = d
			}
			vrow := v[i*ldv+vc0 : i*ldv+vc0+xe]
			for x := xs; x < xe; x++ {
				vec.Axpy(conjIf(cc, vrow[x]), ci, w[x*nc:x*nc+nc])
			}
		}
	}
	if gemmBulk {
		// W += V₂ᵀ·C₂ over the fully pentagonal rows in one packed product
		// (real domains only, so the conjugation is the identity).
		vec.GemmTN(kb, nc, mFull, T(1), v[vc0:], ldv,
			c2[c2c0:], ldc2, w[:kb*nc], nc, pack)
	}
	triMulW(trans, kb, t, ldt, vc0, w, nc)
	// C1 −= W ; C2 −= V₂·W, same blocking, consuming W rows in pairs per
	// C2 row.
	for x := 0; x < kb; x++ {
		top := (vc0 + x) * ldc1
		vec.Sub(w[x*nc:x*nc+nc], c1[top+c1c0:top+c1c0+nc])
	}
	for xb := 0; xb < kb; xb += xBlock {
		xe := min(xb+xBlock, kb)
		pmaxB := pentRows(m, l, vc0+xe-1)
		for i := iStart; i < pmaxB; i++ {
			ci := c2[i*ldc2+c2c0 : i*ldc2+c2c0+nc]
			xs := xb
			if d := i - (m - l) - vc0; d > xs {
				xs = d
			}
			vrow := v[i*ldv+vc0 : i*ldv+vc0+xe]
			x := xs
			for ; x+1 < xe; x += 2 {
				vec.Axpy2(-vrow[x], w[x*nc:x*nc+nc], -vrow[x+1], w[(x+1)*nc:(x+1)*nc+nc], ci)
			}
			if x < xe {
				vec.Axpy(-vrow[x], w[x*nc:x*nc+nc], ci)
			}
		}
	}
	if gemmBulk {
		vec.GemmNN(mFull, nc, kb, T(-1), v[vc0:], ldv,
			w[:kb*nc], nc, c2[c2c0:], ldc2, pack)
	}
}

// TPQRT computes the blocked QR factorization of the stacked matrix [A; B]
// where A is the n×n upper triangular R of the pivot tile (its strictly
// lower part is NOT referenced — it may hold the pivot's own Householder
// vectors) and B is an m×n pentagonal tile with trapezoid height l:
//
//	l = 0        — TSQRT: B is a full square/rectangular tile
//	l = min(m,n) — TTQRT: B is upper triangular/trapezoidal (the R of the
//	               tile being zeroed); entries of B outside the trapezoid
//	               are not referenced
//
// On return A holds the updated R, B holds the V₂ parts of the reflectors,
// and t (ib rows, stride ldt ≥ n) holds the panel T factors. work may be
// nil or a scratch slice of length ≥ WorkLen(n, ib).
func TPQRT[T vec.Scalar](m, n, l, ib int, a []T, lda int, b []T, ldb int,
	t []T, ldt int, work []T) {
	if n == 0 || m == 0 {
		return
	}
	if l < 0 || l > min(m, n) {
		panic("kernel: TPQRT requires 0 ≤ l ≤ min(m,n)")
	}
	ib = clampIB(ib, n)
	work = ensureWork(work, WorkLen(n, ib))
	comb, w, pack := work[:ib], work[ib:ib+ib*n], work[ib+ib*n:]
	for k0 := 0; k0 < n; k0 += ib {
		kb := min(ib, n-k0)
		tpqrt2(m, n, l, a, lda, b, ldb, k0, kb, t, ldt, comb)
		if k0+kb < n {
			// Trailing update inside [A; B]: C1 is A's rows k0:k0+kb,
			// columns k0+kb:n; C2 is B's columns k0+kb:n.
			applyPentPanel(true, m, l, b, ldb, k0, kb, t, ldt,
				a, lda, k0+kb, b, ldb, k0+kb, n-k0-kb, w, pack)
		}
	}
}

// TSQRT is TPQRT with l = 0: zero a full m×n tile b using the n×n triangle a
// on top of it (Algorithm 2 of the paper, "triangle on top of square").
func TSQRT[T vec.Scalar](m, n, ib int, a []T, lda int, b []T, ldb int,
	t []T, ldt int, work []T) {
	TPQRT(m, n, 0, ib, a, lda, b, ldb, t, ldt, work)
}

// TTQRT is TPQRT with l = min(m,n): zero the triangular/trapezoidal tile b
// using the triangle a on top of it (Algorithm 3, "triangle on top of
// triangle"). Its pentagonal structure is what makes it cost 2 weight units
// instead of TSQRT's 6.
func TTQRT[T vec.Scalar](m, n, ib int, a []T, lda int, b []T, ldb int,
	t []T, ldt int, work []T) {
	TPQRT(m, n, min(m, n), ib, a, lda, b, ldb, t, ldt, work)
}

// TPMQRT applies the transformation computed by TPQRT to the stacked pair
// [C1; C2]: rows 0:k of the tile c1 and the full m×nc tile c2. v (m×k
// pentagonal, trapezoid height l) and t are TPQRT's outputs; trans selects
// Qᴴ (as used during factorization) versus Q. work may be nil or a scratch
// slice of length ≥ ib·nc; length ≥ ApplyWorkLen(m, ib, nc) additionally
// enables the packed bulk path.
func TPMQRT[T vec.Scalar](trans bool, m, k, l, ib int, v []T, ldv int, t []T, ldt int,
	c1 []T, ldc1 int, c2 []T, ldc2, nc int, work []T) {
	if k == 0 || nc == 0 {
		return
	}
	ib = clampIB(ib, k)
	work = ensureWork(work, ib*nc)
	w, pack := work[:ib*nc], work[ib*nc:]
	if trans {
		for k0 := 0; k0 < k; k0 += ib {
			kb := min(ib, k-k0)
			applyPentPanel(true, m, l, v, ldv, k0, kb, t, ldt,
				c1, ldc1, 0, c2, ldc2, 0, nc, w, pack)
		}
	} else {
		start := ((k - 1) / ib) * ib
		for k0 := start; k0 >= 0; k0 -= ib {
			kb := min(ib, k-k0)
			applyPentPanel(false, m, l, v, ldv, k0, kb, t, ldt,
				c1, ldc1, 0, c2, ldc2, 0, nc, w, pack)
		}
	}
}

// TSMQR is TPMQRT with l = 0 (apply a TSQRT transformation).
func TSMQR[T vec.Scalar](trans bool, m, k, ib int, v []T, ldv int, t []T, ldt int,
	c1 []T, ldc1 int, c2 []T, ldc2, nc int, work []T) {
	TPMQRT(trans, m, k, 0, ib, v, ldv, t, ldt, c1, ldc1, c2, ldc2, nc, work)
}

// TTMQR is TPMQRT with l = min(m,k) (apply a TTQRT transformation).
func TTMQR[T vec.Scalar](trans bool, m, k, ib int, v []T, ldv int, t []T, ldt int,
	c1 []T, ldc1 int, c2 []T, ldc2, nc int, work []T) {
	TPMQRT(trans, m, k, min(m, k), ib, v, ldv, t, ldt, c1, ldc1, c2, ldc2, nc, work)
}
