package kernel

import "math"

// pentRows returns the number of rows of the pentagonal block B that
// participate in reflector j (0-based), for an m×n B with trapezoid height l:
// column j of B has m−l+min(l, j+1) structurally nonzero leading rows.
// l = 0 gives the TS ("square") case, l = min(m,n) the TT ("triangle") case.
func pentRows(m, l, j int) int {
	return m - l + min(l, j+1)
}

// larfgPent generates the reflector for TPQRT column j: the vector is
// [a(j,j); b(0:p, j)] where p = pentRows(m, l, j). On return a(j,j) = β and
// b(0:p, j) holds v₂.
func larfgPent(a []float64, lda int, b []float64, ldb, j, p int) (tau float64) {
	alpha := a[j*lda+j]
	var xnorm float64
	for i := 0; i < p; i++ {
		xnorm = math.Hypot(xnorm, b[i*ldb+j])
	}
	if xnorm == 0 {
		return 0
	}
	beta := -math.Copysign(math.Hypot(alpha, xnorm), alpha)
	tau = (beta - alpha) / beta
	scale := 1 / (alpha - beta)
	for i := 0; i < p; i++ {
		b[i*ldb+j] *= scale
	}
	a[j*lda+j] = beta
	return tau
}

// tpqrt2 factors one panel (columns j0:j0+kb) of the stacked matrix
// [A; B] where A is n×n upper triangular and B is m×n pentagonal with
// trapezoid height l. tmp must have length ≥ kb.
func tpqrt2(m, n, l int, a []float64, lda int, b []float64, ldb, j0, kb int,
	t []float64, ldt int, tmp []float64) {
	for jj := 0; jj < kb; jj++ {
		j := j0 + jj
		p := pentRows(m, l, j)
		tau := larfgPent(a, lda, b, ldb, j, p)
		// Apply H_j to the remaining panel columns. The top part of v_j is
		// e_j, so only row j of A and rows 0:p of B are involved.
		for c := j + 1; c < j0+kb; c++ {
			w := a[j*lda+c]
			for i := 0; i < p; i++ {
				w += b[i*ldb+j] * b[i*ldb+c]
			}
			w *= tau
			a[j*lda+c] -= w
			for i := 0; i < p; i++ {
				b[i*ldb+c] -= w * b[i*ldb+j]
			}
		}
		// T(0:jj, jj) = −τ · T(0:jj, 0:jj) · (V₂(:, 0:jj)ᵀ · v₂ⱼ).
		// Top parts are distinct identity columns, so they contribute 0.
		for c := 0; c < jj; c++ {
			pc := pentRows(m, l, j0+c)
			var s float64
			for i := 0; i < pc; i++ {
				s += b[i*ldb+j0+c] * b[i*ldb+j]
			}
			tmp[c] = s
		}
		for r := 0; r < jj; r++ {
			var s float64
			for c := r; c < jj; c++ {
				s += t[r*ldt+j0+c] * tmp[c]
			}
			t[r*ldt+j] = -tau * s
		}
		t[jj*ldt+j] = tau
	}
}

// applyPentPanel applies the block reflector of a TPQRT panel (columns
// vc0:vc0+kb of the pentagonal array v, with T in columns vc0:vc0+kb of t)
// to the stacked pair [C1; C2]. The identity part of reflector column vc0+x
// acts on row vc0+x of C1; the pentagonal part acts on C2. If trans it
// applies (I − V·T·Vᵀ)ᵀ, else I − V·T·Vᵀ. w must have length ≥ kb·nc.
func applyPentPanel(trans bool, m, l int, v []float64, ldv, vc0, kb int,
	t []float64, ldt int,
	c1 []float64, ldc1, c1c0 int,
	c2 []float64, ldc2, c2c0, nc int, w []float64) {
	// W = C1[vc0+x] + V₂ᵀ · C2
	for x := 0; x < kb; x++ {
		col := vc0 + x
		p := pentRows(m, l, col)
		wx := w[x*nc : x*nc+nc]
		top := col * ldc1
		copy(wx, c1[top+c1c0:top+c1c0+nc])
		for i := 0; i < p; i++ {
			vix := v[i*ldv+col]
			if vix == 0 {
				continue
			}
			ci := c2[i*ldc2+c2c0 : i*ldc2+c2c0+nc]
			for y, cv := range ci {
				wx[y] += vix * cv
			}
		}
	}
	triMulW(trans, kb, t, ldt, vc0, w, nc)
	// C1 −= W ; C2 −= V₂·W
	for x := 0; x < kb; x++ {
		col := vc0 + x
		p := pentRows(m, l, col)
		wx := w[x*nc : x*nc+nc]
		top := col * ldc1
		cd := c1[top+c1c0 : top+c1c0+nc]
		for y, wv := range wx {
			cd[y] -= wv
		}
		for i := 0; i < p; i++ {
			vix := v[i*ldv+col]
			if vix == 0 {
				continue
			}
			ci := c2[i*ldc2+c2c0 : i*ldc2+c2c0+nc]
			for y, wv := range wx {
				ci[y] -= vix * wv
			}
		}
	}
}

// TPQRT computes the blocked QR factorization of the stacked matrix [A; B]
// where A is the n×n upper triangular R of the pivot tile (its strictly
// lower part is NOT referenced — it may hold the pivot's own Householder
// vectors) and B is an m×n pentagonal tile with trapezoid height l:
//
//	l = 0        — TSQRT: B is a full square/rectangular tile
//	l = min(m,n) — TTQRT: B is upper triangular/trapezoidal (the R of the
//	               tile being zeroed); entries of B outside the trapezoid
//	               are not referenced
//
// On return A holds the updated R, B holds the V₂ parts of the reflectors,
// and t (ib rows, stride ldt ≥ n) holds the panel T factors. work may be
// nil or a scratch slice of length ≥ ib·(n+1).
func TPQRT(m, n, l, ib int, a []float64, lda int, b []float64, ldb int,
	t []float64, ldt int, work []float64) {
	if n == 0 || m == 0 {
		return
	}
	if l < 0 || l > min(m, n) {
		panic("kernel: TPQRT requires 0 ≤ l ≤ min(m,n)")
	}
	ib = clampIB(ib, n)
	work = ensureWork(work, ib*(n+1))
	tmp, w := work[:ib], work[ib:]
	for k0 := 0; k0 < n; k0 += ib {
		kb := min(ib, n-k0)
		tpqrt2(m, n, l, a, lda, b, ldb, k0, kb, t, ldt, tmp)
		if k0+kb < n {
			// Trailing update inside [A; B]: C1 is A's rows k0:k0+kb,
			// columns k0+kb:n; C2 is B's columns k0+kb:n.
			applyPentPanel(true, m, l, b, ldb, k0, kb, t, ldt,
				a, lda, k0+kb, b, ldb, k0+kb, n-k0-kb, w)
		}
	}
}

// TSQRT is TPQRT with l = 0: zero a full m×n tile b using the n×n triangle a
// on top of it (Algorithm 2 of the paper, "triangle on top of square").
func TSQRT(m, n, ib int, a []float64, lda int, b []float64, ldb int,
	t []float64, ldt int, work []float64) {
	TPQRT(m, n, 0, ib, a, lda, b, ldb, t, ldt, work)
}

// TTQRT is TPQRT with l = min(m,n): zero the triangular/trapezoidal tile b
// using the triangle a on top of it (Algorithm 3, "triangle on top of
// triangle"). Its pentagonal structure is what makes it cost 2 weight units
// instead of TSQRT's 6.
func TTQRT(m, n, ib int, a []float64, lda int, b []float64, ldb int,
	t []float64, ldt int, work []float64) {
	TPQRT(m, n, min(m, n), ib, a, lda, b, ldb, t, ldt, work)
}

// TPMQRT applies the transformation computed by TPQRT to the stacked pair
// [C1; C2]: rows 0:k of the tile c1 and the full m×nc tile c2. v (m×k
// pentagonal, trapezoid height l) and t are TPQRT's outputs; trans selects
// Qᵀ (as used during factorization) versus Q. work may be nil or a scratch
// slice of length ≥ ib·nc.
func TPMQRT(trans bool, m, k, l, ib int, v []float64, ldv int, t []float64, ldt int,
	c1 []float64, ldc1 int, c2 []float64, ldc2, nc int, work []float64) {
	if k == 0 || nc == 0 {
		return
	}
	ib = clampIB(ib, k)
	work = ensureWork(work, ib*nc)
	if trans {
		for k0 := 0; k0 < k; k0 += ib {
			kb := min(ib, k-k0)
			applyPentPanel(true, m, l, v, ldv, k0, kb, t, ldt,
				c1, ldc1, 0, c2, ldc2, 0, nc, work)
		}
	} else {
		start := ((k - 1) / ib) * ib
		for k0 := start; k0 >= 0; k0 -= ib {
			kb := min(ib, k-k0)
			applyPentPanel(false, m, l, v, ldv, k0, kb, t, ldt,
				c1, ldc1, 0, c2, ldc2, 0, nc, work)
		}
	}
}

// TSMQR is TPMQRT with l = 0 (apply a TSQRT transformation).
func TSMQR(trans bool, m, k, ib int, v []float64, ldv int, t []float64, ldt int,
	c1 []float64, ldc1 int, c2 []float64, ldc2, nc int, work []float64) {
	TPMQRT(trans, m, k, 0, ib, v, ldv, t, ldt, c1, ldc1, c2, ldc2, nc, work)
}

// TTMQR is TPMQRT with l = min(m,k) (apply a TTQRT transformation).
func TTMQR(trans bool, m, k, ib int, v []float64, ldv int, t []float64, ldt int,
	c1 []float64, ldc1 int, c2 []float64, ldc2, nc int, work []float64) {
	TPMQRT(trans, m, k, min(m, k), ib, v, ldv, t, ldt, c1, ldc1, c2, ldc2, nc, work)
}
