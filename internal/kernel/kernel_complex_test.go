package kernel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"tiledqr/internal/tile"
)

// The complex-domain tests instantiate the same generic kernels at
// complex128 and pin the LAPACK complex Householder conventions (real β,
// complex τ, Hᴴ applied from the left) that the conjugation hooks must
// reproduce.

func TestComplexGEQRTReconstruction(t *testing.T) {
	cases := []struct{ m, n, ib int }{
		{8, 8, 3}, {8, 8, 8}, {8, 8, 1}, {12, 5, 2}, {5, 12, 4}, {1, 1, 1}, {16, 16, 5},
	}
	for _, c := range cases {
		a0 := tile.RandDense[complex128](c.m, c.n, int64(c.m*100+c.n))
		a := a0.Clone()
		k := min(c.m, c.n)
		tf := make([]complex128, max(1, c.ib)*c.n)
		GEQRT(c.m, c.n, c.ib, a.Data, a.Stride, tf, c.n, nil)
		q := qFromGEQRT(c.m, k, c.ib, a, tf, c.n)
		r := upperTriOf(a)
		if res := tile.ResidualQR(a0, q, r); res > tol {
			t.Errorf("ZGEQRT %dx%d ib=%d: residual %g", c.m, c.n, c.ib, res)
		}
		if ortho := tile.OrthoResidual(q); ortho > tol {
			t.Errorf("ZGEQRT %dx%d ib=%d: orthogonality %g", c.m, c.n, c.ib, ortho)
		}
		// R's diagonal must be real (LAPACK zlarfg convention).
		for i := 0; i < k; i++ {
			if math.Abs(imag(r.At(i, i))) > tol {
				t.Errorf("ZGEQRT %dx%d: R(%d,%d) = %v has imaginary diagonal", c.m, c.n, i, i, r.At(i, i))
			}
		}
	}
}

func checkZTP(t *testing.T, m, n, l, ib int, aTri, b0 *tile.Dense[complex128]) {
	t.Helper()
	a := aTri.Clone()
	b := b0.Clone()
	tf := make([]complex128, max(1, min(max(ib, 1), n))*n)
	TPQRT(m, n, l, ib, a.Data, a.Stride, b.Data, b.Stride, tf, n, nil)

	// Qᴴ·[A0; B0] = [R; 0].
	c1 := aTri.Clone()
	c2 := b0.Clone()
	TPMQRT(true, m, n, l, ib, b.Data, b.Stride, tf, n, c1.Data, c1.Stride, c2.Data, c2.Stride, n, nil)
	if d := tile.MaxAbsDiff(c1, upperTriOf(a)); d > tol {
		t.Errorf("ZTPQRT m=%d n=%d l=%d ib=%d: top differs from R by %g", m, n, l, ib, d)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < pentRows(m, l, j); i++ {
			if cmplx.Abs(c2.At(i, j)) > tol {
				t.Errorf("ZTPQRT m=%d n=%d l=%d: B(%d,%d) not annihilated: %v", m, n, l, i, j, c2.At(i, j))
			}
		}
	}

	// Round trip Q·Qᴴ.
	x1 := tile.RandDense[complex128](n, n, 7)
	x2 := randPent[complex128](m, n, l, 8)
	y1, y2 := x1.Clone(), x2.Clone()
	TPMQRT(true, m, n, l, ib, b.Data, b.Stride, tf, n, y1.Data, y1.Stride, y2.Data, y2.Stride, n, nil)
	TPMQRT(false, m, n, l, ib, b.Data, b.Stride, tf, n, y1.Data, y1.Stride, y2.Data, y2.Stride, n, nil)
	if d := tile.MaxAbsDiff(y1, x1); d > tol {
		t.Errorf("ZTPQRT m=%d n=%d l=%d: round trip top error %g", m, n, l, d)
	}
	if d := tile.MaxAbsDiff(y2, x2); d > tol {
		t.Errorf("ZTPQRT m=%d n=%d l=%d: round trip bottom error %g", m, n, l, d)
	}
}

func TestComplexTSQRT(t *testing.T) {
	for _, c := range []struct{ m, n, ib int }{{8, 8, 3}, {8, 8, 8}, {5, 8, 2}, {8, 5, 4}, {1, 1, 1}} {
		checkZTP(t, c.m, c.n, 0, c.ib, randUpperTri[complex128](c.n, 11), tile.RandDense[complex128](c.m, c.n, 12))
	}
}

func TestComplexTTQRT(t *testing.T) {
	for _, c := range []struct{ m, n, ib int }{{8, 8, 3}, {8, 8, 1}, {5, 8, 2}, {1, 1, 1}, {16, 16, 4}} {
		l := min(c.m, c.n)
		checkZTP(t, c.m, c.n, l, c.ib, randUpperTri[complex128](c.n, 21), randPent[complex128](c.m, c.n, l, 22))
	}
}

func TestComplexTPQRTGeneralPentagon(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 20; iter++ {
		m := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		l := rng.Intn(min(m, n) + 1)
		ib := 1 + rng.Intn(n)
		checkZTP(t, m, n, l, ib, randUpperTri[complex128](n, int64(iter)), randPent[complex128](m, n, l, int64(iter+100)))
	}
}

func TestComplexTTQRTDoesNotTouchLowerTriangle(t *testing.T) {
	const n, ib = 6, 2
	sentinel := complex(9e299, -9e299)
	aTri := randUpperTri[complex128](n, 31)
	b := randPent[complex128](n, n, n, 32)
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			b.Set(i, j, sentinel)
		}
	}
	a := aTri.Clone()
	tf := make([]complex128, ib*n)
	TPQRT(n, n, n, ib, a.Data, a.Stride, b.Data, b.Stride, tf, n, nil)
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			if b.At(i, j) != sentinel {
				t.Fatalf("ZTTQRT touched B(%d,%d) below the trapezoid", i, j)
			}
		}
	}
}

func TestComplexLarfgMakesBetaReal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 40; iter++ {
		n := 1 + rng.Intn(8)
		a := tile.RandDense[complex128](n, 1, int64(iter))
		orig := a.Clone()
		tau, scale := larfgCol(a.Data, a.Stride, 0, 0, n)
		beta := a.At(0, 0)
		if math.Abs(imag(beta)) > tol {
			t.Fatalf("iter %d: β = %v not real", iter, beta)
		}
		// |β| = ‖x‖.
		var norm2 float64
		for i := 0; i < n; i++ {
			v := orig.At(i, 0)
			norm2 += real(v)*real(v) + imag(v)*imag(v)
		}
		if tau == 0 {
			continue
		}
		if math.Abs(real(beta)*real(beta)-norm2) > tol*math.Max(norm2, 1) {
			t.Fatalf("iter %d: β² = %g, ‖x‖² = %g", iter, real(beta)*real(beta), norm2)
		}
		// Hᴴ·x = β·e₁ with H = I − τ·v·vᴴ.
		// The tail is returned raw; the caller applies scale to obtain v.
		v := make([]complex128, n)
		v[0] = 1
		for i := 1; i < n; i++ {
			v[i] = a.At(i, 0) * scale
		}
		var vhx complex128
		for i := 0; i < n; i++ {
			vhx += cmplx.Conj(v[i]) * orig.At(i, 0)
		}
		for i := 0; i < n; i++ {
			hx := orig.At(i, 0) - cmplx.Conj(tau)*v[i]*vhx
			var want complex128
			if i == 0 {
				want = beta
			}
			if cmplx.Abs(hx-want) > tol {
				t.Fatalf("iter %d: (Hᴴx)[%d] = %v, want %v", iter, i, hx, want)
			}
		}
	}
}

// TestSinglePrecisionKernels runs the reconstruction check at float32 and
// complex64: residual and orthogonality must reach single-precision levels.
func TestSinglePrecisionKernels(t *testing.T) {
	const tol32 = 5e-5
	{
		a0 := tile.RandDense[float32](16, 12, 3)
		a := a0.Clone()
		tf := make([]float32, 4*12)
		GEQRT(16, 12, 4, a.Data, a.Stride, tf, 12, nil)
		q := qFromGEQRT(16, 12, 4, a, tf, 12)
		if res := tile.ResidualQR(a0, q, upperTriOf(a)); res > tol32 {
			t.Errorf("float32 GEQRT residual %g", res)
		}
		if ortho := tile.OrthoResidual(q); ortho > tol32 {
			t.Errorf("float32 GEQRT orthogonality %g", ortho)
		}
	}
	{
		a0 := tile.RandDense[complex64](12, 12, 4)
		a := a0.Clone()
		tf := make([]complex64, 3*12)
		GEQRT(12, 12, 3, a.Data, a.Stride, tf, 12, nil)
		q := qFromGEQRT(12, 12, 3, a, tf, 12)
		if res := tile.ResidualQR(a0, q, upperTriOf(a)); res > tol32 {
			t.Errorf("complex64 GEQRT residual %g", res)
		}
		if ortho := tile.OrthoResidual(q); ortho > tol32 {
			t.Errorf("complex64 GEQRT orthogonality %g", ortho)
		}
	}
	// TS and TT elimination chains at float32.
	aTri := randUpperTri[float32](8, 41)
	b := tile.RandDense[float32](8, 8, 42)
	a := aTri.Clone()
	bb := b.Clone()
	tf := make([]float32, 3*8)
	TPQRT(8, 8, 0, 3, a.Data, a.Stride, bb.Data, bb.Stride, tf, 8, nil)
	c1 := aTri.Clone()
	c2 := b.Clone()
	TPMQRT(true, 8, 8, 0, 3, bb.Data, bb.Stride, tf, 8, c1.Data, c1.Stride, c2.Data, c2.Stride, 8, nil)
	if d := tile.MaxAbsDiff(c1, upperTriOf(a)); d > tol32 {
		t.Errorf("float32 TSQRT top differs from R by %g", d)
	}
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			if d := float64(c2.At(i, j)); math.Abs(d) > tol32 {
				t.Errorf("float32 TSQRT B(%d,%d) not annihilated: %g", i, j, d)
			}
		}
	}
}
