package kernel

import (
	"math"
	"math/rand"
	"testing"

	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
)

const tol = 1e-11

// qFromGEQRT reconstructs the explicit m×m orthogonal (unitary) factor of a
// GEQRT factorization by applying Q to the identity.
func qFromGEQRT[T vec.Scalar](m, k, ib int, v *tile.Dense[T], t []T, ldt int) *tile.Dense[T] {
	q := tile.Identity[T](m)
	UNMQR(false, m, k, ib, v.Data, v.Stride, t, ldt, q.Data, q.Stride, m, nil)
	return q
}

// upperTriOf returns the upper triangle/trapezoid of a (the R factor),
// zeroing everything below the diagonal.
func upperTriOf[T vec.Scalar](a *tile.Dense[T]) *tile.Dense[T] {
	r := a.Clone()
	for i := 1; i < r.Rows; i++ {
		for j := 0; j < min(i, r.Cols); j++ {
			r.Set(i, j, 0)
		}
	}
	return r
}

func TestGEQRTReconstruction(t *testing.T) {
	cases := []struct{ m, n, ib int }{
		{8, 8, 4}, {8, 8, 3}, {8, 8, 8}, {8, 8, 1},
		{12, 5, 2}, {5, 12, 4}, {1, 1, 1}, {7, 1, 1}, {1, 6, 2},
		{16, 16, 5}, {30, 17, 8},
	}
	for _, c := range cases {
		a0 := tile.RandDense[float64](c.m, c.n, int64(c.m*100+c.n))
		a := a0.Clone()
		k := min(c.m, c.n)
		tf := make([]float64, max(1, c.ib)*c.n)
		GEQRT(c.m, c.n, c.ib, a.Data, a.Stride, tf, c.n, nil)
		q := qFromGEQRT(c.m, k, c.ib, a, tf, c.n)
		r := upperTriOf(a)
		if res := tile.ResidualQR(a0, q, r); res > tol {
			t.Errorf("GEQRT %dx%d ib=%d: residual %g", c.m, c.n, c.ib, res)
		}
		if ortho := tile.OrthoResidual(q); ortho > tol {
			t.Errorf("GEQRT %dx%d ib=%d: orthogonality %g", c.m, c.n, c.ib, ortho)
		}
	}
}

func TestGEQRTTransAppliesQT(t *testing.T) {
	m, n, ib := 10, 6, 3
	a0 := tile.RandDense[float64](m, n, 5)
	a := a0.Clone()
	tf := make([]float64, ib*n)
	GEQRT(m, n, ib, a.Data, a.Stride, tf, n, nil)
	// Qᵀ·A0 must equal R.
	c := a0.Clone()
	UNMQR(true, m, n, ib, a.Data, a.Stride, tf, n, c.Data, c.Stride, n, nil)
	r := upperTriOf(a)
	if d := tile.MaxAbsDiff(c, tile.Mul(tile.Identity[float64](m), r)); d > tol {
		t.Errorf("QᵀA differs from R by %g", d)
	}
}

func TestGEQRTInnerBlockingInvariance(t *testing.T) {
	m, n := 20, 20
	a0 := tile.RandDense[float64](m, n, 9)
	var ref *tile.Dense[float64]
	for _, ib := range []int{1, 2, 3, 5, 7, 20} {
		a := a0.Clone()
		tf := make([]float64, ib*n)
		GEQRT(m, n, ib, a.Data, a.Stride, tf, n, nil)
		r := upperTriOf(a)
		if ref == nil {
			ref = r
			continue
		}
		if d := tile.MaxAbsDiff(ref, r); d > tol {
			t.Errorf("ib=%d: R differs from ib=1 reference by %g", ib, d)
		}
	}
}

func TestGEQRTZeroMatrix(t *testing.T) {
	m, n := 6, 4
	a := tile.NewDense[float64](m, n)
	tf := make([]float64, 2*n)
	GEQRT(m, n, 2, a.Data, a.Stride, tf, n, nil)
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("GEQRT of zero matrix must remain zero")
		}
	}
}

// tpFactor runs TPQRT on copies of a triangular top and pentagonal bottom,
// returning the updated triangle (R), the reflectors, and T.
func tpFactor[T vec.Scalar](tb testing.TB, m, n, l, ib int, a0tri, b0 *tile.Dense[T]) (r, v *tile.Dense[T], tf []T) {
	tb.Helper()
	a := a0tri.Clone()
	b := b0.Clone()
	tf = make([]T, max(1, min(ib, n))*n)
	TPQRT(m, n, l, ib, a.Data, a.Stride, b.Data, b.Stride, tf, n, nil)
	return a, b, tf
}

// checkTP verifies a TPQRT factorization by applying Qᵀ to the original
// stacked pair and checking [R; 0], then round-tripping Q·Qᵀ.
func checkTP[T vec.Scalar](t *testing.T, m, n, l, ib int, a0tri, b0 *tile.Dense[T]) {
	t.Helper()
	r, v, tf := tpFactor(t, m, n, l, ib, a0tri, b0)
	ibn := min(max(ib, 1), n)

	// Qᵀ·[A0; B0] = [R; 0] (within the pentagonal region of B).
	c1 := a0tri.Clone()
	c2 := b0.Clone()
	TPMQRT(true, m, n, l, ib, v.Data, v.Stride, tf, n,
		c1.Data, c1.Stride, c2.Data, c2.Stride, n, nil)
	if d := tile.MaxAbsDiff(c1, upperTriOf(r)); d > tol {
		t.Errorf("TPQRT m=%d n=%d l=%d ib=%d: Qᵀ[A;B] top differs from R by %g", m, n, l, ibn, d)
	}
	for j := 0; j < n; j++ {
		p := pentRows(m, l, j)
		for i := 0; i < p; i++ {
			if vec.Abs(c2.At(i, j)) > tol {
				t.Errorf("TPQRT m=%d n=%d l=%d ib=%d: B(%d,%d) not annihilated: %v",
					m, n, l, ibn, i, j, c2.At(i, j))
			}
		}
	}

	// Round trip: Q·(Qᵀ·[X1; X2]) = [X1; X2] for random X.
	x1 := tile.RandDense[T](n, n, 77)
	x2 := tile.RandDense[T](m, n, 78)
	// Zero X2 outside the pentagonal region so the structured kernel's
	// untouched region stays consistent.
	for j := 0; j < n; j++ {
		for i := pentRows(m, l, j); i < m; i++ {
			x2.Set(i, j, 0)
		}
	}
	y1, y2 := x1.Clone(), x2.Clone()
	TPMQRT(true, m, n, l, ib, v.Data, v.Stride, tf, n, y1.Data, y1.Stride, y2.Data, y2.Stride, n, nil)
	TPMQRT(false, m, n, l, ib, v.Data, v.Stride, tf, n, y1.Data, y1.Stride, y2.Data, y2.Stride, n, nil)
	if d := tile.MaxAbsDiff(y1, x1); d > tol {
		t.Errorf("TPQRT m=%d n=%d l=%d ib=%d: Q·Qᵀ round trip top error %g", m, n, l, ibn, d)
	}
	if d := tile.MaxAbsDiff(y2, x2); d > tol {
		t.Errorf("TPQRT m=%d n=%d l=%d ib=%d: Q·Qᵀ round trip bottom error %g", m, n, l, ibn, d)
	}
}

func randUpperTri[T vec.Scalar](n int, seed int64) *tile.Dense[T] {
	return upperTriOf(tile.RandDense[T](n, n, seed))
}

// randPent returns an m×n matrix that is zero outside the pentagonal region
// with trapezoid height l.
func randPent[T vec.Scalar](m, n, l int, seed int64) *tile.Dense[T] {
	b := tile.RandDense[T](m, n, seed)
	for j := 0; j < n; j++ {
		for i := pentRows(m, l, j); i < m; i++ {
			b.Set(i, j, 0)
		}
	}
	return b
}

func TestTSQRT(t *testing.T) {
	for _, c := range []struct{ m, n, ib int }{
		{8, 8, 3}, {8, 8, 8}, {5, 8, 2}, {8, 5, 4}, {1, 1, 1}, {3, 7, 7}, {16, 16, 4},
	} {
		checkTP(t, c.m, c.n, 0, c.ib, randUpperTri[float64](c.n, 11), tile.RandDense[float64](c.m, c.n, 12))
	}
}

func TestTTQRT(t *testing.T) {
	for _, c := range []struct{ m, n, ib int }{
		{8, 8, 3}, {8, 8, 8}, {8, 8, 1}, {5, 8, 2}, {1, 1, 1}, {16, 16, 4},
	} {
		l := min(c.m, c.n)
		checkTP(t, c.m, c.n, l, c.ib, randUpperTri[float64](c.n, 21), randPent[float64](c.m, c.n, l, 22))
	}
}

func TestTPQRTGeneralPentagon(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 30; iter++ {
		m := 1 + rng.Intn(10)
		n := 1 + rng.Intn(10)
		l := rng.Intn(min(m, n) + 1)
		ib := 1 + rng.Intn(n)
		checkTP(t, m, n, l, ib, randUpperTri[float64](n, int64(iter)), randPent[float64](m, n, l, int64(iter+100)))
	}
}

// TestTTQRTDoesNotTouchLowerTriangle verifies the region discipline the DAG
// scheduler relies on: TTQRT and TTMQR must never read or write B's entries
// below the trapezoid (they hold the eliminated tile's own GEQRT vectors,
// possibly being read concurrently by UNMQR).
func TestTTQRTDoesNotTouchLowerTriangle(t *testing.T) {
	const n, ib = 8, 3
	const sentinel = 1e300
	aTri := randUpperTri[float64](n, 31)
	b := randPent[float64](n, n, n, 32)
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			b.Set(i, j, sentinel)
		}
	}
	a := aTri.Clone()
	tf := make([]float64, ib*n)
	TPQRT(n, n, n, ib, a.Data, a.Stride, b.Data, b.Stride, tf, n, nil)
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			if b.At(i, j) != sentinel {
				t.Fatalf("TTQRT touched B(%d,%d) below the trapezoid", i, j)
			}
		}
	}
	// The apply kernel must also leave those entries alone in V and never
	// produce NaN/Inf in C (which it would if it read the sentinels).
	c1 := tile.RandDense[float64](n, n, 33)
	c2 := tile.RandDense[float64](n, n, 34)
	TPMQRT(true, n, n, n, ib, b.Data, b.Stride, tf, n, c1.Data, c1.Stride, c2.Data, c2.Stride, n, nil)
	for _, v := range append(append([]float64{}, c1.Data...), c2.Data...) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("TTMQR read sentinel values outside the trapezoid")
		}
	}
}

// TestTPQRTDoesNotTouchTopLowerTriangle verifies TPQRT never references the
// strictly lower triangle of the top tile A (it holds the pivot tile's own
// GEQRT Householder vectors).
func TestTPQRTDoesNotTouchTopLowerTriangle(t *testing.T) {
	const n, m, ib = 6, 6, 2
	const sentinel = -7e299
	a := randUpperTri[float64](n, 41)
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			a.Set(i, j, sentinel)
		}
	}
	b := tile.RandDense[float64](m, n, 42)
	tf := make([]float64, ib*n)
	TPQRT(m, n, 0, ib, a.Data, a.Stride, b.Data, b.Stride, tf, n, nil)
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			if a.At(i, j) != sentinel {
				t.Fatalf("TPQRT touched A(%d,%d) below the diagonal", i, j)
			}
		}
	}
	for _, v := range b.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("TPQRT read sentinel values from A's lower triangle")
		}
	}
}

func TestTPQRTInnerBlockingInvariance(t *testing.T) {
	m, n := 12, 12
	aTri := randUpperTri[float64](n, 51)
	b := tile.RandDense[float64](m, n, 52)
	var ref *tile.Dense[float64]
	for _, ib := range []int{1, 2, 4, 5, 12} {
		r, _, _ := tpFactor(t, m, n, 0, ib, aTri, b)
		if ref == nil {
			ref = r
			continue
		}
		if d := tile.MaxAbsDiff(upperTriOf(ref), upperTriOf(r)); d > tol {
			t.Errorf("TSQRT ib=%d: R differs from ib=1 reference by %g", ib, d)
		}
	}
}

// TestTwoTileColumnMatchesDenseQR factors a 2-tile column with both the TS
// and TT kernel chains and checks the resulting R (up to column signs)
// against a direct dense QR of the stacked matrix.
func TestTwoTileColumnMatchesDenseQR(t *testing.T) {
	const nb, ib = 6, 3
	top0 := tile.RandDense[float64](nb, nb, 61)
	bot0 := tile.RandDense[float64](nb, nb, 62)

	// Reference: GEQRT of the stacked 2nb×nb matrix.
	stack := tile.NewDense[float64](2*nb, nb)
	for i := 0; i < nb; i++ {
		copy(stack.Data[i*nb:(i+1)*nb], top0.Data[i*nb:(i+1)*nb])
		copy(stack.Data[(nb+i)*nb:(nb+i+1)*nb], bot0.Data[i*nb:(i+1)*nb])
	}
	tf := make([]float64, ib*nb)
	GEQRT(2*nb, nb, ib, stack.Data, stack.Stride, tf, nb, nil)
	refR := upperTriOf(stack.View(0, 0, nb, nb))

	absDiff := func(a, b *tile.Dense[float64]) float64 {
		var m float64
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < a.Cols; j++ {
				d := math.Abs(math.Abs(a.At(i, j)) - math.Abs(b.At(i, j)))
				if d > m {
					m = d
				}
			}
		}
		return m
	}

	// TS chain: GEQRT(top), TSQRT(bottom).
	top := top0.Clone()
	bot := bot0.Clone()
	t1 := make([]float64, ib*nb)
	GEQRT(nb, nb, ib, top.Data, top.Stride, t1, nb, nil)
	t2 := make([]float64, ib*nb)
	TSQRT(nb, nb, ib, top.Data, top.Stride, bot.Data, bot.Stride, t2, nb, nil)
	if d := absDiff(upperTriOf(top), refR); d > tol {
		t.Errorf("TS chain |R| differs from dense |R| by %g", d)
	}

	// TT chain: GEQRT(top), GEQRT(bottom), TTQRT.
	top = top0.Clone()
	bot = bot0.Clone()
	GEQRT(nb, nb, ib, top.Data, top.Stride, t1, nb, nil)
	t3 := make([]float64, ib*nb)
	GEQRT(nb, nb, ib, bot.Data, bot.Stride, t3, nb, nil)
	TTQRT(nb, nb, ib, top.Data, top.Stride, bot.Data, bot.Stride, t2, nb, nil)
	if d := absDiff(upperTriOf(top), refR); d > tol {
		t.Errorf("TT chain |R| differs from dense |R| by %g", d)
	}
}

func TestUNMQRNoReflectorsIsIdentity(t *testing.T) {
	c0 := tile.RandDense[float64](4, 4, 71)
	c := c0.Clone()
	UNMQR(true, 4, 0, 1, nil, 1, nil, 1, c.Data, c.Stride, 4, nil)
	if tile.MaxAbsDiff(c, c0) != 0 {
		t.Error("UNMQR with k=0 modified C")
	}
}

func TestLarfgColZeroTail(t *testing.T) {
	a := tile.NewDense[float64](4, 1)
	a.Set(0, 0, 3)
	tau, scale := larfgCol(a.Data, a.Stride, 0, 0, 4)
	if tau != 0 || scale != 1 {
		t.Errorf("tau, scale = %g, %g, want 0, 1 for zero tail", tau, scale)
	}
	if a.At(0, 0) != 3 {
		t.Errorf("alpha modified: %g", a.At(0, 0))
	}
}

func TestLarfgColAnnihilates(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(8)
		a := tile.RandDense[float64](n, 1, int64(iter))
		orig := a.Clone()
		tau, scale := larfgCol(a.Data, a.Stride, 0, 0, n)
		// Reconstruct H·x and verify it equals [β; 0]. The tail is
		// returned raw; the caller applies scale to obtain v.
		v := make([]float64, n)
		v[0] = 1
		for i := 1; i < n; i++ {
			v[i] = a.At(i, 0) * scale
		}
		var vx float64
		for i := 0; i < n; i++ {
			vx += v[i] * orig.At(i, 0)
		}
		for i := 0; i < n; i++ {
			hx := orig.At(i, 0) - tau*v[i]*vx
			want := 0.0
			if i == 0 {
				want = a.At(0, 0)
			}
			if math.Abs(hx-want) > tol {
				t.Fatalf("iter %d: (Hx)[%d] = %g, want %g", iter, i, hx, want)
			}
		}
		// β² must equal ‖x‖² (norm preservation).
		beta := a.At(0, 0)
		var norm2 float64
		for i := 0; i < n; i++ {
			norm2 += orig.At(i, 0) * orig.At(i, 0)
		}
		if math.Abs(beta*beta-norm2) > tol*norm2 {
			t.Fatalf("iter %d: β² = %g, ‖x‖² = %g", iter, beta*beta, norm2)
		}
	}
}
