package kernel

import (
	"math"
	"testing"
	"testing/quick"

	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
)

// TestUNMQRRectangularC applies Q to C blocks of several widths — the
// update kernels must handle any trailing width (ragged last tile column,
// right-hand sides of any count).
func TestUNMQRRectangularC(t *testing.T) {
	const m, n, ib = 10, 6, 3
	a := tile.RandDense[float64](m, n, 1)
	tf := make([]float64, ib*n)
	GEQRT(m, n, ib, a.Data, a.Stride, tf, n, nil)
	for _, nc := range []int{1, 2, 5, 7, 16} {
		c0 := tile.RandDense[float64](m, nc, int64(nc))
		c := c0.Clone()
		UNMQR(true, m, n, ib, a.Data, a.Stride, tf, n, c.Data, c.Stride, nc, nil)
		UNMQR(false, m, n, ib, a.Data, a.Stride, tf, n, c.Data, c.Stride, nc, nil)
		if d := tile.MaxAbsDiff(c, c0); d > tol {
			t.Errorf("nc=%d: Q·Qᵀ·C round trip error %g", nc, d)
		}
	}
}

// TestKernelsOnStridedViews runs the kernels on views into a larger array
// (ld > cols), the exact situation of the Q-application path operating on
// row blocks of a right-hand side.
func TestKernelsOnStridedViews(t *testing.T) {
	const nb, ib = 6, 2
	big := tile.RandDense[float64](20, 17, 3)
	aView := big.View(1, 2, nb, nb)
	a0 := aView.Clone()
	tf := make([]float64, ib*nb)
	GEQRT(nb, nb, ib, aView.Data, aView.Stride, tf, nb, nil)
	q := qFromGEQRT(nb, nb, ib, aView, tf, nb)
	if res := tile.ResidualQR(a0, q, upperTriOf(aView)); res > tol {
		t.Errorf("strided GEQRT residual %g", res)
	}
	// Neighbouring elements of the backing array must be untouched.
	for i := 0; i < 20; i++ {
		for j := 0; j < 17; j++ {
			inside := i >= 1 && i < 1+nb && j >= 2 && j < 2+nb
			if !inside {
				want := tile.RandDense[float64](20, 17, 3).At(i, j)
				if big.At(i, j) != want {
					t.Fatalf("GEQRT on view touched outside element (%d,%d)", i, j)
				}
			}
		}
	}
}

// TestWorkspaceReuse: passing a shared scratch buffer must give bitwise
// identical results to internal allocation.
func TestWorkspaceReuse(t *testing.T) {
	const m, n, ib = 12, 8, 3
	a1 := tile.RandDense[float64](m, n, 9)
	a2 := a1.Clone()
	t1 := make([]float64, ib*n)
	t2 := make([]float64, ib*n)
	work := make([]float64, ib*(n+1))
	for i := range work {
		work[i] = math.NaN() // dirty workspace must not leak into results
	}
	GEQRT(m, n, ib, a1.Data, a1.Stride, t1, n, work)
	GEQRT(m, n, ib, a2.Data, a2.Stride, t2, n, nil)
	if d := tile.MaxAbsDiff(a1, a2); d != 0 {
		t.Errorf("workspace reuse changed GEQRT results by %g", d)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("workspace reuse changed T factors at %d", i)
		}
	}
}

// TestQuickTPQRTRoundTrip is a quick-check property: for arbitrary small
// pentagonal shapes, Qᵀ annihilates B and Q·Qᵀ is the identity.
func TestQuickTPQRTRoundTrip(t *testing.T) {
	f := func(mSeed, nSeed, lSeed, ibSeed uint8, seed int64) bool {
		m := 1 + int(mSeed)%7
		n := 1 + int(nSeed)%7
		l := int(lSeed) % (min(m, n) + 1)
		ib := 1 + int(ibSeed)%n
		aTri := randUpperTri[float64](n, seed)
		b := randPent[float64](m, n, l, seed+1)
		a2, v, tf := tpFactor(t, m, n, l, ib, aTri, b)
		c1 := aTri.Clone()
		c2 := b.Clone()
		TPMQRT(true, m, n, l, ib, v.Data, v.Stride, tf, n, c1.Data, c1.Stride, c2.Data, c2.Stride, n, nil)
		for j := 0; j < n; j++ {
			for i := 0; i < pentRows(m, l, j); i++ {
				if vec.Abs(c2.At(i, j)) > tol {
					return false
				}
			}
		}
		if tile.MaxAbsDiff(c1, upperTriOf(a2)) > tol {
			return false
		}
		TPMQRT(false, m, n, l, ib, v.Data, v.Stride, tf, n, c1.Data, c1.Stride, c2.Data, c2.Stride, n, nil)
		return tile.MaxAbsDiff(c1, aTri) < tol && tile.MaxAbsDiff(c2, b) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGEMMKnown verifies the reference GEMM kernel against tile.Mul.
func TestGEMMKnown(t *testing.T) {
	a := tile.RandDense[float64](5, 7, 1)
	b := tile.RandDense[float64](7, 4, 2)
	c := tile.RandDense[float64](5, 4, 3)
	want := tile.Mul(a, b)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			want.Set(i, j, want.At(i, j)+c.At(i, j))
		}
	}
	GEMM(5, 4, 7, a.Data, a.Stride, b.Data, b.Stride, c.Data, c.Stride, nil)
	if d := tile.MaxAbsDiff(c, want); d > tol {
		t.Errorf("GEMM differs from reference by %g", d)
	}
}

// TestTPQRTSingularInput: a zero B block must not break the factorization
// (τ = 0 reflectors, H = I).
func TestTPQRTSingularInput(t *testing.T) {
	const n, ib = 5, 2
	aTri := randUpperTri[float64](n, 4)
	b := tile.NewDense[float64](n, n)
	a := aTri.Clone()
	tf := make([]float64, ib*n)
	TPQRT(n, n, 0, ib, a.Data, a.Stride, b.Data, b.Stride, tf, n, nil)
	if d := tile.MaxAbsDiff(a, aTri); d > tol {
		t.Errorf("TSQRT of zero block changed R by %g", d)
	}
	for _, v := range b.Data {
		if v != 0 {
			t.Fatal("TSQRT of zero block produced nonzero reflectors")
		}
	}
}
