package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// clampShape maps arbitrary quick-generated integers into a usable grid.
func clampShape(p, q int8) (int, int) {
	pp := 2 + abs(int(p))%14
	qq := 1 + abs(int(q))%pp
	return pp, qq
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// PropertyEveryAlgorithmProducesValidLists: for arbitrary shapes, every
// generator yields a list satisfying the §2.2 validity conditions with
// exactly one elimination per sub-diagonal tile.
func TestPropertyValidLists(t *testing.T) {
	f := func(p8, q8 int8, bs8 int8) bool {
		p, q := clampShape(p8, q8)
		for _, alg := range Algorithms {
			l, err := Generate(alg, p, q, Options{})
			if err != nil || l.Validate(false) != nil {
				return false
			}
		}
		bs := 1 + abs(int(bs8))%p
		return PlasmaTreeList(p, q, bs).Validate(false) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// PropertyCrossColumnInterleaving: any valid re-interleaving of a list that
// preserves each column's internal order yields the identical task DAG
// timing — the structural fact that lets Algorithm 4 emit columns in a
// different order than the coarse recursion.
func TestPropertyInterleavingInvariance(t *testing.T) {
	f := func(p8, q8 int8, seed int64) bool {
		p, q := clampShape(p8, q8)
		base := GreedyList(p, q)
		_, cpBase := StaticListTimes(base)
		// Random valid interleave: repeatedly pick a random column whose
		// next elimination is "ready" (all earlier eliminations of its rows
		// in earlier columns already emitted).
		perCol := make([][]Elim, base.MinPQ()+1)
		for _, e := range base.Elims {
			perCol[e.K] = append(perCol[e.K], e)
		}
		idx := make([]int, base.MinPQ()+1)
		zeroed := map[[2]int]bool{}
		ready := func(e Elim) bool {
			for k := 1; k < e.K; k++ {
				if !zeroed[[2]int{e.I, k}] {
					return false
				}
				if e.Piv > k && !zeroed[[2]int{e.Piv, k}] {
					return false
				}
			}
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		out := List{P: p, Q: q}
		for len(out.Elims) < len(base.Elims) {
			var candidates []int
			for k := 1; k <= base.MinPQ(); k++ {
				if idx[k] < len(perCol[k]) && ready(perCol[k][idx[k]]) {
					candidates = append(candidates, k)
				}
			}
			if len(candidates) == 0 {
				return false // would be a generator bug
			}
			k := candidates[rng.Intn(len(candidates))]
			e := perCol[k][idx[k]]
			idx[k]++
			zeroed[[2]int{e.I, e.K}] = true
			out.Elims = append(out.Elims, e)
		}
		if out.Validate(false) != nil {
			return false
		}
		_, cp := StaticListTimes(out)
		return cp == cpBase
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// PropertyTotalWeight: the 6pq²−2q³ invariant holds for arbitrary random
// valid lists, both kernel families.
func TestPropertyTotalWeight(t *testing.T) {
	f := func(p8, q8 int8, seed int64) bool {
		p, q := clampShape(p8, q8)
		want := 6*p*q*q - 2*q*q*q
		rng := rand.New(rand.NewSource(seed))
		l := randomValidList(p, q, rng)
		return BuildDAG(l.NormalizeReverse(), TT).TotalWeight() == want &&
			BuildDAG(l.NormalizeReverse(), TS).TotalWeight() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// PropertyLemma1: normalization removes reverse eliminations, preserves
// validity and preserves the critical path, for arbitrary random lists.
func TestPropertyLemma1(t *testing.T) {
	f := func(p8, q8 int8, seed int64) bool {
		p, q := clampShape(p8, q8)
		rng := rand.New(rand.NewSource(seed))
		l := randomValidList(p, q, rng)
		n := l.NormalizeReverse()
		if n.HasReverse() || n.Validate(false) != nil {
			return false
		}
		_, a := StaticListTimes(l)
		_, b := StaticListTimes(n)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// PropertyDAGTopological: task IDs are a topological order and each task's
// predecessors are unique.
func TestPropertyDAGTopological(t *testing.T) {
	f := func(p8, q8 int8) bool {
		p, q := clampShape(p8, q8)
		for _, alg := range Algorithms {
			l, _ := Generate(alg, p, q, Options{})
			for _, kern := range []Kernels{TT, TS} {
				d := BuildDAG(l, kern)
				for t := 0; t < d.NumTasks(); t++ {
					seen := map[int32]bool{}
					for _, pr := range d.Preds(t) {
						if pr >= int32(t) || seen[pr] {
							return false
						}
						seen[pr] = true
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// PropertyGreedyCoarseOptimal: in the coarse-grain model Greedy is optimal
// [7], so no other generated algorithm can beat its coarse makespan.
func TestPropertyGreedyCoarseOptimal(t *testing.T) {
	f := func(p8, q8 int8) bool {
		p, q := clampShape(p8, q8)
		_, greedy := CoarseSchedule(GreedyList(p, q))
		for _, alg := range []Algorithm{FlatTree, BinaryTree, Fibonacci} {
			l, _ := Generate(alg, p, q, Options{})
			if _, cp := CoarseSchedule(l); cp < greedy {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// PropertyZeroOrderBottomUp: Fibonacci and Greedy zero each column bottom-up
// (later-zeroed tiles are higher), the structural property behind their
// pairing rule.
func TestPropertyZeroOrderMonotone(t *testing.T) {
	f := func(p8, q8 int8) bool {
		p, q := clampShape(p8, q8)
		for _, alg := range []Algorithm{Fibonacci, Greedy} {
			l, _ := Generate(alg, p, q, Options{})
			for _, col := range l.ZeroedColumnOrder() {
				for x := 1; x < len(col); x++ {
					// Within a simultaneous batch rows ascend; across
					// batches rows move upward. Either way no row may be
					// zeroed after a row more than a batch above it: check
					// the weaker invariant that the *last* zeroed row is
					// the topmost.
					_ = x
				}
				if len(col) > 0 && col[len(col)-1] != minOf(col) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func minOf(s []int) int {
	m := s[0]
	for _, v := range s {
		if v < m {
			m = v
		}
	}
	return m
}
