package core

import "fmt"

// Algorithm enumerates the tiled QR elimination-tree algorithms studied in
// the paper.
type Algorithm int

const (
	// FlatTree is Sameh-Kuck [15]: the diagonal row eliminates everything
	// in its column. Best for square matrices; PLASMA's historical default.
	FlatTree Algorithm = iota
	// BinaryTree pairs rows level by level; best for a single tile column.
	BinaryTree
	// Fibonacci is the Fibonacci scheme of order 1 [13], asymptotically
	// optimal for p = q²·f(q) with lim f = 0 (Theorem 1).
	Fibonacci
	// Greedy eliminates as many tiles as possible per column per step
	// [6, 7]; asymptotically optimal for log₂p = q·f(q) (Theorem 1).
	Greedy
	// Asap starts eliminations as soon as two rows are ready in the tiled
	// model (§3.2). Not optimal, but beats Greedy on some shapes (15×2).
	Asap
	// Grasap runs Greedy on the first q−k columns and Asap on the last k
	// (§3.2); k is Options.GrasapK.
	Grasap
	// PlasmaTree is the domain-based tree of Hadri et al. [10, 11] with
	// PLASMA's anchoring: flat trees on domains of Options.BS consecutive
	// rows starting at the diagonal, merged by a binary tree (the bottom
	// domain shrinks across columns).
	PlasmaTree
	// HadriTree is the Semi-/Fully-Parallel anchoring of [10]: domains are
	// fixed from row 1 and the TOP domain shrinks across columns. The
	// paper (§4) reports PLASMA's anchoring performs identically or
	// better.
	HadriTree
)

func (a Algorithm) String() string {
	switch a {
	case FlatTree:
		return "FlatTree"
	case BinaryTree:
		return "BinaryTree"
	case Fibonacci:
		return "Fibonacci"
	case Greedy:
		return "Greedy"
	case Asap:
		return "Asap"
	case Grasap:
		return "Grasap"
	case PlasmaTree:
		return "PlasmaTree"
	case HadriTree:
		return "HadriTree"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options carries the per-algorithm tuning parameters.
type Options struct {
	BS      int // PlasmaTree domain size (1..p); the paper sweeps this
	GrasapK int // Grasap: number of trailing Asap columns
}

// Generate returns the elimination list of the chosen algorithm for a p×q
// tile matrix.
func Generate(alg Algorithm, p, q int, opt Options) (List, error) {
	if p < 1 || q < 1 {
		return List{}, fmt.Errorf("core: invalid tile grid %d×%d", p, q)
	}
	switch alg {
	case FlatTree:
		return FlatTreeList(p, q), nil
	case BinaryTree:
		return BinaryTreeList(p, q), nil
	case Fibonacci:
		return FibonacciList(p, q), nil
	case Greedy:
		return GreedyList(p, q), nil
	case Asap:
		l, _, _ := AsapList(p, q)
		return l, nil
	case Grasap:
		l, _, _ := GrasapList(p, q, opt.GrasapK)
		return l, nil
	case PlasmaTree:
		bs := opt.BS
		if bs < 1 {
			return List{}, fmt.Errorf("core: PlasmaTree requires a domain size BS ≥ 1 (got %d)", bs)
		}
		return PlasmaTreeList(p, q, bs), nil
	case HadriTree:
		bs := opt.BS
		if bs < 1 {
			return List{}, fmt.Errorf("core: HadriTree requires a domain size BS ≥ 1 (got %d)", bs)
		}
		return HadriTreeList(p, q, bs), nil
	}
	return List{}, fmt.Errorf("core: unknown algorithm %v", alg)
}

// Algorithms lists every algorithm with a parameter-free list generator
// (PlasmaTree and Grasap need Options).
var Algorithms = []Algorithm{FlatTree, BinaryTree, Fibonacci, Greedy, Asap}

// TotalWeightUnits returns the total task weight 6pq²−2q³ (for p ≥ q) in
// units of nb³/3: it is invariant across algorithms and kernel families
// (§2.2). For p < q the panel count is p and the formula becomes
// 6qp²−2p³ − 4p... computed exactly by summation here.
func TotalWeightUnits(p, q int) int {
	// Column k: one GEQRT per row k..p would overcount; instead count per
	// elimination (10 + 18(q−k) split across kernels) plus the fixed
	// triangularization costs. Summation mirrors BuildDAG's TT expansion:
	// every row in column k is triangularized once (GEQRT + UNMQRs) and
	// every elimination adds TTQRT + TTMQRs.
	total := 0
	qmin := min(p, q)
	for k := 1; k <= qmin; k++ {
		rows := p - k + 1
		total += rows * (KGEQRT.Weight() + (q-k)*KUNMQR.Weight())
		elims := p - k
		total += elims * (KTTQRT.Weight() + (q-k)*KTTMQR.Weight())
	}
	return total
}
