package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// --- generic list validity ------------------------------------------------

var testShapes = [][2]int{
	{1, 1}, {2, 1}, {2, 2}, {4, 1}, {5, 3}, {6, 6}, {15, 2}, {15, 3},
	{15, 6}, {16, 16}, {40, 1}, {40, 7}, {31, 13}, {3, 5}, {7, 9},
}

func TestGeneratedListsAreValid(t *testing.T) {
	for _, s := range testShapes {
		p, q := s[0], s[1]
		for _, alg := range Algorithms {
			l, err := Generate(alg, p, q, Options{})
			if err != nil {
				t.Fatalf("%v %dx%d: %v", alg, p, q, err)
			}
			if err := l.Validate(false); err != nil {
				t.Errorf("%v %dx%d: %v", alg, p, q, err)
			}
		}
		for _, bs := range []int{1, 2, 3, 5, p} {
			l := PlasmaTreeList(p, q, bs)
			if err := l.Validate(false); err != nil {
				t.Errorf("PlasmaTree(BS=%d) %dx%d: %v", bs, p, q, err)
			}
		}
		for k := 0; k <= min(p, q); k++ {
			l, _, _ := GrasapList(p, q, k)
			if err := l.Validate(false); err != nil {
				t.Errorf("Grasap(%d) %dx%d: %v", k, p, q, err)
			}
		}
	}
}

func TestValidateRejectsBadLists(t *testing.T) {
	// Tile zeroed twice.
	l := List{P: 3, Q: 1, Elims: []Elim{{2, 1, 1}, {2, 1, 1}}}
	if l.Validate(false) == nil {
		t.Error("duplicate elimination accepted")
	}
	// Missing elimination.
	l = List{P: 3, Q: 1, Elims: []Elim{{2, 1, 1}}}
	if l.Validate(false) == nil {
		t.Error("incomplete list accepted")
	}
	// Pivot used after being zeroed.
	l = List{P: 3, Q: 1, Elims: []Elim{{2, 1, 1}, {3, 2, 1}}}
	if l.Validate(false) == nil {
		t.Error("zeroed pivot accepted")
	}
	// Row not ready: column 2 elimination before column 1 completes for row 3.
	l = List{P: 3, Q: 2, Elims: []Elim{{2, 1, 1}, {3, 2, 2}, {3, 1, 1}}}
	if l.Validate(false) == nil {
		t.Error("row-not-ready list accepted")
	}
	// Reverse elimination rejected unless allowed.
	l = List{P: 3, Q: 1, Elims: []Elim{{2, 3, 1}, {3, 1, 1}}}
	if l.Validate(false) == nil {
		t.Error("reverse elimination accepted with allowReverse=false")
	}
	if err := l.Validate(true); err != nil {
		t.Errorf("valid reverse list rejected: %v", err)
	}
}

// --- Table 2: coarse-grain time-steps for a 15×6 matrix --------------------

var table2SamehKuck = func() [][]int {
	// coarse(i,k) = i + k − 2 (§3.1).
	rows := make([][]int, 0, 14)
	for i := 2; i <= 15; i++ {
		row := make([]int, 0, 6)
		for k := 1; k <= min(i-1, 6); k++ {
			row = append(row, i+k-2)
		}
		rows = append(rows, row)
	}
	return rows
}()

var table2Fibonacci = [][]int{
	{5},
	{4, 7},
	{4, 6, 9},
	{3, 6, 8, 11},
	{3, 5, 8, 10, 13},
	{3, 5, 7, 10, 12, 15},
	{2, 5, 7, 9, 12, 14},
	{2, 4, 7, 9, 11, 14},
	{2, 4, 6, 9, 11, 13},
	{2, 4, 6, 8, 11, 13},
	{1, 4, 6, 8, 10, 13},
	{1, 3, 6, 8, 10, 12},
	{1, 3, 5, 8, 10, 12},
	{1, 3, 5, 7, 10, 12},
}

var table2Greedy = [][]int{
	{4},
	{3, 6},
	{3, 5, 8},
	{2, 5, 7, 10},
	{2, 4, 7, 9, 12},
	{2, 4, 6, 9, 11, 14},
	{2, 4, 6, 8, 10, 13},
	{1, 3, 5, 8, 10, 12},
	{1, 3, 5, 7, 9, 11},
	{1, 3, 5, 7, 9, 11},
	{1, 3, 4, 6, 8, 10},
	{1, 2, 4, 6, 8, 10},
	{1, 2, 4, 5, 7, 9},
	{1, 2, 3, 5, 6, 8},
}

func checkCoarseTable(t *testing.T, name string, l List, want [][]int) {
	t.Helper()
	steps, _ := CoarseSchedule(l)
	for i := 2; i <= l.P; i++ {
		for k := 1; k <= min(i-1, l.MinPQ()); k++ {
			got := steps[i-1][k-1]
			exp := want[i-2][k-1]
			if got != exp {
				t.Errorf("%s: coarse(%d,%d) = %d, paper says %d", name, i, k, got, exp)
			}
		}
	}
}

func TestTable2SamehKuck(t *testing.T) {
	checkCoarseTable(t, "Sameh-Kuck", FlatTreeList(15, 6), table2SamehKuck)
}

// Table 2(b) tabulates Fibonacci's *prescribed* timetable (the closed form
// of §3.1), which deliberately idles some eliminations for regularity: the
// ASAP execution of the same list can run a few steps ahead. The tiled
// algorithm keeps the list (the pairings) and executes ASAP (§3.2).
func TestTable2Fibonacci(t *testing.T) {
	for i := 2; i <= 15; i++ {
		for k := 1; k <= min(i-1, 6); k++ {
			if f := FibonacciCoarseStep(15, i, k); f != table2Fibonacci[i-2][k-1] {
				t.Errorf("FibonacciCoarseStep(15,%d,%d) = %d, paper says %d", i, k, f, table2Fibonacci[i-2][k-1])
			}
		}
	}
	// The ASAP coarse execution of the Fibonacci list can only be earlier
	// than the prescription, never later.
	steps, _ := CoarseSchedule(FibonacciList(15, 6))
	for i := 2; i <= 15; i++ {
		for k := 1; k <= min(i-1, 6); k++ {
			if steps[i-1][k-1] > table2Fibonacci[i-2][k-1] {
				t.Errorf("ASAP coarse(%d,%d) = %d exceeds prescription %d", i, k, steps[i-1][k-1], table2Fibonacci[i-2][k-1])
			}
		}
	}
}

func TestTable2Greedy(t *testing.T) {
	checkCoarseTable(t, "Greedy", GreedyList(15, 6), table2Greedy)
}

// TestCoarseCriticalPaths verifies the §3.1 formulas: Sameh-Kuck p+q−2
// (2q−3 if square), Fibonacci x+2q−2 (x+2q−4 if square) where x is the
// least integer with x(x+1)/2 ≥ p−1.
func TestCoarseCriticalPaths(t *testing.T) {
	for _, s := range [][2]int{{15, 6}, {20, 5}, {12, 12}, {40, 13}, {9, 9}, {30, 2}} {
		p, q := s[0], s[1]
		_, sk := CoarseSchedule(FlatTreeList(p, q))
		wantSK := p + q - 2
		if p == q {
			wantSK = 2*q - 3
		}
		if sk != wantSK {
			t.Errorf("Sameh-Kuck %dx%d coarse CP = %d, want %d", p, q, sk, wantSK)
		}
		x := 0
		for x*(x+1)/2 < p-1 {
			x++
		}
		// Fibonacci's prescribed critical path is the maximum of the closed
		// form over all sub-diagonal tiles.
		fib := 0
		for i := 2; i <= p; i++ {
			for k := 1; k <= min(i-1, q); k++ {
				if s := FibonacciCoarseStep(p, i, k); s > fib {
					fib = s
				}
			}
		}
		wantFib := x + 2*q - 2
		if p == q {
			wantFib = x + 2*q - 4
		}
		if fib != wantFib {
			t.Errorf("Fibonacci %dx%d coarse CP = %d, want %d", p, q, fib, wantFib)
		}
		// Greedy is optimal in the coarse model: it cannot lose to Fibonacci
		// or Sameh-Kuck.
		_, gr := CoarseSchedule(GreedyList(p, q))
		if gr > fib || gr > sk {
			t.Errorf("Greedy %dx%d coarse CP %d exceeds Fibonacci %d or Sameh-Kuck %d", p, q, gr, fib, sk)
		}
	}
}

// --- Greedy: recursion vs. the paper's literal Algorithm 4 -----------------

// TestGreedyMatchesAlgorithm4 shows the coarse-grain Greedy recursion and
// the paper's literal Algorithm 4 produce the same algorithm: identical
// per-column elimination sequences (pairings and order). The two generators
// interleave *columns* differently (Algorithm 4 sweeps j from q down to 1
// within each round), but eliminations in different columns of a valid list
// share no rows at conflicting positions, so the task DAGs — and therefore
// all schedules — are identical, which the critical-path check confirms.
func TestGreedyMatchesAlgorithm4(t *testing.T) {
	perColumn := func(l List) [][]Elim {
		out := make([][]Elim, l.MinPQ()+1)
		for _, e := range l.Elims {
			out[e.K] = append(out[e.K], e)
		}
		return out
	}
	for _, s := range [][2]int{{2, 1}, {5, 3}, {15, 2}, {15, 3}, {15, 6}, {16, 16}, {40, 40}, {40, 7}, {64, 16}, {33, 10}} {
		a := GreedyList(s[0], s[1])
		b := GreedyAlgorithm4List(s[0], s[1])
		if err := b.Validate(false); err != nil {
			t.Fatalf("%dx%d: Algorithm 4 list invalid: %v", s[0], s[1], err)
		}
		if !reflect.DeepEqual(perColumn(a), perColumn(b)) {
			t.Errorf("%dx%d: coarse-recursion Greedy and Algorithm 4 differ per column", s[0], s[1])
		}
		_, cpA := StaticListTimes(a)
		_, cpB := StaticListTimes(b)
		if cpA != cpB {
			t.Errorf("%dx%d: Greedy CP %d != Algorithm 4 CP %d", s[0], s[1], cpA, cpB)
		}
	}
}

// --- structural checks ------------------------------------------------------

func TestBinaryTreePairing(t *testing.T) {
	l := BinaryTreeList(15, 1)
	// First level zeroes even relative indices with the row directly above.
	want := map[int]int{2: 1, 4: 3, 6: 5, 8: 7, 10: 9, 12: 11, 14: 13,
		3: 1, 7: 5, 11: 9, 15: 13, 5: 1, 13: 9, 9: 1}
	for _, e := range l.Elims {
		if want[e.I] != e.Piv {
			t.Errorf("BinaryTree: elim(%d,%d,1), want pivot %d", e.I, e.Piv, want[e.I])
		}
	}
}

func TestPlasmaTreeDegenerateSizes(t *testing.T) {
	p, q := 12, 4
	if !reflect.DeepEqual(PlasmaTreeList(p, q, p).Elims, FlatTreeList(p, q).Elims) {
		t.Error("PlasmaTree(BS=p) must equal FlatTree")
	}
	if !reflect.DeepEqual(PlasmaTreeList(p, q, 1).Elims, BinaryTreeList(p, q).Elims) {
		t.Error("PlasmaTree(BS=1) must equal BinaryTree")
	}
}

func TestGrasapEndpoints(t *testing.T) {
	p, q := 15, 3
	// Grasap(0) executes the Greedy pairings.
	g0, _, cp0 := GrasapList(p, q, 0)
	if !sameElimSet(g0, GreedyList(p, q)) {
		t.Error("Grasap(0) pairings differ from Greedy")
	}
	_, cpG := StaticListTimes(GreedyList(p, q))
	if cp0 != cpG {
		t.Errorf("Grasap(0) CP %d != Greedy CP %d", cp0, cpG)
	}
	// Grasap(q) is Asap.
	gq, _, cpq := GrasapList(p, q, q)
	aq, _, cpa := AsapList(p, q)
	if !reflect.DeepEqual(gq.Elims, aq.Elims) || cpq != cpa {
		t.Error("Grasap(q) differs from Asap")
	}
}

func sameElimSet(a, b List) bool {
	if len(a.Elims) != len(b.Elims) {
		return false
	}
	set := make(map[Elim]bool, len(a.Elims))
	for _, e := range a.Elims {
		set[e] = true
	}
	for _, e := range b.Elims {
		if !set[e] {
			return false
		}
	}
	return true
}

// --- Lemma 1 ----------------------------------------------------------------

// randomValidList builds a random valid elimination list, possibly with
// reverse eliminations: per column, eliminatees and pivots are drawn
// uniformly from the surviving rows.
func randomValidList(p, q int, rng *rand.Rand) List {
	l := List{P: p, Q: q}
	for k := 1; k <= min(p, q); k++ {
		active := make([]int, 0, p-k+1)
		for r := k; r <= p; r++ {
			active = append(active, r)
		}
		for len(active) > 1 {
			// Choose any non-diagonal active row to eliminate.
			ei := 1 + rng.Intn(len(active)-1)
			i := active[ei]
			active = append(active[:ei], active[ei+1:]...)
			piv := active[rng.Intn(len(active))]
			l.Elims = append(l.Elims, Elim{I: i, Piv: piv, K: k})
		}
	}
	return l
}

func TestLemma1RemovesReverseEliminations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		p := 2 + rng.Intn(9)
		q := 1 + rng.Intn(p)
		l := randomValidList(p, q, rng)
		if err := l.Validate(true); err != nil {
			t.Fatalf("random list invalid: %v", err)
		}
		norm := l.NormalizeReverse()
		if norm.HasReverse() {
			t.Fatalf("iter %d: normalized list still has reverse eliminations", iter)
		}
		if err := norm.Validate(false); err != nil {
			t.Fatalf("iter %d: normalized list invalid: %v", iter, err)
		}
		// Lemma 1: the execution time is unchanged.
		_, cpBefore := StaticListTimes(l)
		_, cpAfter := StaticListTimes(norm)
		if cpBefore != cpAfter {
			t.Errorf("iter %d (%dx%d): CP changed %d → %d after normalization", iter, p, q, cpBefore, cpAfter)
		}
	}
}

// --- Table 4(a): Greedy vs Asap vs Grasap(1) on 15×3 ------------------------

var table4aGreedy = [][]int{
	{12},
	{10, 42},
	{10, 40, 64},
	{8, 36, 62},
	{8, 34, 56},
	{8, 34, 56},
	{8, 30, 52},
	{6, 28, 50},
	{6, 28, 50},
	{6, 28, 50},
	{6, 28, 44},
	{6, 22, 44},
	{6, 22, 44},
	{6, 22, 38},
}

var table4aAsap = [][]int{
	{12},
	{10, 40},
	{10, 36, 86},
	{8, 34, 80},
	{8, 32, 74},
	{8, 30, 68},
	{8, 28, 62},
	{6, 28, 56},
	{6, 26, 50},
	{6, 24, 46},
	{6, 24, 44},
	{6, 22, 44},
	{6, 22, 40},
	{6, 22, 38},
}

// Note on tile (7,3): the paper's table prints 56 (identical to row 6's
// line), but 56 is inconsistent with the Asap rule as evidenced elsewhere in
// the very same table: freed pivots re-pair immediately (e.g. tile (11,3) is
// zeroed at 46 in both the Asap and Grasap columns, which requires the two
// pivots freed at 44 to pair at once). Applying the same rule at t=50 pairs
// the freed pivots {6,7} and zeroes tile (7,3) at 52. Our engine reproduces
// every other cell of Table 4(a) — including the paper's headline claim that
// Grasap(1) finishes at 62 versus Greedy's 64 — so we record 52 here and
// document the single-cell deviation in EXPERIMENTS.md.
var table4aGrasap1 = [][]int{
	{12},
	{10, 42},
	{10, 40, 62},
	{8, 36, 58},
	{8, 34, 56},
	{8, 34, 52},
	{8, 30, 50},
	{6, 28, 50},
	{6, 28, 48},
	{6, 28, 46},
	{6, 28, 44},
	{6, 22, 44},
	{6, 22, 40},
	{6, 22, 38},
}

func checkZeroTable(t *testing.T, name string, zero [][]int, want [][]int, p, qmin int) {
	t.Helper()
	for i := 2; i <= p; i++ {
		for k := 1; k <= min(i-1, qmin); k++ {
			if zero[i-1][k-1] != want[i-2][k-1] {
				t.Errorf("%s: tile (%d,%d) zeroed at %d, paper says %d", name, i, k, zero[i-1][k-1], want[i-2][k-1])
			}
		}
	}
}

func TestTable4aGreedy(t *testing.T) {
	zero, _ := StaticListTimes(GreedyList(15, 3))
	checkZeroTable(t, "Greedy 15×3", zero, table4aGreedy, 15, 3)
}

func TestTable4aAsap(t *testing.T) {
	_, zero, _ := AsapList(15, 3)
	checkZeroTable(t, "Asap 15×3", zero, table4aAsap, 15, 3)
}

func TestTable4aGrasap1(t *testing.T) {
	_, zero, _ := GrasapList(15, 3, 1)
	checkZeroTable(t, "Grasap(1) 15×3", zero, table4aGrasap1, 15, 3)
}

// TestAsapBeatsGreedyOn15x2 reproduces the §3.2 narrative: Asap beats Greedy
// for a 15×2 matrix, while Greedy beats Asap for 15×3, and Grasap(1) beats
// both on 15×3.
func TestAsapVsGreedyNarrative(t *testing.T) {
	_, _, asap2 := AsapList(15, 2)
	_, greedy2 := StaticListTimes(GreedyList(15, 2))
	if asap2 >= greedy2 {
		t.Errorf("15×2: Asap CP %d should beat Greedy CP %d", asap2, greedy2)
	}
	_, _, asap3 := AsapList(15, 3)
	_, greedy3 := StaticListTimes(GreedyList(15, 3))
	if greedy3 >= asap3 {
		t.Errorf("15×3: Greedy CP %d should beat Asap CP %d", greedy3, asap3)
	}
	_, _, grasap3 := GrasapList(15, 3, 1)
	if grasap3 != 62 || greedy3 != 64 {
		t.Errorf("15×3: Grasap(1) finishes at %d (want 62), Greedy at %d (want 64)", grasap3, greedy3)
	}
}

// --- weights ---------------------------------------------------------------

func TestKernelWeights(t *testing.T) {
	want := map[Kind]int{KGEQRT: 4, KUNMQR: 6, KTSQRT: 6, KTSMQR: 12, KTTQRT: 2, KTTMQR: 6}
	for k, w := range want {
		if k.Weight() != w {
			t.Errorf("%v weight %d, want %d", k, k.Weight(), w)
		}
	}
}

// TestTotalWeightInvariant verifies §2.2: the total weight of any valid
// tiled algorithm is 6pq²−2q³ units (p ≥ q), for both kernel families.
func TestTotalWeightInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range [][2]int{{6, 4}, {10, 10}, {15, 6}, {9, 2}} {
		p, q := s[0], s[1]
		want := 6*p*q*q - 2*q*q*q
		for _, alg := range Algorithms {
			l, _ := Generate(alg, p, q, Options{})
			for _, kern := range []Kernels{TT, TS} {
				if got := BuildDAG(l, kern).TotalWeight(); got != want {
					t.Errorf("%v(%v) %dx%d: total weight %d, want %d", alg, kern, p, q, got, want)
				}
			}
		}
		for iter := 0; iter < 5; iter++ {
			l := randomValidList(p, q, rng).NormalizeReverse()
			if got := BuildDAG(l, TT).TotalWeight(); got != want {
				t.Errorf("random list %dx%d: total weight %d, want %d", p, q, got, want)
			}
		}
		if got := TotalWeightUnits(p, q); got != want {
			t.Errorf("TotalWeightUnits(%d,%d) = %d, want %d", p, q, got, want)
		}
	}
}
