package core

import "testing"

// TestBuildStreamDAGStructure checks the invariants of the streaming merge
// graph: resident rows are never factored or zeroed, every batch tile is
// zeroed exactly once per column, and task IDs stay topologically ordered.
func TestBuildStreamDAGStructure(t *testing.T) {
	for _, kern := range []Kernels{TT, TS} {
		for _, shape := range []struct{ q, pb int }{
			{1, 1}, {1, 5}, {3, 1}, {3, 2}, {4, 7}, {8, 3},
		} {
			q, pb := shape.q, shape.pb
			d := BuildStreamDAG(q, pb, kern)
			gers, zeroed := 0, make(map[[2]int]int)
			for id, task := range d.Tasks {
				for _, p := range d.Preds(id) {
					if p >= int32(id) {
						t.Fatalf("%v q=%d pb=%d: task %d has predecessor %d (not topological)", kern, q, pb, id, p)
					}
				}
				switch task.Kind {
				case KGEQRT:
					gers++
					if task.I <= q {
						t.Fatalf("%v q=%d pb=%d: GEQRT on resident row %d", kern, q, pb, task.I)
					}
				case KTSQRT, KTTQRT:
					if task.I <= q {
						t.Fatalf("%v q=%d pb=%d: resident row %d zeroed by %v", kern, q, pb, task.I, task)
					}
					zeroed[[2]int{task.I, task.K}]++
				}
				// Resident rows appear only as the pivot of column K — their
				// structurally zero sub-diagonal tiles are never referenced.
				if task.I <= q && task.I != task.K {
					t.Fatalf("%v q=%d pb=%d: task %v touches resident row %d outside column %d", kern, q, pb, task, task.I, task.I)
				}
				if task.Piv > 0 && task.Piv <= q && task.Piv != task.K {
					t.Fatalf("%v q=%d pb=%d: task %v pivots on resident row %d outside column %d", kern, q, pb, task, task.Piv, task.K)
				}
			}
			for k := 1; k <= q; k++ {
				for i := q + 1; i <= q+pb; i++ {
					if zeroed[[2]int{i, k}] != 1 {
						t.Fatalf("%v q=%d pb=%d: batch tile (%d,%d) zeroed %d times", kern, q, pb, i, k, zeroed[[2]int{i, k}])
					}
					if d.ZeroTask(i, k) < 0 {
						t.Fatalf("%v q=%d pb=%d: no zero task recorded for (%d,%d)", kern, q, pb, i, k)
					}
				}
			}
			if kern == TT && gers != pb*q {
				t.Fatalf("TT q=%d pb=%d: %d GEQRT tasks, want %d (every batch row in every column)", q, pb, gers, pb*q)
			}
		}
	}
}

// TestBuildStreamDAGWeight pins the merge cost: eliminating pb batch rows in
// column k costs pb·(GEQRT+TTQRT) = 6·pb units plus pb·(UNMQR+TTMQR) =
// 12·pb units per trailing column, in both kernel families — 2·r·n² flops
// per appended r-row batch, independent of rows ingested before.
func TestBuildStreamDAGWeight(t *testing.T) {
	for _, kern := range []Kernels{TT, TS} {
		for _, shape := range []struct{ q, pb int }{{1, 1}, {3, 2}, {5, 4}, {6, 1}} {
			q, pb := shape.q, shape.pb
			want := 0
			for k := 1; k <= q; k++ {
				want += pb * (6 + 12*(q-k))
			}
			if got := BuildStreamDAG(q, pb, kern).TotalWeight(); got != want {
				t.Fatalf("%v q=%d pb=%d: total weight %d, want %d", kern, q, pb, got, want)
			}
		}
	}
}
