package core

import (
	"fmt"
	"sync"
)

// Kind enumerates the six sequential kernels of Table 1.
type Kind uint8

const (
	KGEQRT Kind = iota // factor square into triangle
	KUNMQR             // apply a GEQRT transformation to a trailing tile
	KTSQRT             // zero square with triangle on top
	KTSMQR             // apply a TSQRT transformation
	KTTQRT             // zero triangle with triangle on top
	KTTMQR             // apply a TTQRT transformation
	numKinds
)

// Weight returns the kernel cost in units of nb³/3 floating-point
// operations (Table 1 of the paper).
func (k Kind) Weight() int {
	switch k {
	case KGEQRT:
		return 4
	case KUNMQR:
		return 6
	case KTSQRT:
		return 6
	case KTSMQR:
		return 12
	case KTTQRT:
		return 2
	case KTTMQR:
		return 6
	}
	panic("core: unknown kernel kind")
}

func (k Kind) String() string {
	switch k {
	case KGEQRT:
		return "GEQRT"
	case KUNMQR:
		return "UNMQR"
	case KTSQRT:
		return "TSQRT"
	case KTSMQR:
		return "TSMQR"
	case KTTQRT:
		return "TTQRT"
	case KTTMQR:
		return "TTMQR"
	}
	return "?"
}

// Kernels selects the kernel family used to implement eliminations.
type Kernels uint8

const (
	// TT implements eliminations with triangle-on-top-of-triangle kernels
	// (Algorithm 3): more parallelism, all the new algorithms use it.
	TT Kernels = iota
	// TS implements eliminations with triangle-on-top-of-square kernels
	// (Algorithm 2): better locality, used by PLASMA's historical code path.
	TS
)

func (k Kernels) String() string {
	if k == TS {
		return "TS"
	}
	return "TT"
}

// Task is one kernel invocation. Row/column fields are 1-based tile indices:
// GEQRT(I,K), UNMQR(I,K,J), TSQRT/TTQRT(I,Piv,K), TSMQR/TTMQR(I,Piv,K,J).
type Task struct {
	Kind Kind
	I    int // row operated on (the zeroed row for factor/update pairs)
	Piv  int // pivot row (0 when not applicable)
	K    int // panel column
	J    int // update column (0 for panel kernels)
}

func (t Task) String() string {
	switch t.Kind {
	case KGEQRT:
		return fmt.Sprintf("GEQRT(%d,%d)", t.I, t.K)
	case KUNMQR:
		return fmt.Sprintf("UNMQR(%d,%d,%d)", t.I, t.K, t.J)
	case KTSQRT, KTTQRT:
		return fmt.Sprintf("%s(%d,%d,%d)", t.Kind, t.I, t.Piv, t.K)
	default:
		return fmt.Sprintf("%s(%d,%d,%d,%d)", t.Kind, t.I, t.Piv, t.K, t.J)
	}
}

// DAG is the dependency graph of kernel tasks obtained by expanding an
// elimination list (§2.3). Task IDs are topologically ordered: every
// predecessor of a task has a smaller ID.
type DAG struct {
	P, Q    int
	Kernels Kernels
	Tasks   []Task

	predOff []int32 // predOff[t]..predOff[t+1] indexes preds
	preds   []int32

	// ZeroTask maps sub-diagonal tile (i,k) (1-based) to the ID of the
	// TSQRT/TTQRT task that zeroes it, or -1.
	zeroTask []int32

	// Succs adjacency, memoized on first use: cached DAGs (streaming merge
	// shapes, refactored one-shots) are executed many times.
	succOnce    sync.Once
	succOffMemo []int32
	succsMemo   []int32
}

// NumTasks returns the number of kernel tasks.
func (d *DAG) NumTasks() int { return len(d.Tasks) }

// Preds returns the predecessor task IDs of task t (deduplicated, ascending).
func (d *DAG) Preds(t int) []int32 { return d.preds[d.predOff[t]:d.predOff[t+1]] }

// ZeroTask returns the ID of the task zeroing tile (i,k), or -1.
func (d *DAG) ZeroTask(i, k int) int32 {
	return d.zeroTask[(i-1)*d.Q+(k-1)]
}

// Succs returns the successor adjacency (flattened), materialized from the
// stored predecessor lists on first call and memoized. Used by the runtime
// scheduler and the list scheduler. Callers must not mutate the slices.
func (d *DAG) Succs() (off []int32, succs []int32) {
	d.succOnce.Do(func() { d.succOffMemo, d.succsMemo = d.buildSuccs() })
	return d.succOffMemo, d.succsMemo
}

func (d *DAG) buildSuccs() (off []int32, succs []int32) {
	n := len(d.Tasks)
	off = make([]int32, n+1)
	for t := 0; t < n; t++ {
		for _, p := range d.Preds(t) {
			off[p+1]++
		}
	}
	for t := 0; t < n; t++ {
		off[t+1] += off[t]
	}
	succs = make([]int32, len(d.preds))
	fill := make([]int32, n)
	for t := 0; t < n; t++ {
		for _, p := range d.Preds(t) {
			succs[off[p]+fill[p]] = int32(t)
			fill[p]++
		}
	}
	return off, succs
}

// TotalWeight returns the sum of task weights, which for any valid list is
// 6pq²−2q³ units for p ≥ q (§2.2) regardless of the elimination order.
func (d *DAG) TotalWeight() int {
	w := 0
	for _, t := range d.Tasks {
		w += t.Kind.Weight()
	}
	return w
}

// dagBuilder accumulates tasks and their dependency edges while tracking,
// per tile, the last writer of its two regions:
//
//   - the data region (the tile as updated by UNMQR/TSMQR/TTMQR and consumed
//     by the next column's factor kernels), and
//   - the R region of panel tiles (the factor chained through successive
//     TSQRT/TTQRT calls on the same pivot).
//
// Keeping the regions separate is what lets UNMQR(i,k,j) run concurrently
// with TTQRT(i,piv,k), exactly as in the paper's dependency analysis of
// Algorithm 3.
type dagBuilder struct {
	p, q int
	d    *DAG

	lastData []int32 // last writer of tile (i,j) data region, -1 if none
	lastR    []int32 // last writer of tile (i,k) R region, -1 if none
	tri      []bool  // tile (i,k) already triangularized in its column
	scratch  []int32
}

func newDAGBuilder(p, q int, kernels Kernels) *dagBuilder {
	// Preallocate for the TT expansion (the largest): every tile in every
	// panel column is triangularized once (GEQRT + q−k updates) and every
	// elimination adds a factor kernel plus q−k updates.
	nTasks := 0
	for k := 1; k <= min(p, q); k++ {
		nTasks += (p - k + 1) * (1 + q - k)
		nTasks += (p - k) * (1 + q - k)
	}
	d := &DAG{P: p, Q: q, Kernels: kernels, zeroTask: make([]int32, p*q)}
	d.Tasks = make([]Task, 0, nTasks)
	d.preds = make([]int32, 0, 3*nTasks)
	d.predOff = make([]int32, 1, nTasks+1)
	for i := range d.zeroTask {
		d.zeroTask[i] = -1
	}
	b := &dagBuilder{p: p, q: q, d: d,
		lastData: make([]int32, p*q),
		lastR:    make([]int32, p*q),
		tri:      make([]bool, p*q),
	}
	for i := range b.lastData {
		b.lastData[i] = -1
		b.lastR[i] = -1
	}
	return b
}

func (b *dagBuilder) idx(i, j int) int { return (i-1)*b.q + (j - 1) }

// add appends a task with the given predecessors (-1 entries are skipped,
// duplicates removed) and returns its ID.
func (b *dagBuilder) add(t Task, preds ...int32) int32 {
	id := int32(len(b.d.Tasks))
	b.d.Tasks = append(b.d.Tasks, t)
	b.scratch = b.scratch[:0]
	for _, p := range preds {
		if p < 0 {
			continue
		}
		dup := false
		for _, q := range b.scratch {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			b.scratch = append(b.scratch, p)
		}
	}
	b.d.preds = append(b.d.preds, b.scratch...)
	b.d.predOff = append(b.d.predOff, int32(len(b.d.preds)))
	return id
}

// triangularize emits GEQRT(r,k) and its UNMQR updates if tile (r,k) is not
// yet a triangle.
func (b *dagBuilder) triangularize(r, k int) {
	if b.tri[b.idx(r, k)] {
		return
	}
	b.tri[b.idx(r, k)] = true
	g := b.add(Task{Kind: KGEQRT, I: r, K: k}, b.lastData[b.idx(r, k)])
	b.lastR[b.idx(r, k)] = g
	for j := k + 1; j <= b.q; j++ {
		u := b.add(Task{Kind: KUNMQR, I: r, K: k, J: j}, g, b.lastData[b.idx(r, j)])
		b.lastData[b.idx(r, j)] = u
	}
}

// elim expands one elimination into its factor kernel plus trailing updates,
// triangularizing the participating rows first as the kernel family demands.
// Shared by BuildDAG and BuildStreamDAG.
func (b *dagBuilder) elim(e Elim, kernels Kernels) {
	useTT := kernels == TT || b.tri[b.idx(e.I, e.K)]
	b.triangularize(e.Piv, e.K)
	if useTT {
		if kernels == TT {
			b.triangularize(e.I, e.K)
		}
		f := b.add(Task{Kind: KTTQRT, I: e.I, Piv: e.Piv, K: e.K},
			b.lastR[b.idx(e.Piv, e.K)], b.lastR[b.idx(e.I, e.K)])
		b.lastR[b.idx(e.Piv, e.K)] = f
		b.lastR[b.idx(e.I, e.K)] = f
		b.d.zeroTask[b.idx(e.I, e.K)] = f
		for j := e.K + 1; j <= b.q; j++ {
			u := b.add(Task{Kind: KTTMQR, I: e.I, Piv: e.Piv, K: e.K, J: j},
				f, b.lastData[b.idx(e.I, j)], b.lastData[b.idx(e.Piv, j)])
			b.lastData[b.idx(e.I, j)] = u
			b.lastData[b.idx(e.Piv, j)] = u
		}
	} else {
		f := b.add(Task{Kind: KTSQRT, I: e.I, Piv: e.Piv, K: e.K},
			b.lastR[b.idx(e.Piv, e.K)], b.lastData[b.idx(e.I, e.K)])
		b.lastR[b.idx(e.Piv, e.K)] = f
		b.lastR[b.idx(e.I, e.K)] = f
		b.d.zeroTask[b.idx(e.I, e.K)] = f
		for j := e.K + 1; j <= b.q; j++ {
			u := b.add(Task{Kind: KTSMQR, I: e.I, Piv: e.Piv, K: e.K, J: j},
				f, b.lastData[b.idx(e.I, j)], b.lastData[b.idx(e.Piv, j)])
			b.lastData[b.idx(e.I, j)] = u
			b.lastData[b.idx(e.Piv, j)] = u
		}
	}
}

// BuildDAG expands a validated elimination list into the kernel task graph
// for the chosen kernel family. Following §2.1, a kernel is omitted when a
// tile is already in the required form: TT mode triangularizes both rows,
// while TS mode eliminates full tiles with TSQRT and falls back to TTQRT
// when the tile being zeroed is already a triangle (PLASMA's semi-parallel
// inter-domain merge, per Hadri et al. [10]).
func BuildDAG(list List, kernels Kernels) *DAG {
	b := newDAGBuilder(list.P, list.Q, kernels)
	for _, e := range list.Elims {
		b.elim(e, kernels)
	}
	// Triangularize any diagonal tile never used as a pivot (the final
	// GEQRT(k,k) of square grids, or every column when p == 1).
	for k := 1; k <= list.MinPQ(); k++ {
		b.triangularize(k, k)
	}
	return b.d
}
