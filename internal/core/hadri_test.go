package core

import "testing"

func TestHadriTreeValid(t *testing.T) {
	for _, s := range [][2]int{{15, 6}, {40, 7}, {12, 12}, {9, 2}} {
		for _, bs := range []int{1, 2, 3, 5, s[0]} {
			l := HadriTreeList(s[0], s[1], bs)
			if err := l.Validate(false); err != nil {
				t.Errorf("HadriTree(%d,%d,BS=%d): %v", s[0], s[1], bs, err)
			}
		}
	}
}

func TestHadriDegeneratesLikePlasma(t *testing.T) {
	// BS = 1 is a binary tree for both anchorings; BS ≥ p is a flat tree.
	p, q := 12, 4
	if _, cpH := StaticListTimes(HadriTreeList(p, q, 1)); true {
		_, cpB := StaticListTimes(BinaryTreeList(p, q))
		if cpH != cpB {
			t.Errorf("HadriTree(BS=1) CP %d != BinaryTree CP %d", cpH, cpB)
		}
	}
	if _, cpH := StaticListTimes(HadriTreeList(p, q, p)); true {
		_, cpF := StaticListTimes(FlatTreeList(p, q))
		if cpH != cpF {
			t.Errorf("HadriTree(BS=p) CP %d != FlatTree CP %d", cpH, cpF)
		}
	}
}

// TestHadriNeverBeatsPlasma reproduces the §4 finding: "the PLASMA
// algorithms performed identically or better than these algorithms" — in
// critical-path terms, the best PLASMA-anchored tree is never worse than
// the best Hadri-anchored tree.
func TestHadriNeverBeatsPlasma(t *testing.T) {
	for _, s := range [][2]int{{15, 6}, {40, 4}, {40, 10}, {20, 20}, {30, 3}} {
		p, q := s[0], s[1]
		bestPlasma, bestHadri := 1<<30, 1<<30
		for bs := 1; bs <= p; bs++ {
			if _, cp := StaticListTimes(PlasmaTreeList(p, q, bs)); cp < bestPlasma {
				bestPlasma = cp
			}
			if _, cp := StaticListTimes(HadriTreeList(p, q, bs)); cp < bestHadri {
				bestHadri = cp
			}
		}
		if bestPlasma > bestHadri {
			t.Errorf("%dx%d: best PlasmaTree CP %d worse than best HadriTree CP %d", p, q, bestPlasma, bestHadri)
		}
	}
}

// TestHadriPerBSComparison: with the same BS the two anchorings may differ
// either way for individual domain sizes, but the PLASMA anchoring wins the
// aggregate (previous test); here we just pin that both produce sane CPs
// bounded below by Greedy's.
func TestHadriBoundedByGreedy(t *testing.T) {
	p, q := 40, 6
	_, greedy := StaticListTimes(GreedyList(p, q))
	for _, bs := range []int{1, 5, 10, 20} {
		_, cp := StaticListTimes(HadriTreeList(p, q, bs))
		if cp < greedy {
			t.Errorf("HadriTree(BS=%d) CP %d beats Greedy %d on %dx%d", bs, cp, greedy, p, q)
		}
	}
}
