package core

import (
	"container/heap"
	"sort"
)

// The Asap algorithm ("as soon as possible", §3.2) is dynamic: in each
// column, eliminations start as soon as at least two rows are ready (their
// tiles triangularized and the rows not otherwise engaged); when 2s rows are
// ready, the bottom 2s rows are paired exactly as Fibonacci and Greedy pair
// them. Because decisions depend on simulated kernel completion times, the
// list is produced by an event-driven simulation of the tiled model with
// unbounded processors.
//
// The same engine executes *static* per-column prescriptions as early as
// possible, which yields Grasap(k) (Greedy on columns 1..q−k, Asap on the
// last k columns) and, with all columns static, an independent cross-check
// of the DAG-based simulator in internal/sim.

// engineEvent marks row Row becoming available in column K at time T
// (either its GEQRT just finished, or it just finished serving as a pivot).
type engineEvent struct {
	T   int
	K   int
	Row int
}

type eventHeap []engineEvent

func (h eventHeap) Len() int      { return len(h) }
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h eventHeap) Less(i, j int) bool {
	if h[i].T != h[j].T {
		return h[i].T < h[j].T
	}
	if h[i].K != h[j].K {
		return h[i].K < h[j].K
	}
	return h[i].Row < h[j].Row
}
func (h *eventHeap) Push(x any) { *h = append(*h, x.(engineEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// timedElim is an output elimination annotated with its TTQRT start time.
type timedElim struct {
	start int
	e     Elim
}

// engine runs the dynamic tiled-model simulation.
type engine struct {
	p, q, qmin int
	dataTime   [][]int // dataTime[i][j]: completion of last write to tile (i,j), 1-based
	avail      [][]int // avail[k]: rows currently available in column k, ascending
	events     eventHeap
	out        []timedElim
	zero       [][]int // zero[i-1][k-1]: completion time of the elimination of tile (i,k)
	geqrt      [][]int // geqrt[i-1][k-1]: completion time of GEQRT(i,k), 0 if never run
	maxTime    int
	remaining  int

	// Static prescriptions: static[k] is nil for dynamic (Asap) columns;
	// otherwise the column's eliminations in list order. rowSeq[k][r] holds
	// the prescription indices involving row r, consumed front to back:
	// an elimination may start only when it is at the head of both of its
	// rows' sequences (preserving pivot chains and annihilator order).
	static  [][]Elim
	rowSeq  []map[int][]int
	started [][]bool
}

func newEngine(p, q int, static [][]Elim) *engine {
	qmin := min(p, q)
	e := &engine{p: p, q: q, qmin: qmin, static: static}
	e.dataTime = make([][]int, p+1)
	for i := 1; i <= p; i++ {
		e.dataTime[i] = make([]int, q+1)
	}
	e.avail = make([][]int, qmin+1)
	e.zero = make([][]int, p)
	e.geqrt = make([][]int, p)
	for i := range e.zero {
		e.zero[i] = make([]int, qmin)
		e.geqrt[i] = make([]int, qmin)
	}
	e.rowSeq = make([]map[int][]int, qmin+1)
	e.started = make([][]bool, qmin+1)
	for k := 1; k <= qmin; k++ {
		e.remaining += p - k
		if static[k] != nil {
			e.rowSeq[k] = make(map[int][]int)
			e.started[k] = make([]bool, len(static[k]))
			for idx, el := range static[k] {
				e.rowSeq[k][el.I] = append(e.rowSeq[k][el.I], idx)
				e.rowSeq[k][el.Piv] = append(e.rowSeq[k][el.Piv], idx)
			}
		}
	}
	return e
}

// bump records a kernel completion time in the makespan.
func (e *engine) bump(t int) {
	if t > e.maxTime {
		e.maxTime = t
	}
}

// enterColumn schedules GEQRT(row,k) and its UNMQR updates, then queues the
// row's availability event.
func (e *engine) enterColumn(row, k int) {
	if k > e.qmin {
		return
	}
	gs := e.dataTime[row][k]
	gf := gs + KGEQRT.Weight()
	e.geqrt[row-1][k-1] = gf
	e.bump(gf)
	for j := k + 1; j <= e.q; j++ {
		us := max(gf, e.dataTime[row][j])
		uf := us + KUNMQR.Weight()
		e.dataTime[row][j] = uf
		e.bump(uf)
	}
	heap.Push(&e.events, engineEvent{T: gf, K: k, Row: row})
}

// engineTrace, when non-nil, receives a line per scheduled kernel (tests).
var engineTrace func(format string, args ...any)

// startElim launches TTQRT(i,piv,k) at time t and schedules its TTMQR
// updates; the pivot re-enters the column's pool when the TTQRT completes
// and the zeroed row proceeds to the next column.
func (e *engine) startElim(i, piv, k, t int) {
	if engineTrace != nil {
		engineTrace("t=%d TTQRT(%d,%d,%d)", t, i, piv, k)
	}
	fin := t + KTTQRT.Weight()
	e.bump(fin)
	e.zero[i-1][k-1] = fin
	e.out = append(e.out, timedElim{start: t, e: Elim{I: i, Piv: piv, K: k}})
	e.remaining--
	for j := k + 1; j <= e.q; j++ {
		s := max(fin, e.dataTime[i][j], e.dataTime[piv][j])
		f := s + KTTMQR.Weight()
		if engineTrace != nil {
			engineTrace("t=%d..%d TTMQR(%d,%d,%d,%d)", s, f, i, piv, k, j)
		}
		e.dataTime[i][j] = f
		e.dataTime[piv][j] = f
		e.bump(f)
	}
	heap.Push(&e.events, engineEvent{T: fin, K: k, Row: piv})
	e.enterColumn(i, k+1)
}

// removeAvail removes the given rows (ascending) from column k's pool.
func (e *engine) removeAvail(k int, rows []int) {
	pool := e.avail[k][:0]
	for _, r := range e.avail[k] {
		drop := false
		for _, x := range rows {
			if x == r {
				drop = true
				break
			}
		}
		if !drop {
			pool = append(pool, r)
		}
	}
	e.avail[k] = pool
}

// decideColumn fires every elimination that may start in column k at time t.
func (e *engine) decideColumn(k, t int) {
	if e.static[k] == nil {
		// Asap rule: with m ≥ 2 available rows, pair the bottom 2·⌊m/2⌋.
		m := len(e.avail[k])
		z := m / 2
		if z == 0 {
			return
		}
		pivots := append([]int(nil), e.avail[k][m-2*z:m-z]...)
		elims := append([]int(nil), e.avail[k][m-z:]...)
		e.removeAvail(k, append(append([]int(nil), pivots...), elims...))
		for x := 0; x < z; x++ {
			e.startElim(elims[x], pivots[x], k, t)
		}
		return
	}
	// Static prescription: start every elimination that heads both of its
	// rows' sequences and whose rows are available. Restart the scan after
	// each launch (a launch never enables another at the same instant, but
	// scanning is cheap and keeps the logic obviously correct).
	for again := true; again; {
		again = false
		for _, idx := range e.eligibleStatic(k) {
			el := e.static[k][idx]
			e.started[k][idx] = true
			e.popRowSeq(k, el.I, idx)
			e.popRowSeq(k, el.Piv, idx)
			e.removeAvail(k, []int{el.I, el.Piv})
			e.startElim(el.I, el.Piv, el.K, t)
			again = true
		}
	}
}

// eligibleStatic returns prescription indices in column k whose both rows
// are available and at the head of their sequences.
func (e *engine) eligibleStatic(k int) []int {
	var out []int
	for _, r := range e.avail[k] {
		seq := e.rowSeq[k][r]
		if len(seq) == 0 {
			continue
		}
		idx := seq[0]
		if e.started[k][idx] {
			continue
		}
		el := e.static[k][idx]
		other := el.I
		if other == r {
			other = el.Piv
		}
		if !e.isAvail(k, other) {
			continue
		}
		oseq := e.rowSeq[k][other]
		if len(oseq) == 0 || oseq[0] != idx {
			continue
		}
		if el.I == r || r < other { // emit each pair once
			out = append(out, idx)
		}
	}
	// Deduplicate (each eligible pair may be seen from both rows).
	sort.Ints(out)
	out = dedupInts(out)
	return out
}

func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func (e *engine) popRowSeq(k, r, idx int) {
	seq := e.rowSeq[k][r]
	if len(seq) > 0 && seq[0] == idx {
		e.rowSeq[k][r] = seq[1:]
	}
}

func (e *engine) isAvail(k, r int) bool {
	for _, x := range e.avail[k] {
		if x == r {
			return true
		}
	}
	return false
}

// run executes the simulation to completion and returns the elimination
// list (ordered by TTQRT start time), the per-tile zeroing times, and the
// makespan over all kernels.
func (e *engine) run() (List, [][]int, int) {
	for r := 1; r <= e.p; r++ {
		e.enterColumn(r, 1)
	}
	for e.events.Len() > 0 {
		t := e.events[0].T
		touched := map[int]bool{}
		for e.events.Len() > 0 && e.events[0].T == t {
			ev := heap.Pop(&e.events).(engineEvent)
			e.avail[ev.K] = insertSorted(e.avail[ev.K], ev.Row)
			touched[ev.K] = true
		}
		for k := 1; k <= e.qmin; k++ {
			if touched[k] {
				e.decideColumn(k, t)
			}
		}
	}
	if e.remaining != 0 {
		panic("core: dynamic engine deadlocked")
	}
	sort.SliceStable(e.out, func(a, b int) bool {
		if e.out[a].start != e.out[b].start {
			return e.out[a].start < e.out[b].start
		}
		if e.out[a].e.K != e.out[b].e.K {
			return e.out[a].e.K < e.out[b].e.K
		}
		return e.out[a].e.I < e.out[b].e.I
	})
	l := List{P: e.p, Q: e.q, Elims: make([]Elim, len(e.out))}
	for i, te := range e.out {
		l.Elims[i] = te.e
	}
	return l, e.zero, e.maxTime
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// AsapList generates the Asap elimination list for a p×q tile matrix via
// dynamic simulation and returns it together with the per-tile zeroing
// times (indexed [i-1][k-1]) and the critical path length.
func AsapList(p, q int) (List, [][]int, int) {
	static := make([][]Elim, min(p, q)+1)
	return newEngine(p, q, static).run()
}

// GrasapList generates Grasap(k): Greedy pairings on columns 1..q−k executed
// as early as possible, Asap decisions on the last k columns. Grasap(0) is
// Greedy; Grasap(min(p,q)) is Asap.
func GrasapList(p, q, k int) (List, [][]int, int) {
	qmin := min(p, q)
	if k < 0 {
		k = 0
	}
	if k > qmin {
		k = qmin
	}
	static := make([][]Elim, qmin+1)
	greedy := GreedyList(p, q)
	for col := 1; col <= qmin-k; col++ {
		static[col] = []Elim{}
	}
	for _, el := range greedy.Elims {
		if el.K <= qmin-k {
			static[el.K] = append(static[el.K], el)
		}
	}
	return newEngine(p, q, static).run()
}

// StaticListTimes executes an arbitrary static elimination list through the
// dynamic engine (all columns prescribed) and returns the per-tile zeroing
// times and makespan. This is an independent implementation of the ASAP
// schedule used to cross-validate the DAG-based simulator.
func StaticListTimes(l List) ([][]int, int) {
	qmin := l.MinPQ()
	static := make([][]Elim, qmin+1)
	for col := 1; col <= qmin; col++ {
		static[col] = []Elim{}
	}
	for _, el := range l.Elims {
		static[el.K] = append(static[el.K], el)
	}
	_, zero, cp := newEngine(l.P, l.Q, static).run()
	return zero, cp
}
