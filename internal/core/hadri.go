package core

// HadriTreeList returns the elimination tree of Hadri et al.'s
// Semi-Parallel / Fully-Parallel tile CAQR [10]: like PlasmaTree it reduces
// domains of bs consecutive rows with flat trees and merges the domain
// heads with a binary tree, but the domains are anchored at row 1 and it is
// the TOP domain that shrinks as the factorization progresses through the
// columns (§4 of the paper: "Unlike PLASMA, it is not the bottom domain
// whose size decreases ... but instead is the top domain").
//
// Executed with TS kernels this is the Semi-Parallel algorithm (flat
// domains use TSQRT, triangle merges fall back to TTQRT); with TT kernels
// it is the Fully-Parallel algorithm. The paper reports that the PLASMA
// anchoring performs identically or better, which
// TestHadriNeverBeatsPlasma verifies in critical-path terms.
func HadriTreeList(p, q, bs int) List {
	if bs < 1 {
		bs = 1
	}
	l := List{P: p, Q: q}
	for k := 1; k <= min(p, q); k++ {
		// Fixed domains [1+d·bs, (d+1)·bs]; the head of a domain in column
		// k is its first row at or below the diagonal.
		var heads []int
		for d := 0; 1+d*bs <= p; d++ {
			lo, hi := 1+d*bs, min((d+1)*bs, p)
			if hi < k {
				continue // domain entirely above the diagonal
			}
			h := max(lo, k)
			heads = append(heads, h)
			for i := h + 1; i <= hi; i++ {
				l.Elims = append(l.Elims, Elim{I: i, Piv: h, K: k})
			}
		}
		// Binary-tree merge of the heads; heads[0] is the diagonal row.
		for step := 2; step/2 < len(heads); step *= 2 {
			for idx := step / 2; idx < len(heads); idx += step {
				l.Elims = append(l.Elims, Elim{I: heads[idx], Piv: heads[idx-step/2], K: k})
			}
		}
	}
	return l
}
