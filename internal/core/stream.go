package core

import "fmt"

// BuildStreamDAG builds the kernel task graph that merges a freshly appended
// batch of pb tile rows into a resident q×q upper triangular tile matrix —
// the incremental step of communication-avoiding TSQR (Demmel et al.), built
// from the same Table 1 kernels as a one-shot factorization.
//
// Row indices in the returned tasks are 1-based over the stacked matrix
// [R; B]: rows 1..q are the resident triangle (pre-triangularized — the DAG
// never emits a GEQRT for them, and their structurally zero sub-diagonal
// tiles are never eliminated), rows q+1..q+pb are the batch tiles.
//
// Every column k = 1..q zeroes all pb batch tiles in that column: the batch
// rows are first reduced among themselves by a binary tree (the optimal
// shape for a single-column reduction, §3 of the paper) and the surviving
// row is eliminated against resident row k. In TT mode each batch tile is
// triangularized by GEQRT and merged with TTQRT, so a column costs the same
// flops as the TS chain (4+2 = 6 and 6+6 = 12 weight units) while exposing
// the tree's log₂(pb) parallel depth. In TS mode the first tree level
// eliminates full tiles with TSQRT against GEQRT-triangularized pivots;
// later levels and the final merge combine the surviving triangles with
// TTQRT — except a single-tile-row batch (pb = 1, never triangularized),
// which merges into the resident triangle with one TSQRT.
//
// Total weight is ~pb·(6 + 12(q−k)) units per column — 2·r·n² flops for an
// r-row batch, the cost of applying Householder QR to r appended rows —
// independent of how many rows were ingested before.
func BuildStreamDAG(q, pb int, kernels Kernels) *DAG {
	if q < 1 || pb < 1 {
		panic(fmt.Sprintf("core: invalid stream merge shape q=%d pb=%d", q, pb))
	}
	b := newDAGBuilder(q+pb, q, kernels)
	// The resident rows are already triangular in every column; marking them
	// makes triangularize a no-op and routes their eliminations through the
	// triangle-on-triangle branch regardless of the kernel family.
	for i := 1; i <= q; i++ {
		for k := 1; k <= q; k++ {
			b.tri[b.idx(i, k)] = true
		}
	}
	alive := make([]int, 0, pb)
	next := make([]int, 0, pb)
	for k := 1; k <= q; k++ {
		alive = alive[:0]
		for i := 0; i < pb; i++ {
			alive = append(alive, q+1+i)
		}
		// Binary-tree reduction among the batch rows of column k.
		for len(alive) > 1 {
			next = next[:0]
			for j := 0; j+1 < len(alive); j += 2 {
				b.elim(Elim{I: alive[j+1], Piv: alive[j], K: k}, kernels)
				next = append(next, alive[j])
			}
			if len(alive)%2 == 1 {
				next = append(next, alive[len(alive)-1])
			}
			alive = append(alive[:0], next...)
		}
		// Merge the survivor into the resident triangle.
		b.elim(Elim{I: alive[0], Piv: k, K: k}, kernels)
	}
	return b.d
}
