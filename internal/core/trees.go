package core

import "fmt"

// FlatTreeList returns the Sameh-Kuck / FlatTree elimination list: in each
// column the diagonal row eliminates every row below it, top to bottom.
// This is the historical PLASMA ordering [4, 5, 14].
func FlatTreeList(p, q int) List {
	l := List{P: p, Q: q}
	for k := 1; k <= min(p, q); k++ {
		for i := k + 1; i <= p; i++ {
			l.Elims = append(l.Elims, Elim{I: i, Piv: k, K: k})
		}
	}
	return l
}

// BinaryTreeList returns the binary-tree reduction list: in each column,
// rows are paired level by level ((k,k+1), (k+2,k+3), ... then strides 2, 4,
// ...), the classical choice for tall and skinny matrices.
func BinaryTreeList(p, q int) List {
	l := List{P: p, Q: q}
	for k := 1; k <= min(p, q); k++ {
		for step := 2; step/2 < p-k+1; step *= 2 {
			// Relative index d = i−k; at this level rows with
			// d ≡ step/2 (mod step) are zeroed by the row step/2 above.
			for i := k + step/2; i <= p; i += step {
				l.Elims = append(l.Elims, Elim{I: i, Piv: i - step/2, K: k})
			}
		}
	}
	return l
}

// FibonacciCoarseStep returns coarse(i, k) for the Fibonacci scheme of
// order 1 [13]: the coarse-grain time step at which tile (i,k), i > k, is
// zeroed out. Column 1 follows the closed form of §3.1 and each subsequent
// column is the previous one shifted down one row and two time steps.
func FibonacciCoarseStep(p int, i, k int) int {
	// Shift to column 1: coarse(i,k) = coarse(i−k+1, 1) + 2(k−1), where the
	// column-1 pattern is the one for the full height p (the recurrence of
	// §3.1 shifts the whole pattern down one row per column).
	r := i - k + 1
	// x = least integer with x(x+1)/2 ≥ p−1.
	x := 0
	for x*(x+1)/2 < p-1 {
		x++
	}
	// y = least integer with r ≤ y(y+1)/2 + 1.
	y := 0
	for r > y*(y+1)/2+1 {
		y++
	}
	return x - y + 1 + 2*(k-1)
}

// FibonacciList returns the Fibonacci elimination list: tiles zeroed at the
// same coarse step form a contiguous bunch of z rows eliminated by the z
// rows directly above them, paired in natural order.
func FibonacciList(p, q int) List {
	l := List{P: p, Q: q}
	for k := 1; k <= min(p, q); k++ {
		if p-k+1 < 2 {
			continue
		}
		// Group rows k+1..p of this column by coarse step.
		maxStep := 0
		step := make(map[int][]int)
		for i := k + 1; i <= p; i++ {
			s := FibonacciCoarseStep(p, i, k)
			step[s] = append(step[s], i)
			if s > maxStep {
				maxStep = s
			}
		}
		for s := 1; s <= maxStep; s++ {
			rows := step[s] // ascending by construction
			z := len(rows)
			for _, i := range rows {
				l.Elims = append(l.Elims, Elim{I: i, Piv: i - z, K: k})
			}
		}
	}
	return l
}

// CoarseSchedule executes an elimination list under the coarse-grain model
// of §3.1: every elimination costs one time unit, occupies both of its rows
// for that unit, and requires both rows to have been zeroed in all earlier
// columns during previous steps. It returns the step at which each
// sub-diagonal tile is zeroed (indexed [i-1][k-1]) and the makespan.
// Eliminations are started as early as possible in list order.
func CoarseSchedule(l List) (steps [][]int, makespan int) {
	steps = make([][]int, l.P)
	for i := range steps {
		steps[i] = make([]int, min(l.MinPQ(), l.P))
	}
	lastUse := make([]int, l.P+1) // last step each row was used
	levelAt := make([]int, l.P+1) // step after which the row reached its current column
	rowCol := make([]int, l.P+1)  // column the row currently belongs to
	for r := 1; r <= l.P; r++ {
		rowCol[r] = 1
	}
	for _, e := range l.Elims {
		if rowCol[e.I] != e.K || (e.Piv > e.K && rowCol[e.Piv] < e.K) {
			panic(fmt.Sprintf("core: coarse schedule: %v executed out of order", e))
		}
		s := max(levelAt[e.I], levelAt[e.Piv], lastUse[e.I], lastUse[e.Piv]) + 1
		lastUse[e.I], lastUse[e.Piv] = s, s
		steps[e.I-1][e.K-1] = s
		rowCol[e.I] = e.K + 1
		levelAt[e.I] = s
		if s > makespan {
			makespan = s
		}
	}
	return steps, makespan
}
