package core

// GreedyList returns the Greedy elimination list [6, 7]: at each coarse-grain
// step, in every column, as many tiles as possible are eliminated, starting
// with bottom rows; z candidate rows are paired bottom-half/top-half in
// natural order (the z zeroed rows use the z candidate rows directly above
// them). The returned order is by coarse step, then column, then row, which
// is a valid total order.
func GreedyList(p, q int) List {
	l := List{P: p, Q: q}
	qmin := min(p, q)
	if p < 2 || qmin < 1 {
		return l
	}
	col := make([]int, p+1)   // current column of each row
	ready := make([]int, p+1) // first step at which the row is usable there
	for r := 1; r <= p; r++ {
		col[r], ready[r] = 1, 1
	}
	remaining := 0
	for k := 1; k <= qmin; k++ {
		remaining += p - k
	}
	cands := make([]int, 0, p)
	for step := 1; remaining > 0; step++ {
		for k := 1; k <= qmin; k++ {
			cands = cands[:0]
			for r := k; r <= p; r++ {
				if col[r] == k && ready[r] <= step {
					cands = append(cands, r)
				}
			}
			m := len(cands)
			z := m / 2
			for x := 0; x < z; x++ {
				piv, i := cands[m-2*z+x], cands[m-z+x]
				l.Elims = append(l.Elims, Elim{I: i, Piv: piv, K: k})
				ready[piv] = step + 1
				ready[i] = step + 1
				col[i] = k + 1
				remaining--
			}
		}
	}
	return l
}

// GreedyAlgorithm4List returns the elimination list produced by the paper's
// literal Algorithm 4 (the tiled Greedy pseudo-code driven by per-column
// triangularized/zeroed counters). Tests verify it is identical to
// GreedyList, documenting that tiled Greedy keeps the coarse-grain Greedy
// pairing (§3.2).
func GreedyAlgorithm4List(p, q int) List {
	l := List{P: p, Q: q}
	qmin := min(p, q)
	if p < 2 || qmin < 1 {
		return l
	}
	nZ := make([]int, qmin+1) // tiles eliminated in column j (counted from the bottom)
	nT := make([]int, qmin+1) // tiles triangularized in column j
	remaining := 0
	for k := 1; k <= qmin; k++ {
		remaining += p - k
	}
	for round := 0; remaining > 0; round++ {
		for j := qmin; j >= 1; j-- {
			var nTnew int
			if j == 1 {
				nTnew = p
			} else {
				// Triangularize every tile having a zero in the previous column.
				nTnew = nZ[j-1]
			}
			// Eliminate every tile triangularized in a previous round.
			nZnew := nZ[j] + (nT[j]-nZ[j])/2
			if nZnew > p-j {
				nZnew = p - j
			}
			// Emit each simultaneous batch in ascending row order (the
			// pseudo-code's kk loop runs bottom-up; the batch is a set of
			// independent eliminations, so the order within it is free and
			// ascending matches GreedyList).
			z := nZnew - nZ[j]
			for kk := nZnew - 1; kk >= nZ[j]; kk-- {
				i := p - kk
				l.Elims = append(l.Elims, Elim{I: i, Piv: i - z, K: j})
				remaining--
			}
			nT[j] = nTnew
			nZ[j] = nZnew
		}
	}
	return l
}

// PlasmaTreeList returns the PLASMA domain-tree list with domain size bs:
// within each column, rows are split into domains of bs consecutive rows
// anchored at the diagonal (so the bottom domain shrinks as the algorithm
// progresses through the columns, as described in §3.2); each domain is
// reduced by a flat tree rooted at its first row, and the domain heads are
// merged by a binary tree into the diagonal row. bs=1 degenerates to
// BinaryTree and bs≥p to FlatTree.
func PlasmaTreeList(p, q, bs int) List {
	if bs < 1 {
		bs = 1
	}
	l := List{P: p, Q: q}
	for k := 1; k <= min(p, q); k++ {
		nd := (p - k) / bs // highest domain index d such that k+d·bs ≤ p
		// Flat trees inside each domain.
		for d := 0; d <= nd; d++ {
			h := k + d*bs
			for i := h + 1; i <= min(h+bs-1, p); i++ {
				l.Elims = append(l.Elims, Elim{I: i, Piv: h, K: k})
			}
		}
		// Binary-tree merge of the domain heads.
		for step := 2; step/2 <= nd; step *= 2 {
			for d := step / 2; d <= nd; d += step {
				l.Elims = append(l.Elims, Elim{I: k + d*bs, Piv: k + (d-step/2)*bs, K: k})
			}
		}
	}
	return l
}
