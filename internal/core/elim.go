// Package core implements the algorithmic contribution of "Tiled QR
// factorization algorithms" (Bouwmeester, Jacquelin, Langou, Robert, 2011):
// elimination lists, their validity conditions (§2.2), the tree algorithms
// (FlatTree/Sameh-Kuck, BinaryTree, Fibonacci, Greedy, PlasmaTree, Asap,
// Grasap), the coarse-grain model of §3.1, and the expansion of elimination
// lists into weighted kernel task DAGs (§2.1, §2.3) for both the TT and TS
// kernel families.
//
// Tile indices are 1-based throughout this package, matching the paper's
// notation, so every table in the paper can be checked literally.
package core

import (
	"fmt"
	"sort"
)

// Elim is one orthogonal transformation elim(i, piv, k): rows i and piv are
// combined to zero out the tile in position (i, k). Indices are 1-based.
type Elim struct {
	I, Piv, K int
}

func (e Elim) String() string { return fmt.Sprintf("elim(%d,%d,%d)", e.I, e.Piv, e.K) }

// List is an elimination list for a p×q tile matrix: the ordered list of
// transformations used to zero out all tiles below the diagonal. The order
// is the paper's "totally ordered sequence" — transformations may still
// execute concurrently when no dependence links them.
type List struct {
	P, Q  int
	Elims []Elim
}

// MinPQ returns min(p, q), the number of panel columns.
func (l List) MinPQ() int { return min(l.P, l.Q) }

// Validate checks the two validity conditions of §2.2:
//
//  1. both rows ready: every elimination of rows i and piv in columns k' < k
//     precedes elim(i, piv, k);
//  2. row piv is a potential annihilator: if tile (piv, k) is itself zeroed
//     out, that happens after elim(i, piv, k).
//
// plus completeness (exactly one elimination per sub-diagonal tile) and
// basic index sanity. Reverse eliminations (i < piv) are accepted when
// allowReverse is set (Lemma 1 shows they can always be removed).
func (l List) Validate(allowReverse bool) error {
	qmin := l.MinPQ()
	// zeroedAt[i][k] = position in the list at which tile (i,k) is zeroed.
	pos := make(map[[2]int]int, len(l.Elims))
	for idx, e := range l.Elims {
		if e.K < 1 || e.K > qmin || e.I <= e.K || e.I > l.P {
			return fmt.Errorf("core: elim %d: %v targets an invalid tile for a %d×%d grid", idx, e, l.P, l.Q)
		}
		if e.Piv < e.K || e.Piv > l.P || e.Piv == e.I {
			return fmt.Errorf("core: elim %d: %v has invalid pivot row", idx, e)
		}
		if e.I < e.Piv && !allowReverse {
			return fmt.Errorf("core: elim %d: %v is a reverse elimination", idx, e)
		}
		if _, dup := pos[[2]int{e.I, e.K}]; dup {
			return fmt.Errorf("core: elim %d: tile (%d,%d) zeroed twice", idx, e.I, e.K)
		}
		pos[[2]int{e.I, e.K}] = idx
	}
	want := 0
	for k := 1; k <= qmin; k++ {
		want += l.P - k
	}
	if len(l.Elims) != want {
		return fmt.Errorf("core: list has %d eliminations, a %d×%d grid needs %d", len(l.Elims), l.P, l.Q, want)
	}
	for idx, e := range l.Elims {
		// Condition 1: rows ready.
		for k := 1; k < e.K; k++ {
			if p, ok := pos[[2]int{e.I, k}]; !ok || p >= idx {
				return fmt.Errorf("core: elim %d: %v before row %d is ready in column %d", idx, e, e.I, k)
			}
			if e.Piv > k {
				if p, ok := pos[[2]int{e.Piv, k}]; !ok || p >= idx {
					return fmt.Errorf("core: elim %d: %v before pivot row %d is ready in column %d", idx, e, e.Piv, k)
				}
			}
		}
		// Condition 2: pivot still a potential annihilator.
		if e.Piv > e.K {
			if p, ok := pos[[2]int{e.Piv, e.K}]; ok && p < idx {
				return fmt.Errorf("core: elim %d: %v uses already-zeroed pivot tile (%d,%d)", idx, e, e.Piv, e.K)
			}
		}
	}
	return nil
}

// HasReverse reports whether the list contains a reverse elimination
// (an elimination whose pivot row lies below the zeroed row).
func (l List) HasReverse() bool {
	for _, e := range l.Elims {
		if e.I < e.Piv {
			return true
		}
	}
	return false
}

// NormalizeReverse implements the constructive procedure of Lemma 1: it
// returns an equivalent list without reverse eliminations and with the same
// execution time. Rows i0 (the largest row involved in a reverse elimination
// of the first offending column) and i1 (the first row it reverse-eliminates)
// exchange roles from the first reverse elimination onwards; the procedure
// repeats until no reverse elimination remains.
func (l List) NormalizeReverse() List {
	out := List{P: l.P, Q: l.Q, Elims: append([]Elim(nil), l.Elims...)}
	for guard := 0; ; guard++ {
		if guard > len(out.Elims)*len(out.Elims)+16 {
			panic("core: NormalizeReverse did not converge")
		}
		// Find the first column containing a reverse elimination, then the
		// largest pivot row involved in a reverse elimination there.
		k0, i0 := -1, -1
		for _, e := range out.Elims {
			if e.I < e.Piv && (k0 == -1 || e.K < k0) {
				k0 = e.K
			}
		}
		if k0 == -1 {
			return out
		}
		for _, e := range out.Elims {
			if e.K == k0 && e.I < e.Piv && e.Piv > i0 {
				i0 = e.Piv
			}
		}
		// i1 = the zeroed row of the first reverse elimination with pivot i0.
		pos0, i1 := -1, -1
		for idx, e := range out.Elims {
			if e.K == k0 && e.Piv == i0 && e.I < e.Piv {
				pos0, i1 = idx, e.I
				break
			}
		}
		// Exchange the roles of rows i0 and i1 in every transformation from
		// pos0 onwards (their states are identical when entering column k0,
		// so the exchange preserves all dependencies and all kernel timings).
		for idx := pos0; idx < len(out.Elims); idx++ {
			e := &out.Elims[idx]
			swapRow := func(r int) int {
				switch r {
				case i0:
					return i1
				case i1:
					return i0
				default:
					return r
				}
			}
			e.I, e.Piv = swapRow(e.I), swapRow(e.Piv)
		}
	}
}

// ZeroedColumnOrder returns, for each column k (1-based index into the outer
// slice at k-1), the rows in the order their tiles are zeroed. Useful for
// structural tests.
func (l List) ZeroedColumnOrder() [][]int {
	out := make([][]int, l.MinPQ())
	for _, e := range l.Elims {
		out[e.K-1] = append(out[e.K-1], e.I)
	}
	return out
}

// sortedRows returns a sorted copy of rows.
func sortedRows(rows []int) []int {
	out := append([]int(nil), rows...)
	sort.Ints(out)
	return out
}
