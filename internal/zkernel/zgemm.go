package zkernel

import "tiledqr/internal/vec"

// GEMM computes C += A·B for row-major complex blocks (A m×kk, B kk×n,
// C m×n); the complex reference kernel of Figure 4 of the paper. The inner
// dimension is consumed two rows of B at a time (vec.ZAxpy2).
func GEMM(m, n, kk int, a []complex128, lda int, b []complex128, ldb int, c []complex128, ldc int) {
	for i := 0; i < m; i++ {
		ci := c[i*ldc : i*ldc+n]
		ai := a[i*lda : i*lda+kk]
		l := 0
		for ; l+1 < kk; l += 2 {
			vec.ZAxpy2(ai[l], b[l*ldb:l*ldb+n], ai[l+1], b[(l+1)*ldb:(l+1)*ldb+n], ci)
		}
		if l < kk {
			vec.ZAxpy(ai[l], b[l*ldb:l*ldb+n], ci)
		}
	}
}
