package zkernel

// GEMM computes C += A·B for row-major complex blocks (A m×kk, B kk×n,
// C m×n); the complex reference kernel of Figure 4 of the paper.
func GEMM(m, n, kk int, a []complex128, lda int, b []complex128, ldb int, c []complex128, ldc int) {
	for i := 0; i < m; i++ {
		ci := c[i*ldc : i*ldc+n]
		for l := 0; l < kk; l++ {
			ail := a[i*lda+l]
			if ail == 0 {
				continue
			}
			bl := b[l*ldb : l*ldb+n]
			for j, bv := range bl {
				ci[j] += ail * bv
			}
		}
	}
}
