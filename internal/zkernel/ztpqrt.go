package zkernel

import (
	"math"
	"math/cmplx"

	"tiledqr/internal/vec"
)

// pentRows mirrors kernel.pentRows: rows of B participating in reflector j.
func pentRows(m, l, j int) int {
	return m - l + min(l, j+1)
}

// zlarfgPent generates the reflector for ZTPQRT column j from A(j,j) and
// B(0:p, j), with the safe single-pass ZNrm2 for the tail norm. On return
// B's column still holds raw values; the caller applies the returned scale
// in its next row sweep.
func zlarfgPent(a []complex128, lda int, b []complex128, ldb, j, p int) (tau, scale complex128) {
	alpha := a[j*lda+j]
	var xnorm float64
	if p > 0 {
		xnorm = vec.ZNrm2Inc(b[j:], p, ldb)
	}
	if xnorm == 0 && imag(alpha) == 0 {
		return 0, 1
	}
	beta := -math.Copysign(math.Hypot(cmplx.Abs(alpha), xnorm), real(alpha))
	tau = complex((beta-real(alpha))/beta, -imag(alpha)/beta)
	a[j*lda+j] = complex(beta, 0)
	return tau, 1 / (alpha - complex(beta, 0))
}

// ztpqrt2 factors one panel of the stacked [A; B] with pentagonal B.
// Row-contiguous sweeps as in kernel.tpqrt2; comb must have length ≥ kb.
// comb[c] accumulates Σ conj(v_i)·b(i, j0+c): the Vᴴ·B dot for update
// columns, the conjugate of the T-column dot for c < jj.
func ztpqrt2(m, n, l int, a []complex128, lda int, b []complex128, ldb, j0, kb int,
	t []complex128, ldt int, comb []complex128) {
	for jj := 0; jj < kb; jj++ {
		j := j0 + jj
		p := pentRows(m, l, j)
		tau, scale := zlarfgPent(a, lda, b, ldb, j, p)
		ctau := cmplx.Conj(tau)
		cb := comb[:kb]
		clear(cb)
		// Sweep 1 over B's structural rows, scaling the raw reflector
		// column in passing; the per-row start offset excludes T columns
		// whose pentagonal height is ≤ i (pentRows is nondecreasing in the
		// column, and start never exceeds jj).
		for i := 0; i < p; i++ {
			start := 0
			if d := i - (m - l) - j0; d > 0 {
				start = d
			}
			row := b[i*ldb+j0 : i*ldb+j0+kb]
			vi := row[jj] * scale
			row[jj] = vi
			vec.ZAxpy(cmplx.Conj(vi), row[start:], cb[start:])
		}
		// Apply Hᴴ to the remaining panel columns.
		if jj+1 < kb {
			w := cb[jj+1:]
			arow := a[j*lda+j+1 : j*lda+j0+kb]
			for y, av := range arow {
				wv := ctau * (av + w[y])
				arow[y] = av - wv
				w[y] = wv
			}
			for i := 0; i < p; i++ {
				vec.ZAxpy(-b[i*ldb+j], w, b[i*ldb+j+1:i*ldb+j0+kb])
			}
		}
		// T(0:jj, jj) = −τ·T(0:jj, 0:jj)·(V₂(:, 0:jj)ᴴ·v₂ⱼ); the top parts
		// are distinct identity columns and contribute 0.
		for c := 0; c < jj; c++ {
			cb[c] = cmplx.Conj(cb[c])
		}
		for r := 0; r < jj; r++ {
			t[r*ldt+j] = -tau * vec.ZDotu(t[r*ldt+j0+r:r*ldt+j0+jj], cb[r:jj])
		}
		t[jj*ldt+j] = tau
	}
}

// applyPentPanel applies the block reflector of a ZTPQRT panel to [C1; C2].
func applyPentPanel(trans bool, m, l int, v []complex128, ldv, vc0, kb int,
	t []complex128, ldt int,
	c1 []complex128, ldc1, c1c0 int,
	c2 []complex128, ldc2, c2c0, nc int, w []complex128) {
	// W = C1 + V₂ᴴ · C2: C1 rows seed W, then one sweep over C2's
	// structural rows (see kernel.applyPentPanel for the xmin suffix).
	for x := 0; x < kb; x++ {
		top := (vc0 + x) * ldc1
		copy(w[x*nc:x*nc+nc], c1[top+c1c0:top+c1c0+nc])
	}
	for xb := 0; xb < kb; xb += xBlock {
		xe := min(xb+xBlock, kb)
		pmaxB := pentRows(m, l, vc0+xe-1)
		for i := 0; i < pmaxB; i++ {
			ci := c2[i*ldc2+c2c0 : i*ldc2+c2c0+nc]
			xs := xb
			if d := i - (m - l) - vc0; d > xs {
				xs = d
			}
			vrow := v[i*ldv+vc0 : i*ldv+vc0+xe]
			for x := xs; x < xe; x++ {
				vec.ZAxpy(cmplx.Conj(vrow[x]), ci, w[x*nc:x*nc+nc])
			}
		}
	}
	triMulW(trans, kb, t, ldt, vc0, w, nc)
	// C1 −= W ; C2 −= V₂·W, same blocking, consuming W rows in pairs per
	// C2 row.
	for x := 0; x < kb; x++ {
		top := (vc0 + x) * ldc1
		vec.ZSub(w[x*nc:x*nc+nc], c1[top+c1c0:top+c1c0+nc])
	}
	for xb := 0; xb < kb; xb += xBlock {
		xe := min(xb+xBlock, kb)
		pmaxB := pentRows(m, l, vc0+xe-1)
		for i := 0; i < pmaxB; i++ {
			ci := c2[i*ldc2+c2c0 : i*ldc2+c2c0+nc]
			xs := xb
			if d := i - (m - l) - vc0; d > xs {
				xs = d
			}
			vrow := v[i*ldv+vc0 : i*ldv+vc0+xe]
			x := xs
			for ; x+1 < xe; x += 2 {
				vec.ZAxpy2(-vrow[x], w[x*nc:x*nc+nc], -vrow[x+1], w[(x+1)*nc:(x+1)*nc+nc], ci)
			}
			if x < xe {
				vec.ZAxpy(-vrow[x], w[x*nc:x*nc+nc], ci)
			}
		}
	}
}

// TPQRT computes the complex pentagonal factorization of [A; B]; see
// kernel.TPQRT for conventions and the l parameter (0 = TSQRT, min(m,n) =
// TTQRT).
func TPQRT(m, n, l, ib int, a []complex128, lda int, b []complex128, ldb int,
	t []complex128, ldt int, work []complex128) {
	if n == 0 || m == 0 {
		return
	}
	if l < 0 || l > min(m, n) {
		panic("zkernel: TPQRT requires 0 ≤ l ≤ min(m,n)")
	}
	ib = clampIB(ib, n)
	work = ensureWork(work, WorkLen(n, ib))
	comb, w := work[:ib], work[ib:]
	for k0 := 0; k0 < n; k0 += ib {
		kb := min(ib, n-k0)
		ztpqrt2(m, n, l, a, lda, b, ldb, k0, kb, t, ldt, comb)
		if k0+kb < n {
			applyPentPanel(true, m, l, b, ldb, k0, kb, t, ldt,
				a, lda, k0+kb, b, ldb, k0+kb, n-k0-kb, w)
		}
	}
}

// TSQRT is TPQRT with l = 0.
func TSQRT(m, n, ib int, a []complex128, lda int, b []complex128, ldb int,
	t []complex128, ldt int, work []complex128) {
	TPQRT(m, n, 0, ib, a, lda, b, ldb, t, ldt, work)
}

// TTQRT is TPQRT with l = min(m,n).
func TTQRT(m, n, ib int, a []complex128, lda int, b []complex128, ldb int,
	t []complex128, ldt int, work []complex128) {
	TPQRT(m, n, min(m, n), ib, a, lda, b, ldb, t, ldt, work)
}

// TPMQRT applies a complex TPQRT transformation to [C1; C2]; trans selects
// Qᴴ versus Q.
func TPMQRT(trans bool, m, k, l, ib int, v []complex128, ldv int, t []complex128, ldt int,
	c1 []complex128, ldc1 int, c2 []complex128, ldc2, nc int, work []complex128) {
	if k == 0 || nc == 0 {
		return
	}
	ib = clampIB(ib, k)
	work = ensureWork(work, ib*nc)
	if trans {
		for k0 := 0; k0 < k; k0 += ib {
			kb := min(ib, k-k0)
			applyPentPanel(true, m, l, v, ldv, k0, kb, t, ldt,
				c1, ldc1, 0, c2, ldc2, 0, nc, work)
		}
	} else {
		start := ((k - 1) / ib) * ib
		for k0 := start; k0 >= 0; k0 -= ib {
			kb := min(ib, k-k0)
			applyPentPanel(false, m, l, v, ldv, k0, kb, t, ldt,
				c1, ldc1, 0, c2, ldc2, 0, nc, work)
		}
	}
}

// TSMQR is TPMQRT with l = 0.
func TSMQR(trans bool, m, k, ib int, v []complex128, ldv int, t []complex128, ldt int,
	c1 []complex128, ldc1 int, c2 []complex128, ldc2, nc int, work []complex128) {
	TPMQRT(trans, m, k, 0, ib, v, ldv, t, ldt, c1, ldc1, c2, ldc2, nc, work)
}

// TTMQR is TPMQRT with l = min(m,k).
func TTMQR(trans bool, m, k, ib int, v []complex128, ldv int, t []complex128, ldt int,
	c1 []complex128, ldc1 int, c2 []complex128, ldc2, nc int, work []complex128) {
	TPMQRT(trans, m, k, min(m, k), ib, v, ldv, t, ldt, c1, ldc1, c2, ldc2, nc, work)
}
