package zkernel

import (
	"math"
	"math/cmplx"
)

// pentRows mirrors kernel.pentRows: rows of B participating in reflector j.
func pentRows(m, l, j int) int {
	return m - l + min(l, j+1)
}

// zlarfgPent generates the reflector for ZTPQRT column j from A(j,j) and
// B(0:p, j).
func zlarfgPent(a []complex128, lda int, b []complex128, ldb, j, p int) (tau complex128) {
	alpha := a[j*lda+j]
	var xnorm float64
	for i := 0; i < p; i++ {
		xnorm = math.Hypot(xnorm, cmplx.Abs(b[i*ldb+j]))
	}
	if xnorm == 0 && imag(alpha) == 0 {
		return 0
	}
	beta := -math.Copysign(math.Hypot(cmplx.Abs(alpha), xnorm), real(alpha))
	tau = complex((beta-real(alpha))/beta, -imag(alpha)/beta)
	scale := 1 / (alpha - complex(beta, 0))
	for i := 0; i < p; i++ {
		b[i*ldb+j] *= scale
	}
	a[j*lda+j] = complex(beta, 0)
	return tau
}

// ztpqrt2 factors one panel of the stacked [A; B] with pentagonal B.
func ztpqrt2(m, n, l int, a []complex128, lda int, b []complex128, ldb, j0, kb int,
	t []complex128, ldt int, tmp []complex128) {
	for jj := 0; jj < kb; jj++ {
		j := j0 + jj
		p := pentRows(m, l, j)
		tau := zlarfgPent(a, lda, b, ldb, j, p)
		ctau := cmplx.Conj(tau)
		for c := j + 1; c < j0+kb; c++ {
			w := a[j*lda+c]
			for i := 0; i < p; i++ {
				w += cmplx.Conj(b[i*ldb+j]) * b[i*ldb+c]
			}
			w *= ctau
			a[j*lda+c] -= w
			for i := 0; i < p; i++ {
				b[i*ldb+c] -= w * b[i*ldb+j]
			}
		}
		for c := 0; c < jj; c++ {
			pc := pentRows(m, l, j0+c)
			var s complex128
			for i := 0; i < pc; i++ {
				s += cmplx.Conj(b[i*ldb+j0+c]) * b[i*ldb+j]
			}
			tmp[c] = s
		}
		for r := 0; r < jj; r++ {
			var s complex128
			for c := r; c < jj; c++ {
				s += t[r*ldt+j0+c] * tmp[c]
			}
			t[r*ldt+j] = -tau * s
		}
		t[jj*ldt+j] = tau
	}
}

// applyPentPanel applies the block reflector of a ZTPQRT panel to [C1; C2].
func applyPentPanel(trans bool, m, l int, v []complex128, ldv, vc0, kb int,
	t []complex128, ldt int,
	c1 []complex128, ldc1, c1c0 int,
	c2 []complex128, ldc2, c2c0, nc int, w []complex128) {
	// W = C1 + V₂ᴴ · C2
	for x := 0; x < kb; x++ {
		col := vc0 + x
		p := pentRows(m, l, col)
		wx := w[x*nc : x*nc+nc]
		top := col * ldc1
		copy(wx, c1[top+c1c0:top+c1c0+nc])
		for i := 0; i < p; i++ {
			vix := cmplx.Conj(v[i*ldv+col])
			if vix == 0 {
				continue
			}
			ci := c2[i*ldc2+c2c0 : i*ldc2+c2c0+nc]
			for y, cv := range ci {
				wx[y] += vix * cv
			}
		}
	}
	triMulW(trans, kb, t, ldt, vc0, w, nc)
	// C1 −= W ; C2 −= V₂·W
	for x := 0; x < kb; x++ {
		col := vc0 + x
		p := pentRows(m, l, col)
		wx := w[x*nc : x*nc+nc]
		top := col * ldc1
		cd := c1[top+c1c0 : top+c1c0+nc]
		for y, wv := range wx {
			cd[y] -= wv
		}
		for i := 0; i < p; i++ {
			vix := v[i*ldv+col]
			if vix == 0 {
				continue
			}
			ci := c2[i*ldc2+c2c0 : i*ldc2+c2c0+nc]
			for y, wv := range wx {
				ci[y] -= vix * wv
			}
		}
	}
}

// TPQRT computes the complex pentagonal factorization of [A; B]; see
// kernel.TPQRT for conventions and the l parameter (0 = TSQRT, min(m,n) =
// TTQRT).
func TPQRT(m, n, l, ib int, a []complex128, lda int, b []complex128, ldb int,
	t []complex128, ldt int, work []complex128) {
	if n == 0 || m == 0 {
		return
	}
	if l < 0 || l > min(m, n) {
		panic("zkernel: TPQRT requires 0 ≤ l ≤ min(m,n)")
	}
	ib = clampIB(ib, n)
	work = ensureWork(work, ib*(n+1))
	tmp, w := work[:ib], work[ib:]
	for k0 := 0; k0 < n; k0 += ib {
		kb := min(ib, n-k0)
		ztpqrt2(m, n, l, a, lda, b, ldb, k0, kb, t, ldt, tmp)
		if k0+kb < n {
			applyPentPanel(true, m, l, b, ldb, k0, kb, t, ldt,
				a, lda, k0+kb, b, ldb, k0+kb, n-k0-kb, w)
		}
	}
}

// TSQRT is TPQRT with l = 0.
func TSQRT(m, n, ib int, a []complex128, lda int, b []complex128, ldb int,
	t []complex128, ldt int, work []complex128) {
	TPQRT(m, n, 0, ib, a, lda, b, ldb, t, ldt, work)
}

// TTQRT is TPQRT with l = min(m,n).
func TTQRT(m, n, ib int, a []complex128, lda int, b []complex128, ldb int,
	t []complex128, ldt int, work []complex128) {
	TPQRT(m, n, min(m, n), ib, a, lda, b, ldb, t, ldt, work)
}

// TPMQRT applies a complex TPQRT transformation to [C1; C2]; trans selects
// Qᴴ versus Q.
func TPMQRT(trans bool, m, k, l, ib int, v []complex128, ldv int, t []complex128, ldt int,
	c1 []complex128, ldc1 int, c2 []complex128, ldc2, nc int, work []complex128) {
	if k == 0 || nc == 0 {
		return
	}
	ib = clampIB(ib, k)
	work = ensureWork(work, ib*nc)
	if trans {
		for k0 := 0; k0 < k; k0 += ib {
			kb := min(ib, k-k0)
			applyPentPanel(true, m, l, v, ldv, k0, kb, t, ldt,
				c1, ldc1, 0, c2, ldc2, 0, nc, work)
		}
	} else {
		start := ((k - 1) / ib) * ib
		for k0 := start; k0 >= 0; k0 -= ib {
			kb := min(ib, k-k0)
			applyPentPanel(false, m, l, v, ldv, k0, kb, t, ldt,
				c1, ldc1, 0, c2, ldc2, 0, nc, work)
		}
	}
}

// TSMQR is TPMQRT with l = 0.
func TSMQR(trans bool, m, k, ib int, v []complex128, ldv int, t []complex128, ldt int,
	c1 []complex128, ldc1 int, c2 []complex128, ldc2, nc int, work []complex128) {
	TPMQRT(trans, m, k, 0, ib, v, ldv, t, ldt, c1, ldc1, c2, ldc2, nc, work)
}

// TTMQR is TPMQRT with l = min(m,k).
func TTMQR(trans bool, m, k, ib int, v []complex128, ldv int, t []complex128, ldt int,
	c1 []complex128, ldc1 int, c2 []complex128, ldc2, nc int, work []complex128) {
	TPMQRT(trans, m, k, min(m, k), ib, v, ldv, t, ldt, c1, ldc1, c2, ldc2, nc, work)
}
