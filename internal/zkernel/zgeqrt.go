// Package zkernel implements the complex128 (double complex) tile kernels
// of the tiled QR factorization, mirroring package kernel with LAPACK's
// complex Householder conventions: H = I − τ·v·vᴴ with v[0] = 1 and a real
// β; factorization applies Hᴴ from the left, Q = H₁···H_k, Qᴴ = I − V·Tᴴ·Vᴴ.
//
// The paper evaluates double complex alongside double because the
// computation-to-communication ratio is four times higher in complex
// arithmetic, which is where the extra parallelism of the TT algorithms
// pays off most (Section 4).
//
// Both domains share the tuned primitives of internal/vec; the inner loops
// are row-contiguous sweeps exactly as in the float64 kernels.
package zkernel

import (
	"math"
	"math/cmplx"

	"tiledqr/internal/vec"
)

// zlarfgCol generates an elementary complex Householder reflector acting on
// [a(r0,c); a(r0+1:m,c)] such that Hᴴ·x = [β; 0] with β real. On return
// a(r0,c) = β; the tail still holds the raw column — the caller multiplies
// it by the returned scale (fused into its next row sweep) to obtain
// v[r0+1:]. The tail norm is the safe single-pass ZNrm2 — one Sqrt per
// reflector instead of one Hypot+Abs per element.
func zlarfgCol(a []complex128, lda, r0, c, m int) (tau, scale complex128) {
	alpha := a[r0*lda+c]
	n := m - r0 - 1
	var xnorm float64
	if n > 0 {
		xnorm = vec.ZNrm2Inc(a[(r0+1)*lda+c:], n, lda)
	}
	if xnorm == 0 && imag(alpha) == 0 {
		return 0, 1
	}
	beta := -math.Copysign(math.Hypot(cmplx.Abs(alpha), xnorm), real(alpha))
	tau = complex((beta-real(alpha))/beta, -imag(alpha)/beta)
	a[r0*lda+c] = complex(beta, 0)
	return tau, 1 / (alpha - complex(beta, 0))
}

// zgeqrt2 factors the panel A[j0:m, j0:j0+kb] in place, storing the panel's
// triangular T factor in columns j0:j0+kb of t. comb must have length ≥ kb.
//
// Row-contiguous sweeps as in kernel.geqrt2, with one twist: a single sweep
// accumulates comb[c] = Σ_{i>j} conj(v_i)·a(i, j0+c). For update columns
// (c > jj) that is the needed Vᴴ·A dot directly; for T columns (c < jj) the
// needed Σ conj(v_c[i])·v_j[i] is its conjugate.
func zgeqrt2(m int, a []complex128, lda, j0, kb int, t []complex128, ldt int, comb []complex128) {
	for jj := 0; jj < kb; jj++ {
		j := j0 + jj
		tau, scale := zlarfgCol(a, lda, j, j, m)
		ctau := cmplx.Conj(tau)
		cb := comb[:kb]
		clear(cb)
		for i := j + 1; i < m; i++ {
			row := a[i*lda+j0 : i*lda+j0+kb]
			vi := row[jj] * scale
			row[jj] = vi
			vec.ZAxpy(cmplx.Conj(vi), row, cb)
		}
		// Apply Hᴴ to the remaining panel columns: w = conj(τ)·(row j +
		// comb), row j −= w, rows below −= v·w.
		if jj+1 < kb {
			w := cb[jj+1:]
			arow := a[j*lda+j+1 : j*lda+j0+kb]
			for y, av := range arow {
				wv := ctau * (av + w[y])
				arow[y] = av - wv
				w[y] = wv
			}
			for i := j + 1; i < m; i++ {
				vec.ZAxpy(-a[i*lda+j], w, a[i*lda+j+1:i*lda+j0+kb])
			}
		}
		// T(0:jj, jj) = −τ·T(0:jj, 0:jj)·(V(:, 0:jj)ᴴ·v_j): conjugate the
		// sweep's accumulators and add the row-j terms.
		for c := 0; c < jj; c++ {
			cb[c] = cmplx.Conj(a[j*lda+j0+c] + cb[c])
		}
		for r := 0; r < jj; r++ {
			t[r*ldt+j] = -tau * vec.ZDotu(t[r*ldt+j0+r:r*ldt+j0+jj], cb[r:jj])
		}
		t[jj*ldt+j] = tau
	}
}

// applyPanel applies the block reflector of a ZGEQRT panel to C:
// (I − V·Tᴴ·Vᴴ) (trans=true, i.e. Qᴴ) or I − V·T·Vᴴ (Q).
func applyPanel(trans bool, m int, v []complex128, ldv, r0, vc0, kb int,
	t []complex128, ldt, tc0 int, c []complex128, ldc, cc0, nc int, w []complex128) {
	// W = Vᴴ · C, swept in blocks of xBlock reflector columns so each
	// block's W rows stay cache-resident (see kernel.applyPanel).
	for xb := 0; xb < kb; xb += xBlock {
		xe := min(xb+xBlock, kb)
		for i := r0 + xb; i < m; i++ {
			ci := c[i*ldc+cc0 : i*ldc+cc0+nc]
			d := i - r0
			nx := min(d, xe)
			if d < xe {
				copy(w[d*nc:d*nc+nc], ci)
			}
			vrow := v[i*ldv+vc0 : i*ldv+vc0+nx]
			for x := xb; x < nx; x++ {
				vec.ZAxpy(cmplx.Conj(vrow[x]), ci, w[x*nc:x*nc+nc])
			}
		}
	}
	triMulW(trans, kb, t, ldt, tc0, w, nc)
	// C −= V · W, same blocking, consuming W rows in pairs per C row.
	for xb := 0; xb < kb; xb += xBlock {
		xe := min(xb+xBlock, kb)
		for i := r0 + xb; i < m; i++ {
			ci := c[i*ldc+cc0 : i*ldc+cc0+nc]
			d := i - r0
			nx := min(d, xe)
			if d < xe {
				vec.ZSub(w[d*nc:d*nc+nc], ci)
			}
			vrow := v[i*ldv+vc0 : i*ldv+vc0+nx]
			x := xb
			for ; x+1 < nx; x += 2 {
				vec.ZAxpy2(-vrow[x], w[x*nc:x*nc+nc], -vrow[x+1], w[(x+1)*nc:(x+1)*nc+nc], ci)
			}
			if x < nx {
				vec.ZAxpy(-vrow[x], w[x*nc:x*nc+nc], ci)
			}
		}
	}
}

// xBlock mirrors kernel.xBlock: the reflector-column blocking of the panel
// appliers (xBlock complex W rows stay L1-resident per block).
const xBlock = 8

// triMulW overwrites W with Tᴴ·W (trans) or T·W; the diagonal scale is
// fused with the first off-diagonal accumulation via ZAddScaled.
func triMulW(trans bool, kb int, t []complex128, ldt, tc0 int, w []complex128, nc int) {
	if trans {
		for x := kb - 1; x >= 0; x-- {
			wx := w[x*nc : x*nc+nc]
			txx := cmplx.Conj(t[x*ldt+tc0+x])
			if x == 0 {
				vec.ZScal(txx, wx)
				continue
			}
			vec.ZAddScaled(txx, cmplx.Conj(t[tc0+x]), w[:nc], wx)
			for r := 1; r < x; r++ {
				vec.ZAxpy(cmplx.Conj(t[r*ldt+tc0+x]), w[r*nc:r*nc+nc], wx)
			}
		}
	} else {
		for x := 0; x < kb; x++ {
			wx := w[x*nc : x*nc+nc]
			txx := t[x*ldt+tc0+x]
			if x == kb-1 {
				vec.ZScal(txx, wx)
				continue
			}
			vec.ZAddScaled(txx, t[x*ldt+tc0+x+1], w[(x+1)*nc:(x+1)*nc+nc], wx)
			for r := x + 2; r < kb; r++ {
				vec.ZAxpy(t[x*ldt+tc0+r], w[r*nc:r*nc+nc], wx)
			}
		}
	}
}

// GEQRT computes the blocked QR factorization of an m×n complex tile;
// see kernel.GEQRT for conventions.
func GEQRT(m, n, ib int, a []complex128, lda int, t []complex128, ldt int, work []complex128) {
	k := min(m, n)
	if k == 0 {
		return
	}
	ib = clampIB(ib, k)
	work = ensureWork(work, WorkLen(n, ib))
	comb, w := work[:ib], work[ib:]
	for k0 := 0; k0 < k; k0 += ib {
		kb := min(ib, k-k0)
		zgeqrt2(m, a, lda, k0, kb, t, ldt, comb)
		if k0+kb < n {
			applyPanel(true, m, a, lda, k0, k0, kb, t, ldt, k0, a, lda, k0+kb, n-k0-kb, w)
		}
	}
}

// UNMQR applies Qᴴ (trans) or Q of a complex GEQRT factorization to C.
func UNMQR(trans bool, m, k, ib int, v []complex128, ldv int, t []complex128, ldt int,
	c []complex128, ldc, nc int, work []complex128) {
	if k == 0 || nc == 0 {
		return
	}
	ib = clampIB(ib, k)
	work = ensureWork(work, ib*nc)
	if trans {
		for k0 := 0; k0 < k; k0 += ib {
			kb := min(ib, k-k0)
			applyPanel(true, m, v, ldv, k0, k0, kb, t, ldt, k0, c, ldc, 0, nc, work)
		}
	} else {
		start := ((k - 1) / ib) * ib
		for k0 := start; k0 >= 0; k0 -= ib {
			kb := min(ib, k-k0)
			applyPanel(false, m, v, ldv, k0, k0, kb, t, ldt, k0, c, ldc, 0, nc, work)
		}
	}
}

// WorkLen returns the scratch length the complex factor kernels need for an
// n-column tile at inner block size ib.
func WorkLen(n, ib int) int {
	return ib * (n + 1)
}

func clampIB(ib, k int) int {
	if ib <= 0 || ib > k {
		return k
	}
	return ib
}

func ensureWork(work []complex128, n int) []complex128 {
	if len(work) < n {
		return make([]complex128, n)
	}
	return work
}
