// Package zkernel implements the complex128 (double complex) tile kernels
// of the tiled QR factorization, mirroring package kernel with LAPACK's
// complex Householder conventions: H = I − τ·v·vᴴ with v[0] = 1 and a real
// β; factorization applies Hᴴ from the left, Q = H₁···H_k, Qᴴ = I − V·Tᴴ·Vᴴ.
//
// The paper evaluates double complex alongside double because the
// computation-to-communication ratio is four times higher in complex
// arithmetic, which is where the extra parallelism of the TT algorithms
// pays off most (Section 4).
package zkernel

import (
	"math"
	"math/cmplx"
)

// zlarfgCol generates an elementary complex Householder reflector acting on
// [a(r0,c); a(r0+1:m,c)] such that Hᴴ·x = [β; 0] with β real. On return
// a(r0,c) = β and the tail holds v[r0+1:].
func zlarfgCol(a []complex128, lda, r0, c, m int) (tau complex128) {
	alpha := a[r0*lda+c]
	var xnorm float64
	for i := r0 + 1; i < m; i++ {
		xnorm = math.Hypot(xnorm, cmplx.Abs(a[i*lda+c]))
	}
	if xnorm == 0 && imag(alpha) == 0 {
		return 0
	}
	beta := -math.Copysign(math.Hypot(cmplx.Abs(alpha), xnorm), real(alpha))
	tau = complex((beta-real(alpha))/beta, -imag(alpha)/beta)
	scale := 1 / (alpha - complex(beta, 0))
	for i := r0 + 1; i < m; i++ {
		a[i*lda+c] *= scale
	}
	a[r0*lda+c] = complex(beta, 0)
	return tau
}

// zgeqrt2 factors the panel A[j0:m, j0:j0+kb] in place, storing the panel's
// triangular T factor in columns j0:j0+kb of t.
func zgeqrt2(m int, a []complex128, lda, j0, kb int, t []complex128, ldt int, tmp []complex128) {
	for jj := 0; jj < kb; jj++ {
		j := j0 + jj
		tau := zlarfgCol(a, lda, j, j, m)
		ctau := cmplx.Conj(tau)
		// Apply H_jᴴ to the remaining panel columns.
		for c := j + 1; c < j0+kb; c++ {
			w := a[j*lda+c]
			for i := j + 1; i < m; i++ {
				w += cmplx.Conj(a[i*lda+j]) * a[i*lda+c]
			}
			w *= ctau
			a[j*lda+c] -= w
			for i := j + 1; i < m; i++ {
				a[i*lda+c] -= a[i*lda+j] * w
			}
		}
		// T(0:jj, jj) = −τ · T(0:jj, 0:jj) · (V(:, 0:jj)ᴴ · v_j).
		for c := 0; c < jj; c++ {
			col := j0 + c
			s := cmplx.Conj(a[j*lda+col]) // row j of v_c (conjugated) times 1
			for i := j + 1; i < m; i++ {
				s += cmplx.Conj(a[i*lda+col]) * a[i*lda+j]
			}
			tmp[c] = s
		}
		for r := 0; r < jj; r++ {
			var s complex128
			for c := r; c < jj; c++ {
				s += t[r*ldt+j0+c] * tmp[c]
			}
			t[r*ldt+j] = -tau * s
		}
		t[jj*ldt+j] = tau
	}
}

// applyPanel applies the block reflector of a ZGEQRT panel to C:
// (I − V·Tᴴ·Vᴴ) (trans=true, i.e. Qᴴ) or I − V·T·Vᴴ (Q).
func applyPanel(trans bool, m int, v []complex128, ldv, r0, vc0, kb int,
	t []complex128, ldt, tc0 int, c []complex128, ldc, cc0, nc int, w []complex128) {
	// W = Vᴴ · C
	for x := 0; x < kb; x++ {
		col := vc0 + x
		diag := r0 + x
		wx := w[x*nc : x*nc+nc]
		copy(wx, c[diag*ldc+cc0:diag*ldc+cc0+nc])
		for i := diag + 1; i < m; i++ {
			vix := cmplx.Conj(v[i*ldv+col])
			if vix == 0 {
				continue
			}
			ci := c[i*ldc+cc0 : i*ldc+cc0+nc]
			for y, cv := range ci {
				wx[y] += vix * cv
			}
		}
	}
	triMulW(trans, kb, t, ldt, tc0, w, nc)
	// C −= V · W
	for x := 0; x < kb; x++ {
		col := vc0 + x
		diag := r0 + x
		wx := w[x*nc : x*nc+nc]
		cd := c[diag*ldc+cc0 : diag*ldc+cc0+nc]
		for y, wv := range wx {
			cd[y] -= wv
		}
		for i := diag + 1; i < m; i++ {
			vix := v[i*ldv+col]
			if vix == 0 {
				continue
			}
			ci := c[i*ldc+cc0 : i*ldc+cc0+nc]
			for y, wv := range wx {
				ci[y] -= vix * wv
			}
		}
	}
}

// triMulW overwrites W with Tᴴ·W (trans) or T·W.
func triMulW(trans bool, kb int, t []complex128, ldt, tc0 int, w []complex128, nc int) {
	if trans {
		for x := kb - 1; x >= 0; x-- {
			wx := w[x*nc : x*nc+nc]
			txx := cmplx.Conj(t[x*ldt+tc0+x])
			for y := range wx {
				wx[y] *= txx
			}
			for r := 0; r < x; r++ {
				trx := cmplx.Conj(t[r*ldt+tc0+x])
				if trx == 0 {
					continue
				}
				wr := w[r*nc : r*nc+nc]
				for y := range wx {
					wx[y] += trx * wr[y]
				}
			}
		}
	} else {
		for x := 0; x < kb; x++ {
			wx := w[x*nc : x*nc+nc]
			txx := t[x*ldt+tc0+x]
			for y := range wx {
				wx[y] *= txx
			}
			for r := x + 1; r < kb; r++ {
				txr := t[x*ldt+tc0+r]
				if txr == 0 {
					continue
				}
				wr := w[r*nc : r*nc+nc]
				for y := range wx {
					wx[y] += txr * wr[y]
				}
			}
		}
	}
}

// GEQRT computes the blocked QR factorization of an m×n complex tile;
// see kernel.GEQRT for conventions.
func GEQRT(m, n, ib int, a []complex128, lda int, t []complex128, ldt int, work []complex128) {
	k := min(m, n)
	if k == 0 {
		return
	}
	ib = clampIB(ib, k)
	work = ensureWork(work, ib*(n+1))
	tmp, w := work[:ib], work[ib:]
	for k0 := 0; k0 < k; k0 += ib {
		kb := min(ib, k-k0)
		zgeqrt2(m, a, lda, k0, kb, t, ldt, tmp)
		if k0+kb < n {
			applyPanel(true, m, a, lda, k0, k0, kb, t, ldt, k0, a, lda, k0+kb, n-k0-kb, w)
		}
	}
}

// UNMQR applies Qᴴ (trans) or Q of a complex GEQRT factorization to C.
func UNMQR(trans bool, m, k, ib int, v []complex128, ldv int, t []complex128, ldt int,
	c []complex128, ldc, nc int, work []complex128) {
	if k == 0 || nc == 0 {
		return
	}
	ib = clampIB(ib, k)
	work = ensureWork(work, ib*nc)
	if trans {
		for k0 := 0; k0 < k; k0 += ib {
			kb := min(ib, k-k0)
			applyPanel(true, m, v, ldv, k0, k0, kb, t, ldt, k0, c, ldc, 0, nc, work)
		}
	} else {
		start := ((k - 1) / ib) * ib
		for k0 := start; k0 >= 0; k0 -= ib {
			kb := min(ib, k-k0)
			applyPanel(false, m, v, ldv, k0, k0, kb, t, ldt, k0, c, ldc, 0, nc, work)
		}
	}
}

func clampIB(ib, k int) int {
	if ib <= 0 || ib > k {
		return k
	}
	return ib
}

func ensureWork(work []complex128, n int) []complex128 {
	if len(work) < n {
		return make([]complex128, n)
	}
	return work
}
