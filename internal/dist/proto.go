// Control-plane messages of the distributed runtime. Control frames carry
// JSON — they are rare (handshake, per-run stats, failures), so
// readability wins over packing; the per-round bulk traffic stays binary.
package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"tiledqr/internal/core"
)

// protoVersion gates the handshake: a coordinator and worker from
// different builds fail loudly at connect instead of corrupting frames.
const protoVersion = 1

// helloMsg is the worker's opening frame: its protocol version and the
// address its peer listener accepts reduction-tree connections on.
type helloMsg struct {
	Proto    int    `json:"proto"`
	PeerAddr string `json:"peer_addr"`
}

// wireConfig is the coordinator's reply: everything a worker needs to run
// its shard — rank, the peer table for the reduction tree, the shard and
// algorithm shape, and the initial round allowance of the pipelining
// credit window.
type wireConfig struct {
	Proto        int      `json:"proto"`
	Rank         int      `json:"rank"`
	Workers      int      `json:"workers"`
	Peers        []string `json:"peers"`
	Prec         string   `json:"prec"`
	ShardRows    int      `json:"shard_rows"`
	N            int      `json:"n"`
	NRHS         int      `json:"nrhs"`
	NB           int      `json:"nb"`
	IB           int      `json:"ib"`
	Alg          int      `json:"alg"`
	Kern         int      `json:"kern"`
	Rounds       int      `json:"rounds"`
	Allow        int      `json:"allow"`
	GenSeed      int64    `json:"gen_seed,omitempty"`
	LocalWorkers int      `json:"local_workers,omitempty"`
}

func (c *wireConfig) algorithm() core.Algorithm { return core.Algorithm(c.Alg) }
func (c *wireConfig) kernels() core.Kernels     { return core.Kernels(c.Kern) }

// errMsg carries a worker-side failure to the coordinator.
type errMsg struct {
	Rank  int    `json:"rank"`
	Error string `json:"error"`
}

// WorkerStats is one worker's per-run accounting, reported to the
// coordinator in the final Stats frame and aggregated into RunStats. The
// overlap figures are the point of the exercise: ComputeNS + CommNS
// exceeding WallNS means communication was hidden behind the next round's
// local factorization.
type WorkerStats struct {
	Rank       int   `json:"rank"`
	Rounds     int   `json:"rounds"`
	ShardRows  int   `json:"shard_rows"`
	ComputeNS  int64 `json:"compute_ns"`   // local factor + Qᵀb fold wall time
	CombineNS  int64 `json:"combine_ns"`   // TTQRT/TTMQR tree combines
	SendNS     int64 `json:"send_ns"`      // writer goroutines blocked in Write
	RecvWaitNS int64 `json:"recv_wait_ns"` // combine loop waiting on partner frames
	WallNS     int64 `json:"wall_ns"`      // whole round loop
	BytesSent  int64 `json:"bytes_sent"`
	BytesRecv  int64 `json:"bytes_recv"`
	TasksRun   int64 `json:"tasks_run"` // scheduler tasks across all rounds
	BusyNS     int64 `json:"busy_ns"`   // summed kernel time across all rounds
}

// CommNS is the worker's total time attributable to communication: send
// plus receive-wait.
func (s *WorkerStats) CommNS() int64 { return s.SendNS + s.RecvWaitNS }

// OverlapFrac is the fraction of the worker's communication time hidden
// behind computation, in [0, 1]: 1 means the wire was entirely off the
// critical path, 0 means every wire nanosecond extended the wall clock.
func (s *WorkerStats) OverlapFrac() float64 {
	comm := s.CommNS()
	if comm <= 0 {
		return 0
	}
	hidden := s.ComputeNS + s.CombineNS + comm - s.WallNS
	if hidden < 0 {
		hidden = 0
	}
	f := float64(hidden) / float64(comm)
	if f > 1 {
		f = 1
	}
	return f
}

// RunStats is the coordinator's aggregate over all workers of one run.
type RunStats struct {
	Workers     int           `json:"workers"`
	Rounds      int           `json:"rounds"`
	BytesSent   int64         `json:"bytes_sent"`
	BytesRecv   int64         `json:"bytes_recv"`
	ComputeNS   int64         `json:"compute_ns"`
	CombineNS   int64         `json:"combine_ns"`
	SendNS      int64         `json:"send_ns"`
	RecvWaitNS  int64         `json:"recv_wait_ns"`
	WallNS      int64         `json:"wall_ns"` // max over workers
	TasksRun    int64         `json:"tasks_run"`
	BusyNS      int64         `json:"busy_ns"`
	OverlapFrac float64       `json:"overlap_frac"` // mean over workers that communicated
	PerWorker   []WorkerStats `json:"per_worker"`
}

// aggregate folds the per-worker stats into the run totals.
func aggregate(per []WorkerStats, rounds int) RunStats {
	agg := RunStats{Workers: len(per), Rounds: rounds, PerWorker: per}
	var overlapSum float64
	var overlapN int
	for i := range per {
		s := &per[i]
		agg.BytesSent += s.BytesSent
		agg.BytesRecv += s.BytesRecv
		agg.ComputeNS += s.ComputeNS
		agg.CombineNS += s.CombineNS
		agg.SendNS += s.SendNS
		agg.RecvWaitNS += s.RecvWaitNS
		agg.TasksRun += s.TasksRun
		agg.BusyNS += s.BusyNS
		if s.WallNS > agg.WallNS {
			agg.WallNS = s.WallNS
		}
		if s.CommNS() > 0 {
			overlapSum += s.OverlapFrac()
			overlapN++
		}
	}
	if overlapN > 0 {
		agg.OverlapFrac = overlapSum / float64(overlapN)
	}
	return agg
}

// writeJSON sends a control frame whose payload is v marshaled as JSON.
func writeJSON(w io.Writer, kind byte, seq uint32, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = WriteFrame(w, &Frame{Kind: kind, Seq: seq, Payload: raw})
	return err
}

// readJSON reads one frame, requires the expected kind, and unmarshals its
// JSON payload into v. An Err frame is surfaced as the carried error.
func readJSON(r io.Reader, buf []byte, want byte, v any) ([]byte, error) {
	f, buf, err := ReadFrame(r, buf)
	if err != nil {
		return buf, err
	}
	if f.Kind == KindErr {
		var em errMsg
		if json.Unmarshal(f.Payload, &em) == nil {
			return buf, fmt.Errorf("dist: worker %d failed: %s", em.Rank, em.Error)
		}
	}
	if f.Kind != want {
		return buf, fmt.Errorf("dist: expected frame kind %d, got %d", want, f.Kind)
	}
	return buf, json.Unmarshal(f.Payload, v)
}

// setDeadline applies d from now when the conn supports deadlines; the
// handshake paths use it so a stuck peer fails the run instead of hanging
// it.
func setDeadline(c net.Conn, d time.Duration) {
	if d > 0 {
		_ = c.SetDeadline(time.Now().Add(d))
	} else {
		_ = c.SetDeadline(time.Time{})
	}
}
