// The coordinator of the distributed CAQR runtime: it shards the global
// matrix row-wise across worker processes, hands each worker its rank and
// the peer table of the reduction tree, and then runs the flow-control
// plane — a credit window of round allowances that keeps every shard one
// to two rounds deep in pipelined work (local factorization overlapping
// in-flight R triangles) while still being able to drain: on context
// cancellation the coordinator freezes the window and broadcasts the
// agreed final round, so every worker stops at the same round and no tree
// pivot waits on a partner that already quit.
package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"tiledqr/internal/core"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
	"tiledqr/internal/work"
)

// Config shapes a distributed run. Zero values take the documented
// defaults.
type Config struct {
	Workers      int            // worker processes to expect (default 2)
	NB           int            // tile size inside each shard (default 128)
	IB           int            // inner block size (default 32)
	Algorithm    core.Algorithm // local elimination order (default Greedy)
	Kernels      core.Kernels   // local kernel family (default TT)
	Rounds       int            // factor+reduce rounds per run (default 1)
	Window       int            // pipelining credit window in rounds (default 2)
	LocalWorkers int            // scheduler width inside each worker (0 = default)
	Addr         string         // listen address (default "127.0.0.1:0")

	// GenSeed ≠ 0 selects benchmark mode: workers generate their own
	// GenRows×GenCols shards (plus GenRHS right-hand columns) from
	// deterministic per-rank seeds, so the wire carries only R triangles
	// and Qᵀb blocks — the communication-avoiding steady state, with no
	// one-time shard shipment to distort the measurement.
	GenSeed int64
	GenRows int
	GenCols int
	GenRHS  int
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.NB <= 0 {
		c.NB = 128
	}
	if c.IB <= 0 {
		c.IB = 32
	}
	if c.Algorithm == 0 && c.Kernels == 0 {
		c.Algorithm = core.Greedy
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.Window <= 0 {
		c.Window = 2
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
}

// Coordinator is a listening distributed-run endpoint. Create one, point
// workers at Addr(), then call Run.
type Coordinator struct {
	cfg Config
	ln  net.Listener
}

// NewCoordinator validates cfg, applies defaults, and starts listening.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg.defaults()
	if cfg.GenSeed != 0 && (cfg.GenRows < cfg.GenCols || cfg.GenCols <= 0) {
		return nil, fmt.Errorf("dist: benchmark mode needs GenRows ≥ GenCols ≥ 1 (have %d×%d)", cfg.GenRows, cfg.GenCols)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("dist: coordinator listen: %w", err)
	}
	return &Coordinator{cfg: cfg, ln: ln}, nil
}

// Addr returns the address workers should connect to.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close releases the listener. Run closes it itself after the workers
// have connected.
func (c *Coordinator) Close() { _ = c.ln.Close() }

// Result is the outcome of a distributed run at one precision.
type Result[T vec.Scalar] struct {
	R      *tile.Dense[T] // n×n upper-triangular global R factor
	QTB    *tile.Dense[T] // top n rows of Qᵀb (nil when nrhs == 0)
	X      *tile.Dense[T] // n×nrhs least-squares solution (nil when nrhs == 0)
	Rounds int            // rounds actually completed (< cfg.Rounds after a drain)
	Stats  RunStats
}

// workerConn is the coordinator's handle on one connected worker.
type workerConn struct {
	conn     net.Conn
	peerAddr string
}

// coordEvent is one frame (or failure) delivered by a per-worker reader.
type coordEvent struct {
	rank int
	f    Frame
	buf  []byte
	err  error
}

// Run executes one distributed factorization: wait for cfg.Workers workers
// to connect, shard a (m×n, row-wise) and b (m×nrhs, optional) across
// them, run the configured rounds, and return the global R, the Qᵀb top
// block, and the least-squares solution X = R⁻¹(Qᵀb)[:n]. In benchmark
// mode (GenSeed ≠ 0) a and b must be nil and the shapes come from the
// config. Cancelling ctx drains: in-flight rounds complete consistently
// across workers and Run returns with Rounds < cfg.Rounds and no error.
func Run[T vec.Scalar](ctx context.Context, c *Coordinator, a, b *tile.Dense[T]) (*Result[T], error) {
	cfg := c.cfg
	W := cfg.Workers

	// Resolve the global shape and the row split.
	var n, nrhs int
	shardRows := make([]int, W)
	if cfg.GenSeed != 0 {
		if a != nil || b != nil {
			return nil, fmt.Errorf("dist: benchmark mode generates shards worker-side; a and b must be nil")
		}
		n, nrhs = cfg.GenCols, cfg.GenRHS
		for i := range shardRows {
			shardRows[i] = cfg.GenRows
		}
	} else {
		if a == nil {
			return nil, fmt.Errorf("dist: Run needs a matrix (or benchmark mode via GenSeed)")
		}
		m := a.Rows
		n = a.Cols
		if b != nil {
			if b.Rows != m {
				return nil, fmt.Errorf("dist: b has %d rows, want %d", b.Rows, m)
			}
			nrhs = b.Cols
		}
		base, rem := m/W, m%W
		for i := range shardRows {
			shardRows[i] = base
			if i < rem {
				shardRows[i]++
			}
		}
		// The reduction tree combines n×n triangles, so every shard must
		// cover at least n rows; thinner shards mean the matrix is too
		// small to scale out — stay single-node (see README).
		if base < n {
			return nil, fmt.Errorf("dist: %d rows over %d workers gives shards of %d < n=%d rows; use fewer workers or single-node Factor", m, W, base, n)
		}
	}

	workers, err := c.acceptWorkers(ctx, W)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, w := range workers {
			if w.conn != nil {
				_ = w.conn.Close()
			}
		}
	}()

	// Configure every worker: rank, peer table, shape, initial allowance.
	peers := make([]string, W)
	for r, w := range workers {
		peers[r] = w.peerAddr
	}
	granted := min(cfg.Rounds, cfg.Window)
	for r, w := range workers {
		wc := wireConfig{
			Proto: protoVersion, Rank: r, Workers: W, Peers: peers,
			Prec: string(precOf[T]()), ShardRows: shardRows[r], N: n, NRHS: nrhs,
			NB: cfg.NB, IB: cfg.IB, Alg: int(cfg.Algorithm), Kern: int(cfg.Kernels),
			Rounds: cfg.Rounds, Allow: granted,
			GenSeed: cfg.GenSeed, LocalWorkers: cfg.LocalWorkers,
		}
		if err := writeJSON(w.conn, KindConfig, 0, &wc); err != nil {
			return nil, fmt.Errorf("dist: configuring rank %d: %w", r, err)
		}
	}
	// Data mode: ship each worker its shard (and RHS rows) exactly once.
	if cfg.GenSeed == 0 {
		row := 0
		for r, w := range workers {
			rows := shardRows[r]
			buf := packDense(KindShard, 0, a.Data[row*a.Stride:], a.Stride, rows, n)
			_, err := w.conn.Write(buf)
			putBuf(buf)
			if err != nil {
				return nil, fmt.Errorf("dist: shipping shard to rank %d: %w", r, err)
			}
			if nrhs > 0 {
				buf = packDense(KindRHS, 0, b.Data[row*b.Stride:], b.Stride, rows, nrhs)
				_, err = w.conn.Write(buf)
				putBuf(buf)
				if err != nil {
					return nil, fmt.Errorf("dist: shipping rhs to rank %d: %w", r, err)
				}
			}
			row += rows
		}
	}

	// Per-worker readers feed one event stream; the run loop below is the
	// only writer to the worker connections from here on.
	events := make(chan coordEvent, 4*W)
	runDone := make(chan struct{})
	defer close(runDone)
	for r, w := range workers {
		go func(rank int, conn net.Conn) {
			for {
				f, buf, err := ReadFrame(conn, getBuf(0))
				ev := coordEvent{rank: rank, f: f, buf: buf, err: err}
				if err != nil {
					putBuf(buf)
					ev.buf = nil
				}
				select {
				case events <- ev:
				case <-runDone:
					putBuf(ev.buf)
					return
				}
				if err != nil {
					return
				}
			}
		}(r, w.conn)
	}

	res := &Result[T]{R: tile.NewDense[T](n, n)}
	if nrhs > 0 {
		res.QTB = tile.NewDense[T](n, nrhs)
	}
	final := cfg.Rounds // agreed last round; lowered once on drain
	stopped := false
	gotResults, expectQTB := 0, false
	statsBy := make([]WorkerStats, 0, W)
	cancelCh := ctx.Done()
	for gotResults < final || len(statsBy) < W {
		// A drain can lower final below the results already collected;
		// re-check before blocking so completion is prompt.
		if gotResults >= final && len(statsBy) >= W {
			break
		}
		select {
		case <-cancelCh:
			cancelCh = nil // fire once
			stopped = true
			final = granted
			for r, w := range workers {
				if _, err := WriteFrame(w.conn, &Frame{Kind: KindStop, Seq: uint32(final)}); err != nil {
					return nil, fmt.Errorf("dist: draining rank %d: %w", r, err)
				}
			}
		case ev := <-events:
			if ev.err != nil {
				return nil, fmt.Errorf("dist: worker %d connection: %w", ev.rank, ev.err)
			}
			switch ev.f.Kind {
			case KindErr:
				err := fmt.Errorf("dist: worker %d failed", ev.rank)
				var em errMsg
				if jsonErr := json.Unmarshal(ev.f.Payload, &em); jsonErr == nil {
					err = fmt.Errorf("dist: worker %d failed: %s", em.Rank, em.Error)
				}
				putBuf(ev.buf)
				return nil, err
			case KindRTri:
				err := UnpackTriangle(res.R.Data, res.R.Stride, n, ev.f.Payload)
				putBuf(ev.buf)
				if err != nil {
					return nil, err
				}
				expectQTB = nrhs > 0
				if !expectQTB {
					gotResults++
					granted = c.grant(workers, granted, gotResults, final, stopped)
				}
			case KindQTB:
				if !expectQTB {
					putBuf(ev.buf)
					return nil, fmt.Errorf("dist: unexpected Qᵀb frame from worker %d", ev.rank)
				}
				err := unpackDense(res.QTB.Data, res.QTB.Stride, &ev.f)
				putBuf(ev.buf)
				if err != nil {
					return nil, err
				}
				expectQTB = false
				gotResults++
				granted = c.grant(workers, granted, gotResults, final, stopped)
			case KindStats:
				var ws WorkerStats
				err := json.Unmarshal(ev.f.Payload, &ws)
				putBuf(ev.buf)
				if err != nil {
					return nil, fmt.Errorf("dist: worker %d stats: %w", ev.rank, err)
				}
				statsBy = append(statsBy, ws)
			default:
				putBuf(ev.buf)
				return nil, fmt.Errorf("dist: unexpected frame kind %d from worker %d", ev.f.Kind, ev.rank)
			}
		}
	}
	for _, w := range workers {
		_, _ = WriteFrame(w.conn, &Frame{Kind: KindDone})
	}
	res.Rounds = final
	res.Stats = aggregate(statsBy, final)
	if nrhs > 0 && final > 0 {
		res.X = tile.NewDense[T](n, nrhs)
		xcol := make([]T, n)
		if err := work.SolveUpper(n, nrhs, res.R.Data, res.R.Stride,
			res.QTB.Data, res.QTB.Stride, res.X.Data, res.X.Stride, xcol); err != nil {
			return nil, fmt.Errorf("dist: back-substitution: %w", err)
		}
	}
	return res, nil
}

// grant extends the credit window after a completed round: every worker
// learns it may run up to round `allow` — unless a drain froze the window.
func (c *Coordinator) grant(workers []workerConn, granted, completed, final int, stopped bool) int {
	if stopped {
		return granted
	}
	allow := min(final, completed+c.cfg.Window)
	if allow <= granted {
		return granted
	}
	for _, w := range workers {
		_, _ = WriteFrame(w.conn, &Frame{Kind: KindRound, Seq: uint32(allow)})
	}
	return allow
}

// acceptWorkers waits for W workers to connect and say hello, assigning
// ranks in connection order.
func (c *Coordinator) acceptWorkers(ctx context.Context, W int) ([]workerConn, error) {
	defer c.ln.Close()
	type accepted struct {
		conn net.Conn
		err  error
	}
	conns := make(chan accepted)
	go func() {
		for {
			conn, err := c.ln.Accept()
			conns <- accepted{conn, err}
			if err != nil {
				return
			}
		}
	}()
	workers := make([]workerConn, 0, W)
	fail := func(err error) ([]workerConn, error) {
		for _, w := range workers {
			_ = w.conn.Close()
		}
		return nil, err
	}
	for len(workers) < W {
		select {
		case <-ctx.Done():
			return fail(ctx.Err())
		case acc := <-conns:
			if acc.err != nil {
				return fail(fmt.Errorf("dist: accept: %w", acc.err))
			}
			setDeadline(acc.conn, 30*time.Second)
			var hello helloMsg
			if _, err := readJSON(acc.conn, nil, KindHello, &hello); err != nil {
				_ = acc.conn.Close()
				return fail(fmt.Errorf("dist: worker handshake: %w", err))
			}
			if hello.Proto != protoVersion {
				_ = acc.conn.Close()
				return fail(fmt.Errorf("dist: protocol version mismatch: worker %d, coordinator %d", hello.Proto, protoVersion))
			}
			setDeadline(acc.conn, 0)
			workers = append(workers, workerConn{conn: acc.conn, peerAddr: hello.PeerAddr})
		}
	}
	return workers, nil
}

// SpawnLocal starts w in-process workers as goroutines against addr — the
// single-binary mode of cmd/qrdist, the benchmark harness, and the tests.
// The returned channel yields one value per worker as it exits.
func SpawnLocal(ctx context.Context, addr string, w int) <-chan error {
	errs := make(chan error, w)
	for i := 0; i < w; i++ {
		go func() { errs <- RunWorker(ctx, addr) }()
	}
	return errs
}
