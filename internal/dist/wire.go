// The wire layer of the distributed CAQR runtime: length-prefixed binary
// frames over plain TCP carrying packed tile payloads. The format is as
// small as correctness allows — communication avoidance starts with what
// goes on the wire, so the reduction tree ships only packed q×q R
// triangles (n(n+1)/2 scalars, not n² and never the trailing matrix), and
// every send and receive goes through pooled buffers so the steady state
// of a multi-round run allocates nothing per frame.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "QRD1"
//	4       1     kind (frame kinds below)
//	5       1     precision letter ('d','s','z','c'; 0 for control frames)
//	6       2     reserved (zero)
//	8       4     seq   (round number, or kind-specific)
//	12      4     rows
//	16      4     cols
//	20      4     payload length in bytes
//	24      ...   payload
//
// Scalars are packed little-endian in row-major order; complex values as
// interleaved (re, im) pairs, so a complex64 costs 8 bytes and a
// complex128 costs 16. Control frames (hello, config, stats, errors)
// carry JSON payloads; bulk frames (shards, triangles, Qᵀb blocks) carry
// packed scalars.
package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"tiledqr/internal/vec"
)

// Frame kinds. The handshake is Hello → Config → (Shard, RHS)?; each round
// moves RTri/QTB frames up the reduction tree and a Result pair from the
// tree root to the coordinator; Round/Stop/Done are the coordinator's
// flow-control plane; Err carries a worker-side failure.
const (
	KindHello     byte = iota + 1 // worker → coordinator: JSON helloMsg
	KindConfig                    // coordinator → worker: JSON wireConfig
	KindShard                     // coordinator → worker: packed shard rows
	KindRHS                       // coordinator → worker: packed RHS rows
	KindRTri                      // packed upper triangle of a shard R
	KindQTB                       // packed top-n block of a shard's Qᵀb
	KindPeerHello                 // worker → worker: seq = sender rank
	KindStats                     // worker → coordinator: JSON WorkerStats
	KindRound                     // coordinator → worker: seq = new round allowance
	KindStop                      // coordinator → worker: seq = final round count (drain)
	KindDone                      // coordinator → worker: run complete, disconnect
	KindErr                       // worker → coordinator: JSON errMsg

	kindMax = KindErr
)

// HeaderLen is the fixed frame header size in bytes.
const HeaderLen = 24

// MaxPayload bounds a frame's payload; ReadFrame rejects anything larger
// before allocating, so a corrupt or hostile length field cannot OOM the
// receiver.
const MaxPayload = 1 << 30

var magic = [4]byte{'Q', 'R', 'D', '1'}

// Frame is one decoded wire frame. Payload aliases the read buffer handed
// to ReadFrame; it is valid until that buffer is reused.
type Frame struct {
	Kind    byte
	Prec    byte
	Seq     uint32
	Rows    uint32
	Cols    uint32
	Payload []byte
}

// putHeader encodes a frame header into dst[:HeaderLen].
func putHeader(dst []byte, f *Frame, payloadLen int) {
	copy(dst[:4], magic[:])
	dst[4] = f.Kind
	dst[5] = f.Prec
	dst[6], dst[7] = 0, 0
	binary.LittleEndian.PutUint32(dst[8:], f.Seq)
	binary.LittleEndian.PutUint32(dst[12:], f.Rows)
	binary.LittleEndian.PutUint32(dst[16:], f.Cols)
	binary.LittleEndian.PutUint32(dst[20:], uint32(payloadLen))
}

// WriteFrame writes one frame (header + payload) to w, returning the bytes
// written. Senders on hot paths pre-frame into a pooled buffer and write
// once instead (see packFrame); WriteFrame is the handshake/control path.
func WriteFrame(w io.Writer, f *Frame) (int, error) {
	var hdr [HeaderLen]byte
	putHeader(hdr[:], f, len(f.Payload))
	n, err := w.Write(hdr[:])
	if err != nil {
		return n, err
	}
	m, err := w.Write(f.Payload)
	return n + m, err
}

// packFrame appends a fully framed message (header + payload built by
// fill) to a pooled buffer and returns it; the caller hands it to a writer
// and recycles it with putBuf. One buffer, one Write call, zero copies
// beyond the packing itself.
func packFrame(f *Frame, payloadLen int, fill func(dst []byte)) []byte {
	buf := getBuf(HeaderLen + payloadLen)
	putHeader(buf, f, payloadLen)
	fill(buf[HeaderLen:])
	return buf
}

// ReadFrame reads and validates one frame from r. buf is an optional
// reusable payload buffer: the returned Frame's Payload is a prefix of the
// returned slice, which the caller passes back in on the next read. A
// truncated stream surfaces as io.ErrUnexpectedEOF; a malformed header
// (bad magic, unknown kind, oversized payload) as a descriptive error
// before any payload is read.
func ReadFrame(r io.Reader, buf []byte) (Frame, []byte, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, buf, err
	}
	if [4]byte(hdr[:4]) != magic {
		return Frame{}, buf, fmt.Errorf("dist: bad frame magic %q", hdr[:4])
	}
	f := Frame{
		Kind: hdr[4],
		Prec: hdr[5],
		Seq:  binary.LittleEndian.Uint32(hdr[8:]),
		Rows: binary.LittleEndian.Uint32(hdr[12:]),
		Cols: binary.LittleEndian.Uint32(hdr[16:]),
	}
	if f.Kind == 0 || f.Kind > kindMax {
		return Frame{}, buf, fmt.Errorf("dist: unknown frame kind %d", f.Kind)
	}
	plen := binary.LittleEndian.Uint32(hdr[20:])
	if plen > MaxPayload {
		return Frame{}, buf, fmt.Errorf("dist: frame payload %d exceeds limit %d", plen, MaxPayload)
	}
	if cap(buf) < int(plen) {
		buf = make([]byte, plen)
	}
	buf = buf[:plen]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	f.Payload = buf
	return f, buf, nil
}

// bufPool recycles framed send buffers and received payload copies; the
// steady state of a multi-round run allocates no wire memory.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getBuf(n int) []byte {
	b := *bufPool.Get().(*[]byte)
	if cap(b) < n {
		b = make([]byte, n)
	}
	return b[:n]
}

func putBuf(b []byte) {
	if b == nil {
		return
	}
	bufPool.Put(&b)
}

// precOf returns the BLAS-style precision letter of T, the wire's type tag.
func precOf[T vec.Scalar]() byte {
	switch any((*T)(nil)).(type) {
	case *float32:
		return 's'
	case *float64:
		return 'd'
	case *complex64:
		return 'c'
	default: // *complex128
		return 'z'
	}
}

// scalarBytes returns the wire size of one scalar of precision prec, or 0
// for an unknown tag.
func scalarBytes(prec byte) int {
	switch prec {
	case 's':
		return 4
	case 'd':
		return 8
	case 'c':
		return 8
	case 'z':
		return 16
	default:
		return 0
	}
}

// PackScalars encodes src into dst little-endian (complex interleaved
// re/im) and returns the bytes consumed. dst must hold
// len(src)·scalarBytes(precOf[T]()) bytes.
func PackScalars[T vec.Scalar](dst []byte, src []T) int {
	switch s := any(src).(type) {
	case []float32:
		for i, v := range s {
			binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
		}
		return 4 * len(s)
	case []float64:
		for i, v := range s {
			binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
		}
		return 8 * len(s)
	case []complex64:
		for i, v := range s {
			binary.LittleEndian.PutUint32(dst[8*i:], math.Float32bits(real(v)))
			binary.LittleEndian.PutUint32(dst[8*i+4:], math.Float32bits(imag(v)))
		}
		return 8 * len(s)
	default:
		z := any(src).([]complex128)
		for i, v := range z {
			binary.LittleEndian.PutUint64(dst[16*i:], math.Float64bits(real(v)))
			binary.LittleEndian.PutUint64(dst[16*i+8:], math.Float64bits(imag(v)))
		}
		return 16 * len(z)
	}
}

// UnpackScalars decodes len(dst) scalars from src, the inverse of
// PackScalars. It returns an error (not a short read) when src is too
// small, so a truncated frame is rejected instead of half-applied.
func UnpackScalars[T vec.Scalar](dst []T, src []byte) error {
	if need := len(dst) * scalarBytes(precOf[T]()); len(src) < need {
		return fmt.Errorf("dist: scalar payload %d bytes, need %d", len(src), need)
	}
	switch d := any(dst).(type) {
	case []float32:
		for i := range d {
			d[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
		}
	case []float64:
		for i := range d {
			d[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
		}
	case []complex64:
		for i := range d {
			d[i] = complex(
				math.Float32frombits(binary.LittleEndian.Uint32(src[8*i:])),
				math.Float32frombits(binary.LittleEndian.Uint32(src[8*i+4:])))
		}
	default:
		z := any(dst).([]complex128)
		for i := range z {
			z[i] = complex(
				math.Float64frombits(binary.LittleEndian.Uint64(src[16*i:])),
				math.Float64frombits(binary.LittleEndian.Uint64(src[16*i+8:])))
		}
	}
	return nil
}

// TriLen returns the element count of a packed n×n upper triangle.
func TriLen(n int) int { return n * (n + 1) / 2 }

// PackTriangle encodes the upper triangle of the n×n matrix r (row stride
// ldr) into dst, row-major packed — the communication-avoiding payload:
// n(n+1)/2 scalars instead of n². Returns the bytes written.
func PackTriangle[T vec.Scalar](dst []byte, r []T, ldr, n int) int {
	off := 0
	for i := 0; i < n; i++ {
		off += PackScalars(dst[off:], r[i*ldr+i:i*ldr+n])
	}
	return off
}

// UnpackTriangle decodes a packed upper triangle into the n×n matrix r
// (row stride ldr), leaving the strictly lower part untouched.
func UnpackTriangle[T vec.Scalar](r []T, ldr, n int, src []byte) error {
	sz := scalarBytes(precOf[T]())
	if need := TriLen(n) * sz; len(src) < need {
		return fmt.Errorf("dist: triangle payload %d bytes, need %d", len(src), need)
	}
	off := 0
	for i := 0; i < n; i++ {
		w := n - i
		if err := UnpackScalars(r[i*ldr+i:i*ldr+n], src[off:off+w*sz]); err != nil {
			return err
		}
		off += w * sz
	}
	return nil
}

// packDense frames a rows×cols block of scalars (row stride ld) as kind k
// with sequence seq into a pooled buffer.
func packDense[T vec.Scalar](k byte, seq uint32, a []T, ld, rows, cols int) []byte {
	sz := scalarBytes(precOf[T]())
	f := &Frame{Kind: k, Prec: precOf[T](), Seq: seq, Rows: uint32(rows), Cols: uint32(cols)}
	return packFrame(f, rows*cols*sz, func(dst []byte) {
		off := 0
		for i := 0; i < rows; i++ {
			off += PackScalars(dst[off:], a[i*ld:i*ld+cols])
		}
	})
}

// unpackDense decodes a packDense payload into a (row stride ld).
func unpackDense[T vec.Scalar](a []T, ld int, f *Frame) error {
	rows, cols := int(f.Rows), int(f.Cols)
	sz := scalarBytes(precOf[T]())
	if need := rows * cols * sz; len(f.Payload) < need {
		return fmt.Errorf("dist: dense payload %d bytes, need %d", len(f.Payload), need)
	}
	off := 0
	for i := 0; i < rows; i++ {
		if err := UnpackScalars(a[i*ld:i*ld+cols], f.Payload[off:off+cols*sz]); err != nil {
			return err
		}
		off += cols * sz
	}
	return nil
}
