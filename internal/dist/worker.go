// The worker side of the distributed CAQR runtime: one process (or
// goroutine) owning a row shard of the global matrix. Each round it runs a
// local tiled QR on the shared in-process runtime — reusing the
// FactorInto arena, DAG and plan across rounds, so steady-state rounds
// allocate nothing — folds Qᵀb for its rows, and feeds its n×n R triangle
// into the binary TTQRT reduction tree. A worker that has handed its R to
// its tree pivot is immediately free to start the next round's local
// factorization while the triangle is still in flight: that overlap is
// the point, and the per-worker stats measure how much of the wire time
// it hides.
package dist

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"tiledqr/internal/engine"
	"tiledqr/internal/sched"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
)

// RunWorker connects to a coordinator, runs the configured shard to
// completion (or coordinated drain), and returns. It is the body of
// cmd/qrworker and of the in-process workers the benchmark and tests
// spawn as goroutines.
func RunWorker(ctx context.Context, coordAddr string) error {
	conn, err := net.DialTimeout("tcp", coordAddr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("dist: worker dialing coordinator: %w", err)
	}
	defer conn.Close()
	peerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("dist: worker peer listener: %w", err)
	}
	setDeadline(conn, 30*time.Second)
	if err := writeJSON(conn, KindHello, 0, helloMsg{Proto: protoVersion, PeerAddr: peerLn.Addr().String()}); err != nil {
		peerLn.Close()
		return err
	}
	var cfg wireConfig
	if _, err := readJSON(conn, nil, KindConfig, &cfg); err != nil {
		peerLn.Close()
		return fmt.Errorf("dist: worker handshake: %w", err)
	}
	setDeadline(conn, 0)
	if cfg.Proto != protoVersion {
		peerLn.Close()
		return fmt.Errorf("dist: protocol version mismatch: coordinator %d, worker %d", cfg.Proto, protoVersion)
	}
	var run func(context.Context, net.Conn, *wireConfig, net.Listener) error
	switch cfg.Prec {
	case "s":
		run = runShard[float32]
	case "d":
		run = runShard[float64]
	case "c":
		run = runShard[complex64]
	case "z":
		run = runShard[complex128]
	default:
		peerLn.Close()
		return fmt.Errorf("dist: unknown precision %q", cfg.Prec)
	}
	if err := run(ctx, conn, &cfg, peerLn); err != nil {
		// Best effort: tell the coordinator why before disconnecting.
		_ = writeJSON(conn, KindErr, 0, errMsg{Rank: cfg.Rank, Error: err.Error()})
		return err
	}
	return nil
}

// ctlState is the worker's view of the coordinator's flow-control plane,
// updated by the watcher goroutine: how many rounds it may run (the
// pipelining credit window) and, once a drain begins, the agreed final
// round count every worker stops at — consistency there is what keeps
// tree pivots from waiting forever on partners that already stopped.
type ctlState struct {
	allow atomic.Int64
	final atomic.Int64 // -1 until a Stop arrives
	errv  atomic.Value
	wake  chan struct{}
	done  chan struct{}
}

func (c *ctlState) notify() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

func (c *ctlState) fail(err error) {
	c.errv.CompareAndSwap(nil, err)
	c.notify()
}

func (c *ctlState) err() error {
	if v := c.errv.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// watch reads the coordinator connection for control frames for the life
// of the run.
func watch(conn net.Conn, ctl *ctlState) {
	var buf []byte
	for {
		f, b, err := ReadFrame(conn, buf)
		if err != nil {
			ctl.fail(fmt.Errorf("dist: coordinator connection lost: %w", err))
			return
		}
		buf = b
		switch f.Kind {
		case KindRound:
			if n := int64(f.Seq); n > ctl.allow.Load() {
				ctl.allow.Store(n)
			}
			ctl.notify()
		case KindStop:
			ctl.final.Store(int64(f.Seq))
			ctl.notify()
		case KindDone:
			close(ctl.done)
			return
		}
	}
}

// runShard executes one worker's rounds at a concrete precision.
func runShard[T vec.Scalar](ctx context.Context, conn net.Conn, cfg *wireConfig, peerLn net.Listener) error {
	rank, W, n, nrhs := cfg.Rank, cfg.Workers, cfg.N, cfg.NRHS
	rt := sched.NewRuntime(cfg.LocalWorkers)
	defer rt.Close()

	// Shard data: shipped once by the coordinator (data mode), or
	// regenerated locally from the configured seed (benchmark mode, which
	// keeps the bulk wire traffic down to R triangles and Qᵀb blocks).
	shard := tile.NewDense[T](cfg.ShardRows, n)
	var rhs *tile.Dense[T]
	if nrhs > 0 {
		rhs = tile.NewDense[T](cfg.ShardRows, nrhs)
	}
	if cfg.GenSeed != 0 {
		shard = tile.RandDense[T](cfg.ShardRows, n, cfg.GenSeed+int64(rank)*7919)
		if nrhs > 0 {
			rhs = tile.RandDense[T](cfg.ShardRows, nrhs, cfg.GenSeed+int64(rank)*7919+1)
		}
	} else {
		var buf []byte
		f, buf, err := ReadFrame(conn, buf)
		if err != nil || f.Kind != KindShard {
			return fmt.Errorf("dist: rank %d reading shard: kind=%d err=%w", rank, f.Kind, err)
		}
		if err := unpackDense(shard.Data, shard.Stride, &f); err != nil {
			return err
		}
		if nrhs > 0 {
			f, _, err = ReadFrame(conn, buf)
			if err != nil || f.Kind != KindRHS {
				return fmt.Errorf("dist: rank %d reading rhs: kind=%d err=%w", rank, f.Kind, err)
			}
			if err := unpackDense(rhs.Data, rhs.Stride, &f); err != nil {
				return err
			}
		}
	}

	ctl := &ctlState{wake: make(chan struct{}, 1), done: make(chan struct{})}
	ctl.allow.Store(int64(cfg.Allow))
	ctl.final.Store(-1)
	go watch(conn, ctl)

	red := newReducer[T](n, nrhs, cfg.IB)
	sh := newSendHub(rank, cfg.Peers)
	rh := newRecvHub(peerLn)
	defer func() { sh.close(); rh.close() }()

	var f engine.Factorization[T]
	var js sched.JobStats
	engCfg := engine.Config{
		Algorithm: cfg.algorithm(), Kernels: cfg.kernels(),
		TileSize: cfg.NB, InnerBlock: cfg.IB,
		Env: engine.Env{Runtime: rt}, Ctx: ctx, Stats: &js,
	}
	var qtbFull *tile.Dense[T]
	if nrhs > 0 {
		qtbFull = tile.NewDense[T](cfg.ShardRows, nrhs)
	}

	st := WorkerStats{Rank: rank, ShardRows: cfg.ShardRows}
	start := time.Now()
	for r := 0; r < cfg.Rounds; r++ {
		ok, err := waitRound(ctx, ctl, r)
		if err != nil {
			return err
		}
		if !ok {
			break // coordinated drain: every worker stops at the same round
		}

		t0 := time.Now()
		if err := engine.FactorInto(&f, shard, engCfg); err != nil {
			return fmt.Errorf("dist: rank %d round %d factor: %w", rank, r, err)
		}
		st.TasksRun += js.Tasks
		st.BusyNS += int64(js.Busy)
		if nrhs > 0 {
			copy(qtbFull.Data, rhs.Data[:cfg.ShardRows*rhs.Stride])
			if err := f.Apply(ctx, qtbFull, true); err != nil {
				return fmt.Errorf("dist: rank %d round %d Qᵀb: %w", rank, r, err)
			}
			for i := 0; i < n; i++ {
				copy(red.qtb[i*nrhs:i*nrhs+nrhs], qtbFull.Data[i*qtbFull.Stride:i*qtbFull.Stride+nrhs])
			}
		}
		if err := f.RInto(red.r, n); err != nil {
			return err
		}
		st.ComputeNS += int64(time.Since(t0))

		if err := treeRound(red, sh, rh, &st, rank, W, nrhs, uint32(r)); err != nil {
			return err
		}
		if rank == 0 {
			// The tree root ships the global R (and Qᵀb top block) to the
			// coordinator; this send is on the round's critical path only
			// for the coordinator, not for the next local factorization.
			t0 := time.Now()
			buf := red.packR(uint32(r))
			nw, err := conn.Write(buf)
			putBuf(buf)
			st.BytesSent += int64(nw)
			if err != nil {
				return fmt.Errorf("dist: rank 0 result send: %w", err)
			}
			if nrhs > 0 {
				buf = red.packQTB(uint32(r))
				nw, err = conn.Write(buf)
				putBuf(buf)
				st.BytesSent += int64(nw)
				if err != nil {
					return fmt.Errorf("dist: rank 0 result send: %w", err)
				}
			}
			st.SendNS += int64(time.Since(t0))
		}
		st.Rounds++
	}
	st.WallNS = int64(time.Since(start))
	st.SendNS += sh.sendNS.Load()
	st.BytesSent += sh.bytesSent.Load()
	st.BytesRecv += rh.bytesRecv.Load()
	if err := sh.err(); err != nil {
		return err
	}

	if err := writeJSON(conn, KindStats, uint32(st.Rounds), &st); err != nil {
		return err
	}
	// Wait for the coordinator's Done so the connection isn't torn down
	// under its final reads; bounded so a dead coordinator can't wedge us.
	select {
	case <-ctl.done:
	case <-time.After(30 * time.Second):
	case <-ctx.Done():
	}
	return nil
}

// waitRound blocks until round r is inside the coordinator's credit
// window (run it), the drain point says stop (don't), or the run fails.
func waitRound(ctx context.Context, ctl *ctlState, r int) (bool, error) {
	for {
		if err := ctl.err(); err != nil {
			return false, err
		}
		if fin := ctl.final.Load(); fin >= 0 && int64(r) >= fin {
			return false, nil
		}
		if ctl.allow.Load() > int64(r) {
			return true, nil
		}
		select {
		case <-ctl.wake:
		case <-ctx.Done():
			return false, ctx.Err()
		case <-ctl.done:
			return false, nil
		}
	}
}

// treeRound runs one round of the binomial reduction tree for this rank:
// at each level the rank is a pivot (receive a partner's triangle and
// Qᵀb block, TTQRT/TTMQR them into the resident state), a sender (pack
// the resident state onto the wire to its pivot and finish the round —
// the sender is then free to start its next local factorization while the
// frames are in flight), or idle at that level (no partner in range).
func treeRound[T vec.Scalar](red *reducer[T], sh *sendHub, rh *recvHub, st *WorkerStats, rank, W, nrhs int, seq uint32) error {
	for step := 1; step < W; step <<= 1 {
		switch {
		case rank%(2*step) == step:
			pivot := rank - step
			if err := sh.send(pivot, red.packR(seq)); err != nil {
				return err
			}
			if nrhs > 0 {
				if err := sh.send(pivot, red.packQTB(seq)); err != nil {
					return err
				}
			}
			return nil
		case rank%(2*step) == 0 && rank+step < W:
			partner := rank + step
			t0 := time.Now()
			f, buf, err := rh.recv(partner)
			st.RecvWaitNS += int64(time.Since(t0))
			if err != nil {
				return err
			}
			if f.Kind != KindRTri || f.Seq != seq {
				putBuf(buf)
				return fmt.Errorf("dist: rank %d expected R triangle of round %d from rank %d, got kind=%d seq=%d",
					rank, seq, partner, f.Kind, f.Seq)
			}
			err = UnpackTriangle(red.partner, red.n, red.n, f.Payload)
			putBuf(buf)
			if err != nil {
				return err
			}
			if nrhs > 0 {
				t0 = time.Now()
				f, buf, err = rh.recv(partner)
				st.RecvWaitNS += int64(time.Since(t0))
				if err != nil {
					return err
				}
				if f.Kind != KindQTB || f.Seq != seq {
					putBuf(buf)
					return fmt.Errorf("dist: rank %d expected Qᵀb of round %d from rank %d, got kind=%d seq=%d",
						rank, seq, partner, f.Kind, f.Seq)
				}
				err = unpackDense(red.partnerQTB, nrhs, &f)
				putBuf(buf)
				if err != nil {
					return err
				}
			}
			c0 := time.Now()
			red.combine()
			st.CombineNS += int64(time.Since(c0))
		}
	}
	return nil
}
