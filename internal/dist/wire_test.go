package dist

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"

	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
)

// scalarRoundTrip packs and unpacks a value set with awkward members
// (negatives, denormals, huge magnitudes, signed zero) and requires exact
// bit round-trips — the wire must never launder a scalar through a lossy
// representation.
func scalarRoundTrip[T vec.Scalar](t *testing.T) {
	t.Helper()
	parts := []float64{0, math.Copysign(0, -1), 1, -1, 0.5, -3.75,
		1e-38, -1e-38, 3e38, -3e38, 1.2345678901234e-7}
	src := make([]T, 0, len(parts)*len(parts)/4+len(parts))
	for i, re := range parts {
		src = append(src, vec.FromParts[T](re, parts[len(parts)-1-i]))
	}
	buf := make([]byte, len(src)*scalarBytes(precOf[T]()))
	if n := PackScalars(buf, src); n != len(buf) {
		t.Fatalf("PackScalars wrote %d bytes, want %d", n, len(buf))
	}
	dst := make([]T, len(src))
	if err := UnpackScalars(dst, buf); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if vec.RealPart(dst[i]) != vec.RealPart(src[i]) || vec.ImagPart(dst[i]) != vec.ImagPart(src[i]) {
			t.Errorf("scalar %d: %v -> %v", i, src[i], dst[i])
		}
	}
	// Short payloads are rejected, not half-applied.
	if err := UnpackScalars(dst, buf[:len(buf)-1]); err == nil {
		t.Error("UnpackScalars accepted a truncated payload")
	}
}

func TestScalarRoundTrip(t *testing.T) {
	t.Run("double", scalarRoundTrip[float64])
	t.Run("single", scalarRoundTrip[float32])
	t.Run("double-complex", scalarRoundTrip[complex128])
	t.Run("single-complex", scalarRoundTrip[complex64])
}

// TestComplexInterleaving pins the wire layout of complex scalars:
// little-endian (re, im) pairs, so the format is stable across builds,
// not just self-consistent.
func TestComplexInterleaving(t *testing.T) {
	buf := make([]byte, 16)
	PackScalars(buf, []complex128{complex(1.5, -2.5)})
	if re := math.Float64frombits(binary.LittleEndian.Uint64(buf[0:])); re != 1.5 {
		t.Errorf("real part encoded as %g, want 1.5", re)
	}
	if im := math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])); im != -2.5 {
		t.Errorf("imag part encoded as %g, want -2.5", im)
	}
}

// triangleRoundTrip packs the upper triangle of a random matrix and
// unpacks it into a poisoned destination: the triangle must match
// exactly and the strictly lower part must be untouched.
func triangleRoundTrip[T vec.Scalar](t *testing.T) {
	t.Helper()
	const n = 17
	src := tile.RandDense[T](n, n, 99)
	buf := make([]byte, TriLen(n)*scalarBytes(precOf[T]()))
	if w := PackTriangle(buf, src.Data, src.Stride, n); w != len(buf) {
		t.Fatalf("PackTriangle wrote %d bytes, want %d", w, len(buf))
	}
	poison := vec.FromParts[T](-12345, 54321)
	dst := tile.NewDense[T](n, n)
	for i := range dst.Data {
		dst.Data[i] = poison
	}
	if err := UnpackTriangle(dst.Data, dst.Stride, n, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			got, want := dst.At(i, j), src.At(i, j)
			if j < i {
				want = poison
			}
			if got != want {
				t.Fatalf("(%d,%d): got %v want %v", i, j, got, want)
			}
		}
	}
	if err := UnpackTriangle(dst.Data, dst.Stride, n, buf[:len(buf)-2]); err == nil {
		t.Error("UnpackTriangle accepted a truncated payload")
	}
}

func TestTriangleRoundTrip(t *testing.T) {
	t.Run("double", triangleRoundTrip[float64])
	t.Run("single", triangleRoundTrip[float32])
	t.Run("double-complex", triangleRoundTrip[complex128])
	t.Run("single-complex", triangleRoundTrip[complex64])
}

// TestFrameRoundTrip writes frames of every kind through the codec and
// reads them back, reusing one payload buffer the way the hubs do.
func TestFrameRoundTrip(t *testing.T) {
	var net bytes.Buffer
	frames := []Frame{
		{Kind: KindHello, Payload: []byte(`{"proto":1}`)},
		{Kind: KindRTri, Prec: 'd', Seq: 7, Rows: 4, Cols: 4, Payload: make([]byte, TriLen(4)*8)},
		{Kind: KindQTB, Prec: 'z', Seq: 8, Rows: 4, Cols: 2, Payload: make([]byte, 4*2*16)},
		{Kind: KindDone},
	}
	for i := range frames {
		if _, err := WriteFrame(&net, &frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	var buf []byte
	for i := range frames {
		f, b, err := ReadFrame(&net, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = b
		want := frames[i]
		if f.Kind != want.Kind || f.Prec != want.Prec || f.Seq != want.Seq ||
			f.Rows != want.Rows || f.Cols != want.Cols || !bytes.Equal(f.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch: %+v vs %+v", i, f, want)
		}
	}
}

// TestFrameRejectsCorrupt drives the validation paths: bad magic, zero
// and out-of-range kinds, an oversized length field (rejected before any
// allocation), and truncation at several offsets.
func TestFrameRejectsCorrupt(t *testing.T) {
	valid := func() []byte {
		var b bytes.Buffer
		_, _ = WriteFrame(&b, &Frame{Kind: KindRTri, Prec: 'd', Seq: 1, Rows: 2, Cols: 2, Payload: make([]byte, 24)})
		return b.Bytes()
	}

	t.Run("bad-magic", func(t *testing.T) {
		raw := valid()
		raw[0] = 'X'
		if _, _, err := ReadFrame(bytes.NewReader(raw), nil); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("zero-kind", func(t *testing.T) {
		raw := valid()
		raw[4] = 0
		if _, _, err := ReadFrame(bytes.NewReader(raw), nil); err == nil {
			t.Error("kind 0 accepted")
		}
	})
	t.Run("unknown-kind", func(t *testing.T) {
		raw := valid()
		raw[4] = kindMax + 1
		if _, _, err := ReadFrame(bytes.NewReader(raw), nil); err == nil {
			t.Error("out-of-range kind accepted")
		}
	})
	t.Run("oversized-payload", func(t *testing.T) {
		raw := valid()
		binary.LittleEndian.PutUint32(raw[20:], MaxPayload+1)
		if _, _, err := ReadFrame(bytes.NewReader(raw), nil); err == nil {
			t.Error("oversized payload length accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		raw := valid()
		for _, cut := range []int{1, HeaderLen - 1, HeaderLen, HeaderLen + 5, len(raw) - 1} {
			_, _, err := ReadFrame(bytes.NewReader(raw[:cut]), nil)
			if err == nil {
				t.Errorf("truncation at %d accepted", cut)
			}
			if cut >= HeaderLen && err != io.ErrUnexpectedEOF {
				t.Errorf("truncation at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
			}
		}
	})
}

// FuzzTileFrame feeds arbitrary bytes to the frame reader: it must reject
// or accept without panicking, and anything it accepts must survive a
// re-encode/re-decode round trip bit-for-bit — the no-corruption contract
// the reduction tree relies on.
func FuzzTileFrame(f *testing.F) {
	// Seed corpus: one valid frame per traffic class, plus corruptions.
	seed := func(fr *Frame) []byte {
		var b bytes.Buffer
		_, _ = WriteFrame(&b, fr)
		return b.Bytes()
	}
	tri := make([]byte, TriLen(3)*8)
	PackTriangle(tri, []float64{1, 2, 3, 0, 4, 5, 0, 0, 6}, 3, 3)
	f.Add(seed(&Frame{Kind: KindRTri, Prec: 'd', Seq: 3, Rows: 3, Cols: 3, Payload: tri}))
	qtb := make([]byte, 2*2*16)
	PackScalars(qtb, []complex128{1 + 2i, 3 - 4i, -5i, 6})
	f.Add(seed(&Frame{Kind: KindQTB, Prec: 'z', Seq: 1, Rows: 2, Cols: 2, Payload: qtb}))
	f.Add(seed(&Frame{Kind: KindHello, Payload: []byte(`{"proto":1,"peer_addr":"127.0.0.1:1"}`)}))
	f.Add(seed(&Frame{Kind: KindStop, Seq: 9}))
	short := seed(&Frame{Kind: KindShard, Prec: 's', Rows: 2, Cols: 2, Payload: make([]byte, 16)})
	f.Add(short[:len(short)-3]) // truncated payload
	bad := seed(&Frame{Kind: KindDone})
	bad[1] = '?' // corrupt magic
	f.Add(bad)

	f.Fuzz(func(t *testing.T, raw []byte) {
		fr, _, err := ReadFrame(bytes.NewReader(raw), nil)
		if err != nil {
			return
		}
		var b bytes.Buffer
		if _, err := WriteFrame(&b, &fr); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		fr2, _, err := ReadFrame(&b, nil)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.Prec != fr.Prec || fr2.Seq != fr.Seq ||
			fr2.Rows != fr.Rows || fr2.Cols != fr.Cols || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("frame changed across round trip: %+v vs %+v", fr, fr2)
		}
		// An accepted bulk frame must also take the scalar-decode path
		// without panicking, whatever the geometry fields claim.
		if fr.Kind == KindRTri && fr.Prec == 'd' {
			n := int(fr.Rows)
			if n > 0 && n <= 64 {
				_ = UnpackTriangle(make([]float64, n*n), n, n, fr.Payload)
			}
		}
	})
}
