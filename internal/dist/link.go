// Reduction-tree connection plumbing: one lazily dialed TCP connection per
// (sender, pivot) pair, a writer goroutine per connection so a shard can
// start its next local factorization while its R triangle is still in
// flight (the overlap the benchmark measures), and a receive hub that
// demultiplexes incoming peer frames by sender rank. Buffers are pooled on
// both sides; the steady state moves zero allocations per round.
package dist

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// sendQueueDepth bounds the frames queued per outgoing connection: enough
// for about two rounds of (RTri, QTB) pairs in flight, so pipelining is
// real but a stalled pivot exerts backpressure instead of unbounded
// buffering.
const sendQueueDepth = 4

// peerSender is one outgoing tree edge: a connection plus its writer
// goroutine's queue.
type peerSender struct {
	ch   chan []byte
	conn net.Conn
}

// sendHub owns a worker's outgoing tree edges and their accounting.
type sendHub struct {
	rank  int
	peers []string

	mu    sync.Mutex
	conns map[int]*peerSender
	wg    sync.WaitGroup

	bytesSent atomic.Int64
	sendNS    atomic.Int64
	errv      atomic.Value // error from any writer
}

func newSendHub(rank int, peers []string) *sendHub {
	return &sendHub{rank: rank, peers: peers, conns: map[int]*peerSender{}}
}

func (h *sendHub) fail(err error) { h.errv.CompareAndSwap(nil, err) }

func (h *sendHub) err() error {
	if v := h.errv.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// send enqueues a framed buffer (ownership transfers; the writer recycles
// it) to the peer with the given rank, dialing on first use. The first
// frame on a fresh connection is a PeerHello identifying this sender.
func (h *sendHub) send(to int, framed []byte) error {
	if err := h.err(); err != nil {
		putBuf(framed)
		return err
	}
	h.mu.Lock()
	ps := h.conns[to]
	if ps == nil {
		conn, err := net.DialTimeout("tcp", h.peers[to], 10*time.Second)
		if err != nil {
			h.mu.Unlock()
			putBuf(framed)
			err = fmt.Errorf("dist: rank %d dialing peer %d: %w", h.rank, to, err)
			h.fail(err)
			return err
		}
		ps = &peerSender{ch: make(chan []byte, sendQueueDepth), conn: conn}
		h.conns[to] = ps
		h.wg.Add(1)
		go h.writer(ps)
		ps.ch <- packFrame(&Frame{Kind: KindPeerHello, Seq: uint32(h.rank)}, 0, func([]byte) {})
	}
	h.mu.Unlock()
	ps.ch <- framed
	return nil
}

// writer drains one connection's queue. After a write error it keeps
// consuming (recycling buffers) so senders never block on a dead edge; the
// recorded error fails the worker at its next send.
func (h *sendHub) writer(ps *peerSender) {
	defer h.wg.Done()
	dead := false
	for buf := range ps.ch {
		if !dead {
			t0 := time.Now()
			n, err := ps.conn.Write(buf)
			h.sendNS.Add(int64(time.Since(t0)))
			h.bytesSent.Add(int64(n))
			if err != nil {
				h.fail(fmt.Errorf("dist: rank %d peer send: %w", h.rank, err))
				dead = true
			}
		}
		putBuf(buf)
	}
	_ = ps.conn.Close()
}

// close flushes and tears down every outgoing edge, waiting for the
// writers so all queued frames are on the wire before the worker exits.
func (h *sendHub) close() {
	h.mu.Lock()
	for _, ps := range h.conns {
		close(ps.ch)
	}
	h.mu.Unlock()
	h.wg.Wait()
}

// recvMsg is one delivered peer frame; buf owns the payload and goes back
// to the pool via putBuf once the consumer is done with it.
type recvMsg struct {
	f   Frame
	buf []byte
	err error
}

// recvHub accepts reduction-tree connections on a worker's peer listener
// and demultiplexes their frames into per-sender queues.
type recvHub struct {
	ln   net.Listener
	done chan struct{}

	mu      sync.Mutex
	senders map[int]chan recvMsg

	bytesRecv atomic.Int64
}

func newRecvHub(ln net.Listener) *recvHub {
	h := &recvHub{ln: ln, done: make(chan struct{}), senders: map[int]chan recvMsg{}}
	go h.accept()
	return h
}

// queueFor get-or-creates the delivery queue of a sender rank (the accept
// goroutine and the combine loop race to be first).
func (h *recvHub) queueFor(rank int) chan recvMsg {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := h.senders[rank]
	if ch == nil {
		ch = make(chan recvMsg, sendQueueDepth)
		h.senders[rank] = ch
	}
	return ch
}

func (h *recvHub) accept() {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed: hub shutting down
		}
		go h.serve(conn)
	}
}

// serve reads one peer connection: a PeerHello naming the sender, then a
// stream of bulk frames delivered in order to that sender's queue. Each
// frame lands in its own pooled buffer because ownership transfers to the
// consumer.
func (h *recvHub) serve(conn net.Conn) {
	defer conn.Close()
	setDeadline(conn, 30*time.Second)
	hello, buf, err := ReadFrame(conn, getBuf(0))
	if err != nil || hello.Kind != KindPeerHello {
		putBuf(buf)
		return // not a valid peer: drop the connection
	}
	putBuf(buf)
	setDeadline(conn, 0)
	ch := h.queueFor(int(hello.Seq))
	for {
		f, fbuf, err := ReadFrame(conn, getBuf(0))
		if err != nil {
			putBuf(fbuf)
			select {
			case ch <- recvMsg{err: err}:
			case <-h.done:
			}
			return
		}
		h.bytesRecv.Add(int64(HeaderLen + len(f.Payload)))
		select {
		case ch <- recvMsg{f: f, buf: fbuf}:
		case <-h.done:
			putBuf(fbuf)
			return
		}
	}
}

// recv waits for the next frame from a sender rank. The returned buffer
// must be recycled with putBuf after the payload is consumed.
func (h *recvHub) recv(from int) (Frame, []byte, error) {
	select {
	case m := <-h.queueFor(from):
		if m.err != nil {
			return Frame{}, nil, fmt.Errorf("dist: receiving from rank %d: %w", from, m.err)
		}
		return m.f, m.buf, nil
	case <-h.done:
		return Frame{}, nil, fmt.Errorf("dist: receive from rank %d aborted", from)
	}
}

// close tears the hub down: the listener stops accepting and every
// blocked recv unblocks.
func (h *recvHub) close() {
	_ = h.ln.Close()
	close(h.done)
}
