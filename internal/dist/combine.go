// The R-combine step of the CAQR reduction tree: folding a partner
// shard's n×n upper-triangular R (and the top block of its Qᵀb) into the
// resident one with a single TTQRT/TTMQR pair — the same
// triangle-on-triangle kernels the in-process DAG uses, applied across
// process boundaries. All scratch is allocated once per run and reused
// every round and level, so the steady-state combine allocates nothing.
package dist

import (
	"tiledqr/internal/kernel"
	"tiledqr/internal/vec"
)

// reducer is one worker's resident combine state: its own R triangle and
// Qᵀb top block, plus the scratch a TTQRT/TTMQR pair needs (the partner's
// triangle, which TTQRT overwrites with the V₂ reflectors, the ib×n panel
// T factors, and kernel workspace).
type reducer[T vec.Scalar] struct {
	n, nrhs, ib int
	r           []T // resident n×n R, stride n (upper triangle live)
	qtb         []T // resident n×nrhs top of Qᵀb, stride nrhs
	partner     []T // partner's triangle; V₂ after TTQRT. stride n
	partnerQTB  []T // partner's Qᵀb top block, stride nrhs
	tf          []T // ib×n panel T factors, stride n
	work        []T
}

func newReducer[T vec.Scalar](n, nrhs, ib int) *reducer[T] {
	wsLen := kernel.WorkLen(n, ib)
	if nrhs > 0 {
		if a := kernel.ApplyWorkLen(n, ib, nrhs); a > wsLen {
			wsLen = a
		}
	}
	return &reducer[T]{
		n: n, nrhs: nrhs, ib: ib,
		r:          make([]T, n*n),
		qtb:        make([]T, n*max(nrhs, 1)),
		partner:    make([]T, n*n),
		partnerQTB: make([]T, n*max(nrhs, 1)),
		tf:         make([]T, ib*n),
		work:       make([]T, wsLen),
	}
}

// combine folds the partner state (already unpacked into rd.partner /
// rd.partnerQTB) into the resident R and Qᵀb: TTQRT annihilates the
// partner triangle against the resident one, then TTMQR replays the
// transformation on the stacked [qtb; partnerQTB] right-hand sides so the
// resident qtb stays the top block of Qᵀb for the combined row set.
func (rd *reducer[T]) combine() {
	n := rd.n
	kernel.TTQRT(n, n, rd.ib, rd.r, n, rd.partner, n, rd.tf, n, rd.work)
	if rd.nrhs > 0 {
		kernel.TTMQR(true, n, n, rd.ib, rd.partner, n, rd.tf, n,
			rd.qtb, rd.nrhs, rd.partnerQTB, rd.nrhs, rd.nrhs, rd.work)
	}
}

// packR frames the resident R triangle for the wire (pooled buffer).
func (rd *reducer[T]) packR(seq uint32) []byte {
	n := rd.n
	sz := scalarBytes(precOf[T]())
	f := &Frame{Kind: KindRTri, Prec: precOf[T](), Seq: seq, Rows: uint32(n), Cols: uint32(n)}
	return packFrame(f, TriLen(n)*sz, func(dst []byte) {
		PackTriangle(dst, rd.r, n, n)
	})
}

// packQTB frames the resident Qᵀb top block for the wire (pooled buffer).
func (rd *reducer[T]) packQTB(seq uint32) []byte {
	return packDense(KindQTB, seq, rd.qtb, rd.nrhs, rd.n, rd.nrhs)
}
