package dist

import (
	"context"
	"strings"
	"testing"
	"time"

	"tiledqr/internal/core"
	"tiledqr/internal/engine"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
)

// canonicalizeR scales each row of an upper-triangular factor so its
// diagonal entry is real and non-negative. R is unique only up to a
// unitary diagonal phase, and the distributed elimination order differs
// from the single-process one, so factors must be canonicalized before an
// entrywise comparison.
func canonicalizeR[T vec.Scalar](r *tile.Dense[T]) {
	for i := 0; i < r.Rows && i < r.Cols; i++ {
		d := r.At(i, i)
		a := vec.Abs(d)
		if a == 0 {
			continue
		}
		scale := vec.Conj(d) * vec.FromParts[T](1/a, 0)
		for j := i; j < r.Cols; j++ {
			r.Set(i, j, r.At(i, j)*scale)
		}
	}
}

// joinWorkers drains the SpawnLocal error channel, failing on any worker
// error.
func joinWorkers(t *testing.T, errs <-chan error, w int) {
	t.Helper()
	for i := 0; i < w; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("worker failed: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("worker did not exit")
		}
	}
}

// runDistVsLocal runs a W-worker distributed factorization of a random
// m×n matrix against the single-process engine and requires R (after sign
// canonicalization) and the least-squares solution to agree to tol
// relative to the input's scale.
func runDistVsLocal[T vec.Scalar](t *testing.T, m, n, nrhs, W, rounds int, tol float64) {
	t.Helper()
	a := tile.RandDense[T](m, n, 7)
	b := tile.RandDense[T](m, nrhs, 8)

	c, err := NewCoordinator(Config{
		Workers: W, NB: 32, IB: 8, Rounds: rounds, LocalWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	errs := SpawnLocal(context.Background(), c.Addr(), W)
	res, err := Run[T](context.Background(), c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	joinWorkers(t, errs, W)
	if res.Rounds != rounds {
		t.Fatalf("completed %d rounds, want %d", res.Rounds, rounds)
	}

	f, err := engine.Factor(a, engine.Config{
		Algorithm: core.Greedy, TileSize: 32, InnerBlock: 8,
		Env: engine.Env{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := f.R().View(0, 0, n, n)
	got := res.R
	canonicalizeR(want)
	canonicalizeR(got)
	scale := tile.FrobNorm(a)
	if diff := tile.MaxAbsDiff(got, want); diff > tol*scale {
		t.Errorf("R disagrees with single-process Factor: max |Δ| = %g (tolerance %g)", diff, tol*scale)
	}

	x, err := f.SolveLS(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	// The LS solution is unique (full-rank random A), so it compares
	// directly — no canonicalization.
	xScale := tile.FrobNorm(x)
	if diff := tile.MaxAbsDiff(res.X, x); diff > tol*xScale {
		t.Errorf("SolveLS disagrees with single-process engine: max |Δ| = %g (tolerance %g)", diff, tol*xScale)
	}

	st := res.Stats
	if st.Workers != W {
		t.Errorf("stats cover %d workers, want %d", st.Workers, W)
	}
	if W > 1 && (st.BytesSent == 0 || st.BytesRecv == 0) {
		t.Errorf("stats report no wire traffic: sent=%d recv=%d", st.BytesSent, st.BytesRecv)
	}
	if st.TasksRun == 0 || st.ComputeNS == 0 {
		t.Errorf("stats report no compute: tasks=%d computeNS=%d", st.TasksRun, st.ComputeNS)
	}
}

// TestDistMatchesLocal is the heart of the acceptance criteria: the
// multi-process CAQR result must agree with the single-process engine in
// all four precisions, including a non-power-of-two worker count and
// multiple pipelined rounds.
func TestDistMatchesLocal(t *testing.T) {
	t.Run("double", func(t *testing.T) { runDistVsLocal[float64](t, 256, 64, 2, 3, 2, 1e-12) })
	t.Run("double-complex", func(t *testing.T) { runDistVsLocal[complex128](t, 256, 64, 2, 3, 2, 1e-12) })
	t.Run("single", func(t *testing.T) { runDistVsLocal[float32](t, 256, 64, 2, 3, 2, 2e-4) })
	t.Run("single-complex", func(t *testing.T) { runDistVsLocal[complex64](t, 256, 64, 2, 3, 2, 2e-4) })
}

// TestDistSingleWorker degenerates the tree to nothing: one shard, no
// peer traffic, still the right answer.
func TestDistSingleWorker(t *testing.T) {
	runDistVsLocal[float64](t, 128, 32, 1, 1, 1, 1e-12)
}

// TestDistPowerOfTwoWorkers runs the full-depth binary tree.
func TestDistPowerOfTwoWorkers(t *testing.T) {
	runDistVsLocal[float64](t, 512, 64, 1, 4, 3, 1e-12)
}

// TestDistDrain cancels a long benchmark-mode run mid-flight and requires
// a coordinated drain: Run returns cleanly with fewer rounds than asked,
// and every worker exits without error — the SIGTERM semantics of
// cmd/qrdist.
func TestDistDrain(t *testing.T) {
	const W, rounds = 2, 1000
	c, err := NewCoordinator(Config{
		Workers: W, NB: 32, IB: 8, Rounds: rounds, Window: 2, LocalWorkers: 1,
		GenSeed: 42, GenRows: 96, GenCols: 32, GenRHS: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errs := SpawnLocal(context.Background(), c.Addr(), W)
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	res, err := Run[float64](ctx, c, nil, nil)
	if err != nil {
		t.Fatalf("drain must complete cleanly, got %v", err)
	}
	joinWorkers(t, errs, W)
	if res.Rounds <= 0 || res.Rounds >= rounds {
		t.Errorf("drained after %d rounds, want 0 < rounds < %d", res.Rounds, rounds)
	}
	if res.Stats.Rounds != res.Rounds {
		t.Errorf("stats rounds %d != result rounds %d", res.Stats.Rounds, res.Rounds)
	}
}

// TestDistRejectsThinShards enforces the shard ≥ n floor with a
// when-to-shard hint instead of producing a malformed tree.
func TestDistRejectsThinShards(t *testing.T) {
	c, err := NewCoordinator(Config{Workers: 4, NB: 32, IB: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a := tile.RandDense[float64](64, 64, 1)
	_, err = Run[float64](context.Background(), c, a, nil)
	if err == nil || !strings.Contains(err.Error(), "single-node") {
		t.Fatalf("thin shards must be rejected with a single-node hint, got %v", err)
	}
}
