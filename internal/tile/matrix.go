package tile

import (
	"fmt"

	"tiledqr/internal/vec"
)

// Grid describes the partition of an m×n matrix into p×q tiles with nominal
// tile size nb. Interior tiles are nb×nb; the last tile row/column may be
// smaller (ragged edges). Tile indices are 0-based here; the paper-facing
// packages use 1-based indices and convert at the boundary.
type Grid struct {
	M, N int // element dimensions
	NB   int // nominal tile size
	P, Q int // tile dimensions
}

// NewGrid computes the tile grid for an m×n matrix with tile size nb.
func NewGrid(m, n, nb int) Grid {
	if m <= 0 || n <= 0 || nb <= 0 {
		panic(fmt.Sprintf("tile: invalid grid m=%d n=%d nb=%d", m, n, nb))
	}
	return Grid{M: m, N: n, NB: nb, P: (m + nb - 1) / nb, Q: (n + nb - 1) / nb}
}

// TileRows returns the height of tile row i.
func (g Grid) TileRows(i int) int {
	if i < 0 || i >= g.P {
		panic(fmt.Sprintf("tile: tile row %d out of range [0,%d)", i, g.P))
	}
	if i == g.P-1 {
		return g.M - (g.P-1)*g.NB
	}
	return g.NB
}

// TileCols returns the width of tile column j.
func (g Grid) TileCols(j int) int {
	if j < 0 || j >= g.Q {
		panic(fmt.Sprintf("tile: tile column %d out of range [0,%d)", j, g.Q))
	}
	if j == g.Q-1 {
		return g.N - (g.Q-1)*g.NB
	}
	return g.NB
}

// MinPQ returns min(p, q), the number of panel columns to factor.
func (g Grid) MinPQ() int {
	if g.P < g.Q {
		return g.P
	}
	return g.Q
}

// Matrix is a tiled matrix: each tile is stored contiguously (PLASMA "tile
// layout"), which is what gives the tiled kernels their locality.
type Matrix[T vec.Scalar] struct {
	Grid
	Tiles []*Dense[T] // row-major: Tiles[i*Q+j]
}

// NewMatrix allocates a zero tiled matrix for the given grid: one
// contiguous payload arena plus one header slab, regardless of p×q.
func NewMatrix[T vec.Scalar](g Grid) *Matrix[T] {
	return NewMatrixOn[T](g, make([]T, g.M*g.N))
}

// NewMatrixOn builds a tiled matrix for grid g whose tile payloads are
// carved, tile after tile, out of buf (len(buf) ≥ g.M·g.N) and whose
// headers live in a single slab — the whole matrix is two allocations, and
// callers owning buf (the factorization arena) get zero payload
// allocations on reuse. Tile data capacities are clipped so kernels cannot
// overrun into a neighbouring tile.
func NewMatrixOn[T vec.Scalar](g Grid, buf []T) *Matrix[T] {
	if len(buf) < g.M*g.N {
		panic(fmt.Sprintf("tile: arena holds %d scalars, grid needs %d", len(buf), g.M*g.N))
	}
	hdrs := make([]Dense[T], g.P*g.Q)
	m := &Matrix[T]{Grid: g, Tiles: make([]*Dense[T], g.P*g.Q)}
	off := 0
	for i := 0; i < g.P; i++ {
		for j := 0; j < g.Q; j++ {
			r, c := g.TileRows(i), g.TileCols(j)
			hdrs[i*g.Q+j] = Dense[T]{Rows: r, Cols: c, Stride: c, Data: buf[off : off+r*c : off+r*c]}
			m.Tiles[i*g.Q+j] = &hdrs[i*g.Q+j]
			off += r * c
		}
	}
	return m
}

// Tile returns tile (i, j), 0-based.
func (m *Matrix[T]) Tile(i, j int) *Dense[T] { return m.Tiles[i*m.Q+j] }

// CopyFrom copies a dense matrix of the grid's shape into the tile layout,
// overwriting every element of every tile.
func (m *Matrix[T]) CopyFrom(a *Dense[T]) {
	if a.Rows != m.M || a.Cols != m.N {
		panic(fmt.Sprintf("tile: CopyFrom shape %d×%d into %d×%d grid", a.Rows, a.Cols, m.M, m.N))
	}
	for ti := 0; ti < m.P; ti++ {
		for tj := 0; tj < m.Q; tj++ {
			blk := m.Tile(ti, tj)
			r0, c0 := ti*m.NB, tj*m.NB
			for r := 0; r < blk.Rows; r++ {
				copy(blk.Data[r*blk.Stride:r*blk.Stride+blk.Cols],
					a.Data[(r0+r)*a.Stride+c0:(r0+r)*a.Stride+c0+blk.Cols])
			}
		}
	}
}

// FromDense converts a dense matrix to tile layout with tile size nb.
func FromDense[T vec.Scalar](a *Dense[T], nb int) *Matrix[T] {
	t := NewMatrix[T](NewGrid(a.Rows, a.Cols, nb))
	t.CopyFrom(a)
	return t
}

// ToDense converts a tiled matrix back to a row-major dense matrix.
func (m *Matrix[T]) ToDense() *Dense[T] {
	a := NewDense[T](m.M, m.N)
	for ti := 0; ti < m.P; ti++ {
		for tj := 0; tj < m.Q; tj++ {
			blk := m.Tile(ti, tj)
			r0, c0 := ti*m.NB, tj*m.NB
			for r := 0; r < blk.Rows; r++ {
				copy(a.Data[(r0+r)*a.Stride+c0:(r0+r)*a.Stride+c0+blk.Cols],
					blk.Data[r*blk.Stride:r*blk.Stride+blk.Cols])
			}
		}
	}
	return a
}

// Clone returns a deep copy of the tiled matrix.
func (m *Matrix[T]) Clone() *Matrix[T] {
	c := &Matrix[T]{Grid: m.Grid, Tiles: make([]*Dense[T], len(m.Tiles))}
	for i, t := range m.Tiles {
		c.Tiles[i] = t.Clone()
	}
	return c
}
