package tile

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGridDimensions(t *testing.T) {
	cases := []struct {
		m, n, nb         int
		p, q             int
		lastRow, lastCol int
	}{
		{8000, 8000, 200, 40, 40, 200, 200},
		{15, 6, 1, 15, 6, 1, 1},
		{250, 130, 100, 3, 2, 50, 30},
		{100, 100, 100, 1, 1, 100, 100},
		{101, 99, 100, 2, 1, 1, 99},
	}
	for _, c := range cases {
		g := NewGrid(c.m, c.n, c.nb)
		if g.P != c.p || g.Q != c.q {
			t.Errorf("NewGrid(%d,%d,%d): got %dx%d tiles, want %dx%d", c.m, c.n, c.nb, g.P, g.Q, c.p, c.q)
		}
		if got := g.TileRows(g.P - 1); got != c.lastRow {
			t.Errorf("NewGrid(%d,%d,%d): last tile row height %d, want %d", c.m, c.n, c.nb, got, c.lastRow)
		}
		if got := g.TileCols(g.Q - 1); got != c.lastCol {
			t.Errorf("NewGrid(%d,%d,%d): last tile col width %d, want %d", c.m, c.n, c.nb, got, c.lastCol)
		}
	}
}

func TestGridRowColSums(t *testing.T) {
	g := NewGrid(257, 101, 48)
	sumR := 0
	for i := 0; i < g.P; i++ {
		sumR += g.TileRows(i)
	}
	if sumR != g.M {
		t.Errorf("tile rows sum to %d, want %d", sumR, g.M)
	}
	sumC := 0
	for j := 0; j < g.Q; j++ {
		sumC += g.TileCols(j)
	}
	if sumC != g.N {
		t.Errorf("tile cols sum to %d, want %d", sumC, g.N)
	}
}

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	for _, dims := range [][3]int{{7, 5, 3}, {64, 64, 16}, {100, 37, 24}, {5, 9, 4}} {
		a := RandDense[float64](dims[0], dims[1], 42)
		back := FromDense(a, dims[2]).ToDense()
		if MaxAbsDiff(a, back) != 0 {
			t.Errorf("round trip %v: matrices differ", dims)
		}
	}
}

func TestZFromDenseToDenseRoundTrip(t *testing.T) {
	a := RandDense[complex128](33, 21, 7)
	back := FromDense(a, 8).ToDense()
	if MaxAbsDiff(a, back) != 0 {
		t.Error("complex round trip: matrices differ")
	}
}

func TestMulIdentity(t *testing.T) {
	a := RandDense[float64](6, 6, 1)
	if MaxAbsDiff(Mul(a, Identity[float64](6)), a) != 0 {
		t.Error("A·I != A")
	}
	if MaxAbsDiff(Mul(Identity[float64](6), a), a) != 0 {
		t.Error("I·A != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDense[float64](2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := NewDense[float64](3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("Mul result %v, want %v", c.Data, want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		a := RandDense[float64](5, 8, seed)
		return MaxAbsDiff(Transpose(Transpose(a)), a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrobNorm(t *testing.T) {
	a := NewDense[float64](2, 2)
	copy(a.Data, []float64{3, 4, 0, 0})
	if got := FrobNorm(a); math.Abs(got-5) > 1e-15 {
		t.Errorf("FrobNorm = %v, want 5", got)
	}
}

func TestZMulConjTranspose(t *testing.T) {
	a := RandDense[complex128](4, 3, 3)
	aha := Mul(ConjTranspose(a), a)
	// AᴴA must be Hermitian with real non-negative diagonal.
	for i := 0; i < 3; i++ {
		if math.Abs(imag(aha.At(i, i))) > 1e-12 {
			t.Errorf("diagonal (%d,%d) not real: %v", i, i, aha.At(i, i))
		}
		if real(aha.At(i, i)) < 0 {
			t.Errorf("diagonal (%d,%d) negative: %v", i, i, aha.At(i, i))
		}
		for j := 0; j < 3; j++ {
			d := aha.At(i, j) - complex(real(aha.At(j, i)), -imag(aha.At(j, i)))
			if math.Hypot(real(d), imag(d)) > 1e-12 {
				t.Errorf("not Hermitian at (%d,%d)", i, j)
			}
		}
	}
}

func TestViewSharesStorage(t *testing.T) {
	a := NewDense[float64](4, 4)
	v := a.View(1, 1, 2, 2)
	v.Set(0, 0, 9)
	if a.At(1, 1) != 9 {
		t.Error("view does not share storage")
	}
	if v.At(1, 1) != a.At(2, 2) {
		t.Error("view indexing wrong")
	}
}

func TestOrthoResidualIdentity(t *testing.T) {
	if r := OrthoResidual(Identity[float64](7)); r != 0 {
		t.Errorf("OrthoResidual(I) = %v, want 0", r)
	}
	if r := OrthoResidual(Identity[complex128](7)); r != 0 {
		t.Errorf("OrthoResidual(I) = %v, want 0", r)
	}
}

func TestRandDeterministic(t *testing.T) {
	a := RandDense[float64](5, 5, 99)
	b := RandDense[float64](5, 5, 99)
	if MaxAbsDiff(a, b) != 0 {
		t.Error("RandDense not deterministic for equal seeds")
	}
}

func TestZMatrixRoundTripAndClone(t *testing.T) {
	a := RandDense[complex128](25, 17, 5)
	m := FromDense(a, 8)
	c := m.Clone()
	// Mutating the clone must not affect the original.
	c.Tile(0, 0).Set(0, 0, 99)
	if m.Tile(0, 0).At(0, 0) == 99 {
		t.Error("ZMatrix.Clone shares tile storage")
	}
	if MaxAbsDiff(m.ToDense(), a) != 0 {
		t.Error("ZMatrix round trip differs")
	}
}

func TestMatrixClone(t *testing.T) {
	a := RandDense[float64](10, 10, 6)
	m := FromDense(a, 4)
	c := m.Clone()
	c.Tile(1, 1).Set(0, 0, 42)
	if m.Tile(1, 1).At(0, 0) == 42 {
		t.Error("Matrix.Clone shares tile storage")
	}
	if MaxAbsDiff(c.ToDense(), a) == 0 {
		t.Error("clone mutation did not take effect")
	}
}

func TestZViewSharesStorage(t *testing.T) {
	a := NewDense[complex128](4, 4)
	v := a.View(1, 1, 2, 2)
	v.Set(0, 0, 9i)
	if a.At(1, 1) != 9i {
		t.Error("ZDense view does not share storage")
	}
}

func TestMinPQ(t *testing.T) {
	if NewGrid(30, 10, 5).MinPQ() != 2 {
		t.Error("MinPQ wrong for tall grid")
	}
	if NewGrid(10, 30, 5).MinPQ() != 2 {
		t.Error("MinPQ wrong for wide grid")
	}
}

func TestZResidualHelpers(t *testing.T) {
	q := Identity[complex128](4)
	r := RandDense[complex128](4, 4, 8)
	if res := ResidualQR(r, q, r); res != 0 {
		t.Errorf("ResidualQR(A, I, A) = %g, want 0", res)
	}
	zero := NewDense[complex128](3, 3)
	if res := ResidualQR(zero, Identity[complex128](3), zero); res != 0 {
		t.Errorf("zero-matrix residual %g", res)
	}
	zeroR := NewDense[float64](3, 3)
	if res := ResidualQR(zeroR, Identity[float64](3), zeroR); res != 0 {
		t.Errorf("real zero-matrix residual %g", res)
	}
}

func TestViewOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range view did not panic")
		}
	}()
	NewDense[float64](3, 3).View(1, 1, 3, 3)
}

func TestGridPanicsOnBadTileIndex(t *testing.T) {
	g := NewGrid(10, 10, 4)
	for _, f := range []func(){
		func() { g.TileRows(-1) },
		func() { g.TileRows(g.P) },
		func() { g.TileCols(-1) },
		func() { g.TileCols(g.Q) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad tile index did not panic")
				}
			}()
			f()
		}()
	}
}
