// Package tile provides the dense- and tiled-matrix substrate used by the
// tiled QR factorization algorithms: row-major dense matrices, PLASMA-style
// tile layouts with ragged edge tiles, conversions between the two, norms,
// and deterministic random matrix generation for tests and benchmarks. The
// whole substrate is generic over the four arithmetic domains of
// vec.Scalar; the real/complex differences (conjugation, modulus, random
// fill) go through the vec scalar hooks.
package tile

import (
	"fmt"
	"math/rand"

	"tiledqr/internal/vec"
)

// Dense is a row-major dense matrix over one of the scalar domains.
// Element (i, j) is stored at Data[i*Stride+j]. A Dense may be a view into
// a larger matrix, in which case Stride exceeds Cols.
type Dense[T vec.Scalar] struct {
	Rows, Cols int
	Stride     int
	Data       []T
}

// NewDense allocates a zero-initialized r×c dense matrix.
func NewDense[T vec.Scalar](r, c int) *Dense[T] {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tile: invalid dimensions %d×%d", r, c))
	}
	return &Dense[T]{Rows: r, Cols: c, Stride: c, Data: make([]T, r*c)}
}

// At returns element (i, j).
func (a *Dense[T]) At(i, j int) T { return a.Data[i*a.Stride+j] }

// Set assigns element (i, j).
func (a *Dense[T]) Set(i, j int, v T) { a.Data[i*a.Stride+j] = v }

// Clone returns a deep copy of a with a compact stride.
func (a *Dense[T]) Clone() *Dense[T] {
	b := NewDense[T](a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(b.Data[i*b.Stride:i*b.Stride+b.Cols], a.Data[i*a.Stride:i*a.Stride+a.Cols])
	}
	return b
}

// View returns a view of the r×c submatrix of a with top-left corner (i, j).
// The view shares storage with a.
func (a *Dense[T]) View(i, j, r, c int) *Dense[T] {
	if i < 0 || j < 0 || i+r > a.Rows || j+c > a.Cols {
		panic(fmt.Sprintf("tile: view [%d:%d, %d:%d] out of range for %d×%d", i, i+r, j, j+c, a.Rows, a.Cols))
	}
	return &Dense[T]{Rows: r, Cols: c, Stride: a.Stride, Data: a.Data[i*a.Stride+j:]}
}

// Identity returns the n×n identity matrix.
func Identity[T vec.Scalar](n int) *Dense[T] {
	a := NewDense[T](n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	return a
}

// RandDense returns an r×c matrix with standard normal entries drawn from a
// deterministic generator seeded with seed; in the complex domains the real
// and imaginary parts are independent standard normals. The draw sequence
// per element is fixed per domain, so the float64 and complex128 data of a
// given seed match what the pre-generic RandDense/RandZDense produced.
func RandDense[T vec.Scalar](r, c int, seed int64) *Dense[T] {
	rng := rand.New(rand.NewSource(seed))
	a := NewDense[T](r, c)
	if vec.IsComplex[T]() {
		for i := range a.Data {
			a.Data[i] = vec.FromParts[T](rng.NormFloat64(), rng.NormFloat64())
		}
	} else {
		for i := range a.Data {
			a.Data[i] = vec.FromParts[T](rng.NormFloat64(), 0)
		}
	}
	return a
}

// Mul returns the matrix product a·b.
func Mul[T vec.Scalar](a, b *Dense[T]) *Dense[T] {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tile: dimension mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense[T](a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ci := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		for k := 0; k < a.Cols; k++ {
			vec.Axpy(a.At(i, k), b.Data[k*b.Stride:k*b.Stride+b.Cols], ci)
		}
	}
	return c
}

// Transpose returns aᵀ (no conjugation).
func Transpose[T vec.Scalar](a *Dense[T]) *Dense[T] {
	t := NewDense[T](a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			t.Set(j, i, a.At(i, j))
		}
	}
	return t
}

// ConjTranspose returns aᴴ; in the real domains it coincides with Transpose.
func ConjTranspose[T vec.Scalar](a *Dense[T]) *Dense[T] {
	t := NewDense[T](a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			t.Set(j, i, vec.Conj(a.At(i, j)))
		}
	}
	return t
}

// FrobNorm returns the Frobenius norm of a, overflow/underflow-safe via the
// scaled vec.Nrm2 (norm of per-row norms for strided views).
func FrobNorm[T vec.Scalar](a *Dense[T]) float64 {
	if a.Rows == 0 || a.Cols == 0 {
		return 0
	}
	if a.Stride == a.Cols {
		return vec.Nrm2(a.Data[:a.Rows*a.Cols])
	}
	rows := make([]float64, a.Rows)
	for i := range rows {
		rows[i] = vec.Nrm2(a.Data[i*a.Stride : i*a.Stride+a.Cols])
	}
	return vec.Nrm2(rows)
}

// MaxAbsDiff returns max |a(i,j) − b(i,j)|. The matrices must have identical
// shapes.
func MaxAbsDiff[T vec.Scalar](a, b *Dense[T]) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tile: shape mismatch in MaxAbsDiff")
	}
	var m float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			d := vec.Abs(a.At(i, j) - b.At(i, j))
			if d > m {
				m = d
			}
		}
	}
	return m
}

// ResidualQR returns ‖A − Q·R‖_F / ‖A‖_F, the scaled factorization residual.
func ResidualQR[T vec.Scalar](a, q, r *Dense[T]) float64 {
	qr := Mul(q, r)
	diff := a.Clone()
	for i := 0; i < diff.Rows; i++ {
		for j := 0; j < diff.Cols; j++ {
			diff.Set(i, j, diff.At(i, j)-qr.At(i, j))
		}
	}
	na := FrobNorm(a)
	if na == 0 {
		return FrobNorm(diff)
	}
	return FrobNorm(diff) / na
}

// OrthoResidual returns ‖QᴴQ − I‖_F, the loss of orthogonality of the
// columns of Q.
func OrthoResidual[T vec.Scalar](q *Dense[T]) float64 {
	qtq := Mul(ConjTranspose(q), q)
	for i := 0; i < qtq.Rows; i++ {
		qtq.Set(i, i, qtq.At(i, i)-1)
	}
	return FrobNorm(qtq)
}
