package tile

import (
	"fmt"
	"math/cmplx"
	"math/rand"

	"tiledqr/internal/vec"
)

// ZDense is a row-major dense matrix of complex128, mirroring Dense.
type ZDense struct {
	Rows, Cols int
	Stride     int
	Data       []complex128
}

// NewZDense allocates a zero-initialized r×c complex matrix.
func NewZDense(r, c int) *ZDense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tile: invalid dimensions %d×%d", r, c))
	}
	return &ZDense{Rows: r, Cols: c, Stride: c, Data: make([]complex128, r*c)}
}

// At returns element (i, j).
func (a *ZDense) At(i, j int) complex128 { return a.Data[i*a.Stride+j] }

// Set assigns element (i, j).
func (a *ZDense) Set(i, j int, v complex128) { a.Data[i*a.Stride+j] = v }

// Clone returns a deep copy of a with a compact stride.
func (a *ZDense) Clone() *ZDense {
	b := NewZDense(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(b.Data[i*b.Stride:i*b.Stride+b.Cols], a.Data[i*a.Stride:i*a.Stride+a.Cols])
	}
	return b
}

// View returns a view of the r×c submatrix of a with top-left corner (i, j),
// sharing storage with a.
func (a *ZDense) View(i, j, r, c int) *ZDense {
	if i < 0 || j < 0 || i+r > a.Rows || j+c > a.Cols {
		panic(fmt.Sprintf("tile: view [%d:%d, %d:%d] out of range for %d×%d", i, i+r, j, j+c, a.Rows, a.Cols))
	}
	return &ZDense{Rows: r, Cols: c, Stride: a.Stride, Data: a.Data[i*a.Stride+j:]}
}

// ZIdentity returns the n×n complex identity matrix.
func ZIdentity(n int) *ZDense {
	a := NewZDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	return a
}

// RandZDense returns an r×c matrix whose entries have independent standard
// normal real and imaginary parts, drawn from a deterministic generator.
func RandZDense(r, c int, seed int64) *ZDense {
	rng := rand.New(rand.NewSource(seed))
	a := NewZDense(r, c)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return a
}

// ZMul returns the matrix product a·b.
func ZMul(a, b *ZDense) *ZDense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tile: dimension mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewZDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ci := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		for k := 0; k < a.Cols; k++ {
			vec.ZAxpy(a.At(i, k), b.Data[k*b.Stride:k*b.Stride+b.Cols], ci)
		}
	}
	return c
}

// ZConjTranspose returns aᴴ.
func ZConjTranspose(a *ZDense) *ZDense {
	t := NewZDense(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			t.Set(j, i, cmplx.Conj(a.At(i, j)))
		}
	}
	return t
}

// ZFrobNorm returns the Frobenius norm of a, overflow/underflow-safe via
// the scaled vec.ZNrm2 (norm of per-row norms).
func ZFrobNorm(a *ZDense) float64 {
	if a.Rows == 0 || a.Cols == 0 {
		return 0
	}
	if a.Stride == a.Cols {
		return vec.ZNrm2(a.Data[:a.Rows*a.Cols])
	}
	rows := make([]float64, a.Rows)
	for i := range rows {
		rows[i] = vec.ZNrm2(a.Data[i*a.Stride : i*a.Stride+a.Cols])
	}
	return vec.Nrm2(rows)
}

// ZMaxAbsDiff returns max |a(i,j) − b(i,j)|.
func ZMaxAbsDiff(a, b *ZDense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tile: shape mismatch in ZMaxAbsDiff")
	}
	var m float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			d := cmplx.Abs(a.At(i, j) - b.At(i, j))
			if d > m {
				m = d
			}
		}
	}
	return m
}

// ZResidualQR returns ‖A − Q·R‖_F / ‖A‖_F.
func ZResidualQR(a, q, r *ZDense) float64 {
	qr := ZMul(q, r)
	diff := a.Clone()
	for i := 0; i < diff.Rows; i++ {
		for j := 0; j < diff.Cols; j++ {
			diff.Set(i, j, diff.At(i, j)-qr.At(i, j))
		}
	}
	na := ZFrobNorm(a)
	if na == 0 {
		return ZFrobNorm(diff)
	}
	return ZFrobNorm(diff) / na
}

// ZOrthoResidual returns ‖QᴴQ − I‖_F.
func ZOrthoResidual(q *ZDense) float64 {
	qtq := ZMul(ZConjTranspose(q), q)
	for i := 0; i < qtq.Rows; i++ {
		qtq.Set(i, i, qtq.At(i, i)-1)
	}
	return ZFrobNorm(qtq)
}

// ZMatrix is a tiled complex matrix, mirroring Matrix.
type ZMatrix struct {
	Grid
	Tiles []*ZDense
}

// NewZMatrix allocates a zero tiled complex matrix for the given grid.
func NewZMatrix(g Grid) *ZMatrix {
	m := &ZMatrix{Grid: g, Tiles: make([]*ZDense, g.P*g.Q)}
	for i := 0; i < g.P; i++ {
		for j := 0; j < g.Q; j++ {
			m.Tiles[i*g.Q+j] = NewZDense(g.TileRows(i), g.TileCols(j))
		}
	}
	return m
}

// Tile returns tile (i, j), 0-based.
func (m *ZMatrix) Tile(i, j int) *ZDense { return m.Tiles[i*m.Q+j] }

// ZFromDense converts a dense complex matrix to tile layout.
func ZFromDense(a *ZDense, nb int) *ZMatrix {
	g := NewGrid(a.Rows, a.Cols, nb)
	t := NewZMatrix(g)
	for ti := 0; ti < g.P; ti++ {
		for tj := 0; tj < g.Q; tj++ {
			blk := t.Tile(ti, tj)
			r0, c0 := ti*nb, tj*nb
			for r := 0; r < blk.Rows; r++ {
				copy(blk.Data[r*blk.Stride:r*blk.Stride+blk.Cols],
					a.Data[(r0+r)*a.Stride+c0:(r0+r)*a.Stride+c0+blk.Cols])
			}
		}
	}
	return t
}

// ToDense converts a tiled complex matrix back to row-major dense form.
func (m *ZMatrix) ToDense() *ZDense {
	a := NewZDense(m.M, m.N)
	for ti := 0; ti < m.P; ti++ {
		for tj := 0; tj < m.Q; tj++ {
			blk := m.Tile(ti, tj)
			r0, c0 := ti*m.NB, tj*m.NB
			for r := 0; r < blk.Rows; r++ {
				copy(a.Data[(r0+r)*a.Stride+c0:(r0+r)*a.Stride+c0+blk.Cols],
					blk.Data[r*blk.Stride:r*blk.Stride+blk.Cols])
			}
		}
	}
	return a
}

// Clone returns a deep copy of the tiled complex matrix.
func (m *ZMatrix) Clone() *ZMatrix {
	c := &ZMatrix{Grid: m.Grid, Tiles: make([]*ZDense, len(m.Tiles))}
	for i, t := range m.Tiles {
		c.Tiles[i] = t.Clone()
	}
	return c
}
