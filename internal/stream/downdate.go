package stream

import (
	"context"
	"errors"
	"fmt"
	"math"

	"tiledqr/internal/vec"
)

// errBreakdown signals that a hyperbolic rotation could not be formed
// stably: the row being removed carries too much of the triangle's mass in
// some column (1 − |ρ|² ≤ tol), so the O(k·n²) fast path gives up and the
// caller re-triangularizes the retained batches instead.
var errBreakdown = errors.New("hyperbolic downdate breakdown")

// breakdownTol is the stability floor for 1 − |ρ|² — roughly √ε of the
// scalar domain, so a downdate that would amplify rounding error by more
// than ~ε^(-1/2) is routed to the rebuild path.
func breakdownTol[T vec.Scalar]() float64 {
	var z T
	switch any(z).(type) {
	case float32, complex64:
		return 3.5e-4
	default:
		return 1.5e-8
	}
}

// Downdate removes the oldest k retained rows from the represented system:
// the inverse of Append over those rows. It requires retention
// (Config.Window != 0). The fast path annihilates each departing row
// against a copy of the resident triangle with hyperbolic rotations —
// J-orthogonal 2×2 transforms that subtract the row's outer product from
// RᴴR the way a Givens rotation would add it — and commits the copy only
// if every row succeeds, so a breakdown never corrupts resident state.
// On breakdown (or a non-finite intermediate) it falls back to
// re-triangularizing the retained batches through the ordinary merge DAG;
// only a failure inside that rebuild poisons the stream.
func (c *Core[T]) Downdate(ctx context.Context, k int) error {
	if c.err != nil {
		return c.err
	}
	if c.window == 0 {
		return fmt.Errorf("tiledqr: DowndateRows: stream retains no row history (construct it with Options.WindowRows set to a window size or RetainAll)")
	}
	if k < 1 {
		return fmt.Errorf("tiledqr: DowndateRows: must remove at least one row (k=%d)", k)
	}
	if int64(k) > c.rows {
		return fmt.Errorf("tiledqr: DowndateRows: cannot remove %d rows, only %d are represented", k, c.rows)
	}
	if err := c.downdateHyperbolic(k); err != nil {
		c.dropOldest(k)
		if rerr := c.rebuild(ctx); rerr != nil {
			return c.poisoned(rerr)
		}
		return nil
	}
	c.dropOldest(k)
	c.rows -= int64(k)
	// Re-derive the residual from ‖b‖² = ‖Qᵀb (top n)‖² + ‖residual‖²:
	// the incremental sum no longer applies once rows leave the system.
	if c.nrhs > 0 {
		qn := 0.0
		for _, v := range c.qtb {
			qn += vec.Abs2(v)
		}
		c.resid2 = math.Max(0, c.bnorm2-qn)
	}
	return nil
}

// downdateHyperbolic removes the oldest k retained rows by hyperbolic
// rotations against packed copies of R and Qᵀb, committing only on
// success. Returns errBreakdown (leaving resident state untouched) when
// any rotation is unstable.
func (c *Core[T]) downdateHyperbolic(k int) error {
	n, nrhs := c.n, c.nrhs
	c.dR = grow(c.dR, n*n)
	c.CopyR(c.dR, n)
	if nrhs > 0 {
		c.dQTB = grow(c.dQTB, n*nrhs)
		copy(c.dQTB, c.qtb)
		c.brow = grow(c.brow, nrhs)
	}
	c.zrow = grow(c.zrow, n)

	rem := k
	for bi := 0; bi < len(c.hist) && rem > 0; bi++ {
		hb := &c.hist[bi]
		rows := min(rem, hb.rows)
		f := vec.FromParts[T](hb.scale, 0)
		for i := 0; i < rows; i++ {
			// The retained copy is unweighted; the row the triangle
			// currently represents carries the batch's decayed scale.
			src := hb.data[i*n : (i+1)*n]
			for j := range c.zrow {
				c.zrow[j] = f * src[j]
			}
			for j := 0; j < nrhs; j++ {
				c.brow[j] = f * hb.rhs[i*nrhs+j]
			}
			if err := c.removeRow(); err != nil {
				return err
			}
		}
		rem -= rows
	}

	c.scatterR(c.dR, n)
	if nrhs > 0 {
		copy(c.qtb, c.dQTB)
	}
	return nil
}

// removeRow annihilates the row in zrow (RHS in brow) against the packed
// triangle dR/dQTB with one hyperbolic rotation per column. For column k
// the rotation is H = [[c, −s̄], [−s, c]] with c = 1/√(1−|ρ|²), s = c·ρ,
// ρ = z_k/r_kk; H is J-orthogonal (HᴴJH = J, J = diag(1,−1)), so applying
// it to the stacked rows [R_k; z] preserves RᴴR − zᴴz while zeroing z_k.
// The diagonal of R stays real and keeps its sign (r̃_kk = r_kk·√(1−|ρ|²)).
func (c *Core[T]) removeRow() error {
	n, nrhs := c.n, c.nrhs
	tol := breakdownTol[T]()
	for k := 0; k < n; k++ {
		zk := c.zrow[k]
		if vec.Abs2(zk) == 0 {
			continue
		}
		rho := zk / c.dR[k*n+k]
		t := 1 - vec.Abs2(rho)
		// NaN (from a zero or non-finite diagonal) fails this comparison
		// too, which is exactly the conservative behavior we want.
		if !(t > tol) {
			return errBreakdown
		}
		ch := vec.FromParts[T](1/math.Sqrt(t), 0)
		s := ch * rho
		sbar := vec.Conj(s)
		for j := k; j < n; j++ {
			rv, zv := c.dR[k*n+j], c.zrow[j]
			c.dR[k*n+j] = ch*rv - sbar*zv
			c.zrow[j] = ch*zv - s*rv
		}
		c.zrow[k] = 0 // exact by construction; clear rounding residue
		for j := 0; j < nrhs; j++ {
			dv, bv := c.dQTB[k*nrhs+j], c.brow[j]
			c.dQTB[k*nrhs+j] = ch*dv - sbar*bv
			c.brow[j] = ch*bv - s*dv
		}
	}
	return nil
}

// dropOldest removes the oldest k rows from the retained history and their
// weight from the represented ‖b‖². Partially-consumed batches keep their
// tail by reslicing; the batch's backing array is released once the window
// slides past it entirely.
func (c *Core[T]) dropOldest(k int) {
	n, nrhs := c.n, c.nrhs
	for k > 0 && len(c.hist) > 0 {
		hb := &c.hist[0]
		drop := min(k, hb.rows)
		if nrhs > 0 {
			w := hb.scale * hb.scale
			for _, v := range hb.rhs[:drop*nrhs] {
				c.bnorm2 -= w * vec.Abs2(v)
			}
		}
		if drop == hb.rows {
			c.hist = c.hist[1:]
		} else {
			hb.data = hb.data[drop*n:]
			if hb.rhs != nil {
				hb.rhs = hb.rhs[drop*nrhs:]
			}
			hb.rows -= drop
		}
		k -= drop
	}
	if c.bnorm2 < 0 {
		c.bnorm2 = 0
	}
}

// rebuild re-triangularizes the retained history from scratch through the
// ordinary merge DAG: the downdate fallback when hyperbolic rotations
// break down. Each batch re-merges at its accumulated forgetting weight.
func (c *Core[T]) rebuild(ctx context.Context) error {
	for i := range c.res {
		for j := range c.res[i].Data {
			c.res[i].Data[j] = 0
		}
	}
	for j := range c.qtb {
		c.qtb[j] = 0
	}
	c.rows, c.resid2, c.bnorm2 = 0, 0, 0
	for _, hb := range c.hist {
		if hb.rows == 0 {
			continue
		}
		var rhs []T
		ldr := 0
		if c.nrhs > 0 {
			rhs, ldr = hb.rhs, c.nrhs
		}
		if err := c.merge(ctx, hb.rows, hb.data, c.n, rhs, ldr, hb.scale); err != nil {
			return err
		}
	}
	return nil
}
