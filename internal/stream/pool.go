package stream

import (
	"sync"

	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
)

// staging is the per-append merge scratch: the tiled copy of the in-flight
// batch, the T factor tables and arena its merge DAG demands, and the RHS
// staging rows. None of it outlives one merge, so it is borrowed from a
// package-level pool shared by every stream of the same scalar domain:
// a fleet of thousands of mostly-idle streams pays for its resident
// triangles and windows, not for per-stream append scratch.
type staging[T vec.Scalar] struct {
	g      tile.Grid
	tiles  []tile.Dense[T] // tiled batch views into arena
	tg     [][]T           // GEQRT T factors by stacked tile index
	t2     [][]T           // TSQRT/TTQRT T factors by stacked tile index
	arena  []T             // backing storage for the tiled batch copy
	tArena []T             // backing storage for the T factors
	rhs    []T             // batch RHS staging
}

// stagingPools holds one sync.Pool per scalar domain. Package-level
// variables cannot be generic, so the pool is picked by a type switch on
// the zero value (mirroring the engine's workspace slotting).
var stagingPools [4]sync.Pool

func poolIdx[T vec.Scalar]() int {
	var z T
	switch any(z).(type) {
	case float64:
		return 0
	case complex128:
		return 1
	case float32:
		return 2
	default: // complex64
		return 3
	}
}

func getStaging[T vec.Scalar]() *staging[T] {
	if v := stagingPools[poolIdx[T]()].Get(); v != nil {
		return v.(*staging[T])
	}
	return &staging[T]{}
}

func putStaging[T vec.Scalar](st *staging[T]) {
	stagingPools[poolIdx[T]()].Put(st)
}
