// Package stream is the reduction core of the streaming TSQR subsystem: it
// maintains a resident n×n upper triangular factor (and optionally Qᵀb for
// online least squares) while row batches are appended, in O(n² + batch)
// memory regardless of how many rows have been ingested.
//
// Each appended batch is tiled, panel-factored with GEQRT, and merged into
// the resident triangle through the triangle-on-triangle kernels of the
// paper (TPQRT/TPMQRT with l = m) along the task DAG of
// core.BuildStreamDAG, executed by internal/sched with the same
// critical-path priorities as a one-shot factorization. The package is
// generic over all four scalar domains and dispatches tasks through the
// shared engine.Source loop — the Core's only jobs are batch staging, the
// stacked tile addressing, and the Qᵀb/residual bookkeeping.
package stream

import (
	"context"
	"fmt"
	"math"

	"tiledqr/internal/core"
	"tiledqr/internal/engine"
	"tiledqr/internal/kernel"
	"tiledqr/internal/sched"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
	"tiledqr/internal/work"
)

// seqTaskThreshold is the DAG size below which a batch merge runs on the
// scheduler's deterministic sequential path: tiny merges (a one-tile-row
// batch into a narrow triangle) are dominated by goroutine wake-up cost.
const seqTaskThreshold = 64

// Core is the domain-generic streaming state: the resident triangle, the
// retained Qᵀb block, and cached merge plans keyed by batch tile height.
// Kernel workspaces live with the executing workers (engine.WorkerWS), not
// here. All retained storage is O(n² + batch); nothing grows with the
// number of rows ingested, and steady-state appends of a repeated batch
// shape reuse every buffer.
type Core[T vec.Scalar] struct {
	n, nb, ib int
	env       engine.Env
	kernels   core.Kernels
	check     bool // Options.CheckHealth: validate batches, fail fast on breakdown

	// err is the stream's sticky failure: a merge that errors, panics, or is
	// cancelled mid-DAG leaves the resident triangle (and Qᵀb) partially
	// transformed, so every later operation refuses with the original cause.
	// There is no recovery path — a poisoned stream must be replaced.
	err error

	grid tile.Grid       // q×q resident grid over the n×n triangle
	res  []tile.Dense[T] // row-major q×q; only tiles with i ≤ k are allocated

	qtb  []T // top n rows of Qᵀb, row-major with stride nrhs
	nrhs int

	rows   int64   // total rows ingested
	resid2 float64 // Σ|discarded Qᵀb components|² = ‖b − A·X‖_F² so far

	plans map[int]*sched.Plan // merge execution plans keyed by batch tile rows pb
	rws   []T                 // replay scratch for the Qᵀb fold

	// Grow-only staging reused across appends, bounded by the largest batch
	// seen: the tiled batch copy, its T factors, and the RHS block. cur
	// points at bv while a merge is in flight (the Source methods need it).
	bv         batchView[T]
	cur        *batchView[T]
	arena      []T // batch tile payloads (r·n scalars)
	tArena     []T // T-factor payloads
	rhsScratch []T // batch RHS staging

	rwork []T // contiguous R for back-substitution
	xcol  []T // back-substitution column scratch
}

// NewCore creates the streaming state for an n-column system. env selects
// where merge DAGs execute (shared runtime, per-call pool, or inline).
// check enables batch input validation and the breakdown fail-fast.
func NewCore[T vec.Scalar](n, nb, ib int, kernels core.Kernels, env engine.Env, check bool) (*Core[T], error) {
	if n < 1 {
		return nil, fmt.Errorf("tiledqr: stream: need at least one column (n=%d)", n)
	}
	if nb < 1 || ib < 1 {
		return nil, fmt.Errorf("tiledqr: stream: invalid nb=%d ib=%d", nb, ib)
	}
	g := tile.NewGrid(n, n, nb)
	c := &Core[T]{
		n: n, nb: nb, ib: ib, env: env, kernels: kernels, check: check,
		grid:  g,
		res:   make([]tile.Dense[T], g.Q*g.Q),
		plans: make(map[int]*sched.Plan),
		rws:   make([]T, kernel.WorkLen(min(nb, n), ib)),
	}
	for i := 0; i < g.Q; i++ {
		for k := i; k < g.Q; k++ {
			r, cc := g.TileRows(i), g.TileCols(k)
			c.res[i*g.Q+k] = tile.Dense[T]{Rows: r, Cols: cc, Stride: cc, Data: make([]T, r*cc)}
		}
	}
	return c, nil
}

// N returns the column count of the streamed system.
func (c *Core[T]) N() int { return c.n }

// Err returns the stream's sticky failure (nil while healthy). Once a merge
// errors, panics, or is cancelled mid-DAG, the retained state is partially
// transformed: every later append and result accessor fails with this cause,
// and there is no recovery path — a poisoned stream must be replaced.
func (c *Core[T]) Err() error { return c.err }

// poisoned records a failure that left retained state partially transformed.
func (c *Core[T]) poisoned(err error) error {
	c.err = fmt.Errorf("tiledqr: stream failed (a previous append did not complete: %w); results are unavailable and further appends are unsupported", err)
	return c.err
}

// Rows returns the total number of rows ingested so far.
func (c *Core[T]) Rows() int64 { return c.rows }

// NRHS returns the number of tracked right-hand sides (0 when none).
func (c *Core[T]) NRHS() int { return c.nrhs }

// ResidualNorm returns ‖b − A·X‖_F of the least-squares system ingested so
// far, summed over all tracked right-hand-side columns: the norm of the
// Qᵀb components rotated out of the retained top block. Zero when no
// right-hand side is tracked.
func (c *Core[T]) ResidualNorm() float64 { return math.Sqrt(c.resid2) }

// Footprint returns the number of scalars retained across appends (resident
// tiles, Qᵀb, workspaces, staging arenas). The memory-bound test asserts it
// is independent of the number of rows ingested.
func (c *Core[T]) Footprint() int {
	total := len(c.qtb) + cap(c.arena) + cap(c.tArena) + cap(c.rhsScratch) +
		len(c.rwork) + len(c.xcol) + len(c.rws)
	for i := range c.res {
		total += len(c.res[i].Data)
	}
	return total
}

// batchView is the per-append staging: the tiled batch and the T factors of
// its merge tasks, indexed over the stacked row space. Its slices view the
// Core's grow-only arenas.
type batchView[T vec.Scalar] struct {
	g      tile.Grid
	tiles  []tile.Dense[T]
	tg, t2 [][]T
}

// grow returns buf resliced to n elements, reallocating only when the
// capacity seen so far is exceeded.
func grow[S any](buf []S, n int) []S {
	if cap(buf) < n {
		return make([]S, n)
	}
	return buf[:n]
}

// tileBatch copies an r×n batch (row stride ld) into tile layout, reusing
// the arena from previous appends.
func (c *Core[T]) tileBatch(r int, data []T, ld int) *batchView[T] {
	g := tile.NewGrid(r, c.n, c.nb)
	bv := &c.bv
	bv.g = g
	bv.tiles = grow(bv.tiles, g.P*g.Q)
	c.arena = grow(c.arena, r*c.n)
	off := 0
	for ti := 0; ti < g.P; ti++ {
		for tk := 0; tk < g.Q; tk++ {
			tr, tc := g.TileRows(ti), g.TileCols(tk)
			t := tile.Dense[T]{Rows: tr, Cols: tc, Stride: tc, Data: c.arena[off : off+tr*tc]}
			off += tr * tc
			r0, c0 := ti*c.nb, tk*c.nb
			for rr := 0; rr < tr; rr++ {
				copy(t.Data[rr*tc:rr*tc+tc], data[(r0+rr)*ld+c0:(r0+rr)*ld+c0+tc])
			}
			bv.tiles[ti*g.Q+tk] = t
		}
	}
	return bv
}

// plan returns the cached merge execution plan for a pb-tile-row batch.
// The cache is keyed by batch height only — a handful of entries for any
// realistic workload, never dependent on the number of batches ingested.
func (c *Core[T]) plan(pb int) *sched.Plan {
	if p, ok := c.plans[pb]; ok {
		return p
	}
	p := sched.NewPlan(core.BuildStreamDAG(c.grid.Q, pb, c.kernels))
	c.plans[pb] = p
	return p
}

// TileAt implements engine.Source with the stacked addressing: tile rows
// 1..q are the resident triangle, rows q+1..q+pb the in-flight batch.
func (c *Core[T]) TileAt(i, k int) *tile.Dense[T] {
	if i <= c.grid.Q {
		return &c.res[(i-1)*c.grid.Q+(k-1)]
	}
	return &c.cur.tiles[(i-c.grid.Q-1)*c.grid.Q+(k-1)]
}

// TFactor returns the GEQRT T-factor storage of stacked tile (i, k).
func (c *Core[T]) TFactor(i, k int) []T { return c.cur.tg[c.tidx(i, k)] }

// T2Factor returns the TSQRT/TTQRT T-factor storage of stacked tile (i, k).
func (c *Core[T]) T2Factor(i, k int) []T { return c.cur.t2[c.tidx(i, k)] }

// KCols returns the column count of tile column k (1-based).
func (c *Core[T]) KCols(k int) int { return c.grid.TileCols(k - 1) }

func (c *Core[T]) tidx(i, k int) int { return (i-1)*c.grid.Q + (k - 1) }

// allocT carves the per-task T factor storage demanded by a merge DAG out
// of the reused arena. Only batch rows ever carry factors (the resident
// triangle is never re-factored), so this is O(batch · n · ib/nb). No
// zeroing is needed: every T position a kernel reads (the upper triangle of
// each panel block) is written by the factor kernel of the same append
// before any applier reads it.
func (c *Core[T]) allocT(d *core.DAG, bv *batchView[T]) {
	p := c.grid.Q + bv.g.P
	bv.tg = grow(bv.tg, p*c.grid.Q)
	bv.t2 = grow(bv.t2, p*c.grid.Q)
	need := 0
	for _, t := range d.Tasks {
		switch t.Kind {
		case core.KGEQRT, core.KTSQRT, core.KTTQRT:
			need += c.ib * c.grid.TileCols(t.K-1)
		}
	}
	c.tArena = grow(c.tArena, need)
	off := 0
	carve := func(k int) []T {
		n := c.ib * c.grid.TileCols(k-1)
		s := c.tArena[off : off+n]
		off += n
		return s
	}
	for _, t := range d.Tasks {
		switch t.Kind {
		case core.KGEQRT:
			bv.tg[c.tidx(t.I, t.K)] = carve(t.K)
		case core.KTSQRT, core.KTTQRT:
			bv.t2[c.tidx(t.I, t.K)] = carve(t.K)
		}
	}
}

// Append merges an r×n row batch (row stride ld) into the resident
// triangle, and, when the stream tracks right-hand sides, folds the
// matching r×nrhs RHS rows (stride ldr) into the retained Qᵀb block. The
// caller's slices are never modified. rhs must be nil exactly when the
// stream tracks no RHS; tracking is decided by the first append. Append is
// not safe for concurrent use. A non-nil ctx cancels the merge: validation
// failures leave the stream intact, but a cancellation (or task failure)
// once the merge DAG is running poisons the stream permanently.
func (c *Core[T]) Append(ctx context.Context, r int, data []T, ld int, rhs []T, ldr, nrhs int) error {
	if c.err != nil {
		return c.err
	}
	if r < 1 {
		return fmt.Errorf("tiledqr: stream: batch must have at least one row")
	}
	if rhs == nil && c.nrhs > 0 {
		return fmt.Errorf("tiledqr: stream: this stream tracks %d right-hand side(s); use AppendRHS", c.nrhs)
	}
	if rhs != nil {
		if nrhs < 1 {
			return fmt.Errorf("tiledqr: stream: right-hand side must have at least one column")
		}
		// Input validation precedes every retained-state mutation: a
		// rejected batch leaves the stream healthy and serving results.
		if c.check {
			if err := engine.CheckFinite("appended right-hand side",
				&tile.Dense[T]{Rows: r, Cols: nrhs, Stride: ldr, Data: rhs}); err != nil {
				return err
			}
		}
		switch {
		case c.nrhs == 0 && c.rows > 0:
			return fmt.Errorf("tiledqr: stream: right-hand sides must be supplied from the first batch onwards")
		case c.nrhs == 0:
			c.nrhs = nrhs
			c.qtb = make([]T, c.n*nrhs)
		case nrhs != c.nrhs:
			return fmt.Errorf("tiledqr: stream: right-hand side has %d columns, want %d", nrhs, c.nrhs)
		}
	}
	if c.check {
		if err := engine.CheckFinite("appended batch",
			&tile.Dense[T]{Rows: r, Cols: c.n, Stride: ld, Data: data}); err != nil {
			return err
		}
	}

	bv := c.tileBatch(r, data, ld)
	p := c.plan(bv.g.P)
	d := p.DAG()
	c.allocT(d, bv)
	c.cur = bv
	defer func() { c.cur = nil }()
	env := c.env
	if d.NumTasks() < seqTaskThreshold {
		// Tiny merges are dominated by cross-goroutine wake-up cost: run
		// them inline on the appending goroutine.
		env = engine.Env{Workers: 1}
	}
	if _, err := engine.ExecTasks[T](c, p, env,
		engine.RunOpts{Ctx: ctx, Check: c.check}, c.ib, len(c.rws)); err != nil {
		// The merge DAG mutates the resident triangle in place, so any
		// failure past this point leaves it partially transformed: poison.
		return c.poisoned(err)
	}
	if c.nrhs > 0 {
		if err := c.applyRHS(ctx, d, r, rhs, ldr); err != nil {
			return c.poisoned(err)
		}
	}
	c.rows += int64(r)
	return nil
}

// applyRHS replays the merge transformations over the stacked right-hand
// side [qtb; batch rhs] via the shared engine.Replay (task IDs are
// topological). The batch rows' leftover components are exactly the Qᵀb
// coordinates orthogonal to the retained top block; their squared norm
// accumulates into the running least-squares residual.
func (c *Core[T]) applyRHS(ctx context.Context, d *core.DAG, r int, rhs []T, ldr int) error {
	nrhs := c.nrhs
	c.rhsScratch = grow(c.rhsScratch, r*nrhs)
	scratch := c.rhsScratch
	for i := 0; i < r; i++ {
		copy(scratch[i*nrhs:i*nrhs+nrhs], rhs[i*ldr:i*ldr+nrhs])
	}
	// row returns the stacked RHS rows of tile row i.
	row := func(i int) ([]T, int) {
		if i <= c.grid.Q {
			return c.qtb[(i-1)*c.nb*nrhs:], nrhs
		}
		return scratch[(i-c.grid.Q-1)*c.nb*nrhs:], nrhs
	}
	if err := engine.Replay[T](ctx, c, d, true, row, nrhs, c.ib, c.rws); err != nil {
		return err
	}
	for _, v := range scratch {
		c.resid2 += vec.Abs2(v)
	}
	return nil
}

// CopyR writes the resident upper triangular factor into dst (n×n, row
// stride ld ≥ n). Only the upper triangle is written; callers that need
// explicit zeros below the diagonal must start from a zeroed dst.
func (c *Core[T]) CopyR(dst []T, ld int) {
	q, nb := c.grid.Q, c.nb
	for ti := 0; ti < q; ti++ {
		for tk := ti; tk < q; tk++ {
			t := &c.res[ti*q+tk]
			r0, c0 := ti*nb, tk*nb
			for rr := 0; rr < t.Rows; rr++ {
				start := 0
				if ti == tk {
					start = rr // diagonal tile: skip the zero lower part
				}
				copy(dst[(r0+rr)*ld+c0+start:(r0+rr)*ld+c0+t.Cols],
					t.Data[rr*t.Stride+start:rr*t.Stride+t.Cols])
			}
		}
	}
}

// CopyQTB writes the retained top n rows of Qᵀb into dst (n×nrhs, row
// stride ld ≥ nrhs).
func (c *Core[T]) CopyQTB(dst []T, ld int) {
	for i := 0; i < c.n; i++ {
		copy(dst[i*ld:i*ld+c.nrhs], c.qtb[i*c.nrhs:(i+1)*c.nrhs])
	}
}

// SolveLS back-substitutes the resident triangle against the retained Qᵀb,
// writing the n×nrhs least-squares solution to x (row stride ldx).
func (c *Core[T]) SolveLS(x []T, ldx int) error {
	if c.err != nil {
		return c.err
	}
	if c.nrhs == 0 {
		return fmt.Errorf("tiledqr: SolveLS: stream tracks no right-hand side (ingest batches with AppendRHS)")
	}
	if c.rows < int64(c.n) {
		return fmt.Errorf("tiledqr: SolveLS: needs at least n = %d ingested rows (have %d)", c.n, c.rows)
	}
	if c.rwork == nil {
		c.rwork = make([]T, c.n*c.n)
		c.xcol = make([]T, c.n)
	}
	c.CopyR(c.rwork, c.n)
	return work.SolveUpper(c.n, c.nrhs, c.rwork, c.n, c.qtb, c.nrhs, x, ldx, c.xcol)
}
