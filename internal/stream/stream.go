// Package stream is the reduction core of the streaming TSQR subsystem: it
// maintains a resident n×n upper triangular factor (and optionally Qᵀb for
// online least squares) while row batches are appended, in O(n² + batch)
// memory regardless of how many rows have been ingested.
//
// Each appended batch is tiled, panel-factored with GEQRT, and merged into
// the resident triangle through the triangle-on-triangle kernels of the
// paper (TPQRT/TPMQRT with l = m) along the task DAG of
// core.BuildStreamDAG, executed by internal/sched with the same
// critical-path priorities as a one-shot factorization. The package is
// generic over all four scalar domains and dispatches tasks through the
// shared engine.Source loop — the Core's only jobs are batch staging, the
// stacked tile addressing, and the Qᵀb/residual bookkeeping.
//
// Beyond pure accretion the Core supports revocation: with retention
// enabled (Config.Window) appended batches are kept in a compact row
// history, rows can be removed again by a hyperbolic downdate of the
// resident triangle (see downdate.go), a sliding window evicts the oldest
// rows automatically, and an exponential forgetting factor decays the
// weight of old rows geometrically per append.
package stream

import (
	"context"
	"fmt"
	"math"

	"tiledqr/internal/core"
	"tiledqr/internal/engine"
	"tiledqr/internal/kernel"
	"tiledqr/internal/sched"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
	"tiledqr/internal/work"
)

// seqTaskThreshold is the DAG size below which a batch merge runs on the
// scheduler's deterministic sequential path: tiny merges (a one-tile-row
// batch into a narrow triangle) are dominated by goroutine wake-up cost.
const seqTaskThreshold = 64

// RetainAll configures Config.Window to retain the full row history without
// a sliding window: rows are kept (and memory grows with them) until the
// caller removes them with Downdate.
const RetainAll = -1

// Config carries the streaming parameters beyond the column count.
type Config struct {
	NB, IB  int
	Kernels core.Kernels
	Env     engine.Env
	Check   bool // validate batches, fail fast on breakdown

	// Window selects the retention policy: 0 retains nothing (appends are
	// irrevocable, the historical behavior), a positive value keeps a
	// sliding window of the most recent Window rows (older rows are
	// downdated away automatically after each append), and RetainAll keeps
	// every row for manual Downdate calls.
	Window int
	// Forget is the exponential forgetting factor λ ∈ (0, 1]: before each
	// append the resident R and Qᵀb are scaled by √λ, so a row appended k
	// batches ago carries weight λ^(k/2). Zero (or 1) disables forgetting.
	Forget float64
}

// histBatch is one retained row batch: a compact copy of its rows (and RHS
// rows when the stream tracks them) plus the forgetting weight accumulated
// since it was appended. Downdating consumes batches head-first.
type histBatch[T vec.Scalar] struct {
	data  []T // rows×n, stride n
	rhs   []T // rows×nrhs, stride nrhs (nil when no RHS is tracked)
	rows  int
	scale float64
}

// Core is the domain-generic streaming state: the resident triangle, the
// retained Qᵀb block, the optional row history, and cached merge plans
// keyed by batch tile height. Kernel workspaces live with the executing
// workers (engine.WorkerWS), and per-append staging (the tiled batch copy
// and its T factors) is borrowed from a package-level pool shared by every
// stream, so the idle footprint of one Core is O(n² + window): the
// triangle, Qᵀb, solve/downdate scratch, and the retained rows.
type Core[T vec.Scalar] struct {
	n, nb, ib int
	env       engine.Env
	kernels   core.Kernels
	check     bool // Options.CheckHealth: validate batches, fail fast on breakdown

	window int     // retention policy (see Config.Window)
	forget float64 // per-append forgetting factor λ (0 = off)

	// err is the stream's sticky failure: a merge that errors, panics, or is
	// cancelled mid-DAG leaves the resident triangle (and Qᵀb) partially
	// transformed, so every later operation refuses with the original cause.
	// There is no recovery path — a poisoned stream must be replaced.
	err error

	grid tile.Grid       // q×q resident grid over the n×n triangle
	res  []tile.Dense[T] // row-major q×q; only tiles with i ≤ k are allocated

	qtb  []T // top n rows of Qᵀb, row-major with stride nrhs
	nrhs int

	rows   int64   // rows currently represented (ingested − downdated)
	resid2 float64 // Σ|discarded Qᵀb components|² = ‖b − A·X‖_F² of the represented system
	bnorm2 float64 // Σ scale²·‖rhs rows‖² of the represented system

	hist []histBatch[T] // retained batches, oldest first (retention only)

	plans map[int]*sched.Plan // merge execution plans keyed by batch tile rows pb
	rws   []T                 // replay scratch for the Qᵀb fold

	// cur points at the pooled staging while a merge is in flight (the
	// Source methods need it).
	cur *staging[T]

	rwork []T // contiguous R for back-substitution
	xcol  []T // back-substitution column scratch

	// Downdate scratch, allocated on first use: the packed triangle and Qᵀb
	// copies rotations run on (committed only if every removal succeeds),
	// and the row being annihilated.
	dR, dQTB, zrow, brow []T
}

// NewCore creates the streaming state for an n-column system. cfg.Env
// selects where merge DAGs execute (shared runtime, per-call pool, or
// inline).
func NewCore[T vec.Scalar](n int, cfg Config) (*Core[T], error) {
	if n < 1 {
		return nil, fmt.Errorf("tiledqr: stream: need at least one column (n=%d)", n)
	}
	if cfg.NB < 1 || cfg.IB < 1 {
		return nil, fmt.Errorf("tiledqr: stream: invalid nb=%d ib=%d", cfg.NB, cfg.IB)
	}
	if cfg.Window < RetainAll {
		return nil, fmt.Errorf("tiledqr: stream: invalid window %d", cfg.Window)
	}
	if cfg.Forget != 0 && (cfg.Forget <= 0 || cfg.Forget > 1) {
		return nil, fmt.Errorf("tiledqr: stream: forgetting factor %g outside (0, 1]", cfg.Forget)
	}
	if cfg.Forget == 1 {
		cfg.Forget = 0 // λ = 1 is a no-op; skip the scaling pass entirely
	}
	g := tile.NewGrid(n, n, cfg.NB)
	c := &Core[T]{
		n: n, nb: cfg.NB, ib: cfg.IB, env: cfg.Env, kernels: cfg.Kernels, check: cfg.Check,
		window: cfg.Window, forget: cfg.Forget,
		grid:  g,
		res:   make([]tile.Dense[T], g.Q*g.Q),
		plans: make(map[int]*sched.Plan),
		rws:   make([]T, kernel.WorkLen(min(cfg.NB, n), cfg.IB)),
	}
	for i := 0; i < g.Q; i++ {
		for k := i; k < g.Q; k++ {
			r, cc := g.TileRows(i), g.TileCols(k)
			c.res[i*g.Q+k] = tile.Dense[T]{Rows: r, Cols: cc, Stride: cc, Data: make([]T, r*cc)}
		}
	}
	return c, nil
}

// N returns the column count of the streamed system.
func (c *Core[T]) N() int { return c.n }

// Window returns the retention policy (see Config.Window).
func (c *Core[T]) Window() int { return c.window }

// Err returns the stream's sticky failure (nil while healthy). Once a merge
// errors, panics, or is cancelled mid-DAG, the retained state is partially
// transformed: every later append and result accessor fails with this cause,
// and there is no recovery path — a poisoned stream must be replaced.
func (c *Core[T]) Err() error { return c.err }

// poisoned records a failure that left retained state partially transformed.
func (c *Core[T]) poisoned(err error) error {
	c.err = fmt.Errorf("tiledqr: stream failed (a previous operation did not complete: %w); results are unavailable and further appends are unsupported", err)
	return c.err
}

// Rows returns the number of rows the resident factorization currently
// represents: every row ingested minus every row downdated away.
func (c *Core[T]) Rows() int64 { return c.rows }

// NRHS returns the number of tracked right-hand sides (0 when none).
func (c *Core[T]) NRHS() int { return c.nrhs }

// ResidualNorm returns ‖b − A·X‖_F of the least-squares system currently
// represented, summed over all tracked right-hand-side columns: the norm of
// the Qᵀb components rotated out of the retained top block. Zero when no
// right-hand side is tracked.
func (c *Core[T]) ResidualNorm() float64 { return math.Sqrt(c.resid2) }

// Footprint returns the number of scalars retained across appends: resident
// tiles, Qᵀb, solve and downdate scratch, and the row history. With a
// sliding window the total is O(n² + window); without retention it is
// O(n²) plus nothing that grows with rows ingested (per-append staging is
// pooled across streams, not owned here).
func (c *Core[T]) Footprint() int {
	total := len(c.qtb) + len(c.rwork) + len(c.xcol) + len(c.rws) +
		len(c.dR) + len(c.dQTB) + len(c.zrow) + len(c.brow)
	for i := range c.res {
		total += len(c.res[i].Data)
	}
	for i := range c.hist {
		total += len(c.hist[i].data) + len(c.hist[i].rhs)
	}
	return total
}

// grow returns buf resliced to n elements, reallocating only when the
// capacity seen so far is exceeded.
func grow[S any](buf []S, n int) []S {
	if cap(buf) < n {
		return make([]S, n)
	}
	return buf[:n]
}

// tileBatch copies an r×n batch (row stride ld), scaled by scale, into tile
// layout in the pooled staging.
func (c *Core[T]) tileBatch(st *staging[T], r int, data []T, ld int, scale float64) {
	g := tile.NewGrid(r, c.n, c.nb)
	st.g = g
	st.tiles = grow(st.tiles, g.P*g.Q)
	st.arena = grow(st.arena, r*c.n)
	f := vec.FromParts[T](scale, 0)
	off := 0
	for ti := 0; ti < g.P; ti++ {
		for tk := 0; tk < g.Q; tk++ {
			tr, tc := g.TileRows(ti), g.TileCols(tk)
			t := tile.Dense[T]{Rows: tr, Cols: tc, Stride: tc, Data: st.arena[off : off+tr*tc]}
			off += tr * tc
			r0, c0 := ti*c.nb, tk*c.nb
			for rr := 0; rr < tr; rr++ {
				dst := t.Data[rr*tc : rr*tc+tc]
				src := data[(r0+rr)*ld+c0 : (r0+rr)*ld+c0+tc]
				if scale == 1 {
					copy(dst, src)
				} else {
					for j := range dst {
						dst[j] = f * src[j]
					}
				}
			}
			st.tiles[ti*g.Q+tk] = t
		}
	}
}

// plan returns the cached merge execution plan for a pb-tile-row batch.
// The cache is keyed by batch height only — a handful of entries for any
// realistic workload, never dependent on the number of batches ingested.
func (c *Core[T]) plan(pb int) *sched.Plan {
	if p, ok := c.plans[pb]; ok {
		return p
	}
	p := sched.NewPlan(core.BuildStreamDAG(c.grid.Q, pb, c.kernels))
	c.plans[pb] = p
	return p
}

// TileAt implements engine.Source with the stacked addressing: tile rows
// 1..q are the resident triangle, rows q+1..q+pb the in-flight batch.
func (c *Core[T]) TileAt(i, k int) *tile.Dense[T] {
	if i <= c.grid.Q {
		return &c.res[(i-1)*c.grid.Q+(k-1)]
	}
	return &c.cur.tiles[(i-c.grid.Q-1)*c.grid.Q+(k-1)]
}

// TFactor returns the GEQRT T-factor storage of stacked tile (i, k).
func (c *Core[T]) TFactor(i, k int) []T { return c.cur.tg[c.tidx(i, k)] }

// T2Factor returns the TSQRT/TTQRT T-factor storage of stacked tile (i, k).
func (c *Core[T]) T2Factor(i, k int) []T { return c.cur.t2[c.tidx(i, k)] }

// KCols returns the column count of tile column k (1-based).
func (c *Core[T]) KCols(k int) int { return c.grid.TileCols(k - 1) }

func (c *Core[T]) tidx(i, k int) int { return (i-1)*c.grid.Q + (k - 1) }

// allocT carves the per-task T factor storage demanded by a merge DAG out
// of the pooled arena. Only batch rows ever carry factors (the resident
// triangle is never re-factored), so this is O(batch · n · ib/nb). No
// zeroing is needed: every T position a kernel reads (the upper triangle of
// each panel block) is written by the factor kernel of the same append
// before any applier reads it.
func (c *Core[T]) allocT(d *core.DAG, st *staging[T]) {
	p := c.grid.Q + st.g.P
	st.tg = grow(st.tg, p*c.grid.Q)
	st.t2 = grow(st.t2, p*c.grid.Q)
	need := 0
	for _, t := range d.Tasks {
		switch t.Kind {
		case core.KGEQRT, core.KTSQRT, core.KTTQRT:
			need += c.ib * c.grid.TileCols(t.K-1)
		}
	}
	st.tArena = grow(st.tArena, need)
	off := 0
	carve := func(k int) []T {
		n := c.ib * c.grid.TileCols(k-1)
		s := st.tArena[off : off+n]
		off += n
		return s
	}
	for _, t := range d.Tasks {
		switch t.Kind {
		case core.KGEQRT:
			st.tg[c.tidx(t.I, t.K)] = carve(t.K)
		case core.KTSQRT, core.KTTQRT:
			st.t2[c.tidx(t.I, t.K)] = carve(t.K)
		}
	}
}

// Append merges an r×n row batch (row stride ld) into the resident
// triangle, and, when the stream tracks right-hand sides, folds the
// matching r×nrhs RHS rows (stride ldr) into the retained Qᵀb block. The
// caller's slices are never modified. rhs must be nil exactly when the
// stream tracks no RHS; tracking is decided by the first append. Append is
// not safe for concurrent use. A non-nil ctx cancels the merge: validation
// failures leave the stream intact, but a cancellation (or task failure)
// once the merge DAG is running poisons the stream permanently.
//
// Under a forgetting factor the resident state is decayed by √λ first;
// with retention on, the batch is recorded in the row history, and a
// sliding window then downdates the oldest rows beyond the window.
func (c *Core[T]) Append(ctx context.Context, r int, data []T, ld int, rhs []T, ldr, nrhs int) error {
	if c.err != nil {
		return c.err
	}
	if r < 1 {
		return fmt.Errorf("tiledqr: stream: batch must have at least one row")
	}
	if rhs == nil && c.nrhs > 0 {
		return fmt.Errorf("tiledqr: stream: this stream tracks %d right-hand side(s); use AppendRHS", c.nrhs)
	}
	if rhs != nil {
		if nrhs < 1 {
			return fmt.Errorf("tiledqr: stream: right-hand side must have at least one column")
		}
		// Input validation precedes every retained-state mutation: a
		// rejected batch leaves the stream healthy and serving results.
		if c.check {
			if err := engine.CheckFinite("appended right-hand side",
				&tile.Dense[T]{Rows: r, Cols: nrhs, Stride: ldr, Data: rhs}); err != nil {
				return err
			}
		}
		switch {
		case c.nrhs == 0 && c.rows > 0:
			return fmt.Errorf("tiledqr: stream: right-hand sides must be supplied from the first batch onwards")
		case c.nrhs == 0:
			c.nrhs = nrhs
			c.qtb = make([]T, c.n*nrhs)
		case nrhs != c.nrhs:
			return fmt.Errorf("tiledqr: stream: right-hand side has %d columns, want %d", nrhs, c.nrhs)
		}
	}
	if c.check {
		if err := engine.CheckFinite("appended batch",
			&tile.Dense[T]{Rows: r, Cols: c.n, Stride: ld, Data: data}); err != nil {
			return err
		}
	}

	if c.forget > 0 {
		c.scaleForget(c.forget)
	}
	if c.window != 0 {
		c.record(r, data, ld, rhs, ldr)
	}
	if err := c.merge(ctx, r, data, ld, rhs, ldr, 1); err != nil {
		// The merge DAG mutates the resident triangle in place, so any
		// failure past this point leaves it partially transformed: poison.
		return c.poisoned(err)
	}
	if c.window > 0 && c.rows > int64(c.window) {
		return c.Downdate(ctx, int(c.rows)-c.window)
	}
	return nil
}

// merge is the retention-blind core of Append (shared with the rebuild
// fallback of Downdate): tile the batch scaled by scale, execute the merge
// DAG against the resident triangle, fold the RHS, and advance the row
// count. The caller poisons the stream on error.
func (c *Core[T]) merge(ctx context.Context, r int, data []T, ld int, rhs []T, ldr int, scale float64) error {
	st := getStaging[T]()
	defer func() {
		c.cur = nil
		putStaging(st)
	}()
	c.tileBatch(st, r, data, ld, scale)
	p := c.plan(st.g.P)
	d := p.DAG()
	c.allocT(d, st)
	c.cur = st
	env := c.env
	if d.NumTasks() < seqTaskThreshold {
		// Tiny merges are dominated by cross-goroutine wake-up cost: run
		// them inline on the appending goroutine.
		env = engine.Env{Workers: 1}
	}
	if _, err := engine.ExecTasks[T](c, p, env,
		engine.RunOpts{Ctx: ctx, Check: c.check}, c.ib, len(c.rws)); err != nil {
		return err
	}
	if c.nrhs > 0 {
		if err := c.applyRHS(ctx, d, r, rhs, ldr, scale); err != nil {
			return err
		}
	}
	c.rows += int64(r)
	return nil
}

// record appends a compact copy of the batch (and its RHS rows) to the row
// history at full weight.
func (c *Core[T]) record(r int, data []T, ld int, rhs []T, ldr int) {
	hb := histBatch[T]{rows: r, scale: 1, data: make([]T, r*c.n)}
	for i := 0; i < r; i++ {
		copy(hb.data[i*c.n:(i+1)*c.n], data[i*ld:i*ld+c.n])
	}
	if rhs != nil {
		nrhs := c.nrhs
		hb.rhs = make([]T, r*nrhs)
		for i := 0; i < r; i++ {
			copy(hb.rhs[i*nrhs:(i+1)*nrhs], rhs[i*ldr:i*ldr+nrhs])
		}
	}
	c.hist = append(c.hist, hb)
}

// scaleForget decays the represented system by the forgetting factor λ:
// the resident triangle and Qᵀb scale by √λ (so the implicit rows do too),
// the squared norms by λ, and every retained batch's weight by √λ.
func (c *Core[T]) scaleForget(lambda float64) {
	s := math.Sqrt(lambda)
	f := vec.FromParts[T](s, 0)
	for i := range c.res {
		for j := range c.res[i].Data {
			c.res[i].Data[j] *= f
		}
	}
	for j := range c.qtb {
		c.qtb[j] *= f
	}
	c.resid2 *= lambda
	c.bnorm2 *= lambda
	for i := range c.hist {
		c.hist[i].scale *= s
	}
}

// Forget applies one decay step with factor lambda ∈ (0, 1] immediately —
// the manual form of Config.Forget (which decays before every append).
// lambda = 1 is a no-op.
func (c *Core[T]) Forget(lambda float64) error {
	if c.err != nil {
		return c.err
	}
	if lambda <= 0 || lambda > 1 {
		return fmt.Errorf("tiledqr: stream: forgetting factor %g outside (0, 1]", lambda)
	}
	if lambda != 1 {
		c.scaleForget(lambda)
	}
	return nil
}

// applyRHS replays the merge transformations over the stacked right-hand
// side [qtb; scale·(batch rhs)] via the shared engine.Replay (task IDs are
// topological). The batch rows' leftover components are exactly the Qᵀb
// coordinates orthogonal to the retained top block; their squared norm
// accumulates into the running least-squares residual, and the incoming
// rows' squared norm into the represented ‖b‖².
func (c *Core[T]) applyRHS(ctx context.Context, d *core.DAG, r int, rhs []T, ldr int, scale float64) error {
	nrhs := c.nrhs
	c.cur.rhs = grow(c.cur.rhs, r*nrhs)
	scratch := c.cur.rhs
	f := vec.FromParts[T](scale, 0)
	for i := 0; i < r; i++ {
		dst := scratch[i*nrhs : i*nrhs+nrhs]
		src := rhs[i*ldr : i*ldr+nrhs]
		if scale == 1 {
			copy(dst, src)
		} else {
			for j := range dst {
				dst[j] = f * src[j]
			}
		}
	}
	for _, v := range scratch {
		c.bnorm2 += vec.Abs2(v)
	}
	// row returns the stacked RHS rows of tile row i.
	row := func(i int) ([]T, int) {
		if i <= c.grid.Q {
			return c.qtb[(i-1)*c.nb*nrhs:], nrhs
		}
		return scratch[(i-c.grid.Q-1)*c.nb*nrhs:], nrhs
	}
	if err := engine.Replay[T](ctx, c, d, true, row, nrhs, c.ib, c.rws); err != nil {
		return err
	}
	for _, v := range scratch {
		c.resid2 += vec.Abs2(v)
	}
	return nil
}

// CopyR writes the resident upper triangular factor into dst (n×n, row
// stride ld ≥ n). Only the upper triangle is written; callers that need
// explicit zeros below the diagonal must start from a zeroed dst.
func (c *Core[T]) CopyR(dst []T, ld int) {
	q, nb := c.grid.Q, c.nb
	for ti := 0; ti < q; ti++ {
		for tk := ti; tk < q; tk++ {
			t := &c.res[ti*q+tk]
			r0, c0 := ti*nb, tk*nb
			for rr := 0; rr < t.Rows; rr++ {
				start := 0
				if ti == tk {
					start = rr // diagonal tile: skip the zero lower part
				}
				copy(dst[(r0+rr)*ld+c0+start:(r0+rr)*ld+c0+t.Cols],
					t.Data[rr*t.Stride+start:rr*t.Stride+t.Cols])
			}
		}
	}
}

// scatterR writes the upper triangle of src (n×n, row stride ld) back into
// the resident tiles — the inverse of CopyR, used to commit a successful
// downdate. The zero lower parts of diagonal tiles are left untouched.
func (c *Core[T]) scatterR(src []T, ld int) {
	q, nb := c.grid.Q, c.nb
	for ti := 0; ti < q; ti++ {
		for tk := ti; tk < q; tk++ {
			t := &c.res[ti*q+tk]
			r0, c0 := ti*nb, tk*nb
			for rr := 0; rr < t.Rows; rr++ {
				start := 0
				if ti == tk {
					start = rr
				}
				copy(t.Data[rr*t.Stride+start:rr*t.Stride+t.Cols],
					src[(r0+rr)*ld+c0+start:(r0+rr)*ld+c0+t.Cols])
			}
		}
	}
}

// CopyQTB writes the retained top n rows of Qᵀb into dst (n×nrhs, row
// stride ld ≥ nrhs).
func (c *Core[T]) CopyQTB(dst []T, ld int) {
	for i := 0; i < c.n; i++ {
		copy(dst[i*ld:i*ld+c.nrhs], c.qtb[i*c.nrhs:(i+1)*c.nrhs])
	}
}

// SolveLS back-substitutes the resident triangle against the retained Qᵀb,
// writing the n×nrhs least-squares solution to x (row stride ldx).
func (c *Core[T]) SolveLS(x []T, ldx int) error {
	if c.err != nil {
		return c.err
	}
	if c.nrhs == 0 {
		return fmt.Errorf("tiledqr: SolveLS: stream tracks no right-hand side (ingest batches with AppendRHS)")
	}
	if c.rows < int64(c.n) {
		return fmt.Errorf("tiledqr: SolveLS: needs at least n = %d represented rows (have %d)", c.n, c.rows)
	}
	if c.rwork == nil {
		c.rwork = make([]T, c.n*c.n)
		c.xcol = make([]T, c.n)
	}
	c.CopyR(c.rwork, c.n)
	return work.SolveUpper(c.n, c.nrhs, c.rwork, c.n, c.qtb, c.nrhs, x, ldx, c.xcol)
}
