// Package work holds the small execution helpers shared by the generic
// factorization engine and the streaming subsystem: worker-count
// resolution, per-worker workspace allocation, and triangular
// back-substitution, generic over all four arithmetic domains.
package work

import (
	"fmt"
	"runtime"

	"tiledqr/internal/vec"
)

// Scalar is the set of arithmetic domains the tiled kernels support — the
// constraint of vec.Scalar re-exported at the execution layer so callers
// above the vector primitives need not import them for the type set alone.
type Scalar = vec.Scalar

// WorkersOrDefault resolves a Workers option: values < 1 mean GOMAXPROCS.
func WorkersOrDefault(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// Workspaces allocates one kernel scratch buffer of length n per worker.
func Workspaces[T any](workers, n int) [][]T {
	w := make([][]T, workers)
	for i := range w {
		w[i] = make([]T, n)
	}
	return w
}

// SolveUpper solves R·X = B by row-oriented back-substitution: R is n×n
// upper triangular with row stride ldr (its strictly lower part is never
// read), B provides the top n rows of the right-hand sides at stride ldb,
// and the solution is written to x at stride ldx. xcol is an n-element
// scratch holding each solution column contiguously so every inner product
// runs over a contiguous row of R via the unconjugated vec.Dot.
func SolveUpper[T Scalar](n, nrhs int, r []T, ldr int, b []T, ldb int,
	x []T, ldx int, xcol []T) error {
	for c := 0; c < nrhs; c++ {
		for i := n - 1; i >= 0; i-- {
			row := r[i*ldr : i*ldr+n]
			s := b[i*ldb+c] - vec.Dot(row[i+1:], xcol[i+1:n])
			d := row[i]
			if d == 0 {
				return fmt.Errorf("tiledqr: SolveLS: R(%d,%d) = 0, matrix is rank deficient", i, i)
			}
			xcol[i] = s / d
		}
		for i := 0; i < n; i++ {
			x[i*ldx+c] = xcol[i]
		}
	}
	return nil
}
