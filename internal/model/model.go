// Package model provides the closed-form critical path results of the paper
// (Theorem 1, Propositions 1 and 2), the asymptotic-optimality bounds, flop
// counting, and the roofline-style performance predictor of Section 4.
package model

import "math"

// FlatTreeCP returns the critical path length of the TT-kernel FlatTree
// algorithm (Theorem 1, part 1), in units of nb³/3 flops:
//
//	2p+2        if p ≥ q = 1
//	6p+16q−22   if p > q > 1
//	22p−24      if p = q > 1
func FlatTreeCP(p, q int) int {
	switch {
	case q == 1:
		return 2*p + 2
	case p == q:
		return 22*p - 24
	default:
		return 6*p + 16*q - 22
	}
}

// TSFlatTreeCP returns the critical path length of the TS-kernel FlatTree
// algorithm (Proposition 2):
//
//	6p−2        if p ≥ q = 1
//	12p+18q−32  if p > q > 1
//	30p−34      if p = q > 1
func TSFlatTreeCP(p, q int) int {
	switch {
	case q == 1:
		return 6*p - 2
	case p == q:
		return 30*p - 34
	default:
		return 12*p + 18*q - 32
	}
}

// BinaryTreeCPPow2 returns the exact critical path length of BinaryTree when
// p and q are powers of two with q < p (Proposition 1):
// (10+6·log₂p)·q − 4·log₂p − 6.
func BinaryTreeCPPow2(p, q int) int {
	lg := Log2Ceil(p)
	return (10+6*lg)*q - 4*lg - 6
}

// FibonacciCPUpper returns Theorem 1(2)'s upper bound on Fibonacci's
// critical path: 22q + 6⌈√(2p)⌉.
func FibonacciCPUpper(p, q int) int {
	return 22*q + 6*int(math.Ceil(math.Sqrt(2*float64(p))))
}

// GreedyCPUpper returns Theorem 1(2)'s upper bound on Greedy's critical
// path: 22q + 6⌈log₂p⌉.
func GreedyCPUpper(p, q int) int {
	return 22*q + 6*Log2Ceil(p)
}

// LowerBoundCP returns Theorem 1(3)'s lower bound on the critical path of
// any tiled algorithm on a p×q grid (p ≥ q): 22q − 30.
func LowerBoundCP(q int) int {
	return 22*q - 30
}

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1.
func Log2Ceil(n int) int {
	lg := 0
	for 1<<lg < n {
		lg++
	}
	return lg
}

// TotalUnits returns the total task weight 6pq²−2q³ (p ≥ q, §2.2) in units
// of nb³/3 flops; it is invariant across elimination orders and kernel
// families.
func TotalUnits(p, q int) int {
	if p < q {
		p, q = q, p // the transpose has the same flop count
	}
	return 6*p*q*q - 2*q*q*q
}

// Flops returns the floating-point operation count of a real QR
// factorization of an m×n matrix (m ≥ n): 2mn² − (2/3)n³.
func Flops(m, n int) float64 {
	if m < n {
		m, n = n, m
	}
	fm, fn := float64(m), float64(n)
	return 2*fm*fn*fn - 2.0/3.0*fn*fn*fn
}

// ComplexFlops returns the flop count of a complex QR factorization: each
// complex multiply-add is eight real flops versus two (Section 4), hence 4×
// the real count.
func ComplexFlops(m, n int) float64 { return 4 * Flops(m, n) }

// Predict implements the paper's roofline-style predictor (Section 4):
//
//	γ_pred = γ_seq·T / max(T/P, cp)
//
// where γ_seq is the sequential kernel speed (flop/s), T the total weight
// and cp the critical path, both in the same unit (e.g. nb³/3 flops), and P
// the number of processors. The result has the unit of γ_seq.
func Predict(gammaSeq float64, totalUnits, cp, workers int) float64 {
	t := float64(totalUnits)
	denom := math.Max(t/float64(workers), float64(cp))
	if denom == 0 {
		return 0
	}
	return gammaSeq * t / denom
}

// Speedup returns the parallel efficiency limit T/(P·max(T/P, cp)) implied
// by the predictor: 1 when the area bound dominates, <1 when the critical
// path dominates.
func Speedup(totalUnits, cp, workers int) float64 {
	t := float64(totalUnits)
	return t / (float64(workers) * math.Max(t/float64(workers), float64(cp)))
}
