package model

import (
	"math"
	"testing"

	"tiledqr/internal/core"
	"tiledqr/internal/sim"
)

// TestTheorem1FlatTree checks the closed form of Theorem 1(1) against the
// discrete-event simulator over a grid of shapes.
func TestTheorem1FlatTree(t *testing.T) {
	for p := 1; p <= 24; p++ {
		for q := 1; q <= p; q++ {
			cp := sim.CriticalPathList(core.FlatTreeList(p, q), core.TT)
			if cp != FlatTreeCP(p, q) {
				t.Errorf("FlatTree %dx%d: sim %d, formula %d", p, q, cp, FlatTreeCP(p, q))
			}
		}
	}
	// Tall spot checks.
	for _, s := range [][2]int{{40, 1}, {40, 6}, {40, 40}, {100, 3}, {64, 64}} {
		cp := sim.CriticalPathList(core.FlatTreeList(s[0], s[1]), core.TT)
		if cp != FlatTreeCP(s[0], s[1]) {
			t.Errorf("FlatTree %dx%d: sim %d, formula %d", s[0], s[1], cp, FlatTreeCP(s[0], s[1]))
		}
	}
}

// TestProposition2 checks the TS-FlatTree closed form against the simulator.
func TestProposition2(t *testing.T) {
	for p := 1; p <= 20; p++ {
		for q := 1; q <= p; q++ {
			cp := sim.CriticalPathList(core.FlatTreeList(p, q), core.TS)
			if cp != TSFlatTreeCP(p, q) {
				t.Errorf("TS-FlatTree %dx%d: sim %d, formula %d", p, q, cp, TSFlatTreeCP(p, q))
			}
		}
	}
}

// TestProposition1 checks BinaryTree's exact critical path for powers of
// two with q < p.
func TestProposition1(t *testing.T) {
	for _, s := range [][2]int{{2, 1}, {4, 1}, {4, 2}, {8, 2}, {8, 4}, {16, 4}, {16, 8}, {32, 8}, {32, 16}, {64, 16}, {64, 32}} {
		p, q := s[0], s[1]
		cp := sim.CriticalPathList(core.BinaryTreeList(p, q), core.TT)
		if cp != BinaryTreeCPPow2(p, q) {
			t.Errorf("BinaryTree %dx%d: sim %d, formula %d", p, q, cp, BinaryTreeCPPow2(p, q))
		}
	}
}

// TestTheorem1Bounds checks the upper bounds on Fibonacci and Greedy and
// the lower bound 22q−30 across shapes and algorithms.
//
// Two documented caveats about the paper's constants (see EXPERIMENTS.md):
//
//   - Theorem 1(2)'s Greedy bound 22q+6⌈log₂p⌉ is contradicted by the
//     paper's own Table 4(b): Greedy on 128×64 has critical path 1452
//     (reproduced exactly by our simulator) while the bound gives 1450.
//     The slack needed is small and vanishes in the asymptotic statement,
//     so we allow a one-task (≤6 units) margin here and pin the 128×64
//     violation explicitly below.
//
//   - Theorem 1(3)'s lower bound 22q−30 is contradicted by the paper's own
//     Table 5 for square matrices: Greedy on 40×40 has critical path 826
//     (the paper's value) while 22·40−30 = 850. The bound's reduction to a
//     banded matrix loses the square corner savings, so we check it for
//     p ≥ 2q only (where it is comfortably true).
func TestTheorem1Bounds(t *testing.T) {
	shapes := [][2]int{{4, 2}, {8, 8}, {15, 6}, {20, 20}, {40, 10}, {40, 40}, {64, 16}, {100, 30}, {128, 64}}
	for _, s := range shapes {
		p, q := s[0], s[1]
		fib := sim.CriticalPathList(core.FibonacciList(p, q), core.TT)
		if fib > FibonacciCPUpper(p, q) {
			t.Errorf("Fibonacci %dx%d: CP %d exceeds bound %d", p, q, fib, FibonacciCPUpper(p, q))
		}
		gr := sim.CriticalPathList(core.GreedyList(p, q), core.TT)
		if gr > GreedyCPUpper(p, q)+6 {
			t.Errorf("Greedy %dx%d: CP %d exceeds bound %d by more than one task", p, q, gr, GreedyCPUpper(p, q))
		}
		if p >= 2*q {
			lb := LowerBoundCP(q)
			for _, alg := range core.Algorithms {
				list, _ := core.Generate(alg, p, q, core.Options{})
				if cp := sim.CriticalPathList(list, core.TT); cp < lb {
					t.Errorf("%v %dx%d: CP %d below lower bound %d", alg, p, q, cp, lb)
				}
			}
		}
	}
}

// TestPaperBoundInconsistencies pins the two spots where the paper's own
// tables contradict Theorem 1's constants, so that a future change in our
// generators that silently "fixes" them would be flagged.
func TestPaperBoundInconsistencies(t *testing.T) {
	// Table 4(b): Greedy 128×64 = 1452 > 1450 = Theorem 1(2) bound.
	gr := sim.CriticalPathList(core.GreedyList(128, 64), core.TT)
	if gr != 1452 || GreedyCPUpper(128, 64) != 1450 {
		t.Errorf("Greedy 128×64: CP %d (bound %d); expected the documented 1452 vs 1450", gr, GreedyCPUpper(128, 64))
	}
	// Table 5: Greedy 40×40 = 826 < 850 = Theorem 1(3) bound.
	gr = sim.CriticalPathList(core.GreedyList(40, 40), core.TT)
	if gr != 826 || LowerBoundCP(40) != 850 {
		t.Errorf("Greedy 40×40: CP %d (lower bound %d); expected the documented 826 vs 850", gr, LowerBoundCP(40))
	}
}

// TestAsymptoticOptimality illustrates Theorem 1(4,5): for p = λq the
// ratios CP/22q approach 1 as q grows.
func TestAsymptoticOptimality(t *testing.T) {
	ratio := func(alg core.Algorithm, q int) float64 {
		list, _ := core.Generate(alg, 2*q, q, core.Options{}) // λ = 2
		return float64(sim.CriticalPathList(list, core.TT)) / float64(22*q)
	}
	firstFib, lastFib := ratio(core.Fibonacci, 8), ratio(core.Fibonacci, 64)
	firstGr, lastGr := ratio(core.Greedy, 8), ratio(core.Greedy, 64)
	if lastFib > math.Max(firstFib, 1.10) || lastGr > math.Max(firstGr, 1.05) {
		t.Errorf("optimality ratios not approaching 1: fib %.3f→%.3f, greedy %.3f→%.3f",
			firstFib, lastFib, firstGr, lastGr)
	}
	if lastFib > 1.10 || lastGr > 1.05 {
		t.Errorf("ratios at q=64 too far from optimal: fib %.3f, greedy %.3f", lastFib, lastGr)
	}
}

func TestTotalUnitsMatchesFlops(t *testing.T) {
	// TotalUnits·nb³/3 must equal 2mn²−(2/3)n³ when m = p·nb, n = q·nb.
	for _, s := range [][2]int{{5, 3}, {40, 40}, {10, 1}} {
		p, q := s[0], s[1]
		nb := 17
		units := float64(TotalUnits(p, q)) * float64(nb*nb*nb) / 3
		flops := Flops(p*nb, q*nb)
		if math.Abs(units-flops) > 1e-6*flops {
			t.Errorf("%dx%d tiles: units→%.0f flops, formula %.0f", p, q, units, flops)
		}
	}
	if ComplexFlops(100, 50) != 4*Flops(100, 50) {
		t.Error("complex flop count must be 4× real")
	}
}

func TestPredictLimits(t *testing.T) {
	// With one worker the area bound dominates: γpred = γseq.
	if g := Predict(3.5, 1000, 100, 1); math.Abs(g-3.5) > 1e-12 {
		t.Errorf("P=1 prediction %g, want γseq", g)
	}
	// With unbounded workers the critical path dominates: γpred = γseq·T/cp.
	if g := Predict(2.0, 1000, 100, 1<<30); math.Abs(g-2.0*10) > 1e-9 {
		t.Errorf("unbounded prediction %g, want 20", g)
	}
	// Monotone in workers.
	prev := 0.0
	for _, p := range []int{1, 2, 4, 8, 16, 48, 100} {
		g := Predict(1, 4800, 300, p)
		if g < prev-1e-12 {
			t.Errorf("prediction decreased at P=%d", p)
		}
		prev = g
	}
	if s := Speedup(4800, 300, 48); s <= 0 || s > 1 {
		t.Errorf("speedup efficiency %g out of (0,1]", s)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 40: 6, 128: 7}
	for n, want := range cases {
		if got := Log2Ceil(n); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}
