//go:build !noasm

#include "textflag.h"

// AVX2/FMA kernels for the vec primitives. Shared conventions:
//
//   - unaligned loads/stores (VMOVUPD/VMOVUPS) throughout — tile rows are
//     arbitrary slice offsets and AVX2 has no penalty on aligned data;
//   - multiple independent accumulators in the reduction kernels to break
//     the FMA latency chain, combined only in the epilogue;
//   - every kernel handles all n ≥ 0 itself: a wide unrolled loop, a
//     single-vector loop, then a scalar VEX tail (staying VEX-encoded
//     avoids SSE/AVX transition stalls), so the Go dispatch layer never
//     needs a separate remainder pass;
//   - VZEROUPPER before every return, as required around ABI0 calls.

// func dotF64(x, y *float64, n int) float64
TEXT ·dotF64(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

dot64loop16:
	CMPQ CX, $16
	JLT  dot64loop4
	VMOVUPD (SI), Y4
	VMOVUPD 32(SI), Y5
	VMOVUPD 64(SI), Y6
	VMOVUPD 96(SI), Y7
	VFMADD231PD (DI), Y4, Y0
	VFMADD231PD 32(DI), Y5, Y1
	VFMADD231PD 64(DI), Y6, Y2
	VFMADD231PD 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $16, CX
	JMP  dot64loop16

dot64loop4:
	CMPQ CX, $4
	JLT  dot64reduce
	VMOVUPD (SI), Y4
	VFMADD231PD (DI), Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  dot64loop4

dot64reduce:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	TESTQ CX, CX
	JE   dot64done

dot64scalar:
	VMOVSD (SI), X4
	VFMADD231SD (DI), X4, X0
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNE  dot64scalar

dot64done:
	VZEROUPPER
	MOVSD X0, ret+24(FP)
	RET

// func dotF32(x, y *float32, n int) float32
TEXT ·dotF32(SB), NOSPLIT, $0-28
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

dot32loop32:
	CMPQ CX, $32
	JLT  dot32loop8
	VMOVUPS (SI), Y4
	VMOVUPS 32(SI), Y5
	VMOVUPS 64(SI), Y6
	VMOVUPS 96(SI), Y7
	VFMADD231PS (DI), Y4, Y0
	VFMADD231PS 32(DI), Y5, Y1
	VFMADD231PS 64(DI), Y6, Y2
	VFMADD231PS 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $32, CX
	JMP  dot32loop32

dot32loop8:
	CMPQ CX, $8
	JLT  dot32reduce
	VMOVUPS (SI), Y4
	VFMADD231PS (DI), Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JMP  dot32loop8

dot32reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	TESTQ CX, CX
	JE   dot32done

dot32scalar:
	VMOVSS (SI), X4
	VFMADD231SS (DI), X4, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNE  dot32scalar

dot32done:
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func axpyF64(alpha float64, x, y *float64, n int)
TEXT ·axpyF64(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX

axpy64loop8:
	CMPQ CX, $8
	JLT  axpy64loop4
	VMOVUPD (DI), Y1
	VMOVUPD 32(DI), Y2
	VFMADD231PD (SI), Y0, Y1
	VFMADD231PD 32(SI), Y0, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  axpy64loop8

axpy64loop4:
	CMPQ CX, $4
	JLT  axpy64scalar
	VMOVUPD (DI), Y1
	VFMADD231PD (SI), Y0, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX

axpy64scalar:
	TESTQ CX, CX
	JE   axpy64done
	VMOVSD (DI), X1
	VFMADD231SD (SI), X0, X1
	VMOVSD X1, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  axpy64scalar

axpy64done:
	VZEROUPPER
	RET

// func axpyF32(alpha float32, x, y *float32, n int)
TEXT ·axpyF32(SB), NOSPLIT, $0-32
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX

axpy32loop16:
	CMPQ CX, $16
	JLT  axpy32loop8
	VMOVUPS (DI), Y1
	VMOVUPS 32(DI), Y2
	VFMADD231PS (SI), Y0, Y1
	VFMADD231PS 32(SI), Y0, Y2
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $16, CX
	JMP  axpy32loop16

axpy32loop8:
	CMPQ CX, $8
	JLT  axpy32scalar
	VMOVUPS (DI), Y1
	VFMADD231PS (SI), Y0, Y1
	VMOVUPS Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX

axpy32scalar:
	TESTQ CX, CX
	JE   axpy32done
	VMOVSS (DI), X1
	VFMADD231SS (SI), X0, X1
	VMOVSS X1, (DI)
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JMP  axpy32scalar

axpy32done:
	VZEROUPPER
	RET

// func axpy2F64(alpha float64, x1 *float64, beta float64, x2, y *float64, n int)
TEXT ·axpy2F64(SB), NOSPLIT, $0-48
	VBROADCASTSD alpha+0(FP), Y0
	VBROADCASTSD beta+16(FP), Y1
	MOVQ x1+8(FP), SI
	MOVQ x2+24(FP), BX
	MOVQ y+32(FP), DI
	MOVQ n+40(FP), CX

axpy2n64loop8:
	CMPQ CX, $8
	JLT  axpy2n64loop4
	VMOVUPD (DI), Y2
	VMOVUPD 32(DI), Y3
	VFMADD231PD (SI), Y0, Y2
	VFMADD231PD 32(SI), Y0, Y3
	VFMADD231PD (BX), Y1, Y2
	VFMADD231PD 32(BX), Y1, Y3
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ $64, SI
	ADDQ $64, BX
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  axpy2n64loop8

axpy2n64loop4:
	CMPQ CX, $4
	JLT  axpy2n64scalar
	VMOVUPD (DI), Y2
	VFMADD231PD (SI), Y0, Y2
	VFMADD231PD (BX), Y1, Y2
	VMOVUPD Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, BX
	ADDQ $32, DI
	SUBQ $4, CX

axpy2n64scalar:
	TESTQ CX, CX
	JE   axpy2n64done
	VMOVSD (DI), X2
	VFMADD231SD (SI), X0, X2
	VFMADD231SD (BX), X1, X2
	VMOVSD X2, (DI)
	ADDQ $8, SI
	ADDQ $8, BX
	ADDQ $8, DI
	DECQ CX
	JMP  axpy2n64scalar

axpy2n64done:
	VZEROUPPER
	RET

// func axpy2F32(alpha float32, x1 *float32, beta float32, x2, y *float32, n int)
TEXT ·axpy2F32(SB), NOSPLIT, $0-48
	VBROADCASTSS alpha+0(FP), Y0
	VBROADCASTSS beta+16(FP), Y1
	MOVQ x1+8(FP), SI
	MOVQ x2+24(FP), BX
	MOVQ y+32(FP), DI
	MOVQ n+40(FP), CX

axpy2n32loop16:
	CMPQ CX, $16
	JLT  axpy2n32loop8
	VMOVUPS (DI), Y2
	VMOVUPS 32(DI), Y3
	VFMADD231PS (SI), Y0, Y2
	VFMADD231PS 32(SI), Y0, Y3
	VFMADD231PS (BX), Y1, Y2
	VFMADD231PS 32(BX), Y1, Y3
	VMOVUPS Y2, (DI)
	VMOVUPS Y3, 32(DI)
	ADDQ $64, SI
	ADDQ $64, BX
	ADDQ $64, DI
	SUBQ $16, CX
	JMP  axpy2n32loop16

axpy2n32loop8:
	CMPQ CX, $8
	JLT  axpy2n32scalar
	VMOVUPS (DI), Y2
	VFMADD231PS (SI), Y0, Y2
	VFMADD231PS (BX), Y1, Y2
	VMOVUPS Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, BX
	ADDQ $32, DI
	SUBQ $8, CX

axpy2n32scalar:
	TESTQ CX, CX
	JE   axpy2n32done
	VMOVSS (DI), X2
	VFMADD231SS (SI), X0, X2
	VFMADD231SS (BX), X1, X2
	VMOVSS X2, (DI)
	ADDQ $4, SI
	ADDQ $4, BX
	ADDQ $4, DI
	DECQ CX
	JMP  axpy2n32scalar

axpy2n32done:
	VZEROUPPER
	RET

// func sumsqF64(x *float64, n int) float64
TEXT ·sumsqF64(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), SI
	MOVQ n+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

sq64loop16:
	CMPQ CX, $16
	JLT  sq64loop4
	VMOVUPD (SI), Y4
	VMOVUPD 32(SI), Y5
	VMOVUPD 64(SI), Y6
	VMOVUPD 96(SI), Y7
	VFMADD231PD Y4, Y4, Y0
	VFMADD231PD Y5, Y5, Y1
	VFMADD231PD Y6, Y6, Y2
	VFMADD231PD Y7, Y7, Y3
	ADDQ $128, SI
	SUBQ $16, CX
	JMP  sq64loop16

sq64loop4:
	CMPQ CX, $4
	JLT  sq64reduce
	VMOVUPD (SI), Y4
	VFMADD231PD Y4, Y4, Y0
	ADDQ $32, SI
	SUBQ $4, CX
	JMP  sq64loop4

sq64reduce:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	TESTQ CX, CX
	JE   sq64done

sq64scalar:
	VMOVSD (SI), X4
	VFMADD231SD X4, X4, X0
	ADDQ $8, SI
	DECQ CX
	JNE  sq64scalar

sq64done:
	VZEROUPPER
	MOVSD X0, ret+16(FP)
	RET

// func sumsqF32(x *float32, n int) float64
//
// Accumulates in float64 (the package contract for norms: single precision
// gets the double exponent range, so a float32 norm can never overflow the
// accumulator) by widening four lanes at a time with VCVTPS2PD.
TEXT ·sumsqF32(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), SI
	MOVQ n+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1

sq32loop8:
	CMPQ CX, $8
	JLT  sq32loop4
	VMOVUPS (SI), X2
	VMOVUPS 16(SI), X3
	VCVTPS2PD X2, Y2
	VCVTPS2PD X3, Y3
	VFMADD231PD Y2, Y2, Y0
	VFMADD231PD Y3, Y3, Y1
	ADDQ $32, SI
	SUBQ $8, CX
	JMP  sq32loop8

sq32loop4:
	CMPQ CX, $4
	JLT  sq32reduce
	VMOVUPS (SI), X2
	VCVTPS2PD X2, Y2
	VFMADD231PD Y2, Y2, Y0
	ADDQ $16, SI
	SUBQ $4, CX

sq32reduce:
	VADDPD Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	TESTQ CX, CX
	JE   sq32done

sq32scalar:
	VMOVSS (SI), X2
	VCVTSS2SD X2, X2, X2
	VFMADD231SD X2, X2, X0
	ADDQ $4, SI
	DECQ CX
	JNE  sq32scalar

sq32done:
	VZEROUPPER
	MOVSD X0, ret+16(FP)
	RET

// func gemmKerF64(k int, a, b, c *float64, ldc int)
//
// 4×8 register-blocked micro-kernel: C[0:4,0:8] += A·B with A packed as k
// steps of 4 (column of the A strip), B as k steps of 8 (row of the B
// strip), C in row-major with stride ldc. The C tile rides in 8 ymm
// accumulators from first load to final store; each k step is 2 B loads,
// 4 A broadcasts and 8 FMAs. Caller guarantees k ≥ 1 and a full 4×8 tile.
TEXT ·gemmKerF64(SB), NOSPLIT, $0-40
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $3, R8

	MOVQ DX, R9
	VMOVUPD (R9), Y0
	VMOVUPD 32(R9), Y1
	ADDQ R8, R9
	VMOVUPD (R9), Y2
	VMOVUPD 32(R9), Y3
	ADDQ R8, R9
	VMOVUPD (R9), Y4
	VMOVUPD 32(R9), Y5
	ADDQ R8, R9
	VMOVUPD (R9), Y6
	VMOVUPD 32(R9), Y7

gk64loop:
	VMOVUPD (DI), Y8
	VMOVUPD 32(DI), Y9
	VBROADCASTSD (SI), Y10
	VBROADCASTSD 8(SI), Y11
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y1
	VFMADD231PD Y8, Y11, Y2
	VFMADD231PD Y9, Y11, Y3
	VBROADCASTSD 16(SI), Y10
	VBROADCASTSD 24(SI), Y11
	VFMADD231PD Y8, Y10, Y4
	VFMADD231PD Y9, Y10, Y5
	VFMADD231PD Y8, Y11, Y6
	VFMADD231PD Y9, Y11, Y7
	ADDQ $32, SI
	ADDQ $64, DI
	DECQ CX
	JNE  gk64loop

	MOVQ DX, R9
	VMOVUPD Y0, (R9)
	VMOVUPD Y1, 32(R9)
	ADDQ R8, R9
	VMOVUPD Y2, (R9)
	VMOVUPD Y3, 32(R9)
	ADDQ R8, R9
	VMOVUPD Y4, (R9)
	VMOVUPD Y5, 32(R9)
	ADDQ R8, R9
	VMOVUPD Y6, (R9)
	VMOVUPD Y7, 32(R9)
	VZEROUPPER
	RET

// func gemmKerF32(k int, a, b, c *float32, ldc int)
//
// 4×16 micro-kernel, the float32 twin of gemmKerF64 (two 8-lane ymm per C
// row).
TEXT ·gemmKerF32(SB), NOSPLIT, $0-40
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8

	MOVQ DX, R9
	VMOVUPS (R9), Y0
	VMOVUPS 32(R9), Y1
	ADDQ R8, R9
	VMOVUPS (R9), Y2
	VMOVUPS 32(R9), Y3
	ADDQ R8, R9
	VMOVUPS (R9), Y4
	VMOVUPS 32(R9), Y5
	ADDQ R8, R9
	VMOVUPS (R9), Y6
	VMOVUPS 32(R9), Y7

gk32loop:
	VMOVUPS (DI), Y8
	VMOVUPS 32(DI), Y9
	VBROADCASTSS (SI), Y10
	VBROADCASTSS 4(SI), Y11
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	VFMADD231PS Y8, Y11, Y2
	VFMADD231PS Y9, Y11, Y3
	VBROADCASTSS 8(SI), Y10
	VBROADCASTSS 12(SI), Y11
	VFMADD231PS Y8, Y10, Y4
	VFMADD231PS Y9, Y10, Y5
	VFMADD231PS Y8, Y11, Y6
	VFMADD231PS Y9, Y11, Y7
	ADDQ $16, SI
	ADDQ $64, DI
	DECQ CX
	JNE  gk32loop

	MOVQ DX, R9
	VMOVUPS Y0, (R9)
	VMOVUPS Y1, 32(R9)
	ADDQ R8, R9
	VMOVUPS Y2, (R9)
	VMOVUPS Y3, 32(R9)
	ADDQ R8, R9
	VMOVUPS Y4, (R9)
	VMOVUPS Y5, 32(R9)
	ADDQ R8, R9
	VMOVUPS Y6, (R9)
	VMOVUPS Y7, 32(R9)
	VZEROUPPER
	RET
