package vec

import (
	"math"
	"math/rand"
	"testing"
)

// lengths covers the empty vector, every unroll remainder (1–7), the exact
// unroll width, and a few longer sizes.
var lengths = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 64, 100}

func randSlice(n int, rng *rand.Rand) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// refDot is the naive reference the unrolled Dot must match exactly in
// exact-arithmetic cases; for random data we allow reassociation slack.
func refDot(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// pinGeneric forces the generic kernel family for one test: the bit-exact
// reference checks below define the semantics of the portable loops, which
// the SIMD family intentionally does not reproduce bit for bit (FMA,
// different accumulation order). The SIMD family is held to ULP-level
// agreement against these same loops by simd_test.go.
func pinGeneric(t *testing.T) {
	t.Helper()
	prev := SIMDEnabled()
	SetSIMD(false)
	t.Cleanup(func() { SetSIMD(prev) })
}

func almostEq(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= 1e-12*math.Max(scale, 1)
}

func TestDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range lengths {
		x, y := randSlice(n, rng), randSlice(n, rng)
		if got, want := Dot(x, y), refDot(x, y); !almostEq(got, want) {
			t.Errorf("n=%d: Dot=%g want %g", n, got, want)
		}
	}
	// Exact-arithmetic check: small integers must match bit for bit despite
	// the four-accumulator reassociation.
	x := []float64{1, 2, 3, 4, 5, 6, 7}
	y := []float64{7, 6, 5, 4, 3, 2, 1}
	if got := Dot(x, y); got != 84 {
		t.Errorf("integer Dot=%g want 84", got)
	}
}

func TestAxpy(t *testing.T) {
	pinGeneric(t)
	rng := rand.New(rand.NewSource(3))
	for _, n := range lengths {
		for _, alpha := range []float64{0, 1, -2.5} {
			x, y := randSlice(n, rng), randSlice(n, rng)
			want := append([]float64(nil), y...)
			for i := range want {
				want[i] += alpha * x[i]
			}
			Axpy(alpha, x, y)
			for i := range y {
				if y[i] != want[i] {
					t.Fatalf("n=%d α=%g: Axpy[%d]=%g want %g", n, alpha, i, y[i], want[i])
				}
			}
		}
	}
}

func TestAxpyDestLongerThanX(t *testing.T) {
	// The contract is len(y) ≥ len(x): elements past len(x) are untouched.
	x := []float64{1, 2}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	if y[0] != 12 || y[1] != 24 || y[2] != 30 {
		t.Errorf("Axpy touched beyond len(x): %v", y)
	}
}

func TestAxpy2(t *testing.T) {
	pinGeneric(t)
	rng := rand.New(rand.NewSource(4))
	for _, n := range lengths {
		for _, ab := range [][2]float64{{0, 0}, {2, 0}, {0, -1}, {1.5, -2.5}} {
			x1, x2, y := randSlice(n, rng), randSlice(n, rng), randSlice(n, rng)
			want := append([]float64(nil), y...)
			for i := range want {
				want[i] += ab[0]*x1[i] + ab[1]*x2[i]
			}
			Axpy2(ab[0], x1, ab[1], x2, y)
			for i := range y {
				if y[i] != want[i] {
					t.Fatalf("n=%d αβ=%v: Axpy2[%d]=%g want %g", n, ab, i, y[i], want[i])
				}
			}
		}
	}
}

func TestScal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range lengths {
		x := randSlice(n, rng)
		want := append([]float64(nil), x...)
		for i := range want {
			want[i] *= -3.25
		}
		Scal(-3.25, x)
		for i := range x {
			if x[i] != want[i] {
				t.Fatalf("n=%d: Scal[%d]=%g want %g", n, i, x[i], want[i])
			}
		}
	}
}

func TestSub(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range lengths {
		x, y := randSlice(n, rng), randSlice(n, rng)
		want := append([]float64(nil), y...)
		for i := range want {
			want[i] -= x[i]
		}
		Sub(x, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d: Sub[%d]=%g want %g", n, i, y[i], want[i])
			}
		}
	}
}

func TestAddScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range lengths {
		x, y := randSlice(n, rng), randSlice(n, rng)
		want := append([]float64(nil), y...)
		for i := range want {
			want[i] = 0.5*want[i] + 2*x[i]
		}
		AddScaled(0.5, 2, x, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d: AddScaled[%d]=%g want %g", n, i, y[i], want[i])
			}
		}
	}
}

func TestDotAxpy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range lengths {
		v, c := randSlice(n, rng), randSlice(n, rng)
		c0, tau := rng.NormFloat64(), rng.NormFloat64()
		wantW := tau * (c0 + refDot(v, c))
		wantC := append([]float64(nil), c...)
		for i := range wantC {
			wantC[i] -= wantW * v[i]
		}
		w := DotAxpy(tau, c0, v, c)
		if !almostEq(w, wantW) {
			t.Errorf("n=%d: DotAxpy w=%g want %g", n, w, wantW)
		}
		for i := range c {
			if !almostEq(c[i], wantC[i]) {
				t.Fatalf("n=%d: DotAxpy c[%d]=%g want %g", n, i, c[i], wantC[i])
			}
		}
	}
}

func TestNrm2MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range lengths {
		x := randSlice(n, rng)
		var want float64
		for _, v := range x {
			want = math.Hypot(want, v)
		}
		if got := Nrm2(x); !almostEq(got, want) {
			t.Errorf("n=%d: Nrm2=%g want %g", n, got, want)
		}
		inc := 3
		xs := randSlice(n*inc+1, rng)
		want = 0
		for i := 0; i < n; i++ {
			want = math.Hypot(want, xs[i*inc])
		}
		if got := Nrm2Inc(xs, n, inc); !almostEq(got, want) {
			t.Errorf("n=%d inc=%d: Nrm2Inc=%g want %g", n, inc, got, want)
		}
	}
}

// TestNrm2OverflowUnderflow proves the scaled norm is finite and accurate
// where the naive sum of squares overflows to +Inf or underflows to 0.
func TestNrm2OverflowUnderflow(t *testing.T) {
	big := []float64{1e200, -1e200, 1e200, 1e199}
	var naive float64
	for _, v := range big {
		naive += v * v
	}
	if !math.IsInf(naive, 1) {
		t.Fatal("test vector does not overflow the naive sum")
	}
	want := 1e200 * math.Sqrt(3.01)
	if got := Nrm2(big); !almostEq(got, want) {
		t.Errorf("overflow-range Nrm2=%g want %g", got, want)
	}

	small := []float64{1e-200, -1e-200, 3e-200}
	naive = 0
	for _, v := range small {
		naive += v * v
	}
	if naive != 0 {
		t.Fatal("test vector does not underflow the naive sum")
	}
	want = 1e-200 * math.Sqrt(11)
	if got := Nrm2(small); !almostEq(got, want) {
		t.Errorf("underflow-range Nrm2=%g want %g", got, want)
	}

	// Subnormal magnitudes: 1/amax would overflow, division must not.
	tiny := []float64{5e-310, 5e-310}
	want = 5e-310 * math.Sqrt(2)
	if got := Nrm2(tiny); math.Abs(got-want) > 1e-312 {
		t.Errorf("subnormal Nrm2=%g want %g", got, want)
	}

	// The strided variant shares the scaled path.
	if got := Nrm2Inc([]float64{1e200, 0, 1e200, 0}, 2, 2); !almostEq(got, 1e200*math.Sqrt2) {
		t.Errorf("overflow-range Nrm2Inc=%g want %g", got, 1e200*math.Sqrt2)
	}

	if got := Nrm2[float64](nil); got != 0 {
		t.Errorf("Nrm2(nil)=%g want 0", got)
	}
	if got := Nrm2([]float64{0, 0, 0}); got != 0 {
		t.Errorf("Nrm2(zeros)=%g want 0", got)
	}
	if got := Nrm2([]float64{math.Inf(-1), 1}); !math.IsInf(got, 1) {
		t.Errorf("Nrm2 with Inf=%g want +Inf", got)
	}
}

// TestNrm2IncStrided pins the strided norm to the hypot reference across
// strides and lengths, independent of the contiguous tests above.
func TestNrm2IncStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, inc := range []int{1, 2, 3, 5, 7} {
		for _, n := range []int{0, 1, 2, 5, 16, 33, 100} {
			var x []float64
			if n > 0 {
				x = randSlice((n-1)*inc+1+3, rng)
			}
			var want float64
			for i := 0; i < n; i++ {
				want = math.Hypot(want, x[i*inc])
			}
			if got := Nrm2Inc(x, n, inc); !almostEq(got, want) {
				t.Errorf("n=%d inc=%d: Nrm2Inc=%g want %g", n, inc, got, want)
			}
		}
	}
}

// TestNrm2IncOverflowUnderflow proves the strided path reuses the same
// overflow-safe scaled accumulation as the contiguous one: values the naive
// sum of squares cannot represent must still produce finite, accurate norms
// at every stride, with garbage in the skipped gaps ignored.
func TestNrm2IncOverflowUnderflow(t *testing.T) {
	// Gap elements are poisoned with values that would dominate or destroy
	// the sum if a stride bug ever read them.
	poison := math.Inf(1)
	build := func(vals []float64, inc int) []float64 {
		x := make([]float64, (len(vals)-1)*inc+1)
		for i := range x {
			x[i] = poison
		}
		for i, v := range vals {
			x[i*inc] = v
		}
		return x
	}
	for _, inc := range []int{2, 3, 7} {
		big := build([]float64{1e200, -1e200, 1e200}, inc)
		if got, want := Nrm2Inc(big, 3, inc), 1e200*math.Sqrt(3); !almostEq(got, want) {
			t.Errorf("inc=%d overflow-range Nrm2Inc=%g want %g", inc, got, want)
		}
		small := build([]float64{1e-200, 3e-200}, inc)
		if got, want := Nrm2Inc(small, 2, inc), 1e-200*math.Sqrt(10); !almostEq(got, want) {
			t.Errorf("inc=%d underflow-range Nrm2Inc=%g want %g", inc, got, want)
		}
		tiny := build([]float64{5e-310, 5e-310, 5e-310, 5e-310}, inc)
		if got, want := Nrm2Inc(tiny, 4, inc), 1e-309; math.Abs(got-want) > 1e-312 {
			t.Errorf("inc=%d subnormal Nrm2Inc=%g want %g", inc, got, want)
		}
	}
	// Non-finite entries at the strided positions must propagate.
	if got := Nrm2Inc([]float64{1, 0, math.Inf(-1), 0, 2}, 3, 2); !math.IsInf(got, 1) {
		t.Errorf("strided Inf: Nrm2Inc=%g want +Inf", got)
	}
	if got := Nrm2Inc[float64](nil, 0, 3); got != 0 {
		t.Errorf("Nrm2Inc(nil, 0)=%g want 0", got)
	}
}
