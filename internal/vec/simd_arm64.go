//go:build arm64 && !noasm

package vec

import "unsafe"

// The NEON backend. Advanced SIMD is architecturally baseline on arm64, so
// unlike amd64 there is no feature probe: the backend is available whenever
// it is compiled in.

const simdArchName = "neon"

const simdArchSupported = true

// Assembly kernels (simd_arm64.s); same contracts as the amd64 ones.

//go:noescape
func dotF64(x, y *float64, n int) float64

//go:noescape
func dotF32(x, y *float32, n int) float32

//go:noescape
func axpyF64(alpha float64, x, y *float64, n int)

//go:noescape
func axpyF32(alpha float32, x, y *float32, n int)

//go:noescape
func axpy2F64(alpha float64, x1 *float64, beta float64, x2, y *float64, n int)

//go:noescape
func axpy2F32(alpha float32, x1 *float32, beta float32, x2, y *float32, n int)

//go:noescape
func sumsqF64(x *float64, n int) float64

//go:noescape
func gemmKerF64(k int, a, b, c *float64, ldc int)

//go:noescape
func gemmKerF32(k int, a, b, c *float32, ldc int)

// sumsqF32 stays in Go on arm64: the widening accumulate (float32 data,
// float64 sum — the package contract for norms) has no NEON spelling the
// Go assembler accepts, and a scalar widen loses to the generic loop
// anyway. Keeping a Go twin of the amd64 kernel here lets the dispatch
// layer stay architecture-blind.
func sumsqF32(x *float32, n int) float64 {
	xs := unsafe.Slice(x, n)
	var s0, s1 float64
	i := 0
	for ; i+1 < n; i += 2 {
		v0, v1 := float64(xs[i]), float64(xs[i+1])
		s0 += v0 * v0
		s1 += v1 * v1
	}
	if i < n {
		v := float64(xs[i])
		s0 += v * v
	}
	return s0 + s1
}
