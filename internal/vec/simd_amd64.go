//go:build amd64 && !noasm

package vec

// The AVX2/FMA backend. Detection is hand-rolled CPUID (the module is
// dependency-free, so x/sys/cpu is not an option): the backend needs AVX2
// and FMA, plus OSXSAVE with XMM+YMM state enabled in XCR0 — without the
// OS half, executing VEX-256 instructions faults even on capable silicon.

const simdArchName = "avx2"

var simdArchSupported = cpuHasAVX2FMA()

func cpuHasAVX2FMA() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&(fmaBit|osxsaveBit|avxBit) != fmaBit|osxsaveBit|avxBit {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// Implemented in cpu_amd64.s.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// Assembly kernels (simd_amd64.s). All take base pointers plus an element
// count and handle every n ≥ 0 internally, including scalar tails; callers
// guarantee only that the pointed-to arrays hold n readable (and, for
// destinations, writable) elements. The gemm micro-kernels are the
// exception: they require k ≥ 1 and full mr×nr tiles (see gemm.go).

//go:noescape
func dotF64(x, y *float64, n int) float64

//go:noescape
func dotF32(x, y *float32, n int) float32

//go:noescape
func axpyF64(alpha float64, x, y *float64, n int)

//go:noescape
func axpyF32(alpha float32, x, y *float32, n int)

//go:noescape
func axpy2F64(alpha float64, x1 *float64, beta float64, x2, y *float64, n int)

//go:noescape
func axpy2F32(alpha float32, x1 *float32, beta float32, x2, y *float32, n int)

//go:noescape
func sumsqF64(x *float64, n int) float64

//go:noescape
func sumsqF32(x *float32, n int) float64

//go:noescape
func gemmKerF64(k int, a, b, c *float64, ldc int)

//go:noescape
func gemmKerF32(k int, a, b, c *float32, ldc int)
