package vec

import (
	"math"
	"math/rand"
	"testing"
)

// Agreement suite for the SIMD kernel family: every assembly kernel is held
// against the generic loops on random data across all unroll remainders and
// unaligned base offsets. The two families intentionally differ in rounding
// (the assembly fuses multiply-adds and accumulates in a different order),
// so agreement is relative to the natural magnitude of the computation —
// Σ|terms| — with a bound a small multiple of n·ε, never bit equality.

// simdLens covers empty, single, every tail remainder of the widest unroll
// (32 lanes for float32 dot), the exact widths, and cache-spanning sizes.
var simdLens = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 23, 31, 32, 33, 63, 64, 65, 100, 127, 128, 129, 255, 256, 257}

// offsets shifts slice bases off 32-byte alignment; the kernels use
// unaligned loads and must be offset-blind.
var offsets = []int{0, 1, 2, 3}

func requireSIMD(t testing.TB) {
	t.Helper()
	if !SIMDSupported() {
		t.Skip("no SIMD backend on this host")
	}
}

func ptrF64(s []float64) *float64 {
	if len(s) == 0 {
		return new(float64)
	}
	return &s[0]
}

func ptrF32(s []float32) *float32 {
	if len(s) == 0 {
		return new(float32)
	}
	return &s[0]
}

// closeAt reports |got−want| ≤ tol·max(scale, 1), with NaN agreeing only
// with NaN. scale is the magnitude of the terms entering the computation,
// so cancellation in the result does not tighten the bound unfairly.
func closeAt(got, want, scale, tol float64) bool {
	if math.IsNaN(want) || math.IsNaN(got) {
		return math.IsNaN(want) && math.IsNaN(got)
	}
	return math.Abs(got-want) <= tol*math.Max(scale, 1)
}

const (
	tolF64 = 1e-12 // ≈ 4500 ULPs of the term sum; n·ε for n=257 is ~6e-14
	tolF32 = 2e-4  // same headroom at float32's ε ≈ 1.2e-7
)

func TestSIMDDotAgree(t *testing.T) {
	requireSIMD(t)
	rng := rand.New(rand.NewSource(20))
	for _, n := range simdLens {
		for _, off := range offsets {
			xb, yb := randSlice(n+off, rng), randSlice(n+off, rng)
			x, y := xb[off:], yb[off:]
			want := dotGeneric(x, y)
			var scale float64
			for i := range x {
				scale += math.Abs(x[i] * y[i])
			}
			if got := dotF64(ptrF64(x), ptrF64(y), n); !closeAt(got, want, scale, tolF64) {
				t.Errorf("dotF64 n=%d off=%d: got %g want %g", n, off, got, want)
			}

			x32, y32 := toF32(x), toF32(y)
			want32 := dotGeneric(x32, y32)
			if got := dotF32(ptrF32(x32), ptrF32(y32), n); !closeAt(float64(got), float64(want32), scale, tolF32) {
				t.Errorf("dotF32 n=%d off=%d: got %g want %g", n, off, got, want32)
			}
		}
	}
}

func toF32(x []float64) []float32 {
	out := make([]float32, len(x))
	for i, v := range x {
		out[i] = float32(v)
	}
	return out
}

func TestSIMDAxpyAgree(t *testing.T) {
	requireSIMD(t)
	rng := rand.New(rand.NewSource(21))
	for _, n := range simdLens {
		for _, off := range offsets {
			for _, alpha := range []float64{1, -1, 0.5, -2.75} {
				xb := randSlice(n+off, rng)
				yb := randSlice(n+off, rng)
				x := xb[off:]
				want := append([]float64(nil), yb[off:]...)
				got := append([]float64(nil), yb[off:]...)
				axpyGeneric(alpha, x, want)
				axpyF64(alpha, ptrF64(x), ptrF64(got), n)
				for i := range got {
					scale := math.Abs(want[i]) + math.Abs(alpha*x[i])
					if !closeAt(got[i], want[i], scale, tolF64) {
						t.Fatalf("axpyF64 n=%d off=%d α=%g i=%d: got %g want %g", n, off, alpha, i, got[i], want[i])
					}
				}

				x32 := toF32(x)
				base32 := toF32(yb[off:])
				w32 := append([]float32(nil), base32...)
				g32 := append([]float32(nil), base32...)
				axpyGeneric(float32(alpha), x32, w32)
				axpyF32(float32(alpha), ptrF32(x32), ptrF32(g32), n)
				for i := range g32 {
					scale := math.Abs(float64(w32[i])) + math.Abs(alpha*float64(x32[i]))
					if !closeAt(float64(g32[i]), float64(w32[i]), scale, tolF32) {
						t.Fatalf("axpyF32 n=%d off=%d α=%g i=%d: got %g want %g", n, off, alpha, i, g32[i], w32[i])
					}
				}
			}
		}
	}
}

func TestSIMDAxpy2Agree(t *testing.T) {
	requireSIMD(t)
	rng := rand.New(rand.NewSource(22))
	for _, n := range simdLens {
		for _, off := range offsets {
			alpha, beta := 1.5, -0.75
			x1 := randSlice(n+off, rng)[off:]
			x2 := randSlice(n+off, rng)[off:]
			yb := randSlice(n+off, rng)[off:]
			want := append([]float64(nil), yb...)
			got := append([]float64(nil), yb...)
			axpy2Generic(alpha, x1, beta, x2, want)
			axpy2F64(alpha, ptrF64(x1), beta, ptrF64(x2), ptrF64(got), n)
			for i := range got {
				scale := math.Abs(want[i]) + math.Abs(alpha*x1[i]) + math.Abs(beta*x2[i])
				if !closeAt(got[i], want[i], scale, tolF64) {
					t.Fatalf("axpy2F64 n=%d off=%d i=%d: got %g want %g", n, off, i, got[i], want[i])
				}
			}

			x132, x232 := toF32(x1), toF32(x2)
			w32 := toF32(yb)
			g32 := append([]float32(nil), w32...)
			axpy2Generic(float32(alpha), x132, float32(beta), x232, w32)
			axpy2F32(float32(alpha), ptrF32(x132), float32(beta), ptrF32(x232), ptrF32(g32), n)
			for i := range g32 {
				scale := math.Abs(float64(w32[i])) + math.Abs(alpha*float64(x132[i])) + math.Abs(beta*float64(x232[i]))
				if !closeAt(float64(g32[i]), float64(w32[i]), scale, tolF32) {
					t.Fatalf("axpy2F32 n=%d off=%d i=%d: got %g want %g", n, off, i, g32[i], w32[i])
				}
			}
		}
	}
}

func TestSIMDSumsqAgree(t *testing.T) {
	requireSIMD(t)
	rng := rand.New(rand.NewSource(23))
	prev := SIMDEnabled()
	defer SetSIMD(prev)
	for _, n := range simdLens {
		for _, off := range offsets {
			x := randSlice(n+off, rng)[off:]
			SetSIMD(false) // reference via the generic accumulation
			want := sumSquares(x, n, 1)
			SetSIMD(prev)
			if got := sumsqF64(ptrF64(x), n); !closeAt(got, want, want, tolF64) {
				t.Errorf("sumsqF64 n=%d off=%d: got %g want %g", n, off, got, want)
			}
			x32 := toF32(x)
			SetSIMD(false)
			want32 := sumSquares(x32, n, 1)
			SetSIMD(prev)
			// float32 data, float64 accumulation on both sides: only the
			// summation order differs, so the bound is the float64 one.
			if got := sumsqF32(ptrF32(x32), n); !closeAt(got, want32, want32, tolF64) {
				t.Errorf("sumsqF32 n=%d off=%d: got %g want %g", n, off, got, want32)
			}
		}
	}
}

// TestSIMDNrm2Complex exercises the interleaved reinterpret path: a complex
// norm with the backend on must agree with the backend-off norm to float64
// tolerance in both complex domains.
func TestSIMDNrm2Complex(t *testing.T) {
	requireSIMD(t)
	rng := rand.New(rand.NewSource(24))
	prev := SIMDEnabled()
	defer SetSIMD(prev)
	for _, n := range []int{0, 1, 7, 8, 9, 64, 129} {
		z := make([]complex128, n)
		z64 := make([]complex64, n)
		for i := range z {
			re, im := rng.NormFloat64(), rng.NormFloat64()
			z[i] = complex(re, im)
			z64[i] = complex(float32(re), float32(im))
		}
		SetSIMD(false)
		wantZ, wantC := Nrm2(z), Nrm2(z64)
		SetSIMD(true)
		if got := Nrm2(z); !closeAt(got, wantZ, wantZ, tolF64) {
			t.Errorf("complex128 Nrm2 n=%d: got %g want %g", n, got, wantZ)
		}
		if got := Nrm2(z64); !closeAt(got, wantC, wantC, tolF64) {
			t.Errorf("complex64 Nrm2 n=%d: got %g want %g", n, got, wantC)
		}
	}
}

// TestSIMDDispatchedPrimitives drives the exported entry points (not the
// raw kernels) with the backend toggled, covering the slice-level dispatch
// itself: length gate, alpha-zero skip ordering, and T-to-monomorphic
// plumbing for all four primitives.
func TestSIMDDispatchedPrimitives(t *testing.T) {
	requireSIMD(t)
	rng := rand.New(rand.NewSource(25))
	prev := SIMDEnabled()
	defer SetSIMD(prev)
	for _, n := range []int{1, 15, 16, 17, 100} {
		x, y := randSlice(n, rng), randSlice(n, rng)
		SetSIMD(false)
		wantDot := Dot(x, y)
		wantNrm := Nrm2(x)
		yGen := append([]float64(nil), y...)
		Axpy(1.25, x, yGen)
		SetSIMD(true)
		if got := Dot(x, y); !closeAt(got, wantDot, wantNrm*wantNrm, tolF64) {
			t.Errorf("Dot n=%d: %g vs %g", n, got, wantDot)
		}
		if got := Nrm2(x); !closeAt(got, wantNrm, wantNrm, tolF64) {
			t.Errorf("Nrm2 n=%d: %g vs %g", n, got, wantNrm)
		}
		ySIMD := append([]float64(nil), y...)
		Axpy(1.25, x, ySIMD)
		for i := range ySIMD {
			if !closeAt(ySIMD[i], yGen[i], math.Abs(yGen[i])+math.Abs(x[i]), tolF64) {
				t.Fatalf("Axpy n=%d i=%d: %g vs %g", n, i, ySIMD[i], yGen[i])
			}
		}
		// 0·x must remain a structural skip on both families: an Inf in x
		// cannot leak a NaN into y.
		yInf := append([]float64(nil), y...)
		xInf := append([]float64(nil), x...)
		xInf[0] = math.Inf(1)
		Axpy(0, xInf, yInf)
		for i := range yInf {
			if yInf[i] != y[i] {
				t.Fatalf("Axpy(0, …) modified y[%d]", i)
			}
		}
	}
}

func TestSetFamily(t *testing.T) {
	prev := SIMDEnabled()
	defer SetSIMD(prev)
	if err := SetFamily(FamilyGeneric); err != nil || ActiveFamily() != FamilyGeneric {
		t.Fatalf("SetFamily(generic): err=%v active=%s", err, ActiveFamily())
	}
	if err := SetFamily("turbo"); err == nil {
		t.Fatal("SetFamily accepted an unknown family")
	}
	err := SetFamily(FamilySIMD)
	if SIMDSupported() {
		if err != nil || ActiveFamily() != FamilySIMD {
			t.Fatalf("SetFamily(simd) on a SIMD host: err=%v active=%s", err, ActiveFamily())
		}
		if got := SIMDName(); got != "avx2" && got != "neon" {
			t.Fatalf("SIMDName()=%q", got)
		}
	} else {
		if err == nil {
			t.Fatal("SetFamily(simd) succeeded on a host without a backend")
		}
		if len(Families()) != 1 || Families()[0] != FamilyGeneric {
			t.Fatalf("Families()=%v on a host without a backend", Families())
		}
	}
}

// naiveGemm is the reference for the packed drivers: c += alpha·op(A)·B.
func naiveGemm(m, n, k int, alpha float64, a []float64, lda int, transA bool, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for l := 0; l < k; l++ {
				var av float64
				if transA {
					av = a[l*lda+i]
				} else {
					av = a[i*lda+l]
				}
				s += av * b[l*ldb+j]
			}
			c[i*ldc+j] += alpha * s
		}
	}
}

func TestSIMDGemmAgree(t *testing.T) {
	requireSIMD(t)
	rng := rand.New(rand.NewSource(26))
	shapes := [][3]int{
		{1, 4, 1}, {1, 8, 3}, {3, 7, 2}, {4, 8, 1}, {4, 8, 5}, {5, 9, 4},
		{7, 15, 7}, {8, 16, 8}, {9, 17, 3}, {12, 24, 11}, {13, 33, 16},
		{16, 40, 32}, {31, 63, 17}, {32, 64, 32}, {37, 53, 29},
	}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		for _, transA := range []bool{false, true} {
			for _, alpha := range []float64{1, -1, 0.5} {
				lda := k + 2
				if transA {
					lda = m + 2
				}
				ldb, ldc := n+1, n+3
				arows := m
				if transA {
					arows = k
				}
				a := randSlice(arows*lda, rng)
				b := randSlice(k*ldb, rng)
				c0 := randSlice(m*ldc, rng)

				want := append([]float64(nil), c0...)
				naiveGemm(m, n, k, alpha, a, lda, transA, b, ldb, want, ldc)

				got := append([]float64(nil), c0...)
				pack := make([]float64, GemmPackLen[float64](m, n, k))
				gemmF64(m, n, k, alpha, a, lda, transA, b, ldb, got, ldc, pack)
				for i := range got {
					if !closeAt(got[i], want[i], float64(k)+math.Abs(want[i]), tolF64) {
						t.Fatalf("gemmF64 m=%d n=%d k=%d transA=%v α=%g: c[%d]=%g want %g",
							m, n, k, transA, alpha, i, got[i], want[i])
					}
				}

				a32, b32 := toF32(a), toF32(b)
				c32 := toF32(c0)
				w32 := make([]float64, len(c32))
				for i, v := range c32 {
					w32[i] = float64(v)
				}
				wref := append([]float64(nil), w32...)
				af, bf := make([]float64, len(a32)), make([]float64, len(b32))
				for i, v := range a32 {
					af[i] = float64(v)
				}
				for i, v := range b32 {
					bf[i] = float64(v)
				}
				naiveGemm(m, n, k, alpha, af, lda, transA, bf, ldb, wref, ldc)
				g32 := append([]float32(nil), c32...)
				pack32 := make([]float32, GemmPackLen[float32](m, n, k))
				gemmF32(m, n, k, float32(alpha), a32, lda, transA, b32, ldb, g32, ldc, pack32)
				for i := range g32 {
					if !closeAt(float64(g32[i]), wref[i], float64(k)+math.Abs(wref[i]), tolF32) {
						t.Fatalf("gemmF32 m=%d n=%d k=%d transA=%v α=%g: c[%d]=%g want %g",
							m, n, k, transA, alpha, i, g32[i], wref[i])
					}
				}
			}
		}
	}
}

func TestGemmDispatchGates(t *testing.T) {
	prev := SIMDEnabled()
	defer SetSIMD(prev)
	pack := make([]float64, GemmPackLen[float64](64, 64, 64))
	a := make([]float64, 64*64)
	// Degenerate shapes are "handled" (nothing to do) regardless of family.
	if !GemmNN(0, 64, 64, 1.0, a, 64, a, 64, a, 64, pack) {
		t.Error("GemmNN(m=0) should report handled")
	}
	SetSIMD(false)
	if GemmNN(64, 64, 64, 1.0, a, 64, a, 64, a, 64, pack) {
		t.Error("GemmNN handled a product with the backend disabled")
	}
	if SIMDSupported() {
		SetSIMD(true)
		if GemmNN(64, 64, 64, 1.0, a, 64, a, 64, a, 64, pack[:4]) {
			t.Error("GemmNN handled a product with insufficient pack scratch")
		}
		zz := make([]complex128, 64*64)
		if GemmNN(64, 64, 64, complex(1, 0), zz, 64, zz, 64, zz, 64, make([]complex128, 8)) {
			t.Error("GemmNN handled a complex product")
		}
	}
}

// FuzzVecSIMD cross-checks the assembly kernels against the generic loops
// on fuzzer-chosen lengths, offsets and raw float64 bit patterns. Non-
// finite values are legal inputs: the families must then agree on
// non-finiteness (exact NaN/Inf placement may differ at the overflow
// boundary because FMA skips the intermediate rounding).
func FuzzVecSIMD(f *testing.F) {
	f.Add(uint8(0), uint8(7), uint8(1), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), uint8(33), uint8(3), []byte{255, 255, 255, 255, 255, 255, 255, 255})
	f.Add(uint8(2), uint8(16), uint8(0), []byte{0, 0, 0, 0, 0, 0, 240, 127})
	f.Add(uint8(3), uint8(65), uint8(2), []byte{1, 0, 0, 0, 0, 0, 240, 255})
	f.Fuzz(func(t *testing.T, op, nRaw, offRaw uint8, raw []byte) {
		if !SIMDSupported() {
			t.Skip("no SIMD backend")
		}
		n := int(nRaw) % 130
		off := int(offRaw) % 4
		vals := make([]float64, 0, 2*(n+off)+2)
		for i := 0; i+8 <= len(raw) && len(vals) < cap(vals); i += 8 {
			bits := uint64(0)
			for b := 0; b < 8; b++ {
				bits = bits<<8 | uint64(raw[i+b])
			}
			vals = append(vals, math.Float64frombits(bits))
		}
		rng := rand.New(rand.NewSource(int64(n)*7 + int64(off)))
		for len(vals) < cap(vals) {
			vals = append(vals, rng.NormFloat64())
		}
		x := vals[off : off+n]
		y := vals[n+off+1+off : n+off+1+off+n]

		bothOrNeither := func(name string, got, want float64) {
			gf, wf := isFinite(got), isFinite(want)
			if gf != wf {
				t.Fatalf("%s finiteness split: got %g want %g (x=%v y=%v)", name, got, want, x, y)
			}
			if !gf {
				return
			}
			var scale float64
			for i := range x {
				scale += math.Abs(x[i]) * math.Abs(y[i])
			}
			if !isFinite(scale) {
				return
			}
			if !closeAt(got, want, scale, tolF64) {
				t.Fatalf("%s: got %g want %g (x=%v y=%v)", name, got, want, x, y)
			}
		}

		switch op % 3 {
		case 0:
			bothOrNeither("dot", dotF64(ptrF64(x), ptrF64(y), n), dotGeneric(x, y))
		case 1:
			want := append([]float64(nil), y...)
			got := append([]float64(nil), y...)
			axpyGeneric(1.5, x, want)
			axpyF64(1.5, ptrF64(x), ptrF64(got), n)
			for i := range got {
				gf, wf := isFinite(got[i]), isFinite(want[i])
				if gf != wf {
					t.Fatalf("axpy[%d] finiteness split: got %g want %g", i, got[i], want[i])
				}
				if gf && !closeAt(got[i], want[i], math.Abs(want[i])+math.Abs(1.5*x[i]), tolF64) {
					t.Fatalf("axpy[%d]: got %g want %g", i, got[i], want[i])
				}
			}
		case 2:
			prev := SIMDEnabled()
			SetSIMD(false)
			want := sumSquares(x, n, 1)
			SetSIMD(prev)
			got := sumsqF64(ptrF64(x), n)
			if isFinite(got) != isFinite(want) {
				t.Fatalf("sumsq finiteness split: got %g want %g (x=%v)", got, want, x)
			}
			if isFinite(want) && !closeAt(got, want, want, tolF64) {
				t.Fatalf("sumsq: got %g want %g (x=%v)", got, want, x)
			}
		}
	})
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
