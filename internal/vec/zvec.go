package vec

import (
	"math"
	"math/cmplx"
)

// ZDotu returns the unconjugated product Σ x[i]·y[i] (BLAS zdotu), the form
// the T-factor assembly needs. len(y) must be ≥ len(x).
func ZDotu(x, y []complex128) complex128 {
	n := len(x)
	if n == 0 {
		return 0
	}
	y = y[:n]
	var s0, s1 complex128
	i := 0
	for ; i+1 < n; i += 2 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
	}
	if i < n {
		s0 += x[i] * y[i]
	}
	return s0 + s1
}

// ZDotc returns the conjugated product Σ conj(x[i])·y[i] (BLAS zdotc).
func ZDotc(x, y []complex128) complex128 {
	n := len(x)
	if n == 0 {
		return 0
	}
	y = y[:n]
	var s0, s1 complex128
	i := 0
	for ; i+1 < n; i += 2 {
		s0 += cmplx.Conj(x[i]) * y[i]
		s1 += cmplx.Conj(x[i+1]) * y[i+1]
	}
	if i < n {
		s0 += cmplx.Conj(x[i]) * y[i]
	}
	return s0 + s1
}

// ZAxpy computes y += α·x over len(x) elements. α = 0 is a no-op.
func ZAxpy(alpha complex128, x, y []complex128) {
	if alpha == 0 {
		return
	}
	n := len(x)
	if n == 0 {
		return
	}
	y = y[:n]
	i := 0
	for ; i+1 < n; i += 2 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
	}
	if i < n {
		y[i] += alpha * x[i]
	}
}

// ZAxpy2 computes y += α·x1 + β·x2 in a single pass. Each zero scalar is a
// structural zero: its term is skipped entirely.
func ZAxpy2(alpha complex128, x1 []complex128, beta complex128, x2, y []complex128) {
	if alpha == 0 {
		ZAxpy(beta, x2, y)
		return
	}
	if beta == 0 {
		ZAxpy(alpha, x1, y)
		return
	}
	n := len(x1)
	if n == 0 {
		return
	}
	x2 = x2[:n]
	y = y[:n]
	for i := 0; i < n; i++ {
		y[i] += alpha*x1[i] + beta*x2[i]
	}
}

// ZScal computes x *= α in place.
func ZScal(alpha complex128, x []complex128) {
	for i := range x {
		x[i] *= alpha
	}
}

// ZSub computes y -= x over len(x) elements.
func ZSub(x, y []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	y = y[:n]
	for i := 0; i < n; i++ {
		y[i] -= x[i]
	}
}

// ZAddScaled computes y = α·y + β·x in a single pass.
func ZAddScaled(alpha, beta complex128, x, y []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	y = y[:n]
	for i := 0; i < n; i++ {
		y[i] = alpha*y[i] + beta*x[i]
	}
}

// ZDotAxpy applies one complex Householder reflector H = I − τ·(1,v)·(1,v)ᴴ
// from the left to the column (c0; c) in a single fused call, in LAPACK's
// convention (Hᴴ is applied when τ is passed conjugated): w = τ·(c0 +
// Σ conj(v[i])·c[i]), then c -= w·v. Returns w; the caller finishes with
// c0 -= w. Like DotAxpy, this serves column-major callers; the row-major
// tile kernels use ZAxpy row sweeps.
func ZDotAxpy(tau, c0 complex128, v, c []complex128) (w complex128) {
	w = tau * (c0 + ZDotc(v, c))
	ZAxpy(-w, v, c)
	return w
}

// ZNrm2 returns the Euclidean norm of a complex vector — the norm of its
// real and imaginary parts interleaved — with the same scaled two-pass
// scheme as Nrm2.
func ZNrm2(x []complex128) float64 {
	return ZNrm2Inc(x, len(x), 1)
}

// ZNrm2Inc returns the Euclidean norm of the n strided complex elements
// x[0], x[inc], …, x[(n−1)·inc]. Single unscaled pass with the same scaled
// fallback as Nrm2Inc.
func ZNrm2Inc(x []complex128, n, inc int) float64 {
	var s float64
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+inc {
		re, im := real(x[ix]), imag(x[ix])
		s += re*re + im*im
	}
	if nrm2SumOK(s) {
		return math.Sqrt(s)
	}
	return znrm2Scaled(x, n, inc)
}

// znrm2Scaled is the rare-path complex norm; see nrm2Scaled.
func znrm2Scaled(x []complex128, n, inc int) float64 {
	amax := 0.0
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+inc {
		if av := math.Abs(real(x[ix])); av > amax || math.IsNaN(av) {
			amax = av
		}
		if av := math.Abs(imag(x[ix])); av > amax || math.IsNaN(av) {
			amax = av
		}
	}
	if amax == 0 || math.IsNaN(amax) || math.IsInf(amax, 0) {
		return amax
	}
	var s float64
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+inc {
		re, im := real(x[ix])/amax, imag(x[ix])/amax
		s += re*re + im*im
	}
	return amax * math.Sqrt(s)
}
