package vec

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// The complex-domain tests exercise the same generic primitives as
// vec_test.go instantiated at complex128, plus the conjugating variants
// (Dotc, DotAxpy) whose real instantiations degenerate to Dot.

func randZSlice(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func almostEqZ(a, b complex128) bool {
	if a == b {
		return true
	}
	d := cmplx.Abs(a - b)
	scale := math.Max(cmplx.Abs(a), cmplx.Abs(b))
	return d <= 1e-12*math.Max(scale, 1)
}

func TestComplexDotDotc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range lengths {
		x, y := randZSlice(n, rng), randZSlice(n, rng)
		var wantU, wantC complex128
		for i := range x {
			wantU += x[i] * y[i]
			wantC += cmplx.Conj(x[i]) * y[i]
		}
		if got := Dot(x, y); !almostEqZ(got, wantU) {
			t.Errorf("n=%d: Dot=%v want %v", n, got, wantU)
		}
		if got := Dotc(x, y); !almostEqZ(got, wantC) {
			t.Errorf("n=%d: Dotc=%v want %v", n, got, wantC)
		}
	}
}

func TestComplexAxpyAxpy2Sub(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	alpha, beta := complex(1.5, -0.5), complex(-2, 0.25)
	for _, n := range lengths {
		x1, x2, y := randZSlice(n, rng), randZSlice(n, rng), randZSlice(n, rng)
		want := append([]complex128(nil), y...)
		for i := range want {
			want[i] += alpha * x1[i]
		}
		Axpy(alpha, x1, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d: Axpy[%d]=%v want %v", n, i, y[i], want[i])
			}
		}
		for i := range want {
			want[i] += alpha*x1[i] + beta*x2[i]
		}
		Axpy2(alpha, x1, beta, x2, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d: Axpy2[%d]=%v want %v", n, i, y[i], want[i])
			}
		}
		for i := range want {
			want[i] -= x1[i]
		}
		Sub(x1, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d: Sub[%d]=%v want %v", n, i, y[i], want[i])
			}
		}
	}
	// α = 0 must be a structural no-op.
	y := []complex128{1 + 2i}
	Axpy(0, []complex128{cmplx.Inf()}, y)
	if y[0] != 1+2i {
		t.Error("Axpy with α=0 touched y")
	}
}

func TestComplexScalAddScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	alpha, beta := complex(0.5, 1), complex(2, -1)
	for _, n := range lengths {
		x, y := randZSlice(n, rng), randZSlice(n, rng)
		want := append([]complex128(nil), y...)
		for i := range want {
			want[i] *= alpha
		}
		Scal(alpha, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d: Scal[%d]=%v want %v", n, i, y[i], want[i])
			}
		}
		for i := range want {
			want[i] = alpha*want[i] + beta*x[i]
		}
		AddScaled(alpha, beta, x, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d: AddScaled[%d]=%v want %v", n, i, y[i], want[i])
			}
		}
	}
}

func TestComplexDotAxpy(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range lengths {
		v, c := randZSlice(n, rng), randZSlice(n, rng)
		c0 := complex(rng.NormFloat64(), rng.NormFloat64())
		tau := complex(rng.NormFloat64(), rng.NormFloat64())
		var dot complex128
		for i := range v {
			dot += cmplx.Conj(v[i]) * c[i]
		}
		wantW := tau * (c0 + dot)
		wantC := append([]complex128(nil), c...)
		for i := range wantC {
			wantC[i] -= wantW * v[i]
		}
		w := DotAxpy(tau, c0, v, c)
		if !almostEqZ(w, wantW) {
			t.Errorf("n=%d: DotAxpy w=%v want %v", n, w, wantW)
		}
		for i := range c {
			if !almostEqZ(c[i], wantC[i]) {
				t.Fatalf("n=%d: DotAxpy c[%d]=%v want %v", n, i, c[i], wantC[i])
			}
		}
	}
}

func TestComplexNrm2(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range lengths {
		x := randZSlice(n, rng)
		var want float64
		for _, v := range x {
			want = math.Hypot(want, cmplx.Abs(v))
		}
		if got := Nrm2(x); !almostEq(got, want) {
			t.Errorf("n=%d: Nrm2=%g want %g", n, got, want)
		}
	}
	// Overflow range: |x|² would be +Inf naively.
	big := []complex128{complex(1e200, 1e200), complex(-1e200, 0)}
	want := 1e200 * math.Sqrt(3)
	if got := Nrm2(big); !almostEq(got, want) {
		t.Errorf("overflow-range Nrm2=%g want %g", got, want)
	}
	// Underflow range: |x|² would be 0 naively.
	small := []complex128{complex(1e-200, 0), complex(0, 1e-200)}
	want = 1e-200 * math.Sqrt2
	if got := Nrm2(small); !almostEq(got, want) {
		t.Errorf("underflow-range Nrm2=%g want %g", got, want)
	}
	if got := Nrm2Inc(big, 1, 2); !almostEq(got, 1e200*math.Sqrt2) {
		t.Errorf("strided Nrm2Inc=%g want %g", got, 1e200*math.Sqrt2)
	}
}

// TestScalarHooks pins the hook semantics across all four domains.
func TestScalarHooks(t *testing.T) {
	if Conj(complex(1.0, 2.0)) != complex(1.0, -2.0) {
		t.Error("Conj(complex128) wrong")
	}
	if Conj(complex(float32(1), float32(2))) != complex(float32(1), float32(-2)) {
		t.Error("Conj(complex64) wrong")
	}
	if Conj(-1.5) != -1.5 || Conj(float32(-1.5)) != float32(-1.5) {
		t.Error("Conj must be the identity on the real types")
	}
	if Abs(complex(3.0, 4.0)) != 5 || Abs(-2.0) != 2 || Abs(float32(-2)) != 2 {
		t.Error("Abs wrong")
	}
	if Abs2(complex(3.0, 4.0)) != 25 || Abs2(float32(3)) != 9 {
		t.Error("Abs2 wrong")
	}
	if RealPart(complex(3.0, 4.0)) != 3 || ImagPart(complex(3.0, 4.0)) != 4 {
		t.Error("component hooks wrong for complex128")
	}
	if RealPart(float32(2.5)) != 2.5 || ImagPart(7.0) != 0 {
		t.Error("component hooks wrong for real types")
	}
	if FromParts[complex64](1, -2) != complex(float32(1), float32(-2)) {
		t.Error("FromParts complex64 wrong")
	}
	if FromParts[float64](1.25, 0) != 1.25 {
		t.Error("FromParts float64 wrong")
	}
	if !IsComplex[complex64]() || !IsComplex[complex128]() || IsComplex[float32]() || IsComplex[float64]() {
		t.Error("IsComplex wrong")
	}
}

// TestSinglePrecisionPrimitives smoke-tests the float32/complex64
// instantiations the new public precisions run on.
func TestSinglePrecisionPrimitives(t *testing.T) {
	x := []float32{1, 2, 3, 4, 5}
	y := []float32{5, 4, 3, 2, 1}
	if got := Dot(x, y); got != 35 {
		t.Errorf("float32 Dot=%g want 35", got)
	}
	Axpy(float32(2), x, y)
	if y[0] != 7 || y[4] != 11 {
		t.Errorf("float32 Axpy wrong: %v", y)
	}
	if got := Nrm2([]float32{3, 4}); got != 5 {
		t.Errorf("float32 Nrm2=%g want 5", got)
	}
	// float32 squares that overflow float32 but not the float64 accumulator.
	if got := Nrm2([]float32{3e30, 4e30}); math.Abs(got-5e30) > 1e-6*5e30 {
		t.Errorf("float32 wide-range Nrm2=%g want 5e30", got)
	}
	cx := []complex64{complex(1, 1), complex(2, -1)}
	cy := []complex64{complex(3, 0), complex(0, 1)}
	if got := Dotc(cx, cy); got != complex(float32(2), float32(-1)) {
		t.Errorf("complex64 Dotc=%v want (2-1i)", got)
	}
	if got := Nrm2([]complex64{complex(3, 4)}); got != 5 {
		t.Errorf("complex64 Nrm2=%g want 5", got)
	}
}
