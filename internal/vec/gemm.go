package vec

// Packed register-blocked micro-GEMM, the bulk engine behind the
// trailing-matrix update kernels. The drivers follow the classic BLIS
// decomposition scaled down to tile-sized operands (everything a kernel
// touches fits in L2 at the nb the autotuner picks, so a single packing
// level suffices):
//
//   - B is packed into column strips of nr, each strip k·nr contiguous
//     elements, zero-padded at the right edge;
//   - A is packed into row strips of mr (alpha folded in during the copy,
//     so the micro-kernel never sees a scale), zero-padded at the bottom
//     edge;
//   - the mr×nr micro-kernel (simd_<arch>.s) keeps the C tile in vector
//     registers across the whole k loop — full tiles accumulate straight
//     into C, edge tiles into a zeroed mr×nr scratch whose valid region is
//     then added back, so the assembly never needs a partial-tile path.
//
// Pack scratch is caller-owned (the kernels carve it out of the per-worker
// workspace, see kernel.WorkLen) and sized by GemmPackLen. The drivers
// cover the two shapes the QR updates need: C += α·A·B (GemmNN) and
// C += α·Aᵀ·B (GemmTN, A stored k×m). Complex domains are not handled
// here — their conjugation structure doesn't map onto the real micro-
// kernel — and callers must keep their generic loops as the fallback for
// the many reasons a call can decline: backend off, complex T, degenerate
// or too-small shape, short scratch.

// Micro-tile shapes. float64: 4×8 (8 ymm / 16 NEON q accumulators);
// float32: 4×16 (same register budget at twice the lane count).
const (
	gemmMR   = 4
	gemmNR64 = 8
	gemmNR32 = 16
)

// gemmMinWork gates dispatch by m·n·k: below this the packing pass costs
// more than the vector win. The bound also rejects degenerate shapes, and
// skinny-C calls (n < mr columns) are declined separately — a 1-column
// "GEMM" would waste 7/8 of every micro-tile on padding.
const gemmMinWork = 4096

func roundUpTo(v, q int) int { return (v + q - 1) / q * q }

// GemmPackLen returns the scratch length (in elements of T) GemmNN/GemmTN
// need for an m×n×k product, or 0 for domains the packed path never
// serves. It is monotone in each dimension, so sizing for upper bounds
// covers every smaller call.
func GemmPackLen[T Scalar](m, n, k int) int {
	if m <= 0 || n <= 0 || k <= 0 {
		return 0
	}
	switch any(x0[T]()).(type) {
	case float64:
		return roundUpTo(m, gemmMR)*k + k*roundUpTo(n, gemmNR64) + gemmMR*gemmNR64
	case float32:
		return roundUpTo(m, gemmMR)*k + k*roundUpTo(n, gemmNR32) + gemmMR*gemmNR32
	}
	return 0
}

// GemmPackBound bounds GemmPackLen over all domains for any product whose
// dimensions are at most maxM×maxN×maxK (the float32 tile shape is the
// wider one). It is monotone in each argument, so workspace sized from
// upper bounds (kernel.WorkLen does this) covers every smaller call in
// every T without being generic itself.
func GemmPackBound(maxM, maxN, maxK int) int {
	if maxM <= 0 || maxN <= 0 || maxK <= 0 {
		return 0
	}
	return roundUpTo(maxM, gemmMR)*maxK + maxK*roundUpTo(maxN, gemmNR32) + gemmMR*gemmNR32
}

// GemmOK reports whether a GemmNN/GemmTN call of shape m×n×k with packLen
// elements of scratch will take the packed path (nonzero alpha assumed).
// Callers that split a computation into a packed bulk part and a scalar
// remainder consult this first so they can commit to one split before
// touching any data.
func GemmOK[T Scalar](m, n, k, packLen int) bool {
	if m <= 0 || n <= 0 || k <= 0 {
		return false
	}
	if !simdEnabled.Load() || n < gemmMR || m*n*k < gemmMinWork {
		return false
	}
	pl := GemmPackLen[T](m, n, k)
	return pl > 0 && packLen >= pl
}

func x0[T Scalar]() T { var z T; return z }

// GemmNN computes c[i,j] += α · Σ_l a[i,l]·b[l,j] for an m×n C (stride
// ldc), m×k A (stride lda) and k×n B (stride ldb), using the packed SIMD
// path. It reports whether it handled the product; on false the caller
// must run its generic fallback. A true return with m, n or k ≤ 0 means
// "nothing to do". C must not alias A or B.
func GemmNN[T Scalar](m, n, k int, alpha T, a []T, lda int, b []T, ldb int, c []T, ldc int, pack []T) bool {
	return gemmDispatch(m, n, k, alpha, a, lda, false, b, ldb, c, ldc, pack)
}

// GemmTN is GemmNN with A stored transposed: A is k×m with stride lda and
// c[i,j] += α · Σ_l a[l,i]·b[l,j]. This is the W := VᵀC shape of the
// block-reflector updates, where V's rows are contiguous.
func GemmTN[T Scalar](m, n, k int, alpha T, a []T, lda int, b []T, ldb int, c []T, ldc int, pack []T) bool {
	return gemmDispatch(m, n, k, alpha, a, lda, true, b, ldb, c, ldc, pack)
}

func gemmDispatch[T Scalar](m, n, k int, alpha T, a []T, lda int, transA bool, b []T, ldb int, c []T, ldc int, pack []T) bool {
	if m <= 0 || n <= 0 || k <= 0 {
		return true
	}
	if alpha == 0 || !GemmOK[T](m, n, k, len(pack)) {
		return false
	}
	switch as := any(a).(type) {
	case []float64:
		gemmF64(m, n, k, any(alpha).(float64), as, lda, transA,
			any(b).([]float64), ldb, any(c).([]float64), ldc, any(pack).([]float64))
		return true
	case []float32:
		gemmF32(m, n, k, any(alpha).(float32), as, lda, transA,
			any(b).([]float32), ldb, any(c).([]float32), ldc, any(pack).([]float32))
		return true
	}
	return false
}

// gemmF64 and gemmF32 are deliberate near-twins: the micro-kernel
// signatures are monomorphic (base pointers), so sharing the driver
// generically would force unsafe pointer plumbing for no reader benefit.

func gemmF64(m, n, k int, alpha float64, a []float64, lda int, transA bool, b []float64, ldb int, c []float64, ldc int, pack []float64) {
	const mr, nr = gemmMR, gemmNR64
	mp, np := roundUpTo(m, mr), roundUpTo(n, nr)
	ap := pack[:mp*k]
	bp := pack[mp*k : mp*k+k*np]
	tmp := pack[mp*k+k*np : mp*k+k*np+mr*nr]

	idx := 0
	for j0 := 0; j0 < n; j0 += nr {
		w := min(nr, n-j0)
		for l := 0; l < k; l++ {
			row := b[l*ldb+j0 : l*ldb+j0+w]
			copy(bp[idx:idx+w], row)
			for j := w; j < nr; j++ {
				bp[idx+j] = 0
			}
			idx += nr
		}
	}
	idx = 0
	for i0 := 0; i0 < m; i0 += mr {
		h := min(mr, m-i0)
		if transA {
			for l := 0; l < k; l++ {
				row := a[l*lda+i0 : l*lda+i0+h]
				for r := 0; r < h; r++ {
					ap[idx+r] = alpha * row[r]
				}
				for r := h; r < mr; r++ {
					ap[idx+r] = 0
				}
				idx += mr
			}
		} else {
			for l := 0; l < k; l++ {
				for r := 0; r < h; r++ {
					ap[idx+r] = alpha * a[(i0+r)*lda+l]
				}
				for r := h; r < mr; r++ {
					ap[idx+r] = 0
				}
				idx += mr
			}
		}
	}

	for i0 := 0; i0 < m; i0 += mr {
		h := min(mr, m-i0)
		as := ap[(i0/mr)*mr*k:]
		for j0 := 0; j0 < n; j0 += nr {
			w := min(nr, n-j0)
			bs := bp[(j0/nr)*nr*k:]
			if h == mr && w == nr {
				gemmKerF64(k, &as[0], &bs[0], &c[i0*ldc+j0], ldc)
				continue
			}
			clear(tmp)
			gemmKerF64(k, &as[0], &bs[0], &tmp[0], nr)
			for r := 0; r < h; r++ {
				crow := c[(i0+r)*ldc+j0 : (i0+r)*ldc+j0+w]
				trow := tmp[r*nr : r*nr+w]
				for j := range crow {
					crow[j] += trow[j]
				}
			}
		}
	}
}

func gemmF32(m, n, k int, alpha float32, a []float32, lda int, transA bool, b []float32, ldb int, c []float32, ldc int, pack []float32) {
	const mr, nr = gemmMR, gemmNR32
	mp, np := roundUpTo(m, mr), roundUpTo(n, nr)
	ap := pack[:mp*k]
	bp := pack[mp*k : mp*k+k*np]
	tmp := pack[mp*k+k*np : mp*k+k*np+mr*nr]

	idx := 0
	for j0 := 0; j0 < n; j0 += nr {
		w := min(nr, n-j0)
		for l := 0; l < k; l++ {
			row := b[l*ldb+j0 : l*ldb+j0+w]
			copy(bp[idx:idx+w], row)
			for j := w; j < nr; j++ {
				bp[idx+j] = 0
			}
			idx += nr
		}
	}
	idx = 0
	for i0 := 0; i0 < m; i0 += mr {
		h := min(mr, m-i0)
		if transA {
			for l := 0; l < k; l++ {
				row := a[l*lda+i0 : l*lda+i0+h]
				for r := 0; r < h; r++ {
					ap[idx+r] = alpha * row[r]
				}
				for r := h; r < mr; r++ {
					ap[idx+r] = 0
				}
				idx += mr
			}
		} else {
			for l := 0; l < k; l++ {
				for r := 0; r < h; r++ {
					ap[idx+r] = alpha * a[(i0+r)*lda+l]
				}
				for r := h; r < mr; r++ {
					ap[idx+r] = 0
				}
				idx += mr
			}
		}
	}

	for i0 := 0; i0 < m; i0 += mr {
		h := min(mr, m-i0)
		as := ap[(i0/mr)*mr*k:]
		for j0 := 0; j0 < n; j0 += nr {
			w := min(nr, n-j0)
			bs := bp[(j0/nr)*nr*k:]
			if h == mr && w == nr {
				gemmKerF32(k, &as[0], &bs[0], &c[i0*ldc+j0], ldc)
				continue
			}
			clear(tmp)
			gemmKerF32(k, &as[0], &bs[0], &tmp[0], nr)
			for r := 0; r < h; r++ {
				crow := c[(i0+r)*ldc+j0 : (i0+r)*ldc+j0+w]
				trow := tmp[r*nr : r*nr+w]
				for j := range crow {
					crow[j] += trow[j]
				}
			}
		}
	}
}
