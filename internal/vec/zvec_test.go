package vec

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randZSlice(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func almostEqZ(a, b complex128) bool {
	if a == b {
		return true
	}
	d := cmplx.Abs(a - b)
	scale := math.Max(cmplx.Abs(a), cmplx.Abs(b))
	return d <= 1e-12*math.Max(scale, 1)
}

func TestZDotuZDotc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range lengths {
		x, y := randZSlice(n, rng), randZSlice(n, rng)
		var wantU, wantC complex128
		for i := range x {
			wantU += x[i] * y[i]
			wantC += cmplx.Conj(x[i]) * y[i]
		}
		if got := ZDotu(x, y); !almostEqZ(got, wantU) {
			t.Errorf("n=%d: ZDotu=%v want %v", n, got, wantU)
		}
		if got := ZDotc(x, y); !almostEqZ(got, wantC) {
			t.Errorf("n=%d: ZDotc=%v want %v", n, got, wantC)
		}
	}
}

func TestZAxpyZAxpy2ZSub(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	alpha, beta := complex(1.5, -0.5), complex(-2, 0.25)
	for _, n := range lengths {
		x1, x2, y := randZSlice(n, rng), randZSlice(n, rng), randZSlice(n, rng)
		want := append([]complex128(nil), y...)
		for i := range want {
			want[i] += alpha * x1[i]
		}
		ZAxpy(alpha, x1, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d: ZAxpy[%d]=%v want %v", n, i, y[i], want[i])
			}
		}
		for i := range want {
			want[i] += alpha*x1[i] + beta*x2[i]
		}
		ZAxpy2(alpha, x1, beta, x2, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d: ZAxpy2[%d]=%v want %v", n, i, y[i], want[i])
			}
		}
		for i := range want {
			want[i] -= x1[i]
		}
		ZSub(x1, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d: ZSub[%d]=%v want %v", n, i, y[i], want[i])
			}
		}
	}
	// α = 0 must be a structural no-op.
	y := []complex128{1 + 2i}
	ZAxpy(0, []complex128{cmplx.Inf()}, y)
	if y[0] != 1+2i {
		t.Error("ZAxpy with α=0 touched y")
	}
}

func TestZScalZAddScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	alpha, beta := complex(0.5, 1), complex(2, -1)
	for _, n := range lengths {
		x, y := randZSlice(n, rng), randZSlice(n, rng)
		want := append([]complex128(nil), y...)
		for i := range want {
			want[i] *= alpha
		}
		ZScal(alpha, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d: ZScal[%d]=%v want %v", n, i, y[i], want[i])
			}
		}
		for i := range want {
			want[i] = alpha*want[i] + beta*x[i]
		}
		ZAddScaled(alpha, beta, x, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d: ZAddScaled[%d]=%v want %v", n, i, y[i], want[i])
			}
		}
	}
}

func TestZDotAxpy(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range lengths {
		v, c := randZSlice(n, rng), randZSlice(n, rng)
		c0 := complex(rng.NormFloat64(), rng.NormFloat64())
		tau := complex(rng.NormFloat64(), rng.NormFloat64())
		var dot complex128
		for i := range v {
			dot += cmplx.Conj(v[i]) * c[i]
		}
		wantW := tau * (c0 + dot)
		wantC := append([]complex128(nil), c...)
		for i := range wantC {
			wantC[i] -= wantW * v[i]
		}
		w := ZDotAxpy(tau, c0, v, c)
		if !almostEqZ(w, wantW) {
			t.Errorf("n=%d: ZDotAxpy w=%v want %v", n, w, wantW)
		}
		for i := range c {
			if !almostEqZ(c[i], wantC[i]) {
				t.Fatalf("n=%d: ZDotAxpy c[%d]=%v want %v", n, i, c[i], wantC[i])
			}
		}
	}
}

func TestZNrm2(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range lengths {
		x := randZSlice(n, rng)
		var want float64
		for _, v := range x {
			want = math.Hypot(want, cmplx.Abs(v))
		}
		if got := ZNrm2(x); !almostEq(got, want) {
			t.Errorf("n=%d: ZNrm2=%g want %g", n, got, want)
		}
	}
	// Overflow range: |x|² would be +Inf naively.
	big := []complex128{complex(1e200, 1e200), complex(-1e200, 0)}
	want := 1e200 * math.Sqrt(3)
	if got := ZNrm2(big); !almostEq(got, want) {
		t.Errorf("overflow-range ZNrm2=%g want %g", got, want)
	}
	// Underflow range: |x|² would be 0 naively.
	small := []complex128{complex(1e-200, 0), complex(0, 1e-200)}
	want = 1e-200 * math.Sqrt2
	if got := ZNrm2(small); !almostEq(got, want) {
		t.Errorf("underflow-range ZNrm2=%g want %g", got, want)
	}
	if got := ZNrm2Inc(big, 1, 2); !almostEq(got, 1e200*math.Sqrt2) {
		t.Errorf("strided ZNrm2Inc=%g want %g", got, 1e200*math.Sqrt2)
	}
}
