package vec

import (
	"math"
	"math/cmplx"
)

// Scalar is the set of arithmetic domains the tiled QR stack supports: the
// paper's double and double complex (Section 4) plus the single-precision
// variants that halve memory traffic. Every layer above — kernels, tiles,
// the factorization engine, the streaming core — is generic over this one
// constraint; the handful of operations that differ between the real and
// complex domains (conjugation, modulus, component access) go through the
// hook functions below, which compile to straight-line code per
// instantiation because each scalar type is its own GC shape.
//
// The constraint deliberately lists exact types (no ~): the hooks dispatch
// with type switches, which would silently miss defined types.
type Scalar interface {
	float32 | float64 | complex64 | complex128
}

// Conj returns the complex conjugate of v; for real types it is the
// identity. Fusing conjugation into the shared kernels this way is what
// lets one implementation serve both Householder conventions (H = I − τvvᵀ
// and H = I − τvvᴴ).
func Conj[T Scalar](v T) T {
	switch x := any(v).(type) {
	case complex64:
		return any(complex(real(x), -imag(x))).(T)
	case complex128:
		return any(cmplx.Conj(x)).(T)
	}
	return v
}

// Abs returns the modulus |v| as a float64.
func Abs[T Scalar](v T) float64 {
	switch x := any(v).(type) {
	case float32:
		return math.Abs(float64(x))
	case float64:
		return math.Abs(x)
	case complex64:
		return math.Hypot(float64(real(x)), float64(imag(x)))
	case complex128:
		return cmplx.Abs(x)
	}
	return 0
}

// Abs2 returns |v|², accumulated in float64 so the single-precision types
// square without intermediate overflow.
func Abs2[T Scalar](v T) float64 {
	switch x := any(v).(type) {
	case float32:
		f := float64(x)
		return f * f
	case float64:
		return x * x
	case complex64:
		re, im := float64(real(x)), float64(imag(x))
		return re*re + im*im
	case complex128:
		re, im := real(x), imag(x)
		return re*re + im*im
	}
	return 0
}

// RealPart returns the real component of v as a float64.
func RealPart[T Scalar](v T) float64 {
	switch x := any(v).(type) {
	case float32:
		return float64(x)
	case float64:
		return x
	case complex64:
		return float64(real(x))
	case complex128:
		return real(x)
	}
	return 0
}

// ImagPart returns the imaginary component of v as a float64 (0 for the
// real types).
func ImagPart[T Scalar](v T) float64 {
	switch x := any(v).(type) {
	case complex64:
		return float64(imag(x))
	case complex128:
		return imag(x)
	}
	return 0
}

// FromParts builds a T from float64 components. The real types drop im
// (callers only pass a nonzero im for genuinely complex values, which the
// real domains never produce).
func FromParts[T Scalar](re, im float64) T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(float32(re)).(T)
	case float64:
		return any(re).(T)
	case complex64:
		return any(complex(float32(re), float32(im))).(T)
	case complex128:
		return any(complex(re, im)).(T)
	}
	return z
}

// IsComplex reports whether T is one of the complex domains.
func IsComplex[T Scalar]() bool {
	var z T
	switch any(z).(type) {
	case complex64, complex128:
		return true
	}
	return false
}
