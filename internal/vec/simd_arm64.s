//go:build !noasm

#include "textflag.h"

// NEON kernels for the vec primitives. The Go arm64 assembler exposes only
// a narrow float-vector vocabulary (VFMLA/VFMLS, VLD1/VST1, VDUP, lane
// VMOV), so the kernels are shaped around it:
//
//   - the hot loops are pure FMLA with multiple accumulators;
//   - the gemm micro-kernels fold the "C +=" into the accumulators by
//     loading C first, so no vector add is ever needed;
//   - reductions leave vector lanes via VMOV to a general register and
//     finish with scalar FADDD/FADDS;
//   - scalar tails use FMULD/FADDS-style two-operand forms only, whose
//     semantics (Fd = Fd op Fm) are unambiguous.

// func dotF64(x, y *float64, n int) float64
TEXT ·dotF64(SB), NOSPLIT, $0-32
	MOVD x+0(FP), R0
	MOVD y+8(FP), R1
	MOVD n+16(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16

dot64loop8:
	CMP  $8, R2
	BLT  dot64loop2
	VLD1.P 64(R0), [V4.D2, V5.D2, V6.D2, V7.D2]
	VLD1.P 64(R1), [V16.D2, V17.D2, V18.D2, V19.D2]
	VFMLA V16.D2, V4.D2, V0.D2
	VFMLA V17.D2, V5.D2, V1.D2
	VFMLA V18.D2, V6.D2, V2.D2
	VFMLA V19.D2, V7.D2, V3.D2
	SUB  $8, R2
	B    dot64loop8

dot64loop2:
	CMP  $2, R2
	BLT  dot64reduce
	VLD1.P 16(R0), [V4.D2]
	VLD1.P 16(R1), [V16.D2]
	VFMLA V16.D2, V4.D2, V0.D2
	SUB  $2, R2
	B    dot64loop2

dot64reduce:
	VMOV V0.D[0], R4
	FMOVD R4, F1
	VMOV V0.D[1], R4
	FMOVD R4, F2
	FADDD F2, F1
	VMOV V1.D[0], R4
	FMOVD R4, F2
	FADDD F2, F1
	VMOV V1.D[1], R4
	FMOVD R4, F2
	FADDD F2, F1
	VMOV V2.D[0], R4
	FMOVD R4, F2
	FADDD F2, F1
	VMOV V2.D[1], R4
	FMOVD R4, F2
	FADDD F2, F1
	VMOV V3.D[0], R4
	FMOVD R4, F2
	FADDD F2, F1
	VMOV V3.D[1], R4
	FMOVD R4, F2
	FADDD F2, F1
	CBZ  R2, dot64done

dot64scalar:
	FMOVD (R0), F2
	FMOVD (R1), F3
	FMULD F3, F2
	FADDD F2, F1
	ADD  $8, R0
	ADD  $8, R1
	SUB  $1, R2
	CBNZ R2, dot64scalar

dot64done:
	FMOVD F1, ret+24(FP)
	RET

// func dotF32(x, y *float32, n int) float32
TEXT ·dotF32(SB), NOSPLIT, $0-28
	MOVD x+0(FP), R0
	MOVD y+8(FP), R1
	MOVD n+16(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16

dot32loop16:
	CMP  $16, R2
	BLT  dot32loop4
	VLD1.P 64(R0), [V4.S4, V5.S4, V6.S4, V7.S4]
	VLD1.P 64(R1), [V16.S4, V17.S4, V18.S4, V19.S4]
	VFMLA V16.S4, V4.S4, V0.S4
	VFMLA V17.S4, V5.S4, V1.S4
	VFMLA V18.S4, V6.S4, V2.S4
	VFMLA V19.S4, V7.S4, V3.S4
	SUB  $16, R2
	B    dot32loop16

dot32loop4:
	CMP  $4, R2
	BLT  dot32reduce
	VLD1.P 16(R0), [V4.S4]
	VLD1.P 16(R1), [V16.S4]
	VFMLA V16.S4, V4.S4, V0.S4
	SUB  $4, R2
	B    dot32loop4

dot32reduce:
	VMOV V0.S[0], R4
	FMOVS R4, F1
	VMOV V0.S[1], R4
	FMOVS R4, F2
	FADDS F2, F1
	VMOV V0.S[2], R4
	FMOVS R4, F2
	FADDS F2, F1
	VMOV V0.S[3], R4
	FMOVS R4, F2
	FADDS F2, F1
	VMOV V1.S[0], R4
	FMOVS R4, F2
	FADDS F2, F1
	VMOV V1.S[1], R4
	FMOVS R4, F2
	FADDS F2, F1
	VMOV V1.S[2], R4
	FMOVS R4, F2
	FADDS F2, F1
	VMOV V1.S[3], R4
	FMOVS R4, F2
	FADDS F2, F1
	VMOV V2.S[0], R4
	FMOVS R4, F2
	FADDS F2, F1
	VMOV V2.S[1], R4
	FMOVS R4, F2
	FADDS F2, F1
	VMOV V2.S[2], R4
	FMOVS R4, F2
	FADDS F2, F1
	VMOV V2.S[3], R4
	FMOVS R4, F2
	FADDS F2, F1
	VMOV V3.S[0], R4
	FMOVS R4, F2
	FADDS F2, F1
	VMOV V3.S[1], R4
	FMOVS R4, F2
	FADDS F2, F1
	VMOV V3.S[2], R4
	FMOVS R4, F2
	FADDS F2, F1
	VMOV V3.S[3], R4
	FMOVS R4, F2
	FADDS F2, F1
	CBZ  R2, dot32done

dot32scalar:
	FMOVS (R0), F2
	FMOVS (R1), F3
	FMULS F3, F2
	FADDS F2, F1
	ADD  $4, R0
	ADD  $4, R1
	SUB  $1, R2
	CBNZ R2, dot32scalar

dot32done:
	FMOVS F1, ret+24(FP)
	RET

// func axpyF64(alpha float64, x, y *float64, n int)
TEXT ·axpyF64(SB), NOSPLIT, $0-32
	FMOVD alpha+0(FP), F0
	VDUP V0.D[0], V1.D2
	MOVD x+8(FP), R0
	MOVD y+16(FP), R1
	MOVD n+24(FP), R2

axpy64loop8:
	CMP  $8, R2
	BLT  axpy64loop2
	VLD1.P 64(R0), [V2.D2, V3.D2, V4.D2, V5.D2]
	VLD1 (R1), [V16.D2, V17.D2, V18.D2, V19.D2]
	VFMLA V1.D2, V2.D2, V16.D2
	VFMLA V1.D2, V3.D2, V17.D2
	VFMLA V1.D2, V4.D2, V18.D2
	VFMLA V1.D2, V5.D2, V19.D2
	VST1.P [V16.D2, V17.D2, V18.D2, V19.D2], 64(R1)
	SUB  $8, R2
	B    axpy64loop8

axpy64loop2:
	CMP  $2, R2
	BLT  axpy64scalar
	VLD1.P 16(R0), [V2.D2]
	VLD1 (R1), [V16.D2]
	VFMLA V1.D2, V2.D2, V16.D2
	VST1.P [V16.D2], 16(R1)
	SUB  $2, R2
	B    axpy64loop2

axpy64scalar:
	CBZ  R2, axpy64done
	FMOVD (R0), F2
	FMOVD (R1), F3
	FMULD F0, F2
	FADDD F2, F3
	FMOVD F3, (R1)
	ADD  $8, R0
	ADD  $8, R1
	SUB  $1, R2
	B    axpy64scalar

axpy64done:
	RET

// func axpyF32(alpha float32, x, y *float32, n int)
TEXT ·axpyF32(SB), NOSPLIT, $0-32
	FMOVS alpha+0(FP), F0
	VDUP V0.S[0], V1.S4
	MOVD x+8(FP), R0
	MOVD y+16(FP), R1
	MOVD n+24(FP), R2

axpy32loop16:
	CMP  $16, R2
	BLT  axpy32loop4
	VLD1.P 64(R0), [V2.S4, V3.S4, V4.S4, V5.S4]
	VLD1 (R1), [V16.S4, V17.S4, V18.S4, V19.S4]
	VFMLA V1.S4, V2.S4, V16.S4
	VFMLA V1.S4, V3.S4, V17.S4
	VFMLA V1.S4, V4.S4, V18.S4
	VFMLA V1.S4, V5.S4, V19.S4
	VST1.P [V16.S4, V17.S4, V18.S4, V19.S4], 64(R1)
	SUB  $16, R2
	B    axpy32loop16

axpy32loop4:
	CMP  $4, R2
	BLT  axpy32scalar
	VLD1.P 16(R0), [V2.S4]
	VLD1 (R1), [V16.S4]
	VFMLA V1.S4, V2.S4, V16.S4
	VST1.P [V16.S4], 16(R1)
	SUB  $4, R2
	B    axpy32loop4

axpy32scalar:
	CBZ  R2, axpy32done
	FMOVS (R0), F2
	FMOVS (R1), F3
	FMULS F0, F2
	FADDS F2, F3
	FMOVS F3, (R1)
	ADD  $4, R0
	ADD  $4, R1
	SUB  $1, R2
	B    axpy32scalar

axpy32done:
	RET

// func axpy2F64(alpha float64, x1 *float64, beta float64, x2, y *float64, n int)
TEXT ·axpy2F64(SB), NOSPLIT, $0-48
	FMOVD alpha+0(FP), F0
	VDUP V0.D[0], V1.D2
	FMOVD beta+16(FP), F3
	VDUP V3.D[0], V2.D2
	MOVD x1+8(FP), R0
	MOVD x2+24(FP), R1
	MOVD y+32(FP), R2
	MOVD n+40(FP), R3

axpy2n64loop4:
	CMP  $4, R3
	BLT  axpy2n64loop2
	VLD1.P 32(R0), [V4.D2, V5.D2]
	VLD1.P 32(R1), [V6.D2, V7.D2]
	VLD1 (R2), [V16.D2, V17.D2]
	VFMLA V1.D2, V4.D2, V16.D2
	VFMLA V1.D2, V5.D2, V17.D2
	VFMLA V2.D2, V6.D2, V16.D2
	VFMLA V2.D2, V7.D2, V17.D2
	VST1.P [V16.D2, V17.D2], 32(R2)
	SUB  $4, R3
	B    axpy2n64loop4

axpy2n64loop2:
	CMP  $2, R3
	BLT  axpy2n64scalar
	VLD1.P 16(R0), [V4.D2]
	VLD1.P 16(R1), [V6.D2]
	VLD1 (R2), [V16.D2]
	VFMLA V1.D2, V4.D2, V16.D2
	VFMLA V2.D2, V6.D2, V16.D2
	VST1.P [V16.D2], 16(R2)
	SUB  $2, R3

axpy2n64scalar:
	CBZ  R3, axpy2n64done
	FMOVD (R2), F5
	FMOVD (R0), F4
	FMULD F0, F4
	FADDD F4, F5
	FMOVD (R1), F4
	FMULD F3, F4
	FADDD F4, F5
	FMOVD F5, (R2)
	ADD  $8, R0
	ADD  $8, R1
	ADD  $8, R2
	SUB  $1, R3
	B    axpy2n64scalar

axpy2n64done:
	RET

// func axpy2F32(alpha float32, x1 *float32, beta float32, x2, y *float32, n int)
TEXT ·axpy2F32(SB), NOSPLIT, $0-48
	FMOVS alpha+0(FP), F0
	VDUP V0.S[0], V1.S4
	FMOVS beta+16(FP), F3
	VDUP V3.S[0], V2.S4
	MOVD x1+8(FP), R0
	MOVD x2+24(FP), R1
	MOVD y+32(FP), R2
	MOVD n+40(FP), R3

axpy2n32loop8:
	CMP  $8, R3
	BLT  axpy2n32loop4
	VLD1.P 32(R0), [V4.S4, V5.S4]
	VLD1.P 32(R1), [V6.S4, V7.S4]
	VLD1 (R2), [V16.S4, V17.S4]
	VFMLA V1.S4, V4.S4, V16.S4
	VFMLA V1.S4, V5.S4, V17.S4
	VFMLA V2.S4, V6.S4, V16.S4
	VFMLA V2.S4, V7.S4, V17.S4
	VST1.P [V16.S4, V17.S4], 32(R2)
	SUB  $8, R3
	B    axpy2n32loop8

axpy2n32loop4:
	CMP  $4, R3
	BLT  axpy2n32scalar
	VLD1.P 16(R0), [V4.S4]
	VLD1.P 16(R1), [V6.S4]
	VLD1 (R2), [V16.S4]
	VFMLA V1.S4, V4.S4, V16.S4
	VFMLA V2.S4, V6.S4, V16.S4
	VST1.P [V16.S4], 16(R2)
	SUB  $4, R3

axpy2n32scalar:
	CBZ  R3, axpy2n32done
	FMOVS (R2), F5
	FMOVS (R0), F4
	FMULS F0, F4
	FADDS F4, F5
	FMOVS (R1), F4
	FMULS F3, F4
	FADDS F4, F5
	FMOVS F5, (R2)
	ADD  $4, R0
	ADD  $4, R1
	ADD  $4, R2
	SUB  $1, R3
	B    axpy2n32scalar

axpy2n32done:
	RET

// func sumsqF64(x *float64, n int) float64
TEXT ·sumsqF64(SB), NOSPLIT, $0-24
	MOVD x+0(FP), R0
	MOVD n+8(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16

sq64loop8:
	CMP  $8, R2
	BLT  sq64loop2
	VLD1.P 64(R0), [V4.D2, V5.D2, V6.D2, V7.D2]
	VFMLA V4.D2, V4.D2, V0.D2
	VFMLA V5.D2, V5.D2, V1.D2
	VFMLA V6.D2, V6.D2, V2.D2
	VFMLA V7.D2, V7.D2, V3.D2
	SUB  $8, R2
	B    sq64loop8

sq64loop2:
	CMP  $2, R2
	BLT  sq64reduce
	VLD1.P 16(R0), [V4.D2]
	VFMLA V4.D2, V4.D2, V0.D2
	SUB  $2, R2
	B    sq64loop2

sq64reduce:
	VMOV V0.D[0], R4
	FMOVD R4, F1
	VMOV V0.D[1], R4
	FMOVD R4, F2
	FADDD F2, F1
	VMOV V1.D[0], R4
	FMOVD R4, F2
	FADDD F2, F1
	VMOV V1.D[1], R4
	FMOVD R4, F2
	FADDD F2, F1
	VMOV V2.D[0], R4
	FMOVD R4, F2
	FADDD F2, F1
	VMOV V2.D[1], R4
	FMOVD R4, F2
	FADDD F2, F1
	VMOV V3.D[0], R4
	FMOVD R4, F2
	FADDD F2, F1
	VMOV V3.D[1], R4
	FMOVD R4, F2
	FADDD F2, F1
	CBZ  R2, sq64done

sq64scalar:
	FMOVD (R0), F2
	FMULD F2, F2
	FADDD F2, F1
	ADD  $8, R0
	SUB  $1, R2
	CBNZ R2, sq64scalar

sq64done:
	FMOVD F1, ret+16(FP)
	RET

// func gemmKerF64(k int, a, b, c *float64, ldc int)
//
// 4×8 micro-kernel: C[0:4,0:8] += A·B, C loaded into V0–V15 up front so
// the whole k loop is FMLA-only (2+1 loads, 4 VDUP broadcasts, 16 FMLAs
// per step). Caller guarantees k ≥ 1 and a full 4×8 tile.
TEXT ·gemmKerF64(SB), NOSPLIT, $0-40
	MOVD k+0(FP), R4
	MOVD a+8(FP), R0
	MOVD b+16(FP), R1
	MOVD c+24(FP), R2
	MOVD ldc+32(FP), R3
	LSL  $3, R3

	MOVD R2, R5
	VLD1 (R5), [V0.D2, V1.D2, V2.D2, V3.D2]
	ADD  R3, R5
	VLD1 (R5), [V4.D2, V5.D2, V6.D2, V7.D2]
	ADD  R3, R5
	VLD1 (R5), [V8.D2, V9.D2, V10.D2, V11.D2]
	ADD  R3, R5
	VLD1 (R5), [V12.D2, V13.D2, V14.D2, V15.D2]

gk64loop:
	VLD1.P 64(R1), [V16.D2, V17.D2, V18.D2, V19.D2]
	VLD1.P 32(R0), [V20.D2, V21.D2]
	VDUP V20.D[0], V22.D2
	VDUP V20.D[1], V23.D2
	VFMLA V16.D2, V22.D2, V0.D2
	VFMLA V17.D2, V22.D2, V1.D2
	VFMLA V18.D2, V22.D2, V2.D2
	VFMLA V19.D2, V22.D2, V3.D2
	VFMLA V16.D2, V23.D2, V4.D2
	VFMLA V17.D2, V23.D2, V5.D2
	VFMLA V18.D2, V23.D2, V6.D2
	VFMLA V19.D2, V23.D2, V7.D2
	VDUP V21.D[0], V22.D2
	VDUP V21.D[1], V23.D2
	VFMLA V16.D2, V22.D2, V8.D2
	VFMLA V17.D2, V22.D2, V9.D2
	VFMLA V18.D2, V22.D2, V10.D2
	VFMLA V19.D2, V22.D2, V11.D2
	VFMLA V16.D2, V23.D2, V12.D2
	VFMLA V17.D2, V23.D2, V13.D2
	VFMLA V18.D2, V23.D2, V14.D2
	VFMLA V19.D2, V23.D2, V15.D2
	SUB  $1, R4
	CBNZ R4, gk64loop

	MOVD R2, R5
	VST1 [V0.D2, V1.D2, V2.D2, V3.D2], (R5)
	ADD  R3, R5
	VST1 [V4.D2, V5.D2, V6.D2, V7.D2], (R5)
	ADD  R3, R5
	VST1 [V8.D2, V9.D2, V10.D2, V11.D2], (R5)
	ADD  R3, R5
	VST1 [V12.D2, V13.D2, V14.D2, V15.D2], (R5)
	RET

// func gemmKerF32(k int, a, b, c *float32, ldc int)
//
// 4×16 micro-kernel, the float32 twin of gemmKerF64 (four 4-lane vectors
// per C row).
TEXT ·gemmKerF32(SB), NOSPLIT, $0-40
	MOVD k+0(FP), R4
	MOVD a+8(FP), R0
	MOVD b+16(FP), R1
	MOVD c+24(FP), R2
	MOVD ldc+32(FP), R3
	LSL  $2, R3

	MOVD R2, R5
	VLD1 (R5), [V0.S4, V1.S4, V2.S4, V3.S4]
	ADD  R3, R5
	VLD1 (R5), [V4.S4, V5.S4, V6.S4, V7.S4]
	ADD  R3, R5
	VLD1 (R5), [V8.S4, V9.S4, V10.S4, V11.S4]
	ADD  R3, R5
	VLD1 (R5), [V12.S4, V13.S4, V14.S4, V15.S4]

gk32loop:
	VLD1.P 64(R1), [V16.S4, V17.S4, V18.S4, V19.S4]
	VLD1.P 16(R0), [V20.S4]
	VDUP V20.S[0], V22.S4
	VDUP V20.S[1], V23.S4
	VFMLA V16.S4, V22.S4, V0.S4
	VFMLA V17.S4, V22.S4, V1.S4
	VFMLA V18.S4, V22.S4, V2.S4
	VFMLA V19.S4, V22.S4, V3.S4
	VFMLA V16.S4, V23.S4, V4.S4
	VFMLA V17.S4, V23.S4, V5.S4
	VFMLA V18.S4, V23.S4, V6.S4
	VFMLA V19.S4, V23.S4, V7.S4
	VDUP V20.S[2], V22.S4
	VDUP V20.S[3], V23.S4
	VFMLA V16.S4, V22.S4, V8.S4
	VFMLA V17.S4, V22.S4, V9.S4
	VFMLA V18.S4, V22.S4, V10.S4
	VFMLA V19.S4, V22.S4, V11.S4
	VFMLA V16.S4, V23.S4, V12.S4
	VFMLA V17.S4, V23.S4, V13.S4
	VFMLA V18.S4, V23.S4, V14.S4
	VFMLA V19.S4, V23.S4, V15.S4
	SUB  $1, R4
	CBNZ R4, gk32loop

	MOVD R2, R5
	VST1 [V0.S4, V1.S4, V2.S4, V3.S4], (R5)
	ADD  R3, R5
	VST1 [V4.S4, V5.S4, V6.S4, V7.S4], (R5)
	ADD  R3, R5
	VST1 [V8.S4, V9.S4, V10.S4, V11.S4], (R5)
	ADD  R3, R5
	VST1 [V12.S4, V13.S4, V14.S4, V15.S4], (R5)
	RET
