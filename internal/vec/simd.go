// SIMD backend gate. The vector primitives in this package exist in two
// kernel families: the portable generic Go loops (always compiled in) and a
// hand-vectorized backend — AVX2/FMA on amd64, NEON on arm64 — selected at
// run time. The families produce results that differ only in floating-point
// rounding (the vector code uses fused multiply-add and a different
// accumulation order), so switching between them is numerically harmless
// but not bit-identical; agreement is verified to ULP-level tolerances by
// the tests in simd_test.go.
//
// Selection layers, from coarsest to finest:
//
//   - build tag `noasm`: the assembly files are excluded entirely and the
//     generic family is the only one in the binary;
//   - env TILEDQR_SIMD=off: the backend starts disabled (read once at init);
//   - SetSIMD / SetFamily: run-time flips, safe under concurrency — the gate
//     is a single atomic load per slice-level call, so the autotuner can
//     measure both families on a live process.
//
// On amd64 the backend requires AVX2+FMA with OS-enabled YMM state
// (detected via CPUID/XGETBV at init); on arm64 NEON is architecturally
// baseline, so the backend is always available unless compiled out.
package vec

import (
	"fmt"
	"os"
	"sync/atomic"
)

// EnvSIMD is the environment variable that force-disables the vector
// backend when set to "off" (read once at process start).
const EnvSIMD = "TILEDQR_SIMD"

// Kernel family names, as recorded in the autotuner's calibration cache and
// accepted by SetFamily and the -family flag of qrperf/qrkernels. The
// "simd" name is ISA-neutral on purpose: the calibration cache is per-host,
// and a single name lets the tuner and the bench JSON treat AVX2 and NEON
// hosts uniformly. SIMDName reports the concrete ISA for diagnostics.
const (
	FamilyGeneric = "generic"
	FamilySIMD    = "simd"
)

var simdEnabled atomic.Bool

func init() {
	simdEnabled.Store(simdArchSupported && os.Getenv(EnvSIMD) != "off")
}

// SIMDSupported reports whether this binary carries a vector backend usable
// on the host CPU (compiled in and the required ISA features are present).
func SIMDSupported() bool { return simdArchSupported }

// SIMDEnabled reports whether the vector backend is currently active.
func SIMDEnabled() bool { return simdEnabled.Load() }

// SIMDName returns the concrete ISA of the vector backend ("avx2", "neon"),
// or "" when the binary has none for this host.
func SIMDName() string {
	if simdArchSupported {
		return simdArchName
	}
	return ""
}

// SetSIMD enables or disables the vector backend and returns the resulting
// state (enabling is a no-op on hosts without backend support). The flip is
// atomic and safe to perform while kernels run on other goroutines; calls
// already past their dispatch point finish on the family they started with.
func SetSIMD(on bool) bool {
	simdEnabled.Store(on && simdArchSupported)
	return simdEnabled.Load()
}

// ActiveFamily returns the kernel family the primitives currently dispatch
// to: FamilySIMD when the vector backend is enabled, else FamilyGeneric.
func ActiveFamily() string {
	if simdEnabled.Load() {
		return FamilySIMD
	}
	return FamilyGeneric
}

// Families lists the kernel families selectable on this host, generic
// first. Hosts without a usable vector backend list only the generic
// family.
func Families() []string {
	if simdArchSupported {
		return []string{FamilyGeneric, FamilySIMD}
	}
	return []string{FamilyGeneric}
}

// SetFamily activates the named kernel family. It rejects — rather than
// silently degrades — a request for the SIMD family on a host without
// backend support, so benchmarks asked to measure a specific family fail
// loudly instead of re-measuring the generic one under the wrong label.
func SetFamily(name string) error {
	switch name {
	case FamilyGeneric:
		simdEnabled.Store(false)
		return nil
	case FamilySIMD:
		if !simdArchSupported {
			return fmt.Errorf("vec: kernel family %q not available on this host (no SIMD backend)", name)
		}
		simdEnabled.Store(true)
		return nil
	}
	return fmt.Errorf("vec: unknown kernel family %q (want %q or %q)", name, FamilyGeneric, FamilySIMD)
}

// simdMinLen gates slice-level dispatch: below this length the call
// overhead of the assembly kernels beats their vector win and the generic
// loops are used even with the backend enabled. Tests exercise the assembly
// entry points directly, so short inputs stay covered.
const simdMinLen = 16
