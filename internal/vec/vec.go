// Package vec is the shared vector-primitive layer under every tile kernel
// of the tiled QR factorization. Both arithmetic domains (float64 in package
// kernel, complex128 in package zkernel) express their inner loops through
// these primitives, so the tuning — 4-way unrolling, bounds-check
// elimination via slice re-slicing, multiple accumulators to break the
// floating-point dependency chain — lives in exactly one place.
//
// Conventions: the destination operand is last; a scaling factor of zero is
// treated as a structural zero (the operation is skipped, matching the
// sparsity guards the kernels used before this layer existed); slices must
// not alias unless a function documents otherwise.
package vec

import "math"

// Dot returns Σ x[i]·y[i]. len(y) must be ≥ len(x).
func Dot(x, y []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	y = y[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y += α·x over len(x) elements. len(y) must be ≥ len(x).
// α = 0 is a no-op (structural-zero skip).
func Axpy(alpha float64, x, y []float64) {
	if alpha == 0 {
		return
	}
	n := len(x)
	if n == 0 {
		return
	}
	y = y[:n]
	i := 0
	for ; i+3 < n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Axpy2 computes y += α·x1 + β·x2 in a single pass, halving the load/store
// traffic on y versus two Axpy calls (the GEMM inner unroll). Each zero
// scalar is a structural zero: its term is skipped entirely.
func Axpy2(alpha float64, x1 []float64, beta float64, x2, y []float64) {
	if alpha == 0 {
		Axpy(beta, x2, y)
		return
	}
	if beta == 0 {
		Axpy(alpha, x1, y)
		return
	}
	n := len(x1)
	if n == 0 {
		return
	}
	x2 = x2[:n]
	y = y[:n]
	i := 0
	for ; i+3 < n; i += 4 {
		y[i] += alpha*x1[i] + beta*x2[i]
		y[i+1] += alpha*x1[i+1] + beta*x2[i+1]
		y[i+2] += alpha*x1[i+2] + beta*x2[i+2]
		y[i+3] += alpha*x1[i+3] + beta*x2[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha*x1[i] + beta*x2[i]
	}
}

// Scal computes x *= α in place.
func Scal(alpha float64, x []float64) {
	n := len(x)
	i := 0
	for ; i+3 < n; i += 4 {
		x[i] *= alpha
		x[i+1] *= alpha
		x[i+2] *= alpha
		x[i+3] *= alpha
	}
	for ; i < n; i++ {
		x[i] *= alpha
	}
}

// Sub computes y -= x over len(x) elements. len(y) must be ≥ len(x).
func Sub(x, y []float64) {
	n := len(x)
	if n == 0 {
		return
	}
	y = y[:n]
	i := 0
	for ; i+3 < n; i += 4 {
		y[i] -= x[i]
		y[i+1] -= x[i+1]
		y[i+2] -= x[i+2]
		y[i+3] -= x[i+3]
	}
	for ; i < n; i++ {
		y[i] -= x[i]
	}
}

// AddScaled computes y = α·y + β·x in a single pass (BLAS axpby), fusing the
// scale and first accumulation of the triangular T·W products.
func AddScaled(alpha, beta float64, x, y []float64) {
	n := len(x)
	if n == 0 {
		return
	}
	y = y[:n]
	i := 0
	for ; i+3 < n; i += 4 {
		y[i] = alpha*y[i] + beta*x[i]
		y[i+1] = alpha*y[i+1] + beta*x[i+1]
		y[i+2] = alpha*y[i+2] + beta*x[i+2]
		y[i+3] = alpha*y[i+3] + beta*x[i+3]
	}
	for ; i < n; i++ {
		y[i] = alpha*y[i] + beta*x[i]
	}
}

// DotAxpy applies one Householder reflector H = I − τ·(1,v)·(1,v)ᵀ to the
// column (c0; c) in a single fused call: w = τ·(c0 + v·c), then c -= w·v.
// It returns w, so the caller finishes with c0 -= w. This is the contiguous
// dlarf column micro-kernel, for callers holding column-major (or packed)
// data; the row-major tile kernels express the same update as row sweeps of
// Axpy instead.
func DotAxpy(tau, c0 float64, v, c []float64) (w float64) {
	w = tau * (c0 + Dot(v, c))
	Axpy(-w, v, c)
	return w
}

// Nrm2 returns ‖x‖₂, safe against overflow and underflow with exactly one
// Sqrt total (the seed's larfg did one Hypot per element). The common case
// is a single unscaled sum-of-squares pass; only when that sum lands
// outside the trustworthy range (over-/underflow or a degenerate input)
// does a scaled LAPACK dnrm2-style two-pass fallback run.
func Nrm2(x []float64) float64 {
	n := len(x)
	var s0, s1 float64
	i := 0
	for ; i+1 < n; i += 2 {
		v0, v1 := x[i], x[i+1]
		s0 += v0 * v0
		s1 += v1 * v1
	}
	if i < n {
		v := x[i]
		s0 += v * v
	}
	if s := s0 + s1; nrm2SumOK(s) {
		return math.Sqrt(s)
	}
	return nrm2Scaled(x, n, 1)
}

// Nrm2Inc returns the Euclidean norm of the n strided elements
// x[0], x[inc], …, x[(n−1)·inc].
func Nrm2Inc(x []float64, n, inc int) float64 {
	var s float64
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+inc {
		v := x[ix]
		s += v * v
	}
	if nrm2SumOK(s) {
		return math.Sqrt(s)
	}
	return nrm2Scaled(x, n, inc)
}

// nrm2SumSafe* bracket the sums of squares the single-pass path may trust:
// inside this range neither overflow nor damaging underflow can have
// occurred (squares below ~1e-308 that vanished are negligible against a
// total above 1e-280).
const (
	nrm2SumSafeMax = 1e280
	nrm2SumSafeMin = 1e-280
)

func nrm2SumOK(s float64) bool {
	return s > nrm2SumSafeMin && s < nrm2SumSafeMax
}

// nrm2Scaled is the rare-path norm: finds the magnitude, divides every
// element by it (safe even for subnormal magnitudes, where multiplying by
// the inverse would overflow), and rescales once at the end. Returns the
// magnitude itself when it is 0, NaN, or ±Inf.
func nrm2Scaled(x []float64, n, inc int) float64 {
	amax := 0.0
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+inc {
		if av := math.Abs(x[ix]); av > amax || math.IsNaN(av) {
			amax = av
		}
	}
	if amax == 0 || math.IsNaN(amax) || math.IsInf(amax, 0) {
		return amax
	}
	var s float64
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+inc {
		v := x[ix] / amax
		s += v * v
	}
	return amax * math.Sqrt(s)
}
