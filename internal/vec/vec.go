// Package vec is the shared vector-primitive layer under every tile kernel
// of the tiled QR factorization. All four arithmetic domains (float32,
// float64, complex64, complex128) express their inner loops through these
// generic primitives, so the tuning — 4-way unrolling, bounds-check
// elimination via slice re-slicing, multiple accumulators to break the
// floating-point dependency chain — lives in exactly one place, and the
// real/complex conjugation difference is fused through the Conj hook of
// scalar.go.
//
// Conventions: the destination operand is last; a scaling factor of zero is
// treated as a structural zero (the operation is skipped, matching the
// sparsity guards the kernels used before this layer existed); slices must
// not alias unless a function documents otherwise.
package vec

import (
	"math"
	"unsafe"
)

// Dot returns the unconjugated product Σ x[i]·y[i] (BLAS dot/zdotu), the
// form the T-factor assembly and back-substitution need. len(y) must be
// ≥ len(x). Real inputs long enough to amortize the call dispatch to the
// SIMD backend when it is enabled (simd.go); results then differ from the
// generic path only in rounding (FMA, different accumulation order).
func Dot[T Scalar](x, y []T) T {
	if simdEnabled.Load() && len(x) >= simdMinLen {
		switch xs := any(x).(type) {
		case []float64:
			ys := any(y).([]float64)
			return any(dotF64(&xs[0], &ys[0], len(xs))).(T)
		case []float32:
			ys := any(y).([]float32)
			return any(dotF32(&xs[0], &ys[0], len(xs))).(T)
		}
	}
	return dotGeneric(x, y)
}

func dotGeneric[T Scalar](x, y []T) T {
	n := len(x)
	var s0, s1, s2, s3 T
	if n == 0 {
		return 0
	}
	y = y[:n]
	i := 0
	for ; i+3 < n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// Dotc returns the conjugated product Σ conj(x[i])·y[i] (BLAS dotc); for
// real types it coincides with Dot.
func Dotc[T Scalar](x, y []T) T {
	if !IsComplex[T]() {
		return Dot(x, y)
	}
	n := len(x)
	if n == 0 {
		return 0
	}
	y = y[:n]
	var s0, s1 T
	i := 0
	for ; i+1 < n; i += 2 {
		s0 += Conj(x[i]) * y[i]
		s1 += Conj(x[i+1]) * y[i+1]
	}
	if i < n {
		s0 += Conj(x[i]) * y[i]
	}
	return s0 + s1
}

// Axpy computes y += α·x over len(x) elements. len(y) must be ≥ len(x).
// α = 0 is a no-op (structural-zero skip — enforced before SIMD dispatch,
// so 0·Inf never manufactures a NaN on either family).
func Axpy[T Scalar](alpha T, x, y []T) {
	if alpha == 0 {
		return
	}
	if simdEnabled.Load() && len(x) >= simdMinLen {
		switch xs := any(x).(type) {
		case []float64:
			ys := any(y).([]float64)
			axpyF64(any(alpha).(float64), &xs[0], &ys[0], len(xs))
			return
		case []float32:
			ys := any(y).([]float32)
			axpyF32(any(alpha).(float32), &xs[0], &ys[0], len(xs))
			return
		}
	}
	axpyGeneric(alpha, x, y)
}

func axpyGeneric[T Scalar](alpha T, x, y []T) {
	n := len(x)
	if n == 0 {
		return
	}
	y = y[:n]
	i := 0
	for ; i+3 < n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Axpy2 computes y += α·x1 + β·x2 in a single pass, halving the load/store
// traffic on y versus two Axpy calls (the GEMM inner unroll). Each zero
// scalar is a structural zero: its term is skipped entirely.
func Axpy2[T Scalar](alpha T, x1 []T, beta T, x2, y []T) {
	if alpha == 0 {
		Axpy(beta, x2, y)
		return
	}
	if beta == 0 {
		Axpy(alpha, x1, y)
		return
	}
	if simdEnabled.Load() && len(x1) >= simdMinLen {
		switch x1s := any(x1).(type) {
		case []float64:
			x2s, ys := any(x2).([]float64), any(y).([]float64)
			axpy2F64(any(alpha).(float64), &x1s[0], any(beta).(float64), &x2s[0], &ys[0], len(x1s))
			return
		case []float32:
			x2s, ys := any(x2).([]float32), any(y).([]float32)
			axpy2F32(any(alpha).(float32), &x1s[0], any(beta).(float32), &x2s[0], &ys[0], len(x1s))
			return
		}
	}
	axpy2Generic(alpha, x1, beta, x2, y)
}

func axpy2Generic[T Scalar](alpha T, x1 []T, beta T, x2, y []T) {
	n := len(x1)
	if n == 0 {
		return
	}
	x2 = x2[:n]
	y = y[:n]
	i := 0
	for ; i+3 < n; i += 4 {
		y[i] += alpha*x1[i] + beta*x2[i]
		y[i+1] += alpha*x1[i+1] + beta*x2[i+1]
		y[i+2] += alpha*x1[i+2] + beta*x2[i+2]
		y[i+3] += alpha*x1[i+3] + beta*x2[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha*x1[i] + beta*x2[i]
	}
}

// Scal computes x *= α in place.
func Scal[T Scalar](alpha T, x []T) {
	n := len(x)
	i := 0
	for ; i+3 < n; i += 4 {
		x[i] *= alpha
		x[i+1] *= alpha
		x[i+2] *= alpha
		x[i+3] *= alpha
	}
	for ; i < n; i++ {
		x[i] *= alpha
	}
}

// Sub computes y -= x over len(x) elements. len(y) must be ≥ len(x).
func Sub[T Scalar](x, y []T) {
	n := len(x)
	if n == 0 {
		return
	}
	y = y[:n]
	i := 0
	for ; i+3 < n; i += 4 {
		y[i] -= x[i]
		y[i+1] -= x[i+1]
		y[i+2] -= x[i+2]
		y[i+3] -= x[i+3]
	}
	for ; i < n; i++ {
		y[i] -= x[i]
	}
}

// AddScaled computes y = α·y + β·x in a single pass (BLAS axpby), fusing the
// scale and first accumulation of the triangular T·W products.
func AddScaled[T Scalar](alpha, beta T, x, y []T) {
	n := len(x)
	if n == 0 {
		return
	}
	y = y[:n]
	i := 0
	for ; i+3 < n; i += 4 {
		y[i] = alpha*y[i] + beta*x[i]
		y[i+1] = alpha*y[i+1] + beta*x[i+1]
		y[i+2] = alpha*y[i+2] + beta*x[i+2]
		y[i+3] = alpha*y[i+3] + beta*x[i+3]
	}
	for ; i < n; i++ {
		y[i] = alpha*y[i] + beta*x[i]
	}
}

// DotAxpy applies one Householder reflector H = I − τ·(1,v)·(1,v)ᴴ to the
// column (c0; c) in a single fused call, in LAPACK's convention (Hᴴ is
// applied when τ is passed conjugated): w = τ·(c0 + Σ conj(v[i])·c[i]),
// then c -= w·v. It returns w, so the caller finishes with c0 -= w. This is
// the contiguous larf column micro-kernel, for callers holding column-major
// (or packed) data; the row-major tile kernels express the same update as
// row sweeps of Axpy instead.
func DotAxpy[T Scalar](tau, c0 T, v, c []T) (w T) {
	w = tau * (c0 + Dotc(v, c))
	Axpy(-w, v, c)
	return w
}

// Nrm2 returns ‖x‖₂ — for complex types the Euclidean norm of the real and
// imaginary parts interleaved — safe against overflow and underflow with
// exactly one Sqrt total. The sum of squares accumulates in float64 for
// every domain, so the single-precision types get the wider exponent range
// for free. The common case is a single unscaled pass; only when the sum
// lands outside the trustworthy range (over-/underflow or a degenerate
// input) does a scaled LAPACK dnrm2-style two-pass fallback run.
func Nrm2[T Scalar](x []T) float64 {
	if s := sumSquares(x, len(x), 1); nrm2SumOK(s) {
		return math.Sqrt(s)
	}
	return nrm2Scaled(x, len(x), 1)
}

// Nrm2Inc returns the Euclidean norm of the n strided elements
// x[0], x[inc], …, x[(n−1)·inc].
func Nrm2Inc[T Scalar](x []T, n, inc int) float64 {
	if s := sumSquares(x, n, inc); nrm2SumOK(s) {
		return math.Sqrt(s)
	}
	return nrm2Scaled(x, n, inc)
}

// sumSquares accumulates Σ|x[i·inc]|² in float64. The per-domain dispatch
// happens once per call at the slice level: inside generic (gcshape) code
// a per-element hook like Abs2 compiles to a dictionary type switch per
// element, which triples the cost of the reflector-norm pass; one
// assertion followed by a monomorphic loop keeps the norms at hand-written
// speed in every domain.
// For contiguous data (inc == 1) with the SIMD backend enabled, all four
// domains route to the vector sum-of-squares kernels — the complex slices
// by reinterpreting their interleaved re/im layout as a real slice of
// twice the length, which is exact (the sum of |z|² over lanes is the sum
// of squares over components in some order).
func sumSquares[T Scalar](x []T, n, inc int) float64 {
	var s float64
	switch xs := any(x).(type) {
	case []float64:
		if inc == 1 && n >= simdMinLen && simdEnabled.Load() {
			return sumsqF64(&xs[0], n)
		}
		var s0, s1 float64
		i, ix := 0, 0
		if inc == 1 {
			for ; i+1 < n; i += 2 {
				v0, v1 := xs[i], xs[i+1]
				s0 += v0 * v0
				s1 += v1 * v1
			}
			if i < n {
				v := xs[i]
				s0 += v * v
			}
			return s0 + s1
		}
		for ; i < n; i, ix = i+1, ix+inc {
			v := xs[ix]
			s0 += v * v
		}
		return s0
	case []float32:
		if inc == 1 && n >= simdMinLen && simdEnabled.Load() {
			return sumsqF32(&xs[0], n)
		}
		for i, ix := 0, 0; i < n; i, ix = i+1, ix+inc {
			v := float64(xs[ix])
			s += v * v
		}
	case []complex128:
		if inc == 1 && 2*n >= simdMinLen && simdEnabled.Load() {
			return sumsqF64((*float64)(unsafe.Pointer(&xs[0])), 2*n)
		}
		for i, ix := 0, 0; i < n; i, ix = i+1, ix+inc {
			re, im := real(xs[ix]), imag(xs[ix])
			s += re*re + im*im
		}
	case []complex64:
		if inc == 1 && 2*n >= simdMinLen && simdEnabled.Load() {
			return sumsqF32((*float32)(unsafe.Pointer(&xs[0])), 2*n)
		}
		for i, ix := 0, 0; i < n; i, ix = i+1, ix+inc {
			re, im := float64(real(xs[ix])), float64(imag(xs[ix]))
			s += re*re + im*im
		}
	}
	return s
}

// nrm2SumSafe* bracket the sums of squares the single-pass path may trust:
// inside this range neither overflow nor damaging underflow can have
// occurred (squares below ~1e-308 that vanished are negligible against a
// total above 1e-280). Sums are float64 regardless of T, so one bracket
// serves all four domains.
const (
	nrm2SumSafeMax = 1e280
	nrm2SumSafeMin = 1e-280
)

func nrm2SumOK(s float64) bool {
	return s > nrm2SumSafeMin && s < nrm2SumSafeMax
}

// nrm2Scaled is the rare-path norm: finds the magnitude of the largest
// component, divides every component by it (safe even for subnormal
// magnitudes, where multiplying by the inverse would overflow), and
// rescales once at the end. Returns the magnitude itself when it is 0, NaN,
// or ±Inf.
func nrm2Scaled[T Scalar](x []T, n, inc int) float64 {
	amax := 0.0
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+inc {
		if av := math.Abs(RealPart(x[ix])); av > amax || math.IsNaN(av) {
			amax = av
		}
		if av := math.Abs(ImagPart(x[ix])); av > amax || math.IsNaN(av) {
			amax = av
		}
	}
	if amax == 0 || math.IsNaN(amax) || math.IsInf(amax, 0) {
		return amax
	}
	var s float64
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+inc {
		re, im := RealPart(x[ix])/amax, ImagPart(x[ix])/amax
		s += re*re + im*im
	}
	return amax * math.Sqrt(s)
}
