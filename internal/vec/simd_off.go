//go:build noasm || (!amd64 && !arm64)

package vec

// No vector backend in this build: either the `noasm` tag excluded the
// assembly, or the target architecture has none. simdEnabled can never be
// set, so the kernel stubs below are unreachable; they exist only so the
// dispatch layer compiles identically everywhere.

const simdArchName = ""

const simdArchSupported = false

func unreachableKernel() { panic("vec: SIMD kernel called without a backend") }

func dotF64(x, y *float64, n int) float64 { unreachableKernel(); return 0 }

func dotF32(x, y *float32, n int) float32 { unreachableKernel(); return 0 }

func axpyF64(alpha float64, x, y *float64, n int) { unreachableKernel() }

func axpyF32(alpha float32, x, y *float32, n int) { unreachableKernel() }

func axpy2F64(alpha float64, x1 *float64, beta float64, x2, y *float64, n int) {
	unreachableKernel()
}

func axpy2F32(alpha float32, x1 *float32, beta float32, x2, y *float32, n int) {
	unreachableKernel()
}

func sumsqF64(x *float64, n int) float64 { unreachableKernel(); return 0 }

func sumsqF32(x *float32, n int) float64 { unreachableKernel(); return 0 }

func gemmKerF64(k int, a, b, c *float64, ldc int) { unreachableKernel() }

func gemmKerF32(k int, a, b, c *float32, ldc int) { unreachableKernel() }
