// Package fault is the deterministic fault-injection harness of the tiled
// QR runtime: a process-global injector that can make a kernel task return
// an error, panic, stall, or poison its output tile with NaN, at sites
// selected by task kind, arithmetic precision, and match index. The chaos
// test suite uses it to prove the failure-containment properties of the
// shared runtime — one job's injected failure never corrupts or blocks a
// concurrent job — and operators can arm it from the environment
// (TILEDQR_FAULT) to rehearse failure handling in a staging deployment.
//
// The injector is deterministic: matching is by an atomic counter over the
// tasks that satisfy the (kind, precision) filter, and the optional
// probability mode draws from a seeded counter-keyed hash, so the same
// configuration hits the same tasks on every run of a sequential execution
// (parallel executions interleave counter increments, but the *number* of
// injected faults is still exact for counted modes).
//
// When no configuration is armed the hot-path cost is one atomic pointer
// load per task — nothing else, no allocation, no branch on configuration
// fields.
package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tiledqr/internal/core"
)

// Mode is the failure a matched task suffers.
type Mode int

const (
	// ModeError makes the task's kernel dispatch return an error.
	ModeError Mode = iota
	// ModePanic makes the task panic (exercising the runtime's panic
	// containment, which converts it into a job error).
	ModePanic
	// ModeStall puts the task to sleep for Config.Stall before executing
	// normally (slow-tenant simulation; pair with a context deadline).
	ModeStall
	// ModeNaN lets the kernel run, then overwrites the first element of the
	// task's output tile with NaN (silent-poison simulation; pair with
	// Options.CheckHealth to observe fail-fast detection).
	ModeNaN
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeStall:
		return "stall"
	case ModeNaN:
		return "nan"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// AnyKind matches every task kind.
const AnyKind core.Kind = 0xff

// Config selects which tasks are injected and what happens to them. The
// zero value (with AnyKind/empty filters) injects ModeError into every
// task; narrow it with the filters.
type Config struct {
	Mode Mode
	// Kind restricts injection to one kernel kind (AnyKind = all).
	Kind core.Kind
	// Prec restricts injection to one arithmetic domain: "s", "d", "c", or
	// "z" ("" = all).
	Prec string
	// Index triggers on the Index-th task (0-based) that passes the
	// kind/precision filter, counted process-wide; -1 triggers on every
	// match (subject to Prob).
	Index int
	// Times caps the number of injections (0 = unlimited).
	Times int
	// Stall is the sleep duration for ModeStall.
	Stall time.Duration
	// Prob, when in (0, 1), injects each filtered task independently with
	// this probability, decided by a hash of (Seed, match counter) — a
	// deterministic coin per site.
	Prob float64
	// Seed keys the Prob coin.
	Seed uint64
}

// Action is what the execution layer must do to the current task.
type Action struct {
	Mode  Mode
	Stall time.Duration
}

// armed holds the active configuration (nil = disarmed) plus its live
// counters, swapped atomically so workers never lock.
type armed struct {
	cfg      Config
	matches  atomic.Int64 // tasks that passed the kind/prec filter
	injected atomic.Int64 // faults actually delivered
}

var (
	current atomic.Pointer[armed]
	envOnce sync.Once
)

// Armed reports whether any injection is configured — the one check on the
// task hot path.
func Armed() bool {
	envOnce.Do(armFromEnv)
	return current.Load() != nil
}

// Set arms the injector with cfg (the test hook). Counters start at zero.
func Set(cfg Config) {
	envOnce.Do(func() {}) // a test hook overrides the environment
	a := &armed{cfg: cfg}
	current.Store(a)
}

// Reset disarms the injector.
func Reset() {
	envOnce.Do(func() {})
	current.Store(nil)
}

// Injected returns how many faults have been delivered since the last
// Set/arm.
func Injected() int64 {
	if a := current.Load(); a != nil {
		return a.injected.Load()
	}
	return 0
}

// splitmix64 is the deterministic coin behind Prob: a full-avalanche hash
// of the seeded counter, so every site flips an independent, reproducible
// coin without shared RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Check decides whether the task described by (kind, prec) is injected,
// returning the action to apply. Callers gate on Armed() first so the
// disarmed hot path stays a single atomic load.
func Check(kind core.Kind, prec string) (Action, bool) {
	a := current.Load()
	if a == nil {
		return Action{}, false
	}
	cfg := &a.cfg
	if cfg.Kind != AnyKind && cfg.Kind != kind {
		return Action{}, false
	}
	if cfg.Prec != "" && cfg.Prec != prec {
		return Action{}, false
	}
	m := a.matches.Add(1) - 1 // this task's 0-based match index
	switch {
	case cfg.Index >= 0:
		if m != int64(cfg.Index) {
			return Action{}, false
		}
	case cfg.Prob > 0 && cfg.Prob < 1:
		coin := float64(splitmix64(cfg.Seed^uint64(m))>>11) / float64(1<<53)
		if coin >= cfg.Prob {
			return Action{}, false
		}
	}
	if cfg.Times > 0 {
		if a.injected.Add(1) > int64(cfg.Times) {
			return Action{}, false
		}
	} else {
		a.injected.Add(1)
	}
	return Action{Mode: cfg.Mode, Stall: cfg.Stall}, true
}

// Errorf builds the descriptive error a ModeError injection surfaces as.
func Errorf(kind core.Kind, prec string) error {
	return fmt.Errorf("tiledqr: fault injection: injected error in %v kernel (precision %q)", kind, prec)
}

// PanicMsg is the payload of a ModePanic injection.
func PanicMsg(kind core.Kind, prec string) string {
	return fmt.Sprintf("tiledqr: fault injection: injected panic in %v kernel (precision %q)", kind, prec)
}

// armFromEnv parses TILEDQR_FAULT once at first use. The syntax is
// semicolon-separated key=value pairs:
//
//	TILEDQR_FAULT="mode=panic;kind=GEQRT;prec=d;index=3"
//	TILEDQR_FAULT="mode=stall;stall=50ms;prob=0.01;seed=7"
//
// keys: mode (error|panic|stall|nan), kind (GEQRT|UNMQR|TSQRT|TSMQR|TTQRT|
// TTMQR|any), prec (s|d|c|z), index (int, default -1 = every match), times
// (int, 0 = unlimited), stall (duration), prob (float), seed (uint).
// A malformed value disarms the injector and warns on stderr — a chaos
// harness must never be silently misconfigured.
func armFromEnv() {
	spec := os.Getenv("TILEDQR_FAULT")
	if spec == "" {
		return
	}
	cfg, err := parseSpec(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tiledqr: ignoring TILEDQR_FAULT: %v\n", err)
		return
	}
	current.Store(&armed{cfg: cfg})
}

// parseSpec parses the TILEDQR_FAULT syntax (exported to tests via the
// internal package boundary).
func parseSpec(spec string) (Config, error) {
	cfg := Config{Kind: AnyKind, Index: -1}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("%q is not key=value", part)
		}
		switch key {
		case "mode":
			switch val {
			case "error":
				cfg.Mode = ModeError
			case "panic":
				cfg.Mode = ModePanic
			case "stall":
				cfg.Mode = ModeStall
			case "nan":
				cfg.Mode = ModeNaN
			default:
				return Config{}, fmt.Errorf("unknown mode %q", val)
			}
		case "kind":
			if val == "any" {
				cfg.Kind = AnyKind
				break
			}
			found := false
			for k := core.KGEQRT; k <= core.KTTMQR; k++ {
				if k.String() == val {
					cfg.Kind, found = k, true
					break
				}
			}
			if !found {
				return Config{}, fmt.Errorf("unknown kind %q", val)
			}
		case "prec":
			switch val {
			case "s", "d", "c", "z":
				cfg.Prec = val
			default:
				return Config{}, fmt.Errorf("unknown precision %q (want s, d, c or z)", val)
			}
		case "index":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Config{}, fmt.Errorf("index: %v", err)
			}
			cfg.Index = n
		case "times":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Config{}, fmt.Errorf("times: %v", err)
			}
			cfg.Times = n
		case "stall":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Config{}, fmt.Errorf("stall: %v", err)
			}
			cfg.Stall = d
		case "prob":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Config{}, fmt.Errorf("prob: %v", err)
			}
			cfg.Prob = p
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("seed: %v", err)
			}
			cfg.Seed = s
		default:
			return Config{}, fmt.Errorf("unknown key %q", key)
		}
	}
	return cfg, nil
}
