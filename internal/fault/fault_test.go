package fault

import (
	"testing"
	"time"

	"tiledqr/internal/core"
)

func TestDisarmedIsFree(t *testing.T) {
	Reset()
	if Armed() {
		t.Fatal("injector armed with no configuration")
	}
	if _, hit := Check(core.KGEQRT, "d"); hit {
		t.Fatal("disarmed Check reported a hit")
	}
}

func TestKindAndPrecisionFilter(t *testing.T) {
	defer Reset()
	Set(Config{Mode: ModeError, Kind: core.KTSQRT, Prec: "z", Index: -1})
	if _, hit := Check(core.KGEQRT, "z"); hit {
		t.Error("wrong kind matched")
	}
	if _, hit := Check(core.KTSQRT, "d"); hit {
		t.Error("wrong precision matched")
	}
	act, hit := Check(core.KTSQRT, "z")
	if !hit || act.Mode != ModeError {
		t.Errorf("expected ModeError hit, got %v %v", act, hit)
	}
}

func TestIndexSelectsNthMatch(t *testing.T) {
	defer Reset()
	Set(Config{Mode: ModePanic, Kind: AnyKind, Index: 2})
	hits := 0
	for i := 0; i < 5; i++ {
		if _, hit := Check(core.KGEQRT, "d"); hit {
			hits++
			if i != 2 {
				t.Errorf("hit at match %d, want 2", i)
			}
		}
	}
	if hits != 1 {
		t.Errorf("got %d hits, want exactly 1", hits)
	}
	if Injected() != 1 {
		t.Errorf("Injected() = %d, want 1", Injected())
	}
}

func TestTimesCapsInjections(t *testing.T) {
	defer Reset()
	Set(Config{Mode: ModeError, Kind: AnyKind, Index: -1, Times: 3})
	hits := 0
	for i := 0; i < 10; i++ {
		if _, hit := Check(core.KUNMQR, "s"); hit {
			hits++
		}
	}
	if hits != 3 {
		t.Errorf("got %d hits, want 3 (Times cap)", hits)
	}
}

func TestProbIsDeterministicPerSeed(t *testing.T) {
	defer Reset()
	run := func(seed uint64) []bool {
		Set(Config{Mode: ModeError, Kind: AnyKind, Index: -1, Prob: 0.3, Seed: seed})
		out := make([]bool, 64)
		for i := range out {
			_, out[i] = Check(core.KTSMQR, "c")
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at match %d", i)
		}
	}
	hits := 0
	for _, h := range a {
		if h {
			hits++
		}
	}
	// 64 coins at p = 0.3: expect roughly 19; the deterministic sequence
	// just needs to be neither empty nor saturated.
	if hits == 0 || hits == 64 {
		t.Errorf("prob 0.3 over 64 coins hit %d times", hits)
	}
	c := run(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := parseSpec("mode=stall;kind=GEQRT;prec=d;index=3;times=2;stall=50ms;prob=0.25;seed=9")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Mode: ModeStall, Kind: core.KGEQRT, Prec: "d", Index: 3,
		Times: 2, Stall: 50 * time.Millisecond, Prob: 0.25, Seed: 9}
	if cfg != want {
		t.Errorf("parseSpec = %+v, want %+v", cfg, want)
	}
	for _, bad := range []string{
		"mode=explode", "kind=NOPE", "prec=q", "index=x", "stall=soon",
		"prob=often", "seed=-1", "orphan", "what=ever",
	} {
		if _, err := parseSpec(bad); err == nil {
			t.Errorf("parseSpec(%q) accepted a malformed spec", bad)
		}
	}
}
