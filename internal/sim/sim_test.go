package sim

import (
	"testing"

	"tiledqr/internal/core"
)

// --- Table 3: tiled time-steps for a 15×6 matrix (TT kernels) ---------------

var table3FlatTree = [][]int{
	{6},
	{8, 28},
	{10, 34, 50},
	{12, 40, 56, 72},
	{14, 46, 62, 78, 94},
	{16, 52, 68, 84, 100, 116},
	{18, 58, 74, 90, 106, 122},
	{20, 64, 80, 96, 112, 128},
	{22, 70, 86, 102, 118, 134},
	{24, 76, 92, 108, 124, 140},
	{26, 82, 98, 114, 130, 146},
	{28, 88, 104, 120, 136, 152},
	{30, 94, 110, 126, 142, 158},
	{32, 100, 116, 132, 148, 164},
}

var table3Fibonacci = [][]int{
	{14},
	{12, 48},
	{12, 46, 70},
	{10, 42, 68, 92},
	{10, 40, 64, 90, 114},
	{10, 40, 62, 86, 112, 136},
	{8, 36, 62, 84, 108, 134},
	{8, 34, 58, 84, 106, 130},
	{8, 34, 56, 80, 106, 128},
	{8, 34, 56, 78, 102, 128},
	{6, 28, 56, 78, 100, 122},
	{6, 28, 50, 78, 100, 122},
	{6, 28, 44, 72, 100, 122},
	{6, 22, 44, 60, 94, 116},
}

var table3Greedy = [][]int{
	{12},
	{10, 42},
	{10, 40, 64},
	{8, 36, 62, 86},
	{8, 34, 56, 84, 106},
	{8, 34, 56, 78, 102, 128},
	{8, 30, 52, 78, 100, 122},
	{6, 28, 50, 72, 100, 118},
	{6, 28, 50, 72, 94, 116},
	{6, 28, 50, 68, 94, 116},
	{6, 28, 44, 66, 88, 110},
	{6, 22, 44, 66, 88, 110},
	{6, 22, 44, 60, 82, 104},
	{6, 22, 38, 60, 76, 98},
}

var table3BinaryTree = [][]int{
	{6},
	{8, 28},
	{6, 36, 56},
	{10, 34, 70, 90},
	{6, 44, 68, 104, 124},
	{8, 28, 78, 102, 138, 158},
	{6, 42, 62, 112, 136, 172},
	{12, 40, 76, 96, 146, 170},
	{6, 46, 74, 110, 130, 180},
	{8, 28, 80, 108, 144, 164},
	{6, 36, 56, 114, 142, 178},
	{10, 34, 64, 84, 148, 176},
	{6, 38, 62, 92, 112, 182},
	{8, 28, 66, 90, 114, 134},
}

var table3PlasmaBS5 = [][]int{
	{6},
	{8, 28},
	{10, 34, 50},
	{12, 40, 56, 72},
	{14, 46, 62, 78, 94},
	{6, 54, 74, 90, 106, 122},
	{8, 28, 82, 102, 118, 134},
	{10, 34, 50, 110, 130, 146},
	{12, 40, 56, 72, 138, 158},
	{16, 52, 68, 84, 100, 166},
	{6, 56, 80, 96, 112, 128},
	{8, 28, 84, 108, 124, 140},
	{10, 34, 50, 112, 136, 152},
	{12, 40, 56, 72, 140, 164},
}

func checkTiledTable(t *testing.T, name string, list core.List, want [][]int) {
	t.Helper()
	zero := ASAP(core.BuildDAG(list, core.TT)).ZeroTimes()
	for i := 2; i <= list.P; i++ {
		for k := 1; k <= min(i-1, list.MinPQ()); k++ {
			if zero[i-1][k-1] != want[i-2][k-1] {
				t.Errorf("%s: tile (%d,%d) zeroed at %d, paper says %d", name, i, k, zero[i-1][k-1], want[i-2][k-1])
			}
		}
	}
}

func TestTable3FlatTree(t *testing.T) {
	checkTiledTable(t, "FlatTree", core.FlatTreeList(15, 6), table3FlatTree)
}

func TestTable3Fibonacci(t *testing.T) {
	checkTiledTable(t, "Fibonacci", core.FibonacciList(15, 6), table3Fibonacci)
}

func TestTable3Greedy(t *testing.T) {
	checkTiledTable(t, "Greedy", core.GreedyList(15, 6), table3Greedy)
}

func TestTable3BinaryTree(t *testing.T) {
	checkTiledTable(t, "BinaryTree", core.BinaryTreeList(15, 6), table3BinaryTree)
}

func TestTable3PlasmaTreeBS5(t *testing.T) {
	checkTiledTable(t, "PlasmaTree(BS=5)", core.PlasmaTreeList(15, 6, 5), table3PlasmaBS5)
}

// --- cross-validation: DAG simulator vs the independent dynamic engine ------

func TestASAPMatchesDynamicEngine(t *testing.T) {
	for _, s := range [][2]int{{5, 3}, {15, 6}, {16, 16}, {40, 7}, {12, 12}, {9, 2}} {
		p, q := s[0], s[1]
		for _, alg := range []core.Algorithm{core.FlatTree, core.BinaryTree, core.Fibonacci, core.Greedy} {
			list, _ := core.Generate(alg, p, q, core.Options{})
			sched := ASAP(core.BuildDAG(list, core.TT))
			zeroDAG := sched.ZeroTimes()
			zeroEng, cpEng := core.StaticListTimes(list)
			if sched.CP != cpEng {
				t.Errorf("%v %dx%d: DAG CP %d != engine CP %d", alg, p, q, sched.CP, cpEng)
			}
			for i := 2; i <= p; i++ {
				for k := 1; k <= min(i-1, min(p, q)); k++ {
					if zeroDAG[i-1][k-1] != zeroEng[i-1][k-1] {
						t.Errorf("%v %dx%d tile (%d,%d): DAG %d != engine %d",
							alg, p, q, i, k, zeroDAG[i-1][k-1], zeroEng[i-1][k-1])
					}
				}
			}
		}
	}
}

// --- Table 4(b): Greedy vs Asap critical paths ------------------------------

func TestTable4b(t *testing.T) {
	// Asap 128×64: the paper prints 1748; our engine finds 1734, a slightly
	// *shorter* schedule. As with the Grasap (7,3) cell of Table 4(a), the
	// paper's Asap implementation occasionally delays the pairing of two
	// just-freed pivot rows; firing such pairs immediately — as the Asap
	// definition requires — shortens this one entry. Every conclusion drawn
	// from the table (Greedy dominates Asap as p grows) is unchanged; see
	// EXPERIMENTS.md.
	want := []struct{ p, q, greedy, asap int }{
		{16, 16, 310, 310},
		{32, 16, 360, 402},
		{32, 32, 650, 656},
		{64, 16, 374, 588},
		{64, 32, 726, 844},
		{64, 64, 1342, 1354},
		{128, 16, 396, 966},
		{128, 32, 748, 1222},
		{128, 64, 1452, 1734},
		{128, 128, 2732, 2756},
	}
	for _, w := range want {
		if cp := CriticalPathList(core.GreedyList(w.p, w.q), core.TT); cp != w.greedy {
			t.Errorf("Greedy %dx%d: CP %d, paper says %d", w.p, w.q, cp, w.greedy)
		}
		_, _, cp := core.AsapList(w.p, w.q)
		if cp != w.asap {
			t.Errorf("Asap %dx%d: CP %d, paper says %d", w.p, w.q, cp, w.asap)
		}
	}
}

// --- Table 5: theoretical critical paths for p = 40, q = 1..40 --------------

var table5Greedy = []int{
	16, 54, 74, 104, 126, 148, 170, 192, 214, 236,
	258, 280, 302, 324, 346, 368, 390, 412, 432, 454,
	476, 498, 520, 542, 564, 586, 608, 630, 652, 668,
	684, 700, 716, 732, 748, 764, 780, 796, 812, 826,
}

var table5Fibonacci = []int{
	22, 72, 94, 116, 138, 160, 182, 204, 226, 248,
	270, 292, 314, 336, 358, 380, 402, 424, 446, 468,
	490, 512, 534, 556, 578, 600, 622, 644, 666, 688,
	710, 732, 754, 776, 798, 820, 842, 862, 878, 892,
}

var table5Plasma = []struct{ cp, bs int }{
	{16, 1}, {60, 3}, {98, 5}, {132, 5}, {166, 5}, {198, 10}, {226, 10}, {254, 10}, {282, 10}, {310, 10},
	{336, 20}, {358, 20}, {380, 20}, {402, 20}, {424, 20}, {446, 20}, {468, 20}, {490, 20}, {512, 20}, {534, 20},
	{554, 20}, {570, 20}, {586, 20}, {602, 20}, {618, 20}, {634, 20}, {650, 20}, {666, 20}, {682, 20}, {698, 20},
	{714, 20}, {730, 20}, {746, 20}, {762, 20}, {778, 20}, {794, 20}, {810, 20}, {826, 20}, {842, 20}, {856, 20},
}

func TestTable5Greedy(t *testing.T) {
	for q := 1; q <= 40; q++ {
		if cp := CriticalPathList(core.GreedyList(40, q), core.TT); cp != table5Greedy[q-1] {
			t.Errorf("Greedy 40x%d: CP %d, paper says %d", q, cp, table5Greedy[q-1])
		}
	}
}

func TestTable5Fibonacci(t *testing.T) {
	for q := 1; q <= 40; q++ {
		if cp := CriticalPathList(core.FibonacciList(40, q), core.TT); cp != table5Fibonacci[q-1] {
			t.Errorf("Fibonacci 40x%d: CP %d, paper says %d", q, cp, table5Fibonacci[q-1])
		}
	}
}

func TestTable5PlasmaTree(t *testing.T) {
	for q := 1; q <= 40; q++ {
		want := table5Plasma[q-1]
		_, cp := BestPlasmaBS(40, q, core.TT)
		if cp != want.cp {
			t.Errorf("PlasmaTree 40x%d: best CP %d, paper says %d", q, cp, want.cp)
		}
		// The paper's reported domain size must achieve the optimum (the
		// minimizer need not be unique).
		if cpAt := CriticalPathList(core.PlasmaTreeList(40, q, want.bs), core.TT); cpAt != want.cp {
			t.Errorf("PlasmaTree 40x%d: BS=%d gives CP %d, paper says it achieves %d", q, want.bs, cpAt, want.cp)
		}
	}
}

// --- bounded-processor list scheduling ---------------------------------------

func TestListScheduleLimits(t *testing.T) {
	list := core.GreedyList(15, 6)
	d := core.BuildDAG(list, core.TT)
	w := UnitWeights(d)
	asap := ASAP(d)
	total := float64(d.TotalWeight())
	for _, workers := range []int{1, 2, 4, 48, 10000} {
		for _, prio := range []Priority{PriorityFIFO, PriorityBLevel} {
			ms := ListSchedule(d, workers, w, prio)
			if ms < float64(asap.CP)-1e-9 {
				t.Errorf("P=%d prio=%d: makespan %.0f below critical path %d", workers, prio, ms, asap.CP)
			}
			if ms < total/float64(workers)-1e-9 {
				t.Errorf("P=%d prio=%d: makespan %.0f below area bound %.1f", workers, prio, ms, total/float64(workers))
			}
		}
	}
	// One worker executes everything sequentially.
	if ms := ListSchedule(d, 1, w, PriorityFIFO); ms != total {
		t.Errorf("P=1 makespan %.0f, want total weight %.0f", ms, total)
	}
	// Unbounded workers with b-level priority achieve the critical path.
	if ms := ListSchedule(d, d.NumTasks(), w, PriorityBLevel); ms != float64(asap.CP) {
		t.Errorf("unbounded makespan %.0f, want CP %d", ms, asap.CP)
	}
}

// TestListScheduleMonotone checks more workers never hurt in our greedy
// scheduler on a few algorithm/shape combinations.
func TestListScheduleMonotone(t *testing.T) {
	d := core.BuildDAG(core.FibonacciList(20, 8), core.TT)
	w := UnitWeights(d)
	prev := ListSchedule(d, 1, w, PriorityBLevel)
	for _, workers := range []int{2, 4, 8, 16, 32} {
		ms := ListSchedule(d, workers, w, PriorityBLevel)
		if ms > prev+1e-9 {
			t.Errorf("makespan increased from %.0f to %.0f going to %d workers", prev, ms, workers)
		}
		prev = ms
	}
}

// --- TS kernels --------------------------------------------------------------

// TestTSFlatTreeCP checks Proposition 2's closed form against the simulator.
func TestTSFlatTreeCP(t *testing.T) {
	for _, s := range [][2]int{{1, 1}, {5, 1}, {12, 1}, {8, 5}, {15, 6}, {40, 13}, {7, 7}, {12, 12}, {40, 40}} {
		p, q := s[0], s[1]
		cp := CriticalPathList(core.FlatTreeList(p, q), core.TS)
		var want int
		switch {
		case q == 1:
			want = 6*p - 2
		case p == q:
			want = 30*p - 34
		default:
			want = 12*p + 18*q - 32
		}
		if cp != want {
			t.Errorf("TS-FlatTree %dx%d: CP %d, Proposition 2 says %d", p, q, cp, want)
		}
	}
}

// TestTSConversionNeverFaster: a TS algorithm's critical path is never
// shorter than the TT version of the same elimination list (§2.1: a TS
// kernel can always be split into two TT kernels, increasing parallelism).
func TestTSvsTTCriticalPaths(t *testing.T) {
	for _, s := range [][2]int{{8, 4}, {15, 6}, {20, 20}, {40, 5}} {
		for _, alg := range []core.Algorithm{core.FlatTree, core.BinaryTree, core.Greedy} {
			list, _ := core.Generate(alg, s[0], s[1], core.Options{})
			tt := CriticalPathList(list, core.TT)
			ts := CriticalPathList(list, core.TS)
			if ts < tt {
				t.Errorf("%v %dx%d: TS CP %d < TT CP %d", alg, s[0], s[1], ts, tt)
			}
		}
	}
}
