// Package sim is the discrete-event simulator used to analyze tiled QR
// algorithms, replacing the SimGrid-based simulator of the paper. It
// computes ASAP (unbounded-processor) schedules — whose per-tile zeroing
// times reproduce Tables 3 and 4 and whose makespans are the critical
// paths of Table 5 — and bounded-processor list schedules used for the
// performance predictions of Section 4.
package sim

import (
	"container/heap"

	"tiledqr/internal/core"
)

// Schedule is the result of an ASAP simulation: per-task start/finish times
// in units of nb³/3 flops, and the makespan (critical path length).
type Schedule struct {
	DAG    *core.DAG
	Start  []int
	Finish []int
	CP     int
}

// ASAP computes the earliest-start schedule of the task DAG with unbounded
// processors: each kernel starts as soon as all its dependencies completed
// (§2.3). Task IDs are topologically ordered by construction, so a single
// forward sweep suffices.
func ASAP(d *core.DAG) *Schedule {
	n := d.NumTasks()
	s := &Schedule{DAG: d, Start: make([]int, n), Finish: make([]int, n)}
	for t := 0; t < n; t++ {
		start := 0
		for _, p := range d.Preds(t) {
			if f := s.Finish[p]; f > start {
				start = f
			}
		}
		s.Start[t] = start
		s.Finish[t] = start + d.Tasks[t].Kind.Weight()
		if s.Finish[t] > s.CP {
			s.CP = s.Finish[t]
		}
	}
	return s
}

// ZeroTimes returns the time step at which each sub-diagonal tile (i,k) is
// zeroed out (the completion of its TSQRT/TTQRT), indexed [i-1][k-1]; zero
// entries correspond to tiles that are never eliminated. This is the
// quantity tabulated in Tables 3 and 4(a).
func (s *Schedule) ZeroTimes() [][]int {
	qmin := min(s.DAG.P, s.DAG.Q)
	out := make([][]int, s.DAG.P)
	for i := 1; i <= s.DAG.P; i++ {
		out[i-1] = make([]int, qmin)
		for k := 1; k <= min(qmin, i-1); k++ {
			if t := s.DAG.ZeroTask(i, k); t >= 0 {
				out[i-1][k-1] = s.Finish[t]
			}
		}
	}
	return out
}

// CriticalPath is a convenience wrapper: the critical path length of the
// given algorithm on a p×q grid with the chosen kernel family.
func CriticalPath(alg core.Algorithm, p, q int, opt core.Options, kernels core.Kernels) (int, error) {
	list, err := core.Generate(alg, p, q, opt)
	if err != nil {
		return 0, err
	}
	return ASAP(core.BuildDAG(list, kernels)).CP, nil
}

// CriticalPathList returns the critical path of an explicit elimination
// list under the chosen kernel family.
func CriticalPathList(list core.List, kernels core.Kernels) int {
	return ASAP(core.BuildDAG(list, kernels)).CP
}

// BestPlasmaBS sweeps the PlasmaTree domain size 1..p and returns the size
// with the shortest critical path (ties go to the smaller BS, matching the
// paper's exhaustive search) along with that critical path.
func BestPlasmaBS(p, q int, kernels core.Kernels) (bs, cp int) {
	bs, cp = 1, -1
	for b := 1; b <= p; b++ {
		c := CriticalPathList(core.PlasmaTreeList(p, q, b), kernels)
		if cp < 0 || c < cp {
			bs, cp = b, c
		}
	}
	return bs, cp
}

// Priority selects the ready-queue ordering of the bounded-processor list
// scheduler.
type Priority int

const (
	// PriorityFIFO runs ready tasks in task-creation (list) order, the
	// behaviour of a simple dynamic runtime queue.
	PriorityFIFO Priority = iota
	// PriorityBLevel runs the ready task with the longest remaining
	// critical path first (classic HLF/bottom-level list scheduling).
	PriorityBLevel
)

// ListSchedule simulates execution of the DAG on `workers` processors with
// the given task weights (weights[t] = duration of task t; use UnitWeights
// for Table 1 units or measured kernel times for performance prediction).
// It returns the makespan in the same unit as weights.
func ListSchedule(d *core.DAG, workers int, weights []float64, prio Priority) float64 {
	n := d.NumTasks()
	if n == 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	succOff, succs := d.Succs()
	indeg := make([]int32, n)
	for t := 0; t < n; t++ {
		indeg[t] = int32(len(d.Preds(t)))
	}
	rank := make([]float64, n)
	if prio == PriorityBLevel {
		for t := n - 1; t >= 0; t-- {
			var best float64
			for _, s := range succs[succOff[t]:succOff[t+1]] {
				if rank[s] > best {
					best = rank[s]
				}
			}
			rank[t] = best + weights[t]
		}
	} else {
		for t := range rank {
			rank[t] = float64(n - t) // FIFO: earlier tasks first
		}
	}

	ready := &taskHeap{rank: rank}
	for t := 0; t < n; t++ {
		if indeg[t] == 0 {
			heap.Push(ready, int32(t))
		}
	}
	running := &eventQueue{}
	var now, makespan float64
	free := workers
	done := 0
	for done < n {
		for free > 0 && ready.Len() > 0 {
			t := heap.Pop(ready).(int32)
			fin := now + weights[t]
			heap.Push(running, taskEvent{fin: fin, id: t})
			free--
		}
		ev := heap.Pop(running).(taskEvent)
		now = ev.fin
		if now > makespan {
			makespan = now
		}
		free++
		done++
		// Drain every completion at the same instant before dispatching.
		for _, s := range succs[succOff[ev.id]:succOff[ev.id+1]] {
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(ready, s)
			}
		}
		for running.Len() > 0 && (*running)[0].fin == now {
			ev = heap.Pop(running).(taskEvent)
			free++
			done++
			for _, s := range succs[succOff[ev.id]:succOff[ev.id+1]] {
				indeg[s]--
				if indeg[s] == 0 {
					heap.Push(ready, s)
				}
			}
		}
	}
	return makespan
}

// UnitWeights returns each task's Table 1 weight as a float64 slice.
func UnitWeights(d *core.DAG) []float64 {
	w := make([]float64, d.NumTasks())
	for t := range w {
		w[t] = float64(d.Tasks[t].Kind.Weight())
	}
	return w
}

// KindWeights builds a task weight slice from a per-kind duration table
// (e.g. measured kernel seconds).
func KindWeights(d *core.DAG, dur map[core.Kind]float64) []float64 {
	w := make([]float64, d.NumTasks())
	for t := range w {
		w[t] = dur[d.Tasks[t].Kind]
	}
	return w
}

type taskHeap struct {
	items []int32
	rank  []float64
}

func (h *taskHeap) Len() int { return len(h.items) }
func (h *taskHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.rank[a] != h.rank[b] {
		return h.rank[a] > h.rank[b]
	}
	return a < b
}
func (h *taskHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *taskHeap) Push(x any)    { h.items = append(h.items, x.(int32)) }
func (h *taskHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

type taskEvent struct {
	fin float64
	id  int32
}

type eventQueue []taskEvent

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].fin < q[j].fin }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(taskEvent)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
