// Package exhaustive searches the space of all generic tiled algorithms for
// the one with the shortest critical path, reproducing the "program for a
// sanity check" behind Theorem 1(3) of the paper: the optimal critical path
// of a banded square matrix bounds the optimal critical path of every
// matrix from below.
//
// The search enumerates, column by column, every per-column elimination
// sequence (cross-column interleaving provably does not affect the task
// DAG), evaluating the ASAP tiled schedule incrementally and pruning
// branches whose partial makespan already reaches the incumbent. Lemma 1
// restricts pivots to rows above the zeroed row without loss of generality.
package exhaustive

import (
	"tiledqr/internal/core"
)

// weights of the TT kernels (Table 1).
const (
	wGEQRT = 4
	wUNMQR = 6
	wTTQRT = 2
	wTTMQR = 6
)

// state carries the incremental ASAP evaluation: the completion time of the
// last write to each tile's data region, and the running makespan.
type state struct {
	p, q     int
	dataTime []int // (p+1)×(q+1), 1-based
	makespan int
}

func newState(p, q int) *state {
	return &state{p: p, q: q, dataTime: make([]int, (p+1)*(q+1))}
}

func (s *state) dt(i, j int) int   { return s.dataTime[i*(s.q+1)+j] }
func (s *state) setDT(i, j, v int) { s.dataTime[i*(s.q+1)+j] = v }
func (s *state) bump(t int) {
	if t > s.makespan {
		s.makespan = t
	}
}

func (s *state) clone() *state {
	c := *s
	c.dataTime = append([]int(nil), s.dataTime...)
	return &c
}

// enterColumn performs GEQRT(row, k) and its UNMQR updates, returning the
// row's availability time in column k.
func (s *state) enterColumn(row, k int) int {
	gf := s.dt(row, k) + wGEQRT
	s.bump(gf)
	for j := k + 1; j <= s.q; j++ {
		uf := max(gf, s.dt(row, j)) + wUNMQR
		s.setDT(row, j, uf)
		s.bump(uf)
	}
	return gf
}

// elim performs TTQRT(i, piv, k) starting when both rows are available,
// plus its TTMQR updates; avail times are passed and the pivot's new
// availability returned.
func (s *state) elim(i, piv, k, availI, availPiv int) (pivAvail int) {
	fin := max(availI, availPiv) + wTTQRT
	s.bump(fin)
	for j := k + 1; j <= s.q; j++ {
		f := max(fin, s.dt(i, j), s.dt(piv, j)) + wTTMQR
		s.setDT(i, j, f)
		s.setDT(piv, j, f)
		s.bump(f)
	}
	return fin
}

// Searcher runs the branch-and-bound search.
type Searcher struct {
	p, q, band int
	qmin       int
	best       int
	leaves     int // completed schedules examined (for reporting)

	// Budget bounds the number of search nodes expanded (0 = unlimited).
	// When exhausted, OptimalCP returns the best schedule found so far —
	// an upper bound on the optimum — and Complete reports false.
	Budget int
	nodes  int
	capped bool
}

// New creates a searcher for a p×q grid in which tile (i,k) is structurally
// nonzero only when i−k ≤ band; band ≥ p−1 means a full matrix.
func New(p, q, band int) *Searcher {
	if band < 1 {
		band = 1
	}
	return &Searcher{p: p, q: q, band: band, qmin: min(p, q), best: 1 << 30}
}

// startCol returns the first column in which row i holds a nonzero tile.
func (s *Searcher) startCol(i int) int { return max(1, i-s.band) }

// OptimalCP runs the search and returns the minimal critical path over all
// generic tiled algorithms (TT kernels).
func (s *Searcher) OptimalCP() int {
	st := newState(s.p, s.q)
	s.column(1, st, nil)
	return s.best
}

// Leaves returns the number of complete schedules evaluated.
func (s *Searcher) Leaves() int { return s.leaves }

// Complete reports whether the search space was fully explored (no budget
// cut); if false, the returned critical path is only an upper bound.
func (s *Searcher) Complete() bool { return !s.capped }

// column enumerates column k given the state after columns < k. carried
// is unused for k = 1 and exists to keep the recursion uniform.
func (s *Searcher) column(k int, st *state, _ []int) {
	if k > s.qmin {
		s.leaves++
		if st.makespan < s.best {
			s.best = st.makespan
		}
		return
	}
	if st.makespan >= s.best {
		return
	}
	// Rows active in column k: those whose band has reached this column.
	// They all need triangularization; all but the topmost need zeroing.
	var rows []int
	for i := k; i <= s.p; i++ {
		if s.startCol(i) <= k {
			rows = append(rows, i)
		}
	}
	avail := make(map[int]int, len(rows))
	for _, i := range rows {
		avail[i] = st.enterColumn(i, k)
	}
	if st.makespan >= s.best {
		return
	}
	s.pairs(k, st, rows[1:], avail)
}

// pairs recursively chooses the next elimination in column k among the
// remaining zeroable rows; when none remain the search proceeds to the next
// column.
func (s *Searcher) pairs(k int, st *state, toZero []int, avail map[int]int) {
	s.nodes++
	if s.Budget > 0 && s.nodes > s.Budget {
		s.capped = true
		return
	}
	if st.makespan >= s.best {
		return
	}
	if len(toZero) == 0 {
		s.column(k+1, st, nil)
		return
	}
	for zi, i := range toZero {
		// Pivot: any still-unzeroed row above i active in this column
		// (Lemma 1: pivots below i need not be considered). Zeroed rows
		// have been removed from avail.
		for piv := k; piv < i; piv++ {
			if s.startCol(piv) > k {
				continue
			}
			av, ok := avail[piv]
			if !ok {
				continue
			}
			st2 := st.clone()
			pivAvail := st2.elim(i, piv, k, avail[i], av)
			if st2.makespan >= s.best {
				continue
			}
			rest := make([]int, 0, len(toZero)-1)
			rest = append(rest, toZero[:zi]...)
			rest = append(rest, toZero[zi+1:]...)
			avail2 := make(map[int]int, len(avail))
			for r, t := range avail {
				avail2[r] = t
			}
			delete(avail2, i)
			avail2[piv] = pivAvail
			s.pairs(k, st2, rest, avail2)
		}
	}
}

// AlgorithmCP evaluates an algorithm's elimination list under the same
// banded model (rows outside the band are skipped), for comparing the
// searched optimum against the paper's algorithms on banded matrices.
func AlgorithmCP(p, q, band int, list core.List) int {
	s := New(p, q, band)
	st := newState(p, q)
	perCol := make([][]core.Elim, s.qmin+1)
	for _, e := range list.Elims {
		if e.I-e.K <= band {
			perCol[e.K] = append(perCol[e.K], e)
		}
	}
	for k := 1; k <= s.qmin; k++ {
		avail := map[int]int{}
		for i := k; i <= p; i++ {
			if s.startCol(i) <= k {
				avail[i] = st.enterColumn(i, k)
			}
		}
		for _, e := range perCol[k] {
			pv := st.elim(e.I, e.Piv, e.K, avail[e.I], avail[e.Piv])
			delete(avail, e.I)
			avail[e.Piv] = pv
		}
	}
	return st.makespan
}
