package exhaustive

import (
	"testing"

	"tiledqr/internal/core"
	"tiledqr/internal/sim"
)

// TestEvaluatorMatchesSimulator: the incremental ASAP evaluator used by the
// search must agree exactly with the DAG-based simulator on full matrices.
func TestEvaluatorMatchesSimulator(t *testing.T) {
	for _, s := range [][2]int{{4, 2}, {6, 3}, {8, 8}, {10, 4}, {15, 6}, {12, 1}} {
		p, q := s[0], s[1]
		for _, alg := range []core.Algorithm{core.FlatTree, core.Greedy, core.Fibonacci, core.BinaryTree} {
			l, _ := core.Generate(alg, p, q, core.Options{})
			a := AlgorithmCP(p, q, p, l)
			b := sim.CriticalPathList(l, core.TT)
			if a != b {
				t.Errorf("%v %dx%d: evaluator %d != simulator %d", alg, p, q, a, b)
			}
		}
	}
}

// TestOptimalSingleColumn: for one tile column the optimum is the binary
// reduction tree, 4 + 2⌈log₂p⌉.
func TestOptimalSingleColumn(t *testing.T) {
	want := map[int]int{2: 6, 3: 8, 4: 8, 5: 10, 6: 10, 7: 10, 8: 10}
	for p, w := range want {
		s := New(p, 1, p)
		if cp := s.OptimalCP(); cp != w {
			t.Errorf("optimal %dx1 = %d, want %d", p, cp, w)
		}
		l, _ := core.Generate(core.BinaryTree, p, 1, core.Options{})
		if bt := sim.CriticalPathList(l, core.TT); bt != w {
			t.Errorf("BinaryTree %dx1 = %d, want optimal %d", p, bt, w)
		}
	}
}

// TestGreedyOptimalOnSmallFullGrids pins the finding that Greedy achieves
// the optimal critical path on every full grid small enough to search
// exhaustively (the paper shows Greedy is NOT optimal in general — the
// smallest counterexamples, 15×2 and 15×3, are beyond exhaustive reach).
func TestGreedyOptimalOnSmallFullGrids(t *testing.T) {
	shapes := [][3]int{ // p, q, optimal
		{4, 2, 28}, {5, 2, 34}, {4, 3, 44}, {5, 3, 50}, {5, 4, 66}, {6, 4, 72},
	}
	for _, c := range shapes {
		p, q, want := c[0], c[1], c[2]
		s := New(p, q, p)
		cp := s.OptimalCP()
		if !s.Complete() {
			t.Fatalf("%dx%d search did not complete", p, q)
		}
		if cp != want {
			t.Errorf("optimal %dx%d = %d, want %d", p, q, cp, want)
		}
		l, _ := core.Generate(core.Greedy, p, q, core.Options{})
		if g := sim.CriticalPathList(l, core.TT); g != cp {
			t.Errorf("Greedy %dx%d = %d, optimal is %d", p, q, g, cp)
		}
	}
}

// TestAsapNotOptimalEvenSmall: Asap already loses to the optimum (and to
// Greedy) on grids small enough to verify exhaustively.
func TestAsapNotOptimal(t *testing.T) {
	p, q := 6, 4
	s := New(p, q, p)
	opt := s.OptimalCP()
	_, _, asap := core.AsapList(p, q)
	if asap < opt {
		t.Fatalf("Asap %d beats the 'optimal' %d — searcher bug", asap, opt)
	}
	if asap == opt {
		t.Skipf("Asap matches the optimum on %dx%d; inequality appears on larger grids", p, q)
	}
}

// TestBandedLowerBound reproduces the paper's Theorem 1(3) sanity-check
// program: the optimal critical path of a q×q matrix with three non-zero
// sub-diagonals. The paper reports 22q−30; the exhaustive search CONFIRMS
// that for q = 4 and q = 5 but finds strictly shorter schedules from q = 6
// on, converging to 16 units per column (a pipelined pattern the paper's
// search evidently missed). See EXPERIMENTS.md.
func TestBandedLowerBound(t *testing.T) {
	want := map[int]int{2: 20, 3: 42, 4: 58, 5: 80, 6: 96, 7: 112}
	for q := 2; q <= 7; q++ {
		if testing.Short() && q > 5 {
			break
		}
		s := New(q, q, 3)
		cp := s.OptimalCP()
		if !s.Complete() {
			t.Fatalf("banded q=%d search did not complete", q)
		}
		if cp != want[q] {
			t.Errorf("banded optimal q=%d: %d, want %d", q, cp, want[q])
		}
		paper := 22*q - 30
		switch {
		case q == 4 || q == 5:
			if cp != paper {
				t.Errorf("q=%d: expected agreement with the paper's 22q−30 = %d, got %d", q, paper, cp)
			}
		case q >= 6:
			if cp >= paper {
				t.Errorf("q=%d: expected a schedule shorter than the paper's 22q−30 = %d, got %d", q, paper, cp)
			}
		}
	}
}

// TestBudget: a tiny budget must cap the search and report incompleteness,
// while still returning a valid upper bound.
func TestBudget(t *testing.T) {
	s := New(6, 4, 6)
	s.Budget = 50
	cp := s.OptimalCP()
	if s.Complete() {
		t.Error("search with 50-node budget claims completeness")
	}
	if cp < 72 { // true optimum
		t.Errorf("budgeted search returned %d, below the true optimum 72", cp)
	}
}
