package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"tiledqr"
)

// Config sizes a Server. The zero value of every field selects a sensible
// default; Runtime is the only required field.
type Config struct {
	// Runtime is the shared worker pool every request's DAG executes on.
	// Admission across concurrent requests is the runtime's weighted-fair
	// scheduler; the server layers per-tenant quotas and queue-depth
	// backpressure on top.
	Runtime *tiledqr.Runtime

	// MaxBodyBytes bounds a request body (default 64 MiB).
	MaxBodyBytes int64
	// MaxElements bounds rows·cols of any one wire matrix (default 4M).
	MaxElements int

	// MaxQueueDepth is the runtime ready-task backlog beyond which compute
	// requests are rejected with 429 + Retry-After (default 512 × workers;
	// negative disables).
	MaxQueueDepth int
	// TenantActive and TenantQueued bound one tenant (X-Tenant header,
	// "default" when absent) to TenantActive concurrent requests plus
	// TenantQueued waiting ones (defaults 32 and 64; TenantActive < 0
	// disables quotas).
	TenantActive int
	TenantQueued int

	// CoalesceWindow is how long the first of a burst of identical-matrix
	// solves waits for companions before factoring (default 2ms; negative
	// disables coalescing). CoalesceMax bounds one batch (default 16).
	CoalesceWindow time.Duration
	CoalesceMax    int

	// SessionTTL evicts sessions idle longer than this (default 5m);
	// MaxSessions bounds the table (default 1024).
	SessionTTL  time.Duration
	MaxSessions int
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxElements == 0 {
		c.MaxElements = 4 << 20
	}
	if c.MaxQueueDepth == 0 {
		c.MaxQueueDepth = 512 * c.Runtime.Workers()
	}
	if c.TenantActive == 0 {
		c.TenantActive = 32
	}
	if c.TenantQueued == 0 {
		c.TenantQueued = 64
	}
	if c.CoalesceWindow == 0 {
		c.CoalesceWindow = 2 * time.Millisecond
	}
	if c.CoalesceMax == 0 {
		c.CoalesceMax = 16
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 5 * time.Minute
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 1024
	}
	return c
}

// Server is the HTTP serving layer: construct with New, mount Handler, and
// on shutdown call StartDrain + AwaitIdle before draining the runtime.
type Server struct {
	cfg      Config
	rt       *tiledqr.Runtime
	mux      *http.ServeMux
	sessions *sessionTable
	limiter  *limiter
	coal     *coalescer
	stats    serverStats

	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	draining bool
	inflight int
	idlers   []chan struct{}
}

// New builds a Server on the given runtime.
func New(cfg Config) *Server {
	if cfg.Runtime == nil {
		panic("serve: Config.Runtime is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		rt:       cfg.Runtime,
		mux:      http.NewServeMux(),
		sessions: newSessionTable(cfg.SessionTTL, cfg.MaxSessions),
		limiter:  newLimiter(cfg.TenantActive, cfg.TenantQueued),
		coal:     newCoalescer(cfg.CoalesceWindow, cfg.CoalesceMax),
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("POST /v1/factor", s.compute(&s.stats.factor, s.handleFactor))
	s.mux.HandleFunc("POST /v1/solve", s.compute(&s.stats.solve, s.handleSolve))
	s.mux.HandleFunc("POST /v1/streams", s.compute(nil, s.handleStreamCreate))
	s.mux.HandleFunc("POST /v1/streams/{id}/rows", s.compute(&s.stats.streamRows, s.handleStreamRows))
	s.mux.HandleFunc("DELETE /v1/streams/{id}/rows", s.compute(&s.stats.streamRows, s.handleStreamDowndate))
	s.mux.HandleFunc("GET /v1/streams/{id}/solve", s.compute(&s.stats.streamSolve, s.handleStreamSolve))
	s.mux.HandleFunc("POST /v1/streams/{id}/factor", s.compute(&s.stats.reuse, s.handleStreamFactor))
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.compute(nil, s.handleStreamDelete))
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDrain stops admitting compute requests: every subsequent one gets
// 503, while requests already in flight run to completion (AwaitIdle
// observes them). healthz flips to 503 so load balancers stop routing here.
func (s *Server) StartDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// AwaitIdle blocks until no compute request is in flight, or until ctx is
// done (returning its error). Call after StartDrain for a graceful stop.
func (s *Server) AwaitIdle(ctx context.Context) error {
	s.mu.Lock()
	if s.inflight == 0 {
		s.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	s.idlers = append(s.idlers, ch)
	s.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels the server's base context (failing any coalesced batches
// still waiting for their window). It does not touch the runtime.
func (s *Server) Close() { s.cancel() }

// InFlight returns the number of compute requests currently being served.
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
		s.stats.throttled.Add(1)
	} else if status >= 400 {
		s.stats.failed.Add(1)
	}
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// failErr maps library errors onto HTTP statuses: lifecycle rejections are
// 503 (the server is going away), everything else is the caller's fault or
// a plain failure.
func (s *Server) failErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, tiledqr.ErrRuntimeDraining), errors.Is(err, tiledqr.ErrRuntimeClosed):
		s.fail(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, errThrottled):
		s.fail(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, errNoSession):
		s.fail(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, errSessionLimit):
		s.fail(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.fail(w, 499, "%v", err) // client closed request (nginx convention)
	default:
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
	}
}

// compute wraps a handler with the shared serving concerns: drain gating,
// in-flight accounting, queue-depth backpressure, per-tenant quotas, and
// latency recording (hist may be nil for cheap administrative endpoints).
func (s *Server) compute(hist *Histogram, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			s.fail(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		s.inflight++
		s.mu.Unlock()
		defer func() {
			s.mu.Lock()
			s.inflight--
			if s.inflight == 0 {
				for _, ch := range s.idlers {
					close(ch)
				}
				s.idlers = nil
			}
			s.mu.Unlock()
		}()

		if s.cfg.MaxQueueDepth > 0 && hist != nil {
			if st := s.rt.Stats(); st.QueuedTasks > s.cfg.MaxQueueDepth {
				s.fail(w, http.StatusTooManyRequests,
					"runtime backlog %d exceeds bound %d", st.QueuedTasks, s.cfg.MaxQueueDepth)
				return
			}
		}
		tenant := r.Header.Get("X-Tenant")
		if tenant == "" {
			tenant = "default"
		}
		release, err := s.limiter.acquire(r.Context(), tenant)
		if err != nil {
			s.failErr(w, err)
			return
		}
		defer release()

		s.stats.requests.Add(1)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		start := time.Now()
		h(w, r)
		if hist != nil {
			hist.Observe(time.Since(start))
		}
	}
}

// readBody decodes a JSON request body into v.
func readBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// WireOptions is the wire form of the tunable factorization options.
type WireOptions struct {
	Algorithm   string `json:"algorithm,omitempty"`
	Kernels     string `json:"kernels,omitempty"`
	TileSize    int    `json:"tile_size,omitempty"`
	InnerBlock  int    `json:"inner_block,omitempty"`
	CheckHealth bool   `json:"check_health,omitempty"`
}

// options lowers the wire options onto the server's runtime.
func (w *WireOptions) options(rt *tiledqr.Runtime) (tiledqr.Options, error) {
	opt := tiledqr.Options{Runtime: rt}
	if w == nil {
		return opt, nil
	}
	switch w.Algorithm {
	case "", "greedy":
		opt.Algorithm = tiledqr.Greedy
	case "auto":
		opt.Algorithm = tiledqr.AlgorithmAuto
	case "flattree":
		opt.Algorithm = tiledqr.FlatTree
	case "binarytree":
		opt.Algorithm = tiledqr.BinaryTree
	case "fibonacci":
		opt.Algorithm = tiledqr.Fibonacci
	case "asap":
		opt.Algorithm = tiledqr.Asap
	default:
		return opt, fmt.Errorf("unknown algorithm %q", w.Algorithm)
	}
	switch w.Kernels {
	case "", "tt":
		opt.Kernels = tiledqr.TT
	case "ts":
		opt.Kernels = tiledqr.TS
	default:
		return opt, fmt.Errorf("unknown kernel family %q", w.Kernels)
	}
	if w.TileSize < 0 || w.InnerBlock < 0 {
		return opt, fmt.Errorf("tile_size and inner_block must be ≥ 0")
	}
	opt.TileSize = w.TileSize
	opt.InnerBlock = w.InnerBlock
	opt.CheckHealth = w.CheckHealth
	return opt, nil
}

// ---- one-shot endpoints ----

type factorRequest struct {
	Precision string       `json:"precision,omitempty"`
	Matrix    *Matrix      `json:"matrix"`
	Options   *WireOptions `json:"options,omitempty"`
}

type factorReply struct {
	R         *Matrix `json:"r"`
	TaskCount int     `json:"task_count"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleFactor(w http.ResponseWriter, r *http.Request) {
	var req factorRequest
	if err := readBody(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	o, opt, err := s.prep(req.Precision, req.Options, req.Matrix)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	rm, tasks, err := o.Factor(r.Context(), req.Matrix, opt)
	s.stats.factorizations.Add(1)
	if err != nil {
		s.failErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, factorReply{
		R: rm, TaskCount: tasks,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

type solveRequest struct {
	Precision string       `json:"precision,omitempty"`
	Matrix    *Matrix      `json:"matrix"`
	RHS       *Matrix      `json:"rhs"`
	Options   *WireOptions `json:"options,omitempty"`
}

type solveReply struct {
	X         *Matrix `json:"x"`
	Coalesced int     `json:"coalesced"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := readBody(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	o, opt, err := s.prep(req.Precision, req.Options, req.Matrix)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := o.CheckMatrix(req.RHS, s.cfg.MaxElements); err != nil {
		s.fail(w, http.StatusBadRequest, "rhs: %v", err)
		return
	}
	if req.RHS.Rows != req.Matrix.Rows || req.Matrix.Rows < req.Matrix.Cols {
		s.fail(w, http.StatusBadRequest,
			"solve wants matrix rows ≥ cols and rhs rows == matrix rows (matrix %d×%d, rhs %d×%d)",
			req.Matrix.Rows, req.Matrix.Cols, req.RHS.Rows, req.RHS.Cols)
		return
	}
	start := time.Now()
	x, size, err := s.coal.solve(r.Context(), s.baseCtx, o, req.Matrix, req.RHS, opt, &s.stats)
	if err != nil {
		s.failErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, solveReply{
		X: x, Coalesced: size,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// prep resolves precision and options and validates the primary matrix.
func (s *Server) prep(prec string, wo *WireOptions, m *Matrix) (ops, tiledqr.Options, error) {
	o, err := opsFor(prec)
	if err != nil {
		return nil, tiledqr.Options{}, err
	}
	opt, err := wo.options(s.rt)
	if err != nil {
		return nil, tiledqr.Options{}, err
	}
	if err := o.CheckMatrix(m, s.cfg.MaxElements); err != nil {
		return nil, tiledqr.Options{}, err
	}
	return o, opt, nil
}

// ---- session endpoints ----

type streamCreateRequest struct {
	Precision string       `json:"precision,omitempty"`
	Kind      string       `json:"kind,omitempty"` // "stream" (default) or "factor"
	Cols      int          `json:"cols,omitempty"` // required for kind "stream"
	Options   *WireOptions `json:"options,omitempty"`
	// Window and Forget configure stream retention (tiledqr.Options
	// WindowRows/Forget): a positive window keeps the most recent Window
	// rows (older ones are downdated away automatically), -1 retains the
	// full history for manual DELETE .../rows calls, and Forget λ ∈ (0, 1]
	// decays past rows' weight per append. Stream sessions only.
	Window int     `json:"window,omitempty"`
	Forget float64 `json:"forget,omitempty"`
}

type streamCreateReply struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
}

func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	var req streamCreateRequest
	if err := readBody(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	o, err := opsFor(req.Precision)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt, err := req.Options.options(s.rt)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	sess := &session{tenant: r.Header.Get("X-Tenant"), prec: o.Precision()}
	switch req.Kind {
	case "", "stream":
		if req.Cols < 1 {
			s.fail(w, http.StatusBadRequest, "stream sessions need cols ≥ 1")
			return
		}
		opt.WindowRows = req.Window
		opt.Forget = req.Forget
		st, err := o.NewStream(req.Cols, opt)
		if err != nil {
			s.failErr(w, err)
			return
		}
		sess.stream = st
		req.Kind = "stream"
	case "factor":
		if req.Window != 0 || req.Forget != 0 {
			s.fail(w, http.StatusBadRequest, "window and forget apply to stream sessions, not factor sessions")
			return
		}
		sess.reuse = o.NewReusable(opt)
	default:
		s.fail(w, http.StatusBadRequest, "unknown session kind %q (want stream or factor)", req.Kind)
		return
	}
	if err := s.sessions.add(sess); err != nil {
		s.failErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, streamCreateReply{ID: sess.id, Kind: req.Kind})
}

type streamRowsRequest struct {
	Batch *Matrix `json:"batch"`
	RHS   *Matrix `json:"rhs,omitempty"`
}

type streamRowsReply struct {
	Rows      int64   `json:"rows"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// getSession fetches the session for a /v1/streams/{id}/... request.
func (s *Server) getSession(w http.ResponseWriter, r *http.Request) *session {
	sess, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		s.failErr(w, err)
		return nil
	}
	return sess
}

func (s *Server) handleStreamRows(w http.ResponseWriter, r *http.Request) {
	sess := s.getSession(w, r)
	if sess == nil {
		return
	}
	if sess.stream == nil {
		s.fail(w, http.StatusBadRequest, "session %s is a factor session, not a stream", sess.id)
		return
	}
	var req streamRowsRequest
	if err := readBody(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	o, _ := opsFor(sess.prec)
	if err := o.CheckMatrix(req.Batch, s.cfg.MaxElements); err != nil {
		s.fail(w, http.StatusBadRequest, "batch: %v", err)
		return
	}
	if req.RHS != nil {
		if err := o.CheckMatrix(req.RHS, s.cfg.MaxElements); err != nil {
			s.fail(w, http.StatusBadRequest, "rhs: %v", err)
			return
		}
	}
	start := time.Now()
	sess.mu.Lock()
	err := sess.stream.Append(r.Context(), req.Batch, req.RHS)
	rows := sess.stream.Rows()
	sess.mu.Unlock()
	if err != nil {
		s.failErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, streamRowsReply{
		Rows:      rows,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// handleStreamDowndate serves DELETE /v1/streams/{id}/rows?rows=k: it
// downdates the oldest k rows out of a retention-enabled stream session
// (created with "window" or "forget"), the revocation counterpart of the
// POST append. The row count travels in a query parameter because DELETE
// request bodies are widely dropped by proxies.
func (s *Server) handleStreamDowndate(w http.ResponseWriter, r *http.Request) {
	sess := s.getSession(w, r)
	if sess == nil {
		return
	}
	if sess.stream == nil {
		s.fail(w, http.StatusBadRequest, "session %s is a factor session, not a stream", sess.id)
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("rows"))
	if err != nil || k < 1 {
		s.fail(w, http.StatusBadRequest, "downdate needs a positive ?rows=k query parameter")
		return
	}
	start := time.Now()
	sess.mu.Lock()
	rows, err := sess.stream.Downdate(r.Context(), k)
	sess.mu.Unlock()
	if err != nil {
		s.failErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, streamRowsReply{
		Rows:      rows,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

type streamSolveReply struct {
	X         *Matrix `json:"x"`
	Residual  float64 `json:"residual"`
	Rows      int64   `json:"rows"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleStreamSolve(w http.ResponseWriter, r *http.Request) {
	sess := s.getSession(w, r)
	if sess == nil {
		return
	}
	if sess.stream == nil {
		s.fail(w, http.StatusBadRequest, "session %s is a factor session, not a stream", sess.id)
		return
	}
	start := time.Now()
	sess.mu.Lock()
	x, resid, err := sess.stream.Solve()
	rows := sess.stream.Rows()
	sess.mu.Unlock()
	if err != nil {
		s.failErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, streamSolveReply{
		X: x, Residual: resid, Rows: rows,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

type streamFactorRequest struct {
	Matrix *Matrix `json:"matrix"`
	RHS    *Matrix `json:"rhs,omitempty"`
}

type streamFactorReply struct {
	R         *Matrix `json:"r,omitempty"`
	X         *Matrix `json:"x,omitempty"`
	TaskCount int     `json:"task_count"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleStreamFactor(w http.ResponseWriter, r *http.Request) {
	sess := s.getSession(w, r)
	if sess == nil {
		return
	}
	if sess.reuse == nil {
		s.fail(w, http.StatusBadRequest, "session %s is a stream, not a factor session", sess.id)
		return
	}
	var req streamFactorRequest
	if err := readBody(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	o, _ := opsFor(sess.prec)
	if err := o.CheckMatrix(req.Matrix, s.cfg.MaxElements); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.RHS != nil {
		if err := o.CheckMatrix(req.RHS, s.cfg.MaxElements); err != nil {
			s.fail(w, http.StatusBadRequest, "rhs: %v", err)
			return
		}
	}
	start := time.Now()
	sess.mu.Lock()
	res, tasks, err := sess.reuse.Submit(r.Context(), req.Matrix, req.RHS)
	sess.mu.Unlock()
	s.stats.factorizations.Add(1)
	if err != nil {
		s.failErr(w, err)
		return
	}
	reply := streamFactorReply{
		TaskCount: tasks,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	if req.RHS == nil {
		reply.R = res
	} else {
		reply.X = res
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.sessions.remove(r.PathValue("id")); err != nil {
		s.failErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- health and stats ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Statsz is the wire form of /statsz.
type Statsz struct {
	Runtime struct {
		Workers      int  `json:"workers"`
		QueuedTasks  int  `json:"queued_tasks"`
		InFlightJobs int  `json:"inflight_jobs"`
		Draining     bool `json:"draining"`
	} `json:"runtime"`
	Server struct {
		InFlightRequests  int    `json:"inflight_requests"`
		Sessions          int    `json:"sessions"`
		Requests          uint64 `json:"requests"`
		Failed            uint64 `json:"failed"`
		Throttled         uint64 `json:"throttled"`
		Factorizations    uint64 `json:"factorizations"`
		CoalescedRequests uint64 `json:"coalesced_requests"`
		SolveBatches      uint64 `json:"solve_batches"`
		Draining          bool   `json:"draining"`
	} `json:"server"`
	Endpoints map[string]endpointStats `json:"endpoints"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	var out Statsz
	rs := s.rt.Stats()
	out.Runtime.Workers = rs.Workers
	out.Runtime.QueuedTasks = rs.QueuedTasks
	out.Runtime.InFlightJobs = rs.InFlightJobs
	out.Runtime.Draining = rs.Draining
	out.Server.InFlightRequests = s.InFlight()
	out.Server.Sessions = s.sessions.count()
	out.Server.Requests = s.stats.requests.Load()
	out.Server.Failed = s.stats.failed.Load()
	out.Server.Throttled = s.stats.throttled.Load()
	out.Server.Factorizations = s.stats.factorizations.Load()
	out.Server.CoalescedRequests = s.stats.coalesced.Load()
	out.Server.SolveBatches = s.stats.batches.Load()
	out.Server.Draining = s.Draining()
	out.Endpoints = map[string]endpointStats{
		"factor":       s.stats.factor.wire(),
		"solve":        s.stats.solve.wire(),
		"stream_rows":  s.stats.streamRows.wire(),
		"stream_solve": s.stats.streamSolve.wire(),
		"reuse_factor": s.stats.reuse.wire(),
	}
	writeJSON(w, http.StatusOK, out)
}
