package serve

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"
)

// session is one client-held serving session: either a streaming
// factorization (stream != nil) or a reusable FactorInto factorization
// (reuse != nil). The per-session mutex serializes use — streams and
// factorization arenas are single-writer structures — so two concurrent
// appends to one session queue behind each other instead of corrupting it.
type session struct {
	id     string
	tenant string
	prec   string

	mu     sync.Mutex // serializes stream/reuse use
	stream streamOps
	reuse  reusableOps

	// lastUsed and gone are guarded by the owning table's lock, not mu:
	// the evictor must be able to age sessions without waiting behind a
	// long-running append.
	lastUsed time.Time
	gone     bool
}

// errSessionLimit reports a full session table; errNoSession an unknown or
// already-evicted id.
var (
	errSessionLimit = errors.New("session table full")
	errNoSession    = errors.New("unknown or expired session")
)

// sessionTable is a bounded TTL-evicting session registry. Eviction is
// lazy: every mutation sweeps expired sessions when at least ttl/4 has
// passed since the previous sweep, so no background goroutine is needed and
// an idle table still cannot exceed its bound.
type sessionTable struct {
	ttl time.Duration
	max int

	mu        sync.Mutex
	m         map[string]*session
	lastSweep time.Time
}

func newSessionTable(ttl time.Duration, max int) *sessionTable {
	return &sessionTable{ttl: ttl, max: max, m: make(map[string]*session)}
}

// newID returns a fresh random session id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failing means the host is unusable
	}
	return "s-" + hex.EncodeToString(b[:])
}

// add registers a session, enforcing the table bound (expired sessions are
// swept first, so a table full of dead sessions does not refuse work).
func (t *sessionTable) add(s *session) error {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked(now, true)
	if len(t.m) >= t.max {
		return errSessionLimit
	}
	s.id = newID()
	s.lastUsed = now
	t.m[s.id] = s
	return nil
}

// get looks a session up and bumps its last-used time.
func (t *sessionTable) get(id string) (*session, error) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked(now, false)
	s := t.m[id]
	if s == nil || s.gone {
		return nil, errNoSession
	}
	s.lastUsed = now
	return s, nil
}

// remove deletes a session (client DELETE).
func (t *sessionTable) remove(id string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.m[id]
	if s == nil {
		return errNoSession
	}
	s.gone = true
	delete(t.m, id)
	return nil
}

// count returns the live session count.
func (t *sessionTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// sweep evicts every session idle past the TTL; exposed for tests and for
// callers that want eager eviction.
func (t *sessionTable) sweep() {
	t.mu.Lock()
	t.sweepLocked(time.Now(), true)
	t.mu.Unlock()
}

// sweepLocked drops expired sessions. force bypasses the ttl/4 rate limit.
// A session whose append is mid-flight when it expires finishes that append
// (the worker goroutine holds s.mu, not the table lock) and then reports
// "unknown session" on the next lookup — eviction never corrupts in-flight
// work.
func (t *sessionTable) sweepLocked(now time.Time, force bool) {
	if !force && now.Sub(t.lastSweep) < t.ttl/4 {
		return
	}
	t.lastSweep = now
	for id, s := range t.m {
		if now.Sub(s.lastUsed) > t.ttl {
			s.gone = true
			delete(t.m, id)
		}
	}
}
