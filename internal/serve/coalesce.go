package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"tiledqr"
)

// The coalescer batches many small least-squares solves that share the same
// matrix into one DAG submission: the first request for a given (precision,
// options, matrix) key becomes the batch leader, waits a short window for
// followers, then factors the matrix once and solves every gathered
// right-hand side in a single multi-column SolveLS. A fleet of clients
// querying one design matrix — the canonical model-serving workload — costs
// one factorization per window instead of one per request, and the runtime
// sees one well-shaped job instead of many duplicates. Requests whose
// matrices differ simply form single-member batches.

// coalesceKey identifies solves that may share a factorization.
type coalesceKey struct {
	prec string
	opt  optKey
	hash [sha256.Size]byte
}

// optKey is the comparable fingerprint of the option fields that change a
// factorization's result or plan.
type optKey struct {
	algorithm   tiledqr.Algorithm
	kernels     tiledqr.Kernels
	tileSize    int
	innerBlock  int
	checkHealth bool
}

func optKeyOf(o tiledqr.Options) optKey {
	return optKey{
		algorithm:   o.Algorithm,
		kernels:     o.Kernels,
		tileSize:    o.TileSize,
		innerBlock:  o.InnerBlock,
		checkHealth: o.CheckHealth,
	}
}

// hashMatrix fingerprints a wire matrix's exact bit pattern.
func hashMatrix(m *Matrix) [sha256.Size]byte {
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(m.Rows))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m.Cols))
	h.Write(hdr[:])
	var buf [8]byte
	for _, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// solveWaiter is one request's slot in a batch.
type solveWaiter struct {
	rhs  *Matrix
	x    *Matrix // filled by the leader before done closes
	size int     // batch size, for the response's coalesced count
	err  error
}

// solveBatch is one in-flight batch: the leader owns the timer and the
// submission; followers append under mu and wait on done.
type solveBatch struct {
	mu      sync.Mutex
	sealed  bool
	waiters []*solveWaiter
	done    chan struct{}
}

// coalescer groups concurrent same-key solves. window == 0 disables
// batching (every request is its own leader with no wait).
type coalescer struct {
	window   time.Duration
	maxBatch int

	mu      sync.Mutex
	pending map[coalesceKey]*solveBatch
}

func newCoalescer(window time.Duration, maxBatch int) *coalescer {
	if maxBatch < 1 {
		maxBatch = 16
	}
	return &coalescer{window: window, maxBatch: maxBatch, pending: make(map[coalesceKey]*solveBatch)}
}

// solve runs one solve request through the coalescer. ctx cancels only this
// caller's wait, never a batch another caller leads; the batch itself
// executes under execCtx (the server's base context), so one client
// disconnecting cannot fail its batch-mates.
func (c *coalescer) solve(ctx, execCtx context.Context, o ops, a *Matrix, rhs *Matrix,
	opt tiledqr.Options, st *serverStats) (*Matrix, int, error) {
	if c.window <= 0 {
		xs, _, err := o.Solve(execCtx, a, []*Matrix{rhs}, opt)
		st.factorizations.Add(1)
		st.batches.Add(1)
		if err != nil {
			return nil, 0, err
		}
		return xs[0], 1, nil
	}
	key := coalesceKey{prec: o.Precision(), opt: optKeyOf(opt), hash: hashMatrix(a)}
	w := &solveWaiter{rhs: rhs}

	c.mu.Lock()
	if b := c.pending[key]; b != nil {
		b.mu.Lock()
		if !b.sealed && len(b.waiters) < c.maxBatch {
			b.waiters = append(b.waiters, w)
			b.mu.Unlock()
			c.mu.Unlock()
			select {
			case <-b.done:
				return w.x, w.size, w.err
			case <-ctx.Done():
				// The leader will still solve for us; the result is simply
				// dropped. Returning keeps cancellation prompt.
				return nil, 0, ctx.Err()
			}
		}
		b.mu.Unlock()
		// Sealed or full: fall through and lead a fresh batch for the key.
	}
	b := &solveBatch{waiters: []*solveWaiter{w}, done: make(chan struct{})}
	c.pending[key] = b
	c.mu.Unlock()

	// Lead: give followers the window, then seal and submit.
	timer := time.NewTimer(c.window)
	select {
	case <-timer.C:
	case <-execCtx.Done():
		timer.Stop()
	}
	c.mu.Lock()
	if c.pending[key] == b {
		delete(c.pending, key)
	}
	c.mu.Unlock()
	b.mu.Lock()
	b.sealed = true
	waiters := b.waiters
	b.mu.Unlock()

	rhsList := make([]*Matrix, len(waiters))
	for i, wt := range waiters {
		rhsList[i] = wt.rhs
	}
	xs, _, err := o.Solve(execCtx, a, rhsList, opt)
	st.factorizations.Add(1)
	st.batches.Add(1)
	if n := len(waiters); n > 1 {
		st.coalesced.Add(uint64(n))
	}
	for i, wt := range waiters {
		wt.size = len(waiters)
		if err != nil {
			wt.err = err
		} else {
			wt.x = xs[i]
		}
	}
	close(b.done)
	if w.err != nil {
		return nil, 0, w.err
	}
	return w.x, w.size, nil
}

// String implements fmt.Stringer for debugging.
func (k coalesceKey) String() string {
	return fmt.Sprintf("%s/%x", k.prec, k.hash[:4])
}
