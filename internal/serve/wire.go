// Package serve implements the HTTP serving layer behind cmd/qrserve: JSON
// wire encoding for matrices in all four precisions, one-shot factor/solve
// handlers, session-oriented streaming (NewStream*) and reusable-
// factorization (FactorInto) endpoints, per-tenant admission quotas,
// runtime queue-depth backpressure, same-matrix solve coalescing, and
// latency statistics. Everything is plain net/http over the public tiledqr
// API, so the package is unit-testable with httptest and no sockets.
package serve

import (
	"errors"
	"fmt"

	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
)

// Matrix is the wire form of a dense row-major matrix. For the real
// precisions ("d", "s") Data holds rows·cols values; for the complex
// precisions ("z", "c") it holds 2·rows·cols values with the real and
// imaginary parts of each element interleaved, row-major. The single
// precisions travel as JSON numbers like the doubles and are narrowed on
// decode.
type Matrix struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// errNilMatrix reports a request missing a required matrix field.
var errNilMatrix = errors.New("missing matrix")

// check validates the shape against the element count, with maxElems
// bounding rows·cols so a hostile request cannot make the server allocate
// without bound.
func (m *Matrix) check(isComplex bool, maxElems int) error {
	if m == nil {
		return errNilMatrix
	}
	if m.Rows < 1 || m.Cols < 1 {
		return fmt.Errorf("matrix shape %d×%d is invalid", m.Rows, m.Cols)
	}
	if maxElems > 0 && (m.Rows > maxElems/m.Cols) {
		return fmt.Errorf("matrix %d×%d exceeds the %d-element limit", m.Rows, m.Cols, maxElems)
	}
	want := m.Rows * m.Cols
	if isComplex {
		want *= 2
	}
	if len(m.Data) != want {
		return fmt.Errorf("matrix %d×%d wants %d data values, got %d", m.Rows, m.Cols, want, len(m.Data))
	}
	return nil
}

// decode converts a checked wire matrix into a dense matrix of T's domain.
func decode[T vec.Scalar](m *Matrix) *tile.Dense[T] {
	d := tile.NewDense[T](m.Rows, m.Cols)
	if vec.IsComplex[T]() {
		for i := 0; i < m.Rows; i++ {
			row := d.Data[i*d.Stride:]
			src := m.Data[2*i*m.Cols:]
			for j := 0; j < m.Cols; j++ {
				row[j] = vec.FromParts[T](src[2*j], src[2*j+1])
			}
		}
		return d
	}
	for i := 0; i < m.Rows; i++ {
		row := d.Data[i*d.Stride:]
		src := m.Data[i*m.Cols:]
		for j := 0; j < m.Cols; j++ {
			row[j] = vec.FromParts[T](src[j], 0)
		}
	}
	return d
}

// encode converts a dense matrix back to the wire form.
func encode[T vec.Scalar](d *tile.Dense[T]) *Matrix {
	m := &Matrix{Rows: d.Rows, Cols: d.Cols}
	if vec.IsComplex[T]() {
		m.Data = make([]float64, 2*d.Rows*d.Cols)
		for i := 0; i < d.Rows; i++ {
			row := d.Data[i*d.Stride:]
			dst := m.Data[2*i*d.Cols:]
			for j := 0; j < d.Cols; j++ {
				dst[2*j] = vec.RealPart(row[j])
				dst[2*j+1] = vec.ImagPart(row[j])
			}
		}
		return m
	}
	m.Data = make([]float64, d.Rows*d.Cols)
	for i := 0; i < d.Rows; i++ {
		row := d.Data[i*d.Stride:]
		dst := m.Data[i*d.Cols:]
		for j := 0; j < d.Cols; j++ {
			dst[j] = vec.RealPart(row[j])
		}
	}
	return m
}

// hcat concatenates checked wire matrices with equal row counts column-wise
// into one dense matrix — the coalescing path stacks many small right-hand
// sides into a single multi-column solve.
func hcat[T vec.Scalar](ms []*Matrix, isComplex bool) *tile.Dense[T] {
	rows, cols := ms[0].Rows, 0
	for _, m := range ms {
		cols += m.Cols
	}
	d := tile.NewDense[T](rows, cols)
	off := 0
	for _, m := range ms {
		for i := 0; i < rows; i++ {
			row := d.Data[i*d.Stride+off:]
			if isComplex {
				src := m.Data[2*i*m.Cols:]
				for j := 0; j < m.Cols; j++ {
					row[j] = vec.FromParts[T](src[2*j], src[2*j+1])
				}
			} else {
				src := m.Data[i*m.Cols:]
				for j := 0; j < m.Cols; j++ {
					row[j] = vec.FromParts[T](src[j], 0)
				}
			}
		}
		off += m.Cols
	}
	return d
}

// splitCols slices an encoded solution back into per-request column blocks.
func splitCols[T vec.Scalar](x *tile.Dense[T], widths []int) []*Matrix {
	out := make([]*Matrix, len(widths))
	off := 0
	for k, w := range widths {
		m := &Matrix{Rows: x.Rows, Cols: w}
		if vec.IsComplex[T]() {
			m.Data = make([]float64, 2*x.Rows*w)
			for i := 0; i < x.Rows; i++ {
				row := x.Data[i*x.Stride+off:]
				dst := m.Data[2*i*w:]
				for j := 0; j < w; j++ {
					dst[2*j] = vec.RealPart(row[j])
					dst[2*j+1] = vec.ImagPart(row[j])
				}
			}
		} else {
			m.Data = make([]float64, x.Rows*w)
			for i := 0; i < x.Rows; i++ {
				row := x.Data[i*x.Stride+off:]
				for j := 0; j < w; j++ {
					m.Data[i*w+j] = vec.RealPart(row[j])
				}
			}
		}
		out[k] = m
		off += w
	}
	return out
}
