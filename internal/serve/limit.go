package serve

import (
	"context"
	"errors"
	"sync"
)

// errThrottled maps to 429 + Retry-After: the tenant's quota is exhausted
// and its wait queue is full, or the runtime's task backlog exceeds the
// configured bound. Clients should back off and retry.
var errThrottled = errors.New("over capacity, retry later")

// tenantGate is one tenant's admission state: a counting semaphore of
// maxActive concurrent requests plus a bounded wait queue. Cross-tenant
// fairness below this layer comes from the runtime's weighted-fair
// scheduler; the gate just stops any single tenant from parking unbounded
// work on the server.
type tenantGate struct {
	slots  chan struct{} // capacity maxActive; a token is one running request
	queued chan struct{} // capacity maxQueued; a token is one waiting request
}

// limiter hands out per-tenant gates on demand. Tenants are never removed:
// the per-tenant state is two channels, and the tenant cardinality of a
// deployment is bounded by its client population.
type limiter struct {
	maxActive int
	maxQueued int

	mu      sync.Mutex
	tenants map[string]*tenantGate
}

func newLimiter(maxActive, maxQueued int) *limiter {
	return &limiter{maxActive: maxActive, maxQueued: maxQueued, tenants: make(map[string]*tenantGate)}
}

func (l *limiter) gate(tenant string) *tenantGate {
	l.mu.Lock()
	defer l.mu.Unlock()
	g := l.tenants[tenant]
	if g == nil {
		g = &tenantGate{
			slots:  make(chan struct{}, l.maxActive),
			queued: make(chan struct{}, l.maxQueued),
		}
		l.tenants[tenant] = g
	}
	return g
}

// acquire admits one request for the tenant, blocking (bounded by the wait
// queue and ctx) until a slot frees. It returns errThrottled when the
// tenant has maxActive running requests and maxQueued already waiting, and
// ctx.Err() if the client goes away while queued. The caller must release()
// after the request finishes.
func (l *limiter) acquire(ctx context.Context, tenant string) (release func(), err error) {
	if l.maxActive <= 0 {
		return func() {}, nil // quotas disabled
	}
	g := l.gate(tenant)
	select {
	case g.slots <- struct{}{}: // fast path: a slot is free
		return func() { <-g.slots }, nil
	default:
	}
	select {
	case g.queued <- struct{}{}: // join the bounded wait queue
	default:
		return nil, errThrottled
	}
	defer func() { <-g.queued }()
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
