package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tiledqr"
)

// newTestServer builds a Server on a small private runtime plus an httptest
// front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	rt := tiledqr.NewRuntime(2)
	t.Cleanup(rt.Close)
	cfg.Runtime = rt
	s := New(cfg)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts body and decodes the JSON response into out (may be nil).
func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response from %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response from %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// complexTag reports whether a precision tag carries interleaved re/im data.
func complexTag(prec string) bool { return prec == "z" || prec == "c" }

// testMatrix builds a wire matrix from an element function; for complex
// precisions every element is (f, 0), so one real-valued oracle covers all
// four domains while still exercising the interleaved wire layout.
func testMatrix(rows, cols int, prec string, f func(i, j int) float64) *Matrix {
	m := &Matrix{Rows: rows, Cols: cols}
	if complexTag(prec) {
		m.Data = make([]float64, 2*rows*cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Data[2*(i*cols+j)] = f(i, j)
			}
		}
		return m
	}
	m.Data = make([]float64, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Data[i*cols+j] = f(i, j)
		}
	}
	return m
}

// wellConditioned is a diagonally dominant full-rank test matrix.
func wellConditioned(rows, cols int, prec string) *Matrix {
	return testMatrix(rows, cols, prec, func(i, j int) float64 {
		v := 1 / float64(1+abs(i-j))
		if i == j {
			v += float64(cols)
		}
		return v
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// matTimesOnes returns b = scale · A·1, the right-hand side whose exact
// least-squares solution is scale·ones (A has full column rank and b lies in
// its range only when A is square; for tall A the system A·x = b with
// b = A·1 is still consistent, so x = 1 exactly).
func matTimesOnes(a *Matrix, prec string, scale float64) *Matrix {
	cplx := complexTag(prec)
	at := func(i, j int) float64 {
		if cplx {
			return a.Data[2*(i*a.Cols+j)]
		}
		return a.Data[i*a.Cols+j]
	}
	return testMatrix(a.Rows, 1, prec, func(i, _ int) float64 {
		sum := 0.0
		for j := 0; j < a.Cols; j++ {
			sum += at(i, j)
		}
		return scale * sum
	})
}

// solutionAt reads element (i,0) of a returned solution.
func solutionAt(x *Matrix, prec string, i int) float64 {
	if complexTag(prec) {
		return x.Data[2*i*x.Cols]
	}
	return x.Data[i*x.Cols]
}

func tolFor(prec string) float64 {
	if prec == "s" || prec == "c" {
		return 1e-3
	}
	return 1e-8
}

func TestSolveAllPrecisions(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceWindow: -1})
	for _, prec := range []string{"d", "z", "s", "c"} {
		t.Run(prec, func(t *testing.T) {
			a := wellConditioned(12, 5, prec)
			rhs := matTimesOnes(a, prec, 1)
			var reply solveReply
			if code := postJSON(t, ts.URL+"/v1/solve", solveRequest{Precision: prec, Matrix: a, RHS: rhs}, &reply); code != http.StatusOK {
				t.Fatalf("solve (%s): status %d", prec, code)
			}
			if reply.X == nil || reply.X.Rows != 5 || reply.X.Cols != 1 {
				t.Fatalf("solve (%s): bad solution shape %+v", prec, reply.X)
			}
			for i := 0; i < 5; i++ {
				if got := solutionAt(reply.X, prec, i); math.Abs(got-1) > tolFor(prec) {
					t.Fatalf("solve (%s): x[%d] = %v, want 1", prec, i, got)
				}
			}
		})
	}
}

func TestFactorAllPrecisions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, prec := range []string{"d", "z", "s", "c"} {
		a := wellConditioned(16, 8, prec)
		var reply factorReply
		if code := postJSON(t, ts.URL+"/v1/factor", factorRequest{Precision: prec, Matrix: a}, &reply); code != http.StatusOK {
			t.Fatalf("factor (%s): status %d", prec, code)
		}
		if reply.R == nil || reply.R.Cols != 8 {
			t.Fatalf("factor (%s): bad R %+v", prec, reply.R)
		}
		if reply.TaskCount < 1 {
			t.Fatalf("factor (%s): task count %d", prec, reply.TaskCount)
		}
		// R must be upper triangular: below-diagonal entries (within the
		// leading Cols rows) vanish.
		for i := 1; i < reply.R.Cols && i < reply.R.Rows; i++ {
			for j := 0; j < i; j++ {
				if got := math.Abs(solutionRC(reply.R, prec, i, j)); got > tolFor(prec) {
					t.Fatalf("factor (%s): R[%d,%d] = %v, want 0", prec, i, j, got)
				}
			}
		}
	}
}

func solutionRC(m *Matrix, prec string, i, j int) float64 {
	if complexTag(prec) {
		return m.Data[2*(i*m.Cols+j)]
	}
	return m.Data[i*m.Cols+j]
}

func TestStreamLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := wellConditioned(8, 3, "d")
	rhs := matTimesOnes(a, "d", 1)

	var created streamCreateReply
	if code := postJSON(t, ts.URL+"/v1/streams", streamCreateRequest{Cols: 3}, &created); code != http.StatusOK {
		t.Fatalf("stream create: status %d", code)
	}
	if created.ID == "" || created.Kind != "stream" {
		t.Fatalf("stream create: reply %+v", created)
	}

	var rowsReply streamRowsReply
	if code := postJSON(t, ts.URL+"/v1/streams/"+created.ID+"/rows",
		streamRowsRequest{Batch: a, RHS: rhs}, &rowsReply); code != http.StatusOK {
		t.Fatalf("stream rows: status %d", code)
	}
	if rowsReply.Rows != 8 {
		t.Fatalf("stream rows: got %d rows, want 8", rowsReply.Rows)
	}

	var solveReplyS streamSolveReply
	if code := getJSON(t, ts.URL+"/v1/streams/"+created.ID+"/solve", &solveReplyS); code != http.StatusOK {
		t.Fatalf("stream solve: status %d", code)
	}
	for i := 0; i < 3; i++ {
		if got := solutionAt(solveReplyS.X, "d", i); math.Abs(got-1) > 1e-8 {
			t.Fatalf("stream solve: x[%d] = %v, want 1", i, got)
		}
	}
	if solveReplyS.Residual > 1e-8 {
		t.Fatalf("stream solve: residual %v for a consistent system", solveReplyS.Residual)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/"+created.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("stream delete: status %d", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/v1/streams/"+created.ID+"/solve", nil); code != http.StatusNotFound {
		t.Fatalf("solve after delete: status %d, want 404", code)
	}
}

func TestReusableFactorSession(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var created streamCreateReply
	if code := postJSON(t, ts.URL+"/v1/streams", streamCreateRequest{Kind: "factor", Precision: "d"}, &created); code != http.StatusOK {
		t.Fatalf("factor session create: status %d", code)
	}
	a := wellConditioned(10, 4, "d")
	// First submission: R only.
	var r1 streamFactorReply
	if code := postJSON(t, ts.URL+"/v1/streams/"+created.ID+"/factor",
		streamFactorRequest{Matrix: a}, &r1); code != http.StatusOK {
		t.Fatalf("factor submit 1: status %d", code)
	}
	if r1.R == nil || r1.X != nil {
		t.Fatalf("factor submit 1: want R only, got %+v", r1)
	}
	// Second same-shape submission reuses the arena and solves.
	var r2 streamFactorReply
	if code := postJSON(t, ts.URL+"/v1/streams/"+created.ID+"/factor",
		streamFactorRequest{Matrix: a, RHS: matTimesOnes(a, "d", 2)}, &r2); code != http.StatusOK {
		t.Fatalf("factor submit 2: status %d", code)
	}
	if r2.X == nil {
		t.Fatalf("factor submit 2: want X, got %+v", r2)
	}
	for i := 0; i < 4; i++ {
		if got := solutionAt(r2.X, "d", i); math.Abs(got-2) > 1e-8 {
			t.Fatalf("factor submit 2: x[%d] = %v, want 2", i, got)
		}
	}
}

func TestSolveCoalescing(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceWindow: 100 * time.Millisecond})
	a := wellConditioned(10, 4, "d")
	const n = 4
	replies := make([]solveReply, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rhs := matTimesOnes(a, "d", float64(k+1))
			if code := postJSON(t, ts.URL+"/v1/solve", solveRequest{Matrix: a, RHS: rhs}, &replies[k]); code != http.StatusOK {
				t.Errorf("solve %d: status %d", k, code)
			}
		}(k)
	}
	wg.Wait()
	maxBatch := 0
	for k := range replies {
		if replies[k].X == nil {
			t.Fatalf("solve %d: no solution", k)
		}
		for i := 0; i < 4; i++ {
			want := float64(k + 1)
			if got := solutionAt(replies[k].X, "d", i); math.Abs(got-want) > 1e-8 {
				t.Fatalf("solve %d: x[%d] = %v, want %v", k, i, got, want)
			}
		}
		if replies[k].Coalesced > maxBatch {
			maxBatch = replies[k].Coalesced
		}
	}
	// All four share one matrix and were fired inside a 100ms window: at
	// least two must have shared a factorization.
	if maxBatch < 2 {
		t.Fatalf("no solves coalesced (max batch %d)", maxBatch)
	}
	var st Statsz
	if code := getJSON(t, ts.URL+"/statsz", &st); code != http.StatusOK {
		t.Fatalf("statsz: status %d", code)
	}
	if st.Server.SolveBatches >= uint64(n) {
		t.Fatalf("statsz: %d batches for %d coalescible solves", st.Server.SolveBatches, n)
	}
	if st.Server.CoalescedRequests < 2 {
		t.Fatalf("statsz: coalesced_requests = %d, want ≥ 2", st.Server.CoalescedRequests)
	}
}

func TestStatszShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := wellConditioned(8, 4, "d")
	if code := postJSON(t, ts.URL+"/v1/factor", factorRequest{Matrix: a}, nil); code != http.StatusOK {
		t.Fatalf("factor: status %d", code)
	}
	var st Statsz
	if code := getJSON(t, ts.URL+"/statsz", &st); code != http.StatusOK {
		t.Fatalf("statsz: status %d", code)
	}
	if st.Runtime.Workers != 2 {
		t.Fatalf("statsz: workers = %d, want 2", st.Runtime.Workers)
	}
	if st.Server.Requests < 1 || st.Server.Factorizations < 1 {
		t.Fatalf("statsz: requests=%d factorizations=%d, want ≥ 1",
			st.Server.Requests, st.Server.Factorizations)
	}
	ep, ok := st.Endpoints["factor"]
	if !ok || ep.Count < 1 || ep.P99MS <= 0 {
		t.Fatalf("statsz: factor endpoint stats %+v", ep)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown precision", "/v1/factor", factorRequest{Precision: "q", Matrix: wellConditioned(4, 2, "d")}, 400},
		{"bad data length", "/v1/factor", factorRequest{Matrix: &Matrix{Rows: 2, Cols: 2, Data: []float64{1}}}, 400},
		{"missing matrix", "/v1/factor", factorRequest{}, 400},
		{"solve underdetermined", "/v1/solve", solveRequest{
			Matrix: wellConditioned(2, 4, "d"), RHS: wellConditioned(2, 1, "d")}, 400},
		{"solve rhs mismatch", "/v1/solve", solveRequest{
			Matrix: wellConditioned(4, 2, "d"), RHS: wellConditioned(3, 1, "d")}, 400},
		{"stream without cols", "/v1/streams", streamCreateRequest{}, 400},
		{"bad session kind", "/v1/streams", streamCreateRequest{Kind: "nope"}, 400},
		{"unknown session", "/v1/streams/s-missing/rows", streamRowsRequest{Batch: wellConditioned(4, 2, "d")}, 404},
	}
	for _, tc := range cases {
		if code := postJSON(t, ts.URL+tc.url, tc.body, nil); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}
	// Oversized matrices are rejected before allocation.
	_, tsSmall := newTestServer(t, Config{MaxElements: 16})
	if code := postJSON(t, tsSmall.URL+"/v1/factor", factorRequest{Matrix: wellConditioned(8, 4, "d")}, nil); code != 400 {
		t.Errorf("oversized matrix: status %d, want 400", code)
	}
}

func TestSessionLimit429(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 1})
	if code := postJSON(t, ts.URL+"/v1/streams", streamCreateRequest{Cols: 2}, nil); code != http.StatusOK {
		t.Fatalf("first session: status %d", code)
	}
	raw, _ := json.Marshal(streamCreateRequest{Cols: 2})
	resp, err := http.Post(ts.URL+"/v1/streams", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second session: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestLimiterQuota(t *testing.T) {
	l := newLimiter(1, 1)
	release1, err := l.acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	// Second request parks in the wait queue.
	acquired := make(chan error, 1)
	go func() {
		release2, err := l.acquire(context.Background(), "a")
		if err == nil {
			release2()
		}
		acquired <- err
	}()
	// Wait for the goroutine to take the one queue token, then a third
	// request finds both the slot and the queue full.
	g := l.gate("a")
	deadline := time.Now().Add(time.Second)
	for len(g.queued) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never joined the wait queue")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := l.acquire(context.Background(), "a"); err != errThrottled {
		t.Fatalf("third acquire: %v, want errThrottled", err)
	}
	// Another tenant is unaffected.
	releaseB, err := l.acquire(context.Background(), "b")
	if err != nil {
		t.Fatalf("tenant b: %v", err)
	}
	releaseB()
	// Releasing the slot admits the queued request.
	release1()
	if err := <-acquired; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	// A canceled context abandons the queue promptly.
	r3, _ := l.acquire(context.Background(), "a")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.acquire(ctx, "a"); err != context.Canceled {
		t.Fatalf("canceled acquire: %v, want context.Canceled", err)
	}
	r3()
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d, want 1000", h.Count())
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("quantiles not monotonic: p50=%v p99=%v", p50, p99)
	}
	// Bucketed quantiles overestimate by at most one bucket width (≈19%).
	if p50 < 500*time.Microsecond || p50 > 620*time.Microsecond {
		t.Fatalf("p50 %v outside [500µs, 620µs]", p50)
	}
	if h.Mean() < 400*time.Microsecond || h.Mean() > 600*time.Microsecond {
		t.Fatalf("mean %v outside [400µs, 600µs]", h.Mean())
	}
}

func TestWireRoundTrip(t *testing.T) {
	for _, prec := range []string{"d", "z", "s", "c"} {
		o, err := opsFor(prec)
		if err != nil {
			t.Fatal(err)
		}
		m := testMatrix(3, 2, prec, func(i, j int) float64 { return float64(10*i + j) })
		if complexTag(prec) {
			// Give the imaginary parts non-zero values too.
			for k := 1; k < len(m.Data); k += 2 {
				m.Data[k] = float64(k)
			}
		}
		if err := o.CheckMatrix(m, 0); err != nil {
			t.Fatalf("%s: check: %v", prec, err)
		}
		got := roundTrip(m, prec)
		if got.Rows != m.Rows || got.Cols != m.Cols || len(got.Data) != len(m.Data) {
			t.Fatalf("%s: shape changed: %+v -> %+v", prec, m, got)
		}
		for k := range m.Data {
			if math.Abs(got.Data[k]-m.Data[k]) > 1e-6 {
				t.Fatalf("%s: data[%d] = %v, want %v", prec, k, got.Data[k], m.Data[k])
			}
		}
	}
}

// roundTrip decodes and re-encodes a wire matrix in the given precision.
func roundTrip(m *Matrix, prec string) *Matrix {
	switch prec {
	case "d":
		return encode(decode[float64](m))
	case "z":
		return encode(decode[complex128](m))
	case "s":
		return encode(decode[float32](m))
	case "c":
		return encode(decode[complex64](m))
	}
	panic(fmt.Sprintf("bad precision %q", prec))
}

func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	s.StartDrain()
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", code)
	}
}

// TestWindowedStreamSession covers the retention wire surface: window and
// forget in the create request, the DELETE .../rows downdate endpoint, and
// the rejections (downdate on a retention-free stream, retention knobs on
// a factor session, bad forget values).
func TestWindowedStreamSession(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := wellConditioned(8, 3, "d")
	rhs := matTimesOnes(a, "d", 1)

	doDowndate := func(id string, query string, out *streamRowsReply) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/"+id+"/rows"+query, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	// Retain-all session: rows accumulate, DELETE .../rows revokes them.
	var created streamCreateReply
	if code := postJSON(t, ts.URL+"/v1/streams", streamCreateRequest{Cols: 3, Window: -1}, &created); code != http.StatusOK {
		t.Fatalf("retain-all create: status %d", code)
	}
	for i := 0; i < 2; i++ {
		var rr streamRowsReply
		if code := postJSON(t, ts.URL+"/v1/streams/"+created.ID+"/rows",
			streamRowsRequest{Batch: a, RHS: rhs}, &rr); code != http.StatusOK {
			t.Fatalf("append %d: status %d", i, code)
		}
	}
	var dd streamRowsReply
	if code := doDowndate(created.ID, "?rows=8", &dd); code != http.StatusOK {
		t.Fatalf("downdate: status %d", code)
	}
	if dd.Rows != 8 {
		t.Fatalf("downdate: %d rows remain, want 8", dd.Rows)
	}
	var solved streamSolveReply
	if code := getJSON(t, ts.URL+"/v1/streams/"+created.ID+"/solve", &solved); code != http.StatusOK {
		t.Fatalf("solve after downdate: status %d", code)
	}
	for i := 0; i < 3; i++ {
		if got := solutionAt(solved.X, "d", i); math.Abs(got-1) > 1e-8 {
			t.Fatalf("solve after downdate: x[%d] = %v, want 1", i, got)
		}
	}
	if code := doDowndate(created.ID, "", nil); code != http.StatusBadRequest {
		t.Fatalf("downdate without ?rows: status %d, want 400", code)
	}

	// Sliding window: the session stays at the window size as rows stream in.
	var windowed streamCreateReply
	if code := postJSON(t, ts.URL+"/v1/streams",
		streamCreateRequest{Cols: 3, Window: 8, Forget: 0.99}, &windowed); code != http.StatusOK {
		t.Fatalf("windowed create: status %d", code)
	}
	var last streamRowsReply
	for i := 0; i < 3; i++ {
		if code := postJSON(t, ts.URL+"/v1/streams/"+windowed.ID+"/rows",
			streamRowsRequest{Batch: a, RHS: rhs}, &last); code != http.StatusOK {
			t.Fatalf("windowed append %d: status %d", i, code)
		}
	}
	if last.Rows != 8 {
		t.Fatalf("windowed session reports %d rows, want window 8", last.Rows)
	}

	// Rejections: no retention → downdate fails; factor sessions take no
	// retention knobs; a bad forget factor fails at create.
	var plain streamCreateReply
	if code := postJSON(t, ts.URL+"/v1/streams", streamCreateRequest{Cols: 3}, &plain); code != http.StatusOK {
		t.Fatalf("plain create: status %d", code)
	}
	if code := doDowndate(plain.ID, "?rows=1", nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("downdate on retention-free stream: status %d, want 422", code)
	}
	if code := postJSON(t, ts.URL+"/v1/streams",
		streamCreateRequest{Kind: "factor", Window: 4}, nil); code != http.StatusBadRequest {
		t.Fatalf("factor session with window: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/streams",
		streamCreateRequest{Cols: 3, Forget: 1.5}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("create with forget 1.5: status %d, want 422", code)
	}
}
