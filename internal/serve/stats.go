package serve

import (
	"math"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of the latency histograms: quarter-power-
// of-two buckets from 1µs upward cover about 1µs..4000s with ≤19% upper-
// edge error, plenty for p50/p95/p99 reporting.
const histBuckets = 128

// Histogram is a lock-free log-bucketed latency histogram. The zero value
// is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
	sumNS  atomic.Uint64
}

// bucketOf maps a duration to its bucket: floor(4·log₂(µs)), clamped.
func bucketOf(d time.Duration) int {
	us := float64(d) / float64(time.Microsecond)
	if us < 1 {
		return 0
	}
	b := int(4 * math.Log2(us))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketUpper is the inclusive upper edge of bucket b.
func bucketUpper(b int) time.Duration {
	us := math.Exp2(float64(b+1) / 4)
	return time.Duration(us * float64(time.Microsecond))
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
	if d > 0 {
		h.sumNS.Add(uint64(d))
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Mean returns the mean observed latency (0 with no samples).
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// Quantile returns an upper bound on the q-quantile (0 < q ≤ 1) of the
// observed latencies: the upper edge of the bucket where the cumulative
// count crosses q·total. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		cum += h.counts[b].Load()
		if cum >= rank {
			return bucketUpper(b)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// serverStats aggregates the counters and per-endpoint histograms behind
// /statsz.
type serverStats struct {
	requests       atomic.Uint64 // requests admitted to a compute endpoint
	failed         atomic.Uint64 // 5xx and 4xx responses on compute endpoints
	throttled      atomic.Uint64 // 429 responses
	factorizations atomic.Uint64 // DAG-building factorizations executed
	coalesced      atomic.Uint64 // solve requests that shared a factorization
	batches        atomic.Uint64 // coalesced batches submitted

	factor      Histogram
	solve       Histogram
	streamRows  Histogram
	streamSolve Histogram
	reuse       Histogram
}

// endpointStats is the wire form of one endpoint's latency figures.
type endpointStats struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

func (h *Histogram) wire() endpointStats {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return endpointStats{
		Count:  h.Count(),
		MeanMS: ms(h.Mean()),
		P50MS:  ms(h.Quantile(0.50)),
		P95MS:  ms(h.Quantile(0.95)),
		P99MS:  ms(h.Quantile(0.99)),
	}
}
