package serve

import (
	"context"
	"fmt"
	"strings"

	"tiledqr"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
)

// The handlers are precision-blind: they speak to one of four domains
// through the ops interface below, whose single generic implementation
// (domain[T]) works on tile.Dense[T] and reaches the public tiledqr API
// directly where it is generic (tiledqr.Stream[T]) and through a small
// per-precision adapter interface where it is not. The factorization
// adapters are the only per-precision code left in the package — four
// mechanical blocks wrapping Factor/FactorInto/SolveLS whose receivers
// differ in name only; streaming sessions have no adapters at all.

// ops is one precision's view of the library, expressed over wire matrices.
type ops interface {
	// Precision returns the wire tag: "d", "z", "s" or "c".
	Precision() string
	// IsComplex reports whether Data is interleaved re/im.
	IsComplex() bool
	// CheckMatrix validates a wire matrix for this domain.
	CheckMatrix(m *Matrix, maxElems int) error
	// Factor runs a one-shot factorization and returns R and the task count.
	Factor(ctx context.Context, a *Matrix, opt tiledqr.Options) (*Matrix, int, error)
	// Solve factors a once and solves min‖a·x − rhs‖₂ for every right-hand
	// side in one multi-column SolveLS — the coalescing primitive. The
	// returned slice is index-aligned with rhs.
	Solve(ctx context.Context, a *Matrix, rhs []*Matrix, opt tiledqr.Options) ([]*Matrix, int, error)
	// NewStream opens a streaming session over n columns. opt may carry
	// WindowRows/Forget for windowed or forgetful streams.
	NewStream(n int, opt tiledqr.Options) (streamOps, error)
	// NewReusable opens a reusable factorization session (FactorInto
	// arena reuse across same-shaped submissions).
	NewReusable(opt tiledqr.Options) reusableOps
}

// streamOps is a precision-blind streaming session.
type streamOps interface {
	Append(ctx context.Context, batch, rhs *Matrix) error
	// Downdate removes the oldest k rows (requires a retention-enabled
	// stream) and returns the remaining row count.
	Downdate(ctx context.Context, k int) (int64, error)
	Rows() int64
	N() int
	Solve() (*Matrix, float64, error)
	R() (*Matrix, error)
}

// reusableOps is a precision-blind FactorInto session: Submit factors a
// (reusing the previous arena and plan when the shape matches) and either
// solves against rhs or returns R when rhs is nil.
type reusableOps interface {
	Submit(ctx context.Context, a, rhs *Matrix) (*Matrix, int, error)
}

// factorization adapts one precision's (reusable) factorization. It
// operates on tile.Dense[T], which the public wrapper types convert to for
// free.
type factorization[T vec.Scalar] interface {
	FactorIntoCtx(ctx context.Context, a *tile.Dense[T]) error
	R() *tile.Dense[T]
	SolveLSCtx(ctx context.Context, b *tile.Dense[T]) (*tile.Dense[T], error)
	TaskCount() int
}

// domain is the one generic ops implementation, parameterized by the
// per-precision factorization constructor; streams need no constructor
// parameter because tiledqr.Stream is itself generic.
type domain[T vec.Scalar] struct {
	tag     string
	newFact func(opt tiledqr.Options) factorization[T]
}

func (d *domain[T]) Precision() string { return d.tag }
func (d *domain[T]) IsComplex() bool   { return vec.IsComplex[T]() }

func (d *domain[T]) CheckMatrix(m *Matrix, maxElems int) error {
	return m.check(vec.IsComplex[T](), maxElems)
}

func (d *domain[T]) Factor(ctx context.Context, a *Matrix, opt tiledqr.Options) (*Matrix, int, error) {
	f := d.newFact(opt)
	if err := f.FactorIntoCtx(ctx, decode[T](a)); err != nil {
		return nil, 0, err
	}
	return encode(f.R()), f.TaskCount(), nil
}

func (d *domain[T]) Solve(ctx context.Context, a *Matrix, rhs []*Matrix, opt tiledqr.Options) ([]*Matrix, int, error) {
	if a.Rows < a.Cols {
		return nil, 0, fmt.Errorf("least squares wants rows ≥ cols, got %d×%d", a.Rows, a.Cols)
	}
	widths := make([]int, len(rhs))
	for k, b := range rhs {
		if b.Rows != a.Rows {
			return nil, 0, fmt.Errorf("right-hand side has %d rows, matrix has %d", b.Rows, a.Rows)
		}
		widths[k] = b.Cols
	}
	f := d.newFact(opt)
	if err := f.FactorIntoCtx(ctx, decode[T](a)); err != nil {
		return nil, 0, err
	}
	x, err := f.SolveLSCtx(ctx, hcat[T](rhs, vec.IsComplex[T]()))
	if err != nil {
		return nil, 0, err
	}
	return splitCols(x, widths), f.TaskCount(), nil
}

func (d *domain[T]) NewStream(n int, opt tiledqr.Options) (streamOps, error) {
	s, err := tiledqr.NewStreamOf[T](n, opt)
	if err != nil {
		return nil, err
	}
	return &streamSession[T]{s: s}, nil
}

func (d *domain[T]) NewReusable(opt tiledqr.Options) reusableOps {
	return &reusableSession[T]{f: d.newFact(opt)}
}

// streamSession lifts the generic tiledqr.Stream to the wire level —
// one body for all four precisions, no per-precision adapters.
type streamSession[T vec.Scalar] struct{ s *tiledqr.Stream[T] }

func (w *streamSession[T]) Append(ctx context.Context, batch, rhs *Matrix) error {
	if rhs != nil {
		return w.s.AppendRHSCtx(ctx, (*tiledqr.Mat[T])(decode[T](batch)), (*tiledqr.Mat[T])(decode[T](rhs)))
	}
	return w.s.AppendRowsCtx(ctx, (*tiledqr.Mat[T])(decode[T](batch)))
}

func (w *streamSession[T]) Downdate(ctx context.Context, k int) (int64, error) {
	if err := w.s.DowndateRowsCtx(ctx, k); err != nil {
		return 0, err
	}
	return w.s.Rows(), nil
}

func (w *streamSession[T]) Rows() int64 { return w.s.Rows() }
func (w *streamSession[T]) N() int      { return w.s.N() }

func (w *streamSession[T]) Solve() (*Matrix, float64, error) {
	x, err := w.s.SolveLS()
	if err != nil {
		return nil, 0, err
	}
	resid, err := w.s.ResidualNorm()
	if err != nil {
		return nil, 0, err
	}
	return encode((*tile.Dense[T])(x)), resid, nil
}

func (w *streamSession[T]) R() (*Matrix, error) {
	r, err := w.s.R()
	if err != nil {
		return nil, err
	}
	return encode((*tile.Dense[T])(r)), nil
}

// reusableSession lifts a factorization[T] to the wire level.
type reusableSession[T vec.Scalar] struct{ f factorization[T] }

func (w *reusableSession[T]) Submit(ctx context.Context, a, rhs *Matrix) (*Matrix, int, error) {
	if rhs != nil && a.Rows < a.Cols {
		return nil, 0, fmt.Errorf("least squares wants rows ≥ cols, got %d×%d", a.Rows, a.Cols)
	}
	if rhs != nil && rhs.Rows != a.Rows {
		return nil, 0, fmt.Errorf("right-hand side has %d rows, matrix has %d", rhs.Rows, a.Rows)
	}
	if err := w.f.FactorIntoCtx(ctx, decode[T](a)); err != nil {
		return nil, 0, err
	}
	if rhs == nil {
		return encode(w.f.R()), w.f.TaskCount(), nil
	}
	x, err := w.f.SolveLSCtx(ctx, decode[T](rhs))
	if err != nil {
		return nil, 0, err
	}
	return encode(x), w.f.TaskCount(), nil
}

// ---- per-precision adapters: the only non-generic code ----

type dFact struct {
	f   tiledqr.Factorization
	opt tiledqr.Options
}

func (a *dFact) FactorIntoCtx(ctx context.Context, m *tile.Dense[float64]) error {
	return tiledqr.FactorIntoCtx(ctx, &a.f, (*tiledqr.Dense)(m), a.opt)
}
func (a *dFact) R() *tile.Dense[float64] { return (*tile.Dense[float64])(a.f.R()) }
func (a *dFact) TaskCount() int          { return a.f.TaskCount() }
func (a *dFact) SolveLSCtx(ctx context.Context, b *tile.Dense[float64]) (*tile.Dense[float64], error) {
	x, err := a.f.SolveLSCtx(ctx, (*tiledqr.Dense)(b))
	return (*tile.Dense[float64])(x), err
}

type zFact struct {
	f   tiledqr.ZFactorization
	opt tiledqr.Options
}

func (a *zFact) FactorIntoCtx(ctx context.Context, m *tile.Dense[complex128]) error {
	return tiledqr.ZFactorIntoCtx(ctx, &a.f, (*tiledqr.ZDense)(m), a.opt)
}
func (a *zFact) R() *tile.Dense[complex128] { return (*tile.Dense[complex128])(a.f.R()) }
func (a *zFact) TaskCount() int             { return a.f.TaskCount() }
func (a *zFact) SolveLSCtx(ctx context.Context, b *tile.Dense[complex128]) (*tile.Dense[complex128], error) {
	x, err := a.f.SolveLSCtx(ctx, (*tiledqr.ZDense)(b))
	return (*tile.Dense[complex128])(x), err
}

type sFact struct {
	f   tiledqr.Factorization32
	opt tiledqr.Options
}

func (a *sFact) FactorIntoCtx(ctx context.Context, m *tile.Dense[float32]) error {
	return tiledqr.FactorInto32Ctx(ctx, &a.f, (*tiledqr.Dense32)(m), a.opt)
}
func (a *sFact) R() *tile.Dense[float32] { return (*tile.Dense[float32])(a.f.R()) }
func (a *sFact) TaskCount() int          { return a.f.TaskCount() }
func (a *sFact) SolveLSCtx(ctx context.Context, b *tile.Dense[float32]) (*tile.Dense[float32], error) {
	x, err := a.f.SolveLSCtx(ctx, (*tiledqr.Dense32)(b))
	return (*tile.Dense[float32])(x), err
}

type cFact struct {
	f   tiledqr.CFactorization
	opt tiledqr.Options
}

func (a *cFact) FactorIntoCtx(ctx context.Context, m *tile.Dense[complex64]) error {
	return tiledqr.CFactorIntoCtx(ctx, &a.f, (*tiledqr.CDense)(m), a.opt)
}
func (a *cFact) R() *tile.Dense[complex64] { return (*tile.Dense[complex64])(a.f.R()) }
func (a *cFact) TaskCount() int            { return a.f.TaskCount() }
func (a *cFact) SolveLSCtx(ctx context.Context, b *tile.Dense[complex64]) (*tile.Dense[complex64], error) {
	x, err := a.f.SolveLSCtx(ctx, (*tiledqr.CDense)(b))
	return (*tile.Dense[complex64])(x), err
}

// domains maps the wire precision tag to its ops.
var domains = map[string]ops{
	"d": &domain[float64]{
		tag:     "d",
		newFact: func(opt tiledqr.Options) factorization[float64] { return &dFact{opt: opt} },
	},
	"z": &domain[complex128]{
		tag:     "z",
		newFact: func(opt tiledqr.Options) factorization[complex128] { return &zFact{opt: opt} },
	},
	"s": &domain[float32]{
		tag:     "s",
		newFact: func(opt tiledqr.Options) factorization[float32] { return &sFact{opt: opt} },
	},
	"c": &domain[complex64]{
		tag:     "c",
		newFact: func(opt tiledqr.Options) factorization[complex64] { return &cFact{opt: opt} },
	},
}

// opsFor resolves a request's precision tag ("" defaults to double).
func opsFor(tag string) (ops, error) {
	if tag == "" {
		tag = "d"
	}
	o, ok := domains[strings.ToLower(tag)]
	if !ok {
		return nil, fmt.Errorf("unknown precision %q (want d, z, s or c)", tag)
	}
	return o, nil
}
