package serve

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDrainUnderLoad drives concurrent solves while StartDrain fires
// mid-flight: every response must be a clean 200 (admitted before the drain)
// or 503 (after), in-flight work runs to completion, and AwaitIdle returns.
// Run with -race: the drain flag, in-flight counter and idler list are all
// touched from every request goroutine.
func TestDrainUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{CoalesceWindow: -1})
	a := wellConditioned(16, 6, "d")
	rhs := matTimesOnes(a, "d", 1)

	const clients = 8
	var wg sync.WaitGroup
	var ok, unavailable, other atomic.Int64
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch code := postJSON(t, ts.URL+"/v1/solve", solveRequest{Matrix: a, RHS: rhs}, nil); code {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusServiceUnavailable:
					unavailable.Add(1)
					return // the server is gone for good; stop hammering
				default:
					other.Add(1)
					return
				}
			}
		}()
	}

	// Let traffic flow, then pull the plug.
	time.Sleep(100 * time.Millisecond)
	s.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.AwaitIdle(ctx); err != nil {
		t.Fatalf("AwaitIdle: %v", err)
	}
	if n := s.InFlight(); n != 0 {
		t.Fatalf("idle server reports %d in-flight requests", n)
	}
	close(stop)
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("%d responses were neither 200 nor 503", other.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded before the drain")
	}
	// Post-drain requests are refused deterministically.
	if code := postJSON(t, ts.URL+"/v1/solve", solveRequest{Matrix: a, RHS: rhs}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("request after drain: status %d, want 503", code)
	}
	if !s.Draining() {
		t.Fatal("Draining() is false after StartDrain")
	}
}

// TestAwaitIdleImmediate returns at once on an idle server.
func TestAwaitIdleImmediate(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.AwaitIdle(ctx); err != nil {
		t.Fatalf("AwaitIdle on idle server: %v", err)
	}
}

// TestSessionEvictionRace hammers one stream session with appends while the
// TTL evictor sweeps with an aggressive timeout. Under -race this exercises
// the table-lock/session-lock split: every response must be 200 (append won)
// or 404 (eviction won) — never a torn state.
func TestSessionEvictionRace(t *testing.T) {
	s, ts := newTestServer(t, Config{SessionTTL: 5 * time.Millisecond})
	batch := wellConditioned(4, 2, "d")

	var wg sync.WaitGroup
	var appends, recreates, other atomic.Int64
	const workers = 4
	deadline := time.Now().Add(300 * time.Millisecond)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := ""
			for time.Now().Before(deadline) {
				if id == "" {
					var created streamCreateReply
					if code := postJSON(t, ts.URL+"/v1/streams", streamCreateRequest{Cols: 2}, &created); code != http.StatusOK {
						other.Add(1)
						return
					}
					id = created.ID
					recreates.Add(1)
				}
				switch code := postJSON(t, ts.URL+"/v1/streams/"+id+"/rows", streamRowsRequest{Batch: batch}, nil); code {
				case http.StatusOK:
					appends.Add(1)
				case http.StatusNotFound:
					id = "" // evicted between requests: rebuild
				default:
					other.Add(1)
					return
				}
			}
		}()
	}
	// The evictor races the appenders.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			s.sessions.sweep()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("%d responses were neither 200 nor 404", other.Load())
	}
	if appends.Load() == 0 {
		t.Fatal("no append ever succeeded")
	}
	t.Logf("%d appends, %d session (re)creations under eviction pressure", appends.Load(), recreates.Load())
}

// TestSessionTTLEviction checks the lazy sweep itself: an idle session ages
// out, and the table bound counts only live sessions.
func TestSessionTTLEviction(t *testing.T) {
	tbl := newSessionTable(10*time.Millisecond, 2)
	s1 := &session{prec: "d"}
	if err := tbl.add(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.get(s1.id); err != nil {
		t.Fatalf("fresh session: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	tbl.sweep()
	if _, err := tbl.get(s1.id); err != errNoSession {
		t.Fatalf("expired session lookup: %v, want errNoSession", err)
	}
	if tbl.count() != 0 {
		t.Fatalf("count after eviction: %d", tbl.count())
	}
	// A table full of dead sessions admits new ones.
	for i := 0; i < 2; i++ {
		if err := tbl.add(&session{prec: "d"}); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	if err := tbl.add(&session{prec: "d"}); err != errSessionLimit {
		t.Fatalf("over-limit add: %v, want errSessionLimit", err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := tbl.add(&session{prec: "d"}); err != nil {
		t.Fatalf("add after everyone expired: %v", err)
	}
}

// TestConcurrentSessionChurn creates, uses and deletes sessions from many
// goroutines at once against a small table bound.
func TestConcurrentSessionChurn(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 8})
	batch := wellConditioned(4, 2, "d")
	var wg sync.WaitGroup
	var bad atomic.Int64
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var created streamCreateReply
				code := postJSON(t, ts.URL+"/v1/streams", streamCreateRequest{Cols: 2}, &created)
				if code == http.StatusTooManyRequests {
					continue // table momentarily full: fine
				}
				if code != http.StatusOK {
					bad.Add(1)
					return
				}
				if code := postJSON(t, ts.URL+"/v1/streams/"+created.ID+"/rows", streamRowsRequest{Batch: batch}, nil); code != http.StatusOK {
					bad.Add(1)
					return
				}
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/"+created.ID, nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					bad.Add(1)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					bad.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d unexpected failures during session churn", bad.Load())
	}
}
