package engine

import (
	"strings"
	"testing"

	"tiledqr/internal/core"
	"tiledqr/internal/kernel"
	"tiledqr/internal/sched"
	"tiledqr/internal/tile"
	"tiledqr/internal/work"
)

func schedOptions(workers int) sched.Options { return sched.Options{Workers: workers} }

func testConfig() Config {
	return Config{
		Algorithm:  core.Greedy,
		Kernels:    core.TT,
		TileSize:   8,
		InnerBlock: 4,
		Workers:    1,
	}
}

// TestUnknownTaskKindReturnsError: a corrupted task kind must surface as an
// error from the shared dispatch (the one place the pre-engine code had a
// per-domain panic), both per task and through the scheduler run.
func TestUnknownTaskKindReturnsError(t *testing.T) {
	f, err := Factor(tile.RandDense[float64](24, 16, 1), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := f.DAG()
	saved := d.Tasks[0].Kind
	d.Tasks[0].Kind = core.Kind(99)
	defer func() { d.Tasks[0].Kind = saved }()

	ws := make([]float64, kernel.WorkLen(8, 4))
	if err := ExecTask[float64](f, d, 0, 4, ws); err == nil {
		t.Error("ExecTask accepted an unknown task kind")
	} else if !strings.Contains(err.Error(), "unknown task kind") {
		t.Errorf("unexpected error: %v", err)
	}

	// Error propagation through the scheduler run (the parallel scheduler
	// rejects unknown kinds itself while computing priorities, so the
	// deterministic path is the one that reaches dispatch).
	wss := work.Workspaces[float64](1, kernel.WorkLen(8, 4))
	if _, err := ExecTasks[float64](f, d, schedOptions(1), 4, wss); err == nil {
		t.Error("ExecTasks did not propagate the dispatch error")
	} else if !strings.Contains(err.Error(), "unknown task kind") {
		t.Errorf("unexpected ExecTasks error: %v", err)
	}
}

// TestFactorRoundTrip smoke-tests the generic engine directly at a
// non-default precision (the public wrappers cover the rest).
func TestFactorRoundTrip(t *testing.T) {
	a := tile.RandDense[float32](20, 12, 3)
	f, err := Factor(a, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := f.Q()
	r := f.R()
	rFull := tile.NewDense[float32](20, 12)
	for i := 0; i < r.Rows; i++ {
		copy(rFull.Data[i*rFull.Stride:i*rFull.Stride+12], r.Data[i*r.Stride:i*r.Stride+12])
	}
	if res := tile.ResidualQR(a, q, rFull); res > 1e-4 {
		t.Errorf("engine float32 residual %g", res)
	}
}
