package engine

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tiledqr/internal/core"
	"tiledqr/internal/kernel"
	"tiledqr/internal/sched"
	"tiledqr/internal/tile"
)

func testConfig() Config {
	return Config{
		Algorithm:  core.Greedy,
		Kernels:    core.TT,
		TileSize:   8,
		InnerBlock: 4,
		Env:        Env{Workers: 1},
	}
}

// TestUnknownTaskKindReturnsError: a corrupted task kind must surface as an
// error from the shared dispatch (the one place the pre-engine code had a
// per-domain panic), both per task and through the scheduler run.
func TestUnknownTaskKindReturnsError(t *testing.T) {
	f, err := Factor(tile.RandDense[float64](24, 16, 1), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := f.DAG()
	saved := d.Tasks[0].Kind
	d.Tasks[0].Kind = core.Kind(99)
	defer func() { d.Tasks[0].Kind = saved }()

	ws := make([]float64, kernel.WorkLen(8, 4))
	if err := ExecTask[float64](f, d, 0, 4, ws, false); err == nil {
		t.Error("ExecTask accepted an unknown task kind")
	} else if !strings.Contains(err.Error(), "unknown task kind") {
		t.Errorf("unexpected error: %v", err)
	}

	// Error propagation through both execution paths: the deterministic
	// inline run and a parallel pool.
	for _, env := range []Env{{Workers: 1}, {Workers: 2}} {
		p := sched.NewPlan(d)
		if _, err := ExecTasks[float64](f, p, env, RunOpts{}, 4, kernel.WorkLen(8, 4)); err == nil {
			t.Errorf("ExecTasks (workers=%d) did not propagate the dispatch error", env.Workers)
		} else if !strings.Contains(err.Error(), "unknown task kind") {
			t.Errorf("unexpected ExecTasks error: %v", err)
		}
	}
}

// TestDispatchErrorCancelsRun: a task error must cancel the job's
// outstanding tasks — the scheduler must not drain the rest of the DAG
// before reporting, and no task may still be executing once Exec has
// returned.
func TestDispatchErrorCancelsRun(t *testing.T) {
	d := core.BuildDAG(core.GreedyList(16, 8), core.TT)
	var executed atomic.Int64
	badTask := int32(2)
	exec := func(task int32, _ *sched.Local) error {
		if task == badTask {
			return errors.New("boom")
		}
		executed.Add(1)
		time.Sleep(50 * time.Microsecond)
		return nil
	}
	rt := sched.NewRuntime(2)
	defer rt.Close()
	_, err := rt.Exec(sched.NewPlan(d), sched.Options{}, exec)
	if err == nil {
		t.Fatal("task error not reported")
	}
	atReturn := executed.Load()
	if int(atReturn) >= d.NumTasks()-1 {
		t.Errorf("scheduler drained the whole DAG (%d of %d tasks) before reporting", atReturn, d.NumTasks())
	}
	// The cancel guarantee: once Exec returned, nothing is still inside
	// exec, and dropped tasks never run.
	time.Sleep(20 * time.Millisecond)
	if after := executed.Load(); after != atReturn {
		t.Errorf("%d task(s) executed after Exec returned", after-atReturn)
	}
}

// TestFactorRoundTrip smoke-tests the generic engine directly at a
// non-default precision (the public wrappers cover the rest).
func TestFactorRoundTrip(t *testing.T) {
	a := tile.RandDense[float32](20, 12, 3)
	f, err := Factor(a, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := f.Q()
	r := f.R()
	rFull := tile.NewDense[float32](20, 12)
	for i := 0; i < r.Rows; i++ {
		copy(rFull.Data[i*rFull.Stride:i*rFull.Stride+12], r.Data[i*r.Stride:i*r.Stride+12])
	}
	if res := tile.ResidualQR(a, q, rFull); res > 1e-4 {
		t.Errorf("engine float32 residual %g", res)
	}
}

// TestFactorIntoReuse: a second factorization of the same shape must reuse
// the arena (same backing array) and produce the same R as a fresh Factor;
// a shape change must rebuild transparently.
func TestFactorIntoReuse(t *testing.T) {
	cfg := testConfig()
	a1 := tile.RandDense[float64](24, 16, 1)
	a2 := tile.RandDense[float64](24, 16, 2)

	f := &Factorization[float64]{}
	if err := FactorInto(f, a1, cfg); err != nil {
		t.Fatal(err)
	}
	arena1 := &f.arena[0]
	if err := f.Refactor(a2); err != nil {
		t.Fatal(err)
	}
	if &f.arena[0] != arena1 {
		t.Error("Refactor reallocated the arena for an identical shape")
	}
	fresh, err := Factor(a2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff := tile.MaxAbsDiff(f.R(), fresh.R()); diff != 0 {
		t.Errorf("Refactor R differs from fresh Factor R by %g (want bit-identical)", diff)
	}

	// A different shape must rebuild, not corrupt.
	a3 := tile.RandDense[float64](17, 9, 3)
	if err := f.Refactor(a3); err != nil {
		t.Fatal(err)
	}
	fresh3, err := Factor(a3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff := tile.MaxAbsDiff(f.R(), fresh3.R()); diff != 0 {
		t.Errorf("post-rebuild R differs by %g", diff)
	}
}

// TestFailedRefactorInvalidates: a failed re-factorization overwrote the
// reused tiles, so the factorization must refuse to serve results (loud
// panic from R, error from Apply/SolveLS) until a later attempt succeeds.
func TestFailedRefactorInvalidates(t *testing.T) {
	cfg := testConfig()
	a := tile.RandDense[float64](24, 16, 1)
	f, err := Factor(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	saved := f.DAG().Tasks[0].Kind
	f.DAG().Tasks[0].Kind = core.Kind(99)
	if err := f.Refactor(a); err == nil {
		f.DAG().Tasks[0].Kind = saved
		t.Fatal("Refactor over a corrupted DAG succeeded")
	}
	f.DAG().Tasks[0].Kind = saved

	func() {
		defer func() {
			if recover() == nil {
				t.Error("R() served results from a failed factorization")
			}
		}()
		f.R()
	}()
	if err := f.Apply(nil, tile.NewDense[float64](24, 1), true); err == nil {
		t.Error("Apply served a failed factorization")
	}
	if _, err := f.SolveLS(nil, tile.NewDense[float64](24, 1)); err == nil {
		t.Error("SolveLS served a failed factorization")
	}

	// A subsequent attempt rebuilds from scratch and recovers.
	if err := f.Refactor(a); err != nil {
		t.Fatal(err)
	}
	fresh, err := Factor(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff := tile.MaxAbsDiff(f.R(), fresh.R()); diff != 0 {
		t.Errorf("recovered R differs by %g", diff)
	}
}
