// Package engine holds the one generic tiled-QR execution core shared by
// every public precision: the DAG execution loop (dispatching core tasks to
// the generic tile kernels through a Source), the Q application replay used
// by ApplyQ/ApplyQT and the streaming Qᵀb fold, one-shot factorization
// state (R extraction, thin/full Q, least squares, workspace pooling), and
// tracing. The public package instantiates Factorization at
// float32/float64/complex64/complex128 behind thin typed wrappers;
// internal/stream reuses ExecTasks/Replay for its resident-triangle merges.
package engine

import (
	"fmt"
	"sync"

	"tiledqr/internal/core"
	"tiledqr/internal/kernel"
	"tiledqr/internal/sched"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
	"tiledqr/internal/work"
)

// Config carries the resolved factorization parameters from the public
// options layer (defaults applied, values validated) down to the engine.
type Config struct {
	Algorithm  core.Algorithm
	Kernels    core.Kernels
	CoreOpts   core.Options
	TileSize   int
	InnerBlock int
	Workers    int // 0 = GOMAXPROCS
	Trace      bool
}

// Source resolves the tile and T-factor operands of DAG tasks, all in the
// 1-based tile coordinates the task lists use. It is implemented by
// Factorization (plain grid mapping) and by the streaming core (stacked
// resident-triangle + batch mapping), so exactly one dispatch loop exists.
type Source[T vec.Scalar] interface {
	// TileAt returns tile (i, k).
	TileAt(i, k int) *tile.Dense[T]
	// TFactor returns the GEQRT T-factor storage of tile (i, k).
	TFactor(i, k int) []T
	// T2Factor returns the TSQRT/TTQRT T-factor storage of tile (i, k).
	T2Factor(i, k int) []T
	// KCols returns the column count of tile column k.
	KCols(k int) int
}

// ExecTask dispatches one DAG task to the corresponding tile kernel.
// Unknown task kinds are reported as an error (not a panic): the DAG is
// data, and a malformed one must fail the factorization, not the process.
func ExecTask[T vec.Scalar](src Source[T], d *core.DAG, t int32, ib int, ws []T) error {
	task := d.Tasks[t]
	switch task.Kind {
	case core.KGEQRT:
		a := src.TileAt(task.I, task.K)
		kernel.GEQRT(a.Rows, a.Cols, ib, a.Data, a.Stride,
			src.TFactor(task.I, task.K), a.Cols, ws)
	case core.KUNMQR:
		v := src.TileAt(task.I, task.K)
		c := src.TileAt(task.I, task.J)
		kernel.UNMQR(true, v.Rows, min(v.Rows, v.Cols), ib, v.Data, v.Stride,
			src.TFactor(task.I, task.K), v.Cols, c.Data, c.Stride, c.Cols, ws)
	case core.KTSQRT, core.KTTQRT:
		a := src.TileAt(task.Piv, task.K)
		b := src.TileAt(task.I, task.K)
		m, l := b.Rows, 0
		if task.Kind == core.KTTQRT {
			m = min(b.Rows, a.Cols)
			l = m
		}
		kernel.TPQRT(m, a.Cols, l, ib, a.Data, a.Stride, b.Data, b.Stride,
			src.T2Factor(task.I, task.K), a.Cols, ws)
	case core.KTSMQR, core.KTTMQR:
		v := src.TileAt(task.I, task.K)
		c1 := src.TileAt(task.Piv, task.J)
		c2 := src.TileAt(task.I, task.J)
		kRef := src.KCols(task.K)
		m, l := v.Rows, 0
		if task.Kind == core.KTTMQR {
			m = min(v.Rows, kRef)
			l = m
		}
		kernel.TPMQRT(true, m, kRef, l, ib, v.Data, v.Stride,
			src.T2Factor(task.I, task.K), kRef,
			c1.Data, c1.Stride, c2.Data, c2.Stride, c2.Cols, ws)
	default:
		return fmt.Errorf("tiledqr: unknown task kind %v (task %d)", task.Kind, t)
	}
	return nil
}

// ExecTasks runs every task of the DAG on the scheduler, dispatching
// through ExecTask with one preallocated workspace per worker. The first
// dispatch error (or exec panic, via sched.Run) aborts the run's result.
func ExecTasks[T vec.Scalar](src Source[T], d *core.DAG, opt sched.Options, ib int, ws [][]T) (*sched.Trace, error) {
	var (
		mu       sync.Mutex
		firstErr error
	)
	trace, err := sched.Run(d, opt, func(t int32, w int) {
		if e := ExecTask(src, d, t, ib, ws[w]); e != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = e
			}
			mu.Unlock()
		}
	})
	if err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return trace, nil
}

// Replay applies the Q transformations recorded in the DAG's factor tasks
// to a stacked block-row right-hand side: row(i) returns the RHS rows of
// tile row i (1-based) and their row stride. trans replays Qᴴ in execution
// order; !trans replays Q by walking the tasks backwards (task IDs are
// topological). Update-kernel tasks (UNMQR/TSMQR/TTMQR) carry no new
// reflectors and are skipped.
func Replay[T vec.Scalar](src Source[T], d *core.DAG, trans bool, row func(i int) ([]T, int), nrhs, ib int, ws []T) {
	applyOne := func(task core.Task) {
		switch task.Kind {
		case core.KGEQRT:
			v := src.TileAt(task.I, task.K)
			c, ldc := row(task.I)
			kernel.UNMQR(trans, v.Rows, min(v.Rows, v.Cols), ib, v.Data, v.Stride,
				src.TFactor(task.I, task.K), v.Cols, c, ldc, nrhs, ws)
		case core.KTSQRT, core.KTTQRT:
			v := src.TileAt(task.I, task.K)
			c1, ldc1 := row(task.Piv)
			c2, ldc2 := row(task.I)
			kRef := src.KCols(task.K)
			m, l := v.Rows, 0
			if task.Kind == core.KTTQRT {
				m = min(v.Rows, kRef)
				l = m
			}
			kernel.TPMQRT(trans, m, kRef, l, ib, v.Data, v.Stride,
				src.T2Factor(task.I, task.K), kRef,
				c1, ldc1, c2, ldc2, nrhs, ws)
		}
	}
	if trans {
		for _, task := range d.Tasks {
			applyOne(task)
		}
	} else {
		for t := len(d.Tasks) - 1; t >= 0; t-- {
			applyOne(d.Tasks[t])
		}
	}
}

// Factorization is the generic one-shot tiled QR state: the factored tiles
// (R plus the Householder representation of Q) and everything needed to
// apply Q, for any scalar domain.
type Factorization[T vec.Scalar] struct {
	grid  tile.Grid
	mat   *tile.Matrix[T]
	dag   *core.DAG
	tg    [][]T // GEQRT T factors per tile, indexed (i-1)*q+(k-1)
	t2    [][]T // TSQRT/TTQRT T factors per tile
	ib    int
	trace *sched.Trace

	workPool sync.Pool // scratch slices for ApplyQ/ApplyQT/SolveLS
}

// Factor computes the tiled QR factorization A = Q·R of an m×n matrix
// (any m, n ≥ 1). A is not modified. cfg must already carry defaulted,
// validated options.
func Factor[T vec.Scalar](a *tile.Dense[T], cfg Config) (*Factorization[T], error) {
	g := tile.NewGrid(a.Rows, a.Cols, cfg.TileSize)
	list, err := core.Generate(cfg.Algorithm, g.P, g.Q, cfg.CoreOpts)
	if err != nil {
		return nil, err
	}
	f := &Factorization[T]{
		grid: g,
		mat:  tile.FromDense(a, cfg.TileSize),
		dag:  core.BuildDAG(list, cfg.Kernels),
		ib:   cfg.InnerBlock,
	}
	f.allocT()
	ws := work.Workspaces[T](work.WorkersOrDefault(cfg.Workers),
		kernel.WorkLen(cfg.TileSize, f.ib))
	trace, err := ExecTasks[T](f, f.dag, sched.Options{Workers: cfg.Workers, Trace: cfg.Trace}, f.ib, ws)
	if err != nil {
		return nil, err
	}
	f.trace = trace
	return f, nil
}

// allocT allocates the per-tile T factor storage demanded by the DAG.
func (f *Factorization[T]) allocT() {
	p, q := f.grid.P, f.grid.Q
	f.tg = make([][]T, p*q)
	f.t2 = make([][]T, p*q)
	for _, t := range f.dag.Tasks {
		switch t.Kind {
		case core.KGEQRT:
			f.tg[f.tidx(t.I, t.K)] = make([]T, f.ib*f.grid.TileCols(t.K-1))
		case core.KTSQRT, core.KTTQRT:
			f.t2[f.tidx(t.I, t.K)] = make([]T, f.ib*f.grid.TileCols(t.K-1))
		}
	}
}

// tidx maps 1-based tile coordinates to storage index.
func (f *Factorization[T]) tidx(i, k int) int { return (i-1)*f.grid.Q + (k - 1) }

// TileAt, TFactor, T2Factor and KCols implement Source with the plain grid
// mapping (tile row i is tile row i).
func (f *Factorization[T]) TileAt(i, k int) *tile.Dense[T] { return f.mat.Tile(i-1, k-1) }

// TFactor returns the GEQRT T-factor storage of tile (i, k).
func (f *Factorization[T]) TFactor(i, k int) []T { return f.tg[f.tidx(i, k)] }

// T2Factor returns the TSQRT/TTQRT T-factor storage of tile (i, k).
func (f *Factorization[T]) T2Factor(i, k int) []T { return f.t2[f.tidx(i, k)] }

// KCols returns the column count of tile column k (1-based).
func (f *Factorization[T]) KCols(k int) int { return f.grid.TileCols(k - 1) }

// getWork fetches a pooled scratch slice of at least n elements; putWork
// returns it. Steady-state Q applications allocate nothing.
func (f *Factorization[T]) getWork(n int) []T {
	if w, ok := f.workPool.Get().(*[]T); ok && len(*w) >= n {
		return *w
	}
	return make([]T, n)
}

func (f *Factorization[T]) putWork(w []T) {
	f.workPool.Put(&w)
}

// R returns the min(m,n)×n upper triangular (trapezoidal) factor.
func (f *Factorization[T]) R() *tile.Dense[T] {
	k := min(f.grid.M, f.grid.N)
	r := tile.NewDense[T](k, f.grid.N)
	nb := f.grid.NB
	for i := 0; i < k; i++ {
		for j := i; j < f.grid.N; j++ {
			r.Set(i, j, f.mat.Tile(i/nb, j/nb).At(i%nb, j%nb))
		}
	}
	return r
}

// Apply overwrites b (m×nrhs) with Qᴴ·b (trans) or Q·b by replaying the
// factorization's transformations.
func (f *Factorization[T]) Apply(b *tile.Dense[T], trans bool) error {
	if b == nil {
		return fmt.Errorf("tiledqr: ApplyQ: b must not be nil")
	}
	if b.Rows != f.grid.M {
		return fmt.Errorf("tiledqr: ApplyQ: b has %d rows, want %d", b.Rows, f.grid.M)
	}
	nrhs := b.Cols
	ws := f.getWork(f.ib * max(nrhs, 1))
	defer f.putWork(ws)
	// row returns a view of b's tile row i (1-based).
	row := func(i int) ([]T, int) {
		v := b.View((i-1)*f.grid.NB, 0, f.grid.TileRows(i-1), nrhs)
		return v.Data, v.Stride
	}
	Replay[T](f, f.dag, trans, row, nrhs, f.ib, ws)
	return nil
}

// Q returns the full m×m orthogonal (unitary) factor, built by applying Q
// to the identity; O(m³) work — prefer ThinQ or Apply for large m.
func (f *Factorization[T]) Q() *tile.Dense[T] {
	q := tile.Identity[T](f.grid.M)
	if err := f.Apply(q, false); err != nil {
		panic(err) // identity always has the right shape
	}
	return q
}

// ThinQ returns the first min(m,n) columns of Q (the orthonormal basis of
// A's column span when A has full column rank).
func (f *Factorization[T]) ThinQ() *tile.Dense[T] {
	k := min(f.grid.M, f.grid.N)
	e := tile.NewDense[T](f.grid.M, k)
	for i := 0; i < k; i++ {
		e.Set(i, i, 1)
	}
	if err := f.Apply(e, false); err != nil {
		panic(err)
	}
	return e
}

// SolveLS solves the least-squares problem min‖A·x − b‖₂ for each column of
// b (m×nrhs), returning the n×nrhs solution. Requires m ≥ n and a
// nonsingular R.
func (f *Factorization[T]) SolveLS(b *tile.Dense[T]) (*tile.Dense[T], error) {
	m, n := f.grid.M, f.grid.N
	if m < n {
		return nil, fmt.Errorf("tiledqr: SolveLS needs m ≥ n (have %d×%d)", m, n)
	}
	if b == nil {
		return nil, fmt.Errorf("tiledqr: SolveLS: b must not be nil")
	}
	if b.Rows != m {
		return nil, fmt.Errorf("tiledqr: SolveLS: b has %d rows, want %d", b.Rows, m)
	}
	qtb := b.Clone()
	if err := f.Apply(qtb, true); err != nil {
		return nil, err
	}
	r := f.R()
	x := tile.NewDense[T](n, b.Cols)
	// Row-oriented back-substitution (shared with the streaming path); the
	// solution column lives in a pooled contiguous scratch until written
	// back.
	wbuf := f.getWork(n)
	defer f.putWork(wbuf)
	if err := work.SolveUpper(n, b.Cols, r.Data, r.Stride, qtb.Data, qtb.Stride,
		x.Data, x.Stride, wbuf[:n]); err != nil {
		return nil, err
	}
	return x, nil
}

// Trace returns the execution trace (nil unless Config.Trace was set).
func (f *Factorization[T]) Trace() *sched.Trace { return f.trace }

// GanttChart renders an ASCII Gantt chart of the traced execution (one row
// per worker, `width` time columns). Requires Config.Trace.
func (f *Factorization[T]) GanttChart(width int) string {
	if f.trace == nil || f.trace.Spans == nil {
		return "(run with Options.Trace to record a Gantt chart)\n"
	}
	return f.trace.Gantt(f.dag, width)
}

// Utilization returns per-worker busy fractions and overall parallel
// efficiency of the traced execution. Requires Config.Trace.
func (f *Factorization[T]) Utilization() sched.Utilization {
	if f.trace == nil {
		return sched.Utilization{}
	}
	return f.trace.Utilization()
}

// TaskCount returns the number of kernel tasks the factorization executed.
func (f *Factorization[T]) TaskCount() int { return f.dag.NumTasks() }

// DAG exposes the executed task DAG (trace validation in tests).
func (f *Factorization[T]) DAG() *core.DAG { return f.dag }

// Grid returns the tile grid dimensions (p×q) and tile size.
func (f *Factorization[T]) Grid() (p, q, nb int) { return f.grid.P, f.grid.Q, f.grid.NB }
