// Package engine holds the one generic tiled-QR execution core shared by
// every public precision: the DAG execution loop (dispatching core tasks to
// the generic tile kernels through a Source), the Q application replay used
// by ApplyQ/ApplyQT and the streaming Qᵀb fold, one-shot factorization
// state (R extraction, thin/full Q, least squares, workspace pooling), and
// tracing. The public package instantiates Factorization at
// float32/float64/complex64/complex128 behind thin typed wrappers;
// internal/stream reuses ExecTasks/Replay for its resident-triangle merges.
//
// Execution placement goes through Env: a shared persistent sched.Runtime
// (the default — many factorizations, one worker pool), a per-call pool
// (the legacy mode, kept as the explicit-Workers path and benchmark
// baseline), or inline on the calling goroutine (Workers == 1, and DAGs too
// small to be worth a cross-goroutine hop). Kernel workspaces are owned by
// the workers themselves — one grow-only buffer per arithmetic domain in
// each worker's sched.Local — so repeated factorizations allocate no
// scratch.
package engine

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"tiledqr/internal/core"
	"tiledqr/internal/fault"
	"tiledqr/internal/kernel"
	"tiledqr/internal/sched"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
	"tiledqr/internal/work"
)

// Env selects where a DAG executes.
type Env struct {
	// Runtime, when non-nil, is the shared persistent pool to execute on.
	Runtime *sched.Runtime
	// Workers is honored only when Runtime is nil: a per-call pool of that
	// size is built and torn down around the execution (0 = GOMAXPROCS);
	// Workers == 1 runs inline on the calling goroutine, deterministically.
	Workers int
}

// RunOpts carries the per-execution policies a DAG run honors: context
// cancellation, tracing, and opt-in numerical health checks. The zero
// value (no context, no trace, no checks) is the free-of-overhead happy
// path.
type RunOpts struct {
	// Ctx, when non-nil, cancels the execution: in-flight tasks finish,
	// queued tasks are dropped, and the run returns ctx.Err().
	Ctx context.Context
	// Trace enables per-task span recording.
	Trace bool
	// Check enables the poison fail-fast: every task verifies the tiles it
	// wrote are finite, so a NaN or Inf stops the DAG at the first task
	// that produces it instead of flowing downstream.
	Check bool
	// Stats, when non-nil, receives the job's execution accounting (tasks
	// run, summed kernel time, wall clock) — the compute side of the
	// distributed layer's comms-vs-compute overlap measurement.
	Stats *sched.JobStats
}

// run executes the plan's DAG under the Env's placement policy.
func (e Env) run(p *sched.Plan, opts RunOpts, exec sched.Exec) (*sched.Trace, error) {
	if e.Runtime != nil {
		return e.Runtime.Exec(p, sched.Options{Trace: opts.Trace, Ctx: opts.Ctx, Stats: opts.Stats}, exec)
	}
	if work.WorkersOrDefault(e.Workers) == 1 {
		tr, err := sched.RunInline(opts.Ctx, p.DAG(), opts.Trace, exec)
		if opts.Stats != nil {
			// Inline runs have no idle worker time: busy equals wall.
			*opts.Stats = sched.JobStats{Tasks: int64(p.DAG().NumTasks()), Busy: tr.Elapsed, Wall: tr.Elapsed}
		}
		return tr, err
	}
	rt := sched.NewRuntime(e.Workers)
	defer rt.Close()
	return rt.Exec(p, sched.Options{Trace: opts.Trace, Ctx: opts.Ctx, Stats: opts.Stats}, exec)
}

// wsSlot maps a scalar type to its sched.Local slot: one kernel workspace
// per arithmetic domain per worker.
func wsSlot[T vec.Scalar]() int {
	switch any((*T)(nil)).(type) {
	case *float32:
		return 0
	case *float64:
		return 1
	case *complex64:
		return 2
	default: // *complex128
		return 3
	}
}

// WorkerWS returns worker-local kernel scratch of length n, growing the
// worker's cached buffer when a larger factorization comes through. Only
// the owning worker touches a Local, so no synchronization is needed, and
// steady-state executions allocate nothing here.
func WorkerWS[T vec.Scalar](loc *sched.Local, n int) []T {
	s := &loc.Slots[wsSlot[T]()]
	if ws, ok := (*s).([]T); ok && cap(ws) >= n {
		return ws[:n]
	}
	ws := make([]T, n)
	*s = ws
	return ws
}

// precName maps a scalar type to its BLAS-style precision letter, the
// identity the fault injector and diagnostics use.
func precName[T vec.Scalar]() string {
	switch any((*T)(nil)).(type) {
	case *float32:
		return "s"
	case *float64:
		return "d"
	case *complex64:
		return "c"
	default: // *complex128
		return "z"
	}
}

// Config carries the resolved factorization parameters from the public
// options layer (defaults applied, values validated) down to the engine.
type Config struct {
	Algorithm  core.Algorithm
	Kernels    core.Kernels
	CoreOpts   core.Options
	TileSize   int
	InnerBlock int
	Env        Env
	Trace      bool
	// Ctx cancels the factorization's DAG execution (per call, never
	// retained by the factorization).
	Ctx context.Context
	// CheckHealth enables input validation (reject non-finite entries) and
	// the breakdown fail-fast (every task verifies its output tiles are
	// finite).
	CheckHealth bool
	// Stats, when non-nil, receives the DAG execution's accounting (tasks,
	// busy, wall) for this factorization — per call, never retained.
	Stats *sched.JobStats
}

// reuseKey is the structural identity of a factorization: FactorInto
// reuses tiles, T-factor arena, DAG and execution plan when it matches.
type reuseKey struct {
	m, n       int
	algorithm  core.Algorithm
	kernels    core.Kernels
	coreOpts   core.Options
	tileSize   int
	innerBlock int
}

// Source resolves the tile and T-factor operands of DAG tasks, all in the
// 1-based tile coordinates the task lists use. It is implemented by
// Factorization (plain grid mapping) and by the streaming core (stacked
// resident-triangle + batch mapping), so exactly one dispatch loop exists.
type Source[T vec.Scalar] interface {
	// TileAt returns tile (i, k).
	TileAt(i, k int) *tile.Dense[T]
	// TFactor returns the GEQRT T-factor storage of tile (i, k).
	TFactor(i, k int) []T
	// T2Factor returns the TSQRT/TTQRT T-factor storage of tile (i, k).
	T2Factor(i, k int) []T
	// KCols returns the column count of tile column k.
	KCols(k int) int
}

// isFinite reports whether v is free of NaN and Inf components. vec.Abs is
// overflow-safe (scaled hypot in the complex domains), so huge-but-finite
// values are not misreported.
func isFinite[T vec.Scalar](v T) bool {
	a := vec.Abs(v)
	return !math.IsNaN(a) && !math.IsInf(a, 0)
}

// CheckFinite scans a matrix for non-finite entries, returning a
// descriptive error naming the first offender — the input-validation half
// of Options.CheckHealth, shared by the one-shot and streaming paths.
func CheckFinite[T vec.Scalar](what string, a *tile.Dense[T]) error {
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		for j, v := range row {
			if !isFinite(v) {
				return fmt.Errorf("tiledqr: CheckHealth: %s contains a non-finite entry %v at (%d,%d)", what, v, i, j)
			}
		}
	}
	return nil
}

// checkTile is the breakdown fail-fast of Options.CheckHealth: a tile a
// task just wrote must be free of non-finite entries, otherwise a NaN or
// Inf would silently propagate into every downstream task. The scan is
// O(nb²) against the kernel's O(nb³) work, so the opt-in costs a few
// percent; every output tile of every task is scanned, so a finite input
// that overflows mid-factorization (entries near ±MaxFloat) is caught at
// the task that produced the overflow — not just on the R diagonal.
func checkTile[T vec.Scalar](a *tile.Dense[T], task core.Task) error {
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		for j, v := range row {
			if !isFinite(v) {
				return fmt.Errorf("tiledqr: CheckHealth: numerical breakdown: non-finite entry %v at local (%d,%d) after %v (non-finite input or overflow upstream)", v, i, j, task)
			}
		}
	}
	return nil
}

// checkTask scans every tile the task wrote (factor kernels also rewrite
// the reflector tile; appliers rewrite one or two trailing tiles). Each
// tile's final content is checked by the last task that wrote it, so a
// run whose every check passed has a fully finite factorization.
func checkTask[T vec.Scalar](src Source[T], task core.Task) error {
	switch task.Kind {
	case core.KGEQRT:
		return checkTile(src.TileAt(task.I, task.K), task)
	case core.KUNMQR:
		return checkTile(src.TileAt(task.I, task.J), task)
	case core.KTSQRT, core.KTTQRT:
		if err := checkTile(src.TileAt(task.Piv, task.K), task); err != nil {
			return err
		}
		return checkTile(src.TileAt(task.I, task.K), task)
	case core.KTSMQR, core.KTTMQR:
		if err := checkTile(src.TileAt(task.Piv, task.J), task); err != nil {
			return err
		}
		return checkTile(src.TileAt(task.I, task.J), task)
	}
	return nil
}

// injectFault consults the armed fault injector for this task. It returns
// (poison, err): err aborts the task (ModeError), poison asks the caller
// to NaN the task's output tile after the kernel runs (ModeNaN). ModePanic
// panics here — the scheduler's containment turns it into a job error —
// and ModeStall sleeps before the kernel executes.
func injectFault[T vec.Scalar](task core.Task) (bool, error) {
	act, hit := fault.Check(task.Kind, precName[T]())
	if !hit {
		return false, nil
	}
	switch act.Mode {
	case fault.ModeError:
		return false, fault.Errorf(task.Kind, precName[T]())
	case fault.ModePanic:
		panic(fault.PanicMsg(task.Kind, precName[T]()))
	case fault.ModeStall:
		time.Sleep(act.Stall)
	case fault.ModeNaN:
		return true, nil
	}
	return false, nil
}

// outTile returns the tile a task writes its primary output to: the
// factored/zeroed tile for factor kernels, the updated trailing tile for
// appliers — the target of a ModeNaN poison injection.
func outTile[T vec.Scalar](src Source[T], task core.Task) *tile.Dense[T] {
	switch task.Kind {
	case core.KUNMQR, core.KTSMQR, core.KTTMQR:
		return src.TileAt(task.I, task.J)
	default:
		return src.TileAt(task.I, task.K)
	}
}

// ExecTask dispatches one DAG task to the corresponding tile kernel.
// Unknown task kinds are reported as an error (not a panic): the DAG is
// data, and a malformed one must fail the factorization, not the process.
// check enables the per-task breakdown fail-fast of Options.CheckHealth;
// when the process-global fault injector is armed, matching tasks suffer
// their configured failure here (one atomic load when disarmed).
func ExecTask[T vec.Scalar](src Source[T], d *core.DAG, t int32, ib int, ws []T, check bool) error {
	task := d.Tasks[t]
	poison := false
	if fault.Armed() {
		var err error
		if poison, err = injectFault[T](task); err != nil {
			return err
		}
	}
	switch task.Kind {
	case core.KGEQRT:
		a := src.TileAt(task.I, task.K)
		kernel.GEQRT(a.Rows, a.Cols, ib, a.Data, a.Stride,
			src.TFactor(task.I, task.K), a.Cols, ws)
	case core.KUNMQR:
		v := src.TileAt(task.I, task.K)
		c := src.TileAt(task.I, task.J)
		kernel.UNMQR(true, v.Rows, min(v.Rows, v.Cols), ib, v.Data, v.Stride,
			src.TFactor(task.I, task.K), v.Cols, c.Data, c.Stride, c.Cols, ws)
	case core.KTSQRT, core.KTTQRT:
		a := src.TileAt(task.Piv, task.K)
		b := src.TileAt(task.I, task.K)
		m, l := b.Rows, 0
		if task.Kind == core.KTTQRT {
			m = min(b.Rows, a.Cols)
			l = m
		}
		kernel.TPQRT(m, a.Cols, l, ib, a.Data, a.Stride, b.Data, b.Stride,
			src.T2Factor(task.I, task.K), a.Cols, ws)
	case core.KTSMQR, core.KTTMQR:
		v := src.TileAt(task.I, task.K)
		c1 := src.TileAt(task.Piv, task.J)
		c2 := src.TileAt(task.I, task.J)
		kRef := src.KCols(task.K)
		m, l := v.Rows, 0
		if task.Kind == core.KTTMQR {
			m = min(v.Rows, kRef)
			l = m
		}
		kernel.TPMQRT(true, m, kRef, l, ib, v.Data, v.Stride,
			src.T2Factor(task.I, task.K), kRef,
			c1.Data, c1.Stride, c2.Data, c2.Stride, c2.Cols, ws)
	default:
		return fmt.Errorf("tiledqr: unknown task kind %v (task %d)", task.Kind, t)
	}
	if poison {
		outTile(src, task).Data[0] = vec.FromParts[T](math.NaN(), math.NaN())
	}
	if check {
		return checkTask(src, task)
	}
	return nil
}

// ExecTasks runs every task of the plan's DAG under env, dispatching
// through ExecTask with the executing worker's own kernel workspace. The
// first dispatch error, kernel panic, health-check failure, or context
// cancellation cancels the job's outstanding tasks and is returned
// promptly — the scheduler does not drain the rest of the DAG first.
func ExecTasks[T vec.Scalar](src Source[T], p *sched.Plan, env Env, opts RunOpts, ib, wsLen int) (*sched.Trace, error) {
	d := p.DAG()
	check := opts.Check
	return env.run(p, opts, func(t int32, loc *sched.Local) error {
		return ExecTask(src, d, t, ib, WorkerWS[T](loc, wsLen), check)
	})
}

// Replay applies the Q transformations recorded in the DAG's factor tasks
// to a stacked block-row right-hand side: row(i) returns the RHS rows of
// tile row i (1-based) and their row stride. trans replays Qᴴ in execution
// order; !trans replays Q by walking the tasks backwards (task IDs are
// topological). Update-kernel tasks (UNMQR/TSMQR/TTMQR) carry no new
// reflectors and are skipped. A non-nil ctx cancels the replay at the next
// task boundary, returning ctx.Err() — the partially transformed RHS is
// then garbage, so callers must not serve it.
func Replay[T vec.Scalar](ctx context.Context, src Source[T], d *core.DAG, trans bool, row func(i int) ([]T, int), nrhs, ib int, ws []T) error {
	var cancelCh <-chan struct{}
	if ctx != nil {
		cancelCh = ctx.Done()
	}
	applyOne := func(task core.Task) {
		switch task.Kind {
		case core.KGEQRT:
			v := src.TileAt(task.I, task.K)
			c, ldc := row(task.I)
			kernel.UNMQR(trans, v.Rows, min(v.Rows, v.Cols), ib, v.Data, v.Stride,
				src.TFactor(task.I, task.K), v.Cols, c, ldc, nrhs, ws)
		case core.KTSQRT, core.KTTQRT:
			v := src.TileAt(task.I, task.K)
			c1, ldc1 := row(task.Piv)
			c2, ldc2 := row(task.I)
			kRef := src.KCols(task.K)
			m, l := v.Rows, 0
			if task.Kind == core.KTTQRT {
				m = min(v.Rows, kRef)
				l = m
			}
			kernel.TPMQRT(trans, m, kRef, l, ib, v.Data, v.Stride,
				src.T2Factor(task.I, task.K), kRef,
				c1, ldc1, c2, ldc2, nrhs, ws)
		}
	}
	canceled := func() bool {
		if cancelCh == nil {
			return false
		}
		select {
		case <-cancelCh:
			return true
		default:
			return false
		}
	}
	if trans {
		for _, task := range d.Tasks {
			if canceled() {
				return ctx.Err()
			}
			applyOne(task)
		}
	} else {
		for t := len(d.Tasks) - 1; t >= 0; t-- {
			if canceled() {
				return ctx.Err()
			}
			applyOne(d.Tasks[t])
		}
	}
	return nil
}

// Factorization is the generic one-shot tiled QR state: the factored tiles
// (R plus the Householder representation of Q) and everything needed to
// apply Q, for any scalar domain. A zero Factorization is the valid target
// of FactorInto; Refactor re-runs it over new data with zero steady-state
// allocation.
type Factorization[T vec.Scalar] struct {
	grid    tile.Grid
	mat     *tile.Matrix[T]
	dag     *core.DAG
	plan    *sched.Plan
	arena   []T   // one contiguous block: all tile payloads, then all T factors
	tg      [][]T // GEQRT T factors per tile, indexed (i-1)*q+(k-1), views into arena
	t2      [][]T // TSQRT/TTQRT T factors per tile, views into arena
	ib      int
	wsLen   int
	key     reuseKey
	env     Env
	traceOn bool
	checkOn bool
	valid   bool  // false between a failed execution and the next rebuild
	ferr    error // cause of the last failed execution, cleared on success
	trace   *sched.Trace

	workPool sync.Pool // scratch slices for ApplyQ/ApplyQT/SolveLS
}

// Factor computes the tiled QR factorization A = Q·R of an m×n matrix
// (any m, n ≥ 1). A is not modified. cfg must already carry defaulted,
// validated options.
func Factor[T vec.Scalar](a *tile.Dense[T], cfg Config) (*Factorization[T], error) {
	f := &Factorization[T]{}
	if err := FactorInto(f, a, cfg); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorInto factors a into f, reusing f's tile arena, T-factor storage,
// task DAG and execution plan when the matrix shape and the structural
// options (algorithm, kernels, tile/inner-block sizes, tree parameters)
// match the previous factorization; otherwise the storage is rebuilt.
// Execution placement (Env) and tracing may change freely between calls.
// Steady-state refactorization performs O(1) allocations — none of them
// proportional to the matrix or task count.
//
// On error, any previous factorization held by f is gone (the reused
// storage was overwritten): f refuses to serve results until a subsequent
// FactorInto/Refactor succeeds, which rebuilds storage from scratch.
func FactorInto[T vec.Scalar](f *Factorization[T], a *tile.Dense[T], cfg Config) error {
	key := reuseKey{
		m: a.Rows, n: a.Cols,
		algorithm: cfg.Algorithm, kernels: cfg.Kernels, coreOpts: cfg.CoreOpts,
		tileSize: cfg.TileSize, innerBlock: cfg.InnerBlock,
	}
	// Input validation happens before any state is touched: a rejected
	// matrix leaves a previously valid factorization fully intact.
	if cfg.CheckHealth {
		if err := CheckFinite("input matrix", a); err != nil {
			return err
		}
	}
	// A factorization left invalid by a failed run never reuses its
	// half-written storage: rebuild from scratch.
	if f.mat == nil || !f.valid || f.key != key {
		if err := f.rebuild(cfg, key); err != nil {
			return err
		}
	}
	f.env = cfg.Env
	f.traceOn = cfg.Trace
	f.checkOn = cfg.CheckHealth
	f.trace = nil
	// The reused arena is overwritten in place: a failed execution leaves
	// half-factored tiles, so the factorization is marked invalid until a
	// run completes (R/Apply/SolveLS refuse to serve it) and the next
	// FactorInto rebuilds from scratch instead of reusing.
	f.valid = false
	// CopyFrom overwrites every element of every tile, and each T-factor
	// position a kernel reads is written by the factor kernel of the same
	// run before any applier reads it, so no zeroing of reused storage is
	// needed.
	f.mat.CopyFrom(a)
	trace, err := ExecTasks[T](f, f.plan, f.env,
		RunOpts{Ctx: cfg.Ctx, Trace: cfg.Trace, Check: cfg.CheckHealth, Stats: cfg.Stats}, f.ib, f.wsLen)
	if err != nil {
		f.ferr = err
		return err
	}
	f.valid = true
	f.ferr = nil
	f.trace = trace
	return nil
}

// Refactor re-runs the factorization over new matrix data, reusing every
// internal buffer when a has the shape of the previous factorization (the
// zero-allocation serving path; a different shape rebuilds storage). A
// Refactor after a failed or cancelled execution rebuilds storage and, on
// success, clears the sticky failure state.
func (f *Factorization[T]) Refactor(a *tile.Dense[T]) error {
	return f.RefactorCtx(nil, a)
}

// RefactorCtx is Refactor under a cancellation context: ctx applies to this
// execution only and is never retained by the factorization.
func (f *Factorization[T]) RefactorCtx(ctx context.Context, a *tile.Dense[T]) error {
	if f.mat == nil {
		return fmt.Errorf("tiledqr: Refactor on an empty factorization (use Factor first)")
	}
	cfg := Config{
		Algorithm: f.key.algorithm, Kernels: f.key.kernels, CoreOpts: f.key.coreOpts,
		TileSize: f.key.tileSize, InnerBlock: f.key.innerBlock, Env: f.env,
		Trace: f.traceOn, Ctx: ctx, CheckHealth: f.checkOn,
	}
	return FactorInto(f, a, cfg)
}

// rebuild allocates the factorization's storage for a new structural key:
// DAG, execution plan, and one contiguous arena holding every tile payload
// followed by every T factor (replacing the former p×q individual
// allocations).
func (f *Factorization[T]) rebuild(cfg Config, key reuseKey) error {
	g := tile.NewGrid(key.m, key.n, cfg.TileSize)
	list, err := core.Generate(cfg.Algorithm, g.P, g.Q, cfg.CoreOpts)
	if err != nil {
		return err
	}
	f.grid = g
	f.dag = core.BuildDAG(list, cfg.Kernels)
	f.plan = sched.NewPlan(f.dag)
	f.ib = cfg.InnerBlock
	// Size worker scratch by the tiles that actually occur: a TileSize far
	// beyond the matrix (legal — the grid is then a single tile) must not
	// inflate the quadratic micro-GEMM pack bound inside WorkLen.
	f.wsLen = kernel.WorkLen(min(cfg.TileSize, max(g.M, g.N)), f.ib)
	f.key = key

	tNeed := 0
	for _, t := range f.dag.Tasks {
		switch t.Kind {
		case core.KGEQRT, core.KTSQRT, core.KTTQRT:
			tNeed += f.ib * g.TileCols(t.K-1)
		}
	}
	f.arena = make([]T, g.M*g.N+tNeed)
	f.mat = tile.NewMatrixOn[T](g, f.arena[:g.M*g.N])
	f.tg = make([][]T, g.P*g.Q)
	f.t2 = make([][]T, g.P*g.Q)
	off := g.M * g.N
	carve := func(k int) []T {
		n := f.ib * g.TileCols(k-1)
		s := f.arena[off : off+n : off+n]
		off += n
		return s
	}
	for _, t := range f.dag.Tasks {
		switch t.Kind {
		case core.KGEQRT:
			f.tg[f.tidx(t.I, t.K)] = carve(t.K)
		case core.KTSQRT, core.KTTQRT:
			f.t2[f.tidx(t.I, t.K)] = carve(t.K)
		}
	}
	return nil
}

// tidx maps 1-based tile coordinates to storage index.
func (f *Factorization[T]) tidx(i, k int) int { return (i-1)*f.grid.Q + (k - 1) }

// TileAt, TFactor, T2Factor and KCols implement Source with the plain grid
// mapping (tile row i is tile row i).
func (f *Factorization[T]) TileAt(i, k int) *tile.Dense[T] { return f.mat.Tile(i-1, k-1) }

// TFactor returns the GEQRT T-factor storage of tile (i, k).
func (f *Factorization[T]) TFactor(i, k int) []T { return f.tg[f.tidx(i, k)] }

// T2Factor returns the TSQRT/TTQRT T-factor storage of tile (i, k).
func (f *Factorization[T]) T2Factor(i, k int) []T { return f.t2[f.tidx(i, k)] }

// KCols returns the column count of tile column k (1-based).
func (f *Factorization[T]) KCols(k int) int { return f.grid.TileCols(k - 1) }

// getWork fetches a pooled scratch slice of at least n elements; putWork
// returns it. Steady-state Q applications allocate nothing.
func (f *Factorization[T]) getWork(n int) []T {
	if w, ok := f.workPool.Get().(*[]T); ok && len(*w) >= n {
		return *w
	}
	return make([]T, n)
}

func (f *Factorization[T]) putWork(w []T) {
	f.workPool.Put(&w)
}

// errInvalid is the state guard shared by every factor accessor: a failed
// Factor/FactorInto/Refactor leaves half-factored tiles that must never be
// served as results.
func (f *Factorization[T]) errInvalid(op string) error {
	if f.valid {
		return nil
	}
	if f.ferr != nil {
		return fmt.Errorf("tiledqr: %s on an invalid factorization (the last factorization attempt failed: %w; re-run Factor, FactorInto or Refactor)", op, f.ferr)
	}
	return fmt.Errorf("tiledqr: %s on an invalid factorization (the last factorization attempt failed; re-run Factor or FactorInto)", op)
}

// Err returns the cause of the last failed execution (nil when the
// factorization is valid) — the sticky error the accessors wrap.
func (f *Factorization[T]) Err() error {
	if f.valid {
		return nil
	}
	return f.ferr
}

// R returns the min(m,n)×n upper triangular (trapezoidal) factor.
func (f *Factorization[T]) R() *tile.Dense[T] {
	if err := f.errInvalid("R"); err != nil {
		panic(err) // value-returning accessor: fail loudly, never silently serve garbage
	}
	k := min(f.grid.M, f.grid.N)
	r := tile.NewDense[T](k, f.grid.N)
	nb := f.grid.NB
	for i := 0; i < k; i++ {
		for j := i; j < f.grid.N; j++ {
			r.Set(i, j, f.mat.Tile(i/nb, j/nb).At(i%nb, j%nb))
		}
	}
	return r
}

// RInto writes the leading k×k (k = min(m,n), capped at dst's shape by ldr
// and len) upper triangle of R into dst with row stride ldr, leaving dst's
// strictly lower part untouched. It is the allocation-free sibling of R for
// callers that keep a resident R buffer across factorizations — the
// distributed reduction tree refills its combine buffer from here every
// round. dst must hold at least k rows of ldr with ldr ≥ n.
func (f *Factorization[T]) RInto(dst []T, ldr int) error {
	if err := f.errInvalid("RInto"); err != nil {
		return err
	}
	n := f.grid.N
	k := min(f.grid.M, n)
	if ldr < n {
		return fmt.Errorf("tiledqr: RInto: row stride %d < n=%d", ldr, n)
	}
	if need := (k-1)*ldr + n; len(dst) < need {
		return fmt.Errorf("tiledqr: RInto: dst has %d elements, need %d", len(dst), need)
	}
	nb := f.grid.NB
	for i := 0; i < k; i++ {
		ti, li := i/nb, i%nb
		row := dst[i*ldr : i*ldr+n]
		for j := i; j < n; j++ {
			row[j] = f.mat.Tile(ti, j/nb).At(li, j%nb)
		}
	}
	return nil
}

// Apply overwrites b (m×nrhs) with Qᴴ·b (trans) or Q·b by replaying the
// factorization's transformations. A non-nil ctx cancels the replay at a
// task boundary; b is then partially transformed and must be discarded.
func (f *Factorization[T]) Apply(ctx context.Context, b *tile.Dense[T], trans bool) error {
	if err := f.errInvalid("ApplyQ"); err != nil {
		return err
	}
	if b == nil {
		return fmt.Errorf("tiledqr: ApplyQ: b must not be nil")
	}
	if b.Rows != f.grid.M {
		return fmt.Errorf("tiledqr: ApplyQ: b has %d rows, want %d", b.Rows, f.grid.M)
	}
	nrhs := b.Cols
	ws := f.getWork(kernel.ApplyWorkLen(f.grid.NB, f.ib, max(nrhs, 1)))
	defer f.putWork(ws)
	// row returns a view of b's tile row i (1-based).
	row := func(i int) ([]T, int) {
		v := b.View((i-1)*f.grid.NB, 0, f.grid.TileRows(i-1), nrhs)
		return v.Data, v.Stride
	}
	return Replay[T](ctx, f, f.dag, trans, row, nrhs, f.ib, ws)
}

// Q returns the full m×m orthogonal (unitary) factor, built by applying Q
// to the identity; O(m³) work — prefer ThinQ or Apply for large m.
func (f *Factorization[T]) Q() *tile.Dense[T] {
	q := tile.Identity[T](f.grid.M)
	if err := f.Apply(nil, q, false); err != nil {
		panic(err) // identity always has the right shape
	}
	return q
}

// ThinQ returns the first min(m,n) columns of Q (the orthonormal basis of
// A's column span when A has full column rank).
func (f *Factorization[T]) ThinQ() *tile.Dense[T] {
	k := min(f.grid.M, f.grid.N)
	e := tile.NewDense[T](f.grid.M, k)
	for i := 0; i < k; i++ {
		e.Set(i, i, 1)
	}
	if err := f.Apply(nil, e, false); err != nil {
		panic(err)
	}
	return e
}

// SolveLS solves the least-squares problem min‖A·x − b‖₂ for each column of
// b (m×nrhs), returning the n×nrhs solution. Requires m ≥ n and a
// nonsingular R. A non-nil ctx cancels the Qᴴ·b replay at a task boundary.
func (f *Factorization[T]) SolveLS(ctx context.Context, b *tile.Dense[T]) (*tile.Dense[T], error) {
	if err := f.errInvalid("SolveLS"); err != nil {
		return nil, err
	}
	m, n := f.grid.M, f.grid.N
	if m < n {
		return nil, fmt.Errorf("tiledqr: SolveLS needs m ≥ n (have %d×%d)", m, n)
	}
	if b == nil {
		return nil, fmt.Errorf("tiledqr: SolveLS: b must not be nil")
	}
	if b.Rows != m {
		return nil, fmt.Errorf("tiledqr: SolveLS: b has %d rows, want %d", b.Rows, m)
	}
	qtb := b.Clone()
	if err := f.Apply(ctx, qtb, true); err != nil {
		return nil, err
	}
	r := f.R()
	x := tile.NewDense[T](n, b.Cols)
	// Row-oriented back-substitution (shared with the streaming path); the
	// solution column lives in a pooled contiguous scratch until written
	// back.
	wbuf := f.getWork(n)
	defer f.putWork(wbuf)
	if err := work.SolveUpper(n, b.Cols, r.Data, r.Stride, qtb.Data, qtb.Stride,
		x.Data, x.Stride, wbuf[:n]); err != nil {
		return nil, err
	}
	return x, nil
}

// Trace returns the execution trace (nil unless Config.Trace was set).
func (f *Factorization[T]) Trace() *sched.Trace { return f.trace }

// GanttChart renders an ASCII Gantt chart of the traced execution (one row
// per worker, `width` time columns). Requires Config.Trace.
func (f *Factorization[T]) GanttChart(width int) string {
	if f.trace == nil || f.trace.Spans == nil {
		return "(run with Options.Trace to record a Gantt chart)\n"
	}
	return f.trace.Gantt(f.dag, width)
}

// Utilization returns per-worker busy fractions and overall parallel
// efficiency of the traced execution. Requires Config.Trace.
func (f *Factorization[T]) Utilization() sched.Utilization {
	if f.trace == nil {
		return sched.Utilization{}
	}
	return f.trace.Utilization()
}

// TaskCount returns the number of kernel tasks the factorization executed.
func (f *Factorization[T]) TaskCount() int { return f.dag.NumTasks() }

// DAG exposes the executed task DAG (trace validation in tests).
func (f *Factorization[T]) DAG() *core.DAG { return f.dag }

// Grid returns the tile grid dimensions (p×q) and tile size.
func (f *Factorization[T]) Grid() (p, q, nb int) { return f.grid.P, f.grid.Q, f.grid.NB }
