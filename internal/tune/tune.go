// Package tune is the autotuning layer behind tiledqr.AlgorithmAuto: it
// calibrates the host's sequential kernel throughput per precision with
// short micro-benchmarks, persists the calibration to a versioned on-disk
// cache, and combines it with the bounded-processor simulator of
// internal/sim to pick the predicted-fastest (algorithm, tile size, inner
// block, kernel family) for a concrete m×n shape — turning the paper's
// offline Tables 1–3 analysis into a runtime decision procedure.
//
// Calibration is lazy and per (kernel family, precision): the first Auto
// factorization in a given scalar domain measures the six kernels under the
// vec backend currently active (generic loops or the SIMD family), and
// measuring the other family on demand flips the backend around the
// micro-benchmarks. Each combination measures
// GEQRT/UNMQR/TSQRT/TSMQR/TTQRT/TTMQR at a
// handful of candidate (nb, ib) points (tens of milliseconds per point) and
// the result is cached at ~/.cache/tiledqr/calibration.json — overridable
// with the TILEDQR_CALIBRATION environment variable ("off" disables
// persistence entirely). A corrupt, truncated or schema-incompatible cache
// file is ignored and recalibrated, never an error; concurrent first uses
// are single-flighted so the micro-benchmarks run once.
package tune

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"time"

	"tiledqr/internal/core"
	"tiledqr/internal/kernel"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
)

// SchemaVersion identifies the calibration file layout. Bumping it
// invalidates every cached calibration: old files are silently ignored and
// the host is re-measured. Version 2 added the kernel-family axis (points
// are stored per vec family per precision), so version-1 caches — which
// cannot say whether their numbers came from the generic or the SIMD
// backend — recalibrate on first use.
const SchemaVersion = 2

// EnvCalibration overrides the calibration cache location. Set it to a file
// path to relocate the cache, or to "off" to disable persistence (the
// calibration then lives only in process memory).
const EnvCalibration = "TILEDQR_CALIBRATION"

// calNBs are the candidate tile sizes measured during calibration and
// considered by the resolver; ib follows IBFor. The range brackets the
// paper's 80..200 guidance plus a small-tile point for latency-bound
// shapes.
var calNBs = []int{48, 64, 96, 128, 192}

// IBFor returns the default inner blocking for a tile size: nb/4 clamped to
// [4, 48] (and never above nb), the paper's ib ≈ nb/6..nb/4 regime.
func IBFor(nb int) int {
	ib := nb / 4
	if ib < 4 {
		ib = 4
	}
	if ib > 48 {
		ib = 48
	}
	if ib > nb {
		ib = nb
	}
	return ib
}

// Point is one calibrated (nb, ib) sample: sustained GFLOP/s per kernel
// (complex flops counted as four real flops, matching qrperf and the
// paper's Section 4 convention).
type Point struct {
	NB     int                `json:"nb"`
	IB     int                `json:"ib"`
	Gflops map[string]float64 `json:"gflops"`
}

// fileFormat is the on-disk calibration cache: one point list per kernel
// family per scalar domain, under a schema version.
type fileFormat struct {
	Version  int                           `json:"version"`
	Families map[string]map[string][]Point `json:"families"`
}

// calEntry single-flights the calibration of one (family, precision): the
// first caller measures (or loads), every concurrent caller blocks on the
// Once.
type calEntry struct {
	once sync.Once
	pts  []Point
}

var (
	calMu     sync.Mutex
	calBy     = map[string]*calEntry{} // "family/precision" → entry
	fileMu    sync.Mutex               // serializes read-merge-write of the cache file
	measureMu sync.Mutex               // serializes backend flips during measurement
	decided   sync.Map                 // decKey → Candidate (per-process decision cache)
)

// measureHook, when non-nil, replaces the real micro-benchmarks — tests use
// it to make calibration instant and observable.
var measureHook func(family, prec string) []Point

// Reset drops every in-process calibration and cached decision, forcing the
// next Auto resolution to reload (or re-measure). Intended for tests and
// for recalibration tooling; it does not touch the on-disk cache.
func Reset() {
	calMu.Lock()
	calBy = map[string]*calEntry{}
	calMu.Unlock()
	decided.Range(func(k, _ any) bool {
		decided.Delete(k)
		return true
	})
}

// precKey names a scalar domain in the calibration file.
func precKey[T vec.Scalar]() string {
	switch any((*T)(nil)).(type) {
	case *float32:
		return "float32"
	case *float64:
		return "float64"
	case *complex64:
		return "complex64"
	default:
		return "complex128"
	}
}

// ForPrecision returns the calibration points of T's domain for the kernel
// family the vec primitives currently dispatch to, measuring them on first
// use. Concurrent first uses are single-flighted; the winner persists the
// result best-effort (a read-only cache directory degrades to in-process
// calibration, never an error).
func ForPrecision[T vec.Scalar]() []Point {
	return ForFamily[T](vec.ActiveFamily())
}

// ForFamily returns the calibration points of T's domain under the named
// kernel family, measuring them on first use. Requesting the SIMD family on
// a host without a vector backend degrades to the generic family (the only
// one that can actually run there). Measuring a family other than the
// active one flips the vec backend for the duration of the micro-benchmarks
// and restores it afterwards; flips are serialized so concurrent
// calibrations of different families don't corrupt each other's timings.
func ForFamily[T vec.Scalar](family string) []Point {
	if family == vec.FamilySIMD && !vec.SIMDSupported() {
		family = vec.FamilyGeneric
	}
	prec := precKey[T]()
	key := family + "/" + prec
	calMu.Lock()
	e := calBy[key]
	if e == nil {
		e = &calEntry{}
		calBy[key] = e
	}
	calMu.Unlock()
	e.once.Do(func() {
		if pts := loadCalibration(family, prec); pts != nil {
			e.pts = pts
			return
		}
		if measureHook != nil {
			e.pts = measureHook(family, prec)
		} else {
			e.pts = measureFamily[T](family)
		}
		saveCalibration(family, prec, e.pts)
	})
	return e.pts
}

// measureFamily runs the calibration micro-benchmarks with the vec backend
// pinned to the requested family, restoring the previous backend state when
// done. The measurement lock keeps a concurrent calibration of the other
// family from flipping the backend mid-benchmark; kernels running on other
// goroutines during a flip stay correct (the families agree numerically)
// but may briefly execute on the other backend.
func measureFamily[T vec.Scalar](family string) []Point {
	measureMu.Lock()
	defer measureMu.Unlock()
	prev := vec.SIMDEnabled()
	vec.SetSIMD(family == vec.FamilySIMD)
	defer vec.SetSIMD(prev)
	return measureAll[T]()
}

// CacheLocation describes where the calibration cache lives, for tooling
// and diagnostics ("in-process only" when persistence is disabled).
func CacheLocation() string {
	path, ok := cachePath()
	if !ok {
		if os.Getenv(EnvCalibration) == "off" {
			return "in-process only ($" + EnvCalibration + "=off)"
		}
		return "in-process only (no user cache dir)"
	}
	if os.Getenv(EnvCalibration) != "" {
		return path + " ($" + EnvCalibration + ")"
	}
	return path
}

// cachePath resolves the calibration file location; ok is false when
// persistence is disabled (env "off" or no user cache directory).
func cachePath() (path string, ok bool) {
	if p := os.Getenv(EnvCalibration); p != "" {
		if p == "off" {
			return "", false
		}
		return p, true
	}
	dir, err := os.UserCacheDir()
	if err != nil {
		return "", false
	}
	return filepath.Join(dir, "tiledqr", "calibration.json"), true
}

// loadCalibration returns the cached points of one (family, precision), or
// nil when the file is missing, unreadable, corrupt, from another schema
// version, or holds no usable points — every failure mode means
// "recalibrate", never an error. In particular a version-1 cache (written
// before the kernel-family axis existed) fails the version check and the
// host silently re-measures.
func loadCalibration(family, prec string) []Point {
	path, ok := cachePath()
	if !ok {
		return nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var f fileFormat
	if json.Unmarshal(raw, &f) != nil || f.Version != SchemaVersion {
		return nil
	}
	pts := f.Families[family][prec]
	if len(pts) == 0 {
		return nil
	}
	for _, pt := range pts {
		if pt.NB < 1 || pt.IB < 1 || pt.IB > pt.NB || len(pt.Gflops) == 0 {
			return nil
		}
		for _, g := range pt.Gflops {
			if g <= 0 {
				return nil
			}
		}
	}
	return pts
}

// saveCalibration merges one (family, precision)'s points into the cache
// file, best-effort: IO failures are ignored (the in-process copy still
// serves this run). The write is temp-file + rename so a crash never leaves
// a truncated file, and the read-merge-write is serialized so concurrent
// calibrations of different families or precisions don't drop each other.
func saveCalibration(family, prec string, pts []Point) {
	path, ok := cachePath()
	if !ok {
		return
	}
	fileMu.Lock()
	defer fileMu.Unlock()
	f := fileFormat{Version: SchemaVersion, Families: map[string]map[string][]Point{}}
	if raw, err := os.ReadFile(path); err == nil {
		var prev fileFormat
		if json.Unmarshal(raw, &prev) == nil && prev.Version == SchemaVersion && prev.Families != nil {
			f.Families = prev.Families
		}
	}
	if f.Families[family] == nil {
		f.Families[family] = map[string][]Point{}
	}
	f.Families[family][prec] = pts
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return
	}
	out = append(out, '\n')
	if os.MkdirAll(filepath.Dir(path), 0o755) != nil {
		return
	}
	tmp := path + ".tmp"
	if os.WriteFile(tmp, out, 0o644) != nil {
		return
	}
	if os.Rename(tmp, path) != nil {
		os.Remove(tmp)
	}
}

// measureAll micro-benchmarks every calibration point of one domain.
func measureAll[T vec.Scalar]() []Point {
	pts := make([]Point, 0, len(calNBs))
	for _, nb := range calNBs {
		ib := IBFor(nb)
		pts = append(pts, Point{NB: nb, IB: ib, Gflops: measurePoint[T](nb, ib)})
	}
	return pts
}

// calWindow bounds each kernel's sampling time during calibration: long
// enough to smooth timer granularity, short enough that first-use
// calibration stays well under a second per precision.
const calWindow = 8 * time.Millisecond

// timeKernel returns seconds per call, doubling the repetition count until
// the sample window is long enough to trust.
func timeKernel(f func(), window time.Duration) float64 {
	f() // warm up
	for reps := 1; ; reps *= 2 {
		start := time.Now()
		for i := 0; i < reps; i++ {
			f()
		}
		if el := time.Since(start); el > window || reps >= 1<<16 {
			return el.Seconds() / float64(reps)
		}
	}
}

// measurePoint times the six kernels at a calibration budget and converts
// to GFLOP/s (4 real flops per complex flop, as everywhere in the repo).
func measurePoint[T vec.Scalar](nb, ib int) map[string]float64 {
	flopScale := 1.0
	if vec.IsComplex[T]() {
		flopScale = 4
	}
	cube := float64(nb) * float64(nb) * float64(nb)
	sec := MeasureKernelSecs[T](nb, ib, calWindow)
	out := make(map[string]float64, len(sec))
	for kind, s := range sec {
		out[kind.String()] = flopScale * float64(kind.Weight()) * cube / 3 / s / 1e9
	}
	return out
}

// MeasureKernelSecs micro-benchmarks the six Table 1 kernels on random
// nb×nb tiles and returns seconds per invocation, sampling each kernel for
// at least the given window. It is the one kernel-timing harness in the
// repo: calibration uses it at a short window, qrperf's experiments and the
// benchmark-JSON emitter at a longer one.
func MeasureKernelSecs[T vec.Scalar](nb, ib int, window time.Duration) map[core.Kind]float64 {
	da := tile.RandDense[T](nb, nb, 1)
	db := tile.RandDense[T](nb, nb, 2)
	dc := tile.RandDense[T](nb, nb, 3)
	tf := make([]T, ib*nb)
	t2 := make([]T, ib*nb)
	ws := make([]T, kernel.WorkLen(nb, ib))
	sec := map[core.Kind]float64{}
	sec[core.KGEQRT] = timeKernel(func() {
		a := da.Clone()
		kernel.GEQRT(nb, nb, ib, a.Data, nb, tf, nb, ws)
	}, window)
	v := da.Clone()
	kernel.GEQRT(nb, nb, ib, v.Data, nb, tf, nb, ws)
	sec[core.KUNMQR] = timeKernel(func() {
		c := dc.Clone()
		kernel.UNMQR(true, nb, nb, ib, v.Data, nb, tf, nb, c.Data, nb, nb, ws)
	}, window)
	rTri := v
	sec[core.KTSQRT] = timeKernel(func() {
		a := rTri.Clone()
		b := db.Clone()
		kernel.TSQRT(nb, nb, ib, a.Data, nb, b.Data, nb, t2, nb, ws)
	}, window)
	vts := db.Clone()
	kernel.TSQRT(nb, nb, ib, rTri.Clone().Data, nb, vts.Data, nb, t2, nb, ws)
	sec[core.KTSMQR] = timeKernel(func() {
		c1 := dc.Clone()
		c2 := dc.Clone()
		kernel.TSMQR(true, nb, nb, ib, vts.Data, nb, t2, nb, c1.Data, nb, c2.Data, nb, nb, ws)
	}, window)
	rTri2 := db.Clone()
	kernel.GEQRT(nb, nb, ib, rTri2.Data, nb, tf, nb, ws)
	sec[core.KTTQRT] = timeKernel(func() {
		a := rTri.Clone()
		b := rTri2.Clone()
		kernel.TTQRT(nb, nb, ib, a.Data, nb, b.Data, nb, t2, nb, ws)
	}, window)
	vtt := rTri2.Clone()
	kernel.TTQRT(nb, nb, ib, rTri.Clone().Data, nb, vtt.Data, nb, t2, nb, ws)
	sec[core.KTTMQR] = timeKernel(func() {
		c1 := dc.Clone()
		c2 := dc.Clone()
		kernel.TTMQR(true, nb, nb, ib, vtt.Data, nb, t2, nb, c1.Data, nb, c2.Data, nb, nb, ws)
	}, window)
	return sec
}
