package tune

import (
	"fmt"
	"runtime"
	"sort"

	"tiledqr/internal/core"
	"tiledqr/internal/model"
	"tiledqr/internal/sim"
	"tiledqr/internal/vec"
)

// Request describes one resolution: the matrix shape, the execution width
// the factorization will actually run at, and any pinned sizes (zero means
// "choose for me").
type Request struct {
	M, N    int
	Workers int // ≤ 0 means GOMAXPROCS
	PinNB   int // > 0 pins the tile size
	PinIB   int // > 0 pins the inner block
}

// Candidate is one scored configuration. Rank returns them best-first;
// Resolve returns the winner.
type Candidate struct {
	Algorithm    core.Algorithm
	Kernels      core.Kernels
	Family       string // vec kernel family whose calibration scored this candidate
	NB, IB       int
	P, Q         int     // tile grid at NB
	PredictedSec float64 // model-predicted factorization wall time
	Simulated    bool    // true: full DAG list-scheduling; false: roofline bound
}

const (
	// simTaskLimit caps the DAG size the resolver fully simulates; larger
	// grids fall back to the roofline bound (where the area term dominates
	// anyway, so the approximation costs little accuracy).
	simTaskLimit = 60_000
	// dispatchSec is the scheduler's per-task dispatch overhead added to
	// every simulated task — it is what steers tiny matrices away from tiny
	// tiles (thousands of microsecond tasks) toward fewer, larger tiles.
	dispatchSec = 120e-9
)

// decKey identifies one cached decision. The vec kernel family is part of
// the key: flipping the backend (SetFamily, benchmarks) must not serve
// decisions scored with the other family's throughput.
type decKey struct {
	prec, family  string
	stream        bool
	kernels       core.Kernels // streams only (factor decisions choose it)
	m, n, workers int
	pinNB, pinIB  int
}

// Resolve picks the predicted-fastest (algorithm, kernel family, nb, ib)
// for a factorization of an m×n matrix in T's domain. Decisions are cached
// per (shape, width, pins, precision), so repeated factorizations of one
// shape — the FactorInto serving path — resolve to the identical tuple with
// a map lookup.
func Resolve[T vec.Scalar](req Request) (Candidate, error) {
	if req.M < 1 || req.N < 1 {
		return Candidate{}, fmt.Errorf("tiledqr: tune: invalid shape %d×%d", req.M, req.N)
	}
	if req.Workers < 1 {
		req.Workers = runtime.GOMAXPROCS(0)
	}
	key := decKey{prec: precKey[T](), family: vec.ActiveFamily(),
		m: req.M, n: req.N, workers: req.Workers,
		pinNB: req.PinNB, pinIB: req.PinIB}
	if c, ok := decided.Load(key); ok {
		return c.(Candidate), nil
	}
	ranked := Rank[T](req)
	if len(ranked) == 0 {
		return Candidate{}, fmt.Errorf("tiledqr: tune: no feasible configuration for %d×%d", req.M, req.N)
	}
	decided.Store(key, ranked[0])
	return ranked[0], nil
}

// Rank scores every candidate configuration for the request and returns
// them sorted fastest-predicted first. Candidate order is deterministic, so
// ties resolve identically on every call.
func Rank[T vec.Scalar](req Request) []Candidate {
	if req.Workers < 1 {
		req.Workers = runtime.GOMAXPROCS(0)
	}
	family := vec.ActiveFamily()
	pts := ForFamily[T](family)
	flopScale := 1.0
	if vec.IsComplex[T]() {
		flopScale = 4
	}
	var out []Candidate
	for _, pt := range candidatePoints(req.M, req.N, req.PinNB, req.PinIB) {
		p := (req.M + pt.nb - 1) / pt.nb
		q := (req.N + pt.nb - 1) / pt.nb
		secs := secsAt(pts, pt.nb, flopScale)
		est := estTasks(p, q)
		if est <= simTaskLimit {
			for _, alg := range core.Algorithms {
				list, err := core.Generate(alg, p, q, core.Options{})
				if err != nil {
					continue
				}
				for _, fam := range []core.Kernels{core.TT, core.TS} {
					d := core.BuildDAG(list, fam)
					w := sim.KindWeights(d, secs)
					for i := range w {
						w[i] += dispatchSec
					}
					sec := sim.ListSchedule(d, req.Workers, w, sim.PriorityBLevel)
					out = append(out, Candidate{Algorithm: alg, Kernels: fam, Family: family,
						NB: pt.nb, IB: pt.ib, P: p, Q: q, PredictedSec: sec, Simulated: true})
				}
			}
			continue
		}
		// Roofline path for huge grids: γ_pred's max(area, critical path)
		// with the paper's closed-form critical-path bounds. Asap has no
		// closed form (its list generation is itself a simulation), so it
		// is not considered here.
		totalUnits := float64(model.TotalUnits(p, q))
		for _, alg := range core.Algorithms {
			if alg == core.Asap {
				continue
			}
			for _, fam := range []core.Kernels{core.TT, core.TS} {
				unitSec := secs[core.KTTMQR] / 6
				if fam == core.TS {
					unitSec = secs[core.KTSMQR] / 12
				}
				cp := float64(cpUnitsApprox(alg, fam, p, q))
				sec := max(totalUnits*unitSec/float64(req.Workers), cp*unitSec) +
					dispatchSec*float64(est)/float64(req.Workers)
				out = append(out, Candidate{Algorithm: alg, Kernels: fam, Family: family,
					NB: pt.nb, IB: pt.ib, P: p, Q: q, PredictedSec: sec})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].PredictedSec < out[j].PredictedSec })
	return out
}

// ResolveStream picks (nb, ib) for a streaming TSQR over n columns: the
// per-row merge cost of a one-tile-row batch (per tile column: GEQRT plus a
// triangle merge, plus trailing updates), divided by the column parallelism
// the width can exploit. The kernel family is the caller's (streams honor
// Options.Kernels); decisions are cached like factor resolutions.
func ResolveStream[T vec.Scalar](n, workers, pinNB, pinIB int, fam core.Kernels) (Candidate, error) {
	if n < 1 {
		return Candidate{}, fmt.Errorf("tiledqr: tune: invalid stream width n=%d", n)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	family := vec.ActiveFamily()
	key := decKey{prec: precKey[T](), family: family, stream: true, kernels: fam,
		n: n, workers: workers, pinNB: pinNB, pinIB: pinIB}
	if c, ok := decided.Load(key); ok {
		return c.(Candidate), nil
	}
	pts := ForFamily[T](family)
	flopScale := 1.0
	if vec.IsComplex[T]() {
		flopScale = 4
	}
	mergeQ, mergeM := core.KTTQRT, core.KTTMQR
	if fam == core.TS {
		mergeQ, mergeM = core.KTSQRT, core.KTSMQR
	}
	var best Candidate
	for _, pt := range candidatePoints(n, n, pinNB, pinIB) {
		q := (n + pt.nb - 1) / pt.nb
		secs := secsAt(pts, pt.nb, flopScale)
		var batchSec float64
		for k := 1; k <= q; k++ {
			batchSec += secs[core.KGEQRT] + secs[mergeQ] +
				float64(q-k)*(secs[core.KUNMQR]+secs[mergeM])
		}
		par := min(workers, q)
		batchSec = batchSec/float64(par) + dispatchSec*float64(q*q)
		perRow := batchSec / float64(pt.nb)
		if best.NB == 0 || perRow < best.PredictedSec {
			best = Candidate{Kernels: fam, Family: family, NB: pt.nb, IB: pt.ib, P: 1, Q: q,
				PredictedSec: perRow, Simulated: false}
		}
	}
	decided.Store(key, best)
	return best, nil
}

// candidatePoint is one (nb, ib) the resolver scores.
type candidatePoint struct{ nb, ib int }

// candidatePoints returns the (nb, ib) grid honoring pins: a pinned nb is
// the single candidate; otherwise the calibration tile sizes, clamped so nb
// never exceeds the matrix (a single right-sized tile replaces every
// larger-than-the-matrix candidate) and never dips below a pinned ib.
func candidatePoints(m, n, pinNB, pinIB int) []candidatePoint {
	if pinNB > 0 {
		ib := pinIB
		if ib <= 0 {
			ib = IBFor(pinNB)
		}
		return []candidatePoint{{nb: pinNB, ib: min(ib, pinNB)}}
	}
	maxDim := max(m, n)
	seen := map[int]bool{}
	var out []candidatePoint
	for _, nb := range calNBs {
		if nb > maxDim {
			nb = maxDim
		}
		if pinIB > 0 && nb < pinIB {
			nb = pinIB
		}
		if seen[nb] {
			continue
		}
		seen[nb] = true
		ib := pinIB
		if ib <= 0 {
			ib = IBFor(nb)
		}
		out = append(out, candidatePoint{nb: nb, ib: min(ib, nb)})
	}
	return out
}

// estTasks estimates the DAG task count of a p×q factorization from above,
// modeling the TT family (the larger of the two: every participating row is
// re-triangularized per column, so column k holds ≈ (q−k+1)(2(p−k)+1)
// tasks; TS has roughly half). Measured against real DAGs it sits 2–8%
// above the TT count and 10–30% above TS — a budget guard, not a cost
// model.
func estTasks(p, q int) int {
	est := 0
	for k := 1; k <= min(p, q); k++ {
		est += 2 * (p - k + 1) * (q - k + 1)
	}
	return est
}

// secsAt converts the calibrated GFLOP/s into seconds per kernel call at an
// arbitrary tile size, interpolating throughput piecewise-linearly in nb
// between calibration points (clamped at the ends). Sensitivity to ib
// within a point is ignored — the calibration grid follows IBFor, and
// pinned inner blocks reuse the nearest measured throughput.
func secsAt(pts []Point, nb int, flopScale float64) map[core.Kind]float64 {
	cube := float64(nb) * float64(nb) * float64(nb)
	out := make(map[core.Kind]float64, 6)
	for k := core.Kind(0); k < 6; k++ {
		g := interpGflops(pts, nb, k.String())
		if g <= 0 {
			g = 1 // defensive: a missing series predicts 1 GFLOP/s rather than dividing by zero
		}
		out[k] = flopScale * float64(k.Weight()) * cube / 3 / (g * 1e9)
	}
	return out
}

// interpGflops linearly interpolates one kernel's GFLOP/s at tile size nb.
func interpGflops(pts []Point, nb int, kind string) float64 {
	if len(pts) == 0 {
		return 0
	}
	if nb <= pts[0].NB {
		return pts[0].Gflops[kind]
	}
	for i := 1; i < len(pts); i++ {
		if nb <= pts[i].NB {
			lo, hi := pts[i-1], pts[i]
			t := float64(nb-lo.NB) / float64(hi.NB-lo.NB)
			return lo.Gflops[kind] + t*(hi.Gflops[kind]-lo.Gflops[kind])
		}
	}
	return pts[len(pts)-1].Gflops[kind]
}

// cpUnitsApprox returns a closed-form critical-path estimate in Table 1
// units for the roofline path, using the transposed grid when p < q (wide
// matrices factor min(p,q) panels). TT bounds are the paper's Theorem 1 /
// Propositions 1–2; the TS family, which serializes each elimination's
// square update, is approximated as 3/2× the TT path (the FlatTree ratio of
// Proposition 2 to Theorem 1).
func cpUnitsApprox(alg core.Algorithm, fam core.Kernels, p, q int) int {
	pp, qm := max(p, q), min(p, q)
	var cp int
	switch alg {
	case core.FlatTree:
		cp = model.FlatTreeCP(pp, qm)
	case core.BinaryTree:
		cp = model.BinaryTreeCPPow2(pp, qm)
	case core.Fibonacci:
		cp = model.FibonacciCPUpper(pp, qm)
	default: // Greedy and anything else without a dedicated form
		cp = model.GreedyCPUpper(pp, qm)
	}
	if fam == core.TS {
		cp = cp * 3 / 2
	}
	return cp
}
