package tune

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"tiledqr/internal/core"
	"tiledqr/internal/vec"
)

// synthPoints builds a plausible synthetic calibration: throughput mildly
// increasing with nb, so larger tiles win on pure efficiency and the
// dispatch-overhead term is what pushes small shapes to small tiles.
func synthPoints() []Point {
	var pts []Point
	for _, nb := range []int{48, 64, 96, 128, 192} {
		g := map[string]float64{}
		for k := core.Kind(0); k < 6; k++ {
			g[k.String()] = 2 + float64(nb)/128
		}
		pts = append(pts, Point{NB: nb, IB: IBFor(nb), Gflops: g})
	}
	return pts
}

// fam1 wraps one family's points in the on-disk layout, under the family
// the vec backend currently dispatches to (what ForPrecision will look up).
func fam1(pts []Point) map[string]map[string][]Point {
	return map[string]map[string][]Point{vec.ActiveFamily(): {"float64": pts}}
}

// withHook installs a synthetic measurement function for the test and
// resets all in-process calibration state around it. Tests using it must
// not run in parallel (package-level state).
func withHook(t *testing.T, f func(family, prec string) []Point) {
	t.Helper()
	measureHook = f
	Reset()
	t.Cleanup(func() {
		measureHook = nil
		Reset()
	})
}

func TestCalibrationCorruptionFallsBackToMeasurement(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "calibration.json")
	t.Setenv(EnvCalibration, path)

	good, _ := json.Marshal(fileFormat{Version: SchemaVersion, Families: fam1(synthPoints())})
	cases := map[string][]byte{
		"truncated":      good[:len(good)/2],
		"garbage":        []byte("{{{ not json at all"),
		"empty":          {},
		"wrong-version":  mustJSON(fileFormat{Version: SchemaVersion + 1, Families: fam1(synthPoints())}),
		"no-points":      mustJSON(fileFormat{Version: SchemaVersion, Families: map[string]map[string][]Point{}}),
		"zero-gflops":    mustJSON(fileFormat{Version: SchemaVersion, Families: fam1([]Point{{NB: 64, IB: 16, Gflops: map[string]float64{"GEQRT": 0}}})}),
		"ib-exceeds-nb":  mustJSON(fileFormat{Version: SchemaVersion, Families: fam1([]Point{{NB: 16, IB: 64, Gflops: map[string]float64{"GEQRT": 1}}})}),
		"negative-sizes": mustJSON(fileFormat{Version: SchemaVersion, Families: fam1([]Point{{NB: -1, IB: -1, Gflops: map[string]float64{"GEQRT": 1}}})}),
		// The exact layout written by schema version 1, before the kernel
		// family axis: must be ignored (recalibrated), never misread.
		"stale-v1-schema": []byte(`{"version":1,"precisions":{"float64":[{"nb":64,"ib":16,"gflops":{"GEQRT":3}}]}}`),
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			var calls atomic.Int32
			withHook(t, func(string, string) []Point { calls.Add(1); return synthPoints() })
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			pts := ForPrecision[float64]()
			if len(pts) == 0 {
				t.Fatal("no calibration points after corrupt cache")
			}
			if calls.Load() != 1 {
				t.Fatalf("corrupt cache %q: measured %d times, want 1 (recalibration)", name, calls.Load())
			}
			// The recalibration must have repaired the file on disk.
			if got := loadCalibration(vec.ActiveFamily(), "float64"); got == nil {
				t.Fatalf("corrupt cache %q: recalibration did not persist a valid file", name)
			}
		})
	}
}

func mustJSON(v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return raw
}

func TestCalibrationRoundTripAndReuse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cal.json")
	t.Setenv(EnvCalibration, path)
	var calls atomic.Int32
	withHook(t, func(string, string) []Point { calls.Add(1); return synthPoints() })

	first := ForPrecision[float64]()
	Reset() // drop in-process state; the next call must load from disk
	second := ForPrecision[float64]()
	if calls.Load() != 1 {
		t.Fatalf("measured %d times, want 1 (second run loads the cache)", calls.Load())
	}
	if len(first) != len(second) {
		t.Fatalf("cache round trip changed point count: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].NB != second[i].NB || first[i].IB != second[i].IB {
			t.Fatalf("cache round trip changed point %d: %+v vs %+v", i, first[i], second[i])
		}
		for k, v := range first[i].Gflops {
			if second[i].Gflops[k] != v {
				t.Fatalf("cache round trip changed %s@nb=%d", k, first[i].NB)
			}
		}
	}
}

func TestCalibrationMergesPrecisions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cal.json")
	t.Setenv(EnvCalibration, path)
	withHook(t, func(string, string) []Point { return synthPoints() })
	ForPrecision[float64]()
	ForPrecision[complex128]()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f fileFormat
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	fam := vec.ActiveFamily()
	for _, prec := range []string{"float64", "complex128"} {
		if len(f.Families[fam][prec]) == 0 {
			t.Errorf("cache file lost precision %s: have %v", prec, f.Families)
		}
	}
}

// TestCalibrationPerFamily checks the cache keeps the two kernel families'
// points apart and that ForFamily measures exactly the family it was asked
// for (flipping the vec backend if needed, restoring it afterwards).
func TestCalibrationPerFamily(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cal.json")
	t.Setenv(EnvCalibration, path)
	var families []string
	withHook(t, func(family, prec string) []Point {
		families = append(families, family)
		return synthPoints()
	})
	before := vec.ActiveFamily()
	generic := ForFamily[float64](vec.FamilyGeneric)
	active := ForPrecision[float64]()
	if vec.ActiveFamily() != before {
		t.Fatalf("calibration changed the active family: %s → %s", before, vec.ActiveFamily())
	}
	if len(generic) == 0 || len(active) == 0 {
		t.Fatal("missing calibration points")
	}
	wantFams := []string{vec.FamilyGeneric}
	if before != vec.FamilyGeneric {
		wantFams = append(wantFams, before)
	}
	if len(families) != len(wantFams) {
		t.Fatalf("measured families %v, want %v", families, wantFams)
	}
	for i, f := range wantFams {
		if families[i] != f {
			t.Fatalf("measured families %v, want %v", families, wantFams)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f fileFormat
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	for _, fam := range wantFams {
		if len(f.Families[fam]["float64"]) == 0 {
			t.Errorf("cache file missing family %s: have %v", fam, f.Families)
		}
	}
}

// TestForFamilyUnsupportedSIMDDegrades pins the contract that asking for
// the SIMD family on a host without a vector backend serves the generic
// calibration instead of inventing one (meaningful on the noasm build).
func TestForFamilyUnsupportedSIMDDegrades(t *testing.T) {
	if vec.SIMDSupported() {
		t.Skip("host has a SIMD backend; degradation path not reachable")
	}
	t.Setenv(EnvCalibration, "off")
	var calls atomic.Int32
	withHook(t, func(family, prec string) []Point {
		calls.Add(1)
		if family != vec.FamilyGeneric {
			t.Errorf("measured family %q on a host without SIMD", family)
		}
		return synthPoints()
	})
	ForFamily[float64](vec.FamilySIMD)
	ForFamily[float64](vec.FamilyGeneric)
	if calls.Load() != 1 {
		t.Fatalf("measured %d times, want 1 (simd request degrades to the generic entry)", calls.Load())
	}
}

func TestCalibrationPersistenceOff(t *testing.T) {
	t.Setenv(EnvCalibration, "off")
	withHook(t, func(string, string) []Point { return synthPoints() })
	if pts := ForPrecision[float64](); len(pts) == 0 {
		t.Fatal("persistence off must still calibrate in process")
	}
}

func TestCacheLocation(t *testing.T) {
	t.Setenv(EnvCalibration, "off")
	if got := CacheLocation(); got != "in-process only ($"+EnvCalibration+"=off)" {
		t.Errorf("off sentinel described as %q", got)
	}
	t.Setenv(EnvCalibration, "/tmp/somewhere.json")
	if got := CacheLocation(); got != "/tmp/somewhere.json ($"+EnvCalibration+")" {
		t.Errorf("env override described as %q", got)
	}
}

// TestCalibrationSingleFlight hammers first-use calibration from many
// goroutines (run under -race in CI): the micro-benchmark must run exactly
// once and everyone must observe the same points.
func TestCalibrationSingleFlight(t *testing.T) {
	t.Setenv(EnvCalibration, filepath.Join(t.TempDir(), "cal.json"))
	var calls atomic.Int32
	withHook(t, func(string, string) []Point { calls.Add(1); return synthPoints() })

	const goroutines = 16
	results := make([][]Point, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = ForPrecision[float64]()
		}(i)
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("calibration ran %d times under concurrency, want 1", calls.Load())
	}
	for i := 1; i < goroutines; i++ {
		if &results[i][0] != &results[0][0] {
			t.Fatalf("goroutine %d observed a different calibration slice", i)
		}
	}
}

// TestConcurrentResolveSingleFlightsPerPrecision mixes Resolve calls across
// precisions and shapes under the race detector: one measurement per
// precision, identical decisions per shape.
func TestConcurrentResolveSingleFlights(t *testing.T) {
	t.Setenv(EnvCalibration, "off")
	var calls atomic.Int32
	withHook(t, func(string, string) []Point { calls.Add(1); return synthPoints() })

	const per = 8
	decs := make([]Candidate, per)
	var wg sync.WaitGroup
	for i := 0; i < per; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := Resolve[float64](Request{M: 512, N: 256, Workers: 4})
			if err != nil {
				t.Error(err)
				return
			}
			decs[i] = d
			if _, err := Resolve[complex128](Request{M: 300, N: 300, Workers: 4}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if calls.Load() != 2 {
		t.Fatalf("calibrated %d times, want 2 (one per precision)", calls.Load())
	}
	for i := 1; i < per; i++ {
		if decs[i] != decs[0] {
			t.Fatalf("concurrent Resolve diverged: %+v vs %+v", decs[i], decs[0])
		}
	}
}

func TestResolveDeterministicAndPinned(t *testing.T) {
	t.Setenv(EnvCalibration, "off")
	withHook(t, func(string, string) []Point { return synthPoints() })

	a, err := Resolve[float64](Request{M: 512, N: 256, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resolve[float64](Request{M: 512, N: 256, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Resolve not deterministic: %+v vs %+v", a, b)
	}
	if a.NB < 1 || a.IB < 1 || a.IB > a.NB {
		t.Fatalf("Resolve produced invalid sizes: %+v", a)
	}

	pinned, err := Resolve[float64](Request{M: 512, N: 256, Workers: 4, PinNB: 100, PinIB: 20})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.NB != 100 || pinned.IB != 20 {
		t.Fatalf("pins not honored: %+v", pinned)
	}

	if _, err := Resolve[float64](Request{M: 0, N: 5}); err == nil {
		t.Fatal("Resolve accepted an empty shape")
	}
}

func TestRankSortedAndExhaustive(t *testing.T) {
	t.Setenv(EnvCalibration, "off")
	withHook(t, func(string, string) []Point { return synthPoints() })
	ranked := Rank[float64](Request{M: 512, N: 256, Workers: 4})
	if len(ranked) == 0 {
		t.Fatal("empty ranking")
	}
	algs, fams := map[core.Algorithm]bool{}, map[core.Kernels]bool{}
	for i, c := range ranked {
		if i > 0 && c.PredictedSec < ranked[i-1].PredictedSec {
			t.Fatalf("ranking not sorted at %d", i)
		}
		if !c.Simulated {
			t.Errorf("small grid candidate fell back to roofline: %+v", c)
		}
		algs[c.Algorithm] = true
		fams[c.Kernels] = true
	}
	if len(algs) != len(core.Algorithms) || len(fams) != 2 {
		t.Fatalf("ranking not exhaustive: %d algorithms, %d families", len(algs), len(fams))
	}
}

// TestRankRooflineForHugeGrids checks the resolver does not try to build
// million-task DAGs: huge shapes use the closed-form roofline path.
func TestRankRooflineForHugeGrids(t *testing.T) {
	t.Setenv(EnvCalibration, "off")
	withHook(t, func(string, string) []Point { return synthPoints() })
	ranked := Rank[float64](Request{M: 100_000, N: 50_000, Workers: 48})
	if len(ranked) == 0 {
		t.Fatal("empty ranking for huge shape")
	}
	for _, c := range ranked {
		if c.Simulated {
			t.Fatalf("huge grid %d×%d tiles was fully simulated", c.P, c.Q)
		}
	}
}

func TestCandidatePoints(t *testing.T) {
	// Pinned nb is the single candidate; default ib follows IBFor.
	pts := candidatePoints(512, 256, 100, 0)
	if len(pts) != 1 || pts[0].nb != 100 || pts[0].ib != IBFor(100) {
		t.Fatalf("pinned nb: %+v", pts)
	}
	// nb candidates never exceed the matrix.
	for _, pt := range candidatePoints(40, 30, 0, 0) {
		if pt.nb > 40 {
			t.Errorf("candidate nb %d exceeds the 40×30 matrix", pt.nb)
		}
		if pt.ib > pt.nb {
			t.Errorf("candidate ib %d exceeds nb %d", pt.ib, pt.nb)
		}
	}
	// A pinned ib floors nb.
	for _, pt := range candidatePoints(512, 512, 0, 80) {
		if pt.nb < 80 || pt.ib != 80 {
			t.Errorf("pinned ib not honored: %+v", pt)
		}
	}
}

func TestInterpGflops(t *testing.T) {
	pts := []Point{
		{NB: 64, Gflops: map[string]float64{"GEQRT": 2}},
		{NB: 128, Gflops: map[string]float64{"GEQRT": 4}},
	}
	for _, tc := range []struct {
		nb   int
		want float64
	}{{32, 2}, {64, 2}, {96, 3}, {128, 4}, {256, 4}} {
		if got := interpGflops(pts, tc.nb, "GEQRT"); got != tc.want {
			t.Errorf("interp at nb=%d: %g, want %g", tc.nb, got, tc.want)
		}
	}
}

func TestResolveStream(t *testing.T) {
	t.Setenv(EnvCalibration, "off")
	withHook(t, func(string, string) []Point { return synthPoints() })
	d, err := ResolveStream[float64](300, 4, 0, 0, core.TT)
	if err != nil {
		t.Fatal(err)
	}
	if d.NB < 1 || d.NB > 300 || d.IB < 1 || d.IB > d.NB {
		t.Fatalf("stream decision out of range: %+v", d)
	}
	d2, err := ResolveStream[float64](300, 4, 0, 0, core.TT)
	if err != nil {
		t.Fatal(err)
	}
	if d != d2 {
		t.Fatalf("stream resolution not deterministic: %+v vs %+v", d, d2)
	}
	pinned, err := ResolveStream[float64](300, 4, 96, 24, core.TS)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.NB != 96 || pinned.IB != 24 {
		t.Fatalf("stream pins not honored: %+v", pinned)
	}
	if _, err := ResolveStream[float64](0, 4, 0, 0, core.TT); err == nil {
		t.Fatal("ResolveStream accepted n=0")
	}
}

func TestEstTasksMatchesDAG(t *testing.T) {
	for _, g := range [][2]int{{4, 4}, {8, 4}, {10, 10}, {15, 2}, {3, 7}} {
		p, q := g[0], g[1]
		list, err := core.Generate(core.Greedy, p, q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		exact := core.BuildDAG(list, core.TT).NumTasks()
		est := estTasks(p, q)
		// The estimate only guards the simulation budget; it must bound the
		// real count from above without being wildly off.
		if est < exact {
			t.Errorf("estTasks(%d,%d) = %d underestimates the real %d tasks", p, q, est, exact)
		}
		if est > 3*exact+8 {
			t.Errorf("estTasks(%d,%d) = %d is far above the real %d tasks", p, q, est, exact)
		}
	}
}
