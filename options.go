package tiledqr

import (
	"fmt"

	"tiledqr/internal/core"
	"tiledqr/internal/engine"
	"tiledqr/internal/sched"
	"tiledqr/internal/tune"
	"tiledqr/internal/vec"
)

// Algorithm selects the elimination tree; see the package documentation and
// Section 3 of the paper for the trade-offs.
type Algorithm int

const (
	// Greedy is the default: never worse than the alternatives for tall
	// matrices and requires no tuning parameter.
	Greedy Algorithm = iota
	// FlatTree is Sameh-Kuck, PLASMA's historical ordering.
	FlatTree
	// BinaryTree pairs rows level by level.
	BinaryTree
	// Fibonacci is the Fibonacci scheme of order 1.
	Fibonacci
	// Asap makes elimination decisions dynamically in simulated time.
	Asap
	// Grasap runs Greedy, switching to Asap for the last GrasapK columns.
	Grasap
	// PlasmaTree uses flat trees on domains of BS rows merged by a binary
	// tree (Hadri et al., PLASMA anchoring); requires Options.BS.
	PlasmaTree
	// HadriTree is the Semi-/Fully-Parallel anchoring of the same idea
	// (top domain shrinks instead of the bottom one); requires Options.BS.
	// The paper finds PLASMA's anchoring identical or better.
	HadriTree
	// AlgorithmAuto asks the library to choose: the autotuner combines a
	// per-host kernel calibration (measured once and cached, see the
	// package documentation) with the paper's bounded-processor schedule
	// model to pick the predicted-fastest algorithm and kernel family for
	// the actual matrix shape and execution width. With AlgorithmAuto,
	// TileSize = 0 and InnerBlock = 0 additionally mean "choose for me"
	// (nonzero values pin them), and the Kernels field is ignored — the
	// tuner picks the family. Use Options.Resolve to inspect or pin the
	// decision.
	AlgorithmAuto
)

func (a Algorithm) String() string {
	if a == AlgorithmAuto {
		return "Auto"
	}
	return a.core().String()
}

func (a Algorithm) core() core.Algorithm {
	switch a {
	case Greedy:
		return core.Greedy
	case FlatTree:
		return core.FlatTree
	case BinaryTree:
		return core.BinaryTree
	case Fibonacci:
		return core.Fibonacci
	case Asap:
		return core.Asap
	case Grasap:
		return core.Grasap
	case PlasmaTree:
		return core.PlasmaTree
	case HadriTree:
		return core.HadriTree
	}
	return core.Algorithm(-1)
}

// algorithmFromCore maps a core algorithm back to the public enum — the
// return path of an autotuning decision.
func algorithmFromCore(a core.Algorithm) Algorithm {
	switch a {
	case core.Greedy:
		return Greedy
	case core.FlatTree:
		return FlatTree
	case core.BinaryTree:
		return BinaryTree
	case core.Fibonacci:
		return Fibonacci
	case core.Asap:
		return Asap
	case core.Grasap:
		return Grasap
	case core.PlasmaTree:
		return PlasmaTree
	}
	return HadriTree
}

// kernelsFromCore maps a core kernel family back to the public enum.
func kernelsFromCore(k core.Kernels) Kernels {
	if k == core.TS {
		return TS
	}
	return TT
}

// Algorithms lists the parameter-free algorithms, mainly for sweeps in
// examples and benchmarks.
var Algorithms = []Algorithm{Greedy, FlatTree, BinaryTree, Fibonacci, Asap}

// Kernels selects the kernel family implementing eliminations.
type Kernels int

const (
	// TT (triangle on top of triangle) maximizes parallelism; all the
	// paper's new algorithms use it.
	TT Kernels = iota
	// TS (triangle on top of square) maximizes locality and sequential
	// kernel speed; PLASMA's historical family.
	TS
)

func (k Kernels) String() string { return k.core().String() }

func (k Kernels) core() core.Kernels {
	if k == TS {
		return core.TS
	}
	return core.TT
}

// Options configures a factorization or an analysis. The zero value selects
// Greedy with TT kernels, tile size 128, inner blocking 32, and execution
// on the process-wide shared runtime (DefaultRuntime).
type Options struct {
	Algorithm Algorithm
	// Kernels selects the elimination kernel family. Ignored under
	// AlgorithmAuto for one-shot factorizations (the tuner picks TT vs TS);
	// streams always honor it.
	Kernels Kernels
	// TileSize (nb) and InnerBlock (ib): the paper uses nb=200 (80..200 is
	// typical, §2) and ib=32. Zero means the package defaults — except
	// under AlgorithmAuto, where zero means "let the autotuner choose" and
	// a nonzero value pins that dimension of the decision.
	TileSize   int
	InnerBlock int

	// Runtime selects the persistent worker pool the factorization's task
	// DAG executes on. nil with Workers == 0 means the process-wide
	// DefaultRuntime — concurrent factorizations then share one pool of
	// GOMAXPROCS workers instead of oversubscribing the machine.
	Runtime *Runtime

	// Workers is honored only when Runtime is nil and Workers > 0: the
	// call gets a private pool of that size, built and torn down around it
	// (the pre-runtime behavior). Workers == 1 selects the deterministic
	// sequential path on the calling goroutine.
	Workers int

	BS      int // PlasmaTree domain size, 1..p
	GrasapK int // Grasap: number of trailing Asap columns
	Trace   bool

	// CheckHealth enables numerical health checking: inputs (matrices,
	// batches, right-hand sides) are rejected up front when they contain
	// NaN or Inf entries, and every kernel task fails fast when it writes a
	// non-finite value into a tile, stopping the DAG at the first breakdown
	// (a NaN reflector, an overflow to Inf) instead of letting the poison
	// flow downstream. Off by default — the happy path pays nothing for the
	// feature.
	CheckHealth bool

	// WindowRows selects a stream's retention policy. Zero (the default)
	// retains nothing: appends are irrevocable and memory stays O(n² +
	// batch). A positive value keeps a sliding window: after each append the
	// stream downdates itself back to the most recent WindowRows rows, in
	// O(n² + window) memory. RetainAll keeps every appended row for manual
	// DowndateRows calls — memory then grows with the retained history.
	// Streams only; one-shot factorizations reject a nonzero value.
	WindowRows int

	// Forget is a stream's exponential forgetting factor λ ∈ (0, 1]: before
	// each append the resident R and Qᵀb are scaled by √λ, so a row
	// appended k batches ago contributes with weight λᵏ to RᵀR. Zero (the
	// default) and 1 disable forgetting. Forgetting needs no retention —
	// it combines with any WindowRows setting. Streams only; one-shot
	// factorizations reject a nonzero value.
	Forget float64
}

// RetainAll is the WindowRows value that retains the full row history
// without a sliding window: every appended row stays revocable via
// DowndateRows, and memory grows with the rows retained.
const RetainAll = -1

// WithRuntime returns a copy of the options that executes on rt. It is
// shorthand for setting the Runtime field, convenient in call chains:
//
//	f, err := tiledqr.Factor(a, opt.WithRuntime(rt))
func (o Options) WithRuntime(rt *Runtime) Options {
	o.Runtime = rt
	return o
}

// execEnv resolves the execution placement: an explicit runtime wins, an
// explicit worker count selects a per-call pool, and the default is the
// process-wide shared runtime.
func (o Options) execEnv() engine.Env {
	if o.Runtime != nil {
		return engine.Env{Runtime: o.Runtime.s}
	}
	if o.Workers > 0 {
		return engine.Env{Workers: o.Workers}
	}
	return engine.Env{Runtime: sched.Default()}
}

// DefaultTileSize and DefaultInnerBlock are the defaults applied by
// Options.withDefaults.
const (
	DefaultTileSize   = 128
	DefaultInnerBlock = 32
)

func (o Options) withDefaults() Options {
	if o.TileSize <= 0 {
		o.TileSize = DefaultTileSize
	}
	if o.InnerBlock <= 0 {
		// The default inner blocking never exceeds the tile: small tiles
		// are factored as one panel.
		o.InnerBlock = min(DefaultInnerBlock, o.TileSize)
	}
	return o
}

func (o Options) coreOptions() core.Options {
	return core.Options{BS: o.BS, GrasapK: o.GrasapK}
}

func (o Options) validate(p int) error {
	if err := o.validateSizes(); err != nil {
		return err
	}
	if (o.Algorithm == PlasmaTree || o.Algorithm == HadriTree) && (o.BS < 1 || o.BS > p) {
		return fmt.Errorf("tiledqr: %v needs 1 ≤ BS ≤ p (BS=%d, p=%d)", o.Algorithm, o.BS, p)
	}
	if o.WindowRows != 0 || o.Forget != 0 {
		return fmt.Errorf("tiledqr: WindowRows (%d) and Forget (%g) apply to streams (NewStreamOf and the per-precision stream constructors), not one-shot factorizations",
			o.WindowRows, o.Forget)
	}
	return nil
}

// validateStream checks the stream-only option constraints; every stream
// constructor runs it before building the reduction core, so a bad knob is
// a descriptive construction error rather than a surprise later.
func (o Options) validateStream() error {
	if o.WindowRows < 0 && o.WindowRows != RetainAll {
		return fmt.Errorf("tiledqr: WindowRows (%d) must be positive (sliding window), zero (no retention) or RetainAll (keep the full history for manual DowndateRows)",
			o.WindowRows)
	}
	if o.Forget != 0 && (o.Forget <= 0 || o.Forget > 1) {
		return fmt.Errorf("tiledqr: Forget (%g) must lie in (0, 1]: it is the exponential forgetting factor λ scaling past rows' weight per append (0 disables forgetting)",
			o.Forget)
	}
	return nil
}

// autoWidth returns the execution width a factorization under these
// options will actually run at — the quantity the autotuner's
// bounded-processor schedule model needs. It must not spin up the default
// runtime as a side effect, so the default case reports the default
// runtime's sizing (TILEDQR_WORKERS if set, else GOMAXPROCS) directly.
func (o Options) autoWidth() int {
	if o.Runtime != nil {
		return o.Runtime.Workers()
	}
	if o.Workers > 0 {
		return o.Workers
	}
	return sched.DefaultWorkers()
}

// resolveAuto turns AlgorithmAuto into a concrete (algorithm, kernel
// family, tile size, inner block) tuple for an m×n factorization in T's
// domain, honoring pinned nonzero TileSize/InnerBlock. Non-auto options
// pass through untouched (beyond the usual defaulting). The decision is
// deterministic per (shape, width, pins, precision) within a process, so
// FactorInto/Refactor fleets resolve to the identical tuple every time and
// the engine's plan/arena reuse keys on the resolved values.
func resolveAuto[T vec.Scalar](m, n int, opt Options) (Options, error) {
	if opt.Algorithm != AlgorithmAuto {
		return opt.withDefaults(), nil
	}
	// Pinned sizes obey the same constraints as explicit ones: an inner
	// block wider than a pinned tile is an error, not a silent clamp.
	if opt.TileSize > 0 {
		if err := opt.validateSizes(); err != nil {
			return Options{}, err
		}
	}
	dec, err := tune.Resolve[T](tune.Request{
		M: m, N: n,
		Workers: opt.autoWidth(),
		PinNB:   opt.TileSize,
		PinIB:   opt.InnerBlock,
	})
	if err != nil {
		return Options{}, err
	}
	opt.Algorithm = algorithmFromCore(dec.Algorithm)
	opt.Kernels = kernelsFromCore(dec.Kernels)
	opt.TileSize = dec.NB
	opt.InnerBlock = dec.IB
	return opt.withDefaults(), nil
}

// Resolve returns the options a float64 factorization of an m×n matrix
// would actually run with: defaults applied and, under AlgorithmAuto, the
// autotuner's (algorithm, kernel family, tile size, inner block) decision
// substituted in. Factoring with the returned options reproduces the Auto
// factorization bit for bit; edit them to pin or tweak the decision. The
// other precisions resolve with their own calibrations internally —
// CFactor/FactorComplex/Factor32 may legitimately pick different tuples.
func (o Options) Resolve(m, n int) (Options, error) {
	if m < 1 || n < 1 {
		return Options{}, fmt.Errorf("tiledqr: Resolve: invalid shape %d×%d", m, n)
	}
	return resolveAuto[float64](m, n, o)
}

// validateSizes checks the grid-independent option constraints; the
// streaming constructors share it (they have no tile-row count p to
// validate against). An inner block wider than the tile would make the
// GEQRT panel sweep read past its panel, so it is rejected up front with a
// descriptive error instead of silently misbehaving.
func (o Options) validateSizes() error {
	if o.InnerBlock > o.TileSize {
		return fmt.Errorf("tiledqr: InnerBlock (%d) must not exceed TileSize (%d): kernel panels are at most one tile wide",
			o.InnerBlock, o.TileSize)
	}
	return nil
}
