package tiledqr

import (
	"fmt"

	"tiledqr/internal/core"
	"tiledqr/internal/engine"
	"tiledqr/internal/sched"
)

// Algorithm selects the elimination tree; see the package documentation and
// Section 3 of the paper for the trade-offs.
type Algorithm int

const (
	// Greedy is the default: never worse than the alternatives for tall
	// matrices and requires no tuning parameter.
	Greedy Algorithm = iota
	// FlatTree is Sameh-Kuck, PLASMA's historical ordering.
	FlatTree
	// BinaryTree pairs rows level by level.
	BinaryTree
	// Fibonacci is the Fibonacci scheme of order 1.
	Fibonacci
	// Asap makes elimination decisions dynamically in simulated time.
	Asap
	// Grasap runs Greedy, switching to Asap for the last GrasapK columns.
	Grasap
	// PlasmaTree uses flat trees on domains of BS rows merged by a binary
	// tree (Hadri et al., PLASMA anchoring); requires Options.BS.
	PlasmaTree
	// HadriTree is the Semi-/Fully-Parallel anchoring of the same idea
	// (top domain shrinks instead of the bottom one); requires Options.BS.
	// The paper finds PLASMA's anchoring identical or better.
	HadriTree
)

func (a Algorithm) String() string { return a.core().String() }

func (a Algorithm) core() core.Algorithm {
	switch a {
	case Greedy:
		return core.Greedy
	case FlatTree:
		return core.FlatTree
	case BinaryTree:
		return core.BinaryTree
	case Fibonacci:
		return core.Fibonacci
	case Asap:
		return core.Asap
	case Grasap:
		return core.Grasap
	case PlasmaTree:
		return core.PlasmaTree
	case HadriTree:
		return core.HadriTree
	}
	return core.Algorithm(-1)
}

// Algorithms lists the parameter-free algorithms, mainly for sweeps in
// examples and benchmarks.
var Algorithms = []Algorithm{Greedy, FlatTree, BinaryTree, Fibonacci, Asap}

// Kernels selects the kernel family implementing eliminations.
type Kernels int

const (
	// TT (triangle on top of triangle) maximizes parallelism; all the
	// paper's new algorithms use it.
	TT Kernels = iota
	// TS (triangle on top of square) maximizes locality and sequential
	// kernel speed; PLASMA's historical family.
	TS
)

func (k Kernels) String() string { return k.core().String() }

func (k Kernels) core() core.Kernels {
	if k == TS {
		return core.TS
	}
	return core.TT
}

// Options configures a factorization or an analysis. The zero value selects
// Greedy with TT kernels, tile size 128, inner blocking 32, and execution
// on the process-wide shared runtime (DefaultRuntime).
type Options struct {
	Algorithm  Algorithm
	Kernels    Kernels
	TileSize   int // nb; the paper uses 200 (80..200 is typical, §2)
	InnerBlock int // ib; the paper uses 32

	// Runtime selects the persistent worker pool the factorization's task
	// DAG executes on. nil with Workers == 0 means the process-wide
	// DefaultRuntime — concurrent factorizations then share one pool of
	// GOMAXPROCS workers instead of oversubscribing the machine.
	Runtime *Runtime

	// Workers is honored only when Runtime is nil and Workers > 0: the
	// call gets a private pool of that size, built and torn down around it
	// (the pre-runtime behavior). Workers == 1 selects the deterministic
	// sequential path on the calling goroutine.
	Workers int

	BS      int // PlasmaTree domain size, 1..p
	GrasapK int // Grasap: number of trailing Asap columns
	Trace   bool
}

// WithRuntime returns a copy of the options that executes on rt. It is
// shorthand for setting the Runtime field, convenient in call chains:
//
//	f, err := tiledqr.Factor(a, opt.WithRuntime(rt))
func (o Options) WithRuntime(rt *Runtime) Options {
	o.Runtime = rt
	return o
}

// execEnv resolves the execution placement: an explicit runtime wins, an
// explicit worker count selects a per-call pool, and the default is the
// process-wide shared runtime.
func (o Options) execEnv() engine.Env {
	if o.Runtime != nil {
		return engine.Env{Runtime: o.Runtime.s}
	}
	if o.Workers > 0 {
		return engine.Env{Workers: o.Workers}
	}
	return engine.Env{Runtime: sched.Default()}
}

// DefaultTileSize and DefaultInnerBlock are the defaults applied by
// Options.withDefaults.
const (
	DefaultTileSize   = 128
	DefaultInnerBlock = 32
)

func (o Options) withDefaults() Options {
	if o.TileSize <= 0 {
		o.TileSize = DefaultTileSize
	}
	if o.InnerBlock <= 0 {
		// The default inner blocking never exceeds the tile: small tiles
		// are factored as one panel.
		o.InnerBlock = min(DefaultInnerBlock, o.TileSize)
	}
	return o
}

func (o Options) coreOptions() core.Options {
	return core.Options{BS: o.BS, GrasapK: o.GrasapK}
}

func (o Options) validate(p int) error {
	if err := o.validateSizes(); err != nil {
		return err
	}
	if (o.Algorithm == PlasmaTree || o.Algorithm == HadriTree) && (o.BS < 1 || o.BS > p) {
		return fmt.Errorf("tiledqr: %v needs 1 ≤ BS ≤ p (BS=%d, p=%d)", o.Algorithm, o.BS, p)
	}
	return nil
}

// validateSizes checks the grid-independent option constraints; the
// streaming constructors share it (they have no tile-row count p to
// validate against). An inner block wider than the tile would make the
// GEQRT panel sweep read past its panel, so it is rejected up front with a
// descriptive error instead of silently misbehaving.
func (o Options) validateSizes() error {
	if o.InnerBlock > o.TileSize {
		return fmt.Errorf("tiledqr: InnerBlock (%d) must not exceed TileSize (%d): kernel panels are at most one tile wide",
			o.InnerBlock, o.TileSize)
	}
	return nil
}
